package memorex

import (
	"encoding/json"
	"fmt"
	"io"

	"memorex/internal/core"
)

// DesignJSON is the serialized form of one explored design point, the
// interchange format for downstream tooling (spreadsheets, plotting).
type DesignJSON struct {
	Memory       string  `json:"memory"`
	Connectivity string  `json:"connectivity"`
	CostGates    float64 `json:"cost_gates"`
	LatencyCyc   float64 `json:"latency_cycles_per_access"`
	EnergyNJ     float64 `json:"energy_nj_per_access"`
	OnFront      bool    `json:"on_cost_perf_front"`
}

// EngineJSON is the serialized form of the evaluation-engine
// statistics of an exploration run.
type EngineJSON struct {
	Evaluations     int64           `json:"evaluations"`
	Simulations     int64           `json:"simulations"`
	CacheHits       int64           `json:"cache_hits"`
	SampledAccesses int64           `json:"sampled_accesses"`
	FullAccesses    int64           `json:"full_accesses"`
	DeltaReplays    int64           `json:"delta_replays,omitempty"`
	DeltaChannels   int64           `json:"delta_channels_reused,omitempty"`
	DeltaFallbacks  int64           `json:"delta_fallbacks,omitempty"`
	Phases          []PhaseWallJSON `json:"phases,omitempty"`
}

// PhaseWallJSON is one per-phase wall-time entry.
type PhaseWallJSON struct {
	Name   string `json:"name"`
	WallMS int64  `json:"wall_ms"`
	Evals  int64  `json:"evaluations"`
	Sims   int64  `json:"simulations"`
}

// SelectionJSON is the serialized form of one constrained selection.
type SelectionJSON struct {
	Scenario string           `json:"scenario"`
	Limit    float64          `json:"limit"`
	Points   []SelectionPoint `json:"points"`
}

// SelectionPoint is one design of a constrained selection.
type SelectionPoint struct {
	Label      string  `json:"label"`
	CostGates  float64 `json:"cost_gates"`
	LatencyCyc float64 `json:"latency_cycles_per_access"`
	EnergyNJ   float64 `json:"energy_nj_per_access"`
}

// ReportJSON is the serialized form of an exploration report.
type ReportJSON struct {
	Benchmark string `json:"benchmark"`
	Accesses  int    `json:"trace_accesses"`
	// Search records the heuristic-search provenance (strategy, seed,
	// budget, evaluations issued) of runs driven by the "ga" or "sa"
	// strategy; absent for the enumeration strategies.
	Search     *SearchInfo      `json:"search,omitempty"`
	Engine     *EngineJSON      `json:"engine,omitempty"`
	Metrics    *MetricsSnapshot `json:"metrics,omitempty"`
	Designs    []DesignJSON     `json:"designs"`
	Selections []SelectionJSON  `json:"selections,omitempty"`
}

// WriteJSON serializes the fully simulated design points of the report
// plus the evaluation-engine statistics of the run.
func (r *Report) WriteJSON(w io.Writer) error {
	st := r.EngineStats()
	ej := &EngineJSON{
		Evaluations:     st.Requests,
		Simulations:     st.Simulations,
		CacheHits:       st.CacheHits,
		SampledAccesses: st.SampledAccesses,
		FullAccesses:    st.FullAccesses,
		DeltaReplays:    st.DeltaReplays,
		DeltaChannels:   st.DeltaChannelsReused,
		DeltaFallbacks:  st.DeltaFallbacks,
	}
	for _, p := range st.Phases {
		ej.Phases = append(ej.Phases, PhaseWallJSON{
			Name:   p.Name,
			WallMS: p.Wall.Milliseconds(),
			Evals:  p.Requests,
			Sims:   p.Simulations,
		})
	}
	out := ReportJSON{
		Benchmark: r.Options.Workload,
		Accesses:  r.Trace.NumAccesses(),
		Search:    r.Search,
		Engine:    ej,
	}
	if len(r.Metrics.Counters)+len(r.Metrics.Gauges)+len(r.Metrics.Histograms) > 0 {
		m := r.Metrics
		out.Metrics = &m
	}
	onFront := map[*core.DesignPoint]bool{}
	for i := range r.ConEx.CostPerfFront {
		for j := range r.ConEx.Combined {
			c := &r.ConEx.Combined[j]
			if c.Cost == r.ConEx.CostPerfFront[i].Cost &&
				c.Latency == r.ConEx.CostPerfFront[i].Latency &&
				c.Energy == r.ConEx.CostPerfFront[i].Energy {
				onFront[c] = true
			}
		}
	}
	for i := range r.ConEx.Combined {
		dp := &r.ConEx.Combined[i]
		out.Designs = append(out.Designs, DesignJSON{
			Memory:       dp.MemArch.Describe(r.Trace),
			Connectivity: dp.Conn.Describe(dp.MemArch),
			CostGates:    dp.Cost,
			LatencyCyc:   dp.Latency,
			EnergyNJ:     dp.Energy,
			OnFront:      onFront[dp],
		})
	}
	for _, sel := range r.Selections {
		sj := SelectionJSON{Scenario: sel.Scenario, Limit: sel.Limit, Points: []SelectionPoint{}}
		for _, p := range sel.Points {
			sj.Points = append(sj.Points, SelectionPoint{
				Label: p.Label, CostGates: p.Cost, LatencyCyc: p.Latency, EnergyNJ: p.Energy,
			})
		}
		out.Selections = append(out.Selections, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadReportJSON parses a report previously written with WriteJSON.
func ReadReportJSON(r io.Reader) (*ReportJSON, error) {
	var out ReportJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("memorex: parsing report: %w", err)
	}
	return &out, nil
}
