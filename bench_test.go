package memorex

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark regenerates its artifact
// with the Quick preset (same structure as the Paper preset, smaller
// traces and enumeration caps) and reports domain-specific metrics via
// b.ReportMetric. Run:
//
//	go test -bench=. -benchmem
//
// For paper-sized runs use cmd/paperbench -preset paper.

import (
	"context"
	"testing"

	"memorex/internal/apex"
	"memorex/internal/connect"
	"memorex/internal/core"
	"memorex/internal/engine"
	"memorex/internal/experiments"
	"memorex/internal/explore"
	"memorex/internal/mem"
	"memorex/internal/obs"
	"memorex/internal/pareto"
	"memorex/internal/sampling"
	"memorex/internal/sim"
	"memorex/internal/workload"
)

// freshQuick returns the Quick preset with a fresh evaluation engine, so
// every benchmark iteration performs real simulation work instead of
// replaying the previous iteration from the memoization cache.
func freshQuick() experiments.Options {
	opt := experiments.Quick()
	opt.ConEx.Engine = engine.New(0)
	return opt
}

// BenchmarkFigure3 regenerates Figure 3: the APEX memory-modules
// exploration of compress (cost vs miss-ratio pareto).
func BenchmarkFigure3(b *testing.B) {
	opt := freshQuick()
	for i := 0; i < b.N; i++ {
		opt.ConEx.Engine = engine.New(0)
		res, err := experiments.Figure3(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		sel := res.SelectedRows()
		b.ReportMetric(float64(len(res.Rows)), "designs")
		b.ReportMetric(float64(len(sel)), "selected")
		b.ReportMetric(sel[len(sel)-1].MissRatio, "best-missratio")
	}
}

// BenchmarkFigure4 regenerates Figure 4: the ConEx connectivity
// exploration cloud and its latency improvement for compress.
func BenchmarkFigure4(b *testing.B) {
	opt := freshQuick()
	for i := 0; i < b.N; i++ {
		opt.ConEx.Engine = engine.New(0)
		res, err := experiments.Figure4(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.CloudSize), "cloud-designs")
		b.ReportMetric(res.ImprovementPct, "latency-improv-%")
	}
}

// BenchmarkFigure6 regenerates Figure 6: the annotated cost/perf pareto
// architectures of compress and their gain over the best traditional
// cache design.
func BenchmarkFigure6(b *testing.B) {
	opt := freshQuick()
	for i := 0; i < b.N; i++ {
		opt.ConEx.Engine = engine.New(0)
		res, err := experiments.Figure6(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "pareto-designs")
		b.ReportMetric(res.BestGainPct, "best-gain-%")
	}
}

// BenchmarkFigureEnergy regenerates the energy-dimension views of the
// compress exploration (paper Section 4's cost/power and
// performance/power trade-off spaces).
func BenchmarkFigureEnergy(b *testing.B) {
	opt := freshQuick()
	for i := 0; i < b.N; i++ {
		opt.ConEx.Engine = engine.New(0)
		res, err := experiments.FigureEnergy(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.LatencyEnergy)), "perf-power-front")
		b.ReportMetric(float64(len(res.Front3D)), "front3d-designs")
	}
}

// BenchmarkTable1 regenerates Table 1: selected cost/performance designs
// with cost, latency and energy for compress, li and vocoder.
func BenchmarkTable1(b *testing.B) {
	opt := freshQuick()
	for i := 0; i < b.N; i++ {
		opt.ConEx.Engine = engine.New(0)
		res, err := experiments.Table1(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "rows")
		comp := res.RowsFor("compress")
		b.ReportMetric(comp[0].Latency/comp[len(comp)-1].Latency, "compress-lat-span")
	}
}

// BenchmarkTable2 regenerates Table 2: pareto coverage and average
// distance of the Pruned and Neighborhood strategies vs Full.
func BenchmarkTable2(b *testing.B) {
	opt := freshQuick()
	for i := 0; i < b.N; i++ {
		opt.ConEx.Engine = engine.New(0)
		res, err := experiments.Table2(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		c := res.Comparisons[0] // compress
		b.ReportMetric(100*c.Metrics[1].Coverage, "pruned-coverage-%")
		b.ReportMetric(float64(c.Metrics[0].WorkAccesses)/float64(c.Metrics[1].WorkAccesses),
			"full/pruned-work")
	}
}

// --- Ablations (design choices called out in DESIGN.md section 7) ----

// quickTrace is the shared compress slice used by the ablations.
func quickTrace(b *testing.B) *workloadTrace {
	b.Helper()
	t := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 60_000)
	return &workloadTrace{t}
}

type workloadTrace struct{ *Trace }

func quickArchs(b *testing.B, t *Trace) []*mem.Architecture {
	b.Helper()
	res, err := apex.Explore(t, nil, apex.Config{
		CacheSizes:  []int{2 << 10, 16 << 10},
		CacheAssocs: []int{2},
		CacheLines:  []int{32},
		MaxCustom:   1,
		SRAMLimit:   80 << 10,
		MaxSelected: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	archs := make([]*mem.Architecture, len(res.Selected))
	for i, dp := range res.Selected {
		archs[i] = dp.Arch
	}
	return archs
}

// BenchmarkAblationClustering compares ConEx's hierarchical bandwidth
// clustering against enumerating only the finest (one component per
// channel) level: clustering explores sharing options the flat space
// misses, for less work than enumerating everything.
func BenchmarkAblationClustering(b *testing.B) {
	tr := quickTrace(b)
	archs := quickArchs(b, tr.Trace)
	// Pick the architecture with the most channels: clustering only has
	// something to merge when several modules share the interconnect.
	arch := archs[0]
	for _, a := range archs {
		if len(a.Channels()) > len(arch.Channels()) {
			arch = a
		}
	}
	cfg := core.DefaultConfig()
	cfg.Sampling = sampling.Config{OnWindow: 1000, OffRatio: 9}
	cfg.MaxAssignPerLevel = 24
	for i := 0; i < b.N; i++ {
		// Hierarchical: all levels.
		points, _, _, err := core.ConnectivityExploration(context.Background(), tr.Trace, arch, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Flat: only the finest clustering level.
		brg, err := core.BuildBRG(tr.Trace, arch)
		if err != nil {
			b.Fatal(err)
		}
		flatArchs, _ := core.EnumerateAssignments(brg, core.InitialClustering(brg), cfg.Library, 0)
		// Cheapest design found by each (clustering should find cheaper
		// sharing configurations).
		minHier, minFlat := 1e18, 1e18
		for _, p := range points {
			if p.Cost < minHier {
				minHier = p.Cost
			}
		}
		for _, fa := range flatArchs {
			if c := arch.Gates() + fa.Gates(); c < minFlat {
				minFlat = c
			}
		}
		b.ReportMetric(minFlat/minHier, "flat/hier-min-cost")
	}
}

// BenchmarkAblationSampling measures the fidelity and speedup of the 1:9
// time-sampling estimator against full simulation.
func BenchmarkAblationSampling(b *testing.B) {
	tr := quickTrace(b)
	archs := quickArchs(b, tr.Trace)
	lib := connect.Library()
	ahb, _ := connect.ByName(lib, "ahb32")
	off, _ := connect.ByName(lib, "off32")
	arch := archs[len(archs)-1]
	chans := arch.Channels()
	conn := &connect.Arch{Channels: chans}
	var on, offc []int
	for i, ch := range chans {
		if ch.OffChip {
			offc = append(offc, i)
		} else {
			on = append(on, i)
		}
	}
	conn.Clusters = [][]int{on, offc}
	conn.Assign = []connect.Component{ahb, off}
	for i := 0; i < b.N; i++ {
		s, err := sim.New(arch, conn)
		if err != nil {
			b.Fatal(err)
		}
		full, err := s.Run(tr.Trace)
		if err != nil {
			b.Fatal(err)
		}
		est, simulated, err := sampling.Estimate(tr.Trace, arch, conn, sampling.Config{OnWindow: 2000, OffRatio: 9})
		if err != nil {
			b.Fatal(err)
		}
		relErr := (est.AvgLatency() - full.AvgLatency()) / full.AvgLatency()
		if relErr < 0 {
			relErr = -relErr
		}
		b.ReportMetric(100*relErr, "latency-err-%")
		b.ReportMetric(float64(full.Accesses)/float64(simulated), "work-reduction-x")
	}
}

// BenchmarkAblationSplit compares the split-transaction AHB against the
// blocking ASB as the CPU-side bus of a miss-heavy architecture.
func BenchmarkAblationSplit(b *testing.B) {
	tr := quickTrace(b)
	arch := &mem.Architecture{
		Name:    "small-cache",
		Modules: []mem.Module{mem.MustCache(1024, 32, 1)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
	lib := connect.Library()
	build := func(onChip string) *connect.Arch {
		on, _ := connect.ByName(lib, onChip)
		off, _ := connect.ByName(lib, "off32")
		return &connect.Arch{
			Channels: arch.Channels(),
			Clusters: [][]int{{0}, {1}},
			Assign:   []connect.Component{on, off},
		}
	}
	for i := 0; i < b.N; i++ {
		var lat [2]float64
		for j, name := range []string{"ahb32", "asb32"} {
			s, err := sim.New(arch, build(name))
			if err != nil {
				b.Fatal(err)
			}
			r, err := s.Run(tr.Trace)
			if err != nil {
				b.Fatal(err)
			}
			lat[j] = r.AvgLatency()
		}
		b.ReportMetric(lat[1]/lat[0], "asb/ahb-latency")
	}
}

// BenchmarkAblationPrune compares pruning at each stage (Pruned) against
// pruning only at the end (Full) in exploration work.
func BenchmarkAblationPrune(b *testing.B) {
	tr := quickTrace(b)
	res, err := apex.Explore(tr.Trace, nil, apex.Config{
		CacheSizes:  []int{2 << 10, 16 << 10},
		CacheAssocs: []int{2},
		CacheLines:  []int{32},
		MaxCustom:   1,
		SRAMLimit:   80 << 10,
		MaxSelected: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	space := explore.BuildSpace(res)
	cfg := core.DefaultConfig()
	cfg.Sampling = sampling.Config{OnWindow: 1000, OffRatio: 9}
	cfg.MaxAssignPerLevel = 8
	cfg.KeepPerArch = 4
	for i := 0; i < b.N; i++ {
		full, err := explore.Run(context.Background(), tr.Trace, space, explore.Full, cfg)
		if err != nil {
			b.Fatal(err)
		}
		pruned, err := explore.Run(context.Background(), tr.Trace, space, explore.Pruned, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cov := pareto.Coverage(pruned.Front, full.Front, explore.CoverageTol)
		b.ReportMetric(float64(full.WorkAccesses)/float64(pruned.WorkAccesses), "work-reduction-x")
		b.ReportMetric(100*cov, "coverage-%")
	}
}

// benchmarkSearch runs one heuristic driver against the Full-enumeration
// ground truth of the ablation space at a 25% evaluation budget and
// reports how much of the true cost/latency pareto front it recovers.
// benchjson -compare tabulates the "search-*" units and warns when the
// coverage drops by more than 2 points between reports; the hard ≥90%
// floor lives in the internal/explore quality-gate test.
func benchmarkSearch(b *testing.B, strategy explore.Strategy) {
	tr := quickTrace(b)
	res, err := apex.Explore(tr.Trace, nil, apex.Config{
		CacheSizes:  []int{2 << 10, 16 << 10},
		CacheAssocs: []int{2},
		CacheLines:  []int{32},
		MaxCustom:   1,
		SRAMLimit:   80 << 10,
		MaxSelected: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	space := explore.BuildSpace(res)
	cfg := core.DefaultConfig()
	cfg.Sampling = sampling.Config{OnWindow: 1000, OffRatio: 9}
	cfg.MaxAssignPerLevel = 0 // exhaustive clustering: the truth is exact
	full, err := explore.Run(context.Background(), tr.Trace, space, explore.Full, cfg)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Search = core.SearchConfig{Seed: 42, Budget: int(full.Stats.Simulations / 4), Population: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := explore.Run(context.Background(), tr.Trace, space, strategy, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cov := pareto.Coverage(out.Front, full.Front, explore.CoverageTol)
		b.ReportMetric(float64(out.Search.Evals), "search-evals")
		b.ReportMetric(100*cov, "search-coverage-pct")
	}
}

// BenchmarkSearchGA measures the genetic-algorithm driver: wall time of
// a budgeted run plus its truth-front coverage at 25% of Full's work.
func BenchmarkSearchGA(b *testing.B) { benchmarkSearch(b, explore.GA) }

// BenchmarkSearchSA measures the simulated-annealing driver under the
// same budget and space as BenchmarkSearchGA.
func BenchmarkSearchSA(b *testing.B) { benchmarkSearch(b, explore.SA) }

// BenchmarkAblationVictim measures what the victim-buffer extension of
// the memory IP library (mem.VictimCache) buys on compress's
// conflict-heavy hash traffic: miss-ratio reduction per added gate.
func BenchmarkAblationVictim(b *testing.B) {
	tr := quickTrace(b)
	for i := 0; i < b.N; i++ {
		plain := &mem.Architecture{
			Name:    "plain",
			Modules: []mem.Module{mem.MustCache(2048, 32, 1)},
			DRAM:    mem.DefaultDRAM(),
			Default: 0,
		}
		victim := &mem.Architecture{
			Name:    "victim",
			Modules: []mem.Module{mem.MustVictimCache(2048, 32, 1, 8)},
			DRAM:    mem.DefaultDRAM(),
			Default: 0,
		}
		rp, err := sim.RunMemOnly(tr.Trace, plain)
		if err != nil {
			b.Fatal(err)
		}
		rv, err := sim.RunMemOnly(tr.Trace, victim)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rp.MissRatio()/rv.MissRatio(), "miss-reduction-x")
		b.ReportMetric(victim.Gates()/plain.Gates(), "cost-increase-x")
	}
}

// BenchmarkAblationL2 measures the hierarchical-memory extension: a
// shared L2 behind a small L1 versus going straight off chip.
func BenchmarkAblationL2(b *testing.B) {
	tr := quickTrace(b)
	lib := connect.Library()
	ahb, _ := connect.ByName(lib, "ahb32")
	off, _ := connect.ByName(lib, "off32")
	build := func(withL2 bool) (*mem.Architecture, *connect.Arch) {
		a := &mem.Architecture{
			Name:    "l2-ablation",
			Modules: []mem.Module{mem.MustCache(1024, 32, 2)},
			DRAM:    mem.DefaultDRAM(),
			Default: 0,
		}
		if withL2 {
			a.L2 = mem.MustCache(64<<10, 32, 4)
		}
		c := &connect.Arch{Channels: a.Channels()}
		for i, ch := range c.Channels {
			c.Clusters = append(c.Clusters, []int{i})
			if ch.OffChip {
				c.Assign = append(c.Assign, off)
			} else {
				c.Assign = append(c.Assign, ahb)
			}
		}
		return a, c
	}
	for i := 0; i < b.N; i++ {
		var lat [2]float64
		var offBytes [2]int64
		for j, withL2 := range []bool{false, true} {
			a, c := build(withL2)
			s, err := sim.New(a, c)
			if err != nil {
				b.Fatal(err)
			}
			r, err := s.Run(tr.Trace)
			if err != nil {
				b.Fatal(err)
			}
			lat[j] = r.AvgLatency()
			offBytes[j] = r.OffChipBytes
		}
		b.ReportMetric(lat[0]/lat[1], "latency-speedup-x")
		b.ReportMetric(float64(offBytes[0])/float64(offBytes[1]), "offchip-reduction-x")
	}
}

// BenchmarkEngineMemoization measures what the evaluation engine's
// memoization cache buys: the Figure 4 pipeline run twice on a shared
// engine, where the second pass revisits the design points of the first
// and is served from the cache. cache-hit-% and sims-per-eval quantify
// the reduction in simulation work versus requests issued.
func BenchmarkEngineMemoization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := freshQuick()
		for pass := 0; pass < 2; pass++ {
			if _, err := experiments.Figure4(context.Background(), opt); err != nil {
				b.Fatal(err)
			}
		}
		st := opt.ConEx.Engine.Stats()
		if st.CacheHits == 0 {
			b.Fatal("second pass produced no cache hits")
		}
		if st.Simulations >= st.Requests {
			b.Fatalf("memoization saved nothing: %d simulations for %d requests",
				st.Simulations, st.Requests)
		}
		b.ReportMetric(100*float64(st.CacheHits)/float64(st.Requests), "cache-hit-%")
		b.ReportMetric(float64(st.Simulations)/float64(st.Requests), "sims-per-eval")
	}
}

// BenchmarkSimulator measures raw simulator throughput (accesses/sec are
// visible as ns/op over the 60k-access trace).
func BenchmarkSimulator(b *testing.B) {
	tr := quickTrace(b)
	arch := &mem.Architecture{
		Name:    "cache8k",
		Modules: []mem.Module{mem.MustCache(8192, 32, 2)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
	lib := connect.Library()
	ahb, _ := connect.ByName(lib, "ahb32")
	off, _ := connect.ByName(lib, "off32")
	conn := &connect.Arch{
		Channels: arch.Channels(),
		Clusters: [][]int{{0}, {1}},
		Assign:   []connect.Component{ahb, off},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(arch, conn)
		if err != nil {
			b.Fatal(err)
		}
		r, err := s.Run(tr.Trace)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Accesses), "accesses")
	}
}

// BenchmarkSimulatorReplay measures the connectivity-replay throughput
// of the two-phase simulator over the same design as BenchmarkSimulator:
// the behavior trace is captured once, each iteration re-times it
// against the connectivity architecture (the per-candidate work of the
// exploration's inner loop).
func BenchmarkSimulatorReplay(b *testing.B) {
	tr := quickTrace(b)
	arch := &mem.Architecture{
		Name:    "cache8k",
		Modules: []mem.Module{mem.MustCache(8192, 32, 2)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
	lib := connect.Library()
	ahb, _ := connect.ByName(lib, "ahb32")
	off, _ := connect.ByName(lib, "off32")
	conn := &connect.Arch{
		Channels: arch.Channels(),
		Clusters: [][]int{{0}, {1}},
		Assign:   []connect.Component{ahb, off},
	}
	bt, err := sim.CaptureBehavior(tr.Trace, arch, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sim.Replay(bt, conn)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Accesses), "accesses")
	}
}

// BenchmarkSimulatorReplayBatch measures batched replay throughput over
// the same behavior trace as BenchmarkSimulatorReplay: one ReplayBatch
// pass re-times a candidate per library component, so ns/op divided by
// "archs" is directly comparable to BenchmarkSimulatorReplay's ns/op.
func BenchmarkSimulatorReplayBatch(b *testing.B) {
	tr := quickTrace(b)
	arch := &mem.Architecture{
		Name:    "cache8k",
		Modules: []mem.Module{mem.MustCache(8192, 32, 2)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
	lib := connect.Library()
	var conns []*connect.Arch
	for _, comp := range lib {
		on, off := comp, comp
		if comp.OnChip {
			off, _ = connect.ByName(lib, "off32")
		} else {
			on, _ = connect.ByName(lib, "ahb32")
		}
		conns = append(conns, &connect.Arch{
			Channels: arch.Channels(),
			Clusters: [][]int{{0}, {1}},
			Assign:   []connect.Component{on, off},
		})
	}
	bt, err := sim.CaptureBehavior(tr.Trace, arch, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.ReplayBatch(bt, conns)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res)), "archs")
		b.ReportMetric(float64(res[0].Accesses), "accesses")
	}
}

// BenchmarkSimulatorReplayDelta measures incremental delta-replay
// throughput: the behavior trace and a base candidate's residue are
// captured once, each iteration re-times one sibling per library
// component — all in a single batched delta walk — recomputing only
// the channels each sibling changes and splicing the rest from the
// base. ns/op divided by "archs" is directly
// comparable to BenchmarkSimulatorReplay's ns/op; "spliced-%" is the
// fraction of events served from the residue.
func BenchmarkSimulatorReplayDelta(b *testing.B) {
	tr := quickTrace(b)
	arch := &mem.Architecture{
		Name:    "cache2",
		Modules: []mem.Module{mem.MustCache(8192, 32, 2), mem.MustCache(4096, 32, 2)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
	lib := connect.Library()
	ahb, _ := connect.ByName(lib, "ahb32")
	off, _ := connect.ByName(lib, "off32")
	chans := arch.Channels()
	base := &connect.Arch{Channels: chans}
	target := -1
	for i, ch := range chans {
		base.Clusters = append(base.Clusters, []int{i})
		if ch.OffChip {
			base.Assign = append(base.Assign, off)
		} else {
			base.Assign = append(base.Assign, ahb)
		}
		// The siblings vary the second cache's CPU-side channel — a
		// channel the default-routed accesses never touch, so the
		// delta replay splices nearly everything.
		if ch.Kind == mem.ChanCPUModule && ch.Module == 1 {
			target = i
		}
	}
	if target < 0 {
		b.Fatal("no CPU channel for module 1")
	}
	var sibs []*connect.Arch
	for _, name := range []string{"ded32", "mux32", "apb32", "asb32", "ahb64"} {
		comp, err := connect.ByName(lib, name)
		if err != nil {
			b.Fatal(err)
		}
		sib := &connect.Arch{
			Channels: chans,
			Clusters: base.Clusters,
			Assign:   append([]connect.Component(nil), base.Assign...),
		}
		sib.Assign[target] = comp
		sibs = append(sibs, sib)
	}
	bt, err := sim.CaptureBehavior(tr.Trace, arch, nil)
	if err != nil {
		b.Fatal(err)
	}
	_, rsd, err := sim.ReplayResidue(bt, base)
	if err != nil {
		b.Fatal(err)
	}
	bases := make([]*sim.Residue, len(sibs))
	for i := range bases {
		bases[i] = rsd
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var spliced, total int64
		_, _, infos, err := sim.ReplayDeltaBatch(bt, bases, sibs, make([]bool, len(sibs)))
		if err != nil {
			b.Fatal(err)
		}
		for _, info := range infos {
			if info.Fallback {
				b.Fatal("delta replay fell back to a full replay")
			}
			spliced += info.SplicedEvents
			total += info.SplicedEvents + info.RecomputedEvents
		}
		b.ReportMetric(float64(len(sibs)), "archs")
		b.ReportMetric(100*float64(spliced)/float64(total), "spliced-%")
	}
}

// BenchmarkInstrumentedExploration is BenchmarkFigure4 with the full
// observability stack attached — event ring, JSONL-equivalent fan-out
// and metrics registry — so the before/after reports quantify the
// enabled-path overhead, and the registry's eval-latency histograms
// surface in the bench JSON via ReportMetric.
func BenchmarkInstrumentedExploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ring := obs.NewRing(1 << 16)
		reg := obs.NewRegistry()
		opt := experiments.Quick()
		opt.ConEx.Engine = engine.New(0,
			engine.WithObserver(obs.NewObserver(ring)),
			engine.WithMetrics(reg))
		if _, err := experiments.Figure4(context.Background(), opt); err != nil {
			b.Fatal(err)
		}
		snap := reg.Snapshot()
		h := snap.Histograms["engine/eval_wall_us/sampled"]
		b.ReportMetric(float64(ring.Total()), "events")
		b.ReportMetric(h.P50, "eval-p50-us")
		b.ReportMetric(h.P95, "eval-p95-us")
		b.ReportMetric(h.P99, "eval-p99-us")
		// Batched-replay shape of the run: how many ReplayBatch
		// dispatches served the exploration, their median size, and how
		// many evaluations were deduplicated or spilled.
		bs := snap.Histograms["engine/batch/size"]
		b.ReportMetric(float64(snap.Counters["engine/batch/dispatches"]), "batches")
		b.ReportMetric(bs.P50, "batch-size-p50")
		b.ReportMetric(float64(snap.Counters["engine/batch/dedup_hits"]), "batch-dedup-hits")
		b.ReportMetric(float64(snap.Counters["engine/batch/spills"]), "batch-spills")
		// Delta-replay shape: how many evaluations rode the incremental
		// path, the channels they spliced instead of re-timing, and how
		// often the planner had to fall back to a full replay. benchjson
		// -compare tabulates these "delta-*" units with a hit rate.
		b.ReportMetric(float64(snap.Counters["engine/delta/replays"]), "delta-replays")
		b.ReportMetric(float64(snap.Counters["engine/delta/channels_reused"]), "delta-chans-reused")
		b.ReportMetric(float64(snap.Counters["engine/delta/fallbacks"]), "delta-fallbacks")
	}
}
