package memorex

import (
	"fmt"

	"memorex/internal/connect"
	"memorex/internal/explore"
	"memorex/internal/pareto"
	"memorex/internal/workload"
)

// ExploreRequest is the job-oriented description of one exploration:
// a trace or workload source plus the APEX, ConEx and sampling
// configuration and optional constrained-selection scenarios. It is
// the single argument of Explorer.Do — the code path behind every
// public entry point — and its JSON encoding is exactly the body of a
// memorexd POST /v1/jobs submission, so a request runs identically
// in-process and over the wire.
//
// Every configuration field is optional: a nil config block (or zero
// numeric field) inherits the owning Explorer's configuration, so the
// empty request {"benchmark":"compress"} runs the Explorer's defaults.
// Set a block to override it for this request only; overrides are
// validated by Validate and inherit nothing partially — a present
// block behaves exactly like the corresponding Explorer option.
type ExploreRequest struct {
	// Benchmark names the built-in workload to trace ("compress",
	// "li", "vocoder"). Required unless Trace is set, in which case it
	// only relabels the run.
	Benchmark string `json:"benchmark,omitempty"`

	// Trace, when non-nil, is an in-process trace to explore instead
	// of generating Benchmark. Not part of the wire format: remote
	// submitters name a benchmark and configure Workload.
	Trace *Trace `json:"-"`

	// JobID, when set, stamps every run-level event of this request
	// (obs.Event.Job), so a Router sink can stream the run's events to
	// the submitter. memorexd overwrites it with the job id it assigns.
	JobID string `json:"job_id,omitempty"`

	// Workload scales the benchmark (nil = the Explorer's config).
	Workload *WorkloadConfig `json:"workload,omitempty"`
	// APEX bounds the memory-modules sweep (nil = the Explorer's
	// config).
	APEX *APEXConfig `json:"apex,omitempty"`
	// Sampling sets the Phase I time-sampling plan (nil = the
	// Explorer's config).
	Sampling *SamplingConfig `json:"sampling,omitempty"`
	// Library replaces the connectivity IP library (nil = the
	// Explorer's library). Uses the same encoding as library files.
	Library []ConnComponent `json:"library,omitempty"`
	// KeepPerArch overrides how many locally promising designs each
	// memory architecture sends to Phase II (0 = the Explorer's
	// setting).
	KeepPerArch int `json:"keep_per_arch,omitempty"`
	// MaxAssignPerLevel overrides the per-level assignment enumeration
	// cap; 0 means exhaustive, nil means the Explorer's setting.
	MaxAssignPerLevel *int `json:"max_assign_per_level,omitempty"`
	// Exact forces the one-phase reference simulator for this request.
	// (false inherits the Explorer's setting rather than overriding
	// it.)
	Exact bool `json:"exact,omitempty"`

	// Strategy selects the exploration driver: "pruned" (the paper's
	// two-phase algorithm, the default), "full" (exhaustive ground
	// truth), "neighborhood", or the heuristic drivers "ga" and "sa".
	// Empty inherits the default.
	Strategy string `json:"strategy,omitempty"`
	// Search tunes the heuristic drivers (seed, evaluation budget,
	// population, rates); nil means the Explorer's search config, whose
	// zero fields in turn mean the defaults. Ignored by the enumeration
	// strategies.
	Search *SearchConfig `json:"search,omitempty"`

	// Constraints asks for the paper's constrained selections over the
	// fully simulated designs; each entry yields one Report.Selections
	// element.
	Constraints []Constraint `json:"constraints,omitempty"`
}

// Constraint is one constrained-selection scenario: the paper's
// power-, cost- or performance-capped pareto cuts.
type Constraint struct {
	// Scenario is "power" (energy cap, nJ/access), "cost" (gate cap)
	// or "perf" (latency cap, cycles/access).
	Scenario string `json:"scenario"`
	// Limit is the cap value in the scenario's unit; must be positive.
	Limit float64 `json:"limit"`
}

// Selection is the outcome of one requested Constraint: the
// constrained pareto front over the report's fully simulated designs.
type Selection struct {
	Scenario string  `json:"scenario"`
	Limit    float64 `json:"limit"`
	Points   []Point `json:"points"`
}

// Scenario names accepted in Constraint.Scenario.
const (
	ScenarioPower = "power"
	ScenarioCost  = "cost"
	ScenarioPerf  = "perf"
)

// Validate checks the request without resolving it against an
// Explorer: the trace source must exist, every present configuration
// block must be valid on its own, and the constraints must name known
// scenarios with positive limits. It is the daemon's admission check —
// a request that validates here is runnable by any Explorer.
func (r ExploreRequest) Validate() error {
	if r.Trace == nil {
		if r.Benchmark == "" {
			return fmt.Errorf("memorex: request needs a benchmark or a trace")
		}
		if _, err := workload.ByName(r.Benchmark); err != nil {
			return fmt.Errorf("memorex: %w", err)
		}
	}
	if r.Workload != nil {
		if _, err := r.Workload.Normalize(); err != nil {
			return fmt.Errorf("memorex: request workload: %w", err)
		}
	}
	if r.APEX != nil {
		if _, err := r.APEX.Normalize(); err != nil {
			return fmt.Errorf("memorex: request apex: %w", err)
		}
	}
	if r.Sampling != nil {
		if _, err := r.Sampling.Normalize(); err != nil {
			return fmt.Errorf("memorex: request sampling: %w", err)
		}
	}
	if r.Library != nil {
		if err := connect.ValidateLibrary(r.Library); err != nil {
			return fmt.Errorf("memorex: request library: %w", err)
		}
	}
	if r.KeepPerArch < 0 {
		return fmt.Errorf("memorex: request KeepPerArch must be non-negative")
	}
	if r.MaxAssignPerLevel != nil && *r.MaxAssignPerLevel < 0 {
		return fmt.Errorf("memorex: request MaxAssignPerLevel must be non-negative")
	}
	if r.Strategy != "" {
		if _, err := explore.ParseStrategy(r.Strategy); err != nil {
			return fmt.Errorf("memorex: request strategy: %w", err)
		}
	}
	if r.Search != nil {
		if err := r.Search.Validate(); err != nil {
			return fmt.Errorf("memorex: request search: %w", err)
		}
	}
	for i, c := range r.Constraints {
		switch c.Scenario {
		case ScenarioPower, ScenarioCost, ScenarioPerf:
		default:
			return fmt.Errorf("memorex: constraint %d: unknown scenario %q (want power, cost or perf)", i, c.Scenario)
		}
		if !(c.Limit > 0) {
			return fmt.Errorf("memorex: constraint %d (%s): limit must be positive, got %g", i, c.Scenario, c.Limit)
		}
	}
	return nil
}

// apply computes one constraint's selection over the report.
func (c Constraint) apply(r *Report) Selection {
	var pts []pareto.Point
	switch c.Scenario {
	case ScenarioPower:
		pts = r.PowerConstrained(c.Limit)
	case ScenarioCost:
		pts = r.CostConstrained(c.Limit)
	case ScenarioPerf:
		pts = r.PerformanceConstrained(c.Limit)
	}
	return Selection{Scenario: c.Scenario, Limit: c.Limit, Points: pts}
}
