// Command apex runs only the memory-modules exploration stage and prints
// the cost/miss-ratio design space and its pareto selection.
//
// Usage:
//
//	apex [-bench compress|li|vocoder] [-scale N] [-seed N] [-all]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"memorex/internal/apex"
	"memorex/internal/cliutil"
	"memorex/internal/profile"
)

func main() {
	cliutil.Init("apex")
	var wl cliutil.WorkloadFlags
	wl.Register(flag.CommandLine)
	all := flag.Bool("all", false, "print every evaluated design, not only the selection")
	flag.Parse()

	tr, err := wl.Load()
	if err != nil {
		log.Fatal(err)
	}
	prof := profile.Analyze(tr)
	res, err := apex.Explore(tr, prof, apex.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d designs evaluated (%d simulated accesses)\n",
		wl.Bench, len(res.All), res.EvaluatedAccesses)
	if *all {
		sorted := append([]apex.DesignPoint(nil), res.All...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Gates < sorted[j].Gates })
		for _, dp := range sorted {
			fmt.Printf("  %12.0f gates  miss %.4f  %s\n", dp.Gates, dp.MissRatio, dp.Arch.Describe(tr))
		}
	}
	fmt.Println("selected (cost/miss-ratio pareto):")
	for i, dp := range res.Selected {
		fmt.Printf("  %d. %12.0f gates  miss %.4f  %s\n", i+1, dp.Gates, dp.MissRatio, dp.Arch.Describe(tr))
	}
}
