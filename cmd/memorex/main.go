// Command memorex runs the full MemorEx pipeline (profiling, APEX
// memory-modules exploration, ConEx connectivity exploration) on one of
// the built-in benchmarks and prints the resulting design points and
// pareto fronts.
//
// Usage:
//
//	memorex [-bench compress|li|vocoder] [-scale N] [-seed N] [-workers N]
//	        [-keep N] [-cap N] [-scenario power|cost|perf] [-limit V]
//	        [-exact] [-trace-cache DIR] [-trace-cache-limit SIZE]
//	        [-events FILE] [-progress] [-debug-addr ADDR]
//	        [-cpuprofile file] [-memprofile file]
//
// -events streams every run/phase/evaluation/prune event as JSON Lines;
// -progress paints a live status line; -debug-addr serves expvar
// (including the exploration metrics registry) and pprof while the
// exploration runs. -trace-cache persists Phase A behavior traces
// across runs, so re-running the same benchmark warm-starts without
// re-simulating the memory modules. Ctrl-C cancels between design-point
// evaluations.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"memorex"
	"memorex/internal/adl"
	"memorex/internal/cliutil"
	"memorex/internal/connect"
)

func main() {
	cliutil.Init("memorex")
	var wl cliutil.WorkloadFlags
	var ev cliutil.EvalFlags
	var prof cliutil.ProfileFlags
	var ob cliutil.ObsFlags
	var cf cliutil.CacheFlags
	var sf cliutil.SearchFlags
	wl.Register(flag.CommandLine)
	ev.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	ob.Register(flag.CommandLine)
	cf.Register(flag.CommandLine)
	sf.Register(flag.CommandLine)
	keep := flag.Int("keep", 8, "locally promising designs kept per memory architecture")
	assignCap := flag.Int("cap", 192, "max connectivity assignments per clustering level")
	scenario := flag.String("scenario", "", "constrained selection: power, cost or perf")
	limit := flag.Float64("limit", 0, "constraint value for -scenario (nJ, gates or cycles)")
	jsonOut := flag.String("json", "", "write the explored design points as JSON to this file")
	emitDir := flag.String("emit", "", "write each cost/perf front design as an ADL file into this directory")
	libPath := flag.String("lib", "", "JSON connectivity IP library to explore with (default: built-in)")
	dumpLib := flag.String("dumplib", "", "write the built-in connectivity library as JSON to this file and exit")
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	if *dumpLib != "" {
		f, err := os.Create(*dumpLib)
		if err != nil {
			log.Fatal(err)
		}
		if err := connect.WriteLibrary(f, connect.Library()); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *dumpLib)
		return
	}

	lib, err := cliutil.LoadLibrary(*libPath)
	if err != nil {
		log.Fatal(err)
	}
	if *libPath != "" {
		fmt.Printf("using connectivity library %s (%d components)\n", *libPath, len(lib))
	}

	observer, closeObs, err := ob.Observer()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeObs(); err != nil {
			log.Printf("events: %v", err)
		}
	}()

	exOpts := []memorex.ExplorerOption{
		memorex.WithWorkloadConfig(wl.Config()),
		memorex.WithWorkers(ev.Workers),
		memorex.WithLibrary(lib),
		memorex.WithKeepPerArch(*keep),
		memorex.WithAssignCap(*assignCap),
		memorex.WithExact(ev.Exact),
		memorex.WithObserver(observer),
	}
	if cf.Dir != "" {
		limit, err := cf.LimitBytes()
		if err != nil {
			log.Fatal(err)
		}
		exOpts = append(exOpts, memorex.WithTraceCache(cf.Dir), memorex.WithTraceCacheLimit(limit))
	}
	ex, err := memorex.NewExplorer(exOpts...)
	if err != nil {
		log.Fatal(err)
	}
	ob.ServeDebug(ex.MetricsSnapshot)

	if _, err := sf.ParseStrategy(); err != nil {
		log.Fatal(err)
	}
	search := sf.Config(wl.Seed)

	ctx, cancel := cliutil.SignalContext()
	defer cancel()
	start := time.Now()
	rep, err := ex.Do(ctx, memorex.ExploreRequest{
		Benchmark: wl.Bench,
		Strategy:  sf.Strategy,
		Search:    &search,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %d accesses, %d data structures\n",
		wl.Bench, rep.Trace.NumAccesses(), len(rep.Trace.DS)-1)
	fmt.Println("\naccess patterns:")
	for _, s := range rep.Profile.Stats {
		fmt.Printf("  %-10s %9d accesses  %-13s chain=%.2f footprint=%dB\n",
			s.Name, s.Count, s.Class, s.ChainRatio, s.FootprintBytes)
	}

	fmt.Printf("\nAPEX: %d memory architectures evaluated, %d selected:\n",
		len(rep.APEX.All), len(rep.APEX.Selected))
	for i, dp := range rep.APEX.Selected {
		fmt.Printf("  %d. %12.0f gates  miss %.4f  %s\n",
			i+1, dp.Gates, dp.MissRatio, dp.Arch.Describe(rep.Trace))
	}

	if rep.Search != nil {
		fmt.Printf("\nheuristic search: strategy=%s seed=%d budget=%d evals=%d\n",
			rep.Search.Strategy, rep.Search.Seed, rep.Search.Budget, rep.Search.Evals)
	}

	cloud := 0
	for _, pts := range rep.ConEx.PerArch {
		cloud += len(pts)
	}
	if rep.Search != nil {
		// Heuristic drivers keep no per-arch estimate cloud; the
		// provenance counters carry the estimate/promotion split.
		cloud = int(rep.Search.Evals - rep.Search.Promotions)
	}
	fmt.Printf("\nConEx: %d connectivity candidates estimated, %d fully simulated\n",
		cloud, len(rep.ConEx.Combined))
	fmt.Println("cost/performance pareto front:")
	fmt.Printf("  %12s %9s %8s  %s\n", "cost[gates]", "lat[cyc]", "nrg[nJ]", "design")
	for _, dp := range rep.ConEx.CostPerfFront {
		fmt.Printf("  %12.0f %9.2f %8.2f  %s\n",
			dp.Cost, dp.Latency, dp.Energy, dp.MemArch.Describe(rep.Trace)+" | "+dp.Conn.Describe(dp.MemArch))
	}

	if *scenario != "" {
		var pts []memorex.Point
		switch *scenario {
		case "power":
			pts = rep.PowerConstrained(*limit)
		case "cost":
			pts = rep.CostConstrained(*limit)
		case "perf":
			pts = rep.PerformanceConstrained(*limit)
		default:
			log.Fatalf("unknown scenario %q (want power, cost or perf)", *scenario)
		}
		fmt.Printf("\n%s-constrained selection (limit %g): %d designs\n", *scenario, *limit, len(pts))
		for _, p := range pts {
			fmt.Printf("  %12.0f gates %8.2f cyc %7.2f nJ  %s\n", p.Cost, p.Latency, p.Energy, p.Label)
		}
	}

	if *emitDir != "" {
		if err := os.MkdirAll(*emitDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, dp := range rep.ConEx.CostPerfFront {
			src, err := adl.Format(dp.MemArch, dp.Conn, rep.Trace)
			if err != nil {
				log.Fatal(err)
			}
			path := fmt.Sprintf("%s/%s-design%02d.adl", *emitDir, wl.Bench, i)
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("\nemitted %d ADL designs to %s (run with cmd/simulate -arch)\n",
			len(rep.ConEx.CostPerfFront), *emitDir)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nwrote", *jsonOut)
	}

	fmt.Printf("\nexploration work: %d sampled + %d simulated accesses in %v\n",
		rep.ConEx.EstimatedAccesses, rep.ConEx.SimulatedAccesses,
		time.Since(start).Round(time.Millisecond))
	fmt.Println(ex.Stats())
	if cs, ok := ex.TraceCacheStats(); ok {
		fmt.Printf("trace cache %s: %d hits, %d misses (%d corrupt quarantined), %d puts, %d evictions, %d bytes on disk\n",
			cf.Dir, cs.Hits, cs.Misses, cs.CorruptQuarantined, cs.Puts, cs.Evictions, cs.BytesOnDisk)
	}
}
