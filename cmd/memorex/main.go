// Command memorex runs the full MemorEx pipeline (profiling, APEX
// memory-modules exploration, ConEx connectivity exploration) on one of
// the built-in benchmarks and prints the resulting design points and
// pareto fronts.
//
// Usage:
//
//	memorex [-bench compress|li|vocoder] [-scale N] [-seed N] [-workers N]
//	        [-keep N] [-cap N] [-scenario power|cost|perf] [-limit V]
//	        [-exact] [-cpuprofile file] [-memprofile file]
//
// Ctrl-C cancels the exploration between design-point evaluations.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"memorex"
	"memorex/internal/adl"
	"memorex/internal/connect"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("memorex: ")
	bench := flag.String("bench", "compress", "benchmark: "+strings.Join(memorex.Benchmarks(), ", "))
	scale := flag.Int("scale", 1, "workload scale factor")
	seed := flag.Int64("seed", 42, "workload seed")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = all CPUs)")
	keep := flag.Int("keep", 8, "locally promising designs kept per memory architecture")
	assignCap := flag.Int("cap", 192, "max connectivity assignments per clustering level")
	scenario := flag.String("scenario", "", "constrained selection: power, cost or perf")
	limit := flag.Float64("limit", 0, "constraint value for -scenario (nJ, gates or cycles)")
	jsonOut := flag.String("json", "", "write the explored design points as JSON to this file")
	emitDir := flag.String("emit", "", "write each cost/perf front design as an ADL file into this directory")
	libPath := flag.String("lib", "", "JSON connectivity IP library to explore with (default: built-in)")
	dumpLib := flag.String("dumplib", "", "write the built-in connectivity library as JSON to this file and exit")
	exact := flag.Bool("exact", false, "use the one-phase exact simulator instead of behavior-trace replay")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	if *dumpLib != "" {
		f, err := os.Create(*dumpLib)
		if err != nil {
			log.Fatal(err)
		}
		if err := connect.WriteLibrary(f, connect.Library()); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *dumpLib)
		return
	}

	opt := memorex.DefaultOptions(*bench)
	opt.WorkloadConfig.Scale = *scale
	opt.WorkloadConfig.Seed = *seed
	opt.ConEx.Workers = *workers
	opt.ConEx.Engine = memorex.NewEngine(*workers)
	opt.ConEx.KeepPerArch = *keep
	opt.ConEx.MaxAssignPerLevel = *assignCap
	opt.ConEx.Exact = *exact
	if *libPath != "" {
		f, err := os.Open(*libPath)
		if err != nil {
			log.Fatal(err)
		}
		lib, err := connect.ReadLibrary(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opt.ConEx.Library = lib
		fmt.Printf("using connectivity library %s (%d components)\n", *libPath, len(lib))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	start := time.Now()
	rep, err := memorex.Explore(ctx, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %d accesses, %d data structures\n",
		*bench, rep.Trace.NumAccesses(), len(rep.Trace.DS)-1)
	fmt.Println("\naccess patterns:")
	for _, s := range rep.Profile.Stats {
		fmt.Printf("  %-10s %9d accesses  %-13s chain=%.2f footprint=%dB\n",
			s.Name, s.Count, s.Class, s.ChainRatio, s.FootprintBytes)
	}

	fmt.Printf("\nAPEX: %d memory architectures evaluated, %d selected:\n",
		len(rep.APEX.All), len(rep.APEX.Selected))
	for i, dp := range rep.APEX.Selected {
		fmt.Printf("  %d. %12.0f gates  miss %.4f  %s\n",
			i+1, dp.Gates, dp.MissRatio, dp.Arch.Describe(rep.Trace))
	}

	cloud := 0
	for _, pts := range rep.ConEx.PerArch {
		cloud += len(pts)
	}
	fmt.Printf("\nConEx: %d connectivity candidates estimated, %d fully simulated\n",
		cloud, len(rep.ConEx.Combined))
	fmt.Println("cost/performance pareto front:")
	fmt.Printf("  %12s %9s %8s  %s\n", "cost[gates]", "lat[cyc]", "nrg[nJ]", "design")
	for _, dp := range rep.ConEx.CostPerfFront {
		fmt.Printf("  %12.0f %9.2f %8.2f  %s\n",
			dp.Cost, dp.Latency, dp.Energy, dp.MemArch.Describe(rep.Trace)+" | "+dp.Conn.Describe(dp.MemArch))
	}

	if *scenario != "" {
		var pts []memorex.Point
		switch *scenario {
		case "power":
			pts = rep.PowerConstrained(*limit)
		case "cost":
			pts = rep.CostConstrained(*limit)
		case "perf":
			pts = rep.PerformanceConstrained(*limit)
		default:
			log.Fatalf("unknown scenario %q (want power, cost or perf)", *scenario)
		}
		fmt.Printf("\n%s-constrained selection (limit %g): %d designs\n", *scenario, *limit, len(pts))
		for _, p := range pts {
			fmt.Printf("  %12.0f gates %8.2f cyc %7.2f nJ  %s\n", p.Cost, p.Latency, p.Energy, p.Label)
		}
	}

	if *emitDir != "" {
		if err := os.MkdirAll(*emitDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, dp := range rep.ConEx.CostPerfFront {
			src, err := adl.Format(dp.MemArch, dp.Conn, rep.Trace)
			if err != nil {
				log.Fatal(err)
			}
			path := fmt.Sprintf("%s/%s-design%02d.adl", *emitDir, *bench, i)
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("\nemitted %d ADL designs to %s (run with cmd/simulate -arch)\n",
			len(rep.ConEx.CostPerfFront), *emitDir)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nwrote", *jsonOut)
	}

	fmt.Printf("\nexploration work: %d sampled + %d simulated accesses in %v\n",
		rep.ConEx.EstimatedAccesses, rep.ConEx.SimulatedAccesses,
		time.Since(start).Round(time.Millisecond))
	fmt.Println(rep.EngineStats())
}
