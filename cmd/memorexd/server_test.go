package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memorex"
	"memorex/internal/jobapi"
	"memorex/internal/obs"
)

// fastExplorerOpts shrinks the design spaces so daemon tests stay
// quick, mirroring the root package's test configuration.
func fastExplorerOpts() []memorex.ExplorerOption {
	return []memorex.ExplorerOption{
		memorex.WithAPEXConfig(memorex.APEXConfig{
			CacheSizes:  []int{2 << 10, 16 << 10},
			CacheAssocs: []int{2},
			CacheLines:  []int{32},
			MaxCustom:   1,
			SRAMLimit:   80 << 10,
			MaxSelected: 2,
		}),
		memorex.WithAssignCap(12),
		memorex.WithKeepPerArch(3),
		memorex.WithSampling(memorex.SamplingConfig{OnWindow: 500, OffRatio: 9}),
	}
}

// newTestDaemon boots a job server over a fast Explorer and an HTTP
// test listener, returning the server (for its internals), the client,
// and a cleanup-registered httptest server.
func newTestDaemon(t *testing.T, cfg serverConfig) (*server, *jobapi.Client) {
	t.Helper()
	router := obs.NewRouter()
	ex, err := memorex.NewExplorer(append(fastExplorerOpts(),
		memorex.WithObserver(memorex.NewObserver(router)))...)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Explorer, cfg.Router = ex, router
	s := newServer(cfg)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(func() {
		s.drain(30 * time.Second)
		ts.Close()
	})
	return s, &jobapi.Client{Base: ts.URL, HTTPClient: ts.Client()}
}

// submitWait submits a request and polls it to completion.
func submitWait(t *testing.T, c *jobapi.Client, req memorex.ExploreRequest) jobapi.Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	jb, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	jb, err = c.Wait(ctx, jb.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return jb
}

// reportOf parses a done job's report and fails the test otherwise.
func reportOf(t *testing.T, jb jobapi.Job) *memorex.ReportJSON {
	t.Helper()
	if jb.State != jobapi.StateDone {
		t.Fatalf("job %s state = %s (%s), want done", jb.ID, jb.State, jb.Error)
	}
	rep, err := memorex.ReadReportJSON(bytes.NewReader(jb.Report))
	if err != nil {
		t.Fatalf("job %s report: %v", jb.ID, err)
	}
	return rep
}

// designsJSON serializes the report's designs section — the part that
// must be byte-identical across deduplicated runs (engine stats and
// metrics carry wall times and cumulative counters that legitimately
// differ).
func designsJSON(t *testing.T, rep *memorex.ReportJSON) string {
	t.Helper()
	stripped := *rep
	stripped.Engine, stripped.Metrics = nil, nil
	out, err := json.Marshal(stripped)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestDaemonSequentialDedup is the warm-start contract over HTTP: the
// second identical submission reruns the pipeline entirely from the
// shared engine's caches — zero new behavior captures — and returns a
// byte-identical designs section.
func TestDaemonSequentialDedup(t *testing.T) {
	_, c := newTestDaemon(t, serverConfig{MaxRunning: 1})
	req := memorex.ExploreRequest{Benchmark: "vocoder"}

	rep1 := reportOf(t, submitWait(t, c, req))
	rep2 := reportOf(t, submitWait(t, c, req))

	cap1 := rep1.Metrics.Counters["engine/behavior_captures"]
	cap2 := rep2.Metrics.Counters["engine/behavior_captures"]
	if cap1 == 0 {
		t.Fatal("first run captured no behavior traces")
	}
	// The counter is cumulative over the daemon's lifetime: equal
	// values mean the second run captured nothing.
	if cap2 != cap1 {
		t.Fatalf("second run captured %d new behavior traces, want 0", cap2-cap1)
	}
	if d1, d2 := designsJSON(t, rep1), designsJSON(t, rep2); d1 != d2 {
		t.Error("sequential identical jobs produced different designs")
	}
}

// TestDaemonConcurrentDedup submits N identical jobs at once: they
// must all succeed with byte-identical designs, and single-flight must
// collapse their behavior captures to what ONE job costs (measured on
// an identically configured fresh daemon).
func TestDaemonConcurrentDedup(t *testing.T) {
	_, base := newTestDaemon(t, serverConfig{MaxRunning: 1})
	req := memorex.ExploreRequest{Benchmark: "vocoder"}
	baseline := reportOf(t, submitWait(t, base, req)).Metrics.Counters["engine/behavior_captures"]
	if baseline == 0 {
		t.Fatal("baseline run captured no behavior traces")
	}

	const n = 4
	_, c := newTestDaemon(t, serverConfig{MaxRunning: n, QueueCap: n})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ids := make([]string, n)
	for i := range ids {
		jb, err := c.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = jb.ID
	}
	reports := make([]*memorex.ReportJSON, n)
	var lastCaptures int64
	for i, id := range ids {
		jb, err := c.Wait(ctx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = reportOf(t, jb)
		lastCaptures = reports[i].Metrics.Counters["engine/behavior_captures"]
	}
	for i := 1; i < n; i++ {
		if d0, di := designsJSON(t, reports[0]), designsJSON(t, reports[i]); d0 != di {
			t.Errorf("job %s designs differ from job %s", ids[i], ids[0])
		}
	}
	if lastCaptures != baseline {
		t.Errorf("%d concurrent identical jobs captured %d behavior traces, want the single-job %d",
			n, lastCaptures, baseline)
	}
}

// gate returns a TestGate that holds every job until release is closed
// (or the job is cancelled).
func gate(release chan struct{}) func(*job) error {
	return func(jb *job) error {
		select {
		case <-release:
			return nil
		case <-jb.ctx.Done():
			return jb.ctx.Err()
		}
	}
}

// TestDaemonQueueOverflow fills the runner and the queue, then expects
// the next submission to be rejected with 429 + Retry-After.
func TestDaemonQueueOverflow(t *testing.T) {
	release := make(chan struct{})
	_, c := newTestDaemon(t, serverConfig{MaxRunning: 1, QueueCap: 1, TestGate: gate(release)})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req := memorex.ExploreRequest{Benchmark: "vocoder"}

	jb1, err := c.Submit(ctx, req) // occupies the one runner
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, jb1.ID, jobapi.StateRunning)
	jb2, err := c.Submit(ctx, req) // occupies the one queue slot
	if err != nil {
		t.Fatal(err)
	}

	_, err = c.Submit(ctx, req)
	var re *jobapi.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("overflow submission error = %v, want RetryError", err)
	}
	if re.RetryAfter <= 0 {
		t.Errorf("RetryError.RetryAfter = %s, want > 0", re.RetryAfter)
	}
	if !strings.Contains(re.Msg, "queue full") {
		t.Errorf("RetryError.Msg = %q, want queue-full message", re.Msg)
	}

	close(release)
	for _, id := range []string{jb1.ID, jb2.ID} {
		jb, err := c.Wait(ctx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		reportOf(t, jb)
	}
}

// TestDaemonTenantQuota bounds one tenant's active jobs without
// penalizing another tenant.
func TestDaemonTenantQuota(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, c := newTestDaemon(t, serverConfig{MaxRunning: 1, QueueCap: 8, TenantQuota: 1, TestGate: gate(release)})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	req := memorex.ExploreRequest{Benchmark: "vocoder"}

	alice := &jobapi.Client{Base: c.Base, Tenant: "alice", HTTPClient: c.HTTPClient}
	bob := &jobapi.Client{Base: c.Base, Tenant: "bob", HTTPClient: c.HTTPClient}

	if _, err := alice.Submit(ctx, req); err != nil {
		t.Fatal(err)
	}
	_, err := alice.Submit(ctx, req)
	var re *jobapi.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("over-quota submission error = %v, want RetryError", err)
	}
	if !strings.Contains(re.Msg, `"alice"`) {
		t.Errorf("RetryError.Msg = %q, want the tenant named", re.Msg)
	}
	if _, err := bob.Submit(ctx, req); err != nil {
		t.Errorf("bob's submission rejected despite alice's quota: %v", err)
	}
}

// waitState polls until the job reaches the given state.
func waitState(t *testing.T, c *jobapi.Client, id string, want jobapi.State) jobapi.Job {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		jb, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if jb.State == want {
			return jb
		}
		if jb.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s state = %s (%s), want %s", id, jb.State, jb.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonCancel cancels a queued and a running job: both must land
// in the cancelled state, the queued one immediately.
func TestDaemonCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, c := newTestDaemon(t, serverConfig{MaxRunning: 1, QueueCap: 2, TestGate: gate(release)})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	req := memorex.ExploreRequest{Benchmark: "vocoder"}

	running, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, running.ID, jobapi.StateRunning)
	queued, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	jb, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jb.State != jobapi.StateCancelled {
		t.Errorf("cancelled queued job state = %s, want cancelled immediately", jb.State)
	}

	if _, err := c.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	jb, err = c.Wait(ctx, running.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if jb.State != jobapi.StateCancelled {
		t.Errorf("cancelled running job state = %s (%s), want cancelled", jb.State, jb.Error)
	}

	// Cancelling a terminal job is a no-op, not an error.
	jb, err = c.Cancel(ctx, queued.ID)
	if err != nil || jb.State != jobapi.StateCancelled {
		t.Errorf("re-cancel = (%v, %s), want idempotent cancelled", err, jb.State)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cancelled != 2 {
		t.Errorf("health.Cancelled = %d, want 2", h.Cancelled)
	}
}

// TestDaemonDrain exercises graceful shutdown: draining rejects new
// submissions with 503, cancels queued jobs, lets the running job
// finish, and reports a clean drain.
func TestDaemonDrain(t *testing.T) {
	release := make(chan struct{})
	s, c := newTestDaemon(t, serverConfig{MaxRunning: 1, QueueCap: 2, TestGate: gate(release)})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req := memorex.ExploreRequest{Benchmark: "vocoder"}

	running, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, running.ID, jobapi.StateRunning)
	queued, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan bool, 1)
	go func() { drained <- s.drain(time.Minute) }()

	// Draining: health flips and new submissions get 503.
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Status == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, err = c.Submit(ctx, req)
	var se *jobapi.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining = %v, want 503", err)
	}

	// The queued job is cancelled rather than started.
	jb, err := c.Wait(ctx, queued.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if jb.State != jobapi.StateCancelled {
		t.Errorf("queued job state after drain = %s, want cancelled", jb.State)
	}

	// The running job finishes once released, and the drain is clean.
	close(release)
	if clean := <-drained; !clean {
		t.Error("drain reported timeout, want clean")
	}
	jb, err = c.Job(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	reportOf(t, jb)

	// drain is idempotent.
	if !s.drain(time.Second) {
		t.Error("second drain not idempotent")
	}
}

// TestDaemonEvents checks per-job event isolation: each job's stream
// carries exactly its own run-level events — bracketed by run-start /
// run-end, every event stamped with the job's id — even though both
// jobs share one observer.
func TestDaemonEvents(t *testing.T) {
	_, c := newTestDaemon(t, serverConfig{MaxRunning: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	jb1 := submitWait(t, c, memorex.ExploreRequest{Benchmark: "vocoder"})
	jb2 := submitWait(t, c, memorex.ExploreRequest{Benchmark: "vocoder"})
	reportOf(t, jb1)
	reportOf(t, jb2)

	for _, jb := range []jobapi.Job{jb1, jb2} {
		var events []obs.Event
		err := c.Events(ctx, jb.ID, func(ev obs.Event) error {
			events = append(events, ev)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(events) == 0 {
			t.Fatalf("job %s: empty event stream", jb.ID)
		}
		for _, ev := range events {
			if ev.Job != jb.ID {
				t.Fatalf("job %s stream carries event for %q", jb.ID, ev.Job)
			}
		}
		if events[0].Kind != obs.KindRunStart {
			t.Errorf("job %s stream starts with %s, want %s", jb.ID, events[0].Kind, obs.KindRunStart)
		}
		if last := events[len(events)-1]; last.Kind != obs.KindRunEnd {
			t.Errorf("job %s stream ends with %s, want %s", jb.ID, last.Kind, obs.KindRunEnd)
		}
		if jb.EventsDropped != 0 {
			t.Errorf("job %s dropped %d events", jb.ID, jb.EventsDropped)
		}
	}
}

// TestDaemonValidation exercises the 400/404 surface.
func TestDaemonValidation(t *testing.T) {
	_, c := newTestDaemon(t, serverConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"benchmark": `},
		{"unknown field", `{"benchmark": "vocoder", "bogus": 1}`},
		{"unknown benchmark", `{"benchmark": "quake3"}`},
		{"no trace source", `{}`},
		{"bad constraint", `{"benchmark": "vocoder", "constraints": [{"scenario": "speed", "limit": 1}]}`},
		{"negative keep", `{"benchmark": "vocoder", "keep_per_arch": -1}`},
		{"unknown strategy", `{"benchmark": "vocoder", "strategy": "tabu"}`},
		{"bad search budget", `{"benchmark": "vocoder", "strategy": "ga", "search": {"budget": -1}}`},
		{"bad search cooling", `{"benchmark": "vocoder", "strategy": "sa", "search": {"cooling": 1.5}}`},
	}
	for _, tc := range cases {
		_, err := c.SubmitRaw(ctx, []byte(tc.body))
		var se *jobapi.StatusError
		if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
			t.Errorf("%s: error = %v, want 400", tc.name, err)
		}
	}

	if _, err := c.Job(ctx, "job-999999"); err == nil {
		t.Error("unknown job id fetch succeeded, want 404")
	} else {
		var se *jobapi.StatusError
		if !errors.As(err, &se) || se.Code != http.StatusNotFound {
			t.Errorf("unknown job error = %v, want 404", err)
		}
	}
}

// TestDaemonHeuristicJob runs a GA exploration end-to-end over the
// job API: the submitted strategy and search config drive the run and
// the search provenance (strategy, seed, budget, evaluations) comes
// back in the report JSON.
func TestDaemonHeuristicJob(t *testing.T) {
	_, c := newTestDaemon(t, serverConfig{})
	jb := submitWait(t, c, memorex.ExploreRequest{
		Benchmark: "vocoder",
		Strategy:  "ga",
		Search:    &memorex.SearchConfig{Seed: 9, Budget: 60, Population: 8},
	})
	rep := reportOf(t, jb)
	if rep.Search == nil {
		t.Fatal("heuristic job report carries no search provenance")
	}
	if rep.Search.Strategy != "ga" || rep.Search.Seed != 9 || rep.Search.Budget != 60 {
		t.Errorf("provenance = %+v, want ga/9/60", rep.Search)
	}
	if rep.Search.Evals <= 0 || rep.Search.Evals > 60 {
		t.Errorf("evals %d outside (0, 60]", rep.Search.Evals)
	}
	if len(rep.Designs) == 0 {
		t.Error("heuristic job report has no designs")
	}
}

// TestDaemonJobRetention exercises the terminal-job janitor: finished
// jobs older than the retention window are evicted from status, list
// and the health summary, while queued and running jobs are immune no
// matter how old, and the janitor sweeps on its own.
func TestDaemonJobRetention(t *testing.T) {
	release := make(chan struct{})
	// A long retention keeps the background janitor out of this test's
	// way (TestDaemonJobRetentionJanitor covers it); eviction is driven
	// explicitly through evictExpired with shifted clocks.
	retention := time.Hour
	s, c := newTestDaemon(t, serverConfig{
		MaxRunning: 1, QueueCap: 2, JobRetention: retention, TestGate: gate(release),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req := memorex.ExploreRequest{Benchmark: "vocoder"}

	running, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, running.ID, jobapi.StateRunning)
	queued, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Non-terminal jobs survive an eviction sweep arbitrarily far in
	// the future; only finished jobs age out.
	if n := s.evictExpired(time.Now().Add(24 * time.Hour)); n != 0 {
		t.Fatalf("evictExpired removed %d live jobs, want 0", n)
	}
	if _, err := c.Job(ctx, running.ID); err != nil {
		t.Fatalf("running job evicted: %v", err)
	}
	if _, err := c.Job(ctx, queued.ID); err != nil {
		t.Fatalf("queued job evicted: %v", err)
	}

	// Finish both: cancel the queued one, open the gate for the
	// running one (and every later job in this test).
	if _, err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	reportOf(t, waitState(t, c, running.ID, jobapi.StateDone))

	// A sweep dated before the jobs expire keeps them queryable.
	if n := s.evictExpired(time.Now()); n != 0 {
		t.Fatalf("early sweep evicted %d jobs, want 0", n)
	}

	// A sweep past the window evicts both terminal jobs everywhere:
	// status 404s, the list empties, health forgets the counts.
	if n := s.evictExpired(time.Now().Add(2 * retention)); n != 2 {
		t.Fatalf("expired sweep evicted %d jobs, want 2", n)
	}
	var se *jobapi.StatusError
	if _, err := c.Job(ctx, running.ID); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Errorf("evicted job fetch = %v, want 404", err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("list holds %d jobs after eviction, want 0", len(jobs))
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Done != 0 || h.Cancelled != 0 || h.Queued != 0 || h.Running != 0 {
		t.Errorf("health after eviction = %+v, want all zero", h)
	}
}

// TestDaemonJobRetentionJanitor: with a short retention, the
// background janitor evicts a finished job on its own.
func TestDaemonJobRetentionJanitor(t *testing.T) {
	_, c := newTestDaemon(t, serverConfig{MaxRunning: 1, JobRetention: 100 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	done := submitWait(t, c, memorex.ExploreRequest{Benchmark: "vocoder"})
	reportOf(t, done)
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := c.Job(ctx, done.ID)
		var se *jobapi.StatusError
		if errors.As(err, &se) && se.Code == http.StatusNotFound {
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never evicted the finished job")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
