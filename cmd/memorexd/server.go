package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"memorex"
	"memorex/internal/jobapi"
	"memorex/internal/obs"
)

// serverConfig is the daemon's admission and execution configuration.
type serverConfig struct {
	// Explorer is the shared exploration handle every job runs on: one
	// engine, one memo cache, one optional persistent trace cache —
	// identical jobs from any tenant dedup onto the same work.
	Explorer *memorex.Explorer
	// Router is the per-job event fan-out; it must be one of the sinks
	// of the Explorer's observer.
	Router *obs.Router
	// QueueCap bounds the number of admitted-but-not-finished jobs
	// waiting to run; submissions beyond it are rejected with 429.
	QueueCap int
	// MaxRunning bounds how many jobs execute concurrently.
	MaxRunning int
	// TenantQuota bounds each tenant's active (queued + running) jobs;
	// 0 disables per-tenant quotas.
	TenantQuota int
	// SharedEvents subscribes every job's event feed to unscoped
	// shared-engine events as well (see obs.Router).
	SharedEvents bool
	// EventBuffer bounds the per-job event log retained for streaming
	// (0 = a default).
	EventBuffer int
	// JobRetention bounds how long terminal jobs (done, failed,
	// cancelled) stay queryable after finishing; a janitor evicts
	// older ones from the job table. 0 disables eviction. The report
	// JSON the client fetched remains the durable artifact — the job
	// table is a bounded window, not an archive.
	JobRetention time.Duration
	// TestGate, when set, runs before each job's exploration; tests use
	// it to hold jobs "running" while they probe queue and cancel
	// behavior. A non-nil error fails the job with it.
	TestGate func(jb *job) error
}

// job is one admitted exploration job.
type job struct {
	id     string
	tenant string
	req    memorex.ExploreRequest

	cancel context.CancelFunc
	ctx    context.Context
	sub    *obs.Subscription
	done   chan struct{}

	mu            sync.Mutex
	cond          *sync.Cond
	state         jobapi.State
	created       time.Time
	started       time.Time
	finished      time.Time
	errMsg        string
	report        []byte
	events        []obs.Event
	eventsDropped int64
	evDone        bool
}

// server multiplexes exploration jobs onto the shared Explorer.
type server struct {
	cfg serverConfig

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string       // submission order
	active   map[string]int // tenant -> queued + running jobs
	byState  map[jobapi.State]int
	queue    chan *job
	draining bool
	seq      int

	runners     sync.WaitGroup
	janitorStop chan struct{}

	// testGate, when set, is invoked before each job's exploration; it
	// lets tests hold a job "running" and observe queue behavior. A
	// non-nil error (typically jb.ctx.Err()) fails the job with it.
	testGate func(jb *job) error
}

const defaultEventBuffer = 4096

// newServer builds the job server and starts its runner pool.
func newServer(cfg serverConfig) *server {
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 64
	}
	if cfg.MaxRunning < 1 {
		cfg.MaxRunning = 2
	}
	if cfg.EventBuffer < 1 {
		cfg.EventBuffer = defaultEventBuffer
	}
	s := &server{
		cfg:      cfg,
		jobs:     map[string]*job{},
		active:   map[string]int{},
		byState:  map[jobapi.State]int{},
		queue:    make(chan *job, cfg.QueueCap),
		testGate: cfg.TestGate,
	}
	s.runners.Add(cfg.MaxRunning)
	for i := 0; i < cfg.MaxRunning; i++ {
		go s.runner()
	}
	if cfg.JobRetention > 0 {
		s.janitorStop = make(chan struct{})
		go s.janitor()
	}
	return s
}

// janitor evicts expired terminal jobs on a period derived from the
// retention window, until drain stops it.
func (s *server) janitor() {
	tick := time.NewTicker(janitorInterval(s.cfg.JobRetention))
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-tick.C:
			if n := s.evictExpired(now); n > 0 {
				log.Printf("janitor: evicted %d expired jobs (retention %s)", n, s.cfg.JobRetention)
			}
		}
	}
}

// janitorInterval scales the eviction sweep to the retention window,
// clamped so short test retentions still sweep promptly and long ones
// do not wake the daemon needlessly.
func janitorInterval(retention time.Duration) time.Duration {
	iv := retention / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	return iv
}

// evictExpired removes terminal jobs that finished more than the
// retention window before now, keeping list, lookup and health
// consistent. It returns the number evicted.
func (s *server) evictExpired(now time.Time) int {
	if s.cfg.JobRetention <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.JobRetention)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	keep := s.order[:0]
	for _, id := range s.order {
		jb := s.jobs[id]
		jb.mu.Lock()
		state, finished := jb.state, jb.finished
		jb.mu.Unlock()
		terminal := state == jobapi.StateDone || state == jobapi.StateFailed || state == jobapi.StateCancelled
		if terminal && !finished.IsZero() && finished.Before(cutoff) {
			delete(s.jobs, id)
			s.byState[state]--
			n++
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
	return n
}

// routes returns the daemon's HTTP handler.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+jobapi.PathJobs, s.handleSubmit)
	mux.HandleFunc("GET "+jobapi.PathJobs, s.handleList)
	mux.HandleFunc("GET "+jobapi.PathJobs+"/{id}", s.handleStatus)
	mux.HandleFunc("GET "+jobapi.PathJobs+"/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE "+jobapi.PathJobs+"/{id}", s.handleCancel)
	mux.HandleFunc("GET "+jobapi.PathHealth, s.handleHealth)
	return mux
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, jobapi.Error{Error: fmt.Sprintf(format, args...)})
}

// rejectBusy writes the 429 admission rejection with a Retry-After
// hint sized to the daemon's current load.
func (s *server) rejectBusy(w http.ResponseWriter, format string, args ...interface{}) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, format, args...)
}

// maxRequestBody bounds submission bodies (custom libraries are a few
// KB; nothing legitimate approaches this).
const maxRequestBody = 8 << 20

// handleSubmit admits one exploration job: decode, validate, check the
// tenant quota and the queue bound, then enqueue.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req memorex.ExploreRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tenant := r.Header.Get(jobapi.TenantHeader)
	if tenant == "" {
		tenant = jobapi.DefaultTenant
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	if q := s.cfg.TenantQuota; q > 0 && s.active[tenant] >= q {
		s.mu.Unlock()
		s.rejectBusy(w, "tenant %q has %d active jobs (quota %d)", tenant, q, q)
		return
	}

	s.seq++
	jb := &job{
		id:      fmt.Sprintf("job-%06d", s.seq),
		tenant:  tenant,
		req:     req,
		state:   jobapi.StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	jb.cond = sync.NewCond(&jb.mu)
	// The job runs under its own context: submission is asynchronous,
	// so the HTTP request's context must not cancel the exploration.
	jb.ctx, jb.cancel = context.WithCancel(context.Background())
	// The daemon assigns the job identity; a client-set JobID would
	// collide across tenants.
	jb.req.JobID = jb.id

	select {
	case s.queue <- jb:
	default:
		s.mu.Unlock()
		s.rejectBusy(w, "job queue full (%d queued)", s.cfg.QueueCap)
		return
	}
	jb.sub = s.cfg.Router.Subscribe(jb.id, s.cfg.EventBuffer, s.cfg.SharedEvents)
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb.id)
	s.active[tenant]++
	s.byState[jobapi.StateQueued]++
	s.mu.Unlock()

	// Drain the job's event subscription into its streamable log.
	go jb.collectEvents()

	w.Header().Set("Location", jobapi.PathJobs+"/"+jb.id)
	writeJSON(w, http.StatusAccepted, jb.snapshot())
}

// collectEvents copies the job's routed events into its log, waking
// any streaming handlers, until the subscription is cancelled.
func (jb *job) collectEvents() {
	for ev := range jb.sub.Events() {
		jb.mu.Lock()
		jb.events = append(jb.events, ev)
		jb.cond.Broadcast()
		jb.mu.Unlock()
	}
	jb.mu.Lock()
	jb.eventsDropped = jb.sub.Dropped()
	jb.evDone = true
	jb.cond.Broadcast()
	jb.mu.Unlock()
}

// snapshot renders the job's current wire representation.
func (jb *job) snapshot() jobapi.Job {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	out := jobapi.Job{
		ID:            jb.id,
		Tenant:        jb.tenant,
		State:         jb.state,
		Created:       jb.created,
		Error:         jb.errMsg,
		EventsDropped: jb.eventsDropped,
	}
	if !jb.started.IsZero() {
		t := jb.started
		out.Started = &t
	}
	if !jb.finished.IsZero() {
		t := jb.finished
		out.Finished = &t
	}
	if jb.report != nil {
		out.Report = json.RawMessage(jb.report)
	}
	return out
}

// runner executes queued jobs until the queue is closed (drain).
func (s *server) runner() {
	defer s.runners.Done()
	for jb := range s.queue {
		s.runJob(jb)
	}
}

// runJob moves one job through running to a terminal state.
func (s *server) runJob(jb *job) {
	if !s.startJob(jb) {
		return // cancelled while queued
	}
	var rep *memorex.Report
	var err error
	if s.testGate != nil {
		err = s.testGate(jb)
	}
	if err == nil {
		rep, err = s.cfg.Explorer.Do(jb.ctx, jb.req)
	}
	s.finishJob(jb, rep, err)
}

// startJob transitions queued -> running, unless the job was cancelled
// while it waited.
func (s *server) startJob(jb *job) bool {
	jb.mu.Lock()
	if jb.state != jobapi.StateQueued {
		jb.mu.Unlock()
		return false
	}
	if jb.ctx.Err() != nil {
		jb.mu.Unlock()
		s.finishJob(jb, nil, jb.ctx.Err())
		return false
	}
	jb.state = jobapi.StateRunning
	jb.started = time.Now()
	jb.mu.Unlock()

	s.mu.Lock()
	s.byState[jobapi.StateQueued]--
	s.byState[jobapi.StateRunning]++
	s.mu.Unlock()
	return true
}

// finishJob records the outcome, releases the tenant's quota slot and
// closes the job's event feed.
func (s *server) finishJob(jb *job, rep *memorex.Report, err error) {
	state := jobapi.StateDone
	var errMsg string
	var report []byte
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || jb.ctx.Err() != nil):
		state, errMsg = jobapi.StateCancelled, "cancelled"
	case err != nil:
		state, errMsg = jobapi.StateFailed, err.Error()
	default:
		var buf bytes.Buffer
		if werr := rep.WriteJSON(&buf); werr != nil {
			state, errMsg = jobapi.StateFailed, fmt.Sprintf("serializing report: %v", werr)
		} else {
			report = buf.Bytes()
		}
	}

	jb.mu.Lock()
	prev := jb.state
	jb.state = state
	jb.errMsg = errMsg
	jb.report = report
	jb.finished = time.Now()
	jb.mu.Unlock()

	s.mu.Lock()
	s.byState[prev]--
	s.byState[state]++
	s.active[jb.tenant]--
	if s.active[jb.tenant] == 0 {
		delete(s.active, jb.tenant)
	}
	s.mu.Unlock()

	jb.cancel()
	// All of the run's events were emitted synchronously before Do
	// returned; cancelling the subscription now closes the feed after
	// the buffered tail is drained.
	jb.sub.Cancel()
	close(jb.done)
	log.Printf("%s: %s (tenant %s)", jb.id, state, jb.tenant)
}

// lookup resolves the {id} path component.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	jb := s.jobs[id]
	s.mu.Unlock()
	if jb == nil {
		writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return jb
}

// handleStatus serves one job's status (with the report once done).
func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if jb := s.lookup(w, r); jb != nil {
		writeJSON(w, http.StatusOK, jb.snapshot())
	}
}

// handleList serves all jobs, newest first.
func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))
	out := jobapi.JobList{Jobs: []jobapi.Job{}}
	for _, id := range ids {
		s.mu.Lock()
		jb := s.jobs[id]
		s.mu.Unlock()
		if jb == nil {
			continue // evicted between the two lock windows
		}
		snap := jb.snapshot()
		snap.Report = nil // list stays light; fetch the job for the report
		out.Jobs = append(out.Jobs, snap)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCancel cancels a queued or running job.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	s.cancelJob(jb)
	writeJSON(w, http.StatusAccepted, jb.snapshot())
}

// cancelJob cancels one job: a queued job finishes as cancelled
// immediately (the runner will skip it), a running one is interrupted
// through its context and finishes when the engine yields. Terminal
// jobs are left untouched.
func (s *server) cancelJob(jb *job) {
	jb.mu.Lock()
	state := jb.state
	jb.mu.Unlock()
	switch state {
	case jobapi.StateQueued:
		jb.cancel()
		// Finish it now so status and quota reflect the cancellation
		// without waiting for a runner to reach it; startJob's state
		// check makes the later dequeue a no-op.
		jb.mu.Lock()
		still := jb.state == jobapi.StateQueued
		jb.mu.Unlock()
		if still {
			s.finishQueuedCancel(jb)
		}
	case jobapi.StateRunning:
		jb.cancel()
	}
}

// finishQueuedCancel finalizes a queued job as cancelled, guarding
// against the runner picking it up concurrently.
func (s *server) finishQueuedCancel(jb *job) {
	jb.mu.Lock()
	if jb.state != jobapi.StateQueued {
		jb.mu.Unlock()
		return
	}
	jb.state = jobapi.StateCancelled
	jb.errMsg = "cancelled"
	jb.finished = time.Now()
	jb.mu.Unlock()

	s.mu.Lock()
	s.byState[jobapi.StateQueued]--
	s.byState[jobapi.StateCancelled]++
	s.active[jb.tenant]--
	if s.active[jb.tenant] == 0 {
		delete(s.active, jb.tenant)
	}
	s.mu.Unlock()

	jb.sub.Cancel()
	close(jb.done)
	log.Printf("%s: cancelled while queued (tenant %s)", jb.id, jb.tenant)
}

// handleEvents streams the job's event log as JSONL: everything
// routed so far, then live events as they arrive, until the job's
// feed closes or the client disconnects.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Wake the cond wait below when the client goes away.
	clientGone := r.Context().Done()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-clientGone:
		case <-stop:
		}
		jb.cond.Broadcast()
	}()

	i := 0
	for {
		jb.mu.Lock()
		for i >= len(jb.events) && !jb.evDone && r.Context().Err() == nil {
			jb.cond.Wait()
		}
		batch := append([]obs.Event(nil), jb.events[i:]...)
		i += len(batch)
		done := jb.evDone
		jb.mu.Unlock()

		if r.Context().Err() != nil {
			return
		}
		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done && len(batch) == 0 {
			return
		}
	}
}

// handleHealth serves the liveness and admission summary.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := jobapi.Health{
		Status:      "ok",
		Queued:      s.byState[jobapi.StateQueued],
		Running:     s.byState[jobapi.StateRunning],
		Done:        s.byState[jobapi.StateDone],
		Failed:      s.byState[jobapi.StateFailed],
		Cancelled:   s.byState[jobapi.StateCancelled],
		QueueCap:    s.cfg.QueueCap,
		TenantQuota: s.cfg.TenantQuota,
	}
	if s.draining {
		h.Status = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}

// drain gracefully shuts the job layer down: new submissions are
// rejected, queued jobs are cancelled, running jobs finish (bounded by
// timeout), then the shared Explorer is closed. It reports whether
// every runner finished in time, and is idempotent.
func (s *server) drain(timeout time.Duration) bool {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	var queued []*job
	if !already {
		for _, id := range s.order {
			jb := s.jobs[id]
			jb.mu.Lock()
			if jb.state == jobapi.StateQueued {
				queued = append(queued, jb)
			}
			jb.mu.Unlock()
		}
		close(s.queue)
		if s.janitorStop != nil {
			close(s.janitorStop)
		}
	}
	s.mu.Unlock()
	if already {
		return true
	}

	// Queued jobs are not in flight: cancel rather than start them.
	for _, jb := range queued {
		s.cancelJob(jb)
	}

	finished := make(chan struct{})
	go func() {
		s.runners.Wait()
		close(finished)
	}()
	clean := true
	select {
	case <-finished:
	case <-time.After(timeout):
		log.Printf("drain: timeout after %s, abandoning in-flight jobs", timeout)
		clean = false
	}
	if err := s.cfg.Explorer.Close(); err != nil {
		log.Printf("drain: closing explorer: %v", err)
	}
	return clean
}

// retryAfterSeconds is exported for tests asserting the header value.
func retryAfterSeconds(h http.Header) int {
	n, _ := strconv.Atoi(h.Get("Retry-After"))
	return n
}
