// Command memorexd is the MemorEx exploration daemon: a long-running
// HTTP service that multiplexes exploration jobs from many clients
// onto ONE shared memorex.Explorer. Because every job runs through the
// same evaluation engine, identical work deduplicates across tenants —
// concurrent identical jobs single-flight onto one evaluation, repeat
// submissions warm-start from the shared memoization cache and (with
// -trace-cache) from the persistent behavior-trace cache.
//
// Usage:
//
//	memorexd [-addr localhost:8344] [-workers N] [-exact]
//	         [-queue N] [-max-running N] [-tenant-quota N]
//	         [-job-retention D] [-drain-timeout D] [-shared-events]
//	         [-lib FILE] [-trace-cache DIR] [-trace-cache-limit SIZE]
//	         [-events FILE] [-progress] [-debug-addr ADDR]
//
// The job API is documented in internal/jobapi: POST a
// memorex.ExploreRequest JSON body to /v1/jobs, poll the job id for
// the report, stream its events, DELETE to cancel. Admission is
// bounded: -queue caps waiting jobs and -tenant-quota caps each
// tenant's active jobs (both rejecting with 429 + Retry-After), and
// -max-running bounds concurrently executing jobs.
//
// Finished jobs (done, failed or cancelled) stay queryable for
// -job-retention after completing, then a janitor evicts them; the
// report JSON the client fetched is the durable artifact. Set
// -job-retention 0 to keep every job for the daemon's lifetime.
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, queued
// jobs are cancelled, running jobs finish (bounded by -drain-timeout),
// then the daemon exits 0.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memorex"
	"memorex/internal/cliutil"
	"memorex/internal/jobapi"
	"memorex/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	cliutil.Init("memorexd")
	var ev cliutil.EvalFlags
	var ob cliutil.ObsFlags
	var cf cliutil.CacheFlags
	ev.Register(flag.CommandLine)
	ob.Register(flag.CommandLine)
	cf.Register(flag.CommandLine)
	addr := flag.String("addr", "localhost:8344", "HTTP listen address of the job API")
	queueCap := flag.Int("queue", 64, "max jobs waiting to run; submissions beyond it get 429")
	maxRunning := flag.Int("max-running", 2, "max concurrently executing jobs")
	tenantQuota := flag.Int("tenant-quota", 0, "max active (queued+running) jobs per tenant (0 = unlimited)")
	jobRetention := flag.Duration("job-retention", time.Hour, "how long finished jobs stay queryable before eviction (0 = forever)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max time to wait for running jobs on shutdown")
	sharedEvents := flag.Bool("shared-events", false, "include unscoped shared-engine events in every job's event feed")
	libPath := flag.String("lib", "", "JSON connectivity IP library to explore with (default: built-in)")
	flag.Parse()

	lib, err := cliutil.LoadLibrary(*libPath)
	if err != nil {
		log.Print(err)
		return 1
	}

	// The router is one sink of the shared observer: job-stamped events
	// fan back out to the per-job event streams.
	router := obs.NewRouter()
	observer, closeObs, err := ob.Observer(router)
	if err != nil {
		log.Print(err)
		return 1
	}
	defer func() {
		if err := closeObs(); err != nil {
			log.Printf("events: %v", err)
		}
	}()

	exOpts := []memorex.ExplorerOption{
		memorex.WithWorkers(ev.Workers),
		memorex.WithExact(ev.Exact),
		memorex.WithLibrary(lib),
		memorex.WithObserver(observer),
	}
	if cf.Dir != "" {
		limit, err := cf.LimitBytes()
		if err != nil {
			log.Print(err)
			return 1
		}
		exOpts = append(exOpts, memorex.WithTraceCache(cf.Dir), memorex.WithTraceCacheLimit(limit))
	}
	ex, err := memorex.NewExplorer(exOpts...)
	if err != nil {
		log.Print(err)
		return 1
	}
	ob.ServeDebug(ex.MetricsSnapshot)

	srv := newServer(serverConfig{
		Explorer:     ex,
		Router:       router,
		QueueCap:     *queueCap,
		MaxRunning:   *maxRunning,
		TenantQuota:  *tenantQuota,
		SharedEvents: *sharedEvents,
		JobRetention: *jobRetention,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.routes()}
	log.Printf("serving the job API on http://%s%s (queue %d, max-running %d)",
		ln.Addr(), jobapi.PathJobs, *queueCap, *maxRunning)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Printf("serve: %v", err)
		srv.drain(*drainTimeout)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Print("shutdown signal: draining (new submissions get 503)")

	// Finish the in-flight jobs first — their event streams end when
	// the jobs do — then close the listener and idle connections.
	clean := srv.drain(*drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if !clean {
		return 1
	}
	log.Print("drained cleanly")
	return 0
}
