// Command memorexctl is the client of the memorexd exploration
// daemon: it submits exploration jobs, polls their status, streams
// their events and fetches their reports over the job API
// (see internal/jobapi).
//
// Usage:
//
//	memorexctl submit [-server URL] [-tenant NAME] [-bench B] [-scale N]
//	                  [-seed N] [-keep N] [-cap N] [-exact]
//	                  [-strategy full|pruned|neighborhood|ga|sa]
//	                  [-search-seed N] [-search-budget N] [-search-population N]
//	                  [-scenario power|cost|perf -limit V]
//	                  [-wait] [-follow] [-out FILE]
//	memorexctl job    [-server URL] ID     print one job (report once done)
//	memorexctl jobs   [-server URL]        list jobs, newest first
//	memorexctl wait   [-server URL] ID     poll until the job is terminal
//	memorexctl cancel [-server URL] ID     cancel a queued or running job
//	memorexctl events [-server URL] ID     stream the job's events as JSONL
//	memorexctl health [-server URL]        daemon health summary
//
// submit posts a memorex.ExploreRequest built from the flags; with
// -wait (implied by -out and -follow) it polls until the job finishes
// and prints the report JSON to stdout (or -out). Flags left at their
// "inherit" defaults (-keep 0, -cap -1) defer to the daemon's own
// configuration.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"memorex"
	"memorex/internal/cliutil"
	"memorex/internal/jobapi"
	"memorex/internal/obs"
)

func main() { os.Exit(run()) }

func usage() {
	fmt.Fprintln(os.Stderr, "usage: memorexctl {submit|job|jobs|wait|cancel|events|health} [flags] [ID]")
	fmt.Fprintln(os.Stderr, "run a subcommand with -h for its flags")
}

func run() int {
	cliutil.Init("memorexctl")
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	ctx, cancel := cliutil.SignalContext()
	defer cancel()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(ctx, args)
	case "job":
		err = cmdJob(ctx, args)
	case "jobs":
		err = cmdJobs(ctx, args)
	case "wait":
		err = cmdWait(ctx, args)
	case "cancel":
		err = cmdCancel(ctx, args)
	case "events":
		err = cmdEvents(ctx, args)
	case "health":
		err = cmdHealth(ctx, args)
	default:
		usage()
		return 2
	}
	if err != nil {
		log.Print(err)
		return 1
	}
	return 0
}

// newFlagSet builds a subcommand flag set with the server flags
// installed.
func newFlagSet(name string, sv *cliutil.ServerFlags) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	sv.Register(fs)
	return fs
}

// jobArg parses the trailing job-id argument.
func jobArg(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one job id, got %d args", fs.NArg())
	}
	return fs.Arg(0), nil
}

// printJSON writes v to stdout, indented.
func printJSON(v interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cmdSubmit(ctx context.Context, args []string) error {
	var sv cliutil.ServerFlags
	fs := newFlagSet("submit", &sv)
	var wl cliutil.WorkloadFlags
	wl.Register(fs)
	var sf cliutil.SearchFlags
	sf.Register(fs)
	reqPath := fs.String("req", "", "submit this ExploreRequest JSON file instead of building one from flags")
	keep := fs.Int("keep", 0, "designs kept per memory architecture (0 = daemon default)")
	assignCap := fs.Int("cap", -1, "max connectivity assignments per clustering level (-1 = daemon default, 0 = exhaustive)")
	exact := fs.Bool("exact", false, "force the one-phase exact simulator")
	scenario := fs.String("scenario", "", "constrained selection: power, cost or perf")
	limit := fs.Float64("limit", 0, "constraint value for -scenario (nJ, gates or cycles)")
	wait := fs.Bool("wait", false, "poll until the job finishes and print the report JSON")
	poll := fs.Duration("poll", 500*time.Millisecond, "poll interval for -wait")
	out := fs.String("out", "", "write the finished report JSON to this file (implies -wait)")
	follow := fs.Bool("follow", false, "stream the job's events to stderr while waiting (implies -wait)")
	fs.Parse(args)

	var req memorex.ExploreRequest
	if *reqPath != "" {
		blob, err := os.ReadFile(*reqPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(blob, &req); err != nil {
			return fmt.Errorf("%s: %w", *reqPath, err)
		}
	} else {
		req = memorex.ExploreRequest{
			Benchmark:   wl.Bench,
			KeepPerArch: *keep,
			Exact:       *exact,
			Strategy:    sf.Strategy,
		}
		cfg := wl.Config()
		req.Workload = &cfg
		if *assignCap >= 0 {
			req.MaxAssignPerLevel = assignCap
		}
		if sf.Strategy != "" {
			search := sf.Config(wl.Seed)
			req.Search = &search
		}
		if *scenario != "" {
			req.Constraints = []memorex.Constraint{{Scenario: *scenario, Limit: *limit}}
		}
	}

	c := sv.Client()
	jb, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "submitted %s (%s, tenant %s)\n", jb.ID, jb.State, jb.Tenant)
	if !*wait && *out == "" && !*follow {
		fmt.Println(jb.ID)
		return nil
	}

	if *follow {
		evDone := make(chan struct{})
		go func() {
			defer close(evDone)
			enc := json.NewEncoder(os.Stderr)
			err := c.Events(ctx, jb.ID, func(ev obs.Event) error { return enc.Encode(ev) })
			if err != nil && ctx.Err() == nil {
				log.Printf("events: %v", err)
			}
		}()
		defer func() { <-evDone }()
	}

	jb, err = c.Wait(ctx, jb.ID, *poll)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %s\n", jb.ID, describe(jb))
	if jb.State != jobapi.StateDone {
		return fmt.Errorf("job %s %s: %s", jb.ID, jb.State, jb.Error)
	}
	if *out != "" {
		if err := os.WriteFile(*out, jb.Report, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", *out)
		return nil
	}
	_, err = os.Stdout.Write(jb.Report)
	return err
}

// describe summarizes a job's outcome for the status line.
func describe(jb jobapi.Job) string {
	s := string(jb.State)
	if jb.Started != nil && jb.Finished != nil {
		s += fmt.Sprintf(" in %s", jb.Finished.Sub(*jb.Started).Round(time.Millisecond))
	}
	if jb.Error != "" {
		s += ": " + jb.Error
	}
	return s
}

func cmdJob(ctx context.Context, args []string) error {
	var sv cliutil.ServerFlags
	fs := newFlagSet("job", &sv)
	fs.Parse(args)
	id, err := jobArg(fs)
	if err != nil {
		return err
	}
	jb, err := sv.Client().Job(ctx, id)
	if err != nil {
		return err
	}
	return printJSON(jb)
}

func cmdJobs(ctx context.Context, args []string) error {
	var sv cliutil.ServerFlags
	fs := newFlagSet("jobs", &sv)
	fs.Parse(args)
	jobs, err := sv.Client().Jobs(ctx)
	if err != nil {
		return err
	}
	for _, jb := range jobs {
		fmt.Printf("%-12s %-10s %-10s %s\n", jb.ID, jb.State, jb.Tenant, describe(jb))
	}
	return nil
}

func cmdWait(ctx context.Context, args []string) error {
	var sv cliutil.ServerFlags
	fs := newFlagSet("wait", &sv)
	poll := fs.Duration("poll", 500*time.Millisecond, "poll interval")
	fs.Parse(args)
	id, err := jobArg(fs)
	if err != nil {
		return err
	}
	jb, err := sv.Client().Wait(ctx, id, *poll)
	if err != nil {
		return err
	}
	return printJSON(jb)
}

func cmdCancel(ctx context.Context, args []string) error {
	var sv cliutil.ServerFlags
	fs := newFlagSet("cancel", &sv)
	fs.Parse(args)
	id, err := jobArg(fs)
	if err != nil {
		return err
	}
	jb, err := sv.Client().Cancel(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s\n", jb.ID, jb.State)
	return nil
}

func cmdEvents(ctx context.Context, args []string) error {
	var sv cliutil.ServerFlags
	fs := newFlagSet("events", &sv)
	fs.Parse(args)
	id, err := jobArg(fs)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	return sv.Client().Events(ctx, id, func(ev obs.Event) error { return enc.Encode(ev) })
}

func cmdHealth(ctx context.Context, args []string) error {
	var sv cliutil.ServerFlags
	fs := newFlagSet("health", &sv)
	fs.Parse(args)
	h, err := sv.Client().Health(ctx)
	if err != nil {
		return err
	}
	return printJSON(h)
}
