// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (Figures 3, 4, 6; Tables 1, 2).
//
// Usage:
//
//	paperbench [-exp fig3|fig4|fig6|fige|tab1|tab2|search|all] [-preset paper|quick]
//	           [-workers N] [-stats] [-exact]
//	           [-trace-cache DIR] [-trace-cache-limit SIZE]
//	           [-events FILE] [-progress] [-debug-addr ADDR]
//	           [-cpuprofile file] [-memprofile file]
//
// The figure experiments share one evaluation engine, so design points
// simulated for an earlier figure are served from the memoization cache
// when a later one revisits them; -stats prints the engine counters
// (simulations, cache hits, per-phase wall time) after each experiment.
// -events streams the shared engine's evaluation events as JSON Lines.
// Ctrl-C cancels the run between design-point evaluations.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"memorex/internal/cliutil"
	"memorex/internal/engine"
	"memorex/internal/experiments"
	"memorex/internal/obs"
)

func main() {
	cliutil.Init("paperbench")
	var ev cliutil.EvalFlags
	var prof cliutil.ProfileFlags
	var ob cliutil.ObsFlags
	var cf cliutil.CacheFlags
	ev.Register(flag.CommandLine)
	prof.Register(flag.CommandLine)
	ob.Register(flag.CommandLine)
	cf.Register(flag.CommandLine)
	exp := flag.String("exp", "all", "experiment to run: fig3, fig4, fig6, fige, tab1, tab2, search, all")
	preset := flag.String("preset", "paper", "sizing preset: paper or quick")
	stats := flag.Bool("stats", true, "print evaluation-engine statistics after each experiment")
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	var opt experiments.Options
	switch *preset {
	case "paper":
		opt = experiments.Paper()
	case "quick":
		opt = experiments.Quick()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	if ev.Workers != 0 {
		opt.ConEx.Workers = ev.Workers
		opt.Table2ConEx.Workers = ev.Workers
	}
	if ev.Exact {
		opt.ConEx.Exact = true
		opt.Table2ConEx.Exact = true
	}

	observer, closeObs, err := ob.Observer()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeObs(); err != nil {
			log.Printf("events: %v", err)
		}
	}()
	// Rebuild the preset's shared engine so the figure experiments run
	// with the requested worker bound and instrumentation attached.
	reg := obs.NewRegistry()
	cache, err := cf.Open(reg)
	if err != nil {
		log.Fatal(err)
	}
	opt.ConEx.Engine = engine.New(opt.ConEx.Workers,
		engine.WithObserver(observer), engine.WithMetrics(reg),
		engine.WithBehaviorCache(cache))
	ob.ServeDebug(reg.Snapshot)

	ctx, cancel := cliutil.SignalContext()
	defer cancel()

	runners := []struct {
		name string
		run  func() (fmt.Stringer, error)
	}{
		{"fig3", func() (fmt.Stringer, error) { return experiments.Figure3(ctx, opt) }},
		{"fig4", func() (fmt.Stringer, error) { return experiments.Figure4(ctx, opt) }},
		{"fig6", func() (fmt.Stringer, error) { return experiments.Figure6(ctx, opt) }},
		{"fige", func() (fmt.Stringer, error) { return experiments.FigureEnergy(ctx, opt) }},
		{"tab1", func() (fmt.Stringer, error) { return experiments.Table1(ctx, opt) }},
		{"tab2", func() (fmt.Stringer, error) { return experiments.Table2(ctx, opt) }},
		{"search", func() (fmt.Stringer, error) { return experiments.Search(ctx, opt) }},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		start := time.Now()
		res, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("==== %s (%s preset, %v) ====\n%s\n", r.name, *preset,
			time.Since(start).Round(time.Millisecond), res)
		if *stats {
			fmt.Printf("---- %s\n\n", opt.Engine().Stats())
		}
	}
	if !ran {
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if cache != nil && *stats {
		fmt.Println(cache)
	}
}
