// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (Figures 3, 4, 6; Tables 1, 2).
//
// Usage:
//
//	paperbench [-exp fig3|fig4|fig6|fige|tab1|tab2|all] [-preset paper|quick]
//	           [-workers N] [-stats] [-exact]
//	           [-cpuprofile file] [-memprofile file]
//
// The figure experiments share one evaluation engine, so design points
// simulated for an earlier figure are served from the memoization cache
// when a later one revisits them; -stats prints the engine counters
// (simulations, cache hits, per-phase wall time) after each experiment.
// Ctrl-C cancels the run between design-point evaluations.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"memorex/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	exp := flag.String("exp", "all", "experiment to run: fig3, fig4, fig6, fige, tab1, tab2, all")
	preset := flag.String("preset", "paper", "sizing preset: paper or quick")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = all CPUs)")
	stats := flag.Bool("stats", true, "print evaluation-engine statistics after each experiment")
	exact := flag.Bool("exact", false, "use the one-phase exact simulator instead of behavior-trace replay")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	var opt experiments.Options
	switch *preset {
	case "paper":
		opt = experiments.Paper()
	case "quick":
		opt = experiments.Quick()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	if *workers != 0 {
		opt.ConEx.Workers = *workers
		opt.ConEx.Engine = nil // rebuilt below with the requested bound
		opt.Table2ConEx.Workers = *workers
	}
	if *exact {
		opt.ConEx.Exact = true
		opt.Table2ConEx.Exact = true
	}
	if opt.ConEx.Engine == nil {
		opt.ConEx.Engine = opt.ConEx.EngineOrNew()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	runners := []struct {
		name string
		run  func() (fmt.Stringer, error)
	}{
		{"fig3", func() (fmt.Stringer, error) { return experiments.Figure3(ctx, opt) }},
		{"fig4", func() (fmt.Stringer, error) { return experiments.Figure4(ctx, opt) }},
		{"fig6", func() (fmt.Stringer, error) { return experiments.Figure6(ctx, opt) }},
		{"fige", func() (fmt.Stringer, error) { return experiments.FigureEnergy(ctx, opt) }},
		{"tab1", func() (fmt.Stringer, error) { return experiments.Table1(ctx, opt) }},
		{"tab2", func() (fmt.Stringer, error) { return experiments.Table2(ctx, opt) }},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		start := time.Now()
		res, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("==== %s (%s preset, %v) ====\n%s\n", r.name, *preset,
			time.Since(start).Round(time.Millisecond), res)
		if *stats {
			fmt.Printf("---- %s\n\n", opt.Engine().Stats())
		}
	}
	if !ran {
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
