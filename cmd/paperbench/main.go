// Command paperbench regenerates the tables and figures of the paper's
// evaluation section (Figures 3, 4, 6; Tables 1, 2).
//
// Usage:
//
//	paperbench [-exp fig3|fig4|fig6|tab1|tab2|all] [-preset paper|quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"memorex/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")
	exp := flag.String("exp", "all", "experiment to run: fig3, fig4, fig6, fige, tab1, tab2, all")
	preset := flag.String("preset", "paper", "sizing preset: paper or quick")
	flag.Parse()

	var opt experiments.Options
	switch *preset {
	case "paper":
		opt = experiments.Paper()
	case "quick":
		opt = experiments.Quick()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	runners := []struct {
		name string
		run  func() (fmt.Stringer, error)
	}{
		{"fig3", func() (fmt.Stringer, error) { return experiments.Figure3(opt) }},
		{"fig4", func() (fmt.Stringer, error) { return experiments.Figure4(opt) }},
		{"fig6", func() (fmt.Stringer, error) { return experiments.Figure6(opt) }},
		{"fige", func() (fmt.Stringer, error) { return experiments.FigureEnergy(opt) }},
		{"tab1", func() (fmt.Stringer, error) { return experiments.Table1(opt) }},
		{"tab2", func() (fmt.Stringer, error) { return experiments.Table2(opt) }},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		start := time.Now()
		res, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("==== %s (%s preset, %v) ====\n%s\n", r.name, *preset,
			time.Since(start).Round(time.Millisecond), res)
	}
	if !ran {
		log.Printf("unknown experiment %q", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
