// Command tracegen generates a benchmark memory trace, saves it in the
// MTR1 binary format, or inspects an existing trace file.
//
// Usage:
//
//	tracegen -bench compress -o compress.mtr           # generate + save
//	tracegen -inspect compress.mtr                     # summarize a file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"memorex"
	"memorex/internal/profile"
	"memorex/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	bench := flag.String("bench", "compress", "benchmark: "+strings.Join(memorex.Benchmarks(), ", "))
	scale := flag.Int("scale", 1, "workload scale factor")
	seed := flag.Int64("seed", 42, "workload seed")
	out := flag.String("o", "", "output file; empty = just summarize")
	compressOut := flag.Bool("z", false, "write the compressed MTR2 format instead of MTR1")
	inspect := flag.String("inspect", "", "inspect an existing trace file instead of generating")
	flag.Parse()

	var t *trace.Trace
	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		t, err = trace.Read(f)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		t, err = memorex.GenerateTrace(*bench, memorex.WorkloadConfig{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("trace %q: %d accesses, %d data structures\n", t.Name, t.NumAccesses(), len(t.DS)-1)
	p := profile.Analyze(t)
	for _, s := range p.Stats {
		fmt.Printf("  %-10s %9d accesses %6.1f%%  %-13s footprint=%dB chain=%.2f\n",
			s.Name, s.Count, 100*s.Share(p.Total), s.Class, s.FootprintBytes, s.ChainRatio)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		write := trace.Write
		if *compressOut {
			write = trace.WriteCompressed
		}
		if err := write(f, t); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		info, err := os.Stat(*out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
	}
}
