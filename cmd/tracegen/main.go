// Command tracegen generates a benchmark memory trace, saves it in the
// MTR1 binary format, or inspects an existing trace file.
//
// Usage:
//
//	tracegen -bench compress -o compress.mtr           # generate + save
//	tracegen -inspect compress.mtr                     # summarize a file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"memorex/internal/cliutil"
	"memorex/internal/profile"
	"memorex/internal/trace"
)

func main() {
	cliutil.Init("tracegen")
	var wl cliutil.WorkloadFlags
	wl.Register(flag.CommandLine)
	out := flag.String("o", "", "output file; empty = just summarize")
	compressOut := flag.Bool("z", false, "write the compressed MTR2 format instead of MTR1")
	inspect := flag.String("inspect", "", "inspect an existing trace file instead of generating")
	flag.Parse()

	// -inspect is tracegen's historical spelling of cliutil's -trace.
	wl.TracePath = *inspect
	t, err := wl.Load()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace %q: %d accesses, %d data structures\n", t.Name, t.NumAccesses(), len(t.DS)-1)
	p := profile.Analyze(t)
	for _, s := range p.Stats {
		fmt.Printf("  %-10s %9d accesses %6.1f%%  %-13s footprint=%dB chain=%.2f\n",
			s.Name, s.Count, 100*s.Share(p.Total), s.Class, s.FootprintBytes, s.ChainRatio)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		write := trace.Write
		if *compressOut {
			write = trace.WriteCompressed
		}
		if err := write(f, t); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		info, err := os.Stat(*out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
	}
}
