package main

import (
	"math"
	"strings"
	"testing"
)

func bench(ns, bop, allocs float64) Bench {
	return Bench{Iterations: 1, Metrics: map[string]float64{
		"ns/op": ns, "B/op": bop, "allocs/op": allocs,
	}}
}

func TestParseLine(t *testing.T) {
	name, b, ok := parseLine("BenchmarkFigure4-8   3   812345678 ns/op   1024 B/op   12 allocs/op")
	if !ok || name != "BenchmarkFigure4" {
		t.Fatalf("parseLine: ok=%v name=%q", ok, name)
	}
	if b.Iterations != 3 || b.Metrics["ns/op"] != 812345678 || b.Metrics["B/op"] != 1024 || b.Metrics["allocs/op"] != 12 {
		t.Fatalf("parseLine metrics: %+v", b)
	}
	for _, junk := range []string{"", "ok  memorex 1.2s", "PASS", "Benchmark", "BenchmarkX notanint 5 ns/op"} {
		if _, _, ok := parseLine(junk); ok {
			t.Fatalf("parseLine accepted %q", junk)
		}
	}
}

// TestPrintDeltasGate: the compare gate fails on >10% ns/op growth, on
// >10% B/op growth, and passes improvements and small noise.
func TestPrintDeltasGate(t *testing.T) {
	cases := []struct {
		name     string
		old, cur Bench
		pass     bool
		want     string
	}{
		{"unchanged", bench(100, 50, 2), bench(100, 50, 2), true, ""},
		{"faster", bench(100, 50, 2), bench(50, 40, 1), true, ""},
		{"small noise", bench(100, 50, 2), bench(109, 54, 2), true, ""},
		{"ns regression", bench(100, 50, 2), bench(120, 50, 2), false, "REGRESSION"},
		{"alloc regression", bench(100, 50, 2), bench(100, 60, 2), false, "ALLOC-REGRESSION"},
		{"both regress", bench(100, 50, 2), bench(120, 60, 2), false, "REGRESSION ALLOC-REGRESSION"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			got := printDeltas(&sb, map[string]Bench{"BenchmarkX": c.old}, map[string]Bench{"BenchmarkX": c.cur})
			if got != c.pass {
				t.Fatalf("pass = %v, want %v\n%s", got, c.pass, sb.String())
			}
			if c.want != "" && !strings.Contains(sb.String(), c.want) {
				t.Fatalf("output lacks %q:\n%s", c.want, sb.String())
			}
		})
	}

	// No overlap between the reports is a failure, not a silent pass.
	var sb strings.Builder
	if printDeltas(&sb, map[string]Bench{"A": bench(1, 1, 1)}, map[string]Bench{"B": bench(1, 1, 1)}) {
		t.Fatal("disjoint reports passed the gate")
	}
}

// TestPrintDeltasOneSided: benchmarks present in only one report are
// skipped with a warning naming the side, not silently dropped, and
// the common benchmarks still gate normally.
func TestPrintDeltasOneSided(t *testing.T) {
	old := map[string]Bench{"BenchmarkShared": bench(100, 50, 2), "BenchmarkGone": bench(1, 1, 1)}
	cur := map[string]Bench{"BenchmarkShared": bench(100, 50, 2), "BenchmarkNew": bench(1, 1, 1)}
	var sb strings.Builder
	if !printDeltas(&sb, old, cur) {
		t.Fatalf("unchanged shared benchmark failed the gate:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"skipping BenchmarkGone (only in the old report)",
		"skipping BenchmarkNew (only in the new report)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks warning %q:\n%s", want, out)
		}
	}
	// Each one-sided benchmark appears exactly once — in its warning —
	// and never as a delta-table row.
	if strings.Count(out, "BenchmarkGone") != 1 || strings.Count(out, "BenchmarkNew") != 1 {
		t.Errorf("one-sided benchmark leaked into the delta table:\n%s", out)
	}
}

// TestPrintDeltaMetrics: delta-* engine counters surface in -compare
// output with a computed hit rate, and are absent when no benchmark
// reports them.
func TestPrintDeltaMetrics(t *testing.T) {
	withDelta := Bench{Iterations: 1, Metrics: map[string]float64{
		"ns/op": 100, "delta-replays": 30, "delta-fallbacks": 10, "delta-chans-reused": 240,
	}}
	old := map[string]Bench{"BenchmarkX": bench(100, 50, 2)}
	cur := map[string]Bench{"BenchmarkX": withDelta}
	var sb strings.Builder
	if !printDeltas(&sb, old, cur) {
		t.Fatalf("gate failed:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"delta-replays", "delta-fallbacks", "delta-chans-reused", "delta hit rate", "75.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}

	sb.Reset()
	printDeltas(&sb, old, map[string]Bench{"BenchmarkX": bench(100, 50, 2)})
	if strings.Contains(sb.String(), "delta metric") {
		t.Errorf("delta section printed with no delta metrics:\n%s", sb.String())
	}

	if got := hitRate(map[string]float64{"delta-replays": 0, "delta-fallbacks": 0}); got != "-" {
		t.Errorf("hitRate with zero activity = %q, want -", got)
	}
	if got := metricVal(map[string]float64{}, "delta-replays"); got != "-" {
		t.Errorf("metricVal for absent unit = %q, want -", got)
	}
}

// TestPrintSearchMetrics: search-* units (evals, coverage) surface in
// -compare output, a >2-point coverage drop warns without failing the
// gate, and improvements or small noise stay quiet.
func TestPrintSearchMetrics(t *testing.T) {
	searchBench := func(evals, coverage float64) Bench {
		return Bench{Iterations: 1, Metrics: map[string]float64{
			"ns/op": 100, "B/op": 50, "allocs/op": 2,
			"search-evals": evals, "search-coverage-pct": coverage,
		}}
	}

	old := map[string]Bench{"BenchmarkSearchGA": searchBench(600, 97)}

	// Coverage drop beyond 2 points: warn, but still pass the gate.
	var sb strings.Builder
	if !printDeltas(&sb, old, map[string]Bench{"BenchmarkSearchGA": searchBench(600, 90)}) {
		t.Fatalf("coverage drop failed the timing gate:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"search-evals", "search-coverage-pct",
		"warning: BenchmarkSearchGA search coverage dropped 97.0% -> 90.0% (-7.0 points)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}

	// Small noise and improvements stay quiet; the evals column still
	// prints.
	for _, quiet := range []float64{96, 97, 100} {
		sb.Reset()
		printDeltas(&sb, old, map[string]Bench{"BenchmarkSearchGA": searchBench(600, quiet)})
		if strings.Contains(sb.String(), "coverage dropped") {
			t.Errorf("coverage %v warned:\n%s", quiet, sb.String())
		}
		if !strings.Contains(sb.String(), "search-evals") {
			t.Errorf("coverage %v lost the search metric table:\n%s", quiet, sb.String())
		}
	}

	// Benchmarks with no search metrics print no search section.
	sb.Reset()
	printDeltas(&sb, map[string]Bench{"BenchmarkX": bench(100, 50, 2)},
		map[string]Bench{"BenchmarkX": bench(100, 50, 2)})
	if strings.Contains(sb.String(), "search metric") {
		t.Errorf("search section printed with no search metrics:\n%s", sb.String())
	}
}

// TestDelta: absent metrics are NaN (ignored by the gate), not zero.
func TestDelta(t *testing.T) {
	if d := delta(0, 100); !math.IsNaN(d) {
		t.Fatalf("delta from 0 = %v, want NaN", d)
	}
	if d := delta(100, 110); d != 10 {
		t.Fatalf("delta(100,110) = %v, want 10", d)
	}
	if pct(math.NaN()) != "-" {
		t.Fatal("pct(NaN) must render as -")
	}
}
