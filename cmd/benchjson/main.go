// Command benchjson converts `go test -bench` text output into a JSON
// report of domain metrics (ns/op, cache-hit-%, latency-err-%, ...) and
// optionally folds in a baseline report for before/after comparison.
//
// Usage:
//
//	go test -bench=. -benchmem | benchjson -out BENCH_PR2.json [-baseline file]
//
// The baseline file is a previous benchjson report (or a hand-seeded
// one); its benchmark metrics are embedded under "baseline" and a
// "speedup" map records baseline-ns/op ÷ current-ns/op per benchmark
// present in both.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"memorex/internal/cliutil"
)

// Bench is one benchmark's parsed result: its iteration count and every
// reported metric (ns/op, B/op, allocs/op and the b.ReportMetric ones)
// keyed by unit.
type Bench struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the JSON document benchjson writes.
type Report struct {
	Benchmarks map[string]Bench   `json:"benchmarks"`
	Baseline   map[string]Bench   `json:"baseline,omitempty"`
	Speedup    map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	cliutil.Init("benchjson")
	out := flag.String("out", "", "output file (default: stdout)")
	baseline := flag.String("baseline", "", "previous benchjson report to embed for before/after comparison")
	flag.Parse()

	rep := Report{Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, b, ok := parseLine(sc.Text())
		if ok {
			rep.Benchmarks[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			log.Fatalf("%s: %v", *baseline, err)
		}
		rep.Baseline = base.Benchmarks
		rep.Speedup = map[string]float64{}
		for name, b := range base.Benchmarks {
			cur, ok := rep.Benchmarks[name]
			if !ok {
				continue
			}
			before, after := b.Metrics["ns/op"], cur.Metrics["ns/op"]
			if before > 0 && after > 0 {
				rep.Speedup[name] = before / after
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", *out)
}

// parseLine parses one benchmark result line of `go test -bench` output:
//
//	BenchmarkFigure4-8   3   812345678 ns/op   58.00 cloud-designs   ...
//
// The -N GOMAXPROCS suffix is stripped from the name. Non-benchmark
// lines report ok=false.
func parseLine(line string) (string, Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Bench{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Bench{}, false
	}
	b := Bench{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return name, b, true
}
