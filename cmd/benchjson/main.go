// Command benchjson converts `go test -bench` text output into a JSON
// report of domain metrics (ns/op, cache-hit-%, latency-err-%, ...) and
// optionally folds in a baseline report for before/after comparison.
//
// Usage:
//
//	go test -bench=. -benchmem | benchjson -out BENCH_PR2.json [-baseline file]
//	benchjson -compare BENCH_PR3.json BENCH_PR4.json
//	go test -bench=. -benchmem | benchjson -compare BENCH_PR3.json
//
// The baseline file is a previous benchjson report (or a hand-seeded
// one); its benchmark metrics are embedded under "baseline" and a
// "speedup" map records baseline-ns/op ÷ current-ns/op per benchmark
// present in both.
//
// With -compare, benchjson prints a per-benchmark delta table (ns/op,
// B/op, allocs/op) of the current results — a report file given as the
// positional argument, or bench text on stdin — against the old report,
// and exits non-zero when any benchmark's ns/op or B/op regressed by
// more than 10%. Benchmarks present in only one report are skipped
// with a warning, and any "delta-*" engine counters the instrumented
// benchmarks report (delta-replays, delta-chans-reused,
// delta-fallbacks) are tabulated after the timing table together with
// the delta-replay hit rate. "search-*" units (search-evals,
// search-coverage-pct from the heuristic-search benchmarks) are
// tabulated the same way, with a one-sided warning — not a failure —
// when a benchmark's coverage drops more than 2 points below the old
// report. This is the CI regression gate behind `make bench-compare`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"memorex/internal/cliutil"
)

// Bench is one benchmark's parsed result: its iteration count and every
// reported metric (ns/op, B/op, allocs/op and the b.ReportMetric ones)
// keyed by unit.
type Bench struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the JSON document benchjson writes.
type Report struct {
	Benchmarks map[string]Bench   `json:"benchmarks"`
	Baseline   map[string]Bench   `json:"baseline,omitempty"`
	Speedup    map[string]float64 `json:"speedup,omitempty"`
}

// regressionLimit is the ns/op or B/op increase (fractional) above
// which -compare fails the run.
const regressionLimit = 0.10

func main() {
	cliutil.Init("benchjson")
	out := flag.String("out", "", "output file (default: stdout)")
	baseline := flag.String("baseline", "", "previous benchjson report to embed for before/after comparison")
	compare := flag.String("compare", "", "previous benchjson report to diff against; prints deltas and fails on >10% ns/op or B/op regression")
	flag.Parse()

	if *compare != "" {
		old, err := loadReport(*compare)
		if err != nil {
			log.Fatal(err)
		}
		var cur map[string]Bench
		if path := flag.Arg(0); path != "" {
			rep, err := loadReport(path)
			if err != nil {
				log.Fatal(err)
			}
			cur = rep
		} else {
			cur = parseStdin()
		}
		if !printDeltas(os.Stdout, old, cur) {
			os.Exit(1)
		}
		return
	}

	rep := Report{Benchmarks: parseStdin()}
	if *baseline != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		rep.Baseline = base
		rep.Speedup = map[string]float64{}
		for name, b := range base {
			cur, ok := rep.Benchmarks[name]
			if !ok {
				continue
			}
			before, after := b.Metrics["ns/op"], cur.Metrics["ns/op"]
			if before > 0 && after > 0 {
				rep.Speedup[name] = before / after
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", *out)
}

// parseStdin parses `go test -bench` text from stdin into benchmark
// results, failing loudly when none are found.
func parseStdin() map[string]Bench {
	benches := map[string]Bench{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, b, ok := parseLine(sc.Text())
		if ok {
			benches[name] = b
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(benches) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	return benches
}

// loadReport reads a benchjson report file and returns its benchmarks.
func loadReport(path string) (map[string]Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return rep.Benchmarks, nil
}

// printDeltas writes a per-benchmark delta table of the canonical
// metrics and reports whether the run passes the regression gate: no
// benchmark's ns/op (wall time) or B/op (allocation growth) may grow
// by more than regressionLimit. Benchmarks present in only one report
// are skipped with a warning — they carry no before/after signal —
// and any delta-replay engine counters the instrumented benchmarks
// report are printed after the timing table.
func printDeltas(w io.Writer, old, cur map[string]Bench) bool {
	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range sortedNames(old) {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(w, "benchjson: warning: skipping %s (only in the old report)\n", name)
		}
	}
	for _, name := range sortedNames(cur) {
		if _, ok := old[name]; !ok {
			fmt.Fprintf(w, "benchjson: warning: skipping %s (only in the new report)\n", name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(w, "benchjson: no common benchmarks to compare")
		return false
	}
	pass := true
	fmt.Fprintf(w, "%-34s %14s %14s %8s %8s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns/op", "ΔB/op", "Δallocs")
	for _, name := range names {
		o, c := old[name].Metrics, cur[name].Metrics
		dNS := delta(o["ns/op"], c["ns/op"])
		dB := delta(o["B/op"], c["B/op"])
		var flags []string
		if !math.IsNaN(dNS) && dNS > regressionLimit*100 {
			pass = false
			flags = append(flags, "REGRESSION")
		}
		if !math.IsNaN(dB) && dB > regressionLimit*100 {
			pass = false
			flags = append(flags, "ALLOC-REGRESSION")
		}
		flag := ""
		if len(flags) > 0 {
			flag = "  " + strings.Join(flags, " ")
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %8s %8s %10s%s\n",
			name, o["ns/op"], c["ns/op"],
			pct(dNS), pct(dB), pct(delta(o["allocs/op"], c["allocs/op"])), flag)
	}
	printDeltaMetrics(w, old, cur, names)
	printSearchMetrics(w, old, cur, names)
	if !pass {
		fmt.Fprintf(w, "FAIL: ns/op or B/op regression above %.0f%%\n", regressionLimit*100)
	}
	return pass
}

// sortedNames returns the benchmark names of a report in sorted order.
func sortedNames(m map[string]Bench) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// printDeltaMetrics prints the engine delta-replay counters — the
// "delta-*" units the instrumented benchmarks surface from the
// engine/delta/* metrics — side by side for every common benchmark
// that reports any, plus the delta hit rate, replays ÷ (replays +
// fallbacks). A timing win should come with a high hit rate; a low
// one means the planner is mostly falling back to full replays.
func printDeltaMetrics(w io.Writer, old, cur map[string]Bench, names []string) {
	header := false
	for _, name := range names {
		o, c := old[name].Metrics, cur[name].Metrics
		units := map[string]bool{}
		for u := range o {
			if strings.HasPrefix(u, "delta-") {
				units[u] = true
			}
		}
		for u := range c {
			if strings.HasPrefix(u, "delta-") {
				units[u] = true
			}
		}
		if len(units) == 0 {
			continue
		}
		if !header {
			header = true
			fmt.Fprintf(w, "\n%-34s %-24s %14s %14s\n", "benchmark", "delta metric", "old", "new")
		}
		sorted := make([]string, 0, len(units))
		for u := range units {
			sorted = append(sorted, u)
		}
		sort.Strings(sorted)
		for _, u := range sorted {
			fmt.Fprintf(w, "%-34s %-24s %14s %14s\n", name, u, metricVal(o, u), metricVal(c, u))
		}
		fmt.Fprintf(w, "%-34s %-24s %14s %14s\n", name, "delta hit rate", hitRate(o), hitRate(c))
	}
}

// coverageDropLimit is the search-coverage loss (percentage points vs
// the committed baseline) above which -compare warns. The heuristic
// drivers are stochastic across code changes (any reordering of engine
// requests walks a different trajectory), so coverage gates warn
// one-sidedly instead of failing the run; the hard >=90% floor lives in
// the explore package's quality-gate test.
const coverageDropLimit = 2.0

// printSearchMetrics prints the heuristic-search units the
// instrumented benchmarks report — search-evals (budget consumption)
// and search-coverage-pct (pareto coverage vs the Full truth) — side
// by side for every common benchmark that reports any, and warns when
// a benchmark's coverage dropped more than coverageDropLimit points
// below the old report. The warning is one-sided: improvements and
// small noise stay quiet.
func printSearchMetrics(w io.Writer, old, cur map[string]Bench, names []string) {
	header := false
	for _, name := range names {
		o, c := old[name].Metrics, cur[name].Metrics
		units := map[string]bool{}
		for u := range o {
			if strings.HasPrefix(u, "search-") {
				units[u] = true
			}
		}
		for u := range c {
			if strings.HasPrefix(u, "search-") {
				units[u] = true
			}
		}
		if len(units) == 0 {
			continue
		}
		if !header {
			header = true
			fmt.Fprintf(w, "\n%-34s %-24s %14s %14s\n", "benchmark", "search metric", "old", "new")
		}
		sorted := make([]string, 0, len(units))
		for u := range units {
			sorted = append(sorted, u)
		}
		sort.Strings(sorted)
		for _, u := range sorted {
			fmt.Fprintf(w, "%-34s %-24s %14s %14s\n", name, u, metricVal(o, u), metricVal(c, u))
		}
		oc, okO := o["search-coverage-pct"]
		cc, okC := c["search-coverage-pct"]
		if okO && okC && oc-cc > coverageDropLimit {
			fmt.Fprintf(w, "benchjson: warning: %s search coverage dropped %.1f%% -> %.1f%% (-%.1f points)\n",
				name, oc, cc, oc-cc)
		}
	}
}

// metricVal formats one metric value, "-" when the benchmark did not
// report that unit.
func metricVal(m map[string]float64, unit string) string {
	v, ok := m[unit]
	if !ok {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// hitRate formats the delta-replay hit rate of one benchmark's
// metrics, "-" when it recorded no delta activity at all.
func hitRate(m map[string]float64) string {
	replays, okR := m["delta-replays"]
	fallbacks, okF := m["delta-fallbacks"]
	if !okR && !okF {
		return "-"
	}
	total := replays + fallbacks
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", replays/total*100)
}

// delta returns the percentage change from before to after, NaN when
// the metric is absent on either side.
func delta(before, after float64) float64 {
	if before <= 0 || after < 0 {
		return math.NaN()
	}
	return (after - before) / before * 100
}

// pct formats a delta percentage ("-" when unavailable).
func pct(d float64) string {
	if math.IsNaN(d) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", d)
}

// parseLine parses one benchmark result line of `go test -bench` output:
//
//	BenchmarkFigure4-8   3   812345678 ns/op   58.00 cloud-designs   ...
//
// The -N GOMAXPROCS suffix is stripped from the name. Non-benchmark
// lines report ok=false.
func parseLine(line string) (string, Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Bench{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Bench{}, false
	}
	b := Bench{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Bench{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return name, b, true
}
