// Command conex runs the connectivity exploration for a single memory
// architecture chosen from the APEX selection, printing the Bandwidth
// Requirement Graph, the clustering hierarchy, and the estimated
// connectivity design points.
//
// Usage:
//
//	conex [-bench compress|li|vocoder] [-arch N] [-scale N] [-seed N]
//	      [-trace-cache DIR] [-trace-cache-limit SIZE]
//	      [-events FILE] [-progress] [-debug-addr ADDR]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"memorex"
	"memorex/internal/apex"
	"memorex/internal/cliutil"
	"memorex/internal/core"
	"memorex/internal/engine"
	"memorex/internal/explore"
	"memorex/internal/mem"
	"memorex/internal/obs"
)

func main() {
	cliutil.Init("conex")
	var wl cliutil.WorkloadFlags
	var ob cliutil.ObsFlags
	var cf cliutil.CacheFlags
	var sf cliutil.SearchFlags
	wl.Register(flag.CommandLine)
	ob.Register(flag.CommandLine)
	cf.Register(flag.CommandLine)
	sf.Register(flag.CommandLine)
	archIdx := flag.Int("arch", 0, "index into the APEX selection")
	flag.Parse()
	strategy, err := sf.ParseStrategy()
	if err != nil {
		log.Fatal(err)
	}

	opt := memorex.DefaultOptions(wl.Bench)
	opt.WorkloadConfig = wl.Config()
	tr, err := memorex.GenerateTrace(wl.Bench, opt.WorkloadConfig)
	if err != nil {
		log.Fatal(err)
	}
	apexRes, err := apex.Explore(tr, nil, opt.APEX)
	if err != nil {
		log.Fatal(err)
	}
	if *archIdx < 0 || *archIdx >= len(apexRes.Selected) {
		log.Fatalf("-arch %d out of range: APEX selected %d architectures", *archIdx, len(apexRes.Selected))
	}
	arch := apexRes.Selected[*archIdx].Arch
	fmt.Printf("memory architecture %d: %s\n", *archIdx, arch.Describe(tr))

	brg, err := core.BuildBRG(tr, arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbandwidth requirement graph:")
	for i, ch := range brg.Channels {
		side := "on-chip "
		if ch.OffChip {
			side = "off-chip"
		}
		fmt.Printf("  %-34s %s %8.3f B/access\n", ch.Label(arch), side, brg.Bandwidth(i))
	}

	fmt.Println("\nclustering hierarchy:")
	for li, level := range core.Levels(brg) {
		fmt.Printf("  level %d:", li)
		for _, cl := range level {
			labels := make([]string, len(cl))
			for i, ch := range cl {
				labels[i] = brg.Channels[ch].Label(arch)
			}
			fmt.Printf(" {%s}", strings.Join(labels, ", "))
		}
		fmt.Println()
	}

	observer, closeObs, err := ob.Observer()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := closeObs(); err != nil {
			log.Printf("events: %v", err)
		}
	}()
	reg := obs.NewRegistry()
	cache, err := cf.Open(reg)
	if err != nil {
		log.Fatal(err)
	}
	opt.ConEx.Engine = engine.New(0, engine.WithObserver(observer), engine.WithMetrics(reg),
		engine.WithBehaviorCache(cache))
	ob.ServeDebug(reg.Snapshot)

	ctx, cancel := cliutil.SignalContext()
	defer cancel()

	if sf.Strategy != "" && strategy != explore.Pruned {
		// Run the requested exploration driver over just this memory
		// architecture and report its front.
		opt.ConEx.Search = sf.Config(wl.Seed)
		archs := []*mem.Architecture{arch}
		sp := &explore.Space{AllMem: archs, SelectedMem: archs, NeighborMem: archs}
		out, err := explore.Run(ctx, tr, sp, strategy, opt.ConEx)
		if err != nil {
			log.Fatal(err)
		}
		if out.Search != nil {
			fmt.Printf("\nheuristic search: strategy=%s seed=%d budget=%d evals=%d\n",
				out.Search.Strategy, out.Search.Seed, out.Search.Budget, out.Search.Evals)
		}
		fmt.Printf("\n%s exploration: %d designs fully simulated in %v, cost/perf front:\n",
			strategy, len(out.Points), out.Wall.Round(time.Millisecond))
		for _, p := range out.Front {
			fmt.Printf("  %12.0f gates %8.2f cyc %7.2f nJ  %s\n", p.Cost, p.Latency, p.Energy, p.Label)
		}
		if cache != nil {
			fmt.Println(cache)
		}
		return
	}

	points, work, dropped, err := core.ConnectivityExploration(ctx, tr, arch, opt.ConEx)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Cost < points[j].Cost })
	fmt.Printf("\n%d connectivity designs estimated (%d sampled accesses, %d assignments dropped by cap):\n",
		len(points), work, dropped)
	sel := core.SelectLocal(points, opt.ConEx.KeepPerArch)
	fmt.Printf("locally most promising (%d):\n", len(sel))
	for _, p := range sel {
		fmt.Printf("  %12.0f gates %8.2f cyc %7.2f nJ  %s\n",
			p.Cost, p.Latency, p.Energy, p.Conn.Describe(arch))
	}
	if cache != nil {
		fmt.Println(cache)
	}
}
