// Command simulate runs one fully specified system — described in the
// MemorEx architecture description language — against a benchmark trace
// and reports its cost, performance, energy and per-channel contention.
//
// Usage:
//
//	simulate -arch system.adl [-bench compress] [-trace file.mtr]
//	         [-trace-cache DIR] [-trace-cache-limit SIZE]
//
// With -trace-cache the simulation runs in two phases: the memory-
// module behavior of (trace, memory architecture) is captured once and
// persisted in the cache directory, and this and every later run — of
// this command or of the exploration engines sharing the directory —
// only replays the connectivity against it. Results are identical to
// the one-phase simulation.
//
// Example system.adl:
//
//	memory {
//	  cache  l1 size=8192 line=32 assoc=2
//	  stream sb line=32 depth=4 map=speech
//	  dram   m  rowhit=8 rowmiss=20 rowbytes=2048 banks=4
//	  default l1
//	}
//	connect {
//	  link cpu_bus comp=ahb32 channels=cpu:l1,cpu:sb
//	  link ext     comp=off32 channels=l1:dram,sb:dram
//	}
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"memorex/internal/adl"
	"memorex/internal/cliutil"
	"memorex/internal/engine"
	"memorex/internal/sampling"
	"memorex/internal/sim"
	"memorex/internal/trace"
)

func main() {
	cliutil.Init("simulate")
	var wl cliutil.WorkloadFlags
	var cf cliutil.CacheFlags
	wl.Register(flag.CommandLine)
	wl.RegisterTraceFile(flag.CommandLine)
	cf.Register(flag.CommandLine)
	archPath := flag.String("arch", "", "architecture description file (required)")
	libPath := flag.String("lib", "", "JSON connectivity library (default: built-in)")
	flag.Parse()

	if *archPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	tr, err := wl.Load()
	if err != nil {
		log.Fatal(err)
	}
	lib, err := cliutil.LoadLibrary(*libPath)
	if err != nil {
		log.Fatal(err)
	}

	src, err := os.ReadFile(*archPath)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := adl.Parse(string(src), tr, lib)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("memory:       %s\n", sys.Mem.Describe(tr))
	fmt.Printf("connectivity: %s\n", sys.Conn.Describe(sys.Mem))
	fmt.Printf("cost:         %.0f gates (memory %.0f + connectivity %.0f)\n",
		sys.Mem.Gates()+sys.Conn.Gates(), sys.Mem.Gates(), sys.Conn.Gates())

	r, err := run(tr, sys, &cf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace:        %s (%d accesses)\n", tr.Name, r.Accesses)
	fmt.Printf("avg latency:  %.2f cycles/access (p50<=%d, p95<=%d, p99<=%d)\n",
		r.AvgLatency(), r.LatencyPercentile(50), r.LatencyPercentile(95), r.LatencyPercentile(99))
	fmt.Printf("avg energy:   %.2f nJ/access\n", r.AvgEnergy())
	fmt.Printf("miss ratio:   %.4f\n", r.MissRatio())
	fmt.Printf("off-chip:     %d bytes\n", r.OffChipBytes)
	fmt.Println("\nchannels:")
	for i, ch := range sys.Mem.Channels() {
		var avgWait float64
		if r.ChannelTransfers[i] > 0 {
			avgWait = float64(r.ChannelWait[i]) / float64(r.ChannelTransfers[i])
		}
		fmt.Printf("  %-32s %10d B %9d transfers  avg wait %.2f cyc\n",
			ch.Label(sys.Mem), r.ChannelBytes[i], r.ChannelTransfers[i], avgWait)
	}
}

// run simulates the system: one-phase by default, or capture-and-replay
// through the persistent behavior-trace cache with -trace-cache, where
// the capture is served from disk when an earlier run already did it.
func run(tr *trace.Trace, sys *adl.System, cf *cliutil.CacheFlags) (*sim.Result, error) {
	if cf.Dir == "" {
		s, err := sim.New(sys.Mem, sys.Conn)
		if err != nil {
			return nil, err
		}
		return s.Run(tr)
	}
	cache, err := cf.Open(nil)
	if err != nil {
		return nil, err
	}
	fp := engine.BehaviorFingerprint(tr, sys.Mem, engine.Full, sampling.Config{})
	bt, ok := cache.Get(fp)
	if !ok {
		if bt, err = sim.CaptureBehavior(tr, sys.Mem, nil); err != nil {
			return nil, err
		}
		if err := cache.Put(fp, bt); err != nil {
			log.Printf("trace cache: %v", err)
		}
		fmt.Printf("\ntrace cache:  captured behavior into %s\n", cf.Dir)
	} else {
		fmt.Printf("\ntrace cache:  behavior loaded from %s (capture skipped)\n", cf.Dir)
	}
	return sim.Replay(bt, sys.Conn)
}
