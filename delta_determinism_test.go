package memorex

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// designsSection serializes a report with the engine stats and metrics
// stripped — the part that must be byte-identical across runs that
// legitimately differ in wall times and counters.
func designsSection(t *testing.T, r *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rj ReportJSON
	if err := json.Unmarshal(buf.Bytes(), &rj); err != nil {
		t.Fatal(err)
	}
	rj.Engine, rj.Metrics = nil, nil
	out, err := json.Marshal(rj)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDeltaWarmColdDeterminism is the end-to-end gate behind `make
// delta-check`: the full pipeline with delta-tree planning active must
// be deterministic across a cold run, an independent cold rerun on a
// fresh engine, and a warm rerun served from the first engine's memo
// cache — byte-identical designs sections in all three. The cold run
// must actually exercise the incremental path (nonzero delta replays,
// surfaced through the report JSON), and the warm rerun must resolve
// entirely from the cache without adding delta activity.
func TestDeltaWarmColdDeterminism(t *testing.T) {
	ctx := context.Background()
	ex1, err := NewExplorer(fastExplorerOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ex1.Explore(ctx, "vocoder")
	if err != nil {
		t.Fatal(err)
	}
	stCold := ex1.Stats()
	if stCold.DeltaReplays == 0 {
		t.Fatalf("cold run rode no delta replays: %+v", stCold)
	}

	// The delta counters surface in the report's engine JSON.
	var buf bytes.Buffer
	if err := cold.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rj, err := ReadReportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rj.Engine == nil || rj.Engine.DeltaReplays != stCold.DeltaReplays ||
		rj.Engine.DeltaChannels != stCold.DeltaChannelsReused ||
		rj.Engine.DeltaFallbacks != stCold.DeltaFallbacks {
		t.Fatalf("report engine JSON delta counters = %+v, engine stats = %+v", rj.Engine, stCold)
	}

	// Warm rerun on the same engine: pure cache hits, no new delta work,
	// identical designs.
	warm, err := ex1.Explore(ctx, "vocoder")
	if err != nil {
		t.Fatal(err)
	}
	stWarm := ex1.Stats()
	if stWarm.DeltaReplays != stCold.DeltaReplays || stWarm.DeltaFallbacks != stCold.DeltaFallbacks {
		t.Fatalf("warm rerun added delta work: cold %+v, warm %+v", stCold, stWarm)
	}
	if stWarm.CacheHits <= stCold.CacheHits {
		t.Fatalf("warm rerun missed the memo cache: cold hits %d, warm hits %d",
			stCold.CacheHits, stWarm.CacheHits)
	}

	// Independent cold rerun on a fresh engine: the delta trees are
	// re-planned and re-executed from scratch, possibly under different
	// goroutine scheduling, and must still land on the same designs.
	ex2, err := NewExplorer(fastExplorerOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	cold2, err := ex2.Explore(ctx, "vocoder")
	if err != nil {
		t.Fatal(err)
	}

	d1 := designsSection(t, cold)
	if d2 := designsSection(t, warm); !bytes.Equal(d1, d2) {
		t.Fatalf("warm designs diverged from cold:\ncold %s\nwarm %s", d1, d2)
	}
	if d3 := designsSection(t, cold2); !bytes.Equal(d1, d3) {
		t.Fatalf("second cold run's designs diverged:\nfirst %s\nsecond %s", d1, d3)
	}
}
