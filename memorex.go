// Package memorex is the public entry point of the MemorEx memory-system
// exploration environment, a reproduction of "Memory System Connectivity
// Exploration" (Grun, Dutt, Nicolau — DATE 2002).
//
// The pipeline mirrors the paper's Figure 1:
//
//  1. A benchmark application (compress, li, vocoder — or your own
//     trace) is profiled into per-data-structure access patterns.
//  2. APEX explores memory-modules architectures (caches + pattern-
//     matched SRAMs, stream buffers, and self-indirect DMA modules) and
//     selects the most promising cost/miss-ratio designs.
//  3. ConEx explores, for each selected memory architecture, the mapping
//     of its communication channels onto components of a connectivity IP
//     library (AMBA AHB/ASB/APB, MUX-based and dedicated links, off-chip
//     busses), estimating candidates with time-sampled simulation and
//     fully simulating only the most promising designs.
//
// The result is a set of memory+connectivity design points with their
// cost (gates), performance (average memory latency) and power (energy
// per access), plus the pareto fronts and constrained-scenario
// selections the designer trades off.
package memorex

import (
	"context"
	"fmt"

	"memorex/internal/apex"
	"memorex/internal/connect"
	"memorex/internal/core"
	"memorex/internal/engine"
	"memorex/internal/explore"
	"memorex/internal/mem"
	"memorex/internal/pareto"
	"memorex/internal/profile"
	"memorex/internal/sampling"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

// Re-exported types: the stable public surface over the internal
// packages.
type (
	// Trace is a memory-access trace (see the trace package for the
	// builder and binary codec).
	Trace = trace.Trace
	// Profile holds per-data-structure access-pattern statistics.
	Profile = profile.Profile
	// APEXConfig bounds the memory-modules design space.
	APEXConfig = apex.Config
	// APEXResult is the memory-modules exploration outcome.
	APEXResult = apex.Result
	// ConExConfig parameterizes the connectivity exploration.
	ConExConfig = core.Config
	// ConExResult is the connectivity exploration outcome.
	ConExResult = core.Result
	// DesignPoint is one evaluated memory+connectivity design.
	DesignPoint = core.DesignPoint
	// Point is a design point in the (cost, latency, energy) space.
	Point = pareto.Point
	// MemArchitecture is a memory-modules architecture.
	MemArchitecture = mem.Architecture
	// ConnComponent is one connectivity IP library entry.
	ConnComponent = connect.Component
	// ConnArch is a connectivity architecture (clusters + assignment).
	ConnArch = connect.Arch
	// SamplingConfig controls the time-sampling estimator.
	SamplingConfig = sampling.Config
	// SearchConfig tunes the heuristic exploration drivers (GA and SA):
	// seed, evaluation budget, population size and move rates.
	SearchConfig = core.SearchConfig
	// SearchInfo records the heuristic-search provenance of a run:
	// strategy, seed, budget and the evaluations actually issued.
	SearchInfo = explore.SearchProvenance
	// WorkloadConfig controls benchmark trace generation.
	WorkloadConfig = workload.Config
	// Engine is the shared design-point evaluation engine: a bounded
	// worker pool with a memoization cache and statistics. Put one in
	// Options.ConEx.Engine to share the cache across runs.
	Engine = engine.Engine
	// EngineStats is a snapshot of the engine counters (simulations,
	// cache hits, sampled/full accesses, per-phase wall time).
	EngineStats = engine.Stats
)

// NewEngine returns an evaluation engine bounded to the given worker
// count (0 = all CPUs).
func NewEngine(workers int) *Engine { return engine.New(workers) }

// Options configures a full exploration run.
type Options struct {
	// Workload selects the benchmark ("compress", "li", "vocoder").
	Workload string
	// WorkloadConfig scales the benchmark (DefaultOptions uses the
	// paper-reproduction defaults).
	WorkloadConfig workload.Config
	// APEX bounds the memory-modules exploration.
	APEX apex.Config
	// ConEx parameterizes the connectivity exploration.
	ConEx core.Config
}

// DefaultOptions returns the configuration the paper-reproduction
// experiments use for the given benchmark.
func DefaultOptions(benchmark string) Options {
	return Options{
		Workload:       benchmark,
		WorkloadConfig: workload.DefaultConfig(),
		APEX:           apex.DefaultConfig(),
		ConEx:          core.DefaultConfig(),
	}
}

// Benchmarks returns the available benchmark names.
func Benchmarks() []string { return workload.Names() }

// Report is the outcome of a full exploration run.
type Report struct {
	Options Options
	Trace   *trace.Trace
	Profile *profile.Profile
	APEX    *apex.Result
	ConEx   *core.Result
	// Selections holds the constrained-selection outcomes of the
	// request's Constraints, in request order (see ExploreRequest).
	Selections []Selection
	// Search is the heuristic-search provenance when the run used the
	// "ga" or "sa" strategy (nil for the enumeration strategies): the
	// strategy name, seed, budget and evaluations issued, so a reported
	// front is reproducible from the report alone.
	Search *SearchInfo
	// Metrics is the exploration metrics snapshot taken when the run
	// finished (cumulative over the Explorer's lifetime when runs share
	// an Explorer). Empty for runs without a metrics registry.
	Metrics MetricsSnapshot
}

// Explore runs the full pipeline: trace generation, profiling, APEX and
// ConEx. The context cancels the exploration between design-point
// evaluations.
//
// Deprecated: Explore is a thin wrapper that builds a one-shot
// Explorer and calls Explorer.Do. Build an Explorer directly to share
// the evaluation engine, stream events or collect metrics across runs,
// and call Do with an ExploreRequest for per-run configuration.
func Explore(ctx context.Context, opt Options) (*Report, error) {
	ex, err := NewExplorer(
		WithWorkloadConfig(opt.WorkloadConfig),
		WithAPEXConfig(opt.APEX),
		WithConExConfig(opt.ConEx),
	)
	if err != nil {
		return nil, err
	}
	return ex.Explore(ctx, opt.Workload)
}

// GenerateTrace runs the named benchmark and returns its memory trace.
// The zero WorkloadConfig selects the paper-reproduction defaults; an
// explicitly invalid config (e.g. a negative or partial Scale) is an
// error rather than being silently replaced.
func GenerateTrace(benchmark string, cfg workload.Config) (*trace.Trace, error) {
	w, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	cfg, err = cfg.Normalize()
	if err != nil {
		return nil, fmt.Errorf("memorex: generating %q trace: %w", benchmark, err)
	}
	return w.Generate(cfg), nil
}

// ExploreTrace runs profiling, APEX and ConEx on an existing trace.
//
// Deprecated: ExploreTrace is a thin wrapper over Explorer.Do; see
// Explore.
func ExploreTrace(ctx context.Context, t *trace.Trace, opt Options) (*Report, error) {
	ex, err := NewExplorer(
		WithWorkloadConfig(opt.WorkloadConfig),
		WithAPEXConfig(opt.APEX),
		WithConExConfig(opt.ConEx),
	)
	if err != nil {
		return nil, err
	}
	rep, err := ex.Do(ctx, ExploreRequest{Trace: t, Benchmark: opt.Workload})
	if err != nil {
		return nil, err
	}
	rep.Options.Workload = opt.Workload
	return rep, nil
}

// benchmarkLabel picks the run label for a trace-level exploration:
// the explicit benchmark name when set, else the trace's own name.
func benchmarkLabel(workloadName string, t *trace.Trace) string {
	if workloadName != "" {
		return workloadName
	}
	return t.Name
}

// EngineStats returns the evaluation-engine statistics of the
// exploration that produced this report.
func (r *Report) EngineStats() EngineStats { return r.ConEx.Stats }

// The paper's three constrained-selection scenarios over a report's
// fully simulated designs.

// PowerConstrained returns the cost/latency front under an energy cap.
func (r *Report) PowerConstrained(maxEnergyNJ float64) []Point {
	return pareto.PowerConstrained(r.ConEx.Points(), maxEnergyNJ)
}

// CostConstrained returns the latency/energy front under a gate cap.
func (r *Report) CostConstrained(maxGates float64) []Point {
	return pareto.CostConstrained(r.ConEx.Points(), maxGates)
}

// PerformanceConstrained returns the cost/energy front under a latency
// cap.
func (r *Report) PerformanceConstrained(maxLatency float64) []Point {
	return pareto.PerformanceConstrained(r.ConEx.Points(), maxLatency)
}
