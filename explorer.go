package memorex

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"memorex/internal/apex"
	"memorex/internal/btcache"
	"memorex/internal/core"
	"memorex/internal/engine"
	"memorex/internal/explore"
	"memorex/internal/mem"
	"memorex/internal/obs"
	"memorex/internal/profile"
	"memorex/internal/sampling"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

// Observability types re-exported for Explorer users.
type (
	// Observer fans exploration events out to sinks; build one with
	// NewObserver and attach it with WithObserver. A nil Observer is the
	// disabled observer and costs nothing on the evaluation hot path.
	Observer = obs.Observer
	// Event is one entry of the structured exploration event stream.
	Event = obs.Event
	// EventSink consumes events (JSONL writer, in-memory ring, progress
	// line — see NewJSONLSink, NewRingSink, NewProgressSink).
	EventSink = obs.Sink
	// MetricsSnapshot is a point-in-time copy of the exploration metrics
	// registry: counters, gauges and latency-histogram stats.
	MetricsSnapshot = obs.Snapshot
	// HistogramStats summarizes one latency histogram (count, mean,
	// p50/p95/p99).
	HistogramStats = obs.HistogramStats
	// RingSink retains the last n events in memory; its Events method
	// returns them oldest-first (tests, postmortem inspection).
	RingSink = obs.Ring
	// TraceCacheStats is a snapshot of the persistent behavior-trace
	// cache counters (see WithTraceCache).
	TraceCacheStats = btcache.Stats
)

// Event kinds of the structured stream.
const (
	KindRunStart       = obs.KindRunStart
	KindRunEnd         = obs.KindRunEnd
	KindPhaseStart     = obs.KindPhaseStart
	KindPhaseEnd       = obs.KindPhaseEnd
	KindTrace          = obs.KindTrace
	KindAPEX           = obs.KindAPEX
	KindEval           = obs.KindEval
	KindPrune          = obs.KindPrune
	KindEstimatorError = obs.KindEstimatorError
)

// NewObserver builds an observer over the given sinks. With no live
// sinks it returns nil — the disabled observer.
func NewObserver(sinks ...EventSink) *Observer { return obs.NewObserver(sinks...) }

// NewEngineWithObservability returns an evaluation engine with the
// given observer and a fresh metrics registry attached, for sharing an
// instrumented engine across Explorers (see WithEngine).
func NewEngineWithObservability(workers int, o *Observer) *Engine {
	return engine.New(workers, engine.WithObserver(o), engine.WithMetrics(obs.NewRegistry()))
}

// NewJSONLSink streams events to w as JSON Lines, one event per line;
// decode the stream with DecodeEvents.
func NewJSONLSink(w io.Writer) EventSink { return obs.NewJSONL(w) }

// NewRingSink retains the last n events in memory.
func NewRingSink(n int) *RingSink { return obs.NewRing(n) }

// NewProgressSink repaints a single-line terminal progress display,
// refreshed every `every` evaluations (0 = a sensible default).
func NewProgressSink(w io.Writer, every int) EventSink { return obs.NewProgress(w, every) }

// DecodeEvents parses a JSONL event stream written by NewJSONLSink.
func DecodeEvents(r io.Reader) ([]Event, error) { return obs.DecodeJSONL(r) }

// Explorer is a reusable handle on the full exploration pipeline:
// trace generation, profiling, APEX memory-modules exploration and
// ConEx connectivity exploration. It owns the evaluation engine (so
// repeated runs share the memoization cache), the metrics registry,
// and the observer that streams structured events. Build one with
// NewExplorer and functional options; the zero-option Explorer runs
// the paper-reproduction defaults.
//
// An Explorer is safe for use from multiple goroutines: the engine
// serializes shared state and the observer is internally locked.
type Explorer struct {
	wl      workload.Config
	apexCfg apex.Config
	conex   core.Config // Engine field set to eng
	eng     *engine.Engine
	obs     *obs.Observer
	reg     *obs.Registry
	cache   *btcache.Cache // nil without WithTraceCache

	closeOnce sync.Once
	closeErr  error
}

// explorerConfig accumulates the functional options before
// normalization.
type explorerConfig struct {
	wl       workload.Config
	apexCfg  apex.Config
	conexCfg core.Config
	workers  int
	engine   *engine.Engine
	observer *obs.Observer
	sinks    []obs.Sink
	cacheDir string
	cacheCap int64
}

// ExplorerOption configures an Explorer. Options are applied in order;
// later options win.
type ExplorerOption func(*explorerConfig)

// WithWorkers bounds evaluation parallelism (0 = all CPUs). Ignored
// when WithEngine supplies an engine, whose own bound wins.
func WithWorkers(n int) ExplorerOption {
	return func(c *explorerConfig) { c.workers = n }
}

// WithEngine shares an existing evaluation engine (and its memoization
// cache) with this Explorer. The engine's own observer and metrics
// registry win; combining WithEngine with WithObserver or
// WithEventSinks is an error because an engine's instrumentation is
// fixed at construction.
func WithEngine(e *Engine) ExplorerOption {
	return func(c *explorerConfig) { c.engine = e }
}

// WithObserver attaches a pre-built observer. Passing nil (the
// disabled observer) is allowed and equivalent to omitting the option.
func WithObserver(o *Observer) ExplorerOption {
	return func(c *explorerConfig) { c.observer = o }
}

// WithEventSinks builds the Explorer's observer from the given sinks;
// a convenience over WithObserver(NewObserver(sinks...)). Repeated
// uses accumulate sinks.
func WithEventSinks(sinks ...EventSink) ExplorerOption {
	return func(c *explorerConfig) { c.sinks = append(c.sinks, sinks...) }
}

// WithTraceCache persists Phase A behavior traces in dir: captures are
// written through to disk and later Explorers (including in other
// processes) sharing the directory warm-start from it instead of
// re-simulating the memory modules. Entries are fully validated on
// load — a damaged entry is quarantined and recaptured, never served.
// Combining with WithEngine is an error because an engine's cache is
// fixed at construction; attach the cache to the engine instead.
func WithTraceCache(dir string) ExplorerOption {
	return func(c *explorerConfig) { c.cacheDir = dir }
}

// WithTraceCacheLimit bounds the trace cache's on-disk size in bytes;
// least-recently-used entries are evicted beyond it. 0 (the default)
// means unbounded. Only meaningful together with WithTraceCache.
func WithTraceCacheLimit(bytes int64) ExplorerOption {
	return func(c *explorerConfig) { c.cacheCap = bytes }
}

// WithWorkloadConfig sets the benchmark scaling. The zero config means
// the paper-reproduction defaults; partially invalid configs surface
// as a NewExplorer error.
func WithWorkloadConfig(cfg WorkloadConfig) ExplorerOption {
	return func(c *explorerConfig) { c.wl = cfg }
}

// WithAPEXConfig replaces the memory-modules sweep. The zero config
// means the paper-reproduction defaults.
func WithAPEXConfig(cfg APEXConfig) ExplorerOption {
	return func(c *explorerConfig) { c.apexCfg = cfg }
}

// WithConExConfig replaces the connectivity-exploration config. The
// zero config means the paper-reproduction defaults. Its Engine field,
// when set, acts like WithEngine.
func WithConExConfig(cfg ConExConfig) ExplorerOption {
	return func(c *explorerConfig) { c.conexCfg = cfg }
}

// WithSampling sets the Phase I time-sampling plan.
func WithSampling(cfg SamplingConfig) ExplorerOption {
	return func(c *explorerConfig) { c.conexCfg.Sampling = cfg }
}

// WithLibrary sets the connectivity IP library ConEx maps channels
// onto.
func WithLibrary(lib []ConnComponent) ExplorerOption {
	return func(c *explorerConfig) { c.conexCfg.Library = lib }
}

// WithKeepPerArch sets how many locally promising designs each memory
// architecture contributes to Phase II full simulation.
func WithKeepPerArch(n int) ExplorerOption {
	return func(c *explorerConfig) { c.conexCfg.KeepPerArch = n }
}

// WithAssignCap caps the connectivity assignments enumerated per
// clustering level (0 = exhaustive).
func WithAssignCap(n int) ExplorerOption {
	return func(c *explorerConfig) { c.conexCfg.MaxAssignPerLevel = n }
}

// WithExact forces the one-phase reference simulator instead of the
// two-phase capture-and-replay path.
func WithExact(exact bool) ExplorerOption {
	return func(c *explorerConfig) { c.conexCfg.Exact = exact }
}

// NewExplorer builds an Explorer. Configuration is validated here, in
// one place: zero configs become the paper-reproduction defaults,
// while explicitly invalid values are reported as errors instead of
// being silently replaced.
func NewExplorer(opts ...ExplorerOption) (*Explorer, error) {
	var c explorerConfig
	for _, opt := range opts {
		opt(&c)
	}

	wl, err := c.wl.Normalize()
	if err != nil {
		return nil, fmt.Errorf("memorex: %w", err)
	}
	apexCfg, err := c.apexCfg.Normalize()
	if err != nil {
		return nil, fmt.Errorf("memorex: %w", err)
	}
	conexCfg, err := c.conexCfg.Normalize()
	if err != nil {
		return nil, fmt.Errorf("memorex: %w", err)
	}

	observer := c.observer
	if len(c.sinks) > 0 {
		if observer != nil {
			return nil, fmt.Errorf("memorex: WithObserver and WithEventSinks are mutually exclusive")
		}
		observer = obs.NewObserver(c.sinks...)
	}

	eng := c.engine
	if eng == nil {
		eng = conexCfg.Engine
	}
	var reg *obs.Registry
	var cache *btcache.Cache
	if eng == nil {
		reg = obs.NewRegistry()
		workers := c.workers
		if workers == 0 {
			workers = conexCfg.Workers
		}
		engOpts := []engine.Option{engine.WithObserver(observer), engine.WithMetrics(reg)}
		if c.cacheDir != "" {
			var cacheOpts []btcache.Option
			if c.cacheCap > 0 {
				cacheOpts = append(cacheOpts, btcache.WithLimit(c.cacheCap))
			}
			cacheOpts = append(cacheOpts, btcache.WithMetrics(reg))
			var err error
			cache, err = btcache.Open(c.cacheDir, cacheOpts...)
			if err != nil {
				return nil, fmt.Errorf("memorex: %w", err)
			}
			engOpts = append(engOpts, engine.WithBehaviorCache(cache))
		}
		eng = engine.New(workers, engOpts...)
	} else {
		if c.cacheDir != "" {
			return nil, fmt.Errorf("memorex: WithEngine and WithTraceCache are mutually exclusive; attach the cache when building the engine (engine.WithBehaviorCache)")
		}
		// A supplied engine carries its own instrumentation, fixed at
		// construction; a second observer would silently miss the
		// per-evaluation events, so reject the combination outright.
		if observer != nil {
			return nil, fmt.Errorf("memorex: WithEngine and WithObserver/WithEventSinks are mutually exclusive; attach the observer when building the engine")
		}
		observer = eng.Observer()
		reg = eng.Metrics()
	}
	conexCfg.Engine = eng

	return &Explorer{
		wl:      wl,
		apexCfg: apexCfg,
		conex:   conexCfg,
		eng:     eng,
		obs:     observer,
		reg:     reg,
		cache:   cache,
	}, nil
}

// Options returns the effective (normalized) configuration the
// Explorer runs with, in the legacy Options form.
func (x *Explorer) Options() Options {
	return Options{WorkloadConfig: x.wl, APEX: x.apexCfg, ConEx: x.conex}
}

// Engine returns the Explorer's evaluation engine, for sharing its
// memoization cache with other explorations.
func (x *Explorer) Engine() *Engine { return x.eng }

// Observer returns the Explorer's observer (nil when event streaming
// is disabled).
func (x *Explorer) Observer() *Observer { return x.obs }

// Stats returns a snapshot of the evaluation-engine counters,
// cumulative over every run of this Explorer.
func (x *Explorer) Stats() EngineStats { return x.eng.Stats() }

// TraceCacheStats returns a snapshot of the persistent behavior-trace
// cache counters, and whether a cache is attached (see WithTraceCache).
func (x *Explorer) TraceCacheStats() (TraceCacheStats, bool) {
	if x.cache == nil {
		return TraceCacheStats{}, false
	}
	return x.cache.Stats(), true
}

// MetricsSnapshot returns a point-in-time copy of the metrics
// registry, cumulative over every run of this Explorer.
func (x *Explorer) MetricsSnapshot() MetricsSnapshot { return x.reg.Snapshot() }

// Close flushes and closes the observer's sinks. Runs after Close lose
// their events but are otherwise unaffected. Close is idempotent and
// safe for concurrent use — a draining service may call it from a
// signal handler while submitted runs are still finishing; every call
// returns the first call's result.
func (x *Explorer) Close() error {
	x.closeOnce.Do(func() { x.closeErr = x.obs.Close() })
	return x.closeErr
}

// Explore runs the full pipeline on the named benchmark. The context
// cancels the exploration between design-point evaluations. It is
// shorthand for Do with a benchmark-only request.
func (x *Explorer) Explore(ctx context.Context, benchmark string) (*Report, error) {
	return x.Do(ctx, ExploreRequest{Benchmark: benchmark})
}

// ExploreTrace runs profiling, APEX and ConEx on an existing trace
// (the trace's own Name labels the run in events and reports). It is
// shorthand for Do with a trace-only request.
func (x *Explorer) ExploreTrace(ctx context.Context, t *Trace) (*Report, error) {
	return x.Do(ctx, ExploreRequest{Trace: t})
}

// Do runs one exploration request. It is the single code path behind
// every public entry point — Explore, ExploreTrace, the legacy free
// functions and the memorexd job API all build an ExploreRequest and
// land here.
//
// The request is validated, then resolved against the Explorer's own
// configuration: nil config blocks inherit the Explorer's settings,
// present blocks override them for this request only. All evaluations
// go through the Explorer's shared engine, so identical requests —
// concurrent or sequential, from any submitter — share behavior
// captures, memoized design points and the persistent trace cache.
// When the request carries a JobID, the run-level events it emits are
// stamped with it for per-job routing (see obs.Router).
func (x *Explorer) Do(ctx context.Context, req ExploreRequest) (*Report, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	wl, apexCfg, conexCfg, err := x.resolve(req)
	if err != nil {
		return nil, err
	}

	t := req.Trace
	if t == nil {
		if t, err = GenerateTrace(req.Benchmark, wl); err != nil {
			return nil, err
		}
	}
	benchmark := benchmarkLabel(req.Benchmark, t)

	if ctx == nil {
		ctx = context.Background()
	}
	if t.NumAccesses() == 0 {
		return nil, fmt.Errorf("memorex: empty trace")
	}
	// Strategy was validated above; empty means the paper's pruned
	// two-phase driver.
	strategy := explore.Pruned
	if req.Strategy != "" {
		strategy, _ = explore.ParseStrategy(req.Strategy)
	}

	o := x.obs.ForJob(req.JobID)
	start := time.Now()
	o.RunStart(benchmark, int64(t.NumAccesses()))
	o.TraceGenerated(benchmark, int64(t.NumAccesses()), len(t.DS))
	rep, err := x.run(ctx, o, benchmark, t, wl, apexCfg, conexCfg, strategy)
	o.RunEnd(benchmark, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	for _, c := range req.Constraints {
		rep.Selections = append(rep.Selections, c.apply(rep))
	}
	rep.Metrics = x.reg.Snapshot()
	return rep, nil
}

// resolve merges a validated request over the Explorer's configuration:
// absent blocks inherit, present blocks are normalized and win.
func (x *Explorer) resolve(req ExploreRequest) (workload.Config, apex.Config, core.Config, error) {
	wl, apexCfg, conexCfg := x.wl, x.apexCfg, x.conex
	var err error
	if req.Workload != nil {
		if wl, err = req.Workload.Normalize(); err != nil {
			return wl, apexCfg, conexCfg, fmt.Errorf("memorex: %w", err)
		}
	}
	if req.APEX != nil {
		if apexCfg, err = req.APEX.Normalize(); err != nil {
			return wl, apexCfg, conexCfg, fmt.Errorf("memorex: %w", err)
		}
	}
	if req.Sampling != nil {
		if conexCfg.Sampling, err = req.Sampling.Normalize(); err != nil {
			return wl, apexCfg, conexCfg, fmt.Errorf("memorex: %w", err)
		}
	}
	if req.Library != nil {
		conexCfg.Library = req.Library
	}
	if req.KeepPerArch > 0 {
		conexCfg.KeepPerArch = req.KeepPerArch
	}
	if req.MaxAssignPerLevel != nil {
		conexCfg.MaxAssignPerLevel = *req.MaxAssignPerLevel
	}
	if req.Exact {
		conexCfg.Exact = true
	}
	if req.Search != nil {
		conexCfg.Search = *req.Search
	}
	return wl, apexCfg, conexCfg, nil
}

func (x *Explorer) run(ctx context.Context, o *obs.Observer, benchmark string, t *trace.Trace,
	wl workload.Config, apexCfg apex.Config, conexCfg core.Config, strategy explore.Strategy) (*Report, error) {
	prof := profile.Analyze(t)
	apexRes, err := apex.Explore(t, prof, apexCfg)
	if err != nil {
		return nil, fmt.Errorf("memorex: APEX failed: %w", err)
	}
	o.APEXSelected(len(apexRes.All), len(apexRes.Selected))
	opt := Options{Workload: benchmark, WorkloadConfig: wl, APEX: apexCfg, ConEx: conexCfg}
	rep := &Report{Options: opt, Trace: t, Profile: prof, APEX: apexRes}

	if strategy == explore.Pruned {
		// The paper's two-phase algorithm keeps its dedicated code path
		// (per-architecture pruning events, Phase I/II result split).
		archs := make([]*mem.Architecture, 0, len(apexRes.Selected))
		for _, dp := range apexRes.Selected {
			archs = append(archs, dp.Arch)
		}
		conexRes, err := core.Explore(ctx, t, archs, conexCfg)
		if err != nil {
			return nil, fmt.Errorf("memorex: ConEx failed: %w", err)
		}
		rep.ConEx = conexRes
		return rep, nil
	}

	// Every other strategy (full, neighborhood, ga, sa) walks the
	// combined space through the explore drivers on the shared engine,
	// and its outcome is folded into the same Result shape the report
	// pipeline consumes.
	before := x.eng.Stats()
	sp := explore.BuildSpace(apexRes)
	out, err := explore.Run(ctx, t, sp, strategy, conexCfg)
	if err != nil {
		return nil, fmt.Errorf("memorex: %s exploration failed: %w", strategy, err)
	}
	res := &core.Result{Combined: out.Points, Stats: out.Stats}
	res.EstimatedAccesses = out.Stats.SampledAccesses - before.SampledAccesses
	res.SimulatedAccesses = out.Stats.FullAccesses - before.FullAccesses
	res.CacheHits = out.Stats.CacheHits - before.CacheHits
	for _, p := range out.Front {
		res.CostPerfFront = append(res.CostPerfFront, *p.Meta.(*core.DesignPoint))
	}
	o.Prune("cost-perf-front", "", len(res.Combined), len(res.CostPerfFront), 0)
	rep.ConEx = res
	rep.Search = out.Search
	return rep, nil
}

// SamplingDefault returns the paper's 1:9 time-sampling configuration.
func SamplingDefault() SamplingConfig { return sampling.DefaultConfig() }
