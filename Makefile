GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem

# check is the gate a change must pass before review: formatting is
# clean, vet finds nothing, and the whole suite passes under the race
# detector.
check: vet
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) test -race ./...
