GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the benchmark suite (3 fixed iterations, matching how
# the baselines were measured) and writes the parsed domain metrics —
# including the eval-latency histogram quantiles reported by
# BenchmarkInstrumentedExploration — plus the speedup over the PR 2
# report to BENCH_PR3.json.
bench:
	$(GO) test -bench=. -benchmem -benchtime 3x -run '^$$' . | tee bench.out
	$(GO) run ./cmd/benchjson -baseline BENCH_PR2.json -out BENCH_PR3.json < bench.out
	@rm -f bench.out

# check is the gate a change must pass before review: formatting is
# clean, vet finds nothing, and the whole suite passes under the race
# detector.
check: vet
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) test -race ./...
