GO ?= go

.PHONY: build test race vet bench bench-compare cache-check daemon-check delta-check search-check serve-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the benchmark suite (3 fixed iterations, matching how
# the baselines were measured) and writes the parsed domain metrics —
# including the eval-latency histogram quantiles, the batched- and
# delta-replay counters reported by BenchmarkInstrumentedExploration,
# and the heuristic-search coverage metrics of BenchmarkSearchGA/SA —
# plus the speedup over the PR 4 report to BENCH_PR10.json.
bench:
	$(GO) test -bench=. -benchmem -benchtime 3x -run '^$$' . | tee bench.out
	$(GO) run ./cmd/benchjson -baseline BENCH_PR4.json -out BENCH_PR10.json < bench.out
	@rm -f bench.out

# bench-compare diffs two benchjson reports (override OLD/NEW to pick
# others) and fails when any benchmark's ns/op or B/op regressed by
# more than 10% — the perf gate for CI. It also tabulates the
# engine/delta/* counters with the delta-replay hit rate.
OLD ?= BENCH_PR9.json
NEW ?= BENCH_PR10.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# cache-check runs the persistent behavior-trace cache suite under the
# race detector: the btcache codec/fault-injection/concurrency tests,
# the engine disk-cache layering tests, and the end-to-end Explorer
# warm-start test.
cache-check:
	$(GO) test -race ./internal/btcache/
	$(GO) test -race -run 'TestDisk|TestBehaviorFingerprint' ./internal/engine/
	$(GO) test -race -run 'TestExplorerWarmStart' .

# daemon-check runs the service-layer suite under the race detector:
# the memorexd end-to-end tests (dedup, admission control, cancel,
# drain, per-job event routing), the event-router unit tests, and the
# ExploreRequest / Explorer.Do / Close contract tests.
daemon-check:
	$(GO) test -race ./cmd/memorexd/
	$(GO) test -race -run 'TestRouter|TestObserver' ./internal/obs/
	$(GO) test -race -run 'TestExploreRequest|TestExplorerDoRequest|TestExplorerCloseIdempotent' .

# delta-check runs the incremental delta-replay suite under the race
# detector: the sim-level signature/exactness/fallback/property tests,
# the engine delta-tree planner tests, and the end-to-end warm/cold
# determinism run of the full pipeline.
delta-check:
	$(GO) test -race -run 'TestChannelSignatures|TestReplayDelta|TestReplayBatchMatchesReplay' ./internal/sim/
	$(GO) test -race -run 'TestTimingSignature|TestEvaluateBatch|TestEvaluateDelta' ./internal/engine/
	$(GO) test -race -run 'TestDeltaWarmColdDeterminism' .

# search-check runs the heuristic-search suite: the coverage quality
# gate (GA and SA must recover ≥90% of the Full ground-truth front at
# ≤25% of its simulations), the seeded-determinism and budget tests
# under the race detector, the request fuzz seed corpus, and the
# heuristic request-path contract tests.
search-check:
	$(GO) test -run 'TestSearchCoverageQualityGate' ./internal/explore/
	$(GO) test -race -run 'TestSearchSeededDeterminism|TestSearchDifferentSeedsDiffer|TestSearchBudgetRespected|TestSearchInvalidConfig|TestParseStrategy' ./internal/explore/
	$(GO) test -race -run 'FuzzExploreRequestJSON|TestExplorerDoHeuristicStrategy' .
	$(GO) test -race -run 'TestDaemonHeuristicJob' ./cmd/memorexd/

# serve-smoke boots a real memorexd process, submits a tiny job through
# memorexctl, asserts a completed report comes back, and checks the
# daemon drains cleanly on SIGTERM.
serve-smoke:
	sh scripts/serve-smoke.sh

# check is the gate a change must pass before review: formatting is
# clean, vet finds nothing, the whole suite passes under the race
# detector, and the trace-cache, daemon, delta-replay and
# heuristic-search suites hold.
check: vet cache-check daemon-check delta-check search-check
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) test -race ./...
