GO ?= go

.PHONY: build test race vet bench bench-compare check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the benchmark suite (3 fixed iterations, matching how
# the baselines were measured) and writes the parsed domain metrics —
# including the eval-latency histogram quantiles and the batched-replay
# counters reported by BenchmarkInstrumentedExploration — plus the
# speedup over the PR 3 report to BENCH_PR4.json.
bench:
	$(GO) test -bench=. -benchmem -benchtime 3x -run '^$$' . | tee bench.out
	$(GO) run ./cmd/benchjson -baseline BENCH_PR3.json -out BENCH_PR4.json < bench.out
	@rm -f bench.out

# bench-compare diffs two benchjson reports (override OLD/NEW to pick
# others) and fails when any benchmark's ns/op regressed by more than
# 10% — the perf gate for CI.
OLD ?= BENCH_PR3.json
NEW ?= BENCH_PR4.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# check is the gate a change must pass before review: formatting is
# clean, vet finds nothing, and the whole suite passes under the race
# detector.
check: vet
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) test -race ./...
