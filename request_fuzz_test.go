package memorex

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzExploreRequestJSON fuzzes the wire format the daemon admits:
// arbitrary bytes go through the same decode → Validate pipeline as a
// memorexd POST /v1/jobs body, and a request that survives both must
// resolve against an Explorer without error. Nothing on this path may
// panic — a malformed submission is a 400, never a daemon crash.
func FuzzExploreRequestJSON(f *testing.F) {
	seeds := []string{
		`{"benchmark":"compress"}`,
		`{"benchmark":"vocoder","strategy":"ga","search":{"seed":42,"budget":600,"population":24}}`,
		`{"benchmark":"compress","strategy":"sa","search":{"mutation_rate":0.25,"crossover_rate":0.7,"init_temp":0.2,"cooling":0.95}}`,
		`{"benchmark":"li","strategy":"full"}`,
		`{"benchmark":"compress","strategy":"neighborhood","keep_per_arch":3}`,
		`{"strategy":"tabu"}`,
		`{"benchmark":"compress","search":{"budget":-1}}`,
		`{"benchmark":"compress","search":{"cooling":1.5}}`,
		`{"benchmark":"vocoder","workload":{"scale":2,"seed":7},"max_assign_per_level":0,"exact":true}`,
		`{"benchmark":"compress","constraints":[{"scenario":"power","limit":1.5}]}`,
		`{"benchmark":"compress","sampling":{"on_window":500,"off_ratio":9}}`,
		`{"benchmark": `,
		`{"benchmark":"compress","bogus":1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	ex, err := NewExplorer(fastExplorerOpts()...)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var req ExploreRequest
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return // a parse rejection is the daemon's 400 path
		}
		err := req.Validate()
		if err != nil {
			return // a validation rejection is the daemon's 400 path
		}
		// Invariant: a request that validates is runnable — resolving
		// it against an Explorer's configuration cannot fail.
		if _, _, _, err := ex.resolve(req); err != nil {
			t.Errorf("validated request failed to resolve: %v\nrequest: %s", err, data)
		}
	})
}
