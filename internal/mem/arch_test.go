package mem

import (
	"strings"
	"testing"

	"memorex/internal/trace"
)

func sampleArch() *Architecture {
	return &Architecture{
		Name: "test",
		Modules: []Module{
			MustCache(8192, 32, 2),
			MustSRAM(4096),
			MustStreamBuffer(32, 4),
		},
		DRAM:    DefaultDRAM(),
		Route:   map[trace.DSID]int{2: 1, 3: 2},
		Default: 0,
	}
}

func TestArchValidate(t *testing.T) {
	a := sampleArch()
	if err := a.Validate(); err != nil {
		t.Fatalf("valid architecture rejected: %v", err)
	}
	bad := sampleArch()
	bad.Route[5] = 9
	if err := bad.Validate(); err == nil {
		t.Fatal("route to missing module accepted")
	}
	bad2 := sampleArch()
	bad2.DRAM = nil
	if err := bad2.Validate(); err == nil {
		t.Fatal("missing DRAM accepted")
	}
	bad3 := sampleArch()
	bad3.Default = 7
	if err := bad3.Validate(); err == nil {
		t.Fatal("bad default route accepted")
	}
	bad4 := sampleArch()
	bad4.Modules = append(bad4.Modules, nil)
	if err := bad4.Validate(); err == nil {
		t.Fatal("nil module accepted")
	}
}

func TestArchRouteOf(t *testing.T) {
	a := sampleArch()
	if a.RouteOf(2) != 1 || a.RouteOf(3) != 2 {
		t.Fatal("explicit routes wrong")
	}
	if a.RouteOf(99) != 0 {
		t.Fatal("default route wrong")
	}
}

func TestArchGatesSum(t *testing.T) {
	a := sampleArch()
	var want float64
	for _, m := range a.Modules {
		want += m.Gates()
	}
	if a.Gates() != want {
		t.Fatalf("Gates() = %v, want %v", a.Gates(), want)
	}
}

func TestArchChannels(t *testing.T) {
	a := sampleArch()
	chans := a.Channels()
	// 3 CPU links + 2 DRAM links (cache, stream; SRAM has none).
	if len(chans) != 5 {
		t.Fatalf("want 5 channels, got %d: %+v", len(chans), chans)
	}
	var offchip int
	for _, c := range chans {
		if c.OffChip {
			offchip++
		}
	}
	if offchip != 2 {
		t.Fatalf("want 2 off-chip channels, got %d", offchip)
	}
	// Direct-to-DRAM routing adds the CPU-DRAM channel.
	a.Route[7] = DirectDRAM
	chans = a.Channels()
	if len(chans) != 6 || chans[5].Kind != ChanCPUDRAM {
		t.Fatalf("direct route should add cpu-dram channel: %+v", chans)
	}
	// Default DirectDRAM also adds it.
	b := &Architecture{Name: "uncached", DRAM: DefaultDRAM(), Default: DirectDRAM}
	if len(b.Channels()) != 1 {
		t.Fatalf("uncached architecture should have exactly the cpu-dram channel")
	}
}

func TestArchCloneIndependence(t *testing.T) {
	a := sampleArch()
	a.Modules[0].Access(ld(0), 0)
	c := a.Clone()
	if c.Modules[0].(*Cache).Misses != 0 {
		t.Fatal("clone inherited module state")
	}
	c.Route[42] = 0
	if _, ok := a.Route[42]; ok {
		t.Fatal("clone shares route map")
	}
}

func TestArchDescribe(t *testing.T) {
	a := sampleArch()
	b := trace.NewBuilder("x", 0)
	b.Region("htab", 64, 4) // ds 1
	b.Region("in", 64, 4)   // ds 2
	b.Region("out", 64, 4)  // ds 3
	tr := b.Build()
	s := a.Describe(tr)
	if !strings.Contains(s, "sram4096b{in}") {
		t.Fatalf("Describe missing sram mapping: %q", s)
	}
	if !strings.Contains(s, "cache8k-2w-32b") {
		t.Fatalf("Describe missing cache: %q", s)
	}
	a.Route[1] = DirectDRAM
	if !strings.Contains(a.Describe(tr), "dram{htab}") {
		t.Fatalf("Describe missing direct mapping: %q", a.Describe(tr))
	}
	empty := &Architecture{Name: "none", DRAM: DefaultDRAM(), Default: DirectDRAM}
	if empty.Describe(tr) != "dram-only" {
		t.Fatalf("empty Describe = %q", empty.Describe(tr))
	}
}

func TestChannelLabels(t *testing.T) {
	a := sampleArch()
	a.Route[7] = DirectDRAM
	for _, c := range a.Channels() {
		if c.Label(a) == "?" {
			t.Fatalf("unlabelled channel %+v", c)
		}
	}
	if (Channel{Kind: ChanCPUDRAM}).Label(a) != "cpu<->dram" {
		t.Fatal("cpu-dram label wrong")
	}
}

func TestChannelKindString(t *testing.T) {
	if ChanCPUModule.String() != "cpu-module" ||
		ChanModuleDRAM.String() != "module-dram" ||
		ChanCPUDRAM.String() != "cpu-dram" {
		t.Fatal("ChannelKind strings wrong")
	}
}
