package mem

import (
	"fmt"

	"memorex/internal/trace"
)

// VictimCache is a small fully associative buffer behind a primary cache
// that holds recently evicted lines (Jouppi, ISCA 1990) — one of the
// era-typical memory IP modules and a natural extension point of the
// paper's library. A miss in the primary cache that hits the victim
// buffer swaps lines instead of going off chip.
type VictimCache struct {
	*Cache
	VictimLines int

	victims []victimLine
	vname   string
	vgates  float64

	VictimHits int64
}

type victimLine struct {
	lineAddr uint32
	dirty    bool
	valid    bool
}

// NewVictimCache wraps a set-associative cache with a victim buffer of
// the given number of lines.
func NewVictimCache(size, line, assoc, victimLines int) (*VictimCache, error) {
	if victimLines <= 0 || victimLines > 64 {
		return nil, fmt.Errorf("mem: victim buffer must have 1..64 lines, got %d", victimLines)
	}
	c, err := NewCache(size, line, assoc)
	if err != nil {
		return nil, err
	}
	v := &VictimCache{Cache: c, VictimLines: victimLines}
	v.vname = fmt.Sprintf("%s+v%d", c.Name(), victimLines)
	// Victim storage is fully associative: data + full-address tags and
	// comparators on every line.
	v.vgates = c.Gates() + float64(victimLines*line*8)*gatesPerBit +
		float64(victimLines*addressBits)*(gatesPerTagBit+6) + 900
	v.Reset()
	return v, nil
}

// MustVictimCache is NewVictimCache that panics on invalid parameters.
func MustVictimCache(size, line, assoc, victimLines int) *VictimCache {
	v, err := NewVictimCache(size, line, assoc, victimLines)
	if err != nil {
		panic(err)
	}
	return v
}

// Name implements Module.
func (v *VictimCache) Name() string { return v.vname }

// Gates implements Module.
func (v *VictimCache) Gates() float64 { return v.vgates }

// Energy implements Module: the victim probe adds a small overhead.
func (v *VictimCache) Energy() float64 { return v.Cache.Energy() + 0.03 }

// Reset implements Module.
func (v *VictimCache) Reset() {
	v.Cache.Reset()
	v.victims = make([]victimLine, v.VictimLines)
	v.VictimHits = 0
}

// Clone implements Module.
func (v *VictimCache) Clone() Module {
	return MustVictimCache(v.SizeBytes, v.LineBytes, v.Assoc, v.VictimLines)
}

// Access implements Module.
func (v *VictimCache) Access(a trace.Access, now int64) AccessResult {
	r := v.Cache.Access(a, now)
	if r.Hit {
		return r
	}
	// Primary miss. The primary has installed the new line and recorded
	// which valid line it displaced (lastEvicted*). Probe the victim
	// buffer for the requested line.
	lineAddr := a.Addr / uint32(v.LineBytes)
	for i := range v.victims {
		if v.victims[i].valid && v.victims[i].lineAddr == lineAddr {
			// Victim hit: the line comes from the buffer, not from
			// DRAM, and the primary's evicted line takes the freed slot
			// (a swap), so nothing goes off chip.
			v.victims[i] = victimLine{}
			if v.lastEvictedValid {
				v.insertVictim(v.lastEvicted, v.lastEvictedDirty)
				if v.lastEvictedDirty {
					v.Cache.WriteBacks-- // absorbed by the swap
				}
			}
			v.VictimHits++
			v.Cache.Misses--
			v.Cache.Hits++
			return AccessResult{Hit: true, Stall: 1}
		}
	}
	// Victim miss: the fill comes from DRAM; the primary's evicted line
	// moves into the buffer, and whatever FIFO-falls out of the buffer
	// is written back off chip if dirty.
	off := v.LineBytes
	if v.lastEvictedValid {
		displaced := v.insertVictim(v.lastEvicted, v.lastEvictedDirty)
		if displaced.valid && displaced.dirty {
			off += v.LineBytes
		}
	}
	r.OffChipBytes = off
	return r
}

// insertVictim inserts a line into the buffer in FIFO order and returns
// the line that fell out.
func (v *VictimCache) insertVictim(lineAddr uint32, dirty bool) victimLine {
	displaced := v.victims[len(v.victims)-1]
	copy(v.victims[1:], v.victims[:len(v.victims)-1])
	v.victims[0] = victimLine{lineAddr: lineAddr, dirty: dirty, valid: true}
	return displaced
}
