package mem

import (
	"fmt"
	"strings"

	"memorex/internal/trace"
)

// DirectDRAM is the route value meaning "no on-chip module: the access
// goes straight to off-chip memory".
const DirectDRAM = -1

// Architecture is a memory-modules architecture: a set of on-chip module
// instances, the off-chip DRAM, and the mapping from application data
// structures to the module that serves them. This is the unit APEX
// selects and ConEx receives.
type Architecture struct {
	Name    string
	Modules []Module
	DRAM    *DRAM
	// L2, when non-nil, is a shared second-level cache: the backed
	// modules' miss traffic goes through it before crossing the chip
	// boundary (an extension beyond the paper's single-level systems).
	L2 *Cache
	// Route maps a data structure to the index in Modules that serves
	// it, or DirectDRAM. Data structures not present use Default.
	Route   map[trace.DSID]int
	Default int
}

// RouteOf returns the module index serving ds (DirectDRAM for none).
func (a *Architecture) RouteOf(ds trace.DSID) int {
	if r, ok := a.Route[ds]; ok {
		return r
	}
	return a.Default
}

// Gates returns the total on-chip gate cost of the memory modules.
func (a *Architecture) Gates() float64 {
	var g float64
	for _, m := range a.Modules {
		g += m.Gates()
	}
	if a.L2 != nil {
		g += a.L2.Gates()
	}
	return g
}

// Validate checks that all routes reference existing modules and that the
// DRAM is present.
func (a *Architecture) Validate() error {
	if a.DRAM == nil {
		return fmt.Errorf("mem: architecture %q has no DRAM", a.Name)
	}
	check := func(r int) error {
		if r != DirectDRAM && (r < 0 || r >= len(a.Modules)) {
			return fmt.Errorf("mem: architecture %q routes to missing module %d", a.Name, r)
		}
		return nil
	}
	if err := check(a.Default); err != nil {
		return err
	}
	for ds, r := range a.Route {
		if err := check(r); err != nil {
			return fmt.Errorf("%w (data structure %d)", err, ds)
		}
	}
	for i, m := range a.Modules {
		if m == nil {
			return fmt.Errorf("mem: architecture %q has nil module at %d", a.Name, i)
		}
		if m.Kind() == KindDRAM {
			return fmt.Errorf("mem: architecture %q lists DRAM among on-chip modules", a.Name)
		}
	}
	return nil
}

// Clone returns an independent architecture with cold module state.
func (a *Architecture) Clone() *Architecture {
	c := &Architecture{
		Name:    a.Name,
		Modules: make([]Module, len(a.Modules)),
		DRAM:    a.DRAM.Clone().(*DRAM),
		Route:   make(map[trace.DSID]int, len(a.Route)),
		Default: a.Default,
	}
	if a.L2 != nil {
		c.L2 = a.L2.Clone().(*Cache)
	}
	for i, m := range a.Modules {
		c.Modules[i] = m.Clone()
	}
	for k, v := range a.Route {
		c.Route[k] = v
	}
	return c
}

// Describe returns a one-line human-readable summary, e.g.
// "cache8k-2w-32b + sram4096b{htab} + stream4x32b{in}".
func (a *Architecture) Describe(t *trace.Trace) string {
	perModule := make([][]string, len(a.Modules))
	direct := []string{}
	name := func(ds trace.DSID) string {
		if t != nil {
			return t.Info(ds).Name
		}
		return fmt.Sprintf("ds%d", ds)
	}
	for ds, r := range a.Route {
		if r == DirectDRAM {
			direct = append(direct, name(ds))
		} else {
			perModule[r] = append(perModule[r], name(ds))
		}
	}
	parts := make([]string, 0, len(a.Modules)+1)
	for i, m := range a.Modules {
		s := m.Name()
		if len(perModule[i]) > 0 {
			s += "{" + strings.Join(perModule[i], ",") + "}"
		}
		parts = append(parts, s)
	}
	if a.L2 != nil {
		parts = append(parts, "l2:"+a.L2.Name())
	}
	if len(direct) > 0 {
		parts = append(parts, "dram{"+strings.Join(direct, ",")+"}")
	}
	if len(parts) == 0 {
		return "dram-only"
	}
	return strings.Join(parts, " + ")
}

// ChannelKind classifies a communication channel of the architecture.
type ChannelKind int

// Channel kinds.
const (
	// ChanCPUModule is an on-chip channel between the CPU and a module.
	ChanCPUModule ChannelKind = iota
	// ChanModuleDRAM is a chip-boundary channel between a module and
	// the off-chip DRAM (line fills, write-backs, prefetches).
	ChanModuleDRAM
	// ChanCPUDRAM is a chip-boundary channel for uncached accesses.
	ChanCPUDRAM
	// ChanModuleL2 is an on-chip channel between a module and the
	// shared L2 (present only when Architecture.L2 is set).
	ChanModuleL2
	// ChanL2DRAM is the chip-boundary channel behind the shared L2.
	ChanL2DRAM
)

// String implements fmt.Stringer.
func (k ChannelKind) String() string {
	switch k {
	case ChanCPUModule:
		return "cpu-module"
	case ChanModuleDRAM:
		return "module-dram"
	case ChanCPUDRAM:
		return "cpu-dram"
	case ChanModuleL2:
		return "module-l2"
	case ChanL2DRAM:
		return "l2-dram"
	default:
		return fmt.Sprintf("chan(%d)", int(k))
	}
}

// Channel is one communication channel of the architecture: an arc of
// the paper's Bandwidth Requirement Graph before bandwidth labelling.
type Channel struct {
	Kind   ChannelKind
	Module int // index into Modules (unused for ChanCPUDRAM)
	// OffChip is true when the channel crosses the chip boundary and
	// must be implemented by an off-chip-capable component.
	OffChip bool
}

// Label returns a readable channel name.
func (c Channel) Label(a *Architecture) string {
	switch c.Kind {
	case ChanCPUModule:
		return "cpu<->" + a.Modules[c.Module].Name()
	case ChanModuleDRAM:
		return a.Modules[c.Module].Name() + "<->dram"
	case ChanCPUDRAM:
		return "cpu<->dram"
	case ChanModuleL2:
		return a.Modules[c.Module].Name() + "<->l2"
	case ChanL2DRAM:
		return "l2<->dram"
	default:
		return "?"
	}
}

// Channels enumerates the architecture's communication channels in a
// deterministic order: for each module the CPU link, then for each
// backed module (cache, stream, DMA) the DRAM link, then the direct
// CPU-DRAM link if any data structure is routed straight off-chip.
func (a *Architecture) Channels() []Channel {
	var chans []Channel
	for i, m := range a.Modules {
		_ = m
		chans = append(chans, Channel{Kind: ChanCPUModule, Module: i})
	}
	backed := 0
	for i, m := range a.Modules {
		switch m.Kind() {
		case KindCache, KindStream, KindDMA:
			backed++
			if a.L2 != nil {
				chans = append(chans, Channel{Kind: ChanModuleL2, Module: i})
			} else {
				chans = append(chans, Channel{Kind: ChanModuleDRAM, Module: i, OffChip: true})
			}
		}
	}
	if a.L2 != nil && backed > 0 {
		chans = append(chans, Channel{Kind: ChanL2DRAM, OffChip: true})
	}
	needDirect := a.Default == DirectDRAM
	for _, r := range a.Route {
		if r == DirectDRAM {
			needDirect = true
		}
	}
	if needDirect {
		chans = append(chans, Channel{Kind: ChanCPUDRAM, OffChip: true})
	}
	return chans
}
