package mem

import (
	"testing"
)

func TestSRAMAlwaysHits(t *testing.T) {
	s := MustSRAM(4096)
	for i := uint32(0); i < 100; i++ {
		if r := s.Access(ld(i*64), int64(i)); !r.Hit || r.OffChipBytes != 0 {
			t.Fatalf("SRAM access %d should hit with no off-chip traffic: %+v", i, r)
		}
	}
	if s.Accesses != 100 {
		t.Fatalf("access counter = %d, want 100", s.Accesses)
	}
	if _, err := NewSRAM(0); err == nil {
		t.Fatal("NewSRAM(0) should fail")
	}
	if s.Kind() != KindSRAM || s.Latency() != 1 || s.Gates() <= 0 {
		t.Fatal("SRAM metadata wrong")
	}
}

func TestStreamBufferSequentialHits(t *testing.T) {
	s := MustStreamBuffer(32, 4)
	s.SetFetchLatency(10)
	// First touch is a restart miss.
	r := s.Access(ld(0), 0)
	if r.Hit {
		t.Fatal("cold stream access should miss")
	}
	if r.PrefetchBytes != 3*32 {
		t.Fatalf("restart should prefetch depth-1 lines = 96 bytes, got %d", r.PrefetchBytes)
	}
	// Sequential walk with a large gap between accesses: all hits, no
	// stall once the prefetches have landed.
	now := int64(1000)
	for i := 1; i < 20; i++ {
		r := s.Access(ld(uint32(i*32)), now)
		if !r.Hit {
			t.Fatalf("sequential access %d should hit", i)
		}
		if r.Stall != 0 {
			t.Fatalf("access %d stalled %d cycles despite long gap", i, r.Stall)
		}
		now += 100
	}
}

func TestStreamBufferStallsWhenTooFast(t *testing.T) {
	s := MustStreamBuffer(32, 2)
	s.SetFetchLatency(50)
	s.Access(ld(0), 0)
	// Immediately ask for the next line: its prefetch was issued at 0
	// with latency 50, so at cycle 1 we stall ~49 cycles.
	r := s.Access(ld(32), 1)
	if !r.Hit {
		t.Fatal("next-line access should be an in-window hit")
	}
	if r.Stall < 40 {
		t.Fatalf("expected a large stall waiting for prefetch, got %d", r.Stall)
	}
}

func TestStreamBufferRestartOnJump(t *testing.T) {
	s := MustStreamBuffer(32, 4)
	s.Access(ld(0), 0)
	r := s.Access(ld(0x10000), 10)
	if r.Hit {
		t.Fatal("far jump must restart the stream (miss)")
	}
	if s.Restarts != 2 {
		t.Fatalf("Restarts = %d, want 2", s.Restarts)
	}
}

func TestStreamBufferValidation(t *testing.T) {
	if _, err := NewStreamBuffer(0, 4); err == nil {
		t.Fatal("line 0 accepted")
	}
	if _, err := NewStreamBuffer(24, 4); err == nil {
		t.Fatal("non-power-of-two line accepted")
	}
	if _, err := NewStreamBuffer(32, 0); err == nil {
		t.Fatal("depth 0 accepted")
	}
}

func TestDMAFollowsChain(t *testing.T) {
	d := MustSelfIndirectDMA(256, 8, 1.0)
	d.SetFetchLatency(20)
	// Cold miss.
	if r := d.Access(ld(0), 0); r.Hit {
		t.Fatal("cold DMA access should miss")
	}
	// Slow chain walk: every subsequent access hits without stall.
	now := int64(100)
	for i := 1; i < 10; i++ {
		r := d.Access(ld(uint32(i*8)), now)
		if !r.Hit || r.Stall != 0 {
			t.Fatalf("access %d: want free hit, got %+v", i, r)
		}
		now += 50
	}
	// Fast chain walk: hits but with stalls.
	r := d.Access(ld(0x50), now)
	_ = r
	r = d.Access(ld(0x58), now+2)
	if !r.Hit || r.Stall == 0 {
		t.Fatalf("fast walk should stall on prefetch, got %+v", r)
	}
}

func TestDMAPredictability(t *testing.T) {
	d := MustSelfIndirectDMA(256, 8, 0.5)
	d.SetFetchLatency(1)
	var hits int
	for i := 0; i < 1001; i++ {
		if r := d.Access(ld(uint32(i*8%256)), int64(i*100)); r.Hit {
			hits++
		}
	}
	// Deterministic credit accounting: 50% +- rounding.
	if hits < 480 || hits > 520 {
		t.Fatalf("with predictability 0.5, want ~500/1000 hits, got %d", hits)
	}
	if _, err := NewSelfIndirectDMA(256, 8, 1.5); err == nil {
		t.Fatal("predictability > 1 accepted")
	}
	if _, err := NewSelfIndirectDMA(0, 8, 0.5); err == nil {
		t.Fatal("zero buffer accepted")
	}
}

func TestDRAMRowBuffer(t *testing.T) {
	d := DefaultDRAM()
	l1 := d.AccessLatency(0)
	if l1 != d.RowMissCycles {
		t.Fatalf("first access should be a row miss (%d), got %d", d.RowMissCycles, l1)
	}
	l2 := d.AccessLatency(64)
	if l2 != d.RowHitCycles {
		t.Fatalf("same-row access should row-hit (%d), got %d", d.RowHitCycles, l2)
	}
	l3 := d.AccessLatency(uint32(d.RowBytes * d.Banks))
	if l3 != d.RowMissCycles {
		t.Fatalf("same-bank different-row should row-miss, got %d", l3)
	}
	if d.RowHits != 1 || d.RowMisses != 2 {
		t.Fatalf("stats wrong: %d hits %d misses", d.RowHits, d.RowMisses)
	}
	if _, err := NewDRAM(10, 5, 1024, 4); err == nil {
		t.Fatal("rowMiss < rowHit accepted")
	}
	if d.Gates() != 0 {
		t.Fatal("off-chip DRAM must not contribute on-chip gates")
	}
}

func TestModuleClonesAreCold(t *testing.T) {
	mods := []Module{
		MustCache(1024, 32, 2),
		MustSRAM(2048),
		MustStreamBuffer(32, 4),
		MustSelfIndirectDMA(128, 8, 0.9),
	}
	for _, m := range mods {
		m.Access(ld(0), 0)
		c := m.Clone()
		if c.Name() != m.Name() || c.Kind() != m.Kind() || c.Gates() != m.Gates() {
			t.Fatalf("%s: clone metadata mismatch", m.Name())
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCache: "cache", KindSRAM: "sram", KindStream: "stream",
		KindDMA: "lldma", KindDRAM: "dram",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k, want)
		}
	}
}

func TestDRAMClosedRowPolicy(t *testing.T) {
	d := DefaultDRAM()
	d.Policy = ClosedRow
	want := (d.RowHitCycles + d.RowMissCycles) / 2
	for i := uint32(0); i < 10; i++ {
		if got := d.AccessLatency(i * 64); got != want {
			t.Fatalf("closed-row latency = %d, want constant %d", got, want)
		}
	}
	c := d.Clone().(*DRAM)
	if c.Policy != ClosedRow {
		t.Fatal("clone lost row policy")
	}
	// Open-row beats closed-row on sequential traffic, loses on
	// bank-conflict ping-pong.
	open := DefaultDRAM()
	var openSeq, closedSeq int
	for i := uint32(0); i < 32; i++ {
		openSeq += open.AccessLatency(i * 64)
		closedSeq += d.AccessLatency(i * 64)
	}
	if openSeq >= closedSeq {
		t.Fatalf("open row should win sequential traffic: %d vs %d", openSeq, closedSeq)
	}
}
