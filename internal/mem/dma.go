package mem

import (
	"fmt"

	"memorex/internal/trace"
)

// SelfIndirectDMA is the paper's "DMA-like custom memory module" for
// well-behaved pointer-based structures (linked lists, self-indirect
// array references): a small engine that, as soon as the CPU touches an
// element, dereferences the link and fetches the next element into an
// on-chip buffer. If the CPU's next touch of the structure arrives after
// the fetch completes, it hits on-chip; if it arrives early, it stalls
// for the remainder; if it leaves the predicted chain (the engine
// mispredicts), it pays a full miss.
//
// Chain-following accuracy is a property of the data structure, not the
// engine, so the module takes a predictability parameter: the fraction of
// accesses that follow the link the engine prefetched. The profiler
// measures this per data structure (profile.Stats.ChainRatio) and APEX
// instantiates the module with the measured value.
type SelfIndirectDMA struct {
	BufBytes  int
	NodeBytes int
	// Predictability in [0,1]: fraction of accesses following the chain.
	Predictability float64

	fetchLat int
	name     string
	gates    float64
	nrg      float64

	lastTouch int64
	warm      bool
	// Deterministic accuracy accounting: hit when the running chain
	// credit reaches 1 (avoids RNG in the architecture model).
	credit float64

	Hits, Misses int64
}

// NewSelfIndirectDMA builds a self-indirect prefetch module.
func NewSelfIndirectDMA(bufBytes, nodeBytes int, predictability float64) (*SelfIndirectDMA, error) {
	if bufBytes <= 0 || nodeBytes <= 0 {
		return nil, fmt.Errorf("mem: lldma buffer/node sizes must be positive (%d, %d)", bufBytes, nodeBytes)
	}
	if predictability < 0 || predictability > 1 {
		return nil, fmt.Errorf("mem: lldma predictability %v outside [0,1]", predictability)
	}
	return &SelfIndirectDMA{
		BufBytes:       bufBytes,
		NodeBytes:      nodeBytes,
		Predictability: predictability,
		fetchLat:       20,
		name:           fmt.Sprintf("lldma%db", bufBytes),
		gates:          dmaGates(bufBytes),
		nrg:            sramEnergy(bufBytes) + 0.05,
	}, nil
}

// MustSelfIndirectDMA is NewSelfIndirectDMA that panics on bad parameters.
func MustSelfIndirectDMA(bufBytes, nodeBytes int, predictability float64) *SelfIndirectDMA {
	d, err := NewSelfIndirectDMA(bufBytes, nodeBytes, predictability)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Module.
func (d *SelfIndirectDMA) Name() string { return d.name }

// Kind implements Module.
func (d *SelfIndirectDMA) Kind() Kind { return KindDMA }

// Gates implements Module.
func (d *SelfIndirectDMA) Gates() float64 { return d.gates }

// Energy implements Module.
func (d *SelfIndirectDMA) Energy() float64 { return d.nrg }

// Latency implements Module.
func (d *SelfIndirectDMA) Latency() int { return 1 }

// SetFetchLatency implements Module.
func (d *SelfIndirectDMA) SetFetchLatency(cycles int) {
	if cycles > 0 {
		d.fetchLat = cycles
	}
}

// Reset implements Module.
func (d *SelfIndirectDMA) Reset() {
	d.lastTouch = 0
	d.warm = false
	d.credit = 0
	d.Hits, d.Misses = 0, 0
}

// Clone implements Module.
func (d *SelfIndirectDMA) Clone() Module {
	c := MustSelfIndirectDMA(d.BufBytes, d.NodeBytes, d.Predictability)
	c.fetchLat = d.fetchLat
	return c
}

// SinceLastTouch returns the cycles elapsed since the engine was last
// touched (now if it never was). The behavior-capture phase of the
// two-phase simulator snapshots this across sampling gaps.
func (d *SelfIndirectDMA) SinceLastTouch(now int64) int64 {
	return now - d.lastTouch
}

// Access implements Module.
func (d *SelfIndirectDMA) Access(a trace.Access, now int64) AccessResult {
	defer func() { d.lastTouch = now }()
	if !d.warm {
		d.warm = true
		d.Misses++
		return AccessResult{Hit: false, OffChipBytes: d.NodeBytes}
	}
	d.credit += d.Predictability
	if d.credit >= 1 {
		d.credit -= 1
		// The engine prefetched the right node; it started the fetch at
		// the previous touch.
		stall := 0
		ready := d.lastTouch + int64(d.fetchLat)
		if ready > now {
			stall = int(ready - now)
		}
		d.Hits++
		// The prefetch of the *next* node is background traffic.
		return AccessResult{Hit: true, Stall: stall, PrefetchBytes: d.NodeBytes}
	}
	// Mispredicted: demand fetch.
	d.Misses++
	return AccessResult{Hit: false, OffChipBytes: d.NodeBytes}
}
