package mem

import (
	"fmt"
	"math/bits"

	"memorex/internal/trace"
)

// RowPolicy selects the DRAM controller's page policy.
type RowPolicy int

// DRAM row policies.
const (
	// OpenRow leaves the accessed row open: subsequent same-row
	// accesses pay CAS only, row conflicts pay the full row cycle.
	OpenRow RowPolicy = iota
	// ClosedRow precharges after every access: every access pays a
	// fixed activate+CAS latency between the hit and miss extremes.
	// Predictable, and better for low-locality traffic.
	ClosedRow
)

// DRAM models the off-chip main memory with a banked row-buffer:
// accesses that hit the open row of their bank pay CAS latency only,
// others pay the full row cycle (policy-dependent, see RowPolicy).
// DRAM is off-chip, so it contributes no on-chip gates; its (large)
// per-burst energy is what makes misses expensive in the energy
// dimension.
type DRAM struct {
	RowHitCycles  int
	RowMissCycles int
	RowBytes      int
	Banks         int
	Policy        RowPolicy

	openRows []int64

	// Precomputed indexing for the common power-of-two geometry:
	// AccessLatency runs once per miss in every simulation flavor, and
	// the 64-bit div/mod pair was measurable there.
	rowShift uint32
	bankMask int64
	pow2Geom bool

	RowHits, RowMisses int64
}

// NewDRAM builds a DRAM with the given timing. Typical embedded SDRAM of
// the paper's era: row hit ~8 CPU cycles, row miss ~20.
func NewDRAM(rowHit, rowMiss, rowBytes, banks int) (*DRAM, error) {
	if rowHit <= 0 || rowMiss < rowHit || rowBytes <= 0 || banks <= 0 {
		return nil, fmt.Errorf("mem: bad DRAM timing (%d, %d, %d, %d)", rowHit, rowMiss, rowBytes, banks)
	}
	d := &DRAM{RowHitCycles: rowHit, RowMissCycles: rowMiss, RowBytes: rowBytes, Banks: banks}
	d.Reset()
	return d, nil
}

// DefaultDRAM returns the DRAM used throughout the experiments.
func DefaultDRAM() *DRAM {
	d, err := NewDRAM(8, 20, 2048, 4)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Module.
func (d *DRAM) Name() string { return "dram" }

// Kind implements Module.
func (d *DRAM) Kind() Kind { return KindDRAM }

// Gates implements Module: off-chip, no on-chip gate cost.
func (d *DRAM) Gates() float64 { return 0 }

// Energy implements Module: nJ per burst.
func (d *DRAM) Energy() float64 { return dramEnergy }

// Latency implements Module: the average case is reported; use
// AccessLatency for the row-aware value.
func (d *DRAM) Latency() int { return (d.RowHitCycles + d.RowMissCycles) / 2 }

// SetFetchLatency implements Module.
func (d *DRAM) SetFetchLatency(int) {}

// Reset implements Module.
func (d *DRAM) Reset() {
	d.openRows = make([]int64, d.Banks)
	for i := range d.openRows {
		d.openRows[i] = -1
	}
	d.pow2Geom = pow2(d.RowBytes) && pow2(d.Banks)
	if d.pow2Geom {
		d.rowShift = uint32(bits.TrailingZeros32(uint32(d.RowBytes)))
		d.bankMask = int64(d.Banks - 1)
	}
	d.RowHits, d.RowMisses = 0, 0
}

// Clone implements Module.
func (d *DRAM) Clone() Module {
	c, err := NewDRAM(d.RowHitCycles, d.RowMissCycles, d.RowBytes, d.Banks)
	if err != nil {
		panic(err)
	}
	c.Policy = d.Policy
	return c
}

// Access implements Module. DRAM always "hits" (it is the backing store);
// Stall carries the access latency.
func (d *DRAM) Access(a trace.Access, _ int64) AccessResult {
	return AccessResult{Hit: true, Stall: d.AccessLatency(a.Addr)}
}

// AccessLatency returns the row-aware latency of a burst at addr and
// updates the open-row state.
func (d *DRAM) AccessLatency(addr uint32) int {
	if d.Policy == ClosedRow {
		// Activate + CAS every time; no row state to track.
		return (d.RowHitCycles + d.RowMissCycles) / 2
	}
	var row int64
	var bank int
	if d.pow2Geom {
		row = int64(addr >> d.rowShift)
		bank = int(row & d.bankMask)
	} else {
		row = int64(addr) / int64(d.RowBytes)
		bank = int(row) % d.Banks
	}
	if d.openRows[bank] == row {
		d.RowHits++
		return d.RowHitCycles
	}
	d.openRows[bank] = row
	d.RowMisses++
	return d.RowMissCycles
}
