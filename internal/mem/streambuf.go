package mem

import (
	"fmt"

	"memorex/internal/trace"
)

// StreamBuffer is a prefetching FIFO for stream (sequential) accesses, as
// in Jouppi-style stream buffers: it holds Depth lines ahead of the
// current read point and refills in the background. Accesses that fall in
// the buffered window hit (possibly stalling until the in-flight fetch
// lands); accesses outside the window restart the stream.
type StreamBuffer struct {
	LineBytes int
	Depth     int

	fetchLat int // off-chip fetch latency set by the architecture
	name     string
	gates    float64
	nrg      float64

	lines []streamLine

	Hits, Misses, Restarts int64
}

type streamLine struct {
	lineAddr uint32
	readyAt  int64
	valid    bool
}

// NewStreamBuffer builds a stream buffer of depth lines.
func NewStreamBuffer(lineBytes, depth int) (*StreamBuffer, error) {
	if lineBytes <= 0 || !pow2(lineBytes) {
		return nil, fmt.Errorf("mem: stream buffer line must be a positive power of two, got %d", lineBytes)
	}
	if depth <= 0 {
		return nil, fmt.Errorf("mem: stream buffer depth must be positive, got %d", depth)
	}
	s := &StreamBuffer{
		LineBytes: lineBytes,
		Depth:     depth,
		fetchLat:  20,
		name:      fmt.Sprintf("stream%dx%db", depth, lineBytes),
		gates:     streamGates(depth, lineBytes),
		nrg:       sramEnergy(depth*lineBytes) + 0.02,
	}
	s.Reset()
	return s, nil
}

// MustStreamBuffer is NewStreamBuffer that panics on invalid parameters.
func MustStreamBuffer(lineBytes, depth int) *StreamBuffer {
	s, err := NewStreamBuffer(lineBytes, depth)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements Module.
func (s *StreamBuffer) Name() string { return s.name }

// Kind implements Module.
func (s *StreamBuffer) Kind() Kind { return KindStream }

// Gates implements Module.
func (s *StreamBuffer) Gates() float64 { return s.gates }

// Energy implements Module.
func (s *StreamBuffer) Energy() float64 { return s.nrg }

// Latency implements Module.
func (s *StreamBuffer) Latency() int { return 1 }

// SetFetchLatency implements Module.
func (s *StreamBuffer) SetFetchLatency(cycles int) {
	if cycles > 0 {
		s.fetchLat = cycles
	}
}

// Reset implements Module.
func (s *StreamBuffer) Reset() {
	s.lines = make([]streamLine, 0, s.Depth)
	s.Hits, s.Misses, s.Restarts = 0, 0, 0
}

// Clone implements Module.
func (s *StreamBuffer) Clone() Module {
	c := MustStreamBuffer(s.LineBytes, s.Depth)
	c.fetchLat = s.fetchLat
	return c
}

// Access implements Module.
func (s *StreamBuffer) Access(a trace.Access, now int64) AccessResult {
	lineAddr := a.Addr / uint32(s.LineBytes)
	for i := range s.lines {
		if s.lines[i].valid && s.lines[i].lineAddr == lineAddr {
			// In-window hit; stall until the fetch has landed.
			stall := 0
			if s.lines[i].readyAt > now {
				stall = int(s.lines[i].readyAt - now)
			}
			// Consume lines before the hit, then top up the FIFO ahead
			// of the new read point.
			s.lines = append(s.lines[:0], s.lines[i:]...)
			pf := s.topUp(now + int64(stall))
			s.Hits++
			return AccessResult{Hit: true, Stall: stall, PrefetchBytes: pf}
		}
	}
	// Out of window: restart the stream at this address.
	s.Misses++
	s.Restarts++
	s.lines = s.lines[:0]
	s.lines = append(s.lines, streamLine{lineAddr: lineAddr, readyAt: now, valid: true})
	pf := s.topUp(now)
	return AccessResult{Hit: false, OffChipBytes: s.LineBytes, PrefetchBytes: pf}
}

// topUp issues background prefetches until Depth lines are buffered,
// returning the number of prefetched bytes.
func (s *StreamBuffer) topUp(now int64) int {
	bytes := 0
	for len(s.lines) < s.Depth {
		last := s.lines[len(s.lines)-1]
		s.lines = append(s.lines, streamLine{
			lineAddr: last.lineAddr + 1,
			readyAt:  maxI64(now, last.readyAt) + int64(s.fetchLat),
			valid:    true,
		})
		bytes += s.LineBytes
	}
	return bytes
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
