package mem

import (
	"testing"

	"memorex/internal/workload"
)

func TestVictimCacheValidation(t *testing.T) {
	if _, err := NewVictimCache(1024, 32, 1, 0); err == nil {
		t.Fatal("0 victim lines accepted")
	}
	if _, err := NewVictimCache(1024, 32, 1, 100); err == nil {
		t.Fatal("100 victim lines accepted")
	}
	if _, err := NewVictimCache(1000, 32, 1, 4); err == nil {
		t.Fatal("invalid base cache accepted")
	}
	v := MustVictimCache(1024, 32, 1, 4)
	if v.Kind() != KindCache {
		t.Fatal("victim cache should report cache kind")
	}
	if v.Gates() <= MustCache(1024, 32, 1).Gates() {
		t.Fatal("victim buffer must add gates")
	}
	if v.Energy() <= MustCache(1024, 32, 1).Energy() {
		t.Fatal("victim probe must add energy")
	}
	if v.Name() != "cache1k-1w-32b+v4" {
		t.Fatalf("name = %q", v.Name())
	}
}

func TestVictimCacheConflictMissesAbsorbed(t *testing.T) {
	// Direct-mapped 2-set cache: lines 0x000 and 0x100 conflict in set
	// 0. Ping-ponging between them thrashes a plain cache but hits the
	// victim buffer every time after warmup.
	plain := MustCache(64, 32, 1)
	vc := MustVictimCache(64, 32, 1, 4)
	var plainMiss, vcMiss int
	for i := 0; i < 100; i++ {
		addr := uint32(i%2) * 0x100
		if !plain.Access(ld(addr), int64(i)).Hit {
			plainMiss++
		}
		if !vc.Access(ld(addr), int64(i)).Hit {
			vcMiss++
		}
	}
	if plainMiss != 100 {
		t.Fatalf("plain cache should thrash (100 misses), got %d", plainMiss)
	}
	if vcMiss > 3 {
		t.Fatalf("victim cache should absorb the ping-pong, got %d misses", vcMiss)
	}
	if vc.VictimHits < 90 {
		t.Fatalf("victim hits = %d, want ~98", vc.VictimHits)
	}
}

func TestVictimCacheSwapAbsorbsWriteback(t *testing.T) {
	vc := MustVictimCache(64, 32, 1, 4)
	vc.Access(st(0x000), 0) // dirty line in set 0
	r := vc.Access(ld(0x100), 1)
	// Conflict evicts the dirty line into the victim buffer: only the
	// fill goes off chip.
	if r.OffChipBytes != 32 {
		t.Fatalf("eviction into victim buffer should cost only the fill, got %d", r.OffChipBytes)
	}
	// Coming back to 0x000 is a victim hit: no off-chip traffic at all.
	r = vc.Access(ld(0x000), 2)
	if !r.Hit || r.OffChipBytes != 0 {
		t.Fatalf("return access should swap from the victim buffer: %+v", r)
	}
}

func TestVictimCacheOverflowWritesBack(t *testing.T) {
	// 1-line victim buffer: dirty evictions beyond its capacity must
	// eventually pay off-chip write-backs.
	vc := MustVictimCache(64, 32, 1, 1)
	// Dirty three conflicting lines in set 0 in sequence.
	vc.Access(st(0x000), 0)
	vc.Access(st(0x100), 1) // evicts dirty 0x000 into buffer
	r := vc.Access(st(0x200), 2)
	// Evicts dirty 0x100 into the buffer, displacing dirty 0x000,
	// which must be written back: fill + wb.
	if r.OffChipBytes != 64 {
		t.Fatalf("overflowing dirty victim should write back: got %d bytes", r.OffChipBytes)
	}
}

func TestVictimCacheStatsConsistent(t *testing.T) {
	vc := MustVictimCache(512, 32, 1, 4)
	tr := workload.Synthetic(workload.SynRandom, 20_000, 4096, 3)
	var hits, misses int64
	for i, a := range tr.Accesses {
		if vc.Access(a, int64(i)).Hit {
			hits++
		} else {
			misses++
		}
	}
	if vc.Hits != hits || vc.Misses != misses {
		t.Fatalf("stats drifted: module %d/%d vs observed %d/%d",
			vc.Hits, vc.Misses, hits, misses)
	}
	if vc.VictimHits == 0 {
		t.Fatal("random conflict traffic should produce some victim hits")
	}
}

func TestVictimCacheNeverWorseThanPlain(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.Config{Scale: 1, Seed: 42})
	plain := MustCache(4096, 32, 1)
	vc := MustVictimCache(4096, 32, 1, 8)
	var pm, vm int64
	for i, a := range tr.Accesses[:100_000] {
		if !plain.Access(a, int64(i)).Hit {
			pm++
		}
		if !vc.Access(a, int64(i)).Hit {
			vm++
		}
	}
	if vm > pm {
		t.Fatalf("victim cache missed more than plain cache: %d vs %d", vm, pm)
	}
}

func TestVictimCacheCloneAndReset(t *testing.T) {
	vc := MustVictimCache(512, 32, 1, 2)
	vc.Access(ld(0), 0)
	vc.Access(ld(0x1000), 1)
	c := vc.Clone().(*VictimCache)
	if c.VictimHits != 0 || c.Misses != 0 {
		t.Fatal("clone inherited state")
	}
	vc.Reset()
	if vc.VictimHits != 0 || vc.Hits != 0 {
		t.Fatal("reset did not clear stats")
	}
	if r := vc.Access(ld(0), 0); r.Hit {
		t.Fatal("reset did not clear contents")
	}
}
