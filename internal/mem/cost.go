package mem

import "math"

// Analytic area and energy models.
//
// The paper takes its memory-module area and power models from Catthoor
// et al., "Custom Memory Management Methodology" (and its connectivity
// wire-area models from Chen et al. and Deng/Maly). Those exact tables
// are not available, so we use the standard closed-form approximations
// (CACTI-style) with coefficients calibrated so that absolute magnitudes
// land in the ranges Table 1 of the paper reports: a conventional 32 KiB
// cache system around 4.8e5 gate equivalents and system energies of a
// few nJ to ~15 nJ per access. Only the relative ordering of design
// points matters for the exploration; these models preserve it because
// area grows linearly in capacity and energy grows with capacity,
// associativity, and off-chip traffic.

const (
	// gatesPerBit is the gate-equivalent area of one on-chip SRAM bit,
	// including its share of the array periphery.
	gatesPerBit = 1.7
	// gatesPerTagBit is slightly higher: tag bits pay for comparators.
	gatesPerTagBit = 2.0
	// addressBits is the width of the synthetic address space.
	addressBits = 32
)

// sramGates returns the gate cost of a plain SRAM array of the given
// capacity in bytes.
func sramGates(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	// Array + decoder (grows with log of the number of rows) + sense amps.
	rows := float64(bytes) / 16
	decoder := 60 * math.Log2(rows+2)
	return float64(bytes*8)*gatesPerBit + decoder + 800
}

// sramEnergy returns nJ per access of an SRAM array of the given capacity.
func sramEnergy(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	// Bit-line energy grows roughly with sqrt of capacity.
	return 0.08 + 0.015*math.Sqrt(float64(bytes)/1024)
}

// cacheGates returns the gate cost of a set-associative cache.
func cacheGates(size, line, assoc int) float64 {
	if size <= 0 || line <= 0 || assoc <= 0 {
		return 0
	}
	sets := size / (line * assoc)
	if sets < 1 {
		sets = 1
	}
	offsetBits := log2i(line)
	indexBits := log2i(sets)
	tagBits := addressBits - offsetBits - indexBits
	dataGates := float64(size*8) * gatesPerBit
	tagGates := float64(sets*assoc*(tagBits+2)) * gatesPerTagBit // +valid +dirty
	comparators := float64(assoc*tagBits) * 6
	lru := float64(sets*assoc*log2i(assoc)) * 2
	control := 4200.0
	return dataGates + tagGates + comparators + lru + control
}

// cacheEnergy returns nJ per access of a set-associative cache: all ways
// of a set are read in parallel, so energy scales with associativity.
func cacheEnergy(size, line, assoc int) float64 {
	if size <= 0 {
		return 0
	}
	return 0.10 + 0.02*float64(assoc) + 0.02*math.Sqrt(float64(size)/1024)
}

// streamGates returns the gate cost of a stream buffer with the given
// number of lines of the given size.
func streamGates(lines, lineBytes int) float64 {
	buf := sramGates(lines * lineBytes)
	engine := 2600.0 // address generator, stride detector, FIFO control
	return buf + engine
}

// dmaGates returns the gate cost of a self-indirect (linked-list) DMA
// module with an internal buffer of the given size.
func dmaGates(bufBytes int) float64 {
	return sramGates(bufBytes) + 5200 // pointer-walk engine is bigger
}

// dramEnergy is the energy in nJ of transferring one off-chip burst
// (per access, not per byte; per-byte costs are on the connectivity).
const dramEnergy = 48.0

// log2i returns floor(log2(v)) for v >= 1, else 0.
func log2i(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
