package mem

import (
	"fmt"

	"memorex/internal/trace"
)

// SRAM is an on-chip scratchpad holding entire data structures. Data is
// placed by software at load time (the standard scratchpad assumption),
// so every access routed to the SRAM is an on-chip hit and generates no
// off-chip traffic.
type SRAM struct {
	CapacityBytes int
	name          string
	gates         float64
	nrg           float64
	Accesses      int64
}

// NewSRAM builds a scratchpad of the given capacity.
func NewSRAM(capacity int) (*SRAM, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("mem: sram capacity must be positive, got %d", capacity)
	}
	return &SRAM{
		CapacityBytes: capacity,
		name:          fmt.Sprintf("sram%db", capacity),
		gates:         sramGates(capacity),
		nrg:           sramEnergy(capacity),
	}, nil
}

// MustSRAM is NewSRAM that panics on invalid parameters.
func MustSRAM(capacity int) *SRAM {
	s, err := NewSRAM(capacity)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements Module.
func (s *SRAM) Name() string { return s.name }

// Kind implements Module.
func (s *SRAM) Kind() Kind { return KindSRAM }

// Gates implements Module.
func (s *SRAM) Gates() float64 { return s.gates }

// Energy implements Module.
func (s *SRAM) Energy() float64 { return s.nrg }

// Latency implements Module.
func (s *SRAM) Latency() int { return 1 }

// SetFetchLatency implements Module.
func (s *SRAM) SetFetchLatency(int) {}

// Reset implements Module.
func (s *SRAM) Reset() { s.Accesses = 0 }

// Clone implements Module.
func (s *SRAM) Clone() Module { return MustSRAM(s.CapacityBytes) }

// Access implements Module.
func (s *SRAM) Access(trace.Access, int64) AccessResult {
	s.Accesses++
	return AccessResult{Hit: true}
}
