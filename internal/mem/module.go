// Package mem models the memory IP library of the paper: caches, on-chip
// SRAMs (scratchpads), stream buffers, "DMA-like" self-indirect prefetch
// modules, and off-chip DRAM. Each module reports an area cost in basic
// gate equivalents, an energy per access, and an internal access latency,
// and simulates its own hit/miss behaviour; the system simulator in
// internal/sim combines modules with the connectivity architecture.
package mem

import (
	"fmt"

	"memorex/internal/trace"
)

// Kind enumerates the module classes of the memory IP library.
type Kind int

// Memory module kinds.
const (
	KindCache Kind = iota
	KindSRAM
	KindStream
	KindDMA
	KindDRAM
)

// String returns the library name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCache:
		return "cache"
	case KindSRAM:
		return "sram"
	case KindStream:
		return "stream"
	case KindDMA:
		return "lldma"
	case KindDRAM:
		return "dram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AccessResult reports the outcome of one CPU access presented to a
// module.
type AccessResult struct {
	// Hit is true when the access is serviced on-chip by this module.
	Hit bool
	// OffChipBytes is the demand traffic this access generates on the
	// module's off-chip channel (line fills, write-backs, node fetches).
	OffChipBytes int
	// PrefetchBytes is additional off-chip traffic issued in the
	// background (stream-buffer lookahead). It occupies the channel and
	// consumes energy but does not stall the CPU.
	PrefetchBytes int
	// Stall is module-internal extra latency in cycles beyond the
	// module's nominal Latency (e.g. waiting for an in-flight prefetch).
	Stall int
}

// Module is one memory IP block. Modules are stateful; use Clone to get a
// fresh instance for an independent simulation run.
type Module interface {
	// Name identifies the instance, e.g. "cache8k2w32".
	Name() string
	// Kind returns the library class.
	Kind() Kind
	// Gates returns the area cost in basic gate equivalents.
	Gates() float64
	// Energy returns the energy in nJ consumed by one access to the
	// module itself (excluding connectivity and DRAM energy).
	Energy() float64
	// Latency returns the module's internal hit latency in cycles.
	Latency() int
	// Access simulates one access at CPU cycle now.
	Access(a trace.Access, now int64) AccessResult
	// SetFetchLatency informs prefetching modules how long their
	// off-chip fetch path takes (connectivity + DRAM), so that their
	// timing model is consistent with the architecture they sit in.
	SetFetchLatency(cycles int)
	// Reset restores cold-start state.
	Reset()
	// Clone returns an independent copy in cold-start state.
	Clone() Module
}
