package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memorex/internal/trace"
)

func ld(addr uint32) trace.Access {
	return trace.Access{Addr: addr, DS: 1, Kind: trace.Load, Size: 4}
}

func st(addr uint32) trace.Access {
	return trace.Access{Addr: addr, DS: 1, Kind: trace.Store, Size: 4}
}

func TestNewCacheValidation(t *testing.T) {
	cases := []struct{ size, line, assoc int }{
		{0, 32, 1}, {1024, 0, 1}, {1024, 32, 0},
		{1000, 32, 1}, {1024, 24, 1}, {1024, 32, 3},
		{32, 32, 2}, // size < line*assoc
		{-4, 32, 1},
	}
	for _, c := range cases {
		if _, err := NewCache(c.size, c.line, c.assoc); err == nil {
			t.Fatalf("NewCache(%d,%d,%d) accepted invalid parameters", c.size, c.line, c.assoc)
		}
	}
	if _, err := NewCache(8192, 32, 2); err != nil {
		t.Fatalf("NewCache(8192,32,2): %v", err)
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := MustCache(1024, 32, 1)
	r := c.Access(ld(0x1000), 0)
	if r.Hit || r.OffChipBytes != 32 {
		t.Fatalf("cold access should miss with a 32-byte fill, got %+v", r)
	}
	r = c.Access(ld(0x1004), 1)
	if !r.Hit || r.OffChipBytes != 0 {
		t.Fatalf("same-line access should hit, got %+v", r)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats wrong: %d hits %d misses", c.Hits, c.Misses)
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// 2-way, 1 set: lines of 32 bytes, size 64.
	c := MustCache(64, 32, 2)
	c.Access(ld(0x000), 0)      // A miss
	c.Access(ld(0x100), 0)      // B miss
	c.Access(ld(0x000), 0)      // A hit -> A is MRU
	r := c.Access(ld(0x200), 0) // C miss, evicts B (LRU)
	if r.Hit {
		t.Fatal("C should miss")
	}
	if r := c.Access(ld(0x000), 0); !r.Hit {
		t.Fatal("A should still be resident (was MRU)")
	}
	if r := c.Access(ld(0x100), 0); r.Hit {
		t.Fatal("B should have been evicted")
	}
}

func TestCacheWriteBack(t *testing.T) {
	c := MustCache(64, 32, 1)   // 2 sets, direct mapped
	c.Access(st(0x000), 0)      // dirty fill of set 0
	r := c.Access(ld(0x100), 0) // conflicting line in set 0 (0x100/32=8, 8%2=0)
	if r.Hit {
		t.Fatal("conflicting access must miss")
	}
	if r.OffChipBytes != 64 {
		t.Fatalf("dirty eviction should cost fill+writeback = 64 bytes, got %d", r.OffChipBytes)
	}
	if c.WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", c.WriteBacks)
	}
	// Clean eviction costs only the fill.
	r = c.Access(ld(0x000), 0)
	if r.OffChipBytes != 32 {
		t.Fatalf("clean eviction should cost 32 bytes, got %d", r.OffChipBytes)
	}
}

func TestCacheHitStoreMarksDirty(t *testing.T) {
	c := MustCache(64, 32, 1)
	c.Access(ld(0x000), 0) // clean fill
	c.Access(st(0x004), 0) // hit store -> dirty
	r := c.Access(ld(0x100), 0)
	if r.OffChipBytes != 64 {
		t.Fatalf("store-hit should have dirtied the line (want 64-byte eviction, got %d)", r.OffChipBytes)
	}
}

func TestCacheFullyAssociative(t *testing.T) {
	c := MustCache(128, 32, 4) // one set of 4 ways
	for i := uint32(0); i < 4; i++ {
		c.Access(ld(i*0x100), 0)
	}
	for i := uint32(0); i < 4; i++ {
		if r := c.Access(ld(i*0x100), 0); !r.Hit {
			t.Fatalf("way %d should be resident", i)
		}
	}
	c.Access(ld(0x900), 0) // evicts LRU = line 0 (it was touched first in the second loop)
	if r := c.Access(ld(0x000), 0); r.Hit {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestCacheResetClearsState(t *testing.T) {
	c := MustCache(1024, 32, 2)
	c.Access(ld(0), 0)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("Reset did not clear stats")
	}
	if r := c.Access(ld(0), 0); r.Hit {
		t.Fatal("Reset did not clear lines")
	}
}

func TestCacheCloneIndependent(t *testing.T) {
	c := MustCache(1024, 32, 2)
	c.Access(ld(0), 0)
	c2 := c.Clone().(*Cache)
	if c2.Misses != 0 {
		t.Fatal("clone inherited stats")
	}
	if r := c2.Access(ld(0), 0); r.Hit {
		t.Fatal("clone inherited cache contents")
	}
	if c.Misses != 1 {
		t.Fatal("accessing the clone affected the original")
	}
}

// Property: under LRU, a larger cache (same line size, same
// associativity scaling via sets) never produces more misses on the same
// trace (stack inclusion property for fully-associative; we check
// fully-associative caches where it provably holds).
func TestQuickLRUInclusion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		small := MustCache(128, 32, 4) // fully associative: 4 lines
		large := MustCache(256, 32, 8) // fully associative: 8 lines
		var smallMiss, largeMiss int64
		for i := 0; i < 3000; i++ {
			addr := uint32(rng.Intn(64)) * 32
			if !small.Access(ld(addr), 0).Hit {
				smallMiss++
			}
			if !large.Access(ld(addr), 0).Hit {
				largeMiss++
			}
		}
		return largeMiss <= smallMiss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses always equals the number of accesses, and
// off-chip bytes are always a multiple of the line size.
func TestQuickCacheAccounting(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustCache(512, 32, 2)
		var total int64
		for i := 0; i < int(n); i++ {
			a := ld(uint32(rng.Intn(4096)))
			if rng.Intn(2) == 0 {
				a.Kind = trace.Store
			}
			r := c.Access(a, int64(i))
			if r.OffChipBytes%32 != 0 {
				return false
			}
			total++
		}
		return c.Hits+c.Misses == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheCostModelMonotone(t *testing.T) {
	small := MustCache(1024, 32, 1)
	big := MustCache(32*1024, 32, 1)
	if big.Gates() <= small.Gates() {
		t.Fatal("bigger cache must cost more gates")
	}
	if big.Energy() <= small.Energy() {
		t.Fatal("bigger cache must cost more energy per access")
	}
	lowAssoc := MustCache(8192, 32, 1)
	hiAssoc := MustCache(8192, 32, 4)
	if hiAssoc.Energy() <= lowAssoc.Energy() {
		t.Fatal("higher associativity must cost more energy per access")
	}
	// Calibration anchor: a 32 KiB cache lands in the paper's
	// conventional-architecture range (~4.4e5..5.5e5 gates).
	g := MustCache(32*1024, 32, 1).Gates()
	if g < 4.0e5 || g > 6.0e5 {
		t.Fatalf("32KiB cache gate cost %.0f outside calibration range", g)
	}
}

func TestWriteThroughStoresGoOffChip(t *testing.T) {
	wt := MustWriteThroughCache(1024, 32, 1)
	if wt.Policy != WriteThrough || wt.Policy.String() != "wt" {
		t.Fatal("policy not set")
	}
	if WriteBack.String() != "wb" {
		t.Fatal("wb string wrong")
	}
	// Load fill, then store hit: the store's bytes cross the chip
	// boundary immediately and the line stays clean.
	wt.Access(ld(0x000), 0)
	r := wt.Access(st(0x004), 1)
	if !r.Hit || r.OffChipBytes != 4 {
		t.Fatalf("write-through store hit should post 4 bytes: %+v", r)
	}
	// Conflict eviction costs only the fill (no dirty write-back).
	r = wt.Access(ld(0x400), 2)
	if r.OffChipBytes != 32 {
		t.Fatalf("write-through eviction should not write back: %+v", r)
	}
	// Store miss: no allocation.
	r = wt.Access(st(0x800), 3)
	if r.Hit || r.OffChipBytes != 4 {
		t.Fatalf("write-through store miss should post 4 bytes without fill: %+v", r)
	}
	if r := wt.Access(ld(0x800), 4); r.Hit {
		t.Fatal("store miss must not have allocated the line")
	}
}

func TestWriteThroughCheaperThanWriteBack(t *testing.T) {
	wb := MustCache(4096, 32, 2)
	wt := MustWriteThroughCache(4096, 32, 2)
	if wt.Gates() >= wb.Gates() {
		t.Fatal("write-through control should be cheaper")
	}
	if wt.Name() != wb.Name()+"-wt" {
		t.Fatalf("name = %q", wt.Name())
	}
	c := wt.Clone().(*Cache)
	if c.Policy != WriteThrough {
		t.Fatal("clone lost the write policy")
	}
}

func TestWritePolicyTrafficTradeoff(t *testing.T) {
	// On a store-heavy working set that fits in the cache, write-back
	// generates less off-chip traffic than write-through.
	wb := MustCache(4096, 32, 2)
	wt := MustWriteThroughCache(4096, 32, 2)
	var wbBytes, wtBytes int
	for pass := 0; pass < 50; pass++ {
		for addr := uint32(0); addr < 2048; addr += 4 {
			wbBytes += wb.Access(st(addr), 0).OffChipBytes
			wtBytes += wt.Access(st(addr), 0).OffChipBytes
		}
	}
	if wbBytes >= wtBytes {
		t.Fatalf("write-back should save traffic on a resident working set: %d vs %d", wbBytes, wtBytes)
	}
}
