package mem

import (
	"fmt"
	"math/bits"

	"memorex/internal/trace"
)

// WritePolicy selects how a cache handles stores.
type WritePolicy int

// Write policies.
const (
	// WriteBack allocates on store misses and writes dirty lines back
	// on eviction (the default, and what the paper's caches model).
	WriteBack WritePolicy = iota
	// WriteThrough propagates every store off chip immediately and
	// does not allocate on store misses. Cheaper control logic, more
	// off-chip traffic — the classic embedded trade-off.
	WriteThrough
)

// String implements fmt.Stringer.
func (p WritePolicy) String() string {
	if p == WriteThrough {
		return "wt"
	}
	return "wb"
}

// Cache is a set-associative cache with true LRU replacement and a
// configurable write policy (write-back/write-allocate by default).
type Cache struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	Policy    WritePolicy

	sets  []cacheSet
	name  string
	gates float64
	nrg   float64

	// Precomputed indexing (line size and set count are powers of two,
	// enforced by NewCache): Access is the innermost loop of every
	// memory-side simulation and the div/mod pair showed up in its
	// profile.
	lineShift uint32
	setShift  uint32
	setMask   uint32

	// Last eviction, for victim-buffer wrappers: the line address of
	// the most recently displaced valid line, and whether it was dirty.
	lastEvicted      uint32
	lastEvictedValid bool
	lastEvictedDirty bool

	// Stats accumulated since the last Reset.
	Hits, Misses, WriteBacks int64
}

type cacheLine struct {
	tag   uint32
	valid bool
	dirty bool
}

type cacheSet struct {
	// lines[0] is MRU, lines[len-1] is LRU.
	lines []cacheLine
}

// NewCache builds a cache. Size, line and associativity must be powers of
// two with size >= line*assoc.
func NewCache(size, line, assoc int) (*Cache, error) {
	if size <= 0 || line <= 0 || assoc <= 0 {
		return nil, fmt.Errorf("mem: cache parameters must be positive (size=%d line=%d assoc=%d)", size, line, assoc)
	}
	if !pow2(size) || !pow2(line) || !pow2(assoc) {
		return nil, fmt.Errorf("mem: cache parameters must be powers of two (size=%d line=%d assoc=%d)", size, line, assoc)
	}
	if size < line*assoc {
		return nil, fmt.Errorf("mem: cache size %d smaller than line*assoc=%d", size, line*assoc)
	}
	c := &Cache{
		SizeBytes: size,
		LineBytes: line,
		Assoc:     assoc,
		name:      fmt.Sprintf("cache%dk-%dw-%db", size/1024, assoc, line),
		gates:     cacheGates(size, line, assoc),
		nrg:       cacheEnergy(size, line, assoc),
	}
	if size < 1024 {
		c.name = fmt.Sprintf("cache%db-%dw-%db", size, assoc, line)
	}
	c.Reset()
	return c, nil
}

// MustCache is NewCache that panics on invalid parameters; for use with
// constant, known-good configurations.
func MustCache(size, line, assoc int) *Cache {
	c, err := NewCache(size, line, assoc)
	if err != nil {
		panic(err)
	}
	return c
}

// NewWriteThroughCache builds a write-through, no-write-allocate cache.
func NewWriteThroughCache(size, line, assoc int) (*Cache, error) {
	c, err := NewCache(size, line, assoc)
	if err != nil {
		return nil, err
	}
	c.Policy = WriteThrough
	c.name += "-wt"
	// No dirty bits or write-back datapath: slightly cheaper control.
	c.gates -= 600
	return c, nil
}

// MustWriteThroughCache is NewWriteThroughCache that panics on invalid
// parameters.
func MustWriteThroughCache(size, line, assoc int) *Cache {
	c, err := NewWriteThroughCache(size, line, assoc)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Module.
func (c *Cache) Name() string { return c.name }

// Kind implements Module.
func (c *Cache) Kind() Kind { return KindCache }

// Gates implements Module.
func (c *Cache) Gates() float64 { return c.gates }

// Energy implements Module.
func (c *Cache) Energy() float64 { return c.nrg }

// Latency implements Module. One cycle to hit; larger caches take two.
func (c *Cache) Latency() int {
	if c.SizeBytes > 16*1024 {
		return 2
	}
	return 1
}

// SetFetchLatency implements Module (caches don't prefetch).
func (c *Cache) SetFetchLatency(int) {}

// Reset implements Module.
func (c *Cache) Reset() {
	nSets := c.SizeBytes / (c.LineBytes * c.Assoc)
	c.sets = make([]cacheSet, nSets)
	for i := range c.sets {
		c.sets[i].lines = make([]cacheLine, c.Assoc)
	}
	c.lineShift = uint32(bits.TrailingZeros32(uint32(c.LineBytes)))
	c.setShift = uint32(bits.TrailingZeros32(uint32(nSets)))
	c.setMask = uint32(nSets - 1)
	c.Hits, c.Misses, c.WriteBacks = 0, 0, 0
}

// Clone implements Module.
func (c *Cache) Clone() Module {
	if c.Policy == WriteThrough {
		return MustWriteThroughCache(c.SizeBytes, c.LineBytes, c.Assoc)
	}
	return MustCache(c.SizeBytes, c.LineBytes, c.Assoc)
}

// Access implements Module.
func (c *Cache) Access(a trace.Access, _ int64) AccessResult {
	lineAddr := a.Addr >> c.lineShift
	setIdx := lineAddr & c.setMask
	set := &c.sets[setIdx]
	tag := lineAddr >> c.setShift

	for i := range set.lines {
		if set.lines[i].valid && set.lines[i].tag == tag {
			// Hit: move to MRU.
			hitLine := set.lines[i]
			copy(set.lines[1:i+1], set.lines[:i])
			set.lines[0] = hitLine
			if a.Kind == trace.Store {
				if c.Policy == WriteThrough {
					// The store is counted as a hit (no stall in our
					// posted-write model) but its bytes go off chip.
					c.Hits++
					return AccessResult{Hit: true, OffChipBytes: int(a.Size)}
				}
				set.lines[0].dirty = true
			}
			c.Hits++
			return AccessResult{Hit: true}
		}
	}
	if c.Policy == WriteThrough && a.Kind == trace.Store {
		// No write allocation: the store goes straight off chip.
		c.Misses++
		return AccessResult{Hit: false, OffChipBytes: int(a.Size)}
	}
	// Miss: evict LRU, fill, insert at MRU.
	c.Misses++
	victim := set.lines[len(set.lines)-1]
	wb := 0
	c.lastEvictedValid = victim.valid
	if victim.valid {
		c.lastEvicted = victim.tag<<c.setShift | setIdx
		c.lastEvictedDirty = victim.dirty
		if victim.dirty {
			wb = c.LineBytes
			c.WriteBacks++
		}
	}
	copy(set.lines[1:], set.lines[:len(set.lines)-1])
	set.lines[0] = cacheLine{tag: tag, valid: true, dirty: a.Kind == trace.Store}
	return AccessResult{Hit: false, OffChipBytes: c.LineBytes + wb}
}

func pow2(v int) bool { return v > 0 && v&(v-1) == 0 }
