package apex

import (
	"testing"

	"memorex/internal/mem"
	"memorex/internal/profile"
	"memorex/internal/workload"
)

// smallConfig keeps unit tests fast.
func smallConfig() Config {
	return Config{
		CacheSizes:  []int{1 << 10, 4 << 10, 16 << 10},
		CacheAssocs: []int{1, 2},
		CacheLines:  []int{32},
		MaxCustom:   2,
		SRAMLimit:   80 << 10,
		MaxSelected: 5,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.CacheSizes = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty cache sweep accepted")
	}
	bad = DefaultConfig()
	bad.MaxCustom = 9
	if err := bad.Validate(); err == nil {
		t.Fatal("huge MaxCustom accepted")
	}
	bad = DefaultConfig()
	bad.MaxSelected = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero MaxSelected accepted")
	}
}

func TestExploreCompress(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig())
	prof := profile.Analyze(tr)
	res, err := Explore(tr, prof, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) < 12 {
		t.Fatalf("exploration evaluated only %d designs", len(res.All))
	}
	if len(res.Selected) == 0 || len(res.Selected) > 5 {
		t.Fatalf("selected %d designs, want 1..5", len(res.Selected))
	}
	// Selected points must be sorted by cost and strictly improving in
	// miss ratio (a pareto front).
	for i := 1; i < len(res.Selected); i++ {
		if res.Selected[i].Gates <= res.Selected[i-1].Gates {
			t.Fatal("selected designs not sorted by ascending cost")
		}
		if res.Selected[i].MissRatio >= res.Selected[i-1].MissRatio {
			t.Fatal("selected designs not strictly improving in miss ratio")
		}
	}
	// All selected architectures must validate and include a cache.
	for _, dp := range res.Selected {
		if err := dp.Arch.Validate(); err != nil {
			t.Fatalf("selected architecture invalid: %v", err)
		}
	}
	if res.EvaluatedAccesses == 0 {
		t.Fatal("no exploration work recorded")
	}
}

func TestExploreFindsCustomModulesHelp(t *testing.T) {
	// On compress, the best selected architectures should include at
	// least one with a custom module (the paper's architectures c..k).
	tr := workload.Compress{}.Generate(workload.DefaultConfig())
	res, err := Explore(tr, nil, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	foundCustom := false
	for _, dp := range res.Selected {
		if len(dp.Arch.Modules) > 1 {
			foundCustom = true
		}
	}
	if !foundCustom {
		t.Fatal("no selected architecture uses a custom memory module")
	}
}

func TestExploreMissRatioMonotoneInCache(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig())
	cfg := Config{
		CacheSizes:  []int{1 << 10, 32 << 10},
		CacheAssocs: []int{2},
		CacheLines:  []int{32},
		MaxCustom:   0,
		MaxSelected: 5,
	}
	res, err := Explore(tr, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 2 {
		t.Fatalf("want exactly 2 designs, got %d", len(res.All))
	}
	small, big := res.All[0], res.All[1]
	if small.Gates > big.Gates {
		small, big = big, small
	}
	if big.MissRatio >= small.MissRatio {
		t.Fatalf("32k cache should miss less than 1k: %.4f vs %.4f", big.MissRatio, small.MissRatio)
	}
}

func TestExploreVocoderUsesStreamModules(t *testing.T) {
	tr := workload.Vocoder{}.Generate(workload.DefaultConfig())
	prof := profile.Analyze(tr)
	res, err := Explore(tr, prof, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Some evaluated design must carry a stream buffer or SRAM (vocoder
	// is stream/table dominated).
	found := false
	for _, dp := range res.All {
		for _, m := range dp.Arch.Modules {
			if m.Kind() == mem.KindStream || m.Kind() == mem.KindSRAM {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("vocoder exploration never proposed stream/SRAM modules")
	}
}

func TestThinKeepsEndpoints(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig())
	res, err := Explore(tr, nil, Config{
		CacheSizes:  []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10},
		CacheAssocs: []int{1, 2},
		CacheLines:  []int{16, 32},
		MaxCustom:   1,
		SRAMLimit:   80 << 10,
		MaxSelected: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) > 3 {
		t.Fatalf("thinning failed: %d selected", len(res.Selected))
	}
}

func TestExploreRejectsBadConfig(t *testing.T) {
	tr := workload.Synthetic(workload.SynStream, 100, 1024, 1)
	if _, err := Explore(tr, nil, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestExploreVictimVariants(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 60_000)
	cfg := smallConfig()
	cfg.VictimLines = 4
	res, err := Explore(tr, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Explore(tr, nil, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 2*len(plain.All) {
		t.Fatalf("victim sweep should double the space: %d vs %d", len(res.All), len(plain.All))
	}
	// Victim variants must exist and never miss more than their plain
	// counterpart of the same configuration.
	found := false
	for _, dp := range res.All {
		vc, ok := dp.Arch.Modules[0].(*mem.VictimCache)
		if !ok {
			continue
		}
		found = true
		for _, other := range res.All {
			if other.Arch.Modules[0].Name() == vc.Cache.Name() &&
				other.Arch.Name[len(other.Arch.Name)-2:] == dp.Arch.Name[len(dp.Arch.Name)-2:] {
				if dp.MissRatio > other.MissRatio+1e-9 {
					t.Fatalf("victim variant misses more than plain: %v vs %v",
						dp.MissRatio, other.MissRatio)
				}
			}
		}
	}
	if !found {
		t.Fatal("no victim variants generated")
	}
}

func TestExploreWriteThroughSweep(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 60_000)
	cfg := smallConfig()
	cfg.SweepWriteThrough = true
	res, err := Explore(tr, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wt, wb int
	for _, dp := range res.All {
		c, ok := dp.Arch.Modules[0].(*mem.Cache)
		if !ok {
			continue
		}
		if c.Policy == mem.WriteThrough {
			wt++
		} else {
			wb++
		}
	}
	if wt == 0 || wt != wb {
		t.Fatalf("write-through sweep should mirror the write-back space: %d wt vs %d wb", wt, wb)
	}
}

func TestExploreL2Sweep(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 60_000)
	cfg := smallConfig()
	cfg.L2Sizes = []int{32 << 10}
	res, err := Explore(tr, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Explore(tr, nil, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 2*len(plain.All) {
		t.Fatalf("L2 sweep should double the space: %d vs %d", len(res.All), len(plain.All))
	}
	// Every L2 variant must cut the off-chip traffic of its base.
	for _, dp := range res.All {
		if dp.Arch.L2 == nil {
			continue
		}
		for _, other := range res.All {
			if other.Arch.L2 == nil && dp.Arch.Name == other.Arch.Name+"+l2-32k" {
				if dp.OffChipBytesPerAccess >= other.OffChipBytesPerAccess {
					t.Fatalf("%s: L2 did not cut off-chip traffic (%.3f vs %.3f)",
						dp.Arch.Name, dp.OffChipBytesPerAccess, other.OffChipBytesPerAccess)
				}
			}
		}
	}
}

func TestExploreMaxSelectedOne(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 30_000)
	cfg := smallConfig()
	cfg.MaxSelected = 1
	res, err := Explore(tr, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Fatalf("MaxSelected=1 returned %d designs", len(res.Selected))
	}
}
