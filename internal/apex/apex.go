// Package apex implements the Access Pattern-based memory-modules
// EXploration of Grun et al. (ISSS 2001), the stage that precedes the
// paper's connectivity exploration: starting from the profiled access
// patterns of the application's data structures, it enumerates memory
// architectures that mix caches with pattern-matched custom modules
// (SRAM scratchpads for hot tables, stream buffers for sequential data,
// DMA-like self-indirect engines for pointer chains), evaluates each
// under an idealized interconnect, and selects the most promising
// cost/miss-ratio designs — the points labelled 1..5 in Figure 3.
package apex

import (
	"fmt"
	"sort"

	"memorex/internal/mem"
	"memorex/internal/pareto"
	"memorex/internal/profile"
	"memorex/internal/sim"
	"memorex/internal/trace"
)

// Config bounds the memory-modules design space.
type Config struct {
	// CacheSizes, CacheAssocs and CacheLines define the cache sweep.
	CacheSizes  []int `json:"cache_sizes,omitempty"`
	CacheAssocs []int `json:"cache_assocs,omitempty"`
	CacheLines  []int `json:"cache_lines,omitempty"`
	// MaxCustom is the number of hottest data structures considered for
	// custom modules (the power set of their candidates is explored).
	MaxCustom int `json:"max_custom,omitempty"`
	// SRAMLimit is the largest data structure (bytes) that may be
	// mapped to a scratchpad.
	SRAMLimit int `json:"sram_limit,omitempty"`
	// MaxSelected caps the architectures handed to the connectivity
	// exploration (the paper selects 5 for compress).
	MaxSelected int `json:"max_selected,omitempty"`
	// VictimLines, when positive, additionally sweeps victim-buffer
	// variants of every cache configuration (an extension module of the
	// library; see mem.VictimCache).
	VictimLines int `json:"victim_lines,omitempty"`
	// SweepWriteThrough additionally sweeps write-through variants of
	// every cache configuration (cheaper control, more off-chip store
	// traffic).
	SweepWriteThrough bool `json:"sweep_write_through,omitempty"`
	// L2Sizes, when non-empty, additionally sweeps variants of every
	// architecture with a shared L2 of each given size (4-way, 32-byte
	// lines) shielding the off-chip channel.
	L2Sizes []int `json:"l2_sizes,omitempty"`
}

// DefaultConfig returns the sweep used by the paper-reproduction
// experiments.
func DefaultConfig() Config {
	return Config{
		CacheSizes:  []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10},
		CacheAssocs: []int{1, 2},
		CacheLines:  []int{32},
		MaxCustom:   3,
		SRAMLimit:   80 << 10,
		MaxSelected: 5,
	}
}

// IsZero reports whether the config is the zero value, which callers
// treat as "use DefaultConfig".
func (c Config) IsZero() bool {
	return c.CacheSizes == nil && c.CacheAssocs == nil && c.CacheLines == nil &&
		c.MaxCustom == 0 && c.SRAMLimit == 0 && c.MaxSelected == 0 &&
		c.VictimLines == 0 && !c.SweepWriteThrough && c.L2Sizes == nil
}

// Normalize resolves the config the explorations run with: the zero
// value becomes DefaultConfig, anything else must validate as-is.
func (c Config) Normalize() (Config, error) {
	if c.IsZero() {
		return DefaultConfig(), nil
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.CacheSizes) == 0 || len(c.CacheAssocs) == 0 || len(c.CacheLines) == 0 {
		return fmt.Errorf("apex: cache sweep must be non-empty")
	}
	if c.MaxCustom < 0 || c.MaxCustom > 6 {
		return fmt.Errorf("apex: MaxCustom %d outside [0,6]", c.MaxCustom)
	}
	if c.MaxSelected <= 0 {
		return fmt.Errorf("apex: MaxSelected must be positive")
	}
	return nil
}

// DesignPoint is one evaluated memory-modules architecture.
type DesignPoint struct {
	Arch      *mem.Architecture
	Gates     float64
	MissRatio float64
	// OffChipBytesPerAccess measures the demand the architecture puts
	// on the chip boundary.
	OffChipBytesPerAccess float64
}

// Result is the outcome of the memory-modules exploration.
type Result struct {
	// All is every evaluated design (Figure 3's point cloud).
	All []DesignPoint
	// Selected is the pruned cost/miss-ratio front, at most MaxSelected
	// entries, ordered by ascending cost (Figure 3's points 1..5).
	Selected []DesignPoint
	// EvaluatedAccesses is the exploration work in simulated accesses.
	EvaluatedAccesses int64
}

// customCandidate is a pattern-matched module proposal for one data
// structure.
type customCandidate struct {
	ds    trace.DSID
	build func() mem.Module
	label string
}

// Explore runs the memory-modules exploration on a profiled trace.
func Explore(t *trace.Trace, prof *profile.Profile, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prof == nil {
		prof = profile.Analyze(t)
	}
	candidates := customCandidates(prof, cfg)

	var archs []*mem.Architecture
	for _, size := range cfg.CacheSizes {
		for _, assoc := range cfg.CacheAssocs {
			for _, line := range cfg.CacheLines {
				if size < line*assoc {
					continue
				}
				var bases []mem.Module
				base, err := mem.NewCache(size, line, assoc)
				if err != nil {
					return nil, err
				}
				bases = append(bases, base)
				if cfg.VictimLines > 0 {
					vc, err := mem.NewVictimCache(size, line, assoc, cfg.VictimLines)
					if err != nil {
						return nil, err
					}
					bases = append(bases, vc)
				}
				if cfg.SweepWriteThrough {
					wt, err := mem.NewWriteThroughCache(size, line, assoc)
					if err != nil {
						return nil, err
					}
					bases = append(bases, wt)
				}
				for _, base := range bases {
					archs = append(archs, expandCustom(base, candidates)...)
				}
			}
		}
	}
	if len(cfg.L2Sizes) > 0 {
		flat := archs
		for _, l2Size := range cfg.L2Sizes {
			for _, a := range flat {
				l2, err := mem.NewCache(l2Size, 32, 4)
				if err != nil {
					return nil, err
				}
				v := a.Clone()
				v.Name = fmt.Sprintf("%s+l2-%dk", a.Name, l2Size/1024)
				v.L2 = l2
				archs = append(archs, v)
			}
		}
	}

	res := &Result{}
	for _, arch := range archs {
		r, err := sim.RunMemOnly(t, arch)
		if err != nil {
			return nil, err
		}
		res.EvaluatedAccesses += r.Accesses
		dp := DesignPoint{
			Arch:      arch,
			Gates:     arch.Gates(),
			MissRatio: r.MissRatio(),
		}
		if r.Accesses > 0 {
			dp.OffChipBytesPerAccess = float64(r.OffChipBytes) / float64(r.Accesses)
		}
		res.All = append(res.All, dp)
	}

	res.Selected = selectFront(res.All, cfg.MaxSelected)
	return res, nil
}

// expandCustom builds one architecture per subset of the custom-module
// candidates on top of the given base cache.
func expandCustom(base mem.Module, candidates []customCandidate) []*mem.Architecture {
	var archs []*mem.Architecture
	for mask := 0; mask < 1<<len(candidates); mask++ {
		arch := &mem.Architecture{
			Name:    fmt.Sprintf("%s/m%d", base.Name(), mask),
			Modules: []mem.Module{base.Clone()},
			DRAM:    mem.DefaultDRAM(),
			Route:   map[trace.DSID]int{},
			Default: 0,
		}
		for bit, cand := range candidates {
			if mask&(1<<bit) == 0 {
				continue
			}
			arch.Modules = append(arch.Modules, cand.build())
			arch.Route[cand.ds] = len(arch.Modules) - 1
		}
		archs = append(archs, arch)
	}
	return archs
}

// customCandidates proposes pattern-matched modules for the hottest data
// structures, following the paper's module/pattern pairing.
func customCandidates(prof *profile.Profile, cfg Config) []customCandidate {
	var out []customCandidate
	for i := range prof.Stats {
		if len(out) >= cfg.MaxCustom {
			break
		}
		s := prof.Stats[i]
		// Only structures that carry a meaningful share of the traffic
		// justify dedicated hardware.
		if s.Share(prof.Total) < 0.02 {
			continue
		}
		switch s.Class {
		case profile.ClassStream, profile.ClassStrided:
			out = append(out, customCandidate{
				ds:    s.DS,
				label: "stream:" + s.Name,
				build: func() mem.Module { return mem.MustStreamBuffer(32, 4) },
			})
		case profile.ClassSelfIndirect:
			pred := s.ChainRatio
			node := 8
			out = append(out, customCandidate{
				ds:    s.DS,
				label: "lldma:" + s.Name,
				build: func() mem.Module { return mem.MustSelfIndirectDMA(256, node, pred) },
			})
		case profile.ClassIndexed:
			// Map the whole structure when it fits; otherwise place the
			// measured hot footprint (software-managed placement of the
			// live part, standard scratchpad practice).
			size := int(s.RegionBytes)
			if size > cfg.SRAMLimit && int(s.FootprintBytes) <= cfg.SRAMLimit/4 {
				size = int(s.FootprintBytes)
			}
			if size <= cfg.SRAMLimit {
				out = append(out, customCandidate{
					ds:    s.DS,
					label: "sram:" + s.Name,
					build: func() mem.Module { return mem.MustSRAM(size) },
				})
			}
		}
	}
	return out
}

// selectFront returns the cost/miss-ratio pareto front thinned to at
// most maxSel points, spread evenly along the front (keeping the
// endpoints), as the paper's Figure 3 selection does.
func selectFront(all []DesignPoint, maxSel int) []DesignPoint {
	points := make([]pareto.Point, len(all))
	for i, dp := range all {
		points[i] = pareto.Point{
			Label:   dp.Arch.Name,
			Cost:    dp.Gates,
			Latency: dp.MissRatio,
			Energy:  dp.OffChipBytesPerAccess,
			Meta:    i,
		}
	}
	front := pareto.Front(points, pareto.Cost, pareto.Latency)
	picked := thin(front, maxSel)
	out := make([]DesignPoint, 0, len(picked))
	for _, p := range picked {
		out = append(out, all[p.Meta.(int)])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Gates < out[j].Gates })
	return out
}

// thin keeps at most n points of a front, including both endpoints,
// evenly spaced by index.
func thin(front []pareto.Point, n int) []pareto.Point {
	if len(front) <= n {
		return front
	}
	if n == 1 {
		return front[:1]
	}
	out := make([]pareto.Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(front) - 1) / (n - 1)
		out = append(out, front[idx])
	}
	// Deduplicate indices that collided.
	dedup := out[:1]
	for _, p := range out[1:] {
		if p != dedup[len(dedup)-1] {
			dedup = append(dedup, p)
		}
	}
	return dedup
}
