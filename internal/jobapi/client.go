package jobapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"memorex"
	"memorex/internal/obs"
)

// Client is a minimal HTTP client for the memorexd job API, used by
// cmd/memorexctl and the daemon's tests.
type Client struct {
	// Base is the daemon base URL, e.g. "http://localhost:8344".
	Base string
	// Tenant, when non-empty, is sent as the TenantHeader of every
	// request.
	Tenant string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

// RetryError is the typed 429 admission failure: the queue or the
// tenant quota is full, retry after the advised delay.
type RetryError struct {
	Msg        string
	RetryAfter time.Duration
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("%s (retry after %s)", e.Msg, e.RetryAfter)
}

// StatusError is any other non-2xx response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%s (HTTP %d)", e.Msg, e.Code)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (unless
// out is nil). Non-2xx responses become RetryError/StatusError.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.Base, "/")+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return responseError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// responseError turns a non-2xx response into a typed error.
func responseError(resp *http.Response) error {
	msg := resp.Status
	var e Error
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e); err == nil && e.Error != "" {
		msg = e.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 {
				retry = time.Duration(n) * time.Second
			}
		}
		return &RetryError{Msg: msg, RetryAfter: retry}
	}
	return &StatusError{Code: resp.StatusCode, Msg: msg}
}

// Submit posts an exploration request and returns the admitted job.
func (c *Client) Submit(ctx context.Context, req memorex.ExploreRequest) (Job, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return Job{}, err
	}
	return c.SubmitRaw(ctx, buf.Bytes())
}

// SubmitRaw posts a pre-encoded ExploreRequest JSON body.
func (c *Client) SubmitRaw(ctx context.Context, body []byte) (Job, error) {
	var jb Job
	err := c.do(ctx, http.MethodPost, PathJobs, bytes.NewReader(body), &jb)
	return jb, err
}

// Job fetches one job's status (including the report once done).
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var jb Job
	err := c.do(ctx, http.MethodGet, PathJobs+"/"+id, nil, &jb)
	return jb, err
}

// Jobs lists the daemon's jobs, newest first.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var l JobList
	err := c.do(ctx, http.MethodGet, PathJobs, nil, &l)
	return l.Jobs, err
}

// Cancel requests cancellation and returns the job's resulting state.
func (c *Client) Cancel(ctx context.Context, id string) (Job, error) {
	var jb Job
	err := c.do(ctx, http.MethodDelete, PathJobs+"/"+id, nil, &jb)
	return jb, err
}

// Health fetches the daemon health summary.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, PathHealth, nil, &h)
	return h, err
}

// Wait polls the job until it reaches a terminal state (or ctx ends).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		jb, err := c.Job(ctx, id)
		if err != nil {
			return jb, err
		}
		if jb.State.Terminal() {
			return jb, nil
		}
		select {
		case <-ctx.Done():
			return jb, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Events streams the job's events, invoking fn for each until the
// stream ends (job terminal) or ctx is cancelled. Whether the feed
// also carries unscoped shared-engine events is the daemon's
// -shared-events setting.
func (c *Client) Events(ctx context.Context, id string, fn func(obs.Event) error) error {
	path := PathJobs + "/" + id + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(c.Base, "/")+path, nil)
	if err != nil {
		return err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return responseError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev obs.Event
		if err := dec.Decode(&ev); err == io.EOF {
			return nil
		} else if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("jobapi: decoding event stream: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}
