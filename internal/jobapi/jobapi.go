// Package jobapi defines the wire format of the memorexd job API —
// the paths, request/response bodies and job lifecycle states shared
// by the daemon (cmd/memorexd), the client CLI (cmd/memorexctl) and
// the end-to-end tests — plus a small HTTP client over it.
//
// The API is job-oriented: a POST of a memorex.ExploreRequest JSON
// body creates a job, and the job id addresses its status, its report
// and its event stream afterwards.
//
//	POST   /v1/jobs             submit an ExploreRequest -> 202 + Job
//	GET    /v1/jobs             list jobs (newest first)
//	GET    /v1/jobs/{id}        status; Report attached once done
//	GET    /v1/jobs/{id}/events stream the job's events as JSONL
//	DELETE /v1/jobs/{id}        cancel (queued or running)
//	GET    /healthz             liveness + admission counters
//
// Admission failures are JSON Error bodies: 429 with a Retry-After
// header when the queue or the tenant's quota is full, 503 while the
// daemon drains.
package jobapi

import (
	"encoding/json"
	"time"
)

// API paths.
const (
	PathJobs   = "/v1/jobs"
	PathHealth = "/healthz"
)

// TenantHeader names the submitting tenant; requests without it are
// accounted to DefaultTenant.
const TenantHeader = "X-Memorex-Tenant"

// DefaultTenant is the quota bucket of unlabelled submissions.
const DefaultTenant = "default"

// State is a job lifecycle state.
type State string

// Job lifecycle: queued -> running -> done | failed | cancelled.
// Cancellation can also hit a job while it is still queued.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is the status representation of one exploration job.
type Job struct {
	// ID is the daemon-assigned job identifier.
	ID string `json:"id"`
	// Tenant is the quota bucket the job was accounted to.
	Tenant string `json:"tenant"`
	// State is the current lifecycle state.
	State State `json:"state"`
	// Created/Started/Finished are the lifecycle timestamps; Started
	// and Finished are zero until the job reaches the matching state.
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Error describes the failure of a failed (or cancelled) job.
	Error string `json:"error,omitempty"`
	// Report is the memorex report JSON (memorex.ReportJSON) of a done
	// job; absent otherwise.
	Report json.RawMessage `json:"report,omitempty"`
	// EventsDropped counts per-job events the daemon had to drop
	// because the job's event buffer overflowed.
	EventsDropped int64 `json:"events_dropped,omitempty"`
}

// JobList is the GET /v1/jobs response.
type JobList struct {
	Jobs []Job `json:"jobs"`
}

// Health is the GET /healthz response.
type Health struct {
	// Status is "ok", or "draining" after the shutdown signal.
	Status string `json:"status"`
	// Queued/Running/Done/Failed/Cancelled count the daemon's jobs by
	// state since boot.
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// QueueCap and TenantQuota echo the admission configuration.
	QueueCap    int `json:"queue_cap"`
	TenantQuota int `json:"tenant_quota"`
}

// Error is the JSON body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
}
