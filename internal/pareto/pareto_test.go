package pareto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pts(vals ...[3]float64) []Point {
	out := make([]Point, len(vals))
	for i, v := range vals {
		out[i] = Point{Cost: v[0], Latency: v[1], Energy: v[2]}
	}
	return out
}

func TestFrontSimple(t *testing.T) {
	// (1,10) (2,5) (3,7) (4,1): (3,7) is dominated by (2,5).
	p := pts([3]float64{1, 10, 0}, [3]float64{2, 5, 0}, [3]float64{3, 7, 0}, [3]float64{4, 1, 0})
	f := Front(p, Cost, Latency)
	if len(f) != 3 {
		t.Fatalf("front size = %d, want 3: %+v", len(f), f)
	}
	for i := 1; i < len(f); i++ {
		if f[i].Cost <= f[i-1].Cost || f[i].Latency >= f[i-1].Latency {
			t.Fatalf("front not strictly improving: %+v", f)
		}
	}
}

func TestFrontEmptyAndSingle(t *testing.T) {
	if Front(nil, Cost, Latency) != nil {
		t.Fatal("front of nothing should be nil")
	}
	p := pts([3]float64{1, 1, 1})
	if len(Front(p, Cost, Latency)) != 1 {
		t.Fatal("front of one point should be that point")
	}
}

func TestFrontDuplicateX(t *testing.T) {
	p := pts([3]float64{1, 9, 0}, [3]float64{1, 4, 0}, [3]float64{2, 2, 0})
	f := Front(p, Cost, Latency)
	if len(f) != 2 || f[0].Latency != 4 {
		t.Fatalf("duplicate-x handling wrong: %+v", f)
	}
}

func TestDominates(t *testing.T) {
	a := Point{Cost: 1, Latency: 1}
	b := Point{Cost: 2, Latency: 2}
	c := Point{Cost: 1, Latency: 1}
	if !Dominates(&a, &b, Cost, Latency) {
		t.Fatal("a should dominate b")
	}
	if Dominates(&a, &c, Cost, Latency) {
		t.Fatal("equal points must not dominate each other")
	}
	if Dominates(&b, &a, Cost, Latency) {
		t.Fatal("dominated point cannot dominate")
	}
}

// Property: no point in a front is dominated by any input point, and
// every input point is dominated by or equal to some front point.
func TestQuickFrontSoundAndComplete(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		points := make([]Point, int(n)+1)
		for i := range points {
			points[i] = Point{
				Cost:    float64(rng.Intn(50)),
				Latency: float64(rng.Intn(50)),
				Energy:  float64(rng.Intn(50)),
			}
		}
		front := Front(points, Cost, Latency)
		for i := range front {
			for j := range points {
				if Dominates(&points[j], &front[i], Cost, Latency) {
					return false // unsound: dominated point on the front
				}
			}
		}
		for j := range points {
			ok := false
			for i := range front {
				fp, pp := &front[i], &points[j]
				if Dominates(fp, pp, Cost, Latency) ||
					(fp.Cost == pp.Cost && fp.Latency == pp.Latency) {
					ok = true
					break
				}
			}
			if !ok {
				return false // incomplete: point not covered by the front
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Front is idempotent.
func TestQuickFrontIdempotent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		points := make([]Point, int(n)+1)
		for i := range points {
			points[i] = Point{Cost: rng.Float64() * 10, Latency: rng.Float64() * 10}
		}
		f1 := Front(points, Cost, Latency)
		f2 := Front(f1, Cost, Latency)
		if len(f1) != len(f2) {
			return false
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarios(t *testing.T) {
	points := pts(
		[3]float64{100, 10, 5}, // cheap, slow, frugal
		[3]float64{200, 5, 8},  // mid
		[3]float64{400, 2, 20}, // fast, power hungry
		[3]float64{150, 8, 30}, // dominated in cost/lat by nothing cheap... but energy 30
	)
	// Power-constrained at 10 nJ: the 20/30 nJ points are excluded.
	pc := PowerConstrained(points, 10)
	for _, p := range pc {
		if p.Energy > 10 {
			t.Fatalf("power constraint violated: %+v", p)
		}
	}
	if len(pc) != 2 {
		t.Fatalf("power-constrained front = %+v, want the 2 frugal points", pc)
	}
	// Cost-constrained at 250: the 400-gate point is excluded.
	cc := CostConstrained(points, 250)
	for _, p := range cc {
		if p.Cost > 250 {
			t.Fatalf("cost constraint violated: %+v", p)
		}
	}
	// Performance-constrained at 8 cycles.
	fc := PerformanceConstrained(points, 8)
	for _, p := range fc {
		if p.Latency > 8 {
			t.Fatalf("latency constraint violated: %+v", p)
		}
	}
}

func TestCoverage(t *testing.T) {
	truth := pts([3]float64{100, 10, 5}, [3]float64{200, 5, 8})
	found := pts([3]float64{100, 10, 5})
	if c := Coverage(found, truth, 0.001); c != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", c)
	}
	if c := Coverage(truth, truth, 0.001); c != 1 {
		t.Fatalf("self-coverage = %v, want 1", c)
	}
	if c := Coverage(nil, nil, 0.001); c != 1 {
		t.Fatalf("empty truth coverage = %v, want 1", c)
	}
	// Near match within 1% tolerance.
	near := pts([3]float64{100.5, 10.05, 5.02}, [3]float64{201, 5.04, 8.05})
	if c := Coverage(near, truth, 0.01); c != 1 {
		t.Fatalf("tolerant coverage = %v, want 1", c)
	}
}

func TestAvgDistance(t *testing.T) {
	truth := pts([3]float64{100, 10, 10})
	found := pts([3]float64{110, 11, 10})
	d := AvgDistance(found, truth, 0.001)
	if d.Missed != 1 {
		t.Fatalf("missed = %d, want 1", d.Missed)
	}
	// 10/110 ~ 9.09% on cost and latency, 0 on energy.
	if d.CostPct < 9 || d.CostPct > 9.2 || d.EnergyPct != 0 {
		t.Fatalf("distance wrong: %+v", d)
	}
	// Fully covered: zero distance.
	d2 := AvgDistance(truth, truth, 0.001)
	if d2.Missed != 0 || d2.CostPct != 0 {
		t.Fatalf("self distance should be zero: %+v", d2)
	}
	// Nothing found at all.
	d3 := AvgDistance(nil, truth, 0.001)
	if d3.CostPct != 100 || d3.Missed != 1 {
		t.Fatalf("empty found distance: %+v", d3)
	}
	if d4 := AvgDistance(nil, nil, 0.001); d4.Missed != 0 {
		t.Fatalf("empty/empty distance: %+v", d4)
	}
}

func TestFilter(t *testing.T) {
	points := pts([3]float64{1, 1, 1}, [3]float64{2, 2, 2}, [3]float64{3, 3, 3})
	f := Filter(points, Cost, 2)
	if len(f) != 2 {
		t.Fatalf("filter kept %d, want 2", len(f))
	}
	if len(Filter(points, Energy, 0)) != 0 {
		t.Fatal("filter below minimum should be empty")
	}
}

func TestGetPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get accepted invalid dimension")
		}
	}()
	p := Point{}
	p.Get(Dim(9))
}

func TestDimString(t *testing.T) {
	if Cost.String() != "cost" || Latency.String() != "latency" || Energy.String() != "energy" {
		t.Fatal("dim strings wrong")
	}
}
