package pareto_test

import (
	"fmt"

	"memorex/internal/pareto"
)

// Extracting the cost/latency pareto front of a small design space.
func ExampleFront() {
	designs := []pareto.Point{
		{Label: "cheap-slow", Cost: 100, Latency: 20},
		{Label: "dominated", Cost: 250, Latency: 22},
		{Label: "balanced", Cost: 200, Latency: 10},
		{Label: "fast", Cost: 400, Latency: 4},
	}
	for _, p := range pareto.Front(designs, pareto.Cost, pareto.Latency) {
		fmt.Printf("%s: %.0f gates, %.0f cycles\n", p.Label, p.Cost, p.Latency)
	}
	// Output:
	// cheap-slow: 100 gates, 20 cycles
	// balanced: 200 gates, 10 cycles
	// fast: 400 gates, 4 cycles
}

// The paper's power-constrained scenario: cost/latency optimization
// under an energy budget.
func ExamplePowerConstrained() {
	designs := []pareto.Point{
		{Label: "frugal", Cost: 100, Latency: 20, Energy: 5},
		{Label: "hungry", Cost: 120, Latency: 6, Energy: 30},
		{Label: "middle", Cost: 200, Latency: 10, Energy: 9},
	}
	for _, p := range pareto.PowerConstrained(designs, 10) {
		fmt.Println(p.Label)
	}
	// Output:
	// frugal
	// middle
}
