package pareto

import (
	"math"
	"sort"
)

// Dominates3D reports whether a dominates b in all three metric axes:
// no worse everywhere and strictly better somewhere.
func Dominates3D(a, b *Point) bool {
	better := false
	for _, d := range []Dim{Cost, Latency, Energy} {
		av, bv := a.Get(d), b.Get(d)
		if av > bv {
			return false
		}
		if av < bv {
			better = true
		}
	}
	return better
}

// Front3D returns the pareto-optimal subset in the full
// (cost, latency, energy) space, ordered by ascending cost. A design on
// a 2-D projection front is always on the 3-D front, but not vice versa:
// the 3-D front also keeps balanced designs that every projection hides.
func Front3D(points []Point) []Point {
	var out []Point
	for i := range points {
		dominated := false
		duplicate := false
		for j := range points {
			if i == j {
				continue
			}
			if Dominates3D(&points[j], &points[i]) {
				dominated = true
				break
			}
			if j < i &&
				points[j].Cost == points[i].Cost &&
				points[j].Latency == points[i].Latency &&
				points[j].Energy == points[i].Energy {
				duplicate = true
				break
			}
		}
		if !dominated && !duplicate {
			out = append(out, points[i])
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Cost != out[b].Cost {
			return out[a].Cost < out[b].Cost
		}
		if out[a].Latency != out[b].Latency {
			return out[a].Latency < out[b].Latency
		}
		return out[a].Energy < out[b].Energy
	})
	return out
}

// Hypervolume2D returns the area dominated by the (x, y) front of the
// points, measured against a reference point that must be no better than
// every point on both axes. It is the standard quality indicator for
// comparing exploration strategies: a larger hypervolume means a better
// front.
func Hypervolume2D(points []Point, x, y Dim, refX, refY float64) float64 {
	front := Front(points, x, y)
	var hv float64
	prevX := refX
	// Walk the front from largest x (closest to the reference) to
	// smallest, accumulating rectangles.
	for i := len(front) - 1; i >= 0; i-- {
		px, py := front[i].Get(x), front[i].Get(y)
		if px > refX || py > refY {
			continue // outside the reference box
		}
		hv += (prevX - px) * (refY - py)
		prevX = px
	}
	return hv
}

// Knee returns the knee point of the (x, y) front: the design with the
// maximum perpendicular distance from the line joining the front's
// endpoints — the usual "best trade-off" suggestion given to designers.
// It returns false if the front has fewer than three points.
func Knee(points []Point, x, y Dim) (Point, bool) {
	front := Front(points, x, y)
	if len(front) < 3 {
		return Point{}, false
	}
	x1, y1 := front[0].Get(x), front[0].Get(y)
	x2, y2 := front[len(front)-1].Get(x), front[len(front)-1].Get(y)
	// Normalize axes so the distance is scale-free.
	dx, dy := x2-x1, y2-y1
	if dx == 0 || dy == 0 {
		return Point{}, false
	}
	best := -1.0
	var knee Point
	for _, p := range front[1 : len(front)-1] {
		nx := (p.Get(x) - x1) / dx
		ny := (p.Get(y) - y1) / dy
		// Distance from the normalized diagonal (0,0)-(1,1).
		d := math.Abs(nx-ny) / math.Sqrt2
		if d > best {
			best = d
			knee = p
		}
	}
	return knee, true
}
