package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates3D(t *testing.T) {
	a := Point{Cost: 1, Latency: 1, Energy: 1}
	b := Point{Cost: 2, Latency: 2, Energy: 2}
	c := Point{Cost: 1, Latency: 3, Energy: 0.5}
	if !Dominates3D(&a, &b) {
		t.Fatal("a should dominate b")
	}
	if Dominates3D(&a, &c) || Dominates3D(&c, &a) {
		t.Fatal("a and c are incomparable")
	}
	if Dominates3D(&a, &a) {
		t.Fatal("a point does not dominate itself")
	}
}

func TestFront3DKeepsBalancedDesigns(t *testing.T) {
	// The balanced point (2,2,2) is dominated in no axis pair... it IS
	// dominated in the cost/latency projection by (1,1,9), but in 3-D
	// nothing dominates it.
	points := pts(
		[3]float64{1, 1, 9},
		[3]float64{9, 9, 1},
		[3]float64{2, 2, 2},
	)
	f3 := Front3D(points)
	if len(f3) != 3 {
		t.Fatalf("3-D front should keep all 3 points, got %d", len(f3))
	}
	f2 := Front(points, Cost, Latency)
	if len(f2) != 1 {
		t.Fatalf("2-D projection should keep only (1,1): %+v", f2)
	}
}

func TestFront3DRemovesDuplicates(t *testing.T) {
	points := pts([3]float64{1, 1, 1}, [3]float64{1, 1, 1})
	if got := Front3D(points); len(got) != 1 {
		t.Fatalf("duplicates should collapse, got %d", len(got))
	}
}

// Property: for points in general position (continuous coordinates, so
// ties have probability zero), every 2-D projection front is a subset of
// the 3-D front, and no point of the 3-D front is dominated. (With axis
// ties the subset claim is genuinely false: a 2-D front point can be
// 3-D-dominated by an equal-x/y, better-z point.)
func TestQuickFront3DSuperset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		points := make([]Point, int(n)+3)
		for i := range points {
			points[i] = Point{
				Cost:    rng.Float64() * 20,
				Latency: rng.Float64() * 20,
				Energy:  rng.Float64() * 20,
			}
		}
		f3 := Front3D(points)
		in3 := func(p Point) bool {
			for _, q := range f3 {
				if q.Cost == p.Cost && q.Latency == p.Latency && q.Energy == p.Energy {
					return true
				}
			}
			return false
		}
		for _, proj := range [][2]Dim{{Cost, Latency}, {Latency, Energy}, {Cost, Energy}} {
			for _, p := range Front(points, proj[0], proj[1]) {
				if !in3(p) {
					return false
				}
			}
		}
		for i := range f3 {
			for j := range points {
				if Dominates3D(&points[j], &f3[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHypervolume2D(t *testing.T) {
	// Single point (1,1) against reference (3,3): dominated area 2x2=4.
	points := pts([3]float64{1, 1, 0})
	hv := Hypervolume2D(points, Cost, Latency, 3, 3)
	if math.Abs(hv-4) > 1e-12 {
		t.Fatalf("hypervolume = %v, want 4", hv)
	}
	// Two staircase points (1,2) and (2,1) against (3,3):
	// total = 3 (2x1 + 1x2 ... computed as rectangles = 3).
	points = pts([3]float64{1, 2, 0}, [3]float64{2, 1, 0})
	hv = Hypervolume2D(points, Cost, Latency, 3, 3)
	if math.Abs(hv-3) > 1e-12 {
		t.Fatalf("staircase hypervolume = %v, want 3", hv)
	}
	// Points outside the reference box contribute nothing.
	points = pts([3]float64{5, 5, 0})
	if hv := Hypervolume2D(points, Cost, Latency, 3, 3); hv != 0 {
		t.Fatalf("out-of-box hypervolume = %v, want 0", hv)
	}
}

// Property: adding a point never decreases the hypervolume.
func TestQuickHypervolumeMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		points := make([]Point, int(n)+1)
		for i := range points {
			points[i] = Point{Cost: rng.Float64() * 10, Latency: rng.Float64() * 10}
		}
		base := Hypervolume2D(points[:len(points)-1], Cost, Latency, 12, 12)
		more := Hypervolume2D(points, Cost, Latency, 12, 12)
		return more >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKnee(t *testing.T) {
	// A strongly bent front: the knee is the middle point.
	points := pts(
		[3]float64{1, 10, 0},
		[3]float64{2, 2, 0},
		[3]float64{10, 1, 0},
	)
	k, ok := Knee(points, Cost, Latency)
	if !ok {
		t.Fatal("knee not found")
	}
	if k.Cost != 2 || k.Latency != 2 {
		t.Fatalf("knee = %+v, want (2,2)", k)
	}
	// Fewer than 3 front points: no knee.
	if _, ok := Knee(points[:2], Cost, Latency); ok {
		t.Fatal("knee of a 2-point front should not exist")
	}
}
