// Package pareto provides the design-point representation and the
// pareto-front machinery the exploration uses at every pruning stage:
// front extraction in any 2-D projection of the (cost, latency, energy)
// space, the paper's three constrained-selection scenarios, and the
// coverage/average-distance metrics of Table 2.
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Dim selects a metric axis of a design point.
type Dim int

// Metric axes. All are minimized.
const (
	Cost    Dim = iota // gate equivalents
	Latency            // average memory latency, cycles/access
	Energy             // average energy, nJ/access
)

// String implements fmt.Stringer.
func (d Dim) String() string {
	switch d {
	case Cost:
		return "cost"
	case Latency:
		return "latency"
	case Energy:
		return "energy"
	default:
		return fmt.Sprintf("dim(%d)", int(d))
	}
}

// Point is one evaluated design: an architecture with its three metrics.
// Meta carries the architecture handle of the producing layer.
type Point struct {
	Label   string
	Cost    float64
	Latency float64
	Energy  float64
	Meta    interface{}
}

// Get returns the point's value on the given axis.
func (p *Point) Get(d Dim) float64 {
	switch d {
	case Cost:
		return p.Cost
	case Latency:
		return p.Latency
	case Energy:
		return p.Energy
	default:
		panic(fmt.Sprintf("pareto: unknown dimension %d", d))
	}
}

// Dominates reports whether a dominates b in the (x, y) projection:
// a is no worse on both axes and strictly better on at least one.
func Dominates(a, b *Point, x, y Dim) bool {
	ax, ay := a.Get(x), a.Get(y)
	bx, by := b.Get(x), b.Get(y)
	return ax <= bx && ay <= by && (ax < bx || ay < by)
}

// Front returns the pareto-optimal subset of points in the (x, y)
// projection, sorted by ascending x. Duplicate-metric points are kept
// once (the first occurrence wins).
func Front(points []Point, x, y Dim) []Point {
	if len(points) == 0 {
		return nil
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := &points[idx[a]], &points[idx[b]]
		if pa.Get(x) != pb.Get(x) {
			return pa.Get(x) < pb.Get(x)
		}
		return pa.Get(y) < pb.Get(y)
	})
	var front []Point
	bestY := math.Inf(1)
	lastX := math.Inf(-1)
	for _, i := range idx {
		p := points[i]
		if p.Get(y) < bestY {
			if p.Get(x) == lastX && len(front) > 0 {
				// Same x, better y: replace (can only happen for the
				// first point of an x group due to sorting).
				front[len(front)-1] = p
			} else {
				front = append(front, p)
			}
			bestY = p.Get(y)
			lastX = p.Get(x)
		}
	}
	return front
}

// Filter returns the points whose value on axis d is at most limit.
func Filter(points []Point, d Dim, limit float64) []Point {
	var out []Point
	for _, p := range points {
		if p.Get(d) <= limit {
			out = append(out, p)
		}
	}
	return out
}

// The paper's three constrained-selection scenarios (Section 5 (II)).

// PowerConstrained returns the cost/latency pareto points whose energy
// does not exceed maxEnergy (scenario a).
func PowerConstrained(points []Point, maxEnergy float64) []Point {
	return Front(Filter(points, Energy, maxEnergy), Cost, Latency)
}

// CostConstrained returns the latency/energy pareto points whose cost
// does not exceed maxCost (scenario b).
func CostConstrained(points []Point, maxCost float64) []Point {
	return Front(Filter(points, Cost, maxCost), Latency, Energy)
}

// PerformanceConstrained returns the cost/energy pareto points whose
// latency does not exceed maxLatency (scenario c).
func PerformanceConstrained(points []Point, maxLatency float64) []Point {
	return Front(Filter(points, Latency, maxLatency), Cost, Energy)
}

// Coverage reports the fraction of truth points that are matched by some
// found point within relative tolerance tol on all three axes. This is
// Table 2's "Coverage" metric.
func Coverage(found, truth []Point, tol float64) float64 {
	if len(truth) == 0 {
		return 1
	}
	matched := 0
	for i := range truth {
		for j := range found {
			if withinTol(&found[j], &truth[i], tol) {
				matched++
				break
			}
		}
	}
	return float64(matched) / float64(len(truth))
}

func withinTol(a, b *Point, tol float64) bool {
	for _, d := range []Dim{Cost, Latency, Energy} {
		if relDiff(a.Get(d), b.Get(d)) > tol {
			return false
		}
	}
	return true
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// Distance is the paper's "average distance" metric: for every truth
// point not exactly covered, the per-axis percentile deviation to the
// closest found point, averaged over the missed points.
type Distance struct {
	CostPct    float64
	LatencyPct float64
	EnergyPct  float64
	// Missed is the number of truth points not covered within tol.
	Missed int
}

// AvgDistance computes the average per-axis deviation between missed
// truth points and their closest found approximations.
func AvgDistance(found, truth []Point, tol float64) Distance {
	var d Distance
	if len(found) == 0 {
		if len(truth) > 0 {
			return Distance{CostPct: 100, LatencyPct: 100, EnergyPct: 100, Missed: len(truth)}
		}
		return d
	}
	for i := range truth {
		covered := false
		for j := range found {
			if withinTol(&found[j], &truth[i], tol) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		// Closest found point by normalized euclidean distance.
		best := -1
		bestDist := math.Inf(1)
		for j := range found {
			dist := 0.0
			for _, dim := range []Dim{Cost, Latency, Energy} {
				r := relDiff(found[j].Get(dim), truth[i].Get(dim))
				dist += r * r
			}
			if dist < bestDist {
				bestDist, best = dist, j
			}
		}
		d.Missed++
		d.CostPct += 100 * relDiff(found[best].Cost, truth[i].Cost)
		d.LatencyPct += 100 * relDiff(found[best].Latency, truth[i].Latency)
		d.EnergyPct += 100 * relDiff(found[best].Energy, truth[i].Energy)
	}
	if d.Missed > 0 {
		d.CostPct /= float64(d.Missed)
		d.LatencyPct /= float64(d.Missed)
		d.EnergyPct /= float64(d.Missed)
	}
	return d
}
