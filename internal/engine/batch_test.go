package engine

import (
	"context"
	"testing"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/obs"
)

// TestTimingSignature: the dedup key must be invariant under cluster
// and channel reordering and under non-timing parameter changes (name,
// class, port bound, gates), and must change with any timing or energy
// parameter.
func TestTimingSignature(t *testing.T) {
	a := testArch(4096)
	base := testConn(t, a, "ahb32")

	// Reorder clusters (and their assignments) — same partition, same
	// signature.
	perm := &connect.Arch{Channels: base.Channels}
	for i := len(base.Clusters) - 1; i >= 0; i-- {
		perm.Clusters = append(perm.Clusters, base.Clusters[i])
		perm.Assign = append(perm.Assign, base.Assign[i])
	}
	if timingSignature(perm) != timingSignature(base) {
		t.Error("cluster reordering changed the timing signature")
	}

	// Non-timing fields are excluded.
	cosmetic := &connect.Arch{Channels: base.Channels, Clusters: base.Clusters}
	cosmetic.Assign = append([]connect.Component(nil), base.Assign...)
	cosmetic.Assign[0].Name = "renamed"
	cosmetic.Assign[0].MaxPorts += 7
	cosmetic.Assign[0].BaseGates *= 3
	cosmetic.Assign[0].GatesPerPort += 100
	if timingSignature(cosmetic) != timingSignature(base) {
		t.Error("non-timing component fields changed the timing signature")
	}

	// Every timing/energy parameter is included.
	mutations := []func(*connect.Component){
		func(c *connect.Component) { c.WidthBytes *= 2 },
		func(c *connect.Component) { c.ArbCycles++ },
		func(c *connect.Component) { c.BeatCycles++ },
		func(c *connect.Component) { c.Pipelined = !c.Pipelined },
		func(c *connect.Component) { c.Split = !c.Split },
		func(c *connect.Component) { c.EnergyPerByte += 0.001 },
	}
	for i, mutate := range mutations {
		m := &connect.Arch{Channels: base.Channels, Clusters: base.Clusters}
		m.Assign = append([]connect.Component(nil), base.Assign...)
		mutate(&m.Assign[0])
		if timingSignature(m) == timingSignature(base) {
			t.Errorf("timing mutation %d did not change the signature", i)
		}
	}

	// A different partition of the same channels differs even with the
	// same component everywhere.
	if timingSignature(testConn(t, a, "ahb32")) != timingSignature(base) {
		t.Error("independently built identical arch changed the signature")
	}
}

// TestEvaluateBatchPath: a homogeneous group of distinct connectivity
// candidates must be served by batched replays, produce values
// identical to the per-request path, and seed the memo cache for
// later requests.
func TestEvaluateBatchPath(t *testing.T) {
	tr := testTrace(t)
	a := testArch(4096)
	comps := []string{"ded32", "mux32", "apb32", "asb32", "ahb32", "ahb64"}
	var reqs []Request
	for _, name := range comps {
		reqs = append(reqs, sampled(tr, a, testConn(t, a, name)))
	}

	e := New(4)
	got, err := e.Evaluate(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-exact against a fresh engine running the per-request path.
	ref := New(1)
	for i, r := range reqs {
		want, err := ref.computeOne(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Cost != want.Cost || got[i].Latency != want.Latency || got[i].Energy != want.Energy {
			t.Errorf("req %d: batch value %+v != per-request value %+v", i, got[i], want)
		}
		if got[i].Hit || got[i].Work == 0 {
			t.Errorf("req %d: batch value should be a fresh simulation, got %+v", i, got[i])
		}
	}

	st := e.Stats()
	if st.BatchReplays == 0 {
		t.Error("homogeneous batch ran no batched replays")
	}
	// On a two-channel single-module arch every candidate pair differs
	// in half its channels, so the delta planner must keep the whole
	// group on the batch path.
	if st.BatchedEvals != int64(len(reqs)) {
		t.Errorf("BatchedEvals = %d, want %d", st.BatchedEvals, len(reqs))
	}
	if st.DeltaReplays != 0 || st.DeltaFallbacks != 0 {
		t.Errorf("half-changed candidates took the delta path (%d replays, %d fallbacks)",
			st.DeltaReplays, st.DeltaFallbacks)
	}
	if st.BehaviorCaptures != 1 {
		t.Errorf("BehaviorCaptures = %d, want 1 (one shared trace)", st.BehaviorCaptures)
	}
	if st.Simulations != int64(len(reqs)) {
		t.Errorf("Simulations = %d, want %d", st.Simulations, len(reqs))
	}

	// The batch seeded the memo cache.
	again, err := e.Evaluate(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !again[i].Hit {
			t.Errorf("req %d: second evaluation missed the cache", i)
		}
	}
	if st := e.Stats(); st.CacheHits != int64(len(reqs)) {
		t.Errorf("CacheHits = %d, want %d", st.CacheHits, len(reqs))
	}
}

// TestEvaluateDeltaPath: on a multi-module architecture, candidates
// differing from a sibling in a single channel's component must ride
// sim.ReplayDelta against the sibling's residue — bit-exact versus the
// per-request path, with nonzero reuse surfaced through stats and the
// engine/delta/* metrics.
func TestEvaluateDeltaPath(t *testing.T) {
	tr := testTrace(t)
	a := &mem.Architecture{
		Name:    "c2",
		Modules: []mem.Module{mem.MustCache(4096, 32, 2), mem.MustCache(8192, 32, 2)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
	// Vary only the second module's CPU channel component: one of four
	// channels changes, the rest (carrying all the traffic) splice.
	target := -1
	for i, ch := range a.Channels() {
		if ch.Kind == mem.ChanCPUModule && ch.Module == 1 {
			target = i
		}
	}
	if target < 0 {
		t.Fatal("no CPU channel for module 1")
	}
	lib := connect.Library()
	var reqs []Request
	for _, name := range []string{"ahb32", "ded32", "mux32", "apb32", "asb32", "ahb64"} {
		comp, err := connect.ByName(lib, name)
		if err != nil {
			t.Fatal(err)
		}
		conn := testConn(t, a, "ahb32")
		for cl := range conn.Clusters {
			if len(conn.Clusters[cl]) == 1 && conn.Clusters[cl][0] == target {
				conn.Assign[cl] = comp
			}
		}
		reqs = append(reqs, sampled(tr, a, conn))
	}

	reg := obs.NewRegistry()
	e := New(4, WithMetrics(reg))
	got, err := e.Evaluate(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	ref := New(1)
	for i, r := range reqs {
		want, err := ref.computeOne(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Cost != want.Cost || got[i].Latency != want.Latency || got[i].Energy != want.Energy {
			t.Errorf("req %d: delta-planned value %+v != per-request value %+v", i, got[i], want)
		}
	}

	st := e.Stats()
	if st.DeltaReplays == 0 {
		t.Fatalf("no delta replays ran: %+v", st)
	}
	if st.DeltaFallbacks != 0 {
		t.Errorf("DeltaFallbacks = %d, want 0 (all traffic splices)", st.DeltaFallbacks)
	}
	if st.DeltaChannelsReused == 0 {
		t.Error("delta replays reused no channels")
	}
	if covered := st.BatchedEvals + st.DeltaReplays; covered != int64(len(reqs)) {
		t.Errorf("batched %d + delta %d evals, want %d total", st.BatchedEvals, st.DeltaReplays, len(reqs))
	}
	if st.Simulations != int64(len(reqs)) {
		t.Errorf("Simulations = %d, want %d (delta evals are simulations)", st.Simulations, len(reqs))
	}
	snap := reg.Snapshot()
	if snap.Counters["engine/delta/replays"] != st.DeltaReplays {
		t.Errorf("engine/delta/replays = %d, want %d", snap.Counters["engine/delta/replays"], st.DeltaReplays)
	}
	if snap.Counters["engine/delta/channels_reused"] != st.DeltaChannelsReused {
		t.Errorf("engine/delta/channels_reused = %d, want %d",
			snap.Counters["engine/delta/channels_reused"], st.DeltaChannelsReused)
	}
	reuse := snap.Histograms["engine/delta/reuse_ratio"]
	if reuse.Count != st.DeltaReplays || reuse.Max > 100 || reuse.Min < 0 {
		t.Errorf("engine/delta/reuse_ratio = %+v, want %d observations in [0,100]", reuse, st.DeltaReplays)
	}

	// Deterministic planning: a fresh engine over the same requests
	// produces identical values and identical delta stats.
	e2 := New(1, WithMetrics(obs.NewRegistry()))
	got2, err := e2.Evaluate(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Errorf("req %d: workers=4 value %+v != workers=1 value %+v", i, got[i], got2[i])
		}
	}
	st2 := e2.Stats()
	if st2.DeltaReplays != st.DeltaReplays || st2.DeltaChannelsReused != st.DeltaChannelsReused ||
		st2.DeltaFallbacks != st.DeltaFallbacks {
		t.Errorf("delta stats differ across worker counts: %+v vs %+v", st, st2)
	}
}

// TestEvaluateBatchDedup: two candidates whose components differ only
// in gates share one replay — the follower reports the leader's
// latency and energy under its own gate cost, and is counted as a
// dedup hit rather than a simulation or cache hit.
func TestEvaluateBatchDedup(t *testing.T) {
	tr := testTrace(t)
	a := testArch(4096)
	lead := testConn(t, a, "ahb32")

	follow := &connect.Arch{Channels: lead.Channels, Clusters: lead.Clusters}
	follow.Assign = append([]connect.Component(nil), lead.Assign...)
	for i := range follow.Assign {
		follow.Assign[i].Name = follow.Assign[i].Name + "-hardened"
		follow.Assign[i].BaseGates *= 2
		follow.Assign[i].GatesPerPort *= 2
	}

	reg := obs.NewRegistry()
	e := New(2, WithMetrics(reg))
	reqs := []Request{
		sampled(tr, a, lead),
		sampled(tr, a, testConn(t, a, "mux32")), // second leader so the group batches
		sampled(tr, a, follow),
	}
	got, err := e.Evaluate(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}

	if got[2].Latency != got[0].Latency || got[2].Energy != got[0].Energy {
		t.Errorf("follower figures %+v diverged from leader %+v", got[2], got[0])
	}
	if got[2].Cost <= got[0].Cost {
		t.Errorf("follower cost %.0f not recomputed from its own gates (leader %.0f)",
			got[2].Cost, got[0].Cost)
	}
	if got[2].Hit || got[2].Work != 0 {
		t.Errorf("follower should report no simulated work and no cache hit, got %+v", got[2])
	}

	st := e.Stats()
	if st.BatchDedupHits != 1 {
		t.Errorf("BatchDedupHits = %d, want 1", st.BatchDedupHits)
	}
	if st.Simulations != 2 {
		t.Errorf("Simulations = %d, want 2 (follower must not simulate)", st.Simulations)
	}
	if st.CacheHits != 0 {
		t.Errorf("CacheHits = %d, want 0 (dedup share is not a cache hit)", st.CacheHits)
	}
	snap := reg.Snapshot()
	if snap.Counters["engine/batch/dedup_hits"] != 1 {
		t.Errorf("engine/batch/dedup_hits = %d, want 1", snap.Counters["engine/batch/dedup_hits"])
	}

	// The follower owns its memo entry: re-asking for it is a plain
	// cache hit with the follower's own cost.
	v, err := e.EvaluateOne(context.Background(), reqs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !v.Hit || v.Cost != got[2].Cost {
		t.Errorf("follower re-evaluation = %+v, want cache hit with cost %.0f", v, got[2].Cost)
	}
}

// TestEvaluateBatchSpill: a fingerprint group with a single candidate
// must spill to the per-request path rather than pay batch setup.
func TestEvaluateBatchSpill(t *testing.T) {
	tr := testTrace(t)
	a := testArch(4096)
	e := New(2)
	if _, err := e.Evaluate(context.Background(), []Request{sampled(tr, a, testConn(t, a, "ahb32"))}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.BatchSpills != 1 {
		t.Errorf("BatchSpills = %d, want 1", st.BatchSpills)
	}
	if st.BatchReplays != 0 {
		t.Errorf("BatchReplays = %d, want 0", st.BatchReplays)
	}
}

// TestChunkSpan: chunks balance across the pool and respect maxBatch.
func TestChunkSpan(t *testing.T) {
	cases := []struct{ n, w, want int }{
		{2, 4, 1},
		{8, 4, 2},
		{9, 4, 3},
		{64, 1, 32},
		{65, 1, 22}, // 3 chunks of ≤22 beat 2×32 + 1×1
		{33, 2, 17},
		{1, 8, 1},
	}
	for _, c := range cases {
		if got := chunkSpan(c.n, c.w); got != c.want {
			t.Errorf("chunkSpan(%d, %d) = %d, want %d", c.n, c.w, got, c.want)
		}
	}
}
