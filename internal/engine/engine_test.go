package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/obs"
	"memorex/internal/sampling"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

func testTrace(t testing.TB) *trace.Trace {
	t.Helper()
	return workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 20_000)
}

// testArch builds a fresh single-cache architecture. Each call returns a
// new object so pointer identity never hides fingerprint differences.
func testArch(size int) *mem.Architecture {
	return &mem.Architecture{
		Name:    "c",
		Modules: []mem.Module{mem.MustCache(size, 32, 2)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
}

func testConn(t testing.TB, a *mem.Architecture, onChip string) *connect.Arch {
	t.Helper()
	lib := connect.Library()
	on, err := connect.ByName(lib, onChip)
	if err != nil {
		t.Fatal(err)
	}
	off, err := connect.ByName(lib, "off32")
	if err != nil {
		t.Fatal(err)
	}
	chans := a.Channels()
	c := &connect.Arch{Channels: chans}
	for i, ch := range chans {
		c.Clusters = append(c.Clusters, []int{i})
		if ch.OffChip {
			c.Assign = append(c.Assign, off)
		} else {
			c.Assign = append(c.Assign, on)
		}
	}
	return c
}

func sampled(tr *trace.Trace, a *mem.Architecture, c *connect.Arch) Request {
	return Request{
		Trace: tr, Mem: a, Conn: c,
		Mode:     Sampled,
		Sampling: sampling.Config{OnWindow: 500, OffRatio: 9},
	}
}

// Equivalent architectures built independently must fingerprint
// identically — that is what makes the cache work across sibling
// strategies and experiments that re-create the same designs — while any
// structural difference (module size, component choice, sampling window,
// mode) must change the key.
func TestFingerprintStability(t *testing.T) {
	tr := testTrace(t)
	e := New(1)

	a1, a2 := testArch(4096), testArch(4096)
	c1, c2 := testConn(t, a1, "ahb32"), testConn(t, a2, "ahb32")
	base := sampled(tr, a1, c1)
	if got := e.key(sampled(tr, a2, c2)); got != e.key(base) {
		t.Fatal("equivalent architectures produced different memo keys")
	}

	diff := []struct {
		name string
		req  Request
	}{
		{"cache size", sampled(tr, testArch(8192), testConn(t, testArch(8192), "ahb32"))},
		{"component", sampled(tr, a1, testConn(t, a1, "apb32"))},
		{"mode", Request{Trace: tr, Mem: a1, Conn: c1, Mode: Full}},
		{"sampling window", Request{Trace: tr, Mem: a1, Conn: c1, Mode: Sampled,
			Sampling: sampling.Config{OnWindow: 1000, OffRatio: 9}}},
	}
	for _, d := range diff {
		if e.key(d.req) == e.key(base) {
			t.Errorf("%s change did not change the memo key", d.name)
		}
	}

	// The trace content matters, not its object identity: a different
	// slice of the same benchmark must miss.
	tr2 := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 10_000)
	if e.key(sampled(tr2, a1, c1)) == e.key(base) {
		t.Fatal("different traces produced the same memo key")
	}
}

// Hit/miss accounting: the second evaluation of an equivalent design is a
// cache hit, reports Work=0, and returns the identical figures.
func TestCacheHitAccounting(t *testing.T) {
	tr := testTrace(t)
	e := New(2)
	ctx := context.Background()

	a1 := testArch(4096)
	first, err := e.EvaluateOne(ctx, sampled(tr, a1, testConn(t, a1, "ahb32")))
	if err != nil {
		t.Fatal(err)
	}
	if first.Hit || first.Work == 0 {
		t.Fatalf("first evaluation should simulate: hit=%v work=%d", first.Hit, first.Work)
	}

	a2 := testArch(4096) // equivalent, distinct object
	second, err := e.EvaluateOne(ctx, sampled(tr, a2, testConn(t, a2, "ahb32")))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Hit || second.Work != 0 {
		t.Fatalf("second evaluation should hit the cache: hit=%v work=%d", second.Hit, second.Work)
	}
	if second.Cost != first.Cost || second.Latency != first.Latency || second.Energy != first.Energy {
		t.Fatalf("cache hit returned different figures: %+v vs %+v", second, first)
	}

	st := e.Stats()
	if st.Requests != 2 || st.Simulations != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %d requests, %d simulations, %d hits; want 2, 1, 1",
			st.Requests, st.Simulations, st.CacheHits)
	}
	if st.SampledSimulations != 1 || st.SampledAccesses != first.Work {
		t.Fatalf("sampled counters = %d sims, %d accesses; want 1, %d",
			st.SampledSimulations, st.SampledAccesses, first.Work)
	}
}

// Batch results come back in submission order regardless of the worker
// count, so downstream pareto fronts are byte-identical for any
// parallelism.
func TestSubmissionOrderDeterministic(t *testing.T) {
	tr := testTrace(t)
	var reqs []Request
	for _, size := range []int{1024, 2048, 4096, 8192, 16384} {
		for _, on := range []string{"ahb32", "apb32", "mux32"} {
			a := testArch(size)
			reqs = append(reqs, sampled(tr, a, testConn(t, a, on)))
		}
	}
	serial, err := New(1).Evaluate(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(8).Evaluate(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Cost != parallel[i].Cost ||
			serial[i].Latency != parallel[i].Latency ||
			serial[i].Energy != parallel[i].Energy {
			t.Fatalf("result %d differs between 1 and 8 workers: %+v vs %+v",
				i, serial[i], parallel[i])
		}
	}
}

// A cancelled context aborts the batch with the context error.
func TestEvaluateCancellation(t *testing.T) {
	tr := testTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := testArch(4096)
	_, err := New(2).Evaluate(ctx, []Request{sampled(tr, a, testConn(t, a, "ahb32"))})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v; want context.Canceled", err)
	}
}

// An invalid request fails the whole batch with its own error (not the
// cancellation it triggers), and failures are not memoized.
func TestEvaluateErrorNotCached(t *testing.T) {
	tr := testTrace(t)
	e := New(4)
	a := testArch(4096)
	good := sampled(tr, a, testConn(t, a, "ahb32"))
	bad := Request{Trace: tr, Mem: nil, Conn: good.Conn, Mode: Sampled}
	_, err := e.Evaluate(context.Background(), []Request{good, bad, good})
	if err == nil || errors.Is(err, context.Canceled) {
		t.Fatalf("batch with invalid request returned %v; want the request error", err)
	}
	if _, err := e.EvaluateOne(context.Background(), good); err != nil {
		t.Fatalf("engine unusable after a failed batch: %v", err)
	}
}

// Phase attribution: requests tagged with a phase show up under it, and
// StartPhase accumulates wall time.
func TestPhaseStats(t *testing.T) {
	tr := testTrace(t)
	e := New(2)
	stop := e.StartPhase("test/estimate")
	a := testArch(4096)
	req := sampled(tr, a, testConn(t, a, "ahb32"))
	req.Phase = "test/estimate"
	if _, err := e.EvaluateOne(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent

	st := e.Stats()
	if len(st.Phases) != 1 || st.Phases[0].Name != "test/estimate" {
		t.Fatalf("phases = %+v; want one test/estimate entry", st.Phases)
	}
	p := st.Phases[0]
	if p.Requests != 1 || p.Simulations != 1 || p.Wall <= 0 {
		t.Fatalf("phase stats = %+v; want 1 request, 1 simulation, positive wall", p)
	}
	if !strings.Contains(st.String(), "test/estimate") {
		t.Fatalf("Stats.String() missing the phase:\n%s", st.String())
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
	if got := New(0).Workers(); got != DefaultWorkers() {
		t.Fatalf("New(0).Workers() = %d; want %d", got, DefaultWorkers())
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("New(3).Workers() = %d; want 3", got)
	}
}

// The observability wiring: an engine built with an observer and a
// metrics registry must emit one eval event per request (flagging
// cache hits), bracket StartPhase with phase events, and keep the
// registry counters consistent with Stats().
func TestObserverAndMetricsWiring(t *testing.T) {
	tr := testTrace(t)
	ring := obs.NewRing(64)
	reg := obs.NewRegistry()
	e := New(2, WithObserver(obs.NewObserver(ring)), WithMetrics(reg))
	if e.Observer() == nil || e.Metrics() != reg {
		t.Fatal("engine lost its observer or registry")
	}
	a := testArch(4096)
	c := testConn(t, a, "ahb32")
	req := sampled(tr, a, c)
	req.Phase = "test/obs"

	stop := e.StartPhase("test/obs")
	if _, err := e.Evaluate(context.Background(), []Request{req, req}); err != nil {
		t.Fatal(err)
	}
	stop()

	var evals, hits, phaseStart, phaseEnd int
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case obs.KindEval:
			evals++
			if ev.CacheHit {
				hits++
			}
			if ev.Mem != a.Name || ev.Conn == "" || ev.Phase != "test/obs" {
				t.Fatalf("eval event lost labels: %+v", ev)
			}
		case obs.KindPhaseStart:
			phaseStart++
		case obs.KindPhaseEnd:
			phaseEnd++
			if ev.WallNS <= 0 {
				t.Fatalf("phase-end without wall time: %+v", ev)
			}
		}
	}
	if evals != 2 || hits != 1 {
		t.Fatalf("got %d eval events (%d cache hits), want 2 with 1 hit", evals, hits)
	}
	if phaseStart != 1 || phaseEnd != 1 {
		t.Fatalf("phase events = %d start, %d end; want 1 each", phaseStart, phaseEnd)
	}

	snap := reg.Snapshot()
	if snap.Counters["engine/evaluations"] != 2 ||
		snap.Counters["engine/simulations"] != 1 ||
		snap.Counters["engine/cache_hits"] != 1 {
		t.Fatalf("registry counters inconsistent: %+v", snap.Counters)
	}
	if snap.Counters["rtable/issues"] <= 0 {
		t.Fatalf("scheduler issues not propagated: %+v", snap.Counters)
	}
	if snap.Counters["sampling/windows"] <= 0 || snap.Counters["sampling/on_accesses"] <= 0 {
		t.Fatalf("sampling plan not counted: %+v", snap.Counters)
	}
	h, ok := snap.Histograms["engine/eval_wall_us/sampled"]
	if !ok || h.Count != 1 {
		t.Fatalf("sampled eval-wall histogram missing or miscounted: %+v", snap.Histograms)
	}
	if snap.Gauges["engine/workers"] != 2 {
		t.Fatalf("workers gauge = %v, want 2", snap.Gauges["engine/workers"])
	}
}

// BenchmarkEvaluateObserver measures the per-evaluation overhead of
// the observability layer on the cheapest possible request — a memo
// cache hit, where the wrapper is a measurable fraction of the work.
// Compare allocs/op of the disabled and instrumented variants: the
// disabled engine must not allocate anything the instrumented one
// avoids.
func BenchmarkEvaluateObserver(b *testing.B) {
	bench := func(b *testing.B, e *Engine) {
		tr := testTrace(b)
		a := testArch(4096)
		req := sampled(tr, a, testConn(b, a, "ahb32"))
		ctx := context.Background()
		reqs := []Request{req}
		if _, err := e.Evaluate(ctx, reqs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Evaluate(ctx, reqs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { bench(b, New(1)) })
	b.Run("instrumented", func(b *testing.B) {
		bench(b, New(1,
			WithObserver(obs.NewObserver(obs.NewRing(16))),
			WithMetrics(obs.NewRegistry())))
	})
}
