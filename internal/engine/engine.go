// Package engine is the unified design-point evaluation layer of
// MemorEx. Every caller that needs the (cost, latency, energy) figures
// of a (memory architecture, connectivity architecture) pair — the core
// ConEx phases, the exploration strategy drivers, the experiment
// harness and the CLIs — routes its evaluations through one Engine.
//
// The engine owns three concerns the callers used to hand-roll:
//
//   - a bounded worker pool honouring the configured parallelism, with
//     context.Context cancellation plumbed through every batch;
//   - a memoization cache keyed by a stable fingerprint of
//     (trace, memory architecture, connectivity architecture,
//     sampled-vs-full), so a design estimated in ConEx Phase I or seen
//     by a sibling strategy or experiment is never simulated twice;
//   - evaluation statistics (simulations run, cache hits, sampled and
//     full access counts, wall time per named phase) surfaced through
//     the report writer and the memorex/paperbench CLIs.
//
// Results of a batch are always returned in submission order, so pareto
// fronts derived from them are byte-identical regardless of the worker
// count.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"memorex/internal/btcache"
	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/obs"
	"memorex/internal/sampling"
	"memorex/internal/sim"
	"memorex/internal/trace"
)

// Mode selects the evaluation fidelity of a request.
type Mode int

// Evaluation modes.
const (
	// Sampled evaluates with the time-sampling estimator (Phase I).
	Sampled Mode = iota
	// Full runs the full, non-sampled simulation (Phase II).
	Full
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Sampled:
		return "sampled"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Request asks for the evaluation of one design point.
type Request struct {
	// Trace is the memory-access trace to replay.
	Trace *trace.Trace
	// Mem is the memory-modules architecture.
	Mem *mem.Architecture
	// Conn is the connectivity architecture.
	Conn *connect.Arch
	// Mode selects sampled estimation or full simulation.
	Mode Mode
	// Sampling configures the estimator; used only when Mode is
	// Sampled (and part of the memoization key then).
	Sampling sampling.Config
	// Exact forces the one-phase simulator that re-runs the memory
	// modules for every connectivity candidate. The default (false)
	// uses the two-phase path: module behavior is captured once per
	// (trace, memory architecture, sampling plan) and each candidate is
	// a fast connectivity replay of that event trace.
	Exact bool
	// Phase optionally attributes the evaluation to a named phase in
	// the engine statistics.
	Phase string
	// BaseConn optionally names an already-explored connectivity
	// architecture this request is a neighborhood move away from. It is
	// a pure locality hint for the batch planner's delta-tree
	// construction — requests hinting the same base prefer each other as
	// delta parents when timing distances tie — and is never part of the
	// memoization key or the result.
	BaseConn *connect.Arch
}

// Value is the outcome of one evaluation.
type Value struct {
	// Cost is the total on-chip area in gates (memory + connectivity).
	Cost float64
	// Latency is the average memory latency in cycles per access.
	Latency float64
	// Energy is the average energy in nJ per access.
	Energy float64
	// Estimated is true for Sampled-mode figures.
	Estimated bool
	// Work is the number of trace accesses actually simulated to
	// produce this value; 0 when it was served from the memo cache.
	Work int64
	// Hit reports whether the value came from the memo cache.
	Hit bool
}

// PhaseStat accumulates the evaluation activity of one named phase.
type PhaseStat struct {
	Name string
	// Wall is the accumulated wall-clock time spent inside the phase
	// (StartPhase..stop brackets).
	Wall time.Duration
	// Requests and Simulations count the evaluations attributed to the
	// phase via Request.Phase, and how many of them actually ran a
	// simulator (the rest were cache hits).
	Requests    int64
	Simulations int64
}

// Stats is a snapshot of the engine counters.
type Stats struct {
	// Requests counts every evaluation asked of the engine.
	Requests int64
	// Simulations counts the evaluations that actually ran a simulator
	// (sampled or full); Requests - Simulations were served by the
	// memoization cache or failed.
	Simulations int64
	// CacheHits counts requests answered from the memo cache.
	CacheHits int64
	// SampledSimulations / FullSimulations split Simulations by mode.
	SampledSimulations int64
	FullSimulations    int64
	// SampledAccesses / FullAccesses count the trace accesses actually
	// simulated in each mode (the exploration's work measure).
	SampledAccesses int64
	FullAccesses    int64
	// BehaviorCaptures counts Phase A module-behavior runs;
	// BehaviorCacheHits counts evaluations (or batch dispatches) whose
	// replay reused an already-captured event trace; BehaviorDiskHits
	// counts captures avoided by loading the persistent behavior-trace
	// cache instead.
	BehaviorCaptures  int64
	BehaviorCacheHits int64
	BehaviorDiskHits  int64
	// BatchReplays counts ReplayBatch dispatches and BatchedEvals the
	// evaluations they served; BatchDedupHits counts evaluations that
	// shared a timing-identical group-mate's replay instead of running
	// their own; BatchSpills counts evaluations routed to the per-arch
	// path because their fingerprint group was below the batch
	// threshold.
	BatchReplays   int64
	BatchedEvals   int64
	BatchDedupHits int64
	BatchSpills    int64
	// DeltaReplays counts evaluations served by sim.ReplayDelta against
	// a sibling's residue; DeltaChannelsReused totals the clean channels
	// those deltas spliced from their base; DeltaFallbacks counts delta
	// dispatches that degenerated to a full replay (no spliceable event,
	// or the parent's residue was unavailable).
	DeltaReplays        int64
	DeltaChannelsReused int64
	DeltaFallbacks      int64
	// DeltaSplicedEvents / DeltaRecomputedEvents partition the trace
	// events of every delta-served evaluation (fallbacks included, as
	// all-recomputed). Their ratio is the realized splice reuse the
	// adaptive delta gate decides on: when it stays below the gate's
	// threshold the residue capture isn't paying for itself and delta
	// planning pauses.
	DeltaSplicedEvents    int64
	DeltaRecomputedEvents int64
	// Phases lists per-phase wall times and counters in first-use
	// order.
	Phases []PhaseStat
}

// String renders the snapshot as a compact one-or-two-line summary for
// the CLIs.
func (s Stats) String() string {
	out := fmt.Sprintf("engine: %d evaluations, %d simulations (%d sampled + %d full), %d cache hits; %d sampled + %d full accesses",
		s.Requests, s.Simulations, s.SampledSimulations, s.FullSimulations,
		s.CacheHits, s.SampledAccesses, s.FullAccesses)
	if s.BehaviorCaptures > 0 || s.BehaviorCacheHits > 0 || s.BehaviorDiskHits > 0 {
		out += fmt.Sprintf("; %d behavior captures, %d behavior reuses",
			s.BehaviorCaptures, s.BehaviorCacheHits)
		if s.BehaviorDiskHits > 0 {
			out += fmt.Sprintf(", %d disk hits", s.BehaviorDiskHits)
		}
	}
	if s.BatchReplays > 0 || s.BatchDedupHits > 0 || s.BatchSpills > 0 {
		out += fmt.Sprintf("; %d batch replays covering %d evals, %d dedup shares, %d spills",
			s.BatchReplays, s.BatchedEvals, s.BatchDedupHits, s.BatchSpills)
	}
	if s.DeltaReplays > 0 || s.DeltaFallbacks > 0 {
		out += fmt.Sprintf("; %d delta replays reusing %d channels, %d fallbacks",
			s.DeltaReplays, s.DeltaChannelsReused, s.DeltaFallbacks)
		if total := s.DeltaSplicedEvents + s.DeltaRecomputedEvents; total > 0 {
			out += fmt.Sprintf(" (%.0f%% events spliced)", 100*float64(s.DeltaSplicedEvents)/float64(total))
		}
	}
	for _, p := range s.Phases {
		out += fmt.Sprintf("\n  phase %-18s %10v  %6d evals  %6d sims",
			p.Name, p.Wall.Round(time.Millisecond), p.Requests, p.Simulations)
	}
	return out
}

// DefaultWorkers is the canonical parallelism default used everywhere a
// worker count of 0 is configured.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// entry is one memoization slot. The first requester computes the value
// while concurrent duplicates wait on done (single-flight).
type entry struct {
	done chan struct{}
	val  Value
	err  error
}

// behaviorEntry is one Phase A memoization slot (single-flight, like
// entry): the captured module-behavior event trace of one
// (trace, memory architecture, sampling plan).
type behaviorEntry struct {
	done chan struct{}
	bt   *sim.BehaviorTrace
	work int64
	err  error
}

// Engine is the shared evaluator. It is safe for concurrent use; one
// engine can (and should) be shared across exploration phases,
// strategies and experiments so the memo cache works across them.
type Engine struct {
	workers int

	// obs and metrics are the optional observability hooks. Both are
	// nil-safe throughout (a nil observer/registry costs one nil check
	// per use and never allocates), so the hot path below updates them
	// unconditionally through pre-resolved instrument handles.
	obs     *obs.Observer
	metrics *obs.Registry
	m       instruments

	// disk is the optional persistent behavior-trace cache, consulted
	// between the in-memory memo and a Phase A capture. Nil-safe: a nil
	// cache is always a miss and swallows Puts.
	disk *btcache.Cache

	mu       sync.Mutex
	cache    map[uint64]*entry
	behavior map[uint64]*behaviorEntry
	traceFP  map[*trace.Trace]uint64
	memFP    map[*mem.Architecture]uint64
	stats    Stats
	phase    map[string]int // phase name -> index into stats.Phases

	// deltaPlanSeq counts delta-eligible fingerprint groups planned so
	// far; while the adaptive delta gate is pausing, every
	// deltaProbeEvery'th group still plans a delta tree to re-sample
	// the realized reuse (see deltaWorthwhile in batch.go).
	deltaPlanSeq int64
}

// instruments caches the engine's metrics-registry handles so the per-
// evaluation path never pays a name lookup. All handles are nil (and
// their methods no-ops) when the engine has no registry.
type instruments struct {
	evals, sims, hits   *obs.Counter
	sampledAcc, fullAcc *obs.Counter
	captures, capReuse  *obs.Counter
	diskHits            *obs.Counter
	schedIssues         *obs.Counter
	schedConflicts      *obs.Counter
	samplingWindows     *obs.Counter
	samplingOnAcc       *obs.Counter
	evalWallSampled     *obs.Histogram
	evalWallFull        *obs.Histogram
	batches             *obs.Counter
	batchDedup          *obs.Counter
	batchSpills         *obs.Counter
	batchSize           *obs.Histogram
	batchWall           *obs.Histogram
	deltaReplays        *obs.Counter
	deltaChannels       *obs.Counter
	deltaFallbacks      *obs.Counter
	deltaReuse          *obs.Histogram
}

// Option configures an Engine beyond its worker bound.
type Option func(*Engine)

// WithObserver attaches a structured-event observer: the engine emits
// one obs.KindEval event per evaluation (including cache hits) and
// phase start/end events from StartPhase. A nil observer is the
// explicit "off" value.
func WithObserver(o *obs.Observer) Option {
	return func(e *Engine) { e.obs = o }
}

// WithMetrics attaches a metrics registry the engine feeds: evaluation
// counters, per-mode wall-time histograms, scheduler contention and
// sampling-plan counters. A nil registry is the explicit "off" value.
func WithMetrics(r *obs.Registry) Option {
	return func(e *Engine) { e.metrics = r }
}

// WithBehaviorCache attaches a persistent behavior-trace cache. Before
// running a Phase A capture the engine consults the cache under the
// request's behavior fingerprint, and after a capture it persists the
// result, so later processes (or engines sharing the directory) warm-
// start without simulating the memory modules at all. A nil cache is
// the explicit "off" value.
func WithBehaviorCache(c *btcache.Cache) Option {
	return func(e *Engine) { e.disk = c }
}

// New returns an engine bounded to the given worker count
// (0 or negative = DefaultWorkers).
func New(workers int, opts ...Option) *Engine {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	e := &Engine{
		workers:  workers,
		cache:    map[uint64]*entry{},
		behavior: map[uint64]*behaviorEntry{},
		traceFP:  map[*trace.Trace]uint64{},
		memFP:    map[*mem.Architecture]uint64{},
		phase:    map[string]int{},
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.metrics != nil {
		e.m = instruments{
			evals:           e.metrics.Counter("engine/evaluations"),
			sims:            e.metrics.Counter("engine/simulations"),
			hits:            e.metrics.Counter("engine/cache_hits"),
			sampledAcc:      e.metrics.Counter("engine/sampled_accesses"),
			fullAcc:         e.metrics.Counter("engine/full_accesses"),
			captures:        e.metrics.Counter("engine/behavior_captures"),
			capReuse:        e.metrics.Counter("engine/behavior_reuses"),
			diskHits:        e.metrics.Counter("engine/behavior_disk_hits"),
			schedIssues:     e.metrics.Counter("rtable/issues"),
			schedConflicts:  e.metrics.Counter("rtable/conflicts"),
			samplingWindows: e.metrics.Counter("sampling/windows"),
			samplingOnAcc:   e.metrics.Counter("sampling/on_accesses"),
			evalWallSampled: e.metrics.Histogram("engine/eval_wall_us/sampled"),
			evalWallFull:    e.metrics.Histogram("engine/eval_wall_us/full"),
			batches:         e.metrics.Counter("engine/batch/dispatches"),
			batchDedup:      e.metrics.Counter("engine/batch/dedup_hits"),
			batchSpills:     e.metrics.Counter("engine/batch/spills"),
			batchSize:       e.metrics.Histogram("engine/batch/size"),
			batchWall:       e.metrics.Histogram("engine/batch/wall_us"),
			deltaReplays:    e.metrics.Counter("engine/delta/replays"),
			deltaChannels:   e.metrics.Counter("engine/delta/channels_reused"),
			deltaFallbacks:  e.metrics.Counter("engine/delta/fallbacks"),
			deltaReuse:      e.metrics.Histogram("engine/delta/reuse_ratio"),
		}
		e.metrics.Gauge("engine/workers").Set(float64(workers))
	}
	return e
}

// Workers returns the engine's parallelism bound.
func (e *Engine) Workers() int { return e.workers }

// Observer returns the engine's event observer (nil when detached).
func (e *Engine) Observer() *obs.Observer { return e.obs }

// Metrics returns the engine's metrics registry (nil when detached).
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Phases = append([]PhaseStat(nil), e.stats.Phases...)
	return s
}

// StartPhase starts (or resumes) the wall-clock timer of a named phase
// and returns the function that stops it. Phases appear in the stats in
// first-use order.
func (e *Engine) StartPhase(name string) (stop func()) {
	e.obs.PhaseStart(name)
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			d := time.Since(start)
			e.mu.Lock()
			e.phaseLocked(name).Wall += d
			e.mu.Unlock()
			e.obs.PhaseEnd(name, d)
		})
	}
}

// phaseLocked returns the phase slot for name, creating it if needed.
// Callers must hold e.mu.
func (e *Engine) phaseLocked(name string) *PhaseStat {
	if i, ok := e.phase[name]; ok {
		return &e.stats.Phases[i]
	}
	e.phase[name] = len(e.stats.Phases)
	e.stats.Phases = append(e.stats.Phases, PhaseStat{Name: name})
	return &e.stats.Phases[len(e.stats.Phases)-1]
}

// EvaluateOne evaluates a single request through the pool and cache.
func (e *Engine) EvaluateOne(ctx context.Context, req Request) (Value, error) {
	vals, err := e.Evaluate(ctx, []Request{req})
	if err != nil {
		return Value{}, err
	}
	return vals[0], nil
}

// finishOwned publishes an owned memo entry: failures are dropped from
// the cache (never memoized) before the entry's waiters are released.
func (e *Engine) finishOwned(key uint64, ent *entry, v Value, err error) {
	if err != nil {
		ent.err = err
		e.mu.Lock()
		delete(e.cache, key)
		e.mu.Unlock()
	} else {
		ent.val = v
	}
	close(ent.done)
}

// recordSim accounts one completed simulation in the engine stats.
func (e *Engine) recordSim(r Request, v Value) {
	e.mu.Lock()
	e.stats.Simulations++
	if r.Mode == Full {
		e.stats.FullSimulations++
		e.stats.FullAccesses += v.Work
	} else {
		e.stats.SampledSimulations++
		e.stats.SampledAccesses += v.Work
	}
	if r.Phase != "" {
		e.phaseLocked(r.Phase).Simulations++
	}
	e.mu.Unlock()
}

// emitEval publishes the per-evaluation observer event.
func (e *Engine) emitEval(r Request, v Value, wall time.Duration) {
	if !e.obs.Enabled() {
		return
	}
	e.obs.Eval(obs.Evaluation{
		Phase:     r.Phase,
		Mem:       r.Mem.Name,
		Conn:      r.Conn.Describe(r.Mem),
		Cost:      v.Cost,
		Latency:   v.Latency,
		Energy:    v.Energy,
		Estimated: v.Estimated,
		CacheHit:  v.Hit,
		Work:      v.Work,
		Wall:      wall,
	})
}

// computeOne runs the per-request simulation path — Exact requests,
// fingerprint groups too small to batch, and the fallback when a batch
// replay fails — with full stats and observability accounting. With no
// observer and no registry attached it adds two nil checks and nothing
// else.
func (e *Engine) computeOne(ctx context.Context, r Request) (Value, error) {
	instrumented := e.obs.Enabled() || e.metrics != nil
	var start time.Time
	if instrumented {
		start = time.Now()
	}
	v, err := e.simulate(ctx, r)
	if err != nil {
		return Value{}, err
	}
	e.recordSim(r, v)
	if instrumented {
		wall := time.Since(start)
		e.m.evals.Inc()
		e.m.sims.Inc()
		if r.Mode == Full {
			e.m.fullAcc.Add(v.Work)
			e.m.evalWallFull.Observe(float64(wall.Microseconds()))
		} else {
			e.m.sampledAcc.Add(v.Work)
			e.m.evalWallSampled.Observe(float64(wall.Microseconds()))
		}
		e.emitEval(r, v, wall)
	}
	return v, nil
}

// awaitHit waits for the owning computation of an already-claimed memo
// entry and returns its value as a cache hit.
func (e *Engine) awaitHit(ctx context.Context, r Request, ent *entry) (Value, error) {
	instrumented := e.obs.Enabled() || e.metrics != nil
	var start time.Time
	if instrumented {
		start = time.Now()
	}
	select {
	case <-ent.done:
	case <-ctx.Done():
		return Value{}, ctx.Err()
	}
	if ent.err != nil {
		return Value{}, ent.err
	}
	e.mu.Lock()
	e.stats.CacheHits++
	e.mu.Unlock()
	v := ent.val
	v.Work = 0
	v.Hit = true
	if instrumented {
		e.m.evals.Inc()
		e.m.hits.Inc()
		e.emitEval(r, v, time.Since(start))
	}
	return v, nil
}

// simulate runs the actual simulator for a request (no caching of the
// final value; the Phase A behavior trace is memoized internally).
func (e *Engine) simulate(ctx context.Context, r Request) (Value, error) {
	cost := r.Mem.Gates() + r.Conn.Gates()
	if r.Exact {
		return e.simulateExact(r, cost)
	}
	switch r.Mode {
	case Sampled, Full:
	default:
		return Value{}, fmt.Errorf("engine: unknown evaluation mode %d", r.Mode)
	}
	bt, err := e.behaviorTrace(ctx, r)
	if err != nil {
		return Value{}, err
	}
	res, err := sim.Replay(bt, r.Conn)
	if err != nil {
		return Value{}, err
	}
	e.m.schedIssues.Add(res.SchedIssues)
	e.m.schedConflicts.Add(res.SchedConflicts)
	return Value{
		Cost:      cost,
		Latency:   res.AvgLatency(),
		Energy:    res.AvgEnergy(),
		Estimated: r.Mode == Sampled,
		Work:      res.Accesses,
	}, nil
}

// simulateExact is the one-phase fallback: the full module + connectivity
// simulation the engine ran before the two-phase split.
func (e *Engine) simulateExact(r Request, cost float64) (Value, error) {
	switch r.Mode {
	case Sampled:
		res, simulated, err := sampling.Estimate(r.Trace, r.Mem, r.Conn, r.Sampling)
		if err != nil {
			return Value{}, err
		}
		e.m.schedIssues.Add(res.SchedIssues)
		e.m.schedConflicts.Add(res.SchedConflicts)
		return Value{
			Cost:      cost,
			Latency:   res.AvgLatency(),
			Energy:    res.AvgEnergy(),
			Estimated: true,
			Work:      simulated,
		}, nil
	case Full:
		s, err := sim.New(r.Mem, r.Conn)
		if err != nil {
			return Value{}, err
		}
		res, err := s.Run(r.Trace)
		if err != nil {
			return Value{}, err
		}
		e.m.schedIssues.Add(res.SchedIssues)
		e.m.schedConflicts.Add(res.SchedConflicts)
		return Value{
			Cost:    cost,
			Latency: res.AvgLatency(),
			Energy:  res.AvgEnergy(),
			Work:    res.Accesses,
		}, nil
	default:
		return Value{}, fmt.Errorf("engine: unknown evaluation mode %d", r.Mode)
	}
}

// behaviorTrace returns the Phase A event trace of a request, capturing
// it on first use and serving concurrent duplicates single-flight.
func (e *Engine) behaviorTrace(ctx context.Context, r Request) (*sim.BehaviorTrace, error) {
	key := e.behaviorKey(r)
	e.mu.Lock()
	if ent, ok := e.behavior[key]; ok {
		e.mu.Unlock()
		select {
		case <-ent.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if ent.err != nil {
			return nil, ent.err
		}
		e.mu.Lock()
		e.stats.BehaviorCacheHits++
		e.mu.Unlock()
		e.m.capReuse.Inc()
		return ent.bt, nil
	}
	ent := &behaviorEntry{done: make(chan struct{})}
	e.behavior[key] = ent
	e.mu.Unlock()

	// Second layer: the persistent cache. A validated disk entry stands
	// in for the capture; any validation failure inside Get is a plain
	// miss (the damaged file is quarantined by the cache) and we fall
	// through to capturing.
	if bt, ok := e.disk.Get(key); ok {
		ent.bt = bt
		e.mu.Lock()
		e.stats.BehaviorDiskHits++
		e.mu.Unlock()
		e.m.diskHits.Inc()
		close(ent.done)
		return ent.bt, nil
	}

	ent.bt, ent.err = e.captureBehavior(r)
	if ent.err != nil {
		e.mu.Lock()
		delete(e.behavior, key) // failures are not memoized
		e.mu.Unlock()
	} else {
		e.mu.Lock()
		e.stats.BehaviorCaptures++
		e.mu.Unlock()
		e.m.captures.Inc()
		// Best-effort persist: a failed write only costs a future
		// recapture and is counted by the cache's put_errors.
		e.disk.Put(key, ent.bt)
	}
	close(ent.done)
	return ent.bt, ent.err
}

// captureBehavior runs Phase A for a request: the whole trace in Full
// mode, the sampling plan's on-windows in Sampled mode.
func (e *Engine) captureBehavior(r Request) (*sim.BehaviorTrace, error) {
	var windows []sim.Window
	if r.Mode == Sampled {
		if err := r.Sampling.Validate(); err != nil {
			return nil, err
		}
		windows = sampling.Plan(r.Trace.NumAccesses(), r.Sampling)
		if len(windows) == 0 {
			return nil, fmt.Errorf("sampling: empty trace")
		}
		e.m.samplingWindows.Add(int64(len(windows)))
		var on int64
		for _, w := range windows {
			on += int64(w.Hi - w.Lo)
		}
		e.m.samplingOnAcc.Add(on)
	}
	return sim.CaptureBehavior(r.Trace, r.Mem, windows)
}
