package engine

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"memorex/internal/btcache"
	"memorex/internal/obs"
	"memorex/internal/sampling"
)

// mangleEntries flips one payload bit in every cache entry under dir.
func mangleEntries(t *testing.T, dir string) {
	t.Helper()
	ents, err := filepath.Glob(filepath.Join(dir, "*.btc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("no cache entries to mangle")
	}
	flip := btcache.FlipBit(40, 3) // well inside the payload
	for _, p := range ents {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, flip.Apply(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// openTestCache opens a behavior-trace cache in a temp dir.
func openTestCache(t *testing.T, dir string) *btcache.Cache {
	t.Helper()
	c, err := btcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDiskCacheWarmStart: a second engine sharing the cache directory
// evaluates the same design without a single Phase A capture, and its
// figures are identical to the cold run's.
func TestDiskCacheWarmStart(t *testing.T) {
	dir := t.TempDir()
	tr := testTrace(t)
	a := testArch(8192)
	c := testConn(t, a, "ahb32")
	req := sampled(tr, a, c)

	cold := New(2, WithBehaviorCache(openTestCache(t, dir)))
	want, err := cold.EvaluateOne(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.BehaviorCaptures != 1 || s.BehaviorDiskHits != 0 {
		t.Fatalf("cold stats = %+v, want 1 capture and 0 disk hits", s)
	}

	// Fresh engine, fresh in-memory memo, fresh architecture objects —
	// only the directory is shared.
	a2 := testArch(8192)
	warm := New(2, WithBehaviorCache(openTestCache(t, dir)))
	got, err := warm.EvaluateOne(context.Background(), sampled(tr, a2, testConn(t, a2, "ahb32")))
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.BehaviorCaptures != 0 || s.BehaviorDiskHits != 1 {
		t.Fatalf("warm stats = %+v, want 0 captures and 1 disk hit", s)
	}
	got.Hit, want.Hit = false, false
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm-start value diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestDiskCacheSingleCapture: N goroutines racing the same fingerprint
// through one engine observe exactly one capture — the disk cache must
// not defeat the in-memory single-flight (run under -race).
func TestDiskCacheSingleCapture(t *testing.T) {
	dir := t.TempDir()
	tr := testTrace(t)
	a := testArch(4096)
	e := New(4, WithBehaviorCache(openTestCache(t, dir)))

	const goroutines = 8
	vals := make([]Value, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct connectivity per goroutine defeats the value memo,
			// so every goroutine reaches the behavior layer.
			onChip := "ahb32"
			if i%2 == 1 {
				onChip = "ahb64"
			}
			v, err := e.EvaluateOne(context.Background(), sampled(tr, a, testConn(t, a, onChip)))
			if err != nil {
				t.Error(err)
				return
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if s := e.Stats(); s.BehaviorCaptures != 1 {
		t.Fatalf("stats = %+v, want exactly 1 behavior capture", s)
	}
	// Goroutines sharing the ahb32 design must agree on the figures
	// (some served from the value memo, some computed).
	for i := 2; i < goroutines; i += 2 {
		if vals[i].Cost != vals[0].Cost || vals[i].Latency != vals[0].Latency || vals[i].Energy != vals[0].Energy {
			t.Fatalf("goroutine %d saw %+v, goroutine 0 saw %+v", i, vals[i], vals[0])
		}
	}
}

// TestDiskCacheCorruptEntryRecaptured: an engine facing a damaged disk
// entry falls through to capture and still produces correct figures.
func TestDiskCacheCorruptEntryRecaptured(t *testing.T) {
	dir := t.TempDir()
	tr := testTrace(t)
	a := testArch(8192)
	req := sampled(tr, a, testConn(t, a, "ahb32"))

	cold := New(1, WithBehaviorCache(openTestCache(t, dir)))
	want, err := cold.EvaluateOne(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in every cache entry on disk.
	mangleEntries(t, dir)

	cache := openTestCache(t, dir)
	warm := New(1, WithBehaviorCache(cache))
	a2 := testArch(8192)
	got, err := warm.EvaluateOne(context.Background(), sampled(tr, a2, testConn(t, a2, "ahb32")))
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.BehaviorCaptures != 1 || s.BehaviorDiskHits != 0 {
		t.Fatalf("stats after corruption = %+v, want a recapture and no disk hit", s)
	}
	if cs := cache.Stats(); cs.CorruptQuarantined != 1 {
		t.Fatalf("cache stats = %+v, want 1 corrupt quarantine", cs)
	}
	got.Hit, want.Hit = false, false
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-corruption value diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestBehaviorFingerprintMatchesEngineKey: the exported package-level
// fingerprint must equal the engine's internal behavior key, or the
// disk entries written by one and read by the other would never meet.
func TestBehaviorFingerprintMatchesEngineKey(t *testing.T) {
	tr := testTrace(t)
	a := testArch(8192)
	e := New(1)
	cfg := sampling.Config{OnWindow: 500, OffRatio: 9}
	r := Request{Trace: tr, Mem: a, Mode: Sampled, Sampling: cfg}
	if got, want := BehaviorFingerprint(tr, a, Sampled, cfg), e.behaviorKey(r); got != want {
		t.Fatalf("BehaviorFingerprint %x != engine behaviorKey %x (sampled)", got, want)
	}
	r.Mode = Full
	if got, want := BehaviorFingerprint(tr, a, Full, sampling.Config{}), e.behaviorKey(r); got != want {
		t.Fatalf("BehaviorFingerprint %x != engine behaviorKey %x (full)", got, want)
	}
}

// TestDiskCacheMetrics: with a shared registry the engine's disk-hit
// counter and the cache's own counters land in one snapshot.
func TestDiskCacheMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	cache, err := btcache.Open(dir, btcache.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(t)

	cold := New(1, WithBehaviorCache(cache), WithMetrics(reg))
	a := testArch(8192)
	if _, err := cold.EvaluateOne(context.Background(), sampled(tr, a, testConn(t, a, "ahb32"))); err != nil {
		t.Fatal(err)
	}
	warm := New(1, WithBehaviorCache(cache), WithMetrics(reg))
	a2 := testArch(8192)
	if _, err := warm.EvaluateOne(context.Background(), sampled(tr, a2, testConn(t, a2, "ahb32"))); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Counters["btcache/puts"] != 1 || snap.Counters["btcache/hits"] != 1 {
		t.Fatalf("cache counters inconsistent: %+v", snap.Counters)
	}
	if snap.Counters["engine/behavior_disk_hits"] != 1 {
		t.Fatalf("engine disk-hit counter = %v, want 1", snap.Counters["engine/behavior_disk_hits"])
	}
}
