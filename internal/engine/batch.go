// Batched dispatch: Evaluate groups pending two-phase requests by
// behavior-trace fingerprint and re-times each group's connectivity
// architectures through sim.ReplayBatch — one pass over the shared
// event trace per chunk instead of one per candidate. Before anything
// is dispatched, a timing-signature dedup front-end collapses requests
// whose connectivity architectures resolve to identical timing
// parameters: followers share the leader's replay result and only
// recompute their own (closed-form) gate cost.
//
// Requests that cannot batch — Exact mode, unknown modes, or
// fingerprint groups below the minBatch threshold — spill to the
// per-request path; cache hits and single-flight duplicates wait
// without holding a worker slot. All of this preserves the engine's
// contracts: results in submission order, first real error wins over
// the cancellations it causes, failures are never memoized.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"memorex/internal/connect"
	"memorex/internal/sim"
)

// Batch tuning: fingerprint groups below minBatch leaders spill to the
// per-arch Replay path (the shared-decode setup isn't worth paying for
// one candidate); chunks are balanced across the worker pool and
// capped at maxBatch so per-batch replay state stays cache-resident.
const (
	minBatch = 2
	maxBatch = 32
)

// chunkSpan returns the chunk size for n group leaders on w workers:
// an even split across the pool, re-balanced under the maxBatch cap.
func chunkSpan(n, w int) int {
	size := (n + w - 1) / w
	if size > maxBatch {
		c := (n + maxBatch - 1) / maxBatch
		size = (n + c - 1) / c
	}
	if size < 1 {
		size = 1
	}
	return size
}

// Evaluate runs a batch of requests on the worker pool and returns the
// values in submission order. Two-phase requests sharing a behavior
// trace are dispatched as batched replays (see the package comment of
// this file); everything else takes the per-request path. On error the
// batch is cancelled and the first error (in submission order) is
// returned; ctx cancellation stops the batch between evaluations.
func (e *Engine) Evaluate(ctx context.Context, reqs []Request) ([]Value, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Value, len(reqs))
	errs := make([]error, len(reqs))
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Validate and fingerprint outside the lock, then claim memo
	// entries for the whole batch in one critical section. A request
	// whose key is already cached (or claimed by an earlier duplicate
	// in this very batch) becomes a waiter; the rest own their entry
	// and must publish it exactly once, success or failure.
	keys := make([]uint64, len(reqs))
	ents := make([]*entry, len(reqs))
	owned := make([]bool, len(reqs))
	invalid := false
	for i, r := range reqs {
		if r.Trace == nil || r.Mem == nil || r.Conn == nil {
			errs[i] = fmt.Errorf("engine: request missing trace, memory or connectivity architecture")
			invalid = true
			continue
		}
		keys[i] = e.key(r)
	}
	e.mu.Lock()
	for i, r := range reqs {
		if errs[i] != nil {
			continue
		}
		e.stats.Requests++
		if r.Phase != "" {
			e.phaseLocked(r.Phase).Requests++
		}
		if ent, ok := e.cache[keys[i]]; ok {
			ents[i] = ent
		} else {
			ent := &entry{done: make(chan struct{})}
			e.cache[keys[i]] = ent
			ents[i] = ent
			owned[i] = true
		}
	}
	e.mu.Unlock()
	if invalid {
		cancel() // abort the rest of the batch, like any failing member
	}

	// Group the owned two-phase requests by behavior fingerprint,
	// dedup identical timing signatures within each group, and chunk
	// the remaining leaders for batched replay.
	var singles []int
	var groupOrder []uint64
	groups := map[uint64][]int{}
	for i, r := range reqs {
		if errs[i] != nil || !owned[i] {
			continue
		}
		if r.Exact || (r.Mode != Sampled && r.Mode != Full) {
			singles = append(singles, i)
			continue
		}
		bk := e.behaviorKey(r)
		if _, ok := groups[bk]; !ok {
			groupOrder = append(groupOrder, bk)
		}
		groups[bk] = append(groups[bk], i)
	}
	var chunks [][]int
	var followers [][2]int // {follower index, leader index}
	var spilled int64
	for _, bk := range groupOrder {
		var leaders []int
		sigSeen := map[uint64]int{}
		for _, i := range groups[bk] {
			sig := timingSignature(reqs[i].Conn)
			if l, ok := sigSeen[sig]; ok {
				followers = append(followers, [2]int{i, l})
				continue
			}
			sigSeen[sig] = i
			leaders = append(leaders, i)
		}
		if len(leaders) < minBatch {
			singles = append(singles, leaders...)
			spilled += int64(len(leaders))
			continue
		}
		span := chunkSpan(len(leaders), e.workers)
		for lo := 0; lo < len(leaders); lo += span {
			hi := lo + span
			if hi > len(leaders) {
				hi = len(leaders)
			}
			chunks = append(chunks, leaders[lo:hi])
		}
	}
	if spilled > 0 {
		e.mu.Lock()
		e.stats.BatchSpills += spilled
		e.mu.Unlock()
		e.m.batchSpills.Add(spilled)
	}

	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	fail := func(i int, err error) {
		errs[i] = err
		e.finishOwned(keys[i], ents[i], Value{}, err)
	}
	abort := func(err error) {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			cancel()
		}
	}

	// Cache waiters ride on the owning computation (possibly in a
	// sibling Evaluate call) without holding a worker slot.
	for i := range reqs {
		if errs[i] != nil || ents[i] == nil || owned[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := e.awaitHit(bctx, reqs[i], ents[i])
			if err != nil {
				errs[i] = err
				abort(err)
				return
			}
			out[i] = v
		}(i)
	}

	// Dedup followers share the leader's replay figures with their own
	// connectivity cost; they own a memo entry of their own, so later
	// requests for the same design hit the cache directly.
	for _, fl := range followers {
		wg.Add(1)
		go func(i, leader int) {
			defer wg.Done()
			v, err := e.awaitShared(bctx, reqs[i], ents[leader])
			if err != nil {
				fail(i, err)
				abort(err)
				return
			}
			e.finishOwned(keys[i], ents[i], v, nil)
			out[i] = v
		}(fl[0], fl[1])
	}

	// Per-request path: Exact requests and spilled leaders.
	for _, i := range singles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-bctx.Done():
				fail(i, bctx.Err())
				return
			}
			defer func() { <-sem }()
			// The sem send can win the select against an already
			// cancelled context; re-check before doing work.
			if err := bctx.Err(); err != nil {
				fail(i, err)
				return
			}
			v, err := e.computeOne(bctx, reqs[i])
			if err != nil {
				fail(i, err)
				abort(err)
				return
			}
			e.finishOwned(keys[i], ents[i], v, nil)
			out[i] = v
		}(i)
	}

	// Batched chunks: each occupies one worker slot and serves all its
	// members from a single trace pass.
	for _, chunk := range chunks {
		wg.Add(1)
		go func(chunk []int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-bctx.Done():
				for _, i := range chunk {
					fail(i, bctx.Err())
				}
				return
			}
			defer func() { <-sem }()
			if err := bctx.Err(); err != nil {
				for _, i := range chunk {
					fail(i, err)
				}
				return
			}
			e.computeChunk(bctx, reqs, chunk, keys, ents, out, errs, abort)
		}(chunk)
	}

	wg.Wait()
	// Prefer the first real failure over the cancellations it caused.
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// computeChunk replays one fingerprint-group chunk through
// sim.ReplayBatch: the behavior trace is resolved once (single-flight
// memoized across chunks) and every member's connectivity architecture
// is re-timed in the same trace pass. A batch-level failure falls back
// to the per-request path so one poisoned member cannot take down its
// group-mates.
func (e *Engine) computeChunk(ctx context.Context, reqs []Request, chunk []int, keys []uint64, ents []*entry, out []Value, errs []error, abort func(error)) {
	instrumented := e.obs.Enabled() || e.metrics != nil
	var start time.Time
	if instrumented {
		start = time.Now()
	}
	bt, err := e.behaviorTrace(ctx, reqs[chunk[0]])
	if err != nil {
		for _, i := range chunk {
			errs[i] = err
			e.finishOwned(keys[i], ents[i], Value{}, err)
		}
		abort(err)
		return
	}
	archs := make([]*connect.Arch, len(chunk))
	for j, i := range chunk {
		archs[j] = reqs[i].Conn
	}
	results, rerr := sim.ReplayBatch(bt, archs)
	if rerr != nil {
		for _, i := range chunk {
			v, err := e.computeOne(ctx, reqs[i])
			if err != nil {
				errs[i] = err
				e.finishOwned(keys[i], ents[i], Value{}, err)
				abort(err)
				continue
			}
			e.finishOwned(keys[i], ents[i], v, nil)
			out[i] = v
		}
		return
	}
	var wall, amort time.Duration
	if instrumented {
		wall = time.Since(start)
		amort = wall / time.Duration(len(chunk))
	}
	for j, i := range chunk {
		r := reqs[i]
		res := results[j]
		v := Value{
			Cost:      r.Mem.Gates() + r.Conn.Gates(),
			Latency:   res.AvgLatency(),
			Energy:    res.AvgEnergy(),
			Estimated: r.Mode == Sampled,
			Work:      res.Accesses,
		}
		e.m.schedIssues.Add(res.SchedIssues)
		e.m.schedConflicts.Add(res.SchedConflicts)
		e.recordSim(r, v)
		if instrumented {
			e.m.evals.Inc()
			e.m.sims.Inc()
			if r.Mode == Full {
				e.m.fullAcc.Add(v.Work)
				e.m.evalWallFull.Observe(float64(amort.Microseconds()))
			} else {
				e.m.sampledAcc.Add(v.Work)
				e.m.evalWallSampled.Observe(float64(amort.Microseconds()))
			}
			e.emitEval(r, v, amort)
		}
		e.finishOwned(keys[i], ents[i], v, nil)
		out[i] = v
	}
	e.mu.Lock()
	e.stats.BatchReplays++
	e.stats.BatchedEvals += int64(len(chunk))
	e.mu.Unlock()
	e.m.batches.Inc()
	e.m.batchSize.Observe(float64(len(chunk)))
	if instrumented {
		e.m.batchWall.Observe(float64(wall.Microseconds()))
	}
}

// awaitShared waits for a timing-identical leader's result and adapts
// it to this request: the replayed latency and energy transfer as-is,
// the gate cost is recomputed from this design's own components, and
// no simulated work is attributed. The share is counted as a dedup
// hit, not a cache hit — the design was never simulated before.
func (e *Engine) awaitShared(ctx context.Context, r Request, leader *entry) (Value, error) {
	instrumented := e.obs.Enabled() || e.metrics != nil
	var start time.Time
	if instrumented {
		start = time.Now()
	}
	select {
	case <-leader.done:
	case <-ctx.Done():
		return Value{}, ctx.Err()
	}
	if leader.err != nil {
		return Value{}, leader.err
	}
	// The leader validated only its own architecture; a same-timing
	// follower can still be structurally infeasible (port bounds are
	// not part of the timing signature).
	if err := r.Conn.Validate(); err != nil {
		return Value{}, err
	}
	v := leader.val
	v.Cost = r.Mem.Gates() + r.Conn.Gates()
	v.Work = 0
	v.Hit = false
	e.mu.Lock()
	e.stats.BatchDedupHits++
	e.mu.Unlock()
	e.m.batchDedup.Inc()
	if instrumented {
		e.m.evals.Inc()
		e.emitEval(r, v, time.Since(start))
	}
	return v, nil
}
