// Batched dispatch: Evaluate groups pending two-phase requests by
// behavior-trace fingerprint and re-times each group's connectivity
// architectures through sim.ReplayBatch — one pass over the shared
// event trace per chunk instead of one per candidate. Before anything
// is dispatched, a timing-signature dedup front-end collapses requests
// whose connectivity architectures resolve to identical timing
// parameters: followers share the leader's replay result and only
// recompute their own (closed-form) gate cost.
//
// The remaining leaders of each group are then organized into a
// minimum-spanning delta tree over per-channel timing-signature
// distance (the number of channels whose timing differs between two
// candidates). Nodes close to their tree parent — at most half their
// channels changed — become delta children replayed against the
// parent's replay residue, re-timing only the changed channels; the
// rest form the trunk and replay as ReplayBatch chunks that capture
// residues for their delta children. Delta nodes are dispatched in
// per-depth waves — every node of one residue generation, across all
// parents, shares a single sim.ReplayDeltaBatch walk against its own
// parent's residue — so delta replays keep the batch path's shared
// event decode even though most parents have only one or two
// children. Waves wait for their members' parent residues without
// holding a worker slot, so residue generations cannot deadlock the
// pool; a member whose parent residue is unavailable (batch fallback,
// latency overflow) is fully recomputed inside the same walk and
// still captures a residue for its own subtree. Tree depth is capped
// so wide groups stay parallel instead of serializing down a chain.
//
// Requests that cannot batch — Exact mode, unknown modes, or
// fingerprint groups below the minBatch threshold — spill to the
// per-request path; cache hits and single-flight duplicates wait
// without holding a worker slot. All of this preserves the engine's
// contracts: results in submission order, first real error wins over
// the cancellations it causes, failures are never memoized.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"memorex/internal/connect"
	"memorex/internal/sim"
)

// Batch tuning: fingerprint groups below minBatch leaders spill to the
// per-arch Replay path (the shared-decode setup isn't worth paying for
// one candidate); chunks are balanced across the worker pool and
// capped at maxBatch so per-batch replay state stays cache-resident.
// Delta trees are bounded by maxDeltaDepth residue generations (deeper
// nodes are promoted back to the trunk, keeping wide groups parallel
// instead of serial; each extra generation is a sequential wave of
// group walks, and measured wall clock on the paperbench runs worsens
// past two generations) and delta planning is skipped above
// maxDeltaPlan leaders, where the O(n²) spanning-tree build would
// dominate.
const (
	minBatch      = 2
	maxBatch      = 32
	maxDeltaDepth = 2
	maxDeltaPlan  = 2048
)

// Adaptive delta gate: residue capture and splice checks only pay off
// when enough events actually splice, which depends on how contended
// the workload keeps the shared channels — something no static plan
// can see. The engine therefore watches the realized spliced-event
// share across all delta-served evaluations: once at least
// deltaProbeMin members have been served, planning pauses while the
// share is below deltaMinReusePct, and every deltaProbeEvery'th
// eligible group still plans a delta tree so a friendlier workload
// (or exploration phase) can lift the share back over the threshold.
const (
	deltaProbeMin    = 64
	deltaMinReusePct = 40
	deltaProbeEvery  = 8
)

// deltaWorthwhile is the adaptive gate consulted once per
// delta-eligible fingerprint group. Planning happens sequentially
// before any of an Evaluate call's replays dispatch, and all stats
// from prior Evaluate calls are folded in before they return, so the
// gate's decisions — and every engine stat — are deterministic across
// runs and worker counts.
func (e *Engine) deltaWorthwhile() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.deltaPlanSeq++
	if e.stats.DeltaReplays+e.stats.DeltaFallbacks < deltaProbeMin {
		return true
	}
	total := e.stats.DeltaSplicedEvents + e.stats.DeltaRecomputedEvents
	if total == 0 || e.stats.DeltaSplicedEvents*100 >= total*deltaMinReusePct {
		return true
	}
	return e.deltaPlanSeq%deltaProbeEvery == 0
}

// deltaNode is one group leader in the delta-tree plan. Every node's
// done channel is closed exactly once — by the chunk goroutine that
// replayed it (trunk) or by its own delta goroutine — after rsd is
// populated (nil when no residue could be captured); delta children
// wait on their parent's done before taking a worker slot.
type deltaNode struct {
	idx      int        // request index in the Evaluate batch
	parent   *deltaNode // nil for trunk nodes
	depth    int        // residue generations from the trunk (0 = trunk)
	children int
	done     chan struct{}
	rsd      *sim.Residue
}

// chunkSpan returns the chunk size for n group leaders on w workers:
// an even split across the pool, re-balanced under the maxBatch cap.
func chunkSpan(n, w int) int {
	size := (n + w - 1) / w
	if size > maxBatch {
		c := (n + maxBatch - 1) / maxBatch
		size = (n + c - 1) / c
	}
	if size < 1 {
		size = 1
	}
	return size
}

// Evaluate runs a batch of requests on the worker pool and returns the
// values in submission order. Two-phase requests sharing a behavior
// trace are dispatched as batched replays (see the package comment of
// this file); everything else takes the per-request path. On error the
// batch is cancelled and the first error (in submission order) is
// returned; ctx cancellation stops the batch between evaluations.
func (e *Engine) Evaluate(ctx context.Context, reqs []Request) ([]Value, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Value, len(reqs))
	errs := make([]error, len(reqs))
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Validate and fingerprint outside the lock, then claim memo
	// entries for the whole batch in one critical section. A request
	// whose key is already cached (or claimed by an earlier duplicate
	// in this very batch) becomes a waiter; the rest own their entry
	// and must publish it exactly once, success or failure.
	keys := make([]uint64, len(reqs))
	ents := make([]*entry, len(reqs))
	owned := make([]bool, len(reqs))
	invalid := false
	for i, r := range reqs {
		if r.Trace == nil || r.Mem == nil || r.Conn == nil {
			errs[i] = fmt.Errorf("engine: request missing trace, memory or connectivity architecture")
			invalid = true
			continue
		}
		keys[i] = e.key(r)
	}
	e.mu.Lock()
	for i, r := range reqs {
		if errs[i] != nil {
			continue
		}
		e.stats.Requests++
		if r.Phase != "" {
			e.phaseLocked(r.Phase).Requests++
		}
		if ent, ok := e.cache[keys[i]]; ok {
			ents[i] = ent
		} else {
			ent := &entry{done: make(chan struct{})}
			e.cache[keys[i]] = ent
			ents[i] = ent
			owned[i] = true
		}
	}
	e.mu.Unlock()
	if invalid {
		cancel() // abort the rest of the batch, like any failing member
	}

	// Group the owned two-phase requests by behavior fingerprint,
	// dedup identical timing signatures within each group, and chunk
	// the remaining leaders for batched replay.
	var singles []int
	var groupOrder []uint64
	groups := map[uint64][]int{}
	for i, r := range reqs {
		if errs[i] != nil || !owned[i] {
			continue
		}
		if r.Exact || (r.Mode != Sampled && r.Mode != Full) {
			singles = append(singles, i)
			continue
		}
		bk := e.behaviorKey(r)
		if _, ok := groups[bk]; !ok {
			groupOrder = append(groupOrder, bk)
		}
		groups[bk] = append(groups[bk], i)
	}
	type plannedChunk struct {
		idxs  []int        // request indices
		nodes []*deltaNode // aligned; nil = no residue needed
	}
	var chunks []plannedChunk
	var deltaWaves [][]*deltaNode // same fingerprint group, same depth
	var followers [][2]int        // {follower index, leader index}
	var spilled int64
	for _, bk := range groupOrder {
		var leaders []int
		sigSeen := map[uint64]int{}
		for _, i := range groups[bk] {
			sig := timingSignature(reqs[i].Conn)
			if l, ok := sigSeen[sig]; ok {
				followers = append(followers, [2]int{i, l})
				continue
			}
			sigSeen[sig] = i
			leaders = append(leaders, i)
		}
		if len(leaders) < minBatch {
			singles = append(singles, leaders...)
			spilled += int64(len(leaders))
			continue
		}
		trunk, trunkNodes, deltas := e.planDeltaTree(reqs, leaders)
		span := chunkSpan(len(trunk), e.workers)
		for lo := 0; lo < len(trunk); lo += span {
			hi := lo + span
			if hi > len(trunk) {
				hi = len(trunk)
			}
			chunks = append(chunks, plannedChunk{trunk[lo:hi], trunkNodes[lo:hi]})
		}
		// Delta nodes replay in per-depth waves: one wave holds every
		// node of one residue generation regardless of parent, so wide
		// but shallow trees keep full batch amortization instead of
		// fragmenting into per-parent walks (Gray-code neighborhoods
		// produce path-like trees whose parents have one or two
		// children each). Waves never span fingerprint groups — all
		// members of a wave share one behavior trace.
		byDepth := make([][]*deltaNode, maxDeltaDepth)
		for _, nd := range deltas {
			byDepth[nd.depth-1] = append(byDepth[nd.depth-1], nd)
		}
		for _, wave := range byDepth {
			wspan := chunkSpan(len(wave), e.workers)
			for lo := 0; lo < len(wave); lo += wspan {
				hi := lo + wspan
				if hi > len(wave) {
					hi = len(wave)
				}
				deltaWaves = append(deltaWaves, wave[lo:hi])
			}
		}
	}
	if spilled > 0 {
		e.mu.Lock()
		e.stats.BatchSpills += spilled
		e.mu.Unlock()
		e.m.batchSpills.Add(spilled)
	}

	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	fail := func(i int, err error) {
		errs[i] = err
		e.finishOwned(keys[i], ents[i], Value{}, err)
	}
	abort := func(err error) {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			cancel()
		}
	}

	// Cache waiters ride on the owning computation (possibly in a
	// sibling Evaluate call) without holding a worker slot.
	for i := range reqs {
		if errs[i] != nil || ents[i] == nil || owned[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := e.awaitHit(bctx, reqs[i], ents[i])
			if err != nil {
				errs[i] = err
				abort(err)
				return
			}
			out[i] = v
		}(i)
	}

	// Dedup followers share the leader's replay figures with their own
	// connectivity cost; they own a memo entry of their own, so later
	// requests for the same design hit the cache directly.
	for _, fl := range followers {
		wg.Add(1)
		go func(i, leader int) {
			defer wg.Done()
			v, err := e.awaitShared(bctx, reqs[i], ents[leader])
			if err != nil {
				fail(i, err)
				abort(err)
				return
			}
			e.finishOwned(keys[i], ents[i], v, nil)
			out[i] = v
		}(fl[0], fl[1])
	}

	// Per-request path: Exact requests and spilled leaders.
	for _, i := range singles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-bctx.Done():
				fail(i, bctx.Err())
				return
			}
			defer func() { <-sem }()
			// The sem send can win the select against an already
			// cancelled context; re-check before doing work.
			if err := bctx.Err(); err != nil {
				fail(i, err)
				return
			}
			v, err := e.computeOne(bctx, reqs[i])
			if err != nil {
				fail(i, err)
				abort(err)
				return
			}
			e.finishOwned(keys[i], ents[i], v, nil)
			out[i] = v
		}(i)
	}

	// Batched chunks: each occupies one worker slot and serves all its
	// members from a single trace pass, capturing residues for members
	// with delta children. Every trunk node's done channel is released
	// on every exit path — with a nil residue on failure — so waiting
	// delta children never hang.
	for _, chunk := range chunks {
		wg.Add(1)
		go func(chunk plannedChunk) {
			defer wg.Done()
			defer func() {
				for _, nd := range chunk.nodes {
					if nd != nil {
						close(nd.done)
					}
				}
			}()
			select {
			case sem <- struct{}{}:
			case <-bctx.Done():
				for _, i := range chunk.idxs {
					fail(i, bctx.Err())
				}
				return
			}
			defer func() { <-sem }()
			if err := bctx.Err(); err != nil {
				for _, i := range chunk.idxs {
					fail(i, err)
				}
				return
			}
			e.computeChunk(bctx, reqs, chunk.idxs, chunk.nodes, keys, ents, out, errs, abort)
		}(chunk)
	}

	// Delta waves: all same-depth delta nodes of one fingerprint group
	// share a single ReplayDeltaBatch walk against their respective
	// parents' residues. Each wave waits for every distinct parent's
	// residue WITHOUT holding a worker slot (so residue generations can
	// never deadlock the pool), then takes one slot for the whole walk.
	// A member whose parent produced no residue falls back to a full
	// recompute inside the same walk.
	for _, wave := range deltaWaves {
		wg.Add(1)
		go func(group []*deltaNode) {
			defer wg.Done()
			defer func() {
				for _, nd := range group {
					close(nd.done)
				}
			}()
			failAll := func(err error) {
				for _, nd := range group {
					fail(nd.idx, err)
				}
			}
			for _, nd := range group {
				select {
				case <-nd.parent.done:
				case <-bctx.Done():
					failAll(bctx.Err())
					return
				}
			}
			select {
			case sem <- struct{}{}:
			case <-bctx.Done():
				failAll(bctx.Err())
				return
			}
			defer func() { <-sem }()
			if err := bctx.Err(); err != nil {
				failAll(err)
				return
			}
			e.computeDeltaGroup(bctx, reqs, group, keys, ents, out, errs, abort)
		}(wave)
	}

	wg.Wait()
	// Prefer the first real failure over the cancellations it caused.
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// computeChunk replays one fingerprint-group chunk through
// sim.ReplayBatch: the behavior trace is resolved once (single-flight
// memoized across chunks) and every member's connectivity architecture
// is re-timed in the same trace pass, capturing replay residues for
// members whose delta-tree node has children (the caller publishes
// them by closing the nodes' done channels). A batch-level failure
// falls back to the per-request path so one poisoned member cannot
// take down its group-mates — its residues stay nil and the delta
// children degrade to full replays.
func (e *Engine) computeChunk(ctx context.Context, reqs []Request, chunk []int, nodes []*deltaNode, keys []uint64, ents []*entry, out []Value, errs []error, abort func(error)) {
	instrumented := e.obs.Enabled() || e.metrics != nil
	var start time.Time
	if instrumented {
		start = time.Now()
	}
	bt, err := e.behaviorTrace(ctx, reqs[chunk[0]])
	if err != nil {
		for _, i := range chunk {
			errs[i] = err
			e.finishOwned(keys[i], ents[i], Value{}, err)
		}
		abort(err)
		return
	}
	archs := make([]*connect.Arch, len(chunk))
	want := make([]bool, len(chunk))
	anyResidue := false
	for j, i := range chunk {
		archs[j] = reqs[i].Conn
		if nodes[j] != nil && nodes[j].children > 0 {
			want[j] = true
			anyResidue = true
		}
	}
	var results []*sim.Result
	var rerr error
	if anyResidue {
		var rsds []*sim.Residue
		results, rsds, rerr = sim.ReplayBatchResidue(bt, archs, want)
		for j := range chunk {
			if rerr == nil && want[j] {
				nodes[j].rsd = rsds[j]
			}
		}
	} else {
		results, rerr = sim.ReplayBatch(bt, archs)
	}
	if rerr != nil {
		for _, i := range chunk {
			v, err := e.computeOne(ctx, reqs[i])
			if err != nil {
				errs[i] = err
				e.finishOwned(keys[i], ents[i], Value{}, err)
				abort(err)
				continue
			}
			e.finishOwned(keys[i], ents[i], v, nil)
			out[i] = v
		}
		return
	}
	var wall, amort time.Duration
	if instrumented {
		wall = time.Since(start)
		amort = wall / time.Duration(len(chunk))
	}
	for j, i := range chunk {
		r := reqs[i]
		res := results[j]
		v := Value{
			Cost:      r.Mem.Gates() + r.Conn.Gates(),
			Latency:   res.AvgLatency(),
			Energy:    res.AvgEnergy(),
			Estimated: r.Mode == Sampled,
			Work:      res.Accesses,
		}
		e.m.schedIssues.Add(res.SchedIssues)
		e.m.schedConflicts.Add(res.SchedConflicts)
		e.recordSim(r, v)
		if instrumented {
			e.m.evals.Inc()
			e.m.sims.Inc()
			if r.Mode == Full {
				e.m.fullAcc.Add(v.Work)
				e.m.evalWallFull.Observe(float64(amort.Microseconds()))
			} else {
				e.m.sampledAcc.Add(v.Work)
				e.m.evalWallSampled.Observe(float64(amort.Microseconds()))
			}
			e.emitEval(r, v, amort)
		}
		e.finishOwned(keys[i], ents[i], v, nil)
		out[i] = v
	}
	e.mu.Lock()
	e.stats.BatchReplays++
	e.stats.BatchedEvals += int64(len(chunk))
	e.mu.Unlock()
	e.m.batches.Inc()
	e.m.batchSize.Observe(float64(len(chunk)))
	if instrumented {
		e.m.batchWall.Observe(float64(wall.Microseconds()))
	}
}

// awaitShared waits for a timing-identical leader's result and adapts
// it to this request: the replayed latency and energy transfer as-is,
// the gate cost is recomputed from this design's own components, and
// no simulated work is attributed. The share is counted as a dedup
// hit, not a cache hit — the design was never simulated before.
func (e *Engine) awaitShared(ctx context.Context, r Request, leader *entry) (Value, error) {
	instrumented := e.obs.Enabled() || e.metrics != nil
	var start time.Time
	if instrumented {
		start = time.Now()
	}
	select {
	case <-leader.done:
	case <-ctx.Done():
		return Value{}, ctx.Err()
	}
	if leader.err != nil {
		return Value{}, leader.err
	}
	// The leader validated only its own architecture; a same-timing
	// follower can still be structurally infeasible (port bounds are
	// not part of the timing signature).
	if err := r.Conn.Validate(); err != nil {
		return Value{}, err
	}
	v := leader.val
	v.Cost = r.Mem.Gates() + r.Conn.Gates()
	v.Work = 0
	v.Hit = false
	e.mu.Lock()
	e.stats.BatchDedupHits++
	e.mu.Unlock()
	e.m.batchDedup.Inc()
	if instrumented {
		e.m.evals.Inc()
		e.emitEval(r, v, time.Since(start))
	}
	return v, nil
}

// planDeltaTree organizes one fingerprint group's deduped leaders into
// a minimum-spanning delta tree over per-channel timing-signature
// distance (Prim's algorithm with deterministic index tie-breaks, so
// the plan — and therefore every stat — is identical across runs and
// worker counts). A leader whose tree parent differs in at most half
// the channels becomes a delta node replayed against the parent's
// residue; everything else (the root, far-away leaders, nodes past the
// depth cap, structurally odd candidates) stays on the trunk and
// replays through the batch path. Request.BaseConn hints break
// distance ties toward a parent from the same exploration
// neighborhood, where real reuse is most likely. Returns the trunk
// request indices, their aligned nodes (nil when no residue is
// needed), and the delta nodes.
func (e *Engine) planDeltaTree(reqs []Request, leaders []int) ([]int, []*deltaNode, []*deltaNode) {
	n := len(leaders)
	asTrunk := func() ([]int, []*deltaNode, []*deltaNode) {
		return leaders, make([]*deltaNode, n), nil
	}
	if n > maxDeltaPlan {
		return asTrunk()
	}
	if !e.deltaWorthwhile() {
		return asTrunk()
	}
	sigs := make([][]uint64, n)
	for j, i := range leaders {
		sigs[j] = sim.ChannelSignatures(reqs[i].Conn)
	}
	// A leader whose channel count disagrees with the root's cannot be
	// compared (it will fail replay validation later); it is kept at
	// infinite distance and lands on the trunk.
	nc := len(sigs[0])
	const inf = int(^uint(0) >> 1)
	dist := func(a, b int) int {
		if len(sigs[a]) != nc || len(sigs[b]) != nc {
			return inf
		}
		d := 0
		for c := range sigs[a] {
			if sigs[a][c] != sigs[b][c] {
				d++
			}
		}
		return d
	}
	sameBase := func(a, b int) bool {
		base := reqs[leaders[a]].BaseConn
		return base != nil && base == reqs[leaders[b]].BaseConn
	}

	// Prim from leader 0: order holds tree-addition order, so parents
	// always precede their children in it.
	best := make([]int, n)
	par := make([]int, n)
	inTree := make([]bool, n)
	order := make([]int, 1, n)
	par[0] = -1
	inTree[0] = true
	for j := 1; j < n; j++ {
		best[j] = dist(0, j)
		par[j] = 0
	}
	for len(order) < n {
		pick := -1
		for j := 1; j < n; j++ {
			if !inTree[j] && (pick == -1 || best[j] < best[pick]) {
				pick = j
			}
		}
		inTree[pick] = true
		order = append(order, pick)
		for j := 1; j < n; j++ {
			if inTree[j] {
				continue
			}
			if d := dist(pick, j); d < best[j] {
				best[j] = d
				par[j] = pick
			} else if d == best[j] && sameBase(j, pick) && !sameBase(j, par[j]) {
				par[j] = pick
			}
		}
	}

	// Classify in addition order: depth is known for every parent by
	// the time its children are visited.
	depth := make([]int, n)
	nodes := make([]*deltaNode, n)
	node := func(j int) *deltaNode {
		if nodes[j] == nil {
			nodes[j] = &deltaNode{idx: leaders[j], done: make(chan struct{})}
		}
		return nodes[j]
	}
	var trunk, trunkIdx []int
	var deltas []*deltaNode
	for _, j := range order {
		p := par[j]
		// Delta only when strictly less than half the channels changed:
		// at dist == nc/2 (e.g. one of two channels on a single-module
		// arch) the splice surface is too small to beat the batch
		// path's shared decode.
		if p >= 0 && best[j] < (nc+1)/2 && depth[p] < maxDeltaDepth {
			depth[j] = depth[p] + 1
			nd := node(j)
			nd.parent = node(p)
			nd.depth = depth[j]
			nd.parent.children++
			deltas = append(deltas, nd)
		} else {
			trunk = append(trunk, leaders[j])
			trunkIdx = append(trunkIdx, j)
		}
	}
	trunkNodes := make([]*deltaNode, len(trunk))
	for t, j := range trunkIdx {
		trunkNodes[t] = nodes[j] // nil when the trunk leader has no children
	}
	return trunk, trunkNodes, deltas
}

// computeDeltaGroup serves one delta wave — same-depth delta nodes of
// one fingerprint group — from a single sim.ReplayDeltaBatch walk,
// each member against its own parent's residue: bit-exact versus full
// replays, with the same accounting as computeChunk plus the
// engine/delta/* metrics. A member whose parent's residue is
// unavailable (nil: batch fallback, latency overflow) is fully
// recomputed inside the same walk and still captures a residue for
// its own subtree; a batch-level error falls back to per-member
// replays so one poisoned member cannot take down its wave-mates.
// Members served by any full-replay path count as delta fallbacks.
func (e *Engine) computeDeltaGroup(ctx context.Context, reqs []Request, group []*deltaNode, keys []uint64, ents []*entry, out []Value, errs []error, abort func(error)) {
	instrumented := e.obs.Enabled() || e.metrics != nil
	var start time.Time
	if instrumented {
		start = time.Now()
	}
	bt, err := e.behaviorTrace(ctx, reqs[group[0].idx])
	if err != nil {
		for _, nd := range group {
			errs[nd.idx] = err
			e.finishOwned(keys[nd.idx], ents[nd.idx], Value{}, err)
		}
		abort(err)
		return
	}
	bases := make([]*sim.Residue, len(group))
	archs := make([]*connect.Arch, len(group))
	want := make([]bool, len(group))
	for j, nd := range group {
		bases[j] = nd.parent.rsd
		archs[j] = reqs[nd.idx].Conn
		want[j] = nd.children > 0
	}

	// Resolve every member to (result, residue, fellBack); a member left
	// with a nil result failed and already carries its error.
	type member struct {
		res      *sim.Result
		rsd      *sim.Residue
		info     sim.DeltaInfo
		fellBack bool
	}
	members := make([]member, len(group))
	served := false
	if results, rsds, infos, rerr := sim.ReplayDeltaBatch(bt, bases, archs, want); rerr == nil {
		for j := range group {
			members[j] = member{res: results[j], rsd: rsds[j], info: *infos[j], fellBack: infos[j].Fallback}
		}
		served = true
	}
	// On error, the per-member recovery surfaces the broken candidate's
	// real error while still serving its wave-mates.
	if !served {
		for j, nd := range group {
			results, rsds, ferr := sim.ReplayBatchResidue(bt, archs[j:j+1], want[j:j+1])
			if ferr != nil {
				errs[nd.idx] = ferr
				e.finishOwned(keys[nd.idx], ents[nd.idx], Value{}, ferr)
				abort(ferr)
				continue
			}
			members[j] = member{res: results[0], rsd: rsds[0], fellBack: true}
			members[j].info.RecomputedEvents = int64(bt.NumEvents())
		}
	}

	var wall, amort time.Duration
	if instrumented {
		wall = time.Since(start)
		amort = wall / time.Duration(len(group))
	}
	var deltaReplays, deltaChannels, deltaFallbacks int64
	var deltaSpliced, deltaRecomputed int64
	for j, nd := range group {
		mo := &members[j]
		if mo.res == nil {
			continue // failed in the per-member recovery above
		}
		deltaSpliced += mo.info.SplicedEvents
		deltaRecomputed += mo.info.RecomputedEvents
		r := reqs[nd.idx]
		v := Value{
			Cost:      r.Mem.Gates() + r.Conn.Gates(),
			Latency:   mo.res.AvgLatency(),
			Energy:    mo.res.AvgEnergy(),
			Estimated: r.Mode == Sampled,
			Work:      mo.res.Accesses,
		}
		e.m.schedIssues.Add(mo.res.SchedIssues)
		e.m.schedConflicts.Add(mo.res.SchedConflicts)
		e.recordSim(r, v)
		if mo.fellBack {
			deltaFallbacks++
			e.m.deltaFallbacks.Inc()
			e.m.deltaReuse.Observe(0)
		} else {
			deltaReplays++
			deltaChannels += int64(mo.info.ChannelsReused)
			e.m.deltaReplays.Inc()
			e.m.deltaChannels.Add(int64(mo.info.ChannelsReused))
			if total := mo.info.SplicedEvents + mo.info.RecomputedEvents; total > 0 {
				e.m.deltaReuse.Observe(100 * float64(mo.info.SplicedEvents) / float64(total))
			}
		}
		if instrumented {
			e.m.evals.Inc()
			e.m.sims.Inc()
			if r.Mode == Full {
				e.m.fullAcc.Add(v.Work)
				e.m.evalWallFull.Observe(float64(amort.Microseconds()))
			} else {
				e.m.sampledAcc.Add(v.Work)
				e.m.evalWallSampled.Observe(float64(amort.Microseconds()))
			}
			e.emitEval(r, v, amort)
		}
		nd.rsd = mo.rsd
		e.finishOwned(keys[nd.idx], ents[nd.idx], v, nil)
		out[nd.idx] = v
	}
	e.mu.Lock()
	e.stats.DeltaReplays += deltaReplays
	e.stats.DeltaChannelsReused += deltaChannels
	e.stats.DeltaFallbacks += deltaFallbacks
	e.stats.DeltaSplicedEvents += deltaSpliced
	e.stats.DeltaRecomputedEvents += deltaRecomputed
	e.mu.Unlock()
}
