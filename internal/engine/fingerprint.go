package engine

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"sort"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/sampling"
	"memorex/internal/sim"
	"memorex/internal/trace"
)

// Fingerprinting: the memoization key of a request is a stable 64-bit
// FNV-1a digest over the structural content of the trace, the memory
// architecture, the connectivity architecture and the evaluation mode.
// Two architectures built independently but describing the same design
// (same modules, routes, DRAM timing, clustering and component
// assignment) hash identically, so equivalent designs re-created by
// sibling strategies or experiments hit the cache. Pointer identity is
// used only as a secondary cache to avoid re-hashing the same trace or
// architecture object.

// key computes the memoization key of a request.
func (e *Engine) key(r Request) uint64 {
	h := fnv.New64a()
	writeU64(h, e.traceFingerprint(r.Trace))
	writeU64(h, e.memFingerprint(r.Mem))
	writeU64(h, connFingerprint(r.Conn))
	writeU64(h, uint64(r.Mode))
	writeBool(h, r.Exact)
	if r.Mode == Sampled {
		writeU64(h, uint64(r.Sampling.OnWindow))
		writeU64(h, uint64(r.Sampling.OffRatio))
	}
	return h.Sum64()
}

// behaviorKey computes the memoization key of a Phase A behavior
// capture: like key, but without the connectivity architecture — that
// independence is the whole point of the two-phase split.
func (e *Engine) behaviorKey(r Request) uint64 {
	return combineBehavior(e.traceFingerprint(r.Trace), e.memFingerprint(r.Mem), r.Mode, r.Sampling)
}

// BehaviorFingerprint computes the content-based digest of a Phase A
// behavior capture — the same value the engine keys its in-memory memo
// and the on-disk behavior-trace cache by. It hashes the full access
// stream, the structural memory architecture, the evaluation mode and
// (in Sampled mode) the sampling plan parameters, so the fingerprint
// is stable across processes and machine restarts. Exported for tools
// (e.g. cmd/simulate) that address the btcache directly without an
// Engine.
func BehaviorFingerprint(t *trace.Trace, a *mem.Architecture, mode Mode, s sampling.Config) uint64 {
	return combineBehavior(hashTrace(t), hashMem(a), mode, s)
}

// combineBehavior folds the component digests into the behavior key.
func combineBehavior(traceFP, memFP uint64, mode Mode, s sampling.Config) uint64 {
	h := fnv.New64a()
	writeU64(h, traceFP)
	writeU64(h, memFP)
	writeU64(h, uint64(mode))
	if mode == Sampled {
		writeU64(h, uint64(s.OnWindow))
		writeU64(h, uint64(s.OffRatio))
	}
	return h.Sum64()
}

// traceFingerprint hashes a trace via hashTrace, memoized per trace
// object (traces are immutable once built).
func (e *Engine) traceFingerprint(t *trace.Trace) uint64 {
	e.mu.Lock()
	if fp, ok := e.traceFP[t]; ok {
		e.mu.Unlock()
		return fp
	}
	e.mu.Unlock()

	fp := hashTrace(t)

	e.mu.Lock()
	e.traceFP[t] = fp
	e.mu.Unlock()
	return fp
}

// hashTrace digests the full access stream and data-structure registry
// of a trace.
func hashTrace(t *trace.Trace) uint64 {
	h := fnv.New64a()
	io.WriteString(h, t.Name)
	writeU64(h, uint64(len(t.Accesses)))
	writeU64(h, uint64(len(t.DS)))
	for _, d := range t.DS {
		io.WriteString(h, d.Name)
		writeU64(h, uint64(d.Base))
		writeU64(h, uint64(d.Size))
		writeU64(h, uint64(d.Elem))
	}
	// Hash accesses in 8-byte records through a chunk buffer: the hot
	// loop avoids one Write call per access.
	var buf [8 << 10]byte
	n := 0
	for _, a := range t.Accesses {
		if n == len(buf) {
			h.Write(buf[:])
			n = 0
		}
		binary.LittleEndian.PutUint32(buf[n:], a.Addr)
		binary.LittleEndian.PutUint16(buf[n+4:], uint16(a.DS))
		buf[n+6] = byte(a.Kind)
		buf[n+7] = a.Size
		n += 8
	}
	h.Write(buf[:n])
	return h.Sum64()
}

// memFingerprint hashes an architecture via hashMem, memoized per
// architecture object.
func (e *Engine) memFingerprint(a *mem.Architecture) uint64 {
	e.mu.Lock()
	if fp, ok := e.memFP[a]; ok {
		e.mu.Unlock()
		return fp
	}
	e.mu.Unlock()

	fp := hashMem(a)

	e.mu.Lock()
	e.memFP[a] = fp
	e.mu.Unlock()
	return fp
}

// hashMem digests a memory-modules architecture structurally: two
// architectures built independently but describing the same design
// hash identically.
func hashMem(a *mem.Architecture) uint64 {
	h := fnv.New64a()
	writeU64(h, uint64(len(a.Modules)))
	for _, m := range a.Modules {
		writeModule(h, m)
	}
	if a.L2 != nil {
		io.WriteString(h, "l2")
		writeModule(h, a.L2)
	}
	if a.DRAM != nil {
		writeU64(h, uint64(a.DRAM.RowHitCycles))
		writeU64(h, uint64(a.DRAM.RowMissCycles))
		writeU64(h, uint64(a.DRAM.RowBytes))
		writeU64(h, uint64(a.DRAM.Banks))
		writeU64(h, uint64(a.DRAM.Policy))
	}
	writeU64(h, uint64(int64(a.Default)))
	ids := make([]int, 0, len(a.Route))
	for ds := range a.Route {
		ids = append(ids, int(ds))
	}
	sort.Ints(ids)
	for _, ds := range ids {
		writeU64(h, uint64(ds))
		writeU64(h, uint64(int64(a.Route[trace.DSID(ds)])))
	}
	return h.Sum64()
}

// writeModule hashes one memory module. Module names encode the library
// configuration (e.g. "cache8k-2w-32b", "stream4x32b", "cache2k-1w-32b+v8");
// gates, energy and latency guard against name collisions.
func writeModule(h io.Writer, m mem.Module) {
	io.WriteString(h, m.Name())
	writeU64(h, uint64(m.Kind()))
	writeU64(h, uint64(m.Latency()))
	writeF64(h, m.Gates())
	writeF64(h, m.Energy())
}

// connFingerprint hashes a connectivity architecture: the channel list,
// the clustering partition and the component assignment.
func connFingerprint(c *connect.Arch) uint64 {
	h := fnv.New64a()
	writeU64(h, uint64(len(c.Channels)))
	for _, ch := range c.Channels {
		writeU64(h, uint64(ch.Kind))
		writeU64(h, uint64(ch.Module))
		writeBool(h, ch.OffChip)
	}
	writeU64(h, uint64(len(c.Clusters)))
	for i, cl := range c.Clusters {
		writeU64(h, uint64(len(cl)))
		for _, ch := range cl {
			writeU64(h, uint64(ch))
		}
		comp := c.Assign[i]
		io.WriteString(h, comp.Name)
		writeU64(h, uint64(comp.Class))
		writeU64(h, uint64(comp.WidthBytes))
		writeU64(h, uint64(comp.ArbCycles))
		writeU64(h, uint64(comp.BeatCycles))
		writeBool(h, comp.Pipelined)
		writeBool(h, comp.Split)
		writeU64(h, uint64(comp.MaxPorts))
		writeBool(h, comp.OnChip)
		writeF64(h, comp.EnergyPerByte)
		writeF64(h, comp.BaseGates)
		writeF64(h, comp.GatesPerPort)
		writeF64(h, comp.WireGatesPerPort)
	}
	return h.Sum64()
}

// timingSignature hashes only what the connectivity replay can see of
// an architecture: per channel, the owning cluster's component timing
// and energy parameters plus the cluster's sorted membership —
// sim.ChannelSignatures, folded in channel-index order. Names, classes,
// port bounds and gate counts are excluded — two architectures with
// equal signatures replay to bit-identical latency and energy figures
// and differ at most in gate cost, which is closed-form. The
// per-channel distribution is itself the canonicalization (cluster
// order and in-cluster channel order never reach the hash), and it is
// what makes timing distance computable per channel for the delta-tree
// planner: archs at signature distance d differ in exactly d channels'
// timing.
func timingSignature(c *connect.Arch) uint64 {
	h := fnv.New64a()
	writeU64(h, uint64(len(c.Channels)))
	for _, sig := range sim.ChannelSignatures(c) {
		writeU64(h, sig)
	}
	return h.Sum64()
}

func writeU64(w io.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeF64(w io.Writer, v float64) {
	writeU64(w, uint64(int64(v*1e6)))
}

func writeBool(w io.Writer, v bool) {
	if v {
		writeU64(w, 1)
	} else {
		writeU64(w, 0)
	}
}
