// Package plot renders 2-D scatter plots as ASCII, so that the paper's
// figures can be reproduced as actual figures in a terminal and in
// EXPERIMENTS.md. It supports multiple series with distinct markers,
// axis labels, and linear or logarithmic axes.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one set of points drawn with one marker.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Plot is a 2-D scatter plot under construction.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot-area dimensions in characters
	// (default 64x20).
	Width, Height int
	// LogX / LogY select logarithmic axes.
	LogX, LogY bool
	series     []Series
}

// New returns an empty plot.
func New(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 20}
}

// Add appends a series. X and Y must have equal length.
func (p *Plot) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
	}
	if s.Marker == 0 {
		s.Marker = '+'
	}
	p.series = append(p.series, s)
	return nil
}

// bounds returns the data range across all series.
func (p *Plot) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.X {
			if p.LogX && s.X[i] <= 0 || p.LogY && s.Y[i] <= 0 {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	ok = !math.IsInf(xmin, 1)
	return
}

func (p *Plot) scale(v, lo, hi float64, log bool, steps int) int {
	if log {
		v, lo, hi = math.Log10(v), math.Log10(lo), math.Log10(hi)
	}
	if hi == lo {
		return steps / 2
	}
	i := int(math.Round((v - lo) / (hi - lo) * float64(steps-1)))
	if i < 0 {
		i = 0
	}
	if i >= steps {
		i = steps - 1
	}
	return i
}

// Render draws the plot.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w < 16 {
		w = 16
	}
	if h < 6 {
		h = 6
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	xmin, xmax, ymin, ymax, ok := p.bounds()
	if !ok {
		b.WriteString("(no data)\n")
		return b.String()
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range p.series {
		for i := range s.X {
			if p.LogX && s.X[i] <= 0 || p.LogY && s.Y[i] <= 0 {
				continue
			}
			col := p.scale(s.X[i], xmin, xmax, p.LogX, w)
			row := h - 1 - p.scale(s.Y[i], ymin, ymax, p.LogY, h)
			grid[row][col] = s.Marker
		}
	}
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := range grid {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yTop)
		case h - 1:
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", w))
	xl := fmt.Sprintf("%.4g", xmin)
	xr := fmt.Sprintf("%.4g", xmax)
	pad := w - len(xl) - len(xr)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", margin), xl, strings.Repeat(" ", pad), xr)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s", strings.Repeat(" ", margin), p.XLabel, p.YLabel)
		if p.LogX || p.LogY {
			b.WriteString(" (log")
			if p.LogX {
				b.WriteString(" x")
			}
			if p.LogY {
				b.WriteString(" y")
			}
			b.WriteString(")")
		}
		b.WriteString("\n")
	}
	if len(p.series) > 1 {
		b.WriteString(strings.Repeat(" ", margin) + "  legend:")
		for _, s := range p.series {
			fmt.Fprintf(&b, " %c=%s", s.Marker, s.Name)
		}
		b.WriteString("\n")
	}
	return b.String()
}
