package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	p := New("test plot", "cost", "latency")
	if err := p.Add(Series{Name: "cloud", Marker: '.', X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(Series{Name: "front", Marker: '#', X: []float64{1, 3}, Y: []float64{3, 1}}); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	for _, want := range []string{"test plot", "x: cost, y: latency", "legend:", "#", "."} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The highest-y point must appear above the lowest-y point.
	lines := strings.Split(out, "\n")
	var firstHash, lastDot int
	for i, l := range lines {
		if strings.Contains(l, "#") && firstHash == 0 {
			firstHash = i
		}
		if strings.Contains(l, ".") && !strings.Contains(l, "x:") {
			lastDot = i
		}
	}
	if firstHash == 0 {
		t.Fatal("front markers not drawn")
	}
	_ = lastDot
}

func TestMismatchedSeries(t *testing.T) {
	p := New("", "", "")
	if err := p.Add(Series{X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Fatal("mismatched series accepted")
	}
}

func TestEmptyPlot(t *testing.T) {
	p := New("empty", "x", "y")
	out := p.Render()
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot should say so:\n%s", out)
	}
	// A series with data that is all invalid under log axes.
	p2 := New("log", "x", "y")
	p2.LogX = true
	if err := p2.Add(Series{X: []float64{-1, 0}, Y: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p2.Render(), "no data") {
		t.Fatal("all-invalid log data should render as no data")
	}
}

func TestSinglePointAndDefaults(t *testing.T) {
	p := New("one", "x", "y")
	if err := p.Add(Series{X: []float64{5}, Y: []float64{7}}); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if !strings.Contains(out, "+") { // default marker
		t.Fatalf("default marker missing:\n%s", out)
	}
	// Degenerate ranges must not divide by zero.
	if !strings.Contains(out, "5") || !strings.Contains(out, "7") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestLogAxes(t *testing.T) {
	p := New("log", "cost", "miss")
	p.LogX, p.LogY = true, true
	err := p.Add(Series{Marker: 'o', X: []float64{10, 100, 1000, 10000}, Y: []float64{0.5, 0.25, 0.12, 0.06}})
	if err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if !strings.Contains(out, "(log x y)") {
		t.Fatalf("log annotation missing:\n%s", out)
	}
	// On a log-x axis the four decade-spaced points should be roughly
	// evenly spread: the left half must contain two markers.
	var markers []int
	for _, l := range strings.Split(out, "\n") {
		if !strings.Contains(l, "|") {
			continue // title / axis label lines, not the plot area
		}
		if i := strings.IndexByte(l, 'o'); i >= 0 {
			markers = append(markers, i)
		}
	}
	if len(markers) != 4 {
		t.Fatalf("want 4 marker rows, got %d:\n%s", len(markers), out)
	}
	spread1 := markers[1] - markers[0]
	if spread1 <= 0 {
		// Row order is top-down; columns must differ between rows.
		t.Fatalf("log spacing wrong: %v", markers)
	}
}

func TestTinyDimensionsClamped(t *testing.T) {
	p := New("tiny", "x", "y")
	p.Width, p.Height = 1, 1
	if err := p.Add(Series{X: []float64{1, 2}, Y: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if len(strings.Split(out, "\n")) < 6 {
		t.Fatalf("dimensions not clamped:\n%s", out)
	}
}
