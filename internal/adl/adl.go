// Package adl implements a small architecture description language for
// MemorEx systems, in the spirit of the EXPRESSION ADL that the paper's
// environment (and its SIMPRESS memory models) is generated from: a
// textual description of the memory modules, the data-structure mapping,
// and the connectivity architecture, parsed into the simulator's
// mem.Architecture and connect.Arch.
//
// Syntax (line oriented, '#' comments):
//
//	memory {
//	  cache  l1   size=8192 line=32 assoc=2 policy=wb [victim=4]
//	  sram   sp   size=1024 map=work
//	  stream sb   line=32 depth=4 map=speech
//	  lldma  ld   buf=256 node=8 pred=0.42 map=heap
//	  l2     l2   size=65536 line=32 assoc=4    # optional shared L2
//	  dram   main rowhit=8 rowmiss=20 rowbytes=2048 banks=4 policy=open
//	  default l1               # or: default dram
//	}
//	connect {
//	  link b1 comp=ahb32 channels=cpu:l1,cpu:sp,cpu:sb
//	  link b2 comp=off32 channels=l1:dram,sb:dram
//	  link b3 comp=off16 channels=ld:dram
//	}
//
// Data-structure names in map= are resolved against the trace the
// architecture will run; component names in comp= against a
// connectivity library.
package adl

import (
	"fmt"
	"strconv"
	"strings"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/trace"
)

// System is the parse result.
type System struct {
	Mem  *mem.Architecture
	Conn *connect.Arch
}

// parser state.
type parser struct {
	lines []string
	pos   int

	tr  *trace.Trace
	lib []connect.Component

	moduleIdx map[string]int // module name -> index in arch.Modules
	arch      *mem.Architecture
	defaulted bool
	dramSeen  bool
}

// Parse builds a System from an ADL description. The trace provides the
// data-structure names for map= clauses; the library provides the
// connectivity components for comp= clauses.
func Parse(src string, tr *trace.Trace, lib []connect.Component) (*System, error) {
	p := &parser{
		tr:        tr,
		lib:       lib,
		moduleIdx: map[string]int{},
		arch: &mem.Architecture{
			Name:  "adl",
			Route: map[trace.DSID]int{},
		},
	}
	for _, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			p.lines = append(p.lines, line)
		}
	}
	var connLines []string
	for p.pos < len(p.lines) {
		switch line := p.next(); {
		case line == "memory {":
			if err := p.parseMemory(); err != nil {
				return nil, err
			}
		case line == "connect {":
			for p.pos < len(p.lines) {
				l := p.next()
				if l == "}" {
					break
				}
				connLines = append(connLines, l)
			}
		default:
			return nil, fmt.Errorf("adl: unexpected %q (want \"memory {\" or \"connect {\")", line)
		}
	}
	if !p.dramSeen {
		return nil, fmt.Errorf("adl: memory section must declare a dram")
	}
	if !p.defaulted {
		return nil, fmt.Errorf("adl: memory section must declare a default route")
	}
	if err := p.arch.Validate(); err != nil {
		return nil, err
	}
	conn, err := p.buildConnect(connLines)
	if err != nil {
		return nil, err
	}
	return &System{Mem: p.arch, Conn: conn}, nil
}

func (p *parser) next() string {
	l := p.lines[p.pos]
	p.pos++
	return l
}

// fields parses "key=value" tokens after the name.
func fields(tokens []string) (map[string]string, error) {
	out := map[string]string{}
	for _, tok := range tokens {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("expected key=value, got %q", tok)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("duplicate attribute %q", k)
		}
		out[k] = v
	}
	return out, nil
}

func intAttr(attrs map[string]string, key string) (int, error) {
	v, ok := attrs[key]
	if !ok {
		return 0, fmt.Errorf("missing attribute %q", key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("attribute %s: %v", key, err)
	}
	return n, nil
}

func floatAttr(attrs map[string]string, key string) (float64, error) {
	v, ok := attrs[key]
	if !ok {
		return 0, fmt.Errorf("missing attribute %q", key)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("attribute %s: %v", key, err)
	}
	return f, nil
}

func (p *parser) parseMemory() error {
	for p.pos < len(p.lines) {
		line := p.next()
		if line == "}" {
			return nil
		}
		tokens := strings.Fields(line)
		if len(tokens) < 2 {
			return fmt.Errorf("adl: malformed memory line %q", line)
		}
		kind, name := tokens[0], tokens[1]
		if kind == "default" {
			if err := p.setDefault(name); err != nil {
				return err
			}
			continue
		}
		attrs, err := fields(tokens[2:])
		if err != nil {
			return fmt.Errorf("adl: %s %s: %v", kind, name, err)
		}
		if err := p.addModule(kind, name, attrs); err != nil {
			return fmt.Errorf("adl: %s %s: %v", kind, name, err)
		}
	}
	return fmt.Errorf("adl: unterminated memory section")
}

func (p *parser) setDefault(name string) error {
	if p.defaulted {
		return fmt.Errorf("adl: duplicate default route")
	}
	p.defaulted = true
	if name == "dram" {
		p.arch.Default = mem.DirectDRAM
		return nil
	}
	idx, ok := p.moduleIdx[name]
	if !ok {
		return fmt.Errorf("adl: default route to unknown module %q", name)
	}
	p.arch.Default = idx
	return nil
}

func (p *parser) addModule(kind, name string, attrs map[string]string) error {
	if _, dup := p.moduleIdx[name]; dup || name == "cpu" || name == "dram" {
		return fmt.Errorf("module name %q already taken", name)
	}
	var m mem.Module
	switch kind {
	case "cache":
		size, err := intAttr(attrs, "size")
		if err != nil {
			return err
		}
		line, err := intAttr(attrs, "line")
		if err != nil {
			return err
		}
		assoc, err := intAttr(attrs, "assoc")
		if err != nil {
			return err
		}
		if victim, ok := attrs["victim"]; ok {
			lines, err := strconv.Atoi(victim)
			if err != nil {
				return fmt.Errorf("attribute victim: %v", err)
			}
			vc, err := mem.NewVictimCache(size, line, assoc, lines)
			if err != nil {
				return err
			}
			m = vc
		} else if attrs["policy"] == "wt" {
			c, err := mem.NewWriteThroughCache(size, line, assoc)
			if err != nil {
				return err
			}
			m = c
		} else {
			c, err := mem.NewCache(size, line, assoc)
			if err != nil {
				return err
			}
			m = c
		}
	case "sram":
		size, err := intAttr(attrs, "size")
		if err != nil {
			return err
		}
		s, err := mem.NewSRAM(size)
		if err != nil {
			return err
		}
		m = s
	case "stream":
		line, err := intAttr(attrs, "line")
		if err != nil {
			return err
		}
		depth, err := intAttr(attrs, "depth")
		if err != nil {
			return err
		}
		s, err := mem.NewStreamBuffer(line, depth)
		if err != nil {
			return err
		}
		m = s
	case "lldma":
		buf, err := intAttr(attrs, "buf")
		if err != nil {
			return err
		}
		node, err := intAttr(attrs, "node")
		if err != nil {
			return err
		}
		pred, err := floatAttr(attrs, "pred")
		if err != nil {
			return err
		}
		d, err := mem.NewSelfIndirectDMA(buf, node, pred)
		if err != nil {
			return err
		}
		m = d
	case "l2":
		if p.arch.L2 != nil {
			return fmt.Errorf("duplicate l2")
		}
		size, err := intAttr(attrs, "size")
		if err != nil {
			return err
		}
		line, err := intAttr(attrs, "line")
		if err != nil {
			return err
		}
		assoc, err := intAttr(attrs, "assoc")
		if err != nil {
			return err
		}
		c, err := mem.NewCache(size, line, assoc)
		if err != nil {
			return err
		}
		p.arch.L2 = c
		return nil
	case "dram":
		if p.dramSeen {
			return fmt.Errorf("duplicate dram")
		}
		p.dramSeen = true
		rowHit, err := intAttr(attrs, "rowhit")
		if err != nil {
			return err
		}
		rowMiss, err := intAttr(attrs, "rowmiss")
		if err != nil {
			return err
		}
		rowBytes, err := intAttr(attrs, "rowbytes")
		if err != nil {
			return err
		}
		banks, err := intAttr(attrs, "banks")
		if err != nil {
			return err
		}
		d, err := mem.NewDRAM(rowHit, rowMiss, rowBytes, banks)
		if err != nil {
			return err
		}
		if attrs["policy"] == "closed" {
			d.Policy = mem.ClosedRow
		}
		p.arch.DRAM = d
		return nil
	default:
		return fmt.Errorf("unknown module kind %q", kind)
	}
	p.arch.Modules = append(p.arch.Modules, m)
	p.moduleIdx[name] = len(p.arch.Modules) - 1
	if ds, ok := attrs["map"]; ok {
		if err := p.mapDS(ds, len(p.arch.Modules)-1); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) mapDS(names string, idx int) error {
	for _, name := range strings.Split(names, ",") {
		found := false
		for i, d := range p.tr.DS {
			if d.Name == name && i > 0 {
				id := trace.DSID(i)
				if _, dup := p.arch.Route[id]; dup {
					return fmt.Errorf("data structure %q mapped twice", name)
				}
				p.arch.Route[id] = idx
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("trace has no data structure %q", name)
		}
	}
	return nil
}

// buildConnect resolves the connect section against the memory
// architecture's channel list.
func (p *parser) buildConnect(lines []string) (*connect.Arch, error) {
	channels := p.arch.Channels()
	chanIdx := map[string]int{}
	for i, ch := range channels {
		chanIdx[p.channelKey(ch)] = i
	}
	conn := &connect.Arch{Channels: channels}
	covered := map[int]bool{}
	for _, line := range lines {
		tokens := strings.Fields(line)
		if len(tokens) < 3 || tokens[0] != "link" {
			return nil, fmt.Errorf("adl: malformed connect line %q", line)
		}
		attrs, err := fields(tokens[2:])
		if err != nil {
			return nil, fmt.Errorf("adl: link %s: %v", tokens[1], err)
		}
		compName, ok := attrs["comp"]
		if !ok {
			return nil, fmt.Errorf("adl: link %s: missing comp=", tokens[1])
		}
		comp, err := connect.ByName(p.lib, compName)
		if err != nil {
			return nil, err
		}
		chans, ok := attrs["channels"]
		if !ok {
			return nil, fmt.Errorf("adl: link %s: missing channels=", tokens[1])
		}
		var cluster []int
		for _, c := range strings.Split(chans, ",") {
			idx, ok := chanIdx[c]
			if !ok {
				return nil, fmt.Errorf("adl: link %s: unknown channel %q (architecture has %v)",
					tokens[1], c, p.channelKeys(channels))
			}
			if covered[idx] {
				return nil, fmt.Errorf("adl: channel %q assigned twice", c)
			}
			covered[idx] = true
			cluster = append(cluster, idx)
		}
		conn.Clusters = append(conn.Clusters, cluster)
		conn.Assign = append(conn.Assign, comp)
	}
	if err := conn.Validate(); err != nil {
		return nil, err
	}
	return conn, nil
}

// channelKey renders a channel as the ADL's "cpu:<mod>" / "<mod>:dram".
func (p *parser) channelKey(ch mem.Channel) string {
	name := func(idx int) string {
		for n, i := range p.moduleIdx {
			if i == idx {
				return n
			}
		}
		return "?"
	}
	switch ch.Kind {
	case mem.ChanCPUModule:
		return "cpu:" + name(ch.Module)
	case mem.ChanModuleDRAM:
		return name(ch.Module) + ":dram"
	case mem.ChanCPUDRAM:
		return "cpu:dram"
	case mem.ChanModuleL2:
		return name(ch.Module) + ":l2"
	case mem.ChanL2DRAM:
		return "l2:dram"
	default:
		return "?"
	}
}

func (p *parser) channelKeys(channels []mem.Channel) []string {
	out := make([]string, len(channels))
	for i, ch := range channels {
		out[i] = p.channelKey(ch)
	}
	return out
}
