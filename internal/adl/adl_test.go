package adl

import (
	"strings"
	"testing"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/sim"
	"memorex/internal/workload"
)

const vocoderSystem = `
# A hand-written vocoder platform.
memory {
  cache  l1 size=4096 line=32 assoc=2 policy=wb
  sram   sp size=1024 map=work
  stream sb line=32 depth=4 map=speech
  dram   main rowhit=8 rowmiss=20 rowbytes=2048 banks=4 policy=open
  default l1
}
connect {
  link cpu_bus comp=ahb32 channels=cpu:l1,cpu:sp,cpu:sb
  link ext     comp=off32 channels=l1:dram,sb:dram
}
`

func TestParseFullSystem(t *testing.T) {
	tr := workload.Vocoder{}.Generate(workload.DefaultConfig())
	sys, err := Parse(vocoderSystem, tr, connect.Library())
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Mem.Modules) != 3 {
		t.Fatalf("want 3 modules, got %d", len(sys.Mem.Modules))
	}
	if sys.Mem.DRAM == nil || sys.Mem.DRAM.Policy != mem.OpenRow {
		t.Fatal("dram missing or wrong policy")
	}
	if len(sys.Mem.Route) != 2 {
		t.Fatalf("want 2 mapped structures, got %d", len(sys.Mem.Route))
	}
	if len(sys.Conn.Clusters) != 2 {
		t.Fatalf("want 2 links, got %d", len(sys.Conn.Clusters))
	}
	// The parsed system must actually simulate.
	s, err := sim.New(sys.Mem, sys.Conn)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(tr.Slice(0, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	if r.MissRatio() > 0.05 {
		t.Fatalf("parsed vocoder platform misses too much: %.4f", r.MissRatio())
	}
}

func TestParseModuleVariants(t *testing.T) {
	tr := workload.Li{}.Generate(workload.Config{Scale: 1, Seed: 1})
	src := `
memory {
  cache  l1 size=2048 line=32 assoc=1 policy=wt
  cache  l2 size=4096 line=32 assoc=2 victim=4
  lldma  ld buf=256 node=8 pred=0.42 map=heap
  dram   m rowhit=8 rowmiss=20 rowbytes=1024 banks=2 policy=closed
  default l1
}
connect {
  link a comp=mux32 channels=cpu:l1,cpu:l2,cpu:ld
  link b comp=off16 channels=l1:dram,l2:dram,ld:dram
}
`
	sys, err := Parse(src, tr, connect.Library())
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := sys.Mem.Modules[0].(*mem.Cache); !ok || c.Policy != mem.WriteThrough {
		t.Fatal("write-through cache not parsed")
	}
	if _, ok := sys.Mem.Modules[1].(*mem.VictimCache); !ok {
		t.Fatal("victim cache not parsed")
	}
	if sys.Mem.DRAM.Policy != mem.ClosedRow {
		t.Fatal("closed-row policy not parsed")
	}
}

func TestParseDefaultDRAM(t *testing.T) {
	tr := workload.Synthetic(workload.SynStream, 100, 1024, 1)
	src := `
memory {
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default dram
}
connect {
  link x comp=off32 channels=cpu:dram
}
`
	sys, err := Parse(src, tr, connect.Library())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Mem.Default != mem.DirectDRAM {
		t.Fatal("default dram not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	tr := workload.Synthetic(workload.SynStream, 100, 1024, 1)
	lib := connect.Library()
	cases := map[string]string{
		"no dram": `
memory {
  cache l1 size=1024 line=32 assoc=1
  default l1
}
`,
		"no default": `
memory {
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
}
`,
		"unknown kind": `
memory {
  flash f size=100
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default dram
}
`,
		"bad attr": `
memory {
  cache l1 size=big line=32 assoc=1
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default l1
}
`,
		"dup module": `
memory {
  cache l1 size=1024 line=32 assoc=1
  sram  l1 size=64
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default l1
}
`,
		"unknown map": `
memory {
  sram s size=64 map=nonesuch
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default dram
}
`,
		"unknown default": `
memory {
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default l9
}
`,
		"unknown component": `
memory {
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default dram
}
connect {
  link x comp=warp channels=cpu:dram
}
`,
		"unknown channel": `
memory {
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default dram
}
connect {
  link x comp=off32 channels=cpu:l1
}
`,
		"channel uncovered": `
memory {
  cache l1 size=1024 line=32 assoc=1
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default l1
}
connect {
  link x comp=ahb32 channels=cpu:l1
}
`,
		"channel twice": `
memory {
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default dram
}
connect {
  link x comp=off32 channels=cpu:dram
  link y comp=off16 channels=cpu:dram
}
`,
		"malformed line": `
memory {
  cache
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default dram
}
`,
		"garbage top level": `banana { }`,
		"dup attr": `
memory {
  cache l1 size=1024 size=2048 line=32 assoc=1
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default l1
}
`,
	}
	for name, src := range cases {
		if _, err := Parse(src, tr, lib); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestParseComments(t *testing.T) {
	tr := workload.Synthetic(workload.SynStream, 100, 1024, 1)
	src := `
# leading comment
memory {
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2 # trailing comment
  default dram
}
connect {
  link x comp=off32 channels=cpu:dram
}
`
	if _, err := Parse(src, tr, connect.Library()); err != nil {
		t.Fatal(err)
	}
}

func TestErrorMessagesNameTheProblem(t *testing.T) {
	tr := workload.Synthetic(workload.SynStream, 100, 1024, 1)
	src := `
memory {
  dram m rowhit=8 rowmiss=20 rowbytes=1024 banks=2
  default dram
}
connect {
  link x comp=off32 channels=cpu:wrong
}
`
	_, err := Parse(src, tr, connect.Library())
	if err == nil || !strings.Contains(err.Error(), "cpu:wrong") {
		t.Fatalf("error should name the bad channel: %v", err)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	tr := workload.Vocoder{}.Generate(workload.DefaultConfig())
	sys, err := Parse(vocoderSystem, tr, connect.Library())
	if err != nil {
		t.Fatal(err)
	}
	src, err := Format(sys.Mem, sys.Conn, tr)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := Parse(src, tr, connect.Library())
	if err != nil {
		t.Fatalf("Format output does not re-parse: %v\n%s", err, src)
	}
	// Equivalence: same gates, same simulated behaviour.
	if sys.Mem.Gates() != sys2.Mem.Gates() || sys.Conn.Gates() != sys2.Conn.Gates() {
		t.Fatal("round trip changed gate counts")
	}
	short := tr.Slice(0, 30_000)
	run := func(m *mem.Architecture, c *connect.Arch) (float64, float64) {
		s, err := sim.New(m, c)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(short)
		if err != nil {
			t.Fatal(err)
		}
		return r.AvgLatency(), r.AvgEnergy()
	}
	l1, e1 := run(sys.Mem, sys.Conn)
	l2, e2 := run(sys2.Mem, sys2.Conn)
	if l1 != l2 || e1 != e2 {
		t.Fatalf("round trip changed behaviour: %.3f/%.3f vs %.3f/%.3f", l1, e1, l2, e2)
	}
}

func TestFormatAllModuleKinds(t *testing.T) {
	tr := workload.Li{}.Generate(workload.Config{Scale: 1, Seed: 1})
	src := `
memory {
  cache  l1 size=2048 line=32 assoc=1 policy=wt
  cache  l2 size=4096 line=32 assoc=2 victim=4
  lldma  ld buf=256 node=8 pred=0.42 map=heap
  sram   sp size=5824 map=stack
  stream sb line=32 depth=8
  dram   m rowhit=8 rowmiss=20 rowbytes=1024 banks=2 policy=closed
  default l2
}
connect {
  link a comp=ahb32 channels=cpu:l1,cpu:l2,cpu:ld,cpu:sp,cpu:sb
  link b comp=off16 channels=l1:dram,l2:dram,ld:dram,sb:dram
}
`
	sys, err := Parse(src, tr, connect.Library())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Format(sys.Mem, sys.Conn, tr)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := Parse(out, tr, connect.Library())
	if err != nil {
		t.Fatalf("round trip of all module kinds failed: %v\n%s", err, out)
	}
	if len(sys2.Mem.Modules) != len(sys.Mem.Modules) {
		t.Fatal("module count changed")
	}
	for _, want := range []string{"policy=wt", "victim=4", "pred=0.42", "policy=closed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted ADL missing %q:\n%s", want, out)
		}
	}
}

func TestParseAndFormatL2(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.Config{Scale: 1, Seed: 42})
	src := `
memory {
  cache l1 size=1024 line=32 assoc=2
  l2    l2 size=32768 line=32 assoc=4
  dram  m  rowhit=8 rowmiss=20 rowbytes=2048 banks=4
  default l1
}
connect {
  link a comp=ahb32 channels=cpu:l1,l1:l2
  link b comp=off32 channels=l2:dram
}
`
	sys, err := Parse(src, tr, connect.Library())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Mem.L2 == nil || sys.Mem.L2.SizeBytes != 32768 {
		t.Fatal("L2 not parsed")
	}
	// Simulate and round trip.
	s, err := sim.New(sys.Mem, sys.Conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(tr.Slice(0, 20_000)); err != nil {
		t.Fatal(err)
	}
	out, err := Format(sys.Mem, sys.Conn, tr)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := Parse(out, tr, connect.Library())
	if err != nil {
		t.Fatalf("L2 round trip failed: %v\n%s", err, out)
	}
	if sys2.Mem.L2 == nil || sys2.Mem.Gates() != sys.Mem.Gates() {
		t.Fatal("L2 round trip changed the system")
	}
}
