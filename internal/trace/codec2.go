package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Compressed binary trace format ("MTR2"): the header matches MTR1, but
// each access is encoded as
//
//	uvarint  dsID
//	svarint  address delta vs. the previous access of the same DS
//	byte     kind<<4 | log2(size)
//
// Memory traces are dominated by small per-structure strides (streams,
// probe walks), so per-DS deltas compress 3-6x against MTR1's fixed
// 8-byte records. trace.Read auto-detects both formats.

var magic2 = [4]byte{'M', 'T', 'R', '2'}

// WriteCompressed encodes t to w in the MTR2 format.
func WriteCompressed(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic2[:]); err != nil {
		return err
	}
	if err := writeString(bw, t.Name); err != nil {
		return err
	}
	if len(t.DS) > 0xFFFF {
		return fmt.Errorf("trace: too many data structures (%d)", len(t.DS))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(t.DS))); err != nil {
		return err
	}
	for _, d := range t.DS {
		if err := writeString(bw, d.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, [3]uint32{d.Base, d.Size, d.Elem}); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Accesses))); err != nil {
		return err
	}
	last := make([]uint32, len(t.DS))
	for i := range last {
		if i < len(t.DS) {
			last[i] = t.DS[i].Base
		}
	}
	var buf [2 * binary.MaxVarintLen64]byte
	for _, a := range t.Accesses {
		n := binary.PutUvarint(buf[:], uint64(a.DS))
		var delta int64
		if int(a.DS) < len(last) {
			delta = int64(a.Addr) - int64(last[a.DS])
			last[a.DS] = a.Addr
		} else {
			delta = int64(a.Addr)
		}
		n += binary.PutVarint(buf[n:], delta)
		buf[n] = uint8(a.Kind)<<4 | sizeLog2(a.Size)
		n++
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sizeLog2(size uint8) uint8 {
	switch size {
	case 1:
		return 0
	case 2:
		return 1
	case 4:
		return 2
	default:
		return 3
	}
}

// readCompressedBody decodes the MTR2 stream after the magic bytes.
func readCompressedBody(br *bufio.Reader) (*Trace, error) {
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var nDS uint16
	if err := binary.Read(br, binary.LittleEndian, &nDS); err != nil {
		return nil, err
	}
	t := &Trace{Name: name, DS: make([]DSInfo, nDS)}
	for i := range t.DS {
		dsName, err := readString(br)
		if err != nil {
			return nil, err
		}
		var f [3]uint32
		if err := binary.Read(br, binary.LittleEndian, &f); err != nil {
			return nil, err
		}
		t.DS[i] = DSInfo{Name: dsName, Base: f[0], Size: f[1], Elem: f[2]}
	}
	var nAcc uint64
	if err := binary.Read(br, binary.LittleEndian, &nAcc); err != nil {
		return nil, err
	}
	if nAcc > maxSaneAccesses {
		return nil, fmt.Errorf("trace: implausible access count %d", nAcc)
	}
	last := make([]uint32, len(t.DS))
	for i := range last {
		last[i] = t.DS[i].Base
	}
	t.Accesses = make([]Access, nAcc)
	for i := range t.Accesses {
		ds, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, err
		}
		meta, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		var addr uint32
		if int(ds) < len(last) {
			addr = uint32(int64(last[ds]) + delta)
			last[ds] = addr
		} else {
			addr = uint32(delta)
		}
		t.Accesses[i] = Access{
			Addr: addr,
			DS:   DSID(ds),
			Kind: Kind(meta >> 4),
			Size: 1 << (meta & 0x0F),
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
