package trace

import (
	"fmt"
)

// Builder incrementally constructs a Trace. Workloads register their data
// structures up front (receiving a region in the synthetic address space
// and a DSID) and then record loads and stores as the algorithm runs.
//
// The address space is laid out by the builder: regions are allocated
// upward from regionBase, aligned to regionAlign, with a guard gap between
// regions so that pattern classification never confuses neighbours.
type Builder struct {
	t       Trace
	nextTop uint32
}

const (
	regionBase  uint32 = 0x1000_0000
	regionAlign uint32 = 0x1000 // 4 KiB
	regionGuard uint32 = 0x1000
)

// NewBuilder returns a Builder for a trace with the given name. Capacity
// is a hint for the expected number of accesses.
func NewBuilder(name string, capacity int) *Builder {
	b := &Builder{nextTop: regionBase}
	b.t.Name = name
	b.t.Accesses = make([]Access, 0, capacity)
	b.t.DS = []DSInfo{{Name: "anon"}}
	return b
}

// Region registers a data structure of size bytes with the given element
// granularity, and returns its DSID and base address. It panics if the
// 32-bit synthetic address space is exhausted (a workload bug, not user
// input).
func (b *Builder) Region(name string, size, elem uint32) (DSID, uint32) {
	if size == 0 {
		size = 1
	}
	base := b.nextTop
	span := (size + regionAlign - 1) &^ (regionAlign - 1)
	if span < size || base+span+regionGuard < base {
		panic(fmt.Sprintf("trace: address space exhausted registering %q (%d bytes at %#x)",
			name, size, base))
	}
	b.nextTop += span + regionGuard
	id := DSID(len(b.t.DS))
	b.t.DS = append(b.t.DS, DSInfo{Name: name, Base: base, Size: size, Elem: elem})
	return id, base
}

// Load records a load of size bytes at offset off within data structure id.
func (b *Builder) Load(id DSID, off uint32, size uint8) {
	b.t.Accesses = append(b.t.Accesses, Access{
		Addr: b.t.DS[id].Base + off, DS: id, Kind: Load, Size: size,
	})
}

// Store records a store of size bytes at offset off within data structure id.
func (b *Builder) Store(id DSID, off uint32, size uint8) {
	b.t.Accesses = append(b.t.Accesses, Access{
		Addr: b.t.DS[id].Base + off, DS: id, Kind: Store, Size: size,
	})
}

// LoadAddr records a load at an absolute address belonging to id.
func (b *Builder) LoadAddr(id DSID, addr uint32, size uint8) {
	b.t.Accesses = append(b.t.Accesses, Access{Addr: addr, DS: id, Kind: Load, Size: size})
}

// StoreAddr records a store at an absolute address belonging to id.
func (b *Builder) StoreAddr(id DSID, addr uint32, size uint8) {
	b.t.Accesses = append(b.t.Accesses, Access{Addr: addr, DS: id, Kind: Store, Size: size})
}

// Anon records an anonymous access (stack slot, scalar temporary).
func (b *Builder) Anon(kind Kind, addr uint32, size uint8) {
	b.t.Accesses = append(b.t.Accesses, Access{Addr: addr, DS: Anonymous, Kind: kind, Size: size})
}

// Build finalizes and validates the trace. It panics on a validation
// failure, which always indicates a bug in the instrumented workload
// rather than bad user input.
func (b *Builder) Build() *Trace {
	t := b.t
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("trace builder produced invalid trace: %v", err))
	}
	return &t
}

// Len returns the number of accesses recorded so far.
func (b *Builder) Len() int { return len(b.t.Accesses) }
