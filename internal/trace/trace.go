// Package trace defines the memory-access trace representation shared by
// every layer of MemorEx: the instrumented workloads emit traces, the
// profiler classifies them, and the simulator replays them against a
// candidate memory/connectivity architecture.
//
// A trace is the MemorEx equivalent of a SHADE instruction-level memory
// trace in the original paper: a sequence of CPU loads and stores, each
// tagged with the application data structure it touches, plus a registry
// describing where each data structure lives in the 32-bit address space.
package trace

import (
	"errors"
	"fmt"
	"sort"
)

// Kind distinguishes loads from stores.
type Kind uint8

// Access kinds.
const (
	Load Kind = iota
	Store
)

// String returns "load" or "store".
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// DSID identifies a data structure within a trace. DSID 0 is reserved for
// "anonymous" accesses (stack spills, scalars) that no exploration step
// tries to remap.
type DSID uint16

// Anonymous is the data-structure ID used for accesses that do not belong
// to any registered data structure.
const Anonymous DSID = 0

// Access is a single CPU memory reference.
type Access struct {
	Addr uint32 // byte address
	DS   DSID   // owning data structure (Anonymous if none)
	Kind Kind   // load or store
	Size uint8  // access width in bytes (1, 2, 4 or 8)
}

// DSInfo describes one application data structure: its name, the region
// it occupies, and its element size (the natural access granularity).
type DSInfo struct {
	Name string
	Base uint32 // first byte of the region
	Size uint32 // region length in bytes
	Elem uint32 // element size in bytes (0 if irregular)
}

// Contains reports whether addr falls inside the data structure's region.
func (d DSInfo) Contains(addr uint32) bool {
	return addr >= d.Base && addr-d.Base < d.Size
}

// Trace is a complete memory-access trace: the access stream plus the
// data-structure registry. Index i of DS describes DSID(i); index 0 is
// the anonymous pseudo-structure.
type Trace struct {
	Name     string
	Accesses []Access
	DS       []DSInfo
}

// NumAccesses returns the length of the access stream.
func (t *Trace) NumAccesses() int { return len(t.Accesses) }

// Info returns the registry entry for id. The anonymous entry is returned
// for out-of-range ids so that callers can always print something.
func (t *Trace) Info(id DSID) DSInfo {
	if int(id) < len(t.DS) {
		return t.DS[id]
	}
	return DSInfo{Name: "?"}
}

// Validate checks the structural invariants of a trace: registry entry 0
// is the anonymous structure, regions do not overlap, every access with a
// non-anonymous DSID lands inside its region, and access sizes are sane.
func (t *Trace) Validate() error {
	if len(t.DS) == 0 {
		return errors.New("trace: empty data-structure registry")
	}
	type span struct {
		lo, hi uint64
		id     int
	}
	spans := make([]span, 0, len(t.DS))
	for i, d := range t.DS {
		if i == 0 {
			continue // anonymous: no region constraints
		}
		if d.Size == 0 {
			return fmt.Errorf("trace: data structure %d (%s) has zero size", i, d.Name)
		}
		spans = append(spans, span{uint64(d.Base), uint64(d.Base) + uint64(d.Size), i})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return fmt.Errorf("trace: regions of data structures %d and %d overlap",
				spans[i-1].id, spans[i].id)
		}
	}
	for i, a := range t.Accesses {
		switch a.Size {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("trace: access %d has invalid size %d", i, a.Size)
		}
		if a.DS == Anonymous {
			continue
		}
		if int(a.DS) >= len(t.DS) {
			return fmt.Errorf("trace: access %d references unknown data structure %d", i, a.DS)
		}
		if !t.DS[a.DS].Contains(a.Addr) {
			return fmt.Errorf("trace: access %d (addr %#x) outside region of %s",
				i, a.Addr, t.DS[a.DS].Name)
		}
	}
	return nil
}

// Slice returns a shallow copy of t restricted to accesses [lo, hi).
// The data-structure registry is shared.
func (t *Trace) Slice(lo, hi int) *Trace {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.Accesses) {
		hi = len(t.Accesses)
	}
	if lo > hi {
		lo = hi
	}
	return &Trace{Name: t.Name, Accesses: t.Accesses[lo:hi], DS: t.DS}
}

// CountByDS returns the number of accesses per data structure, indexed by
// DSID. The slice has len(t.DS) entries.
func (t *Trace) CountByDS() []int64 {
	counts := make([]int64, len(t.DS))
	for _, a := range t.Accesses {
		if int(a.DS) < len(counts) {
			counts[a.DS]++
		}
	}
	return counts
}

// BytesByDS returns the number of bytes transferred per data structure.
func (t *Trace) BytesByDS() []int64 {
	bytes := make([]int64, len(t.DS))
	for _, a := range t.Accesses {
		if int(a.DS) < len(bytes) {
			bytes[a.DS] += int64(a.Size)
		}
	}
	return bytes
}
