package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("MTR1"):
//
//	magic   [4]byte  "MTR1"
//	nameLen uint16, name bytes
//	nDS     uint16
//	  per DS: nameLen uint16, name bytes, base uint32, size uint32, elem uint32
//	nAcc    uint64
//	  per access: addr uint32, ds uint16, kind uint8, size uint8
//
// All integers little-endian. The format exists so that long traces can be
// generated once (cmd/tracegen) and replayed by many exploration runs.

var magic = [4]byte{'M', 'T', 'R', '1'}

// ErrBadMagic is returned by Read when the stream is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic (not an MTR1 stream)")

const maxSaneAccesses = 1 << 32 // decoder sanity bound

// Write encodes t to w in the MTR1 binary format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := writeString(bw, t.Name); err != nil {
		return err
	}
	if len(t.DS) > 0xFFFF {
		return fmt.Errorf("trace: too many data structures (%d)", len(t.DS))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(t.DS))); err != nil {
		return err
	}
	for _, d := range t.DS {
		if err := writeString(bw, d.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, [3]uint32{d.Base, d.Size, d.Elem}); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Accesses))); err != nil {
		return err
	}
	var rec [8]byte
	for _, a := range t.Accesses {
		binary.LittleEndian.PutUint32(rec[0:], a.Addr)
		binary.LittleEndian.PutUint16(rec[4:], uint16(a.DS))
		rec[6] = uint8(a.Kind)
		rec[7] = a.Size
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes an MTR1 or MTR2 stream into a Trace and validates it,
// auto-detecting the format from the magic bytes.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	switch m {
	case magic:
		return readBody(br)
	case magic2:
		return readCompressedBody(br)
	default:
		return nil, ErrBadMagic
	}
}

// readBody decodes the MTR1 stream after the magic bytes.
func readBody(br *bufio.Reader) (*Trace, error) {
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var nDS uint16
	if err := binary.Read(br, binary.LittleEndian, &nDS); err != nil {
		return nil, err
	}
	t := &Trace{Name: name, DS: make([]DSInfo, nDS)}
	for i := range t.DS {
		dsName, err := readString(br)
		if err != nil {
			return nil, err
		}
		var f [3]uint32
		if err := binary.Read(br, binary.LittleEndian, &f); err != nil {
			return nil, err
		}
		t.DS[i] = DSInfo{Name: dsName, Base: f[0], Size: f[1], Elem: f[2]}
	}
	var nAcc uint64
	if err := binary.Read(br, binary.LittleEndian, &nAcc); err != nil {
		return nil, err
	}
	if nAcc > maxSaneAccesses {
		return nil, fmt.Errorf("trace: implausible access count %d", nAcc)
	}
	t.Accesses = make([]Access, nAcc)
	var rec [8]byte
	for i := range t.Accesses {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, err
		}
		t.Accesses[i] = Access{
			Addr: binary.LittleEndian.Uint32(rec[0:]),
			DS:   DSID(binary.LittleEndian.Uint16(rec[4:])),
			Kind: Kind(rec[6]),
			Size: rec[7],
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("trace: string too long (%d bytes)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
