package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T) *Trace {
	t.Helper()
	b := NewBuilder("sample", 16)
	arr, _ := b.Region("arr", 1024, 4)
	tab, _ := b.Region("tab", 4096, 8)
	for i := uint32(0); i < 8; i++ {
		b.Load(arr, i*4, 4)
	}
	b.Store(tab, 16, 8)
	b.Anon(Load, 0x10, 4)
	return b.Build()
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatalf("kind strings wrong: %q %q", Load, Store)
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatalf("unknown kind should embed value, got %q", Kind(9))
	}
}

func TestBuilderRegionsDisjoint(t *testing.T) {
	b := NewBuilder("x", 0)
	var infos []DSInfo
	for i := 0; i < 20; i++ {
		id, base := b.Region("r", uint32(100+i*997), 4)
		if id == Anonymous {
			t.Fatal("Region returned the anonymous DSID")
		}
		got := b.t.DS[id]
		if got.Base != base {
			t.Fatalf("returned base %#x, registry says %#x", base, got.Base)
		}
		infos = append(infos, got)
	}
	for i := 1; i < len(infos); i++ {
		prevEnd := infos[i-1].Base + infos[i-1].Size
		if infos[i].Base < prevEnd {
			t.Fatalf("regions %d and %d overlap", i-1, i)
		}
		if infos[i].Base-prevEnd < regionGuard {
			t.Fatalf("guard gap missing between regions %d and %d", i-1, i)
		}
	}
}

func TestBuilderAccessRecording(t *testing.T) {
	tr := buildSample(t)
	if tr.NumAccesses() != 10 {
		t.Fatalf("want 10 accesses, got %d", tr.NumAccesses())
	}
	if tr.Accesses[0].Kind != Load || tr.Accesses[8].Kind != Store {
		t.Fatal("kinds not recorded correctly")
	}
	counts := tr.CountByDS()
	if counts[1] != 8 || counts[2] != 1 || counts[0] != 1 {
		t.Fatalf("CountByDS wrong: %v", counts)
	}
	bytesBy := tr.BytesByDS()
	if bytesBy[1] != 32 || bytesBy[2] != 8 || bytesBy[0] != 4 {
		t.Fatalf("BytesByDS wrong: %v", bytesBy)
	}
}

func TestValidateCatchesOutOfRegion(t *testing.T) {
	tr := buildSample(t)
	bad := *tr
	bad.Accesses = append([]Access(nil), tr.Accesses...)
	bad.Accesses[0].Addr = 0 // outside region of DS 1
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-region access")
	}
}

func TestValidateCatchesBadSize(t *testing.T) {
	tr := buildSample(t)
	bad := *tr
	bad.Accesses = append([]Access(nil), tr.Accesses...)
	bad.Accesses[0].Size = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted size-3 access")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	tr := &Trace{
		Name: "overlap",
		DS: []DSInfo{
			{Name: "anon"},
			{Name: "a", Base: 0x1000, Size: 0x100},
			{Name: "b", Base: 0x10f0, Size: 0x100},
		},
	}
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted overlapping regions")
	}
}

func TestValidateCatchesUnknownDS(t *testing.T) {
	tr := buildSample(t)
	bad := *tr
	bad.Accesses = append([]Access(nil), tr.Accesses...)
	bad.Accesses[0].DS = 99
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted unknown DSID")
	}
}

func TestSliceBounds(t *testing.T) {
	tr := buildSample(t)
	s := tr.Slice(-5, 4)
	if s.NumAccesses() != 4 {
		t.Fatalf("Slice(-5,4): want 4, got %d", s.NumAccesses())
	}
	s = tr.Slice(8, 100)
	if s.NumAccesses() != 2 {
		t.Fatalf("Slice(8,100): want 2, got %d", s.NumAccesses())
	}
	s = tr.Slice(7, 3)
	if s.NumAccesses() != 0 {
		t.Fatalf("inverted Slice: want 0, got %d", s.NumAccesses())
	}
}

func TestInfoOutOfRange(t *testing.T) {
	tr := buildSample(t)
	if got := tr.Info(200); got.Name != "?" {
		t.Fatalf("Info(200) = %q, want ?", got.Name)
	}
	if got := tr.Info(1); got.Name != "arr" {
		t.Fatalf("Info(1) = %q, want arr", got.Name)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("round trip mismatch")
	}
}

func TestCodecBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOPE....")))
	if err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestCodecTruncated(t *testing.T) {
	tr := buildSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 5, 9, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("Read accepted trace truncated at %d bytes", cut)
		}
	}
}

// Property: encoding then decoding any randomly generated valid trace
// yields an identical trace.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("q", int(n))
		ids := make([]DSID, 1+rng.Intn(5))
		sizes := make([]uint32, len(ids))
		for i := range ids {
			sizes[i] = uint32(64 + rng.Intn(4096))
			ids[i], _ = b.Region("r", sizes[i], 4)
		}
		widths := []uint8{1, 2, 4, 8}
		for i := 0; i < int(n); i++ {
			j := rng.Intn(len(ids))
			w := widths[rng.Intn(len(widths))]
			off := uint32(rng.Intn(int(sizes[j]-uint32(w)) + 1))
			if rng.Intn(2) == 0 {
				b.Load(ids[j], off, w)
			} else {
				b.Store(ids[j], off, w)
			}
		}
		tr := b.Build()
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: builder output always validates.
func TestQuickBuilderValid(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("q", int(n))
		id, _ := b.Region("r", 4096, 4)
		for i := 0; i < int(n); i++ {
			b.Load(id, uint32(rng.Intn(4092)), 4)
		}
		tr := b.Build()
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderZeroSizeRegion(t *testing.T) {
	b := NewBuilder("z", 0)
	id, _ := b.Region("empty", 0, 0)
	if b.t.DS[id].Size != 1 {
		t.Fatalf("zero-size region should be clamped to 1, got %d", b.t.DS[id].Size)
	}
}

func TestCompressedCodecRoundTrip(t *testing.T) {
	tr := buildSample(t)
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err != nil {
		t.Fatalf("WriteCompressed: %v", err)
	}
	got, err := Read(&buf) // auto-detected
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("compressed round trip mismatch")
	}
}

func TestCompressedSmallerOnStriding(t *testing.T) {
	// A stream-heavy trace compresses well: per-DS deltas are tiny.
	b := NewBuilder("stream", 50_000)
	id, _ := b.Region("s", 1<<20, 4)
	for i := uint32(0); i < 50_000; i++ {
		b.Load(id, (i*4)%(1<<20), 4)
	}
	tr := b.Build()
	var plain, packed bytes.Buffer
	if err := Write(&plain, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompressed(&packed, tr); err != nil {
		t.Fatal(err)
	}
	if packed.Len()*2 > plain.Len() {
		t.Fatalf("MTR2 (%d bytes) should be at most half of MTR1 (%d bytes)",
			packed.Len(), plain.Len())
	}
}

func TestCompressedTruncated(t *testing.T) {
	tr := buildSample(t)
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, 5, 9, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("Read accepted MTR2 truncated at %d bytes", cut)
		}
	}
}

// Property: both codecs round-trip arbitrary valid traces identically.
func TestQuickBothCodecsAgree(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("q2", int(n))
		id1, _ := b.Region("a", 8192, 4)
		id2, _ := b.Region("b", 8192, 8)
		widths := []uint8{1, 2, 4, 8}
		for i := 0; i < int(n); i++ {
			id := id1
			if rng.Intn(2) == 0 {
				id = id2
			}
			w := widths[rng.Intn(4)]
			off := uint32(rng.Intn(8192 - 8))
			if rng.Intn(2) == 0 {
				b.Load(id, off, w)
			} else {
				b.Store(id, off, w)
			}
		}
		tr := b.Build()
		var b1, b2 bytes.Buffer
		if Write(&b1, tr) != nil || WriteCompressed(&b2, tr) != nil {
			return false
		}
		t1, err1 := Read(&b1)
		t2, err2 := Read(&b2)
		if err1 != nil || err2 != nil {
			return false
		}
		return reflect.DeepEqual(t1, t2) && reflect.DeepEqual(t1, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz-ish property: feeding random bytes to Read must error, never
// panic or loop.
func TestQuickReadGarbage(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n))
		rng.Read(data)
		// Sometimes make the magic valid to exercise deeper paths.
		if len(data) >= 4 && rng.Intn(2) == 0 {
			copy(data, "MTR1")
			if rng.Intn(2) == 0 {
				copy(data, "MTR2")
			}
		}
		defer func() { recover() }()
		_, err := Read(bytes.NewReader(data))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderAddressSpaceExhaustion(t *testing.T) {
	b := NewBuilder("huge", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("address-space exhaustion not detected")
		}
	}()
	for i := 0; i < 10; i++ {
		b.Region("big", 0xE000_0000, 4)
	}
}
