package explore

import (
	"context"
	"strings"
	"testing"

	"memorex/internal/apex"
	"memorex/internal/core"
	"memorex/internal/sampling"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

// tinySpace builds a small but non-trivial space from a short compress
// trace so the Full driver stays fast in unit tests.
func tinySpace(t *testing.T) (*trace.Trace, *Space) {
	t.Helper()
	tr := workload.Compress{}.Generate(workload.Config{Scale: 1, Seed: 42}).Slice(0, 60_000)
	res, err := apex.Explore(tr, nil, apex.Config{
		CacheSizes:  []int{2 << 10, 8 << 10, 32 << 10},
		CacheAssocs: []int{2},
		CacheLines:  []int{32},
		MaxCustom:   1,
		SRAMLimit:   80 << 10,
		MaxSelected: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, BuildSpace(res)
}

func tinyConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Sampling = sampling.Config{OnWindow: 500, OffRatio: 9}
	cfg.MaxAssignPerLevel = 12
	cfg.KeepPerArch = 4
	return cfg
}

func TestBuildSpace(t *testing.T) {
	_, sp := tinySpace(t)
	if len(sp.AllMem) != 6 { // 3 cache sizes x (with/without custom module)
		t.Fatalf("AllMem = %d, want 6", len(sp.AllMem))
	}
	if len(sp.SelectedMem) == 0 || len(sp.SelectedMem) > 3 {
		t.Fatalf("SelectedMem = %d", len(sp.SelectedMem))
	}
	if len(sp.NeighborMem) < len(sp.SelectedMem) {
		t.Fatal("neighborhood must include the selection")
	}
	if len(sp.NeighborMem) > len(sp.AllMem) {
		t.Fatal("neighborhood cannot exceed the full space")
	}
	// Selected architectures must appear in the neighborhood.
	inN := map[string]bool{}
	for _, a := range sp.NeighborMem {
		inN[a.Name] = true
	}
	for _, a := range sp.SelectedMem {
		if !inN[a.Name] {
			t.Fatalf("selected arch %s missing from neighborhood", a.Name)
		}
	}
}

func TestStrategiesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-space simulation is slow")
	}
	tr, sp := tinySpace(t)
	cfg := tinyConfig()

	full, err := Run(context.Background(), tr, sp, Full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(context.Background(), tr, sp, Pruned, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nbhd, err := Run(context.Background(), tr, sp, Neighborhood, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(full.Points) <= len(pruned.Points) {
		t.Fatalf("full (%d pts) should evaluate more than pruned (%d pts)",
			len(full.Points), len(pruned.Points))
	}
	if full.WorkAccesses <= pruned.WorkAccesses {
		t.Fatalf("pruned work (%d) should be below full work (%d)",
			pruned.WorkAccesses, full.WorkAccesses)
	}
	if nbhd.WorkAccesses < pruned.WorkAccesses {
		t.Fatal("neighborhood should cost at least as much as pruned")
	}

	cmp := Compare("compress", full, pruned, nbhd)
	if len(cmp.Metrics) != 3 {
		t.Fatal("comparison missing strategies")
	}
	fullM, prunedM, nbhdM := cmp.Metrics[0], cmp.Metrics[1], cmp.Metrics[2]
	if fullM.Coverage != 1 {
		t.Fatalf("full self-coverage = %v, want 1", fullM.Coverage)
	}
	if prunedM.Coverage < 0.2 {
		t.Fatalf("pruned coverage %.2f implausibly low — pruning is broken", prunedM.Coverage)
	}
	if nbhdM.Coverage < prunedM.Coverage-1e-9 {
		t.Fatalf("neighborhood coverage (%.2f) below pruned (%.2f)",
			nbhdM.Coverage, prunedM.Coverage)
	}
	// Missed points must be approximated closely (paper: a few percent).
	if prunedM.Distance.Missed > 0 && prunedM.Distance.CostPct > 25 {
		t.Fatalf("pruned approximation too far: %+v", prunedM.Distance)
	}
	out := cmp.String()
	for _, want := range []string{"Coverage", "cost dist", "pruned", "full"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison table missing %q:\n%s", want, out)
		}
	}
}

func TestRunValidation(t *testing.T) {
	tr, sp := tinySpace(t)
	cfg := tinyConfig()
	if _, err := Run(context.Background(), tr, sp, Strategy(9), cfg); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	bad := cfg
	bad.KeepPerArch = 0
	if _, err := Run(context.Background(), tr, sp, Pruned, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Full.String() != "full" || Pruned.String() != "pruned" || Neighborhood.String() != "neighborhood" {
		t.Fatal("strategy strings wrong")
	}
	if !strings.Contains(Strategy(7).String(), "7") {
		t.Fatal("unknown strategy should embed value")
	}
}

func TestNeighborhoodExpandsAndDedups(t *testing.T) {
	tr, sp := tinySpace(t)
	cfg := tinyConfig()
	pruned, err := Run(context.Background(), tr, sp, Pruned, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nbhd, err := Run(context.Background(), tr, sp, Neighborhood, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbhd.Points) <= len(pruned.Points) {
		t.Fatalf("neighborhood (%d) should evaluate more designs than pruned (%d)",
			len(nbhd.Points), len(pruned.Points))
	}
	// No duplicate (memory, connectivity) pairs in the neighborhood
	// output: identical designs have identical metric triples, so count
	// triples per memory architecture name.
	type key struct {
		name                  string
		cost, latency, energy float64
	}
	seen := map[key]int{}
	for _, p := range nbhd.Points {
		k := key{p.MemArch.Name, p.Cost, p.Latency, p.Energy}
		seen[k]++
		if seen[k] > 1 {
			t.Fatalf("duplicate design simulated twice: %+v", k)
		}
	}
}
