package explore

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"memorex/internal/apex"
	"memorex/internal/core"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

// gateSpace builds the quality-gate scenario: a deeper design space
// than tinySpace (two custom-module slots, so connectivity hierarchies
// reach six channels) where Full enumeration means ~7400 simulations
// but the pareto front stays compact — the regime the heuristic
// drivers exist for.
func gateSpace(t *testing.T) (*trace.Trace, *Space) {
	t.Helper()
	tr := workload.Compress{}.Generate(workload.Config{Scale: 1, Seed: 42}).Slice(0, 30_000)
	res, err := apex.Explore(tr, nil, apex.Config{
		CacheSizes:  []int{2 << 10, 8 << 10, 32 << 10},
		CacheAssocs: []int{2},
		CacheLines:  []int{32},
		MaxCustom:   2,
		SRAMLimit:   80 << 10,
		MaxSelected: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, BuildSpace(res)
}

// searchConfig pins the heuristic knobs of the quality-gate scenario:
// a fixed seed and an evaluation budget of ~8% of the Full ground
// truth (~7400 designs on the gateSpace scenario), comfortably inside
// the 25%-of-Full simulation gate.
func searchConfig() core.SearchConfig {
	return core.SearchConfig{Seed: 42, Budget: 600, Population: 24}
}

// TestSearchCoverageQualityGate is the executable form of the paper's
// Table 2 comparison: on a scenario where Full ground truth is cheap,
// both heuristic drivers must recover >=90% pareto coverage while
// running at most 25% of Full's simulations. It runs in make check; a
// regression in either driver or in the evaluation economy (memo
// cache, estimator, promotion rule) fails it.
func TestSearchCoverageQualityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full-space ground truth is slow")
	}
	tr, sp := gateSpace(t)
	cfg := tinyConfig()
	cfg.Search = searchConfig()
	// Lift the enumeration cap: the heuristic drivers walk the full
	// cross-product space, so the ground truth must too.
	cfg.MaxAssignPerLevel = 0

	full, err := Run(context.Background(), tr, sp, Full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Simulations == 0 {
		t.Fatal("full run reported no simulations")
	}
	for _, strategy := range []Strategy{GA, SA} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			out, err := Run(context.Background(), tr, sp, strategy, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cmp := Compare("compress", full, out)
			m := cmp.Metrics[1]
			t.Logf("%s: coverage %.0f%% sims %d/%d evals %d front %d",
				strategy, m.Coverage*100, out.Stats.Simulations,
				full.Stats.Simulations, m.Evals, len(out.Front))
			if m.Coverage < 0.90 {
				t.Errorf("%s coverage %.1f%% below the 90%% gate\n%s",
					strategy, m.Coverage*100, cmp)
			}
			if lim := full.Stats.Simulations / 4; out.Stats.Simulations > lim {
				t.Errorf("%s ran %d simulations, above the 25%% budget gate (%d)",
					strategy, out.Stats.Simulations, lim)
			}
			if out.Search == nil {
				t.Fatal("heuristic outcome missing search provenance")
			}
			if out.Search.Strategy != strategy.String() || out.Search.Seed != 42 {
				t.Errorf("provenance = %+v", out.Search)
			}
			if out.Search.Evals <= 0 || out.Search.Evals > int64(cfg.Search.Budget) {
				t.Errorf("evals %d outside (0, budget=%d]", out.Search.Evals, cfg.Search.Budget)
			}
			if out.Search.Promotions != int64(len(out.Points)) {
				t.Errorf("promotions %d != %d simulated points",
					out.Search.Promotions, len(out.Points))
			}
		})
	}
}

// TestSearchSeededDeterminism mirrors the PR 1 engine guarantee at the
// driver level: the same SearchConfig.Seed must produce byte-identical
// fronts and identical design lists at Workers=1 and Workers=8. Run
// under -race this also proves the drivers share no unsynchronized
// state with the engine workers.
func TestSearchSeededDeterminism(t *testing.T) {
	tr, sp := tinySpace(t)
	for _, strategy := range []Strategy{GA, SA} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			var fronts [][]byte
			var labels []string
			for _, workers := range []int{1, 8} {
				cfg := tinyConfig()
				cfg.Search = searchConfig()
				cfg.Search.Budget = 120
				cfg.Workers = workers
				out, err := Run(context.Background(), tr, sp, strategy, cfg)
				if err != nil {
					t.Fatal(err)
				}
				front, err := json.Marshal(out.Front)
				if err != nil {
					t.Fatal(err)
				}
				fronts = append(fronts, front)
				list := ""
				for _, p := range out.Points {
					list += fmt.Sprintf("%s|%s|%.6g|%.6g|%.6g\n",
						p.MemArch.Name, p.Conn.Describe(p.MemArch), p.Cost, p.Latency, p.Energy)
				}
				labels = append(labels, list)
			}
			if !bytes.Equal(fronts[0], fronts[1]) {
				t.Errorf("fronts differ between Workers=1 and Workers=8:\n%s\nvs\n%s",
					fronts[0], fronts[1])
			}
			if labels[0] != labels[1] {
				t.Errorf("design lists differ between Workers=1 and Workers=8:\n%s\nvs\n%s",
					labels[0], labels[1])
			}
		})
	}
}

// TestSearchDifferentSeedsDiffer guards against the seed being ignored:
// two distinct seeds should walk distinct trajectories (identical
// output would mean the PRNG split is broken or unused).
func TestSearchDifferentSeedsDiffer(t *testing.T) {
	tr, sp := tinySpace(t)
	var lists []string
	for _, seed := range []int64{1, 99} {
		cfg := tinyConfig()
		cfg.Search = core.SearchConfig{Seed: seed, Budget: 80, Population: 16}
		out, err := Run(context.Background(), tr, sp, GA, cfg)
		if err != nil {
			t.Fatal(err)
		}
		list := ""
		for _, p := range out.Points {
			list += fmt.Sprintf("%s|%s\n", p.MemArch.Name, p.Conn.Describe(p.MemArch))
		}
		lists = append(lists, list)
	}
	if lists[0] == lists[1] {
		t.Error("seeds 1 and 99 produced identical design lists — seed unused?")
	}
}

// TestSearchBudgetRespected verifies the driver never issues more
// engine requests than its budget.
func TestSearchBudgetRespected(t *testing.T) {
	tr, sp := tinySpace(t)
	for _, strategy := range []Strategy{GA, SA} {
		cfg := tinyConfig()
		cfg.Search = core.SearchConfig{Seed: 7, Budget: 40, Population: 16}
		out, err := Run(context.Background(), tr, sp, strategy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if out.Stats.Requests > int64(cfg.Search.Budget) {
			t.Errorf("%s issued %d requests, budget %d", strategy, out.Stats.Requests, cfg.Search.Budget)
		}
		if out.Search.Evals != out.Stats.Requests {
			t.Errorf("%s provenance evals %d != engine requests %d",
				strategy, out.Search.Evals, out.Stats.Requests)
		}
	}
}

// TestSearchTinyBudgetPromotes pins the promotion reserve: a budget
// dwarfed by the space (smaller than the seeding sweep alone) must
// still return fully simulated points, never an empty front — the
// estimates may not starve the final promotion pass.
func TestSearchTinyBudgetPromotes(t *testing.T) {
	tr, sp := tinySpace(t)
	for _, strategy := range []Strategy{GA, SA} {
		cfg := tinyConfig()
		cfg.Search = core.SearchConfig{Seed: 3, Budget: 8, Population: 16}
		out, err := Run(context.Background(), tr, sp, strategy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Points) == 0 || len(out.Front) == 0 {
			t.Errorf("%s with budget 8 produced %d points, front %d — promotion starved",
				strategy, len(out.Points), len(out.Front))
		}
		if out.Search.Promotions == 0 {
			t.Errorf("%s with budget 8 recorded no promotions", strategy)
		}
		if out.Stats.Requests > 8 {
			t.Errorf("%s overspent: %d requests for budget 8", strategy, out.Stats.Requests)
		}
	}
}

// TestSearchInvalidConfig checks that out-of-range search knobs are
// rejected before any simulation happens.
func TestSearchInvalidConfig(t *testing.T) {
	tr, sp := tinySpace(t)
	cfg := tinyConfig()
	cfg.Search.MutationRate = 1.5
	if _, err := Run(context.Background(), tr, sp, GA, cfg); err == nil {
		t.Fatal("MutationRate 1.5 accepted")
	}
	cfg = tinyConfig()
	cfg.Search.Cooling = -0.1
	if _, err := Run(context.Background(), tr, sp, SA, cfg); err == nil {
		t.Fatal("negative Cooling accepted")
	}
}

// TestParseStrategy pins the strategy-name round trip the CLI and wire
// format rely on.
func TestParseStrategy(t *testing.T) {
	for _, s := range []Strategy{Full, Pruned, Neighborhood, GA, SA} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %v: got %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("tabu"); err == nil {
		t.Fatal("unknown strategy name accepted")
	}
}
