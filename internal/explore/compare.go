package explore

import (
	"fmt"
	"time"

	"memorex/internal/pareto"
)

// CoverageTol is the relative tolerance at which a design point counts
// as "found": metric triples within 0.5% on every axis are the same
// design for Table 2's purposes (full and sampled runs of the same
// architecture agree to well within this).
const CoverageTol = 0.005

// StrategyMetrics is one column of Table 2 for one strategy.
type StrategyMetrics struct {
	Strategy Strategy
	// Coverage is the fraction of true pareto points found.
	Coverage float64
	// Distance holds the average per-axis deviation of missed points.
	Distance pareto.Distance
	// WorkAccesses and Wall measure the exploration effort (the paper
	// reports wall time: 2 days / 2 weeks / 1 month for compress).
	WorkAccesses int64
	Wall         time.Duration
	// Evals counts the evaluation requests the strategy issued to the
	// engine — the heuristic drivers' budget consumption. For the
	// enumeration strategies it equals the engine request count.
	Evals int64
	// DesignsSimulated is the number of fully simulated designs.
	DesignsSimulated int
	// Hypervolume is the cost/latency area the strategy's front
	// dominates, normalized to the Full front's hypervolume (1.0 means
	// the strategy's front is as good as the truth even where it found
	// different points).
	Hypervolume float64
}

// Comparison is Table 2 for one benchmark: each strategy measured
// against the Full truth.
type Comparison struct {
	Benchmark string
	// TruthFront is the pareto front of the Full exploration.
	TruthFront []pareto.Point
	Metrics    []StrategyMetrics
}

// Compare evaluates outcomes against the full outcome. The full outcome
// itself is included as the reference column (coverage 1, distance 0 by
// construction).
func Compare(benchmark string, full *Outcome, others ...*Outcome) *Comparison {
	c := &Comparison{Benchmark: benchmark, TruthFront: full.Front}
	// Hypervolume reference: just beyond the worst corner of the truth.
	var refC, refL float64
	for _, p := range full.Front {
		if p.Cost > refC {
			refC = p.Cost
		}
		if p.Latency > refL {
			refL = p.Latency
		}
	}
	refC *= 1.1
	refL *= 1.1
	fullHV := pareto.Hypervolume2D(full.Front, pareto.Cost, pareto.Latency, refC, refL)
	for _, o := range append([]*Outcome{full}, others...) {
		m := StrategyMetrics{
			Strategy:         o.Strategy,
			Coverage:         pareto.Coverage(o.Front, full.Front, CoverageTol),
			Distance:         pareto.AvgDistance(o.Front, full.Front, CoverageTol),
			WorkAccesses:     o.WorkAccesses,
			Wall:             o.Wall,
			DesignsSimulated: len(o.Points),
			Evals:            o.Stats.Requests,
		}
		if o.Search != nil {
			m.Evals = o.Search.Evals
		}
		if fullHV > 0 {
			m.Hypervolume = pareto.Hypervolume2D(o.Front, pareto.Cost, pareto.Latency, refC, refL) / fullHV
		}
		c.Metrics = append(c.Metrics, m)
	}
	return c
}

// String renders the comparison in the layout of the paper's Table 2.
func (c *Comparison) String() string {
	s := fmt.Sprintf("%-10s %-22s", "Benchmark", "Category")
	for _, m := range c.Metrics {
		s += fmt.Sprintf(" %14s", m.Strategy)
	}
	s += "\n"
	row := func(label string, f func(m StrategyMetrics) string) {
		s += fmt.Sprintf("%-10s %-22s", c.Benchmark, label)
		for _, m := range c.Metrics {
			s += fmt.Sprintf(" %14s", f(m))
		}
		s += "\n"
	}
	row("Work [accesses]", func(m StrategyMetrics) string { return fmt.Sprintf("%d", m.WorkAccesses) })
	row("Evals", func(m StrategyMetrics) string { return fmt.Sprintf("%d", m.Evals) })
	row("Time", func(m StrategyMetrics) string { return m.Wall.Round(time.Millisecond).String() })
	row("Coverage [%]", func(m StrategyMetrics) string { return fmt.Sprintf("%.0f%%", m.Coverage*100) })
	row("Avg. cost dist [%]", func(m StrategyMetrics) string { return fmt.Sprintf("%.2f%%", m.Distance.CostPct) })
	row("Avg. perf. dist [%]", func(m StrategyMetrics) string { return fmt.Sprintf("%.2f%%", m.Distance.LatencyPct) })
	row("Avg. energ. dist [%]", func(m StrategyMetrics) string { return fmt.Sprintf("%.2f%%", m.Distance.EnergyPct) })
	row("Hypervolume [rel]", func(m StrategyMetrics) string { return fmt.Sprintf("%.3f", m.Hypervolume) })
	return s
}
