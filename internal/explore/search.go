package explore

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"memorex/internal/connect"
	"memorex/internal/core"
	"memorex/internal/engine"
	"memorex/internal/mem"
	"memorex/internal/trace"
)

// This file implements the two heuristic exploration drivers (GA and
// SA) for design spaces where Full and Pruned enumeration stop scaling.
// Both walk the same genome space — a (memory architecture, clustering
// level, per-cluster component) triple — and share one evaluation
// economy:
//
//   - the time-sampling estimator is the cheap fitness tier: every new
//     genome is estimated with one Sampled-mode engine request;
//   - candidates near the estimated pareto front are promoted to a
//     Full-mode replay, and the observed estimator error (the obs
//     estimator-error signal) widens or narrows the promotion band;
//   - the pareto archive grows incrementally as results arrive, and
//     Outcome.Points holds exactly the promoted (fully simulated)
//     designs, so Table 2's coverage metric applies unchanged.
//
// All evaluations flow through engine.Evaluate in deterministic
// submission order, so the engine's memoization, timing-signature dedup
// and batch replay make revisits free. Every random decision draws from
// a PRNG split deterministically from SearchConfig.Seed (per
// generation/step, per individual/chain), never from shared state, so
// the same seed yields byte-identical fronts at any worker count.

// SearchProvenance records how a heuristic front was produced; it is
// embedded in reports so every front is reproducible from its report.
type SearchProvenance struct {
	Strategy   string `json:"strategy"`
	Seed       int64  `json:"seed"`
	Budget     int    `json:"budget"`
	Population int    `json:"population"`
	// Evals counts the evaluation requests the driver submitted to the
	// engine (sampled estimates + full promotions); locally
	// deduplicated revisits are excluded.
	Evals int64 `json:"evals"`
	// Generations counts GA generations, Steps SA annealing steps.
	Generations int `json:"generations,omitempty"`
	Steps       int `json:"steps,omitempty"`
	// Promotions counts the candidates promoted to full simulation.
	Promotions int64 `json:"promotions,omitempty"`
}

// rng is a splitmix64 PRNG. Drivers never share one: each decision site
// derives its own from (seed, site tags...), so randomness is a pure
// function of the configuration, not of scheduling.
type rng struct{ state uint64 }

// splitRNG derives an independent stream from the seed and tag path.
func splitRNG(seed int64, tags ...uint64) *rng {
	r := &rng{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x1F0A5C3B2E4D6789}
	for _, t := range tags {
		r.state ^= t*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
		r.next()
	}
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// memSpace is the decoded connectivity search space of one memory
// architecture: its clustering hierarchy and, per level, the feasible
// component choices of every cluster.
type memSpace struct {
	arch     *mem.Architecture
	channels []mem.Channel
	levels   []core.Clustering
	// feas[level][cluster] lists the library components that can
	// implement the cluster. Levels with an unimplementable cluster are
	// dropped at build time.
	feas [][][]connect.Component
}

// genome is one search candidate: a memory architecture, a clustering
// level and one component choice per cluster of that level.
type genome struct {
	mem   int
	level int
	comps []int
}

// key returns the canonical identity of the genome for local dedup.
func (g genome) key() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(g.mem))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(g.level))
	for _, c := range g.comps {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

func (g genome) clone() genome {
	out := g
	out.comps = append([]int(nil), g.comps...)
	return out
}

// buildSearchSpace profiles every memory architecture into its BRG and
// precomputes the feasible-component table of every clustering level.
func buildSearchSpace(t *trace.Trace, memArchs []*mem.Architecture, lib []connect.Component) ([]*memSpace, error) {
	var spaces []*memSpace
	for _, arch := range memArchs {
		brg, err := core.BuildBRG(t, arch)
		if err != nil {
			return nil, err
		}
		ms := &memSpace{arch: arch, channels: brg.Channels}
		for _, level := range core.Levels(brg) {
			feas := make([][]connect.Component, len(level))
			ok := true
			for i, cl := range level {
				ports := len(cl) + 1
				off := brg.Channels[cl[0]].OffChip
				feas[i] = core.FeasibleComponents(lib, ports, off)
				if len(feas[i]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ms.levels = append(ms.levels, level)
			ms.feas = append(ms.feas, feas)
		}
		if len(ms.levels) > 0 {
			spaces = append(spaces, ms)
		}
	}
	if len(spaces) == 0 {
		return nil, fmt.Errorf("explore: search space is empty (no implementable clustering level)")
	}
	return spaces, nil
}

// decode builds the connectivity architecture of a genome. Cluster
// slices are shared with the level table — candidates never mutate
// them.
func (ms *memSpace) decode(g genome) *connect.Arch {
	assign := make([]connect.Component, len(g.comps))
	for i, c := range g.comps {
		assign[i] = ms.feas[g.level][i][c]
	}
	return &connect.Arch{Channels: ms.channels, Clusters: ms.levels[g.level], Assign: assign}
}

// randomGenome draws a random genome over the arch's space. The level
// draw is biased toward the coarse end of the hierarchy (the max of two
// uniforms): coarse levels use fewer components, so the cost-cheap half
// of the front concentrates there, while fine levels still get sampled.
func randomGenome(memIdx int, ms *memSpace, r *rng) genome {
	level := max(r.intn(len(ms.levels)), r.intn(len(ms.levels)))
	comps := make([]int, len(ms.feas[level]))
	for i := range comps {
		comps[i] = r.intn(len(ms.feas[level][i]))
	}
	return genome{mem: memIdx, level: level, comps: comps}
}

// cornerGenome returns an extreme genome of one clustering level: every
// cluster takes its first (lo) or last (hi) feasible component. The
// library orders components roughly cheap-to-rich, so the corners land
// near the cost and performance endpoints of the pareto front — seeding
// them gives every driver the front extremes for two evaluations per
// level.
func cornerGenome(memIdx int, ms *memSpace, level int, hi bool) genome {
	comps := make([]int, len(ms.feas[level]))
	if hi {
		for i := range comps {
			comps[i] = len(ms.feas[level][i]) - 1
		}
	}
	return genome{mem: memIdx, level: level, comps: comps}
}

// gridSize is the number of assignments of one clustering level (the
// product of per-cluster feasible-component counts), capped at lim+1.
func (ms *memSpace) gridSize(level, lim int) int {
	n := 1
	for _, feas := range ms.feas[level] {
		n *= len(feas)
		if n > lim {
			return lim + 1
		}
	}
	return n
}

// enumLevel enumerates every genome of one clustering level in
// mixed-radix odometer order.
func enumLevel(memIdx int, ms *memSpace, level int) []genome {
	var out []genome
	comps := make([]int, len(ms.feas[level]))
	for {
		out = append(out, genome{mem: memIdx, level: level, comps: append([]int(nil), comps...)})
		i := 0
		for ; i < len(comps); i++ {
			comps[i]++
			if comps[i] < len(ms.feas[level][i]) {
				break
			}
			comps[i] = 0
		}
		if i == len(comps) {
			return out
		}
	}
}

// sweepGenomes picks the clustering levels small enough to enumerate
// outright — coarsest first, round-robin across architectures so no
// arch monopolizes the allowance — and returns their full grids.
// Searching a 16-design grid costs more evaluations than enumerating
// it, and the coarse grids are where front density is highest.
func sweepGenomes(mems []*memSpace, allowance int) []genome {
	var out []genome
	for round := 0; allowance > 0; round++ {
		any := false
		for mi, ms := range mems {
			level := len(ms.levels) - 1 - round
			if level < 0 {
				continue
			}
			any = true
			if size := ms.gridSize(level, allowance); size <= allowance {
				allowance -= size
				out = append(out, enumLevel(mi, ms, level)...)
			}
		}
		if !any {
			break
		}
	}
	return out
}

// cornerGenomes enumerates both corners of the two coarsest clustering
// levels of an arch. Coarse levels use the fewest components and so
// dominate the cost-cheap half of the front (the paper's merge loop
// drives the same direction); their corners bracket the region where
// front density is highest.
func cornerGenomes(memIdx int, ms *memSpace) []genome {
	n := len(ms.levels)
	levels := []int{n - 1}
	if n > 1 {
		levels = append(levels, n-2)
	}
	var out []genome
	for _, level := range levels {
		out = append(out, cornerGenome(memIdx, ms, level, false), cornerGenome(memIdx, ms, level, true))
	}
	return out
}

// remapLevel moves a genome to a different clustering level of the same
// architecture, inheriting component choices positionally (clamped to
// each cluster's feasible range).
func remapLevel(ms *memSpace, g genome, level int) genome {
	out := genome{mem: g.mem, level: level, comps: make([]int, len(ms.feas[level]))}
	for i := range out.comps {
		src := g.comps[min(i, len(g.comps)-1)]
		out.comps[i] = src % len(ms.feas[level][i])
	}
	return out
}

// candidate is one archive entry: a genome with its best-known metrics
// (sampled estimate until promoted, full-simulation values after).
type candidate struct {
	g    genome
	conn *connect.Arch
	cost float64
	lat  float64
	nrg  float64
	full bool
}

// searcher holds the state shared by both drivers.
type searcher struct {
	eng   *engine.Engine
	t     *trace.Trace
	cfg   core.Config
	scfg  core.SearchConfig
	mems  []*memSpace
	out   *Outcome
	prov  *SearchProvenance
	byKey map[string]int
	arch  []candidate
	// margin is the promotion band: candidates whose estimate is within
	// this relative distance of the estimated front are promoted. It
	// adapts to the observed estimator error (the promote-on-
	// estimator-error rule).
	margin  float64
	errSum  float64
	errN    int64
	evals   int64
	workSum int64
	// estReserve is the slice of the budget estimates may never spend:
	// it guarantees the final promotion pass always has evaluations
	// left, so even a budget dwarfed by the space (or consumed whole by
	// seeding) yields fully simulated points instead of an empty front.
	estReserve int
}

// engine phase labels of the heuristic drivers.
const (
	phaseSearchEstimate = "explore/search-estimate"
	phaseSearchPromote  = "explore/search-promote"
)

func newSearcher(eng *engine.Engine, t *trace.Trace, mems []*memSpace, cfg core.Config, scfg core.SearchConfig, strategy Strategy, out *Outcome) *searcher {
	prov := &SearchProvenance{
		Strategy:   strategy.String(),
		Seed:       scfg.Seed,
		Budget:     scfg.Budget,
		Population: scfg.Population,
	}
	out.Search = prov
	return &searcher{
		eng:        eng,
		t:          t,
		cfg:        cfg,
		scfg:       scfg,
		mems:       mems,
		out:        out,
		prov:       prov,
		byKey:      map[string]int{},
		margin:     0.02,
		estReserve: max(2, scfg.Budget/8),
	}
}

func (s *searcher) remaining() int { return s.scfg.Budget - int(s.evals) }

// estimate evaluates every not-yet-seen genome with the sampling
// estimator and returns the archive index of each input genome (-1 when
// the budget ran out before it could be estimated). Duplicates — within
// the batch or against the archive — cost nothing.
func (s *searcher) estimate(ctx context.Context, gs []genome, limit int) ([]int, error) {
	idx := make([]int, len(gs))
	var reqs []engine.Request
	var newIdx []int
	budget := s.remaining() - s.estReserve
	if budget < 0 {
		budget = 0
	}
	if limit > 0 && limit < budget {
		budget = limit
	}
	for i, g := range gs {
		k := g.key()
		if j, ok := s.byKey[k]; ok {
			idx[i] = j
			continue
		}
		if len(reqs) >= budget {
			idx[i] = -1
			continue
		}
		ms := s.mems[g.mem]
		conn := ms.decode(g)
		j := len(s.arch)
		s.byKey[k] = j
		s.arch = append(s.arch, candidate{g: g, conn: conn})
		idx[i] = j
		newIdx = append(newIdx, j)
		reqs = append(reqs, engine.Request{
			Trace:    s.t,
			Mem:      ms.arch,
			Conn:     conn,
			Mode:     engine.Sampled,
			Sampling: s.cfg.Sampling,
			Exact:    s.cfg.Exact,
			Phase:    phaseSearchEstimate,
		})
	}
	if len(reqs) == 0 {
		return idx, nil
	}
	vals, err := s.eng.Evaluate(ctx, reqs)
	if err != nil {
		return nil, err
	}
	s.evals += int64(len(reqs))
	s.eng.Metrics().Counter("explore/search/estimates").Add(int64(len(reqs)))
	for i, v := range vals {
		c := &s.arch[newIdx[i]]
		c.cost, c.lat, c.nrg = v.Cost, v.Latency, v.Energy
		s.workSum += v.Work
	}
	return idx, nil
}

// marginDominated reports whether archive candidate i is beaten by more
// than the relative margin m on both axes of some projection — by any
// other candidate, in all three metric projections. A candidate that
// survives in at least one projection is "near the front" and worth
// promoting (the union mirrors selectedFronts). At m = 0 this is plain
// strict pareto domination per projection.
func (s *searcher) marginDominated(i int, m float64) bool {
	p := &s.arch[i]
	projs := [3][2]float64{
		{p.cost, p.lat},
		{p.lat, p.nrg},
		{p.cost, p.nrg},
	}
	survive := [3]bool{true, true, true}
	for qi := range s.arch {
		if qi == i {
			continue
		}
		q := &s.arch[qi]
		qp := [3][2]float64{
			{q.cost, q.lat},
			{q.lat, q.nrg},
			{q.cost, q.nrg},
		}
		any := false
		for pi := range projs {
			if survive[pi] {
				x, y := projs[pi][0]*(1-m), projs[pi][1]*(1-m)
				if qp[pi][0] <= x && qp[pi][1] <= y &&
					(m > 0 || qp[pi][0] < x || qp[pi][1] < y) {
					survive[pi] = false
				}
			}
			any = any || survive[pi]
		}
		if !any {
			return true
		}
	}
	return false
}

// promote fully simulates up to cap unpromoted candidates within the
// promotion band and folds the exact values back into the archive. The
// estimator error observed on each promotion adapts the band: sloppy
// estimates widen it, tight ones narrow it toward its floor.
func (s *searcher) promote(ctx context.Context, limit int) error {
	budget := s.remaining()
	if budget <= 0 {
		return nil
	}
	if limit > 0 && limit < budget {
		budget = limit
	}
	// Front members first, then the surrounding margin band: when the
	// budget truncates the pass, the sure winners are already promoted.
	var picks []int
	picked := map[int]bool{}
	for _, m := range []float64{0, s.margin} {
		for i := range s.arch {
			if len(picks) >= budget {
				break
			}
			c := &s.arch[i]
			if c.full || picked[i] || s.marginDominated(i, m) {
				continue
			}
			picked[i] = true
			picks = append(picks, i)
		}
	}
	if len(picks) == 0 {
		return nil
	}
	reqs := make([]engine.Request, len(picks))
	for i, j := range picks {
		c := &s.arch[j]
		reqs[i] = engine.Request{
			Trace: s.t,
			Mem:   s.mems[c.g.mem].arch,
			Conn:  c.conn,
			Mode:  engine.Full,
			Exact: s.cfg.Exact,
			Phase: phaseSearchPromote,
		}
	}
	vals, err := s.eng.Evaluate(ctx, reqs)
	if err != nil {
		return err
	}
	s.evals += int64(len(reqs))
	s.prov.Promotions += int64(len(reqs))
	m := s.eng.Metrics()
	m.Counter("explore/search/promotions").Add(int64(len(reqs)))
	estErr := m.Histogram("sampling/est_err_pct")
	o := s.eng.Observer()
	for i, v := range vals {
		c := &s.arch[picks[i]]
		if v.Latency > 0 {
			rel := math.Abs(c.lat-v.Latency) / v.Latency
			estErr.Observe(100 * rel)
			if o.Enabled() {
				o.EstimatorError(s.mems[c.g.mem].arch.Name, c.conn.Describe(s.mems[c.g.mem].arch),
					c.lat, v.Latency, 100*rel)
			}
			s.errSum += rel
			s.errN++
		}
		c.cost, c.lat, c.nrg = v.Cost, v.Latency, v.Energy
		c.full = true
		s.workSum += v.Work
		s.out.Points = append(s.out.Points, core.DesignPoint{
			MemArch: s.mems[c.g.mem].arch,
			Conn:    c.conn,
			Cost:    v.Cost,
			Latency: v.Latency,
			Energy:  v.Energy,
		})
	}
	// Promote-on-estimator-error rule: the band is two average
	// errors wide, floored at 1% and capped at 8%.
	if s.errN > 0 {
		s.margin = math.Min(0.08, math.Max(0.01, 2*s.errSum/float64(s.errN)))
	}
	m.Gauge("explore/search/front_size").Set(float64(s.frontSize()))
	return nil
}

// frontSize counts the cost/latency-nondominated archive entries.
func (s *searcher) frontSize() int {
	n := 0
	for i := range s.arch {
		if !s.marginDominated(i, 0) {
			n++
		}
	}
	return n
}

// refine estimates every single-move neighbor (one component step, one
// level step) of the current front candidates — the memetic endgame
// that secures coverage around the front before the final promotion
// pass. Called in a loop it performs hill climbing on the front itself:
// every improving neighbor joins the archive and becomes next round's
// seed.
func (s *searcher) refine(ctx context.Context, limit int) error {
	// Seed from a thin band around the front, not the strict front: a
	// true front member whose estimate is off by a sampling error would
	// otherwise never be walked from, stalling the traversal one step
	// short of its neighbors.
	band := math.Min(s.margin/2, 0.015)
	var seeds []int
	for i := range s.arch {
		if !s.marginDominated(i, band) {
			seeds = append(seeds, i)
		}
	}
	var moves []genome
	for _, i := range seeds {
		g := s.arch[i].g
		ms := s.mems[g.mem]
		for ci := range g.comps {
			for _, d := range []int{-1, 1} {
				nc := g.comps[ci] + d
				if nc < 0 || nc >= len(ms.feas[g.level][ci]) {
					continue
				}
				ng := g.clone()
				ng.comps[ci] = nc
				moves = append(moves, ng)
			}
		}
		for _, d := range []int{-1, 1} {
			nl := g.level + d
			if nl < 0 || nl >= len(ms.levels) {
				continue
			}
			moves = append(moves, remapLevel(ms, g, nl))
		}
	}
	_, err := s.estimate(ctx, moves, limit)
	return err
}

// scalar is the normalized aggregate fitness used only to break rank
// ties and to measure improvement magnitudes; lower is better.
func (s *searcher) scalar(c *candidate, lo, span [3]float64) float64 {
	return (c.cost-lo[0])/span[0] + (c.lat-lo[1])/span[1] + (c.nrg-lo[2])/span[2]
}

// bounds returns the archive-wide metric minima and spans for
// normalization (spans floored to avoid division by zero).
func (s *searcher) bounds() (lo, span [3]float64) {
	lo = [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	hi := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for i := range s.arch {
		c := &s.arch[i]
		for k, v := range [3]float64{c.cost, c.lat, c.nrg} {
			lo[k] = math.Min(lo[k], v)
			hi[k] = math.Max(hi[k], v)
		}
	}
	for k := range span {
		span[k] = math.Max(hi[k]-lo[k], 1e-9)
	}
	return lo, span
}

// dominates reports whether a is no worse than b on all three metrics
// and strictly better on at least one.
func dominates(a, b *candidate) bool {
	return a.cost <= b.cost && a.lat <= b.lat && a.nrg <= b.nrg &&
		(a.cost < b.cost || a.lat < b.lat || a.nrg < b.nrg)
}

// runSearch dispatches the heuristic driver of the strategy and
// finishes with the shared endgame: neighborhood refinement around the
// front, then a final promotion pass with the leftover budget.
func runSearch(ctx context.Context, eng *engine.Engine, t *trace.Trace, sp *Space, strategy Strategy, cfg core.Config, out *Outcome) error {
	scfg, err := cfg.Search.Normalize()
	if err != nil {
		return err
	}
	mems, err := buildSearchSpace(t, sp.AllMem, cfg.Library)
	if err != nil {
		return err
	}
	stop := eng.StartPhase("explore/search")
	defer stop()
	s := newSearcher(eng, t, mems, cfg, scfg, strategy, out)
	if err := s.seed(ctx); err != nil {
		return err
	}
	switch strategy {
	case GA:
		err = s.runGA(ctx)
	case SA:
		err = s.runSA(ctx)
	default:
		err = fmt.Errorf("explore: %v is not a heuristic strategy", strategy)
	}
	if err != nil {
		return err
	}
	if err := s.endgame(ctx); err != nil {
		return err
	}
	s.prov.Evals = s.evals
	s.out.WorkAccesses = s.workSum
	eng.Metrics().Counter("explore/search/evals").Add(s.evals)
	return nil
}

// seed brackets every architecture's subspace with its corner genomes
// and exhaustively sweeps the coarse levels that are cheaper to
// enumerate than to search (a third of the budget at most). Both
// drivers then start with the front extremes and the densest front
// region already in the archive.
func (s *searcher) seed(ctx context.Context) error {
	var seeds []genome
	for i, ms := range s.mems {
		seeds = append(seeds, cornerGenomes(i, ms)...)
	}
	seeds = append(seeds, sweepGenomes(s.mems, s.scfg.Budget/3)...)
	_, err := s.estimate(ctx, seeds, 0)
	return err
}

// endgame alternates front-neighborhood refinement and promotion until
// the search converges (no new candidates) or the budget is gone.
// Promotion replaces front estimates with exact values, so each
// refinement round climbs from progressively truer ground.
func (s *searcher) endgame(ctx context.Context) error {
	// Discovery rounds: expand the front with cheap estimates only,
	// always reserving enough budget to fully promote the front (plus
	// half again for its margin band) afterwards.
	for {
		fs := s.frontSize()
		reserve := fs + fs/2
		if s.remaining() <= reserve {
			break
		}
		before := len(s.arch)
		if err := s.refine(ctx, s.remaining()-reserve); err != nil {
			return err
		}
		if len(s.arch) == before {
			break
		}
	}
	// Promotion flush: the whole front and its margin band, exactly
	// what the reserve was kept for.
	return s.promote(ctx, 0)
}

// runGA is the generational GA driver: one island per memory
// architecture (the population is split evenly), binary-tournament
// selection on pareto rank, uniform crossover within a level,
// component/level mutation, μ+λ elitist survival, and periodic random
// immigrants for diversity. Every generation promotes the current
// near-front band to full simulation.
func (s *searcher) runGA(ctx context.Context) error {
	seed := s.scfg.Seed
	nIsl := len(s.mems)
	ipop := s.scfg.Population / nIsl
	if ipop < 4 {
		ipop = 4
	}
	genCounter := s.eng.Metrics().Counter("explore/search/generations")
	improv := s.eng.Metrics().Histogram("explore/search/fitness_improv_pct")

	// Deterministic initial populations, one island per architecture:
	// the arch's corner genomes (already estimated — dedup makes them
	// free) plus uniform randoms, trimmed to ipop by fitness.
	islands := make([][]int, nIsl)
	var initial []genome
	var bounds [][2]int
	for i, ms := range s.mems {
		start := len(initial)
		initial = append(initial, cornerGenomes(i, ms)...)
		for j := 0; j < ipop; j++ {
			initial = append(initial, randomGenome(i, ms, splitRNG(seed, 0x6A01, uint64(i), uint64(j))))
		}
		bounds = append(bounds, [2]int{start, len(initial)})
	}
	idx, err := s.estimate(ctx, initial, 0)
	if err != nil {
		return err
	}
	for i := range s.mems {
		islands[i] = s.survivors(dedupIdx(idx[bounds[i][0]:bounds[i][1]]), ipop)
	}

	mainBudget := s.scfg.Budget * 50 / 100
	prevBest := make([]float64, nIsl)
	for i := range prevBest {
		prevBest[i] = math.Inf(1)
	}
	for gen := 1; int(s.evals) < mainBudget && gen < 10_000; gen++ {
		genCounter.Inc()
		s.prov.Generations = gen
		lo, span := s.bounds()
		var offspring []genome
		offIsland := make([]int, 0, nIsl*ipop)
		for i := range islands {
			ranks := s.rankOf(islands[i])
			for j := 0; j < ipop; j++ {
				r := splitRNG(seed, 0x6A02, uint64(gen), uint64(i), uint64(j))
				var g genome
				if j == ipop-1 && gen%3 == 0 {
					// Immigrant: a fresh random genome keeps the island
					// exploring after convergence.
					g = randomGenome(i, s.mems[i], r)
				} else {
					p1 := s.tournament(islands[i], ranks, lo, span, r)
					g = s.arch[p1].g.clone()
					if r.float() < s.scfg.CrossoverRate {
						p2 := s.tournament(islands[i], ranks, lo, span, r)
						g = s.crossover(g, s.arch[p2].g, r)
					}
					g = s.mutate(g, r)
				}
				offspring = append(offspring, g)
				offIsland = append(offIsland, i)
			}
		}
		offIdx, err := s.estimate(ctx, offspring, 0)
		if err != nil {
			return err
		}
		// μ+λ survival per island: parents and offspring compete, the
		// best ipop (by rank, then scalar, then age) survive.
		for i := range islands {
			pool := append([]int(nil), islands[i]...)
			for k, oi := range offIdx {
				if offIsland[k] == i && oi >= 0 {
					pool = append(pool, oi)
				}
			}
			pool = dedupIdx(pool)
			islands[i] = s.survivors(pool, ipop)
			if best := s.bestScalar(islands[i], lo, span); best < prevBest[i] {
				if !math.IsInf(prevBest[i], 1) && prevBest[i] > 0 {
					improv.Observe(100 * (prevBest[i] - best) / prevBest[i])
				}
				prevBest[i] = best
			}
		}
		// A small calibration promotion per generation: enough full
		// replays to keep the estimator-error margin honest without
		// starving the endgame's budget.
		if err := s.promote(ctx, 4); err != nil {
			return err
		}
		if s.remaining() <= 0 {
			break
		}
	}
	return nil
}

// runSA is the parallel simulated-annealing driver: Population chains
// assigned round-robin to the memory architectures, each proposing one
// move per step (component step, level step, or a rare restart) and
// accepting by the Metropolis rule on the scalarized relative
// worsening under a geometric temperature schedule.
func (s *searcher) runSA(ctx context.Context) error {
	seed := s.scfg.Seed
	nChains := s.scfg.Population
	if nChains < 2*len(s.mems) {
		nChains = 2 * len(s.mems)
	}
	stepCounter := s.eng.Metrics().Counter("explore/search/steps")
	improv := s.eng.Metrics().Histogram("explore/search/fitness_improv_pct")

	// The first chains of each architecture start from its corner
	// genomes (already estimated — dedup makes them free), the rest
	// from uniform randoms.
	var initial []genome
	for c := 0; c < nChains; c++ {
		mi := c % len(s.mems)
		slot := c / len(s.mems)
		if cs := cornerGenomes(mi, s.mems[mi]); slot < len(cs) {
			initial = append(initial, cs[slot])
			continue
		}
		initial = append(initial, randomGenome(mi, s.mems[mi], splitRNG(seed, 0x5A01, uint64(c))))
	}
	cur, err := s.estimate(ctx, initial, 0)
	if err != nil {
		return err
	}
	for c := range cur {
		if cur[c] < 0 {
			cur[c] = 0 // budget smaller than the chain count: park on entry 0
		}
	}

	mainBudget := s.scfg.Budget * 50 / 100
	for step := 1; int(s.evals) < mainBudget && step < 100_000; step++ {
		stepCounter.Inc()
		s.prov.Steps = step
		temp := s.scfg.InitTemp * math.Pow(s.scfg.Cooling, float64(step))
		rngs := make([]*rng, nChains)
		proposals := make([]genome, nChains)
		for c := 0; c < nChains; c++ {
			rngs[c] = splitRNG(seed, 0x5A02, uint64(step), uint64(c))
			proposals[c] = s.proposeMove(s.arch[cur[c]].g, rngs[c])
		}
		idx, err := s.estimate(ctx, proposals, 0)
		if err != nil {
			return err
		}
		lo, span := s.bounds()
		for c := 0; c < nChains; c++ {
			if idx[c] < 0 {
				continue // out of budget: keep the current state
			}
			prev, next := &s.arch[cur[c]], &s.arch[idx[c]]
			accept := false
			switch {
			case dominates(next, prev) || (next.cost == prev.cost && next.lat == prev.lat && next.nrg == prev.nrg):
				accept = true
			default:
				delta := relWorsening(prev, next)
				if delta == 0 {
					accept = true // incomparable but no axis worsened
				} else if temp > 0 && rngs[c].float() < math.Exp(-delta/temp) {
					accept = true
				}
			}
			if accept {
				ps, ns := s.scalar(prev, lo, span), s.scalar(next, lo, span)
				if ns < ps && ps > 0 {
					improv.Observe(100 * (ps - ns) / ps)
				}
				cur[c] = idx[c]
			}
		}
		// A small calibration promotion every few steps keeps the
		// estimator-error margin honest without starving the endgame.
		if step%8 == 0 {
			if err := s.promote(ctx, 4); err != nil {
				return err
			}
		}
		if s.remaining() <= 0 {
			break
		}
	}
	return nil
}

// relWorsening is the SA acceptance energy: the summed relative
// worsening of every axis the move degrades.
func relWorsening(prev, next *candidate) float64 {
	d := 0.0
	for _, p := range [3][2]float64{{prev.cost, next.cost}, {prev.lat, next.lat}, {prev.nrg, next.nrg}} {
		if p[1] > p[0] && p[0] > 0 {
			d += (p[1] - p[0]) / p[0]
		}
	}
	return d
}

// proposeMove draws one SA neighborhood move.
func (s *searcher) proposeMove(g genome, r *rng) genome {
	ms := s.mems[g.mem]
	roll := r.float()
	switch {
	case roll < 0.05:
		// Restart: a fresh random genome of the same architecture.
		return randomGenome(g.mem, ms, r)
	case roll < 0.30 && len(ms.levels) > 1:
		// Level move: one step up or down the clustering hierarchy.
		d := 1
		if r.intn(2) == 0 {
			d = -1
		}
		nl := g.level + d
		if nl < 0 {
			nl = g.level + 1
		} else if nl >= len(ms.levels) {
			nl = g.level - 1
		}
		return remapLevel(ms, g, nl)
	default:
		// Component move: step one cluster's component, mostly to a
		// neighboring library entry (cost/speed-adjacent), sometimes
		// anywhere.
		ng := g.clone()
		ci := r.intn(len(ng.comps))
		n := len(ms.feas[g.level][ci])
		if n > 1 {
			if r.float() < 0.7 {
				d := 1
				if r.intn(2) == 0 {
					d = -1
				}
				ng.comps[ci] = (ng.comps[ci] + d + n) % n
			} else {
				ng.comps[ci] = r.intn(n)
			}
		}
		return ng
	}
}

// mutate applies the GA mutation operators: per-cluster component
// mutation (step or uniform), and an occasional level move.
func (s *searcher) mutate(g genome, r *rng) genome {
	ms := s.mems[g.mem]
	if r.float() < 0.15 && len(ms.levels) > 1 {
		d := 1
		if r.intn(2) == 0 {
			d = -1
		}
		nl := g.level + d
		if nl < 0 {
			nl = 1
		} else if nl >= len(ms.levels) {
			nl = len(ms.levels) - 2
		}
		g = remapLevel(ms, g, nl)
	}
	for ci := range g.comps {
		if r.float() >= s.scfg.MutationRate {
			continue
		}
		n := len(ms.feas[g.level][ci])
		if n <= 1 {
			continue
		}
		if r.float() < 0.6 {
			d := 1
			if r.intn(2) == 0 {
				d = -1
			}
			g.comps[ci] = (g.comps[ci] + d + n) % n
		} else {
			g.comps[ci] = r.intn(n)
		}
	}
	return g
}

// crossover recombines two parents. Same level: uniform gene exchange;
// different levels: keep a's level, splicing b's genes positionally.
func (s *searcher) crossover(a genome, b genome, r *rng) genome {
	ms := s.mems[a.mem]
	out := a.clone()
	for i := range out.comps {
		if r.intn(2) == 0 {
			continue
		}
		src := b.comps[min(i, len(b.comps)-1)]
		out.comps[i] = src % len(ms.feas[out.level][i])
	}
	return out
}

// rankOf computes the nondomination rank of each population member
// (rank 0 = nondominated within the population).
func (s *searcher) rankOf(pop []int) map[int]int {
	ranks := make(map[int]int, len(pop))
	remaining := append([]int(nil), pop...)
	rank := 0
	for len(remaining) > 0 {
		var front, rest []int
		for _, i := range remaining {
			dominated := false
			for _, j := range remaining {
				if i != j && dominates(&s.arch[j], &s.arch[i]) {
					dominated = true
					break
				}
			}
			if dominated {
				rest = append(rest, i)
			} else {
				front = append(front, i)
			}
		}
		if len(front) == 0 { // all mutually identical: flush
			front, rest = remaining, nil
		}
		for _, i := range front {
			ranks[i] = rank
		}
		remaining = rest
		rank++
	}
	return ranks
}

// tournament picks the better of two random population members: lower
// rank wins, ties break on the normalized scalar, then on archive age.
func (s *searcher) tournament(pop []int, ranks map[int]int, lo, span [3]float64, r *rng) int {
	a, b := pop[r.intn(len(pop))], pop[r.intn(len(pop))]
	if ranks[a] != ranks[b] {
		if ranks[a] < ranks[b] {
			return a
		}
		return b
	}
	sa, sb := s.scalar(&s.arch[a], lo, span), s.scalar(&s.arch[b], lo, span)
	if sa != sb {
		if sa < sb {
			return a
		}
		return b
	}
	if a < b {
		return a
	}
	return b
}

// survivors selects the best n of the pool: by rank, then scalar, then
// archive age — a deterministic total order.
func (s *searcher) survivors(pool []int, n int) []int {
	ranks := s.rankOf(pool)
	lo, span := s.bounds()
	ordered := append([]int(nil), pool...)
	// Insertion sort keeps the selection dependency-free and stable.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && s.lessFit(ordered[j], ordered[j-1], ranks, lo, span); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	if len(ordered) > n {
		ordered = ordered[:n]
	}
	return ordered
}

func (s *searcher) lessFit(a, b int, ranks map[int]int, lo, span [3]float64) bool {
	if ranks[a] != ranks[b] {
		return ranks[a] < ranks[b]
	}
	sa, sb := s.scalar(&s.arch[a], lo, span), s.scalar(&s.arch[b], lo, span)
	if sa != sb {
		return sa < sb
	}
	return a < b
}

// bestScalar returns the minimum scalar fitness of a population.
func (s *searcher) bestScalar(pop []int, lo, span [3]float64) float64 {
	best := math.Inf(1)
	for _, i := range pop {
		best = math.Min(best, s.scalar(&s.arch[i], lo, span))
	}
	return best
}

// dedupIdx removes duplicate and invalid (-1) archive indices,
// preserving first-seen order.
func dedupIdx(idx []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, i := range idx {
		if i < 0 || seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	if len(out) == 0 {
		out = []int{0}
	}
	return out
}
