// Package explore provides the three exploration drivers compared in
// Table 2 of the paper:
//
//   - Full: brute force — every memory-modules candidate architecture is
//     combined with every connectivity clustering level and assignment,
//     and every combination is fully simulated. This determines the true
//     pareto curve (and is what the paper calls infeasible for li).
//   - Pruned: the paper's approach — only APEX's most promising memory
//     architectures enter the connectivity exploration, candidates are
//     estimated with time sampling, and only locally promising designs
//     are fully simulated (ConEx Phase I + II).
//   - Neighborhood: Pruned, widened — the memory architectures
//     neighbouring the selected ones on the cost axis are included, and
//     each architecture contributes more locally promising designs.
//
// All three drivers evaluate design points through one shared
// engine.Engine per Run call (or the caller's, via Config.Engine), so
// parallelism, memoization and cancellation behave identically across
// strategies.
//
// The package also computes Table 2's coverage and average-distance
// metrics of each strategy against the Full truth.
package explore

import (
	"context"
	"fmt"
	"time"

	"memorex/internal/apex"
	"memorex/internal/connect"
	"memorex/internal/core"
	"memorex/internal/engine"
	"memorex/internal/mem"
	"memorex/internal/pareto"
	"memorex/internal/trace"
)

// Strategy selects an exploration driver.
type Strategy int

// Exploration strategies.
const (
	Full Strategy = iota
	Pruned
	Neighborhood
	// GA is the generational genetic-algorithm driver: per-memory-
	// architecture islands evolve (clustering level, per-cluster
	// component) genomes under sampled-estimate fitness, promoting
	// near-front candidates to full simulation (see search.go).
	GA
	// SA is the simulated-annealing driver: parallel Metropolis chains
	// over the same genome space with a geometric cooling schedule.
	SA
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Full:
		return "full"
	case Pruned:
		return "pruned"
	case Neighborhood:
		return "neighborhood"
	case GA:
		return "ga"
	case SA:
		return "sa"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy maps a strategy name (the String form) back to its
// Strategy value.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "full":
		return Full, nil
	case "pruned":
		return Pruned, nil
	case "neighborhood":
		return Neighborhood, nil
	case "ga":
		return GA, nil
	case "sa":
		return SA, nil
	default:
		return 0, fmt.Errorf("explore: unknown strategy %q (want full, pruned, neighborhood, ga or sa)", name)
	}
}

// Space is the combined memory+connectivity design space the drivers
// walk. Build it from an APEX result with BuildSpace.
type Space struct {
	// AllMem is every memory-modules candidate (the Full space).
	AllMem []*mem.Architecture
	// SelectedMem is APEX's pareto selection (the Pruned entry set).
	SelectedMem []*mem.Architecture
	// NeighborMem adds the cost-axis neighbours of every selected
	// architecture (the Neighborhood entry set).
	NeighborMem []*mem.Architecture
}

// BuildSpace derives the three entry sets from an APEX exploration
// result. Neighbours are the candidates adjacent in gate cost to each
// selected design.
func BuildSpace(res *apex.Result) *Space {
	sp := &Space{}
	// Candidates sorted by cost (APEX reports them in sweep order; we
	// need the cost axis for neighbourhoods).
	sorted := append([]apex.DesignPoint(nil), res.All...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Gates < sorted[j-1].Gates; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, dp := range sorted {
		sp.AllMem = append(sp.AllMem, dp.Arch)
	}
	selected := map[*mem.Architecture]bool{}
	for _, dp := range res.Selected {
		sp.SelectedMem = append(sp.SelectedMem, dp.Arch)
		selected[dp.Arch] = true
	}
	inNbhd := map[*mem.Architecture]bool{}
	add := func(a *mem.Architecture) {
		if !inNbhd[a] {
			inNbhd[a] = true
			sp.NeighborMem = append(sp.NeighborMem, a)
		}
	}
	for i, dp := range sorted {
		if !selected[dp.Arch] {
			continue
		}
		if i > 0 {
			add(sorted[i-1].Arch)
		}
		add(dp.Arch)
		if i+1 < len(sorted) {
			add(sorted[i+1].Arch)
		}
	}
	return sp
}

// Outcome is the result of one exploration strategy.
type Outcome struct {
	Strategy Strategy
	// Points is every fully simulated design the strategy produced.
	Points []core.DesignPoint
	// Front is the strategy's cost/latency pareto front.
	Front []pareto.Point
	// WorkAccesses counts all simulated accesses (estimation + full)
	// actually performed; cache-hit evaluations contribute nothing.
	WorkAccesses int64
	// Wall is the measured wall-clock time of the strategy.
	Wall time.Duration
	// Stats snapshots the evaluation engine when the strategy finished.
	Stats engine.Stats
	// Search records the heuristic-search provenance (strategy, seed,
	// budget, evaluations issued); nil for the enumeration strategies.
	Search *SearchProvenance
}

// Run executes the given strategy over the space. All design-point
// evaluations go through one engine (cfg.Engine, or a fresh private one
// per call — note that sharing an engine across strategies lets its
// memo cache transfer simulations between them, which skews Table 2's
// work comparison).
func Run(ctx context.Context, t *trace.Trace, sp *Space, strategy Strategy, cfg core.Config) (*Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := cfg.EngineOrNew()
	cfg.Engine = eng
	start := time.Now()
	out := &Outcome{Strategy: strategy}
	switch strategy {
	case Full:
		if err := runFull(ctx, eng, t, sp.AllMem, cfg, out); err != nil {
			return nil, err
		}
	case Pruned:
		res, err := core.Explore(ctx, t, sp.SelectedMem, cfg)
		if err != nil {
			return nil, err
		}
		out.Points = res.Combined
		out.WorkAccesses = res.EstimatedAccesses + res.SimulatedAccesses
	case Neighborhood:
		wide := cfg
		wide.KeepPerArch = cfg.KeepPerArch * 2
		res, err := core.Explore(ctx, t, sp.NeighborMem, wide)
		if err != nil {
			return nil, err
		}
		out.Points = res.Combined
		out.WorkAccesses = res.EstimatedAccesses + res.SimulatedAccesses
		// Expand the connectivity neighborhood of the selected (pareto)
		// designs: fully simulate each single-component swap (the
		// paper's "points in the neighborhood of the selected points").
		sel := selectedFronts(res.Combined)
		extra, work, err := connectivityNeighbors(ctx, eng, t, res.Combined, sel, cfg)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, extra...)
		out.WorkAccesses += work
	case GA, SA:
		if err := runSearch(ctx, eng, t, sp, strategy, cfg, out); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("explore: unknown strategy %d", strategy)
	}
	pts := make([]pareto.Point, len(out.Points))
	for i := range out.Points {
		pts[i] = out.Points[i].Point()
	}
	out.Front = pareto.Front(pts, pareto.Cost, pareto.Latency)
	out.Wall = time.Since(start)
	out.Stats = eng.Stats()
	return out, nil
}

// selectedFronts returns the union of the three 2-D pareto fronts of the
// designs — the "selected points" whose neighborhood is worth expanding.
func selectedFronts(points []core.DesignPoint) []core.DesignPoint {
	pts := make([]pareto.Point, len(points))
	for i := range points {
		pts[i] = points[i].Point()
		pts[i].Meta = i
	}
	seen := map[int]bool{}
	var out []core.DesignPoint
	for _, proj := range [][2]pareto.Dim{
		{pareto.Cost, pareto.Latency},
		{pareto.Latency, pareto.Energy},
		{pareto.Cost, pareto.Energy},
	} {
		for _, p := range pareto.Front(pts, proj[0], proj[1]) {
			i := p.Meta.(int)
			if !seen[i] {
				seen[i] = true
				out = append(out, points[i])
			}
		}
	}
	return out
}

// connectivityNeighbors fully simulates every single-component swap of
// every design in expand, skipping designs already present in seed (and
// deduplicating across the generated neighbors themselves, so the
// outcome holds no duplicate design points even though the engine would
// memoize the repeats anyway).
func connectivityNeighbors(ctx context.Context, eng *engine.Engine, t *trace.Trace, seed, expand []core.DesignPoint, cfg core.Config) ([]core.DesignPoint, int64, error) {
	type job struct {
		arch *mem.Architecture
		conn *connect.Arch
		base *connect.Arch
	}
	seen := map[string]bool{}
	sig := func(arch *mem.Architecture, conn *connect.Arch) string {
		s := arch.Name
		for i := range conn.Clusters {
			s += "|" + conn.Assign[i].Name
			for _, ch := range conn.Clusters[i] {
				s += fmt.Sprintf(",%d", ch)
			}
		}
		return s
	}
	var jobs []job
	for _, dp := range seed {
		seen[sig(dp.MemArch, dp.Conn)] = true
	}
	for _, dp := range expand {
		for ci := range dp.Conn.Clusters {
			ports := len(dp.Conn.Clusters[ci]) + 1
			off := dp.Conn.Channels[dp.Conn.Clusters[ci][0]].OffChip
			for _, comp := range cfg.Library {
				if comp.Name == dp.Conn.Assign[ci].Name || !comp.Fits(ports, off) {
					continue
				}
				neighbor := &connect.Arch{
					Channels: dp.Conn.Channels,
					Clusters: dp.Conn.Clusters,
					Assign:   append([]connect.Component(nil), dp.Conn.Assign...),
				}
				neighbor.Assign[ci] = comp
				s := sig(dp.MemArch, neighbor)
				if seen[s] {
					continue
				}
				seen[s] = true
				jobs = append(jobs, job{arch: dp.MemArch, conn: neighbor, base: dp.Conn})
			}
		}
	}
	stop := eng.StartPhase("explore/neighborhood")
	defer stop()
	reqs := make([]engine.Request, len(jobs))
	for i := range jobs {
		reqs[i] = engine.Request{
			Trace: t,
			Mem:   jobs[i].arch,
			Conn:  jobs[i].conn,
			Mode:  engine.Full,
			Exact: cfg.Exact,
			Phase: "explore/neighborhood",
			// All single-component swaps of one seed share that seed's
			// connectivity — the hint steers the delta-tree planner to
			// parent them on each other rather than across seeds.
			BaseConn: jobs[i].base,
		}
	}
	vals, err := eng.Evaluate(ctx, reqs)
	if err != nil {
		return nil, 0, err
	}
	extra := make([]core.DesignPoint, len(jobs))
	var work int64
	for i, v := range vals {
		extra[i] = core.DesignPoint{
			MemArch: jobs[i].arch,
			Conn:    jobs[i].conn,
			Cost:    v.Cost,
			Latency: v.Latency,
			Energy:  v.Energy,
		}
		work += v.Work
	}
	return extra, work, nil
}

// runFull simulates the entire combined space through the engine.
func runFull(ctx context.Context, eng *engine.Engine, t *trace.Trace, memArchs []*mem.Architecture, cfg core.Config, out *Outcome) error {
	type job struct {
		arch *mem.Architecture
		conn *connect.Arch
	}
	// Enumerate all candidate (memory, connectivity) pairs first.
	var jobs []job
	for _, arch := range memArchs {
		brg, err := core.BuildBRG(t, arch)
		if err != nil {
			return err
		}
		for _, level := range core.Levels(brg) {
			cands, _ := core.EnumerateAssignments(brg, level, cfg.Library, cfg.MaxAssignPerLevel)
			for _, c := range cands {
				jobs = append(jobs, job{arch: arch, conn: c})
			}
		}
	}
	stop := eng.StartPhase("explore/full-space")
	defer stop()
	reqs := make([]engine.Request, len(jobs))
	for i := range jobs {
		reqs[i] = engine.Request{
			Trace: t,
			Mem:   jobs[i].arch,
			Conn:  jobs[i].conn,
			Mode:  engine.Full,
			Exact: cfg.Exact,
			Phase: "explore/full-space",
		}
	}
	vals, err := eng.Evaluate(ctx, reqs)
	if err != nil {
		return err
	}
	points := make([]core.DesignPoint, len(jobs))
	var work int64
	for i, v := range vals {
		points[i] = core.DesignPoint{
			MemArch: jobs[i].arch,
			Conn:    jobs[i].conn,
			Cost:    v.Cost,
			Latency: v.Latency,
			Energy:  v.Energy,
		}
		work += v.Work
	}
	out.Points = points
	out.WorkAccesses = work
	return nil
}
