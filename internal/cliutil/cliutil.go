// Package cliutil factors the flag sets, logging setup and
// observability plumbing shared by the cmd/* binaries, so every
// command spells -bench/-scale/-seed, -workers/-exact,
// -cpuprofile/-memprofile and -events/-progress/-debug-addr the same
// way and gains new shared flags in one place.
package cliutil

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"memorex/internal/btcache"
	"memorex/internal/connect"
	"memorex/internal/core"
	"memorex/internal/explore"
	"memorex/internal/jobapi"
	"memorex/internal/obs"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

// Init configures the standard logger the way every command expects:
// no timestamps, the command name as prefix.
func Init(name string) {
	log.SetFlags(0)
	log.SetPrefix(name + ": ")
}

// SignalContext returns a context cancelled by Ctrl-C, the standard
// way the exploration commands support interruption between
// design-point evaluations.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// WorkloadFlags is the shared benchmark-selection flag set:
// -bench, -scale, -seed, and optionally -trace for commands that also
// accept a pre-recorded trace file.
type WorkloadFlags struct {
	Bench     string
	Scale     int
	Seed      int64
	TracePath string
}

// Register installs -bench/-scale/-seed on fs.
func (w *WorkloadFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&w.Bench, "bench", "compress", "benchmark: "+strings.Join(workload.Names(), ", "))
	fs.IntVar(&w.Scale, "scale", 1, "workload scale factor")
	fs.Int64Var(&w.Seed, "seed", 42, "workload seed")
}

// RegisterTraceFile additionally installs -trace, which overrides
// -bench with a pre-recorded MTR1/MTR2 trace file.
func (w *WorkloadFlags) RegisterTraceFile(fs *flag.FlagSet) {
	fs.StringVar(&w.TracePath, "trace", "", "trace file (MTR1/MTR2) instead of -bench")
}

// Config returns the workload configuration the flags select.
func (w *WorkloadFlags) Config() workload.Config {
	return workload.Config{Scale: w.Scale, Seed: w.Seed}
}

// Load returns the selected trace: the -trace file when given, else
// the generated -bench trace.
func (w *WorkloadFlags) Load() (*trace.Trace, error) {
	if w.TracePath != "" {
		f, err := os.Open(w.TracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
	wl, err := workload.ByName(w.Bench)
	if err != nil {
		return nil, err
	}
	cfg, err := w.Config().Normalize()
	if err != nil {
		return nil, err
	}
	return wl.Generate(cfg), nil
}

// EvalFlags is the shared evaluation-control flag set: -workers and
// -exact.
type EvalFlags struct {
	Workers int
	Exact   bool
}

// Register installs -workers/-exact on fs.
func (e *EvalFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&e.Workers, "workers", 0, "evaluation worker pool size (0 = all CPUs)")
	fs.BoolVar(&e.Exact, "exact", false, "use the one-phase exact simulator instead of behavior-trace replay")
}

// SearchFlags is the shared exploration-driver flag set: -strategy
// selects the driver and -search-seed/-search-budget/-search-population
// tune the heuristic (GA/SA) drivers.
type SearchFlags struct {
	Strategy   string
	Seed       int64
	Budget     int
	Population int
}

// Register installs -strategy/-search-seed/-search-budget/
// -search-population on fs.
func (s *SearchFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&s.Strategy, "strategy", "", "exploration driver: pruned (default), full, neighborhood, ga, sa")
	fs.Int64Var(&s.Seed, "search-seed", 0, "heuristic search PRNG seed (0 = the workload -seed)")
	fs.IntVar(&s.Budget, "search-budget", 0, "heuristic search evaluation budget (0 = default)")
	fs.IntVar(&s.Population, "search-population", 0, "GA population size / SA chain count (0 = default)")
}

// ParseStrategy resolves -strategy ("" = the pruned default) and
// rejects unknown names.
func (s *SearchFlags) ParseStrategy() (explore.Strategy, error) {
	if s.Strategy == "" {
		return explore.Pruned, nil
	}
	return explore.ParseStrategy(s.Strategy)
}

// Config returns the heuristic-search configuration the flags select.
// An unset -search-seed inherits the workload seed, so `-seed 42` alone
// already pins the whole run; the remaining zero fields mean the
// core.DefaultSearchConfig values.
func (s *SearchFlags) Config(workloadSeed int64) core.SearchConfig {
	seed := s.Seed
	if seed == 0 {
		seed = workloadSeed
	}
	return core.SearchConfig{Seed: seed, Budget: s.Budget, Population: s.Population}
}

// CacheFlags is the shared persistent behavior-trace cache flag set:
// -trace-cache selects the cache directory (empty = no cache) and
// -trace-cache-limit bounds its on-disk size.
type CacheFlags struct {
	Dir   string
	Limit string
}

// Register installs -trace-cache/-trace-cache-limit on fs.
func (c *CacheFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Dir, "trace-cache", "", "persist Phase A behavior traces in this directory across runs (empty = off)")
	fs.StringVar(&c.Limit, "trace-cache-limit", "", "trace cache size bound, e.g. 64M or 2G (empty = unbounded)")
}

// LimitBytes parses -trace-cache-limit (0 when unset).
func (c *CacheFlags) LimitBytes() (int64, error) {
	if c.Limit == "" {
		return 0, nil
	}
	n, err := ParseSize(c.Limit)
	if err != nil {
		return 0, fmt.Errorf("trace-cache-limit: %w", err)
	}
	return n, nil
}

// Open opens the cache the flags select, feeding its counters into reg
// (which may be nil). Without -trace-cache it returns (nil, nil) — the
// nil *btcache.Cache is the disabled cache everywhere it is accepted.
func (c *CacheFlags) Open(reg *obs.Registry) (*btcache.Cache, error) {
	if c.Dir == "" {
		return nil, nil
	}
	limit, err := c.LimitBytes()
	if err != nil {
		return nil, err
	}
	var opts []btcache.Option
	if limit > 0 {
		opts = append(opts, btcache.WithLimit(limit))
	}
	if reg != nil {
		opts = append(opts, btcache.WithMetrics(reg))
	}
	return btcache.Open(c.Dir, opts...)
}

// ParseSize parses a human-friendly byte size: a plain integer or one
// with a K/M/G/T suffix (binary multiples, case-insensitive, optional
// trailing B as in "64MB").
func ParseSize(s string) (int64, error) {
	t := strings.TrimSuffix(strings.ToUpper(strings.TrimSpace(s)), "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "K"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"):
		mult, t = 1<<20, t[:len(t)-1]
	case strings.HasSuffix(t, "G"):
		mult, t = 1<<30, t[:len(t)-1]
	case strings.HasSuffix(t, "T"):
		mult, t = 1<<40, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	if n > (1<<62)/mult {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return n * mult, nil
}

// ProfileFlags is the shared pprof flag set: -cpuprofile and
// -memprofile.
type ProfileFlags struct {
	CPU string
	Mem string
}

// Register installs -cpuprofile/-memprofile on fs.
func (p *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit")
}

// Start begins the requested profiles and returns the function that
// finishes them; defer it from main. With no profile flags set it is a
// cheap no-op.
func (p *ProfileFlags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}
	}, nil
}

// ObsFlags is the shared observability flag set: -events streams the
// structured exploration events as JSONL, -progress paints a one-line
// terminal status, -debug-addr serves expvar (including the metrics
// registry) and pprof over HTTP while the command runs.
type ObsFlags struct {
	EventsPath string
	Progress   bool
	DebugAddr  string
}

// Register installs -events/-progress/-debug-addr on fs.
func (o *ObsFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.EventsPath, "events", "", "stream exploration events as JSONL to this file (- = stderr)")
	fs.BoolVar(&o.Progress, "progress", false, "paint a live progress line on stderr")
	fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve expvar metrics and pprof on this HTTP address (e.g. localhost:6060)")
}

// Observer builds the observer the flags request (plus any extra
// sinks the command supplies, e.g. a job-event router) and returns it
// with its cleanup function (always non-nil; defer it from main).
// With no event flags set and no extra sinks the observer is nil —
// the disabled observer.
func (o *ObsFlags) Observer(extra ...obs.Sink) (*obs.Observer, func() error, error) {
	sinks := append([]obs.Sink(nil), extra...)
	var files []*os.File
	if o.EventsPath == "-" {
		sinks = append(sinks, obs.NewJSONL(os.Stderr))
	} else if o.EventsPath != "" {
		f, err := os.Create(o.EventsPath)
		if err != nil {
			return nil, func() error { return nil }, fmt.Errorf("events: %w", err)
		}
		files = append(files, f)
		sinks = append(sinks, obs.NewJSONL(f))
	}
	if o.Progress {
		sinks = append(sinks, obs.NewProgress(os.Stderr, 0))
	}
	observer := obs.NewObserver(sinks...)
	cleanup := func() error {
		err := observer.Close()
		for _, f := range files {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	return observer, cleanup, nil
}

// ServeDebug starts the -debug-addr HTTP server (expvar + pprof + a
// /metrics JSON endpoint over the given registry snapshot function).
// It is a no-op when the flag is unset. The server runs until the
// process exits.
func (o *ObsFlags) ServeDebug(metrics func() obs.Snapshot) {
	if o.DebugAddr == "" {
		return
	}
	if metrics != nil {
		expvar.Publish("memorex_metrics", expvar.Func(func() interface{} {
			return metrics()
		}))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(metrics())
		})
	}
	go func() {
		if err := http.ListenAndServe(o.DebugAddr, nil); err != nil {
			log.Printf("debug-addr: %v", err)
		}
	}()
	log.Printf("serving expvar and pprof on http://%s/debug/pprof/ (metrics at /metrics)", o.DebugAddr)
}

// ServerFlags is the shared memorexd-client flag set: -server selects
// the daemon base URL and -tenant the quota bucket submissions are
// accounted to.
type ServerFlags struct {
	Server string
	Tenant string
}

// Register installs -server/-tenant on fs.
func (s *ServerFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&s.Server, "server", "http://localhost:8344", "memorexd base URL")
	fs.StringVar(&s.Tenant, "tenant", "", "tenant name sent with every request (empty = the daemon default)")
}

// Client returns a job-API client over the flags.
func (s *ServerFlags) Client() *jobapi.Client {
	return &jobapi.Client{Base: s.Server, Tenant: s.Tenant}
}

// LoadLibrary reads a JSON connectivity IP library, or returns the
// built-in one for an empty path.
func LoadLibrary(path string) ([]connect.Component, error) {
	if path == "" {
		return connect.Library(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return connect.ReadLibrary(f)
}
