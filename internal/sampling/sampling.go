// Package sampling implements the time-sampling estimator of Kessler,
// Hill and Wood that the paper uses to guide the design-space walk: the
// simulator alternates "on-sampling" windows that are fully simulated
// with "off-sampling" windows that are skipped cheaply (module state is
// kept warm so the next on-window does not see artificial cold misses).
// With the paper's 1:9 on/off ratio this cuts simulation work by roughly
// 10x at a fidelity sufficient for relative, incremental pruning
// decisions — which is all the exploration needs.
package sampling

import (
	"fmt"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/sim"
	"memorex/internal/trace"
)

// Config parameterizes the sampler.
type Config struct {
	// OnWindow is the number of accesses fully simulated per period.
	OnWindow int `json:"on_window,omitempty"`
	// OffRatio is the ratio of skipped to simulated accesses; the paper
	// uses 9 (1 on : 9 off).
	OffRatio int `json:"off_ratio,omitempty"`
}

// DefaultConfig returns the paper's 1:9 sampling with a 2000-access
// on-window.
func DefaultConfig() Config { return Config{OnWindow: 2000, OffRatio: 9} }

// IsZero reports whether the config is the zero value, which callers
// treat as "use DefaultConfig".
func (c Config) IsZero() bool { return c == Config{} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.OnWindow <= 0 {
		return fmt.Errorf("sampling: on-window must be positive, got %d", c.OnWindow)
	}
	if c.OffRatio < 0 {
		return fmt.Errorf("sampling: off-ratio must be non-negative, got %d", c.OffRatio)
	}
	return nil
}

// Normalize resolves the config the explorations run with: the zero
// value becomes DefaultConfig, anything else must validate as-is.
func (c Config) Normalize() (Config, error) {
	if c.IsZero() {
		return DefaultConfig(), nil
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Plan returns the on-sampling windows the estimator fully simulates
// for a trace of n accesses: every window covers cfg.OnWindow accesses
// (the last may be shorter), separated by OnWindow*OffRatio skipped
// accesses. The two-phase engine captures module behavior over exactly
// this plan so connectivity replays reproduce the estimator's windows.
func Plan(n int, cfg Config) []sim.Window {
	period := cfg.OnWindow * (1 + cfg.OffRatio)
	if period <= 0 {
		return nil
	}
	windows := make([]sim.Window, 0, (n+period-1)/period)
	for pos := 0; pos < n; pos += period {
		hi := pos + cfg.OnWindow
		if hi > n {
			hi = n
		}
		windows = append(windows, sim.Window{Lo: pos, Hi: hi})
	}
	return windows
}

// Estimate runs the time-sampled simulation of the trace against the
// given architectures and returns the sampled result plus the number of
// accesses actually simulated (the exploration's work measure).
func Estimate(t *trace.Trace, memArch *mem.Architecture, connArch *connect.Arch, cfg Config) (*sim.Result, int64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	s, err := sim.New(memArch, connArch)
	if err != nil {
		return nil, 0, err
	}
	n := t.NumAccesses()
	var simulated int64
	var last *sim.Result
	pos := 0
	for _, w := range Plan(n, cfg) {
		if w.Lo > pos {
			s.SkipWindow(t, pos, w.Lo)
		}
		last, err = s.RunWindow(t, w.Lo, w.Hi)
		if err != nil {
			return nil, 0, err
		}
		simulated += int64(w.Hi - w.Lo)
		pos = w.Hi
	}
	if pos < n {
		s.SkipWindow(t, pos, n)
	}
	if last == nil {
		return nil, 0, fmt.Errorf("sampling: empty trace")
	}
	return last, simulated, nil
}
