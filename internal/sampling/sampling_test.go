package sampling

import (
	"math"
	"testing"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/sim"
	"memorex/internal/workload"
)

func arch() (*mem.Architecture, *connect.Arch) {
	m := &mem.Architecture{
		Name:    "cache",
		Modules: []mem.Module{mem.MustCache(4096, 32, 2)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
	lib := connect.Library()
	ahb, _ := connect.ByName(lib, "ahb32")
	off, _ := connect.ByName(lib, "off32")
	chans := m.Channels()
	c := &connect.Arch{
		Channels: chans,
		Clusters: [][]int{{0}, {1}},
		Assign:   []connect.Component{ahb, off},
	}
	return m, c
}

func TestEstimateReducesWork(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig())
	m, c := arch()
	_, simulated, err := Estimate(tr, m, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := int64(tr.NumAccesses())
	if simulated >= total/5 {
		t.Fatalf("sampling simulated %d of %d accesses; expected ~1/10", simulated, total)
	}
	if simulated < total/20 {
		t.Fatalf("sampling simulated only %d of %d accesses; too few for 1:9", simulated, total)
	}
}

func TestEstimateFidelity(t *testing.T) {
	// The sampled estimate must be close enough to full simulation for
	// relative decisions: within 20% on average latency.
	tr := workload.Compress{}.Generate(workload.DefaultConfig())
	m, c := arch()

	s, err := sim.New(m, c)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	est, _, err := Estimate(tr, m, c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(est.AvgLatency()-full.AvgLatency()) / full.AvgLatency()
	if rel > 0.20 {
		t.Fatalf("sampled latency %.3f vs full %.3f: %.1f%% error",
			est.AvgLatency(), full.AvgLatency(), rel*100)
	}
	relE := math.Abs(est.AvgEnergy()-full.AvgEnergy()) / full.AvgEnergy()
	if relE > 0.20 {
		t.Fatalf("sampled energy %.3f vs full %.3f: %.1f%% error",
			est.AvgEnergy(), full.AvgEnergy(), relE*100)
	}
}

func TestEstimatePreservesOrdering(t *testing.T) {
	// Fidelity claim of the paper: sampling is good enough to *rank*
	// designs. A small cache must rank worse than a big one under the
	// estimator too.
	tr := workload.Compress{}.Generate(workload.DefaultConfig())
	lib := connect.Library()
	ahb, _ := connect.ByName(lib, "ahb32")
	off, _ := connect.ByName(lib, "off32")
	lat := func(size int) float64 {
		m := &mem.Architecture{
			Name:    "c",
			Modules: []mem.Module{mem.MustCache(size, 32, 2)},
			DRAM:    mem.DefaultDRAM(),
			Default: 0,
		}
		c := &connect.Arch{
			Channels: m.Channels(),
			Clusters: [][]int{{0}, {1}},
			Assign:   []connect.Component{ahb, off},
		}
		r, _, err := Estimate(tr, m, c, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return r.AvgLatency()
	}
	if !(lat(1024) > lat(8192) && lat(8192) > lat(65536)) {
		t.Fatal("estimator failed to preserve cache-size ordering")
	}
}

func TestEstimateConfigValidation(t *testing.T) {
	tr := workload.Synthetic(workload.SynStream, 100, 1024, 1)
	m, c := arch()
	if _, _, err := Estimate(tr, m, c, Config{OnWindow: 0, OffRatio: 9}); err == nil {
		t.Fatal("zero on-window accepted")
	}
	if _, _, err := Estimate(tr, m, c, Config{OnWindow: 10, OffRatio: -1}); err == nil {
		t.Fatal("negative off-ratio accepted")
	}
	// Zero off-ratio = full simulation; must equal sim.Run counts.
	r, simulated, err := Estimate(tr, m, c, Config{OnWindow: 7, OffRatio: 0})
	if err != nil {
		t.Fatal(err)
	}
	if simulated != 100 || r.Accesses != 100 {
		t.Fatalf("off-ratio 0 should simulate everything: %d/%d", simulated, r.Accesses)
	}
}

func TestEstimateEmptyTrace(t *testing.T) {
	tr := workload.Synthetic(workload.SynStream, 0, 1024, 1)
	m, c := arch()
	if _, _, err := Estimate(tr, m, c, DefaultConfig()); err == nil {
		t.Fatal("empty trace should error")
	}
}

func TestEstimateInvalidArch(t *testing.T) {
	tr := workload.Synthetic(workload.SynStream, 100, 1024, 1)
	m, c := arch()
	bad := &mem.Architecture{Name: "bad", Default: 4, DRAM: mem.DefaultDRAM()}
	if _, _, err := Estimate(tr, bad, c, DefaultConfig()); err == nil {
		t.Fatal("invalid architecture accepted")
	}
	_ = m
}
