package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Observer fans structured events out to its sinks. The zero of the
// type is not used directly: a nil *Observer is the disabled observer,
// and every method (including Enabled) is safe and free on it, so
// instrumented code calls unconditionally:
//
//	var o *obs.Observer            // nil: observability off
//	o.PhaseStart("conex/estimate") // no-op, no allocation
//
// Emission is serialized under one mutex, so sinks need no locking of
// their own and see events in strictly increasing Seq order.
type Observer struct {
	seq   atomic.Uint64
	mu    sync.Mutex
	sinks []Sink
}

// NewObserver returns an observer fanning out to the given sinks. With
// no sinks it returns nil — the disabled observer — so callers can
// build one unconditionally from optional configuration.
func NewObserver(sinks ...Sink) *Observer {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return &Observer{sinks: live}
}

// Enabled reports whether events are being consumed. Hot paths guard
// any label formatting or other allocation behind it.
func (o *Observer) Enabled() bool { return o != nil }

// Close closes every sink, returning the first error.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	var first error
	for _, s := range o.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// emit stamps and fans out one event.
func (o *Observer) emit(ev *Event) {
	if o == nil {
		return
	}
	ev.Seq = o.seq.Add(1)
	ev.Time = time.Now()
	o.mu.Lock()
	for _, s := range o.sinks {
		s.Emit(ev)
	}
	o.mu.Unlock()
}

// RunStart reports the beginning of an exploration run.
func (o *Observer) RunStart(benchmark string, accesses int64) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindRunStart, Benchmark: benchmark, Accesses: accesses})
}

// RunEnd reports the end of an exploration run; err is the failure, or
// nil on success.
func (o *Observer) RunEnd(benchmark string, wall time.Duration, err error) {
	if o == nil {
		return
	}
	ev := &Event{Kind: KindRunEnd, Benchmark: benchmark, WallNS: wall.Nanoseconds()}
	if err != nil {
		ev.Err = err.Error()
	}
	o.emit(ev)
}

// PhaseStart reports entry into a named phase.
func (o *Observer) PhaseStart(phase string) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindPhaseStart, Phase: phase})
}

// PhaseEnd reports the end of a named phase and its wall time.
func (o *Observer) PhaseEnd(phase string, wall time.Duration) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindPhaseEnd, Phase: phase, WallNS: wall.Nanoseconds()})
}

// TraceGenerated reports a generated (or loaded) benchmark trace.
func (o *Observer) TraceGenerated(benchmark string, accesses int64, dataStructures int) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindTrace, Benchmark: benchmark, Accesses: accesses, DataStructures: dataStructures})
}

// APEXSelected reports the memory-modules selection: how many
// architectures were evaluated and how many entered ConEx.
func (o *Observer) APEXSelected(evaluated, selected int) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindAPEX, Evaluated: evaluated, Selected: selected})
}

// Evaluation describes one design-point evaluation for Eval.
type Evaluation struct {
	Phase     string
	Mem, Conn string
	Cost      float64
	Latency   float64
	Energy    float64
	Estimated bool
	CacheHit  bool
	Work      int64
	Wall      time.Duration
}

// Eval reports one design-point evaluation.
func (o *Observer) Eval(e Evaluation) {
	if o == nil {
		return
	}
	o.emit(&Event{
		Kind:      KindEval,
		Phase:     e.Phase,
		Mem:       e.Mem,
		Conn:      e.Conn,
		Cost:      e.Cost,
		Latency:   e.Latency,
		Energy:    e.Energy,
		Estimated: e.Estimated,
		CacheHit:  e.CacheHit,
		Work:      e.Work,
		WallNS:    e.Wall.Nanoseconds(),
	})
}

// Prune reports one pruning decision: of evaluated candidates at the
// named stage (scoped to the named memory architecture when non-empty),
// selected survive; dropped counts candidates an enumeration cap cut
// before evaluation.
func (o *Observer) Prune(stage, mem string, evaluated, selected int, dropped int64) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindPrune, Stage: stage, Mem: mem, Evaluated: evaluated, Selected: selected, Dropped: dropped})
}

// EstimatorError reports the sampling estimator's error on one design:
// Phase II fully simulated a design Phase I estimated, and the latency
// figures disagree by relErrPct percent.
func (o *Observer) EstimatorError(mem, conn string, estLatency, fullLatency, relErrPct float64) {
	if o == nil {
		return
	}
	o.emit(&Event{
		Kind:        KindEstimatorError,
		Mem:         mem,
		Conn:        conn,
		EstLatency:  estLatency,
		FullLatency: fullLatency,
		RelErrPct:   relErrPct,
	})
}
