package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Observer fans structured events out to its sinks. The zero of the
// type is not used directly: a nil *Observer is the disabled observer,
// and every method (including Enabled) is safe and free on it, so
// instrumented code calls unconditionally:
//
//	var o *obs.Observer            // nil: observability off
//	o.PhaseStart("conex/estimate") // no-op, no allocation
//
// Emission is serialized under one mutex, so sinks need no locking of
// their own and see events in strictly increasing Seq order.
//
// An observer can be scoped to a job with ForJob: the derived observer
// shares the parent's sinks and sequence counter (one dense stream) but
// stamps Event.Job on everything it emits, so a Router sink can fan the
// shared stream back out per job.
type Observer struct {
	s   *fanout
	job string
}

// fanout is the state shared by an observer and all its ForJob
// derivatives: the sequence counter, the sink list and the emission
// lock.
type fanout struct {
	seq    atomic.Uint64
	mu     sync.Mutex
	sinks  []Sink
	closed bool
	err    error
}

// NewObserver returns an observer fanning out to the given sinks. With
// no sinks it returns nil — the disabled observer — so callers can
// build one unconditionally from optional configuration.
func NewObserver(sinks ...Sink) *Observer {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return &Observer{s: &fanout{sinks: live}}
}

// ForJob returns an observer that stamps every emitted event with the
// given job identifier while sharing this observer's sinks, emission
// lock and (dense) sequence counter. A service multiplexing many jobs
// onto one engine gives each run a scoped observer so a Router can
// route run-level events to the right subscriber. ForJob on the nil
// observer, or with an empty job, returns the receiver unchanged.
func (o *Observer) ForJob(job string) *Observer {
	if o == nil || job == "" {
		return o
	}
	return &Observer{s: o.s, job: job}
}

// Job returns the job identifier this observer stamps (empty for an
// unscoped observer).
func (o *Observer) Job() string {
	if o == nil {
		return ""
	}
	return o.job
}

// Enabled reports whether events are being consumed. Hot paths guard
// any label formatting or other allocation behind it.
func (o *Observer) Enabled() bool { return o != nil }

// Close closes every sink, returning the first error. Close is
// idempotent — concurrent and repeated calls are safe and return the
// first call's result — so a draining service can close from a signal
// handler while runs finish. Events emitted after Close are dropped.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	o.s.mu.Lock()
	defer o.s.mu.Unlock()
	if o.s.closed {
		return o.s.err
	}
	o.s.closed = true
	for _, s := range o.s.sinks {
		if err := s.Close(); err != nil && o.s.err == nil {
			o.s.err = err
		}
	}
	return o.s.err
}

// emit stamps and fans out one event.
func (o *Observer) emit(ev *Event) {
	if o == nil {
		return
	}
	ev.Job = o.job
	ev.Seq = o.s.seq.Add(1)
	ev.Time = time.Now()
	o.s.mu.Lock()
	if !o.s.closed {
		for _, s := range o.s.sinks {
			s.Emit(ev)
		}
	}
	o.s.mu.Unlock()
}

// RunStart reports the beginning of an exploration run.
func (o *Observer) RunStart(benchmark string, accesses int64) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindRunStart, Benchmark: benchmark, Accesses: accesses})
}

// RunEnd reports the end of an exploration run; err is the failure, or
// nil on success.
func (o *Observer) RunEnd(benchmark string, wall time.Duration, err error) {
	if o == nil {
		return
	}
	ev := &Event{Kind: KindRunEnd, Benchmark: benchmark, WallNS: wall.Nanoseconds()}
	if err != nil {
		ev.Err = err.Error()
	}
	o.emit(ev)
}

// PhaseStart reports entry into a named phase.
func (o *Observer) PhaseStart(phase string) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindPhaseStart, Phase: phase})
}

// PhaseEnd reports the end of a named phase and its wall time.
func (o *Observer) PhaseEnd(phase string, wall time.Duration) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindPhaseEnd, Phase: phase, WallNS: wall.Nanoseconds()})
}

// TraceGenerated reports a generated (or loaded) benchmark trace.
func (o *Observer) TraceGenerated(benchmark string, accesses int64, dataStructures int) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindTrace, Benchmark: benchmark, Accesses: accesses, DataStructures: dataStructures})
}

// APEXSelected reports the memory-modules selection: how many
// architectures were evaluated and how many entered ConEx.
func (o *Observer) APEXSelected(evaluated, selected int) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindAPEX, Evaluated: evaluated, Selected: selected})
}

// Evaluation describes one design-point evaluation for Eval.
type Evaluation struct {
	Phase     string
	Mem, Conn string
	Cost      float64
	Latency   float64
	Energy    float64
	Estimated bool
	CacheHit  bool
	Work      int64
	Wall      time.Duration
}

// Eval reports one design-point evaluation.
func (o *Observer) Eval(e Evaluation) {
	if o == nil {
		return
	}
	o.emit(&Event{
		Kind:      KindEval,
		Phase:     e.Phase,
		Mem:       e.Mem,
		Conn:      e.Conn,
		Cost:      e.Cost,
		Latency:   e.Latency,
		Energy:    e.Energy,
		Estimated: e.Estimated,
		CacheHit:  e.CacheHit,
		Work:      e.Work,
		WallNS:    e.Wall.Nanoseconds(),
	})
}

// Prune reports one pruning decision: of evaluated candidates at the
// named stage (scoped to the named memory architecture when non-empty),
// selected survive; dropped counts candidates an enumeration cap cut
// before evaluation.
func (o *Observer) Prune(stage, mem string, evaluated, selected int, dropped int64) {
	if o == nil {
		return
	}
	o.emit(&Event{Kind: KindPrune, Stage: stage, Mem: mem, Evaluated: evaluated, Selected: selected, Dropped: dropped})
}

// EstimatorError reports the sampling estimator's error on one design:
// Phase II fully simulated a design Phase I estimated, and the latency
// figures disagree by relErrPct percent.
func (o *Observer) EstimatorError(mem, conn string, estLatency, fullLatency, relErrPct float64) {
	if o == nil {
		return
	}
	o.emit(&Event{
		Kind:        KindEstimatorError,
		Mem:         mem,
		Conn:        conn,
		EstLatency:  estLatency,
		FullLatency: fullLatency,
		RelErrPct:   relErrPct,
	})
}
