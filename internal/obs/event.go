// Package obs is the exploration observability subsystem of MemorEx:
// a structured event stream plus a lightweight metrics registry.
//
// The event stream makes the exploration watchable. Every layer that
// does interesting work — the evaluation engine, the ConEx phases, the
// top-level Explorer — emits typed events (run and phase boundaries,
// trace generation, APEX selection, every design-point evaluation,
// pruning decisions with survivor counts, sampling-estimator error when
// Phase II contradicts a Phase I estimate) through an Observer, which
// fans them out to pluggable sinks: a JSONL writer for offline
// analysis, an in-memory ring for tests, a terminal progress line for
// humans.
//
// The metrics registry aggregates what the event stream itemizes:
// counters (evaluations, cache hits, scheduler conflicts, sampling
// windows), gauges, and log-bucketed latency histograms with
// p50/p95/p99 snapshots. Registry snapshots land in the exploration
// Report, the -json output, and the expvar endpoint of -debug-addr.
//
// Both halves are built to cost nothing when unused: every Observer
// and Registry method is safe on a nil receiver and returns
// immediately, so instrumented hot paths pay one nil check and zero
// allocations when observability is off.
package obs

import "time"

// Kind discriminates the event types of the stream.
type Kind string

// Event kinds.
const (
	// KindRunStart / KindRunEnd bracket one full exploration run.
	KindRunStart Kind = "run-start"
	KindRunEnd   Kind = "run-end"
	// KindPhaseStart / KindPhaseEnd bracket one named engine phase
	// (conex/estimate, conex/full-sim, explore/full-space, ...).
	KindPhaseStart Kind = "phase-start"
	KindPhaseEnd   Kind = "phase-end"
	// KindTrace reports a generated (or loaded) benchmark trace.
	KindTrace Kind = "trace"
	// KindAPEX reports the memory-modules selection handed to ConEx.
	KindAPEX Kind = "apex"
	// KindEval reports one design-point evaluation: labels, metrics,
	// estimated-vs-full, cache hit, wall time.
	KindEval Kind = "eval"
	// KindPrune reports a pruning decision with survivor counts.
	KindPrune Kind = "prune"
	// KindEstimatorError reports the Phase I estimation error observed
	// when Phase II fully simulates a design estimated earlier.
	KindEstimatorError Kind = "estimator-error"
)

// Event is one entry of the stream. It is a single flat struct rather
// than an interface hierarchy so a JSONL stream round-trips through one
// type; fields irrelevant to a kind are zero and omitted from the JSON.
type Event struct {
	// Seq is the observer-assigned sequence number (1-based, dense).
	Seq uint64 `json:"seq"`
	// Time is the wall-clock emission time.
	Time time.Time `json:"time"`
	// Kind discriminates the event type.
	Kind Kind `json:"kind"`
	// Job identifies the exploration job the event belongs to, for
	// multi-job services that route one shared stream per submitter
	// (see Observer.ForJob and Router). Empty for unscoped events —
	// shared-engine work that may be serving any number of jobs at
	// once under single-flight deduplication.
	Job string `json:"job,omitempty"`

	// Benchmark names the workload (run, trace events).
	Benchmark string `json:"benchmark,omitempty"`
	// Phase names the engine phase (phase and eval events).
	Phase string `json:"phase,omitempty"`
	// Stage names the pruning stage (prune events).
	Stage string `json:"stage,omitempty"`
	// Mem and Conn label the design point (eval, prune,
	// estimator-error events).
	Mem  string `json:"mem,omitempty"`
	Conn string `json:"conn,omitempty"`

	// Accesses is the trace length (run, trace events).
	Accesses int64 `json:"accesses,omitempty"`
	// DataStructures counts the trace's data structures (trace events).
	DataStructures int `json:"data_structures,omitempty"`

	// Evaluated and Selected carry candidate and survivor counts
	// (apex, prune events).
	Evaluated int `json:"evaluated,omitempty"`
	Selected  int `json:"selected,omitempty"`
	// Dropped counts candidates never evaluated because an enumeration
	// cap cut them (prune events).
	Dropped int64 `json:"dropped,omitempty"`

	// Cost, Latency and Energy are the design-point metrics (eval
	// events; Latency also on run-end as the best front latency).
	Cost    float64 `json:"cost_gates,omitempty"`
	Latency float64 `json:"latency_cycles,omitempty"`
	Energy  float64 `json:"energy_nj,omitempty"`
	// Estimated is true for Phase I (sampled) figures.
	Estimated bool `json:"estimated,omitempty"`
	// CacheHit is true when the evaluation was served from the
	// engine's memoization cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Work is the number of trace accesses actually simulated.
	Work int64 `json:"work_accesses,omitempty"`
	// WallNS is the measured wall time in nanoseconds (eval, phase-end
	// and run-end events).
	WallNS int64 `json:"wall_ns,omitempty"`

	// EstLatency/FullLatency/RelErrPct quantify the sampling
	// estimator's error (estimator-error events).
	EstLatency  float64 `json:"est_latency_cycles,omitempty"`
	FullLatency float64 `json:"full_latency_cycles,omitempty"`
	RelErrPct   float64 `json:"rel_err_pct,omitempty"`

	// Err carries the failure of an unsuccessful run (run-end events).
	Err string `json:"err,omitempty"`
}
