package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Registry is a lightweight metrics registry: named counters, gauges
// and histograms. Like the Observer, a nil *Registry is the disabled
// registry — every method is safe on it and hands back nil instruments
// whose methods are in turn no-ops — so instrumented code acquires its
// handles once and updates them unconditionally:
//
//	var reg *obs.Registry            // nil: metrics off
//	evals := reg.Counter("engine/evaluations") // nil handle
//	evals.Inc()                      // no-op, no allocation
//
// Instruments are cheap to update (one atomic op for counters and
// gauges, a short mutexed section for histograms); name lookup is the
// expensive part, so hot paths hold handles rather than re-looking-up.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n; no-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one; no-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64.
type Gauge struct{ v atomic.Uint64 }

// Set stores the gauge value; no-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// histBuckets is the bucket count of Histogram: bucket 0 holds values
// < 1, bucket k holds [2^(k-1), 2^k), the last bucket holds the rest.
// 40 buckets cover ~5.5e11 — plenty for microsecond latencies.
const histBuckets = 40

// Histogram is a log2-bucketed distribution of non-negative values
// (typically latencies in microseconds) with exact count/sum/min/max
// and interpolated quantiles.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets [histBuckets]int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one value; no-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// Quantile returns the interpolated q-quantile (q in [0,1]); 0 on a nil
// or empty histogram. Within a bucket the distribution is assumed
// uniform; the result is clamped to the observed [min, max].
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for k, n := range h.buckets {
		if n == 0 {
			continue
		}
		if cum+float64(n) >= rank {
			lo, hi := bucketBounds(k)
			frac := (rank - cum) / float64(n)
			v := lo + (hi-lo)*frac
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += float64(n)
	}
	return h.max
}

// bucketBounds returns bucket k's value range [lo, hi).
func bucketBounds(k int) (lo, hi float64) {
	if k == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (k - 1)), float64(uint64(1) << k)
}

// HistogramStats is the snapshot of one histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// stats snapshots the histogram.
func (h *Histogram) stats() HistogramStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// Snapshot is a point-in-time copy of every instrument, the form that
// lands in reports, -json output and the expvar endpoint. Maps marshal
// with sorted keys, so the JSON is deterministic.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state (zero Snapshot on a nil
// registry).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			s.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(hists))
		for k, v := range hists {
			s.Histograms[k] = v.stats()
		}
	}
	return s
}
