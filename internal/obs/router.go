package obs

import "sync"

// Router is a Sink that fans the event stream back out to dynamic
// per-job subscriptions. It is the sink behind a job service's
// per-job event endpoints: one shared observer (engine + explorer)
// carries every event, job-scoped observers (Observer.ForJob) stamp
// Event.Job, and the router delivers each event to the subscribers of
// its job.
//
// Unscoped events (empty Job) describe shared-engine work — under
// single-flight deduplication one evaluation may be serving any number
// of jobs, so such events are attributable to no single job. They are
// delivered only to subscriptions that opted in with shared=true.
//
// Delivery never blocks the emitter: each subscription has a bounded
// buffer, and an event that finds a subscriber's buffer full is
// dropped for that subscriber (and counted) rather than stalling the
// exploration hot path.
type Router struct {
	mu     sync.Mutex
	subs   map[string][]*Subscription // job -> subscribers
	shared []*Subscription            // subscribers to unscoped events
	closed bool
}

// Subscription is one live per-job event feed handed out by Subscribe.
type Subscription struct {
	r       *Router
	job     string
	sharing bool
	ch      chan Event
	dropped int64
	done    bool
}

// NewRouter returns an empty router; attach it to an observer as a
// sink and subscribe jobs as they are admitted.
func NewRouter() *Router {
	return &Router{subs: map[string][]*Subscription{}}
}

// Subscribe registers a feed for the given job's events with a buffer
// of buf events (minimum 1). When shared is true the feed additionally
// receives unscoped events — shared-engine work not attributable to
// any single job. The caller must Cancel the subscription when done;
// the returned channel is closed by Cancel (and by Router.Close) after
// the last buffered event.
func (r *Router) Subscribe(job string, buf int, shared bool) *Subscription {
	if buf < 1 {
		buf = 1
	}
	sub := &Subscription{r: r, job: job, sharing: shared, ch: make(chan Event, buf)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		sub.done = true
		close(sub.ch)
		return sub
	}
	r.subs[job] = append(r.subs[job], sub)
	if shared {
		r.shared = append(r.shared, sub)
	}
	return sub
}

// Events returns the subscription's feed. The channel is closed after
// Cancel (or Router.Close), once every event buffered before the
// cancellation has been received.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Job returns the job the subscription follows.
func (s *Subscription) Job() string { return s.job }

// Dropped returns how many events were dropped because the
// subscription's buffer was full.
func (s *Subscription) Dropped() int64 {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	return s.dropped
}

// Cancel removes the subscription from the router and closes its
// channel. Events already buffered remain receivable; Cancel is
// idempotent.
func (s *Subscription) Cancel() {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	s.closeLocked()
}

// closeLocked detaches and closes a subscription; the caller holds the
// router lock.
func (s *Subscription) closeLocked() {
	if s.done {
		return
	}
	s.done = true
	r := s.r
	r.subs[s.job] = removeSub(r.subs[s.job], s)
	if len(r.subs[s.job]) == 0 {
		delete(r.subs, s.job)
	}
	if s.sharing {
		r.shared = removeSub(r.shared, s)
	}
	close(s.ch)
}

func removeSub(subs []*Subscription, s *Subscription) []*Subscription {
	for i, x := range subs {
		if x == s {
			return append(subs[:i], subs[i+1:]...)
		}
	}
	return subs
}

// Emit implements Sink: the event is delivered (by value) to every
// subscriber of its job, and — when unscoped — to every shared
// subscriber. Delivery is non-blocking; a full subscriber drops the
// event and counts it.
func (r *Router) Emit(ev *Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if ev.Job == "" {
		for _, sub := range r.shared {
			sub.deliverLocked(ev)
		}
		return
	}
	for _, sub := range r.subs[ev.Job] {
		sub.deliverLocked(ev)
	}
}

// deliverLocked sends one event to the subscription without blocking;
// the caller holds the router lock.
func (s *Subscription) deliverLocked(ev *Event) {
	select {
	case s.ch <- *ev:
	default:
		s.dropped++
	}
}

// Close implements Sink: every live subscription is cancelled (its
// channel closed after the buffered events) and later Subscribe calls
// return already-closed feeds.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	var all []*Subscription
	for _, subs := range r.subs {
		all = append(all, subs...)
	}
	for _, sub := range all {
		sub.closeLocked()
	}
	return nil
}
