package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// emitSample drives one of each event kind through the observer.
func emitSample(o *Observer) {
	o.RunStart("compress", 1000)
	o.TraceGenerated("compress", 1000, 4)
	o.APEXSelected(24, 5)
	o.PhaseStart("conex/estimate")
	o.Eval(Evaluation{
		Phase: "conex/estimate", Mem: "cache8k/m0", Conn: "ahb32",
		Cost: 51234, Latency: 4.25, Energy: 1.5,
		Estimated: true, Work: 6000, Wall: 1500 * time.Microsecond,
	})
	o.Eval(Evaluation{
		Phase: "conex/estimate", Mem: "cache8k/m0", Conn: "mux",
		Cost: 49000, Latency: 4.75, Energy: 1.4,
		Estimated: true, CacheHit: true,
	})
	o.PhaseEnd("conex/estimate", 20*time.Millisecond)
	o.Prune("select-local", "cache8k/m0", 40, 8, 3)
	o.EstimatorError("cache8k/m0", "ahb32", 4.25, 4.31, 1.4)
	o.RunEnd("compress", 120*time.Millisecond, nil)
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	o := NewObserver(sink)
	emitSample(o)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("decoded %d events, want 10", len(events))
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want dense 1-based ordering", i, ev.Seq)
		}
		if ev.Time.IsZero() {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
	wantKinds := []Kind{
		KindRunStart, KindTrace, KindAPEX, KindPhaseStart, KindEval,
		KindEval, KindPhaseEnd, KindPrune, KindEstimatorError, KindRunEnd,
	}
	for i, k := range wantKinds {
		if events[i].Kind != k {
			t.Fatalf("event %d kind = %q, want %q", i, events[i].Kind, k)
		}
	}
	// Spot-check field fidelity through the encode/decode cycle.
	ev := events[4]
	if ev.Mem != "cache8k/m0" || ev.Conn != "ahb32" || !ev.Estimated || ev.CacheHit {
		t.Fatalf("eval event lost fields: %+v", ev)
	}
	if ev.Cost != 51234 || ev.Latency != 4.25 || ev.Work != 6000 || ev.WallNS != 1_500_000 {
		t.Fatalf("eval event lost metrics: %+v", ev)
	}
	if pr := events[7]; pr.Evaluated != 40 || pr.Selected != 8 || pr.Dropped != 3 {
		t.Fatalf("prune event lost counts: %+v", pr)
	}
	if ee := events[8]; ee.EstLatency != 4.25 || ee.FullLatency != 4.31 || ee.RelErrPct != 1.4 {
		t.Fatalf("estimator-error event lost fields: %+v", ee)
	}
}

func TestDecodeJSONLRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSONL(strings.NewReader(`{"seq":1,"kind":"eval","bogus":3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeJSONL(strings.NewReader(`{truncated`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestRingWrapsAndOrders(t *testing.T) {
	r := NewRing(4)
	o := NewObserver(r)
	for i := 0; i < 10; i++ {
		o.PhaseStart("p")
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(7+i) {
			t.Fatalf("retained seq %d at %d, want oldest-first 7..10", ev.Seq, i)
		}
	}
}

func TestNewObserverNoSinksIsDisabled(t *testing.T) {
	if o := NewObserver(); o.Enabled() {
		t.Fatal("sinkless observer reports enabled")
	}
	if o := NewObserver(nil, nil); o != nil {
		t.Fatal("nil sinks produced a live observer")
	}
}

// TestNilObserverZeroAlloc is the disabled-path guarantee: emitting
// through a nil observer and updating nil registry instruments must not
// allocate.
func TestNilObserverZeroAlloc(t *testing.T) {
	var o *Observer
	var reg *Registry
	c := reg.Counter("x")
	h := reg.Histogram("y")
	g := reg.Gauge("z")
	allocs := testing.AllocsPerRun(100, func() {
		o.PhaseStart("p")
		o.Eval(Evaluation{Mem: "m", Conn: "c"})
		o.Prune("s", "m", 10, 2, 0)
		o.RunEnd("b", time.Second, nil)
		c.Inc()
		c.Add(5)
		h.Observe(12)
		g.Set(3.5)
	})
	if allocs != 0 {
		t.Fatalf("nil observer/registry allocated %.1f per op, want 0", allocs)
	}
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	if c.Value() != 0 || h.Quantile(0.5) != 0 || g.Value() != 0 {
		t.Fatal("nil instruments retained state")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	// 1000 observations uniform on [0, 1000).
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i))
	}
	checks := []struct{ q, lo, hi float64 }{
		{0.50, 350, 700},
		{0.95, 800, 1000},
		{0.99, 900, 1000},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Fatalf("q%.2f = %.1f, want within [%.0f, %.0f]", c.q, got, c.lo, c.hi)
		}
	}
	s := reg.Snapshot()
	st, ok := s.Histograms["lat"]
	if !ok {
		t.Fatal("snapshot missing histogram")
	}
	if st.Count != 1000 || st.Min != 0 || st.Max != 999 {
		t.Fatalf("snapshot stats wrong: %+v", st)
	}
	if st.Mean < 450 || st.Mean > 550 {
		t.Fatalf("mean = %.1f, want ~499.5", st.Mean)
	}
	if st.P50 > st.P95 || st.P95 > st.P99 {
		t.Fatalf("quantiles not monotone: %+v", st)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("evals").Add(7)
	reg.Counter("evals").Inc()
	reg.Gauge("workers").Set(8)
	s := reg.Snapshot()
	if s.Counters["evals"] != 8 {
		t.Fatalf("counter = %d, want 8", s.Counters["evals"])
	}
	if s.Gauges["workers"] != 8 {
		t.Fatalf("gauge = %v, want 8", s.Gauges["workers"])
	}
	if len(s.Histograms) != 0 {
		t.Fatal("unexpected histograms in snapshot")
	}
}

func TestProgressSink(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, 2)
	o := NewObserver(p)
	o.PhaseStart("conex/estimate")
	for i := 0; i < 5; i++ {
		o.Eval(Evaluation{Cost: 1000, Latency: 4})
	}
	o.RunEnd("b", time.Second, nil)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "conex/estimate") || !strings.Contains(out, "5 evals") {
		t.Fatalf("progress output missing status: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("progress line not finished with newline")
	}
}
