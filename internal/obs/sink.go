package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sink consumes the event stream. The observer serializes Emit calls,
// so implementations need no internal locking; Emit must not retain the
// event past the call (the observer reuses nothing today, but sinks
// that buffer must copy the value, as Ring does).
type Sink interface {
	Emit(*Event)
	Close() error
}

// JSONL writes one JSON object per line — the `-events FILE` format.
// Write errors are sticky: the first one stops further output and is
// reported by Close, so a full run never fails mid-way because of a
// sink.
type JSONL struct {
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink writing JSONL to w. The caller owns w and
// closes it after Close.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONL) Emit(ev *Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Close implements Sink, reporting the first write error.
func (s *JSONL) Close() error { return s.err }

// DecodeJSONL parses a stream written by JSONL back into events.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: decoding event %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// Ring keeps the last N events in memory — the test and debugging sink.
type Ring struct {
	buf   []Event
	next  int
	total int
}

// NewRing returns a ring holding the most recent n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Emit implements Sink.
func (r *Ring) Emit(ev *Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, *ev)
		return
	}
	r.buf[r.next] = *ev
	r.next = (r.next + 1) % cap(r.buf)
}

// Close implements Sink.
func (r *Ring) Close() error { return nil }

// Total returns how many events were emitted overall (≥ len(Events)).
func (r *Ring) Total() int { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Progress renders a single self-overwriting terminal status line — the
// `-progress` sink. To stay cheap it repaints only every Nth evaluation
// and on phase boundaries, and it never allocates per event beyond the
// formatted line itself.
type Progress struct {
	w     io.Writer
	every int
	phase string
	evals int64
	hits  int64
	last  Evaluationish
	dirty bool
}

// Evaluationish is the subset of the last evaluation Progress displays.
type Evaluationish struct {
	Cost    float64
	Latency float64
}

// NewProgress returns a progress sink writing to w (normally stderr),
// repainting at most once per every evaluations (0 = every 64).
func NewProgress(w io.Writer, every int) *Progress {
	if every <= 0 {
		every = 64
	}
	return &Progress{w: w, every: every}
}

// Emit implements Sink.
func (p *Progress) Emit(ev *Event) {
	switch ev.Kind {
	case KindPhaseStart:
		p.phase = ev.Phase
		p.paint()
	case KindEval:
		p.evals++
		if ev.CacheHit {
			p.hits++
		}
		p.last = Evaluationish{Cost: ev.Cost, Latency: ev.Latency}
		p.dirty = true
		if p.evals%int64(p.every) == 0 {
			p.paint()
		}
	case KindRunEnd, KindPhaseEnd:
		p.paint()
	}
}

// paint rewrites the status line in place.
func (p *Progress) paint() {
	if !p.dirty && p.evals == 0 {
		return
	}
	p.dirty = false
	fmt.Fprintf(p.w, "\r%-22s %7d evals (%d cache hits)  last %8.0f gates %6.2f cyc ",
		p.phase, p.evals, p.hits, p.last.Cost, p.last.Latency)
}

// Close implements Sink, finishing the line.
func (p *Progress) Close() error {
	if p.evals > 0 {
		p.paint()
		fmt.Fprintln(p.w)
	}
	return nil
}
