package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRouterPerJobRouting: job-stamped events reach only their job's
// subscribers; unscoped events reach only shared subscribers.
func TestRouterPerJobRouting(t *testing.T) {
	r := NewRouter()
	o := NewObserver(r)

	subA := r.Subscribe("job-a", 16, false)
	subB := r.Subscribe("job-b", 16, false)
	subShared := r.Subscribe("job-a", 16, true)

	o.ForJob("job-a").RunStart("compress", 100)
	o.ForJob("job-b").RunStart("li", 200)
	o.PhaseStart("conex/estimate") // unscoped: shared-engine work

	o.ForJob("job-a").RunEnd("compress", time.Millisecond, nil)
	subA.Cancel()
	subB.Cancel()
	subShared.Cancel()

	collect := func(s *Subscription) []Event {
		var evs []Event
		for ev := range s.Events() {
			evs = append(evs, ev)
		}
		return evs
	}

	evsA := collect(subA)
	if len(evsA) != 2 || evsA[0].Kind != KindRunStart || evsA[1].Kind != KindRunEnd {
		t.Fatalf("job-a subscriber saw %+v, want its run-start and run-end", evsA)
	}
	for _, ev := range evsA {
		if ev.Job != "job-a" {
			t.Fatalf("job-a event not stamped: %+v", ev)
		}
	}

	evsB := collect(subB)
	if len(evsB) != 1 || evsB[0].Benchmark != "li" {
		t.Fatalf("job-b subscriber saw %+v, want only its own run-start", evsB)
	}

	evsShared := collect(subShared)
	if len(evsShared) != 3 {
		t.Fatalf("shared subscriber saw %d events, want 3 (2 scoped + 1 unscoped)", len(evsShared))
	}
	if evsShared[1].Kind != KindPhaseStart || evsShared[1].Job != "" {
		t.Fatalf("shared subscriber missing the unscoped phase event: %+v", evsShared)
	}
}

// TestRouterOverflowDrops: a full subscription drops events without
// blocking the emitter, and counts them.
func TestRouterOverflowDrops(t *testing.T) {
	r := NewRouter()
	o := NewObserver(r)
	sub := r.Subscribe("j", 2, false)

	scoped := o.ForJob("j")
	for i := 0; i < 5; i++ {
		scoped.PhaseStart("p")
	}
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	sub.Cancel()
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 2 {
		t.Fatalf("received %d buffered events, want 2", n)
	}
}

// TestRouterClose: closing the router cancels every subscription and
// later subscriptions are born closed.
func TestRouterClose(t *testing.T) {
	r := NewRouter()
	sub := r.Subscribe("j", 4, false)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscription channel still open after router close")
	}
	late := r.Subscribe("k", 4, false)
	if _, ok := <-late.Events(); ok {
		t.Fatal("post-close subscription not born closed")
	}
	// Emitting into a closed router is a no-op.
	r.Emit(&Event{Kind: KindPhaseStart, Job: "j"})
}

// TestObserverForJob: scoped observers share the parent's dense
// sequence counter and sinks, stamp their job, and the nil/empty cases
// collapse to the receiver.
func TestObserverForJob(t *testing.T) {
	ring := NewRing(16)
	o := NewObserver(ring)

	if o.ForJob("") != o {
		t.Fatal("ForJob(\"\") should return the receiver")
	}
	var nilObs *Observer
	if nilObs.ForJob("x") != nil {
		t.Fatal("ForJob on nil observer should stay nil")
	}
	if nilObs.Job() != "" {
		t.Fatal("Job() on nil observer should be empty")
	}

	a := o.ForJob("a")
	b := o.ForJob("b")
	if a.Job() != "a" || b.Job() != "b" {
		t.Fatalf("Job() = %q/%q, want a/b", a.Job(), b.Job())
	}
	a.PhaseStart("p1")
	b.PhaseStart("p2")
	o.PhaseStart("p3")
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("ring saw %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want dense shared ordering", i, ev.Seq)
		}
	}
	if evs[0].Job != "a" || evs[1].Job != "b" || evs[2].Job != "" {
		t.Fatalf("job stamps wrong: %+v", evs)
	}
}

// TestObserverCloseIdempotent: Close is safe under concurrent and
// repeated use, and events after Close are dropped rather than sent to
// closed sinks.
func TestObserverCloseIdempotent(t *testing.T) {
	ring := NewRing(16)
	o := NewObserver(ring)
	o.PhaseStart("before")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := o.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()

	o.PhaseStart("after")
	if n := ring.Total(); n != 1 {
		t.Fatalf("ring saw %d events, want only the pre-close one", n)
	}
}
