package workload

import (
	"memorex/internal/trace"
)

// Vocoder is the GSM voice-encoder stand-in: a frame-based linear
// predictive coding pipeline. Per 160-sample frame it performs
// preemphasis and Hamming-style windowing, computes the autocorrelation
// sequence, derives reflection coefficients with the Schur/Levinson
// recursion, quantizes them through a codebook search, runs a long-term
// prediction lag search over the history buffer, and emits the coded
// parameters. The pattern mix is the paper's "stream-dominated"
// multimedia profile: sequential sample streams, small hot coefficient
// arrays, and an indexed codebook.
type Vocoder struct{}

func init() { register(Vocoder{}) }

// Name implements Workload.
func (Vocoder) Name() string { return "vocoder" }

const (
	vocFrame    = 160 // samples per frame (GSM full rate)
	vocOrder    = 8   // LPC order
	vocCodebook = 256 // quantizer entries
	vocHistory  = 3 * vocFrame
	vocLagMin   = 40
	vocLagMax   = 120
)

// Generate implements Workload.
func (Vocoder) Generate(cfg Config) *trace.Trace {
	frames := 40 * cfg.Scale
	if frames <= 0 {
		frames = 40
	}
	rng := newRNG(cfg.Seed)

	b := trace.NewBuilder("vocoder", frames*vocFrame*24)

	speechID, _ := b.Region("speech", uint32(frames*vocFrame*2), 2)
	windowID, _ := b.Region("window", vocFrame*2, 2)
	workID, _ := b.Region("work", vocFrame*4, 4)
	corrID, _ := b.Region("autocorr", (vocOrder+1)*4, 4)
	lpcID, _ := b.Region("lpc", (vocOrder+1)*4*3, 4) // k, p, and quantized rows
	cbID, _ := b.Region("codebook", vocCodebook*4, 4)
	histID, _ := b.Region("history", vocHistory*2, 2)
	outID, _ := b.Region("outbits", uint32(frames*64), 1)

	// Synthetic speech: a sum of two slow sinusoid-ish oscillators plus
	// noise, integer-only to stay deterministic across platforms.
	speech := make([]int32, frames*vocFrame)
	var ph1, ph2 int32
	for i := range speech {
		ph1 += 211
		ph2 += 67
		speech[i] = tri(ph1)/2 + tri(ph2)/3 + int32(rng.intn(257)-128)
	}

	window := make([]int32, vocFrame)
	for i := range window {
		// Triangular window approximating Hamming for integer math.
		d := int32(i) - vocFrame/2
		if d < 0 {
			d = -d
		}
		window[i] = 1024 - 12*d
		b.Store(windowID, uint32(i*2), 2)
	}

	codebook := make([]int32, vocCodebook)
	for i := range codebook {
		codebook[i] = int32(i*257 - 32768)
		b.Store(cbID, uint32(i*4), 4)
	}

	history := make([]int32, vocHistory)
	work := make([]int32, vocFrame)
	corr := make([]int64, vocOrder+1)
	kcoef := make([]int32, vocOrder+1)
	var outPos uint32
	outSize := uint32(frames * 64)
	emit := func(v int32) {
		_ = v
		if outPos < outSize {
			b.Store(outID, outPos, 1)
		}
		outPos++
	}

	var checksum int64
	prev := int32(0)
	for f := 0; f < frames; f++ {
		base := f * vocFrame
		// 1. Preemphasis + windowing: stream read of speech, stream
		// read of window coefficients, stream write of work buffer.
		for i := 0; i < vocFrame; i++ {
			b.Load(speechID, uint32((base+i)*2), 2)
			s := speech[base+i]
			pre := s - (prev*15)/16
			prev = s
			b.Load(windowID, uint32(i*2), 2)
			w := (pre * window[i]) >> 10
			work[i] = w
			b.Store(workID, uint32(i*4), 4)
		}
		// 2. Autocorrelation: for each lag, stream the work buffer.
		for k := 0; k <= vocOrder; k++ {
			var acc int64
			for i := k; i < vocFrame; i++ {
				b.Load(workID, uint32(i*4), 4)
				b.Load(workID, uint32((i-k)*4), 4)
				acc += int64(work[i]) * int64(work[i-k])
			}
			corr[k] = acc >> 8
			b.Store(corrID, uint32(k*4), 4)
		}
		if corr[0] == 0 {
			corr[0] = 1
		}
		// 3. Schur recursion for reflection coefficients (hot small arrays).
		p := make([]int64, vocOrder+1)
		copy(p, corr)
		for k := 1; k <= vocOrder; k++ {
			b.Load(corrID, uint32(k*4), 4)
			den := p[0]
			if den == 0 {
				den = 1
			}
			kk := -(p[k] << 10) / den
			kcoef[k] = int32(kk)
			b.Store(lpcID, uint32(k*4), 4)
			for j := k; j <= vocOrder; j++ {
				b.Load(lpcID, uint32((vocOrder+1+j)*4), 4)
				p[j] = p[j] + (kk*p[j-0])>>10 // damped update keeps integers bounded
				b.Store(lpcID, uint32((vocOrder+1+j)*4), 4)
			}
		}
		// 4. Scalar quantization of each coefficient: binary codebook
		// search (indexed pattern with data-dependent pivots).
		for k := 1; k <= vocOrder; k++ {
			lo, hi := 0, vocCodebook-1
			target := kcoef[k]
			for lo < hi {
				mid := (lo + hi) / 2
				b.Load(cbID, uint32(mid*4), 4)
				if codebook[mid] < target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			b.Store(lpcID, uint32((2*(vocOrder+1)+k)*4), 4)
			emit(int32(lo & 0xFF))
			checksum += int64(lo)
		}
		// 5. Long-term prediction: search the history buffer for the lag
		// with maximum correlation (stream reads at varying offsets).
		bestLag, bestScore := vocLagMin, int64(-1<<62)
		for lag := vocLagMin; lag <= vocLagMax; lag += 2 {
			var score int64
			for i := 0; i < vocFrame; i += 4 {
				b.Load(workID, uint32(i*4), 4)
				hidx := (vocHistory - lag + i) % vocHistory
				b.Load(histID, uint32(hidx*2), 2)
				score += int64(work[i]) * int64(history[hidx])
			}
			if score > bestScore {
				bestScore, bestLag = score, lag
			}
		}
		emit(int32(bestLag))
		checksum += int64(bestLag)
		// 6. Update history with the current frame (stream write).
		copy(history, history[vocFrame:])
		for i := 0; i < vocFrame; i++ {
			history[vocHistory-vocFrame+i] = work[i]
			b.Store(histID, uint32((vocHistory-vocFrame+i)*2), 2)
		}
	}
	if checksum == 0 {
		panic("vocoder: zero checksum (pipeline broken)")
	}
	return b.Build()
}

// tri is a triangle-wave oscillator on a 1024-step phase accumulator,
// returning values in roughly [-4096, 4096].
func tri(phase int32) int32 {
	p := phase & 1023
	if p < 512 {
		return (p - 256) * 16
	}
	return (768 - p) * 16
}
