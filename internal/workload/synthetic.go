package workload

import (
	"memorex/internal/trace"
)

// Synthetic single-pattern generators. These are not paper benchmarks;
// they exist so that the profiler's pattern classifier and the memory
// module models can be tested against known ground truth, and so that the
// pattern_lab example can demonstrate classification.

// SyntheticKind selects the access pattern a synthetic trace exhibits.
type SyntheticKind int

// Supported synthetic patterns.
const (
	SynStream       SyntheticKind = iota // stride-1 sequential sweep
	SynStrided                           // constant stride > element
	SynSelfIndirect                      // value-dependent pointer chain
	SynIndexed                           // a[b[i]] style indexed gather
	SynRandom                            // uniform random
)

// Synthetic generates a trace with n accesses of the given pattern over a
// region of the given size (bytes, rounded up to 4-byte elements).
func Synthetic(kind SyntheticKind, n int, size uint32, seed int64) *trace.Trace {
	if size < 64 {
		size = 64
	}
	elems := size / 4
	rng := newRNG(seed)
	b := trace.NewBuilder("synthetic", n)
	id, _ := b.Region("data", elems*4, 4)
	var idxID trace.DSID
	var idxTable []uint32
	if kind == SynIndexed {
		idxID, _ = b.Region("index", elems*4, 4)
		idxTable = make([]uint32, elems)
		for i := range idxTable {
			idxTable[i] = uint32(rng.intn(int(elems)))
		}
	}
	// Pointer chain for self-indirect: a random permutation cycle.
	var next []uint32
	if kind == SynSelfIndirect {
		perm := make([]uint32, elems)
		for i := range perm {
			perm[i] = uint32(i)
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := rng.intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		next = make([]uint32, elems)
		for i := 0; i < len(perm); i++ {
			next[perm[i]] = perm[(i+1)%len(perm)]
		}
	}

	cur := uint32(0)
	for i := 0; i < n; i++ {
		switch kind {
		case SynStream:
			b.Load(id, (uint32(i)%elems)*4, 4)
		case SynStrided:
			b.Load(id, ((uint32(i)*7)%elems)*4, 4)
		case SynSelfIndirect:
			b.Load(id, cur*4, 4)
			cur = next[cur]
		case SynIndexed:
			k := uint32(i) % elems
			b.Load(idxID, k*4, 4)
			b.Load(id, idxTable[k]*4, 4)
		case SynRandom:
			b.Load(id, uint32(rng.intn(int(elems)))*4, 4)
		}
	}
	return b.Build()
}
