// Package workload provides the benchmark applications that drive the
// exploration, standing in for the paper's SHADE-traced SPEC95 and GSM
// binaries. Each workload is a real, runnable algorithm instrumented to
// emit a memory-access trace for its principal data structures:
//
//   - Compress: LZW compression (SPEC95 "compress" stand-in) — hash-table
//     probing whose probe sequence depends on loaded values
//     (self-indirect), code tables, and input/output byte streams.
//   - Li: a small list-processing interpreter (SPEC95 "li"/xlisp stand-in)
//     — cons-cell pointer chasing, assoc-list environments, symbol table,
//     evaluation stack.
//   - Vocoder: a GSM-style voice-encoder frame pipeline — speech sample
//     streams, windowing/autocorrelation/LPC kernels, codebook search.
//
// The package also provides synthetic single-pattern generators used by
// unit tests and by the pattern_lab example.
package workload

import (
	"fmt"
	"sort"

	"memorex/internal/trace"
)

// Config parameterizes trace generation. The zero value is not useful;
// use DefaultConfig.
type Config struct {
	// Scale multiplies the amount of work (input bytes, interpreted
	// expressions, speech frames). Scale 1 produces traces in the
	// hundreds of thousands of accesses.
	Scale int `json:"scale,omitempty"`
	// Seed makes the synthetic inputs reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// DefaultConfig returns the configuration used by the paper-reproduction
// experiments: deterministic, moderate-length traces.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 42} }

// IsZero reports whether the config is the zero value, which callers
// treat as "use DefaultConfig".
func (c Config) IsZero() bool { return c == Config{} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("workload: Scale must be positive, got %d (leave the whole Config zero for defaults)", c.Scale)
	}
	return nil
}

// Normalize resolves the config the explorations run with: the zero
// value becomes DefaultConfig, anything else must validate as-is.
func (c Config) Normalize() (Config, error) {
	if c.IsZero() {
		return DefaultConfig(), nil
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Workload is a benchmark application that can generate a memory trace.
type Workload interface {
	// Name returns the benchmark name used in tables ("compress", ...).
	Name() string
	// Generate runs the application and returns its memory trace.
	Generate(cfg Config) *trace.Trace
}

var registry = map[string]Workload{}

func register(w Workload) {
	registry[w.Name()] = w
}

// ByName returns the registered workload with the given name.
func ByName(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return w, nil
}

// Names returns the registered workload names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// xorshift64 is a tiny deterministic PRNG used by the workloads so that
// traces do not depend on math/rand version behaviour.
type xorshift64 uint64

func newRNG(seed int64) *xorshift64 {
	x := xorshift64(seed)
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	return &x
}

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// intn returns a value in [0, n).
func (x *xorshift64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(x.next() % uint64(n))
}
