package workload

import (
	"fmt"
	"strings"

	"memorex/internal/trace"
)

// Li is the SPEC95 "li" (xlisp) stand-in: a small but real list-processing
// interpreter. Its memory behaviour is dominated by cons-cell pointer
// chasing on the heap (car/cdr chains and assoc-list environments — the
// self-indirect pattern), hashed symbol-table probes, and an evaluation
// stack. The interpreter parses and evaluates genuine s-expression
// programs (recursive list builders, reversal, fibonacci).
type Li struct{}

func init() { register(Li{}) }

// Name implements Workload.
func (Li) Name() string { return "li" }

// Value encoding: tag in the low 3 bits, payload above.
type lival uint32

const (
	tagNil lival = iota
	tagNum
	tagPair
	tagSym
	tagBuiltin
	tagClosure
)

const livalTagBits = 3

func mk(tag lival, payload uint32) lival { return tag | lival(payload<<livalTagBits) }

func (v lival) tag() lival      { return v & (1<<livalTagBits - 1) }
func (v lival) payload() uint32 { return uint32(v) >> livalTagBits }

// num payload is a biased signed integer so small negatives survive.
const numBias = 1 << 24

func mkNum(n int) lival     { return mk(tagNum, uint32(n+numBias)) }
func (v lival) num() int    { return int(v.payload()) - numBias }
func (v lival) idx() uint32 { return v.payload() }

const (
	liHeapCells  = 1 << 18 // cons cells per generation
	liSymSlots   = 1024
	liSymBytes   = 16
	liStackSlots = 1 << 14
)

// liMachine is the interpreter state plus trace instrumentation.
type liMachine struct {
	b *trace.Builder

	heapID  trace.DSID
	symID   trace.DSID
	stackID trace.DSID

	cars, cdrs []lival
	alloc      uint32 // next free cell
	highwater  uint32 // cells holding permanent structure (programs, globals)

	symNames []string
	symVals  []lival
	symUsed  []bool

	sp uint32 // eval stack depth (slots)

	builtins []func(m *liMachine, args lival) lival
}

func newLiMachine(b *trace.Builder) *liMachine {
	m := &liMachine{b: b}
	m.heapID, _ = b.Region("heap", liHeapCells*8, 8)
	m.symID, _ = b.Region("symtab", liSymSlots*liSymBytes, liSymBytes)
	m.stackID, _ = b.Region("stack", liStackSlots*8, 8)
	m.cars = make([]lival, liHeapCells)
	m.cdrs = make([]lival, liHeapCells)
	m.symNames = make([]string, liSymSlots)
	m.symVals = make([]lival, liSymSlots)
	m.symUsed = make([]bool, liSymSlots)
	return m
}

func (m *liMachine) cons(car, cdr lival) lival {
	if m.alloc >= liHeapCells {
		panic("li: heap exhausted (increase liHeapCells)")
	}
	c := m.alloc
	m.alloc++
	m.cars[c] = car
	m.cdrs[c] = cdr
	m.b.Store(m.heapID, c*8, 4)
	m.b.Store(m.heapID, c*8+4, 4)
	return mk(tagPair, c)
}

func (m *liMachine) car(v lival) lival {
	if v.tag() != tagPair && v.tag() != tagClosure {
		panic(fmt.Sprintf("li: car of non-pair %v", v.tag()))
	}
	m.b.Load(m.heapID, v.idx()*8, 4)
	return m.cars[v.idx()]
}

func (m *liMachine) cdr(v lival) lival {
	if v.tag() != tagPair && v.tag() != tagClosure {
		panic(fmt.Sprintf("li: cdr of non-pair %v", v.tag()))
	}
	m.b.Load(m.heapID, v.idx()*8+4, 4)
	return m.cdrs[v.idx()]
}

// intern returns the symbol for name, probing the hashed symbol table the
// way xlisp's oblist lookup does.
func (m *liMachine) intern(name string) lival {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	slot := h % liSymSlots
	for {
		m.b.Load(m.symID, slot*liSymBytes, 4)
		if !m.symUsed[slot] {
			m.symUsed[slot] = true
			m.symNames[slot] = name
			m.symVals[slot] = mk(tagNil, 1) // unbound marker
			m.b.Store(m.symID, slot*liSymBytes, 4)
			return mk(tagSym, slot)
		}
		if m.symNames[slot] == name {
			return mk(tagSym, slot)
		}
		slot = (slot + 1) % liSymSlots
	}
}

func (m *liMachine) globalGet(sym lival) lival {
	m.b.Load(m.symID, sym.idx()*liSymBytes+4, 4)
	return m.symVals[sym.idx()]
}

func (m *liMachine) globalSet(sym, val lival) {
	m.b.Store(m.symID, sym.idx()*liSymBytes+4, 4)
	m.symVals[sym.idx()] = val
}

func (m *liMachine) push() {
	if m.sp < liStackSlots {
		m.b.Store(m.stackID, m.sp*8, 8)
	}
	m.sp++
}

func (m *liMachine) pop() {
	m.sp--
	if m.sp < liStackSlots {
		m.b.Load(m.stackID, m.sp*8, 8)
	}
}

// --- reader ---------------------------------------------------------------

type liReader struct {
	src []string // tokens
	pos int
}

func tokenize(s string) []string {
	s = strings.ReplaceAll(s, "(", " ( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	s = strings.ReplaceAll(s, "'", " ' ")
	return strings.Fields(s)
}

// read parses one s-expression into heap structure.
func (m *liMachine) read(r *liReader) lival {
	if r.pos >= len(r.src) {
		panic("li: unexpected end of program")
	}
	tok := r.src[r.pos]
	r.pos++
	switch tok {
	case "(":
		items := []lival{}
		for {
			if r.pos >= len(r.src) {
				panic("li: unterminated list")
			}
			if r.src[r.pos] == ")" {
				r.pos++
				break
			}
			items = append(items, m.read(r))
		}
		lst := lival(tagNil)
		for i := len(items) - 1; i >= 0; i-- {
			lst = m.cons(items[i], lst)
		}
		return lst
	case ")":
		panic("li: unexpected )")
	case "'":
		return m.list2(m.intern("quote"), m.read(r))
	default:
		if n, ok := parseInt(tok); ok {
			return mkNum(n)
		}
		return m.intern(tok)
	}
}

func parseInt(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '-' {
		if len(s) == 1 {
			return 0, false
		}
		neg = true
		i = 1
	}
	n := 0
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

func (m *liMachine) list2(a, b lival) lival { return m.cons(a, m.cons(b, lival(tagNil))) }

// --- evaluator --------------------------------------------------------------

// closures are (params body env) triples stored as heap pairs, with the
// value re-tagged tagClosure so apply can distinguish them from lists.
func (m *liMachine) mkClosure(params, body, env lival) lival {
	cell := m.cons(params, m.cons(body, m.cons(env, lival(tagNil))))
	return mk(tagClosure, cell.idx())
}

var errUnbound = "li: unbound symbol %s"

// lookup walks the assoc-list environment, then falls back to the symbol
// table's global value cell — the two flavours of xlisp binding lookup.
func (m *liMachine) lookup(sym, env lival) lival {
	for e := env; e.tag() == tagPair; e = m.cdr(e) {
		pair := m.car(e)
		if m.car(pair) == sym {
			return m.cdr(pair)
		}
	}
	v := m.globalGet(sym)
	if v == mk(tagNil, 1) {
		panic(fmt.Sprintf(errUnbound, m.symNames[sym.idx()]))
	}
	return v
}

func (m *liMachine) eval(expr, env lival) lival {
	m.push()
	defer m.pop()

	switch expr.tag() {
	case tagNum, tagNil, tagBuiltin, tagClosure:
		return expr
	case tagSym:
		return m.lookup(expr, env)
	}
	// A pair: special form or application.
	head := m.car(expr)
	if head.tag() == tagSym {
		switch m.symNames[head.idx()] {
		case "quote":
			return m.car(m.cdr(expr))
		case "if":
			cond := m.eval(m.car(m.cdr(expr)), env)
			if cond != lival(tagNil) && cond != mkNum(0) {
				return m.eval(m.car(m.cdr(m.cdr(expr))), env)
			}
			rest := m.cdr(m.cdr(m.cdr(expr)))
			if rest.tag() != tagPair {
				return lival(tagNil)
			}
			return m.eval(m.car(rest), env)
		case "lambda":
			return m.mkClosure(m.car(m.cdr(expr)), m.car(m.cdr(m.cdr(expr))), env)
		case "define":
			sym := m.car(m.cdr(expr))
			val := m.eval(m.car(m.cdr(m.cdr(expr))), env)
			m.globalSet(sym, val)
			return sym
		case "begin":
			var v lival
			for e := m.cdr(expr); e.tag() == tagPair; e = m.cdr(e) {
				v = m.eval(m.car(e), env)
			}
			return v
		}
	}
	// Application: evaluate operator and operands.
	fn := m.eval(head, env)
	var args lival = lival(tagNil)
	var tail lival
	for e := m.cdr(expr); e.tag() == tagPair; e = m.cdr(e) {
		cell := m.cons(m.eval(m.car(e), env), lival(tagNil))
		if args == lival(tagNil) {
			args = cell
		} else {
			m.cdrs[tail.idx()] = cell
			m.b.Store(m.heapID, tail.idx()*8+4, 4)
		}
		tail = cell
	}
	return m.apply(fn, args, env)
}

func (m *liMachine) apply(fn, args, _ lival) lival {
	switch fn.tag() {
	case tagBuiltin:
		return m.builtins[fn.idx()](m, args)
	case tagClosure:
		cell := mk(tagPair, fn.idx())
		params := m.car(cell)
		body := m.car(m.cdr(cell))
		env := m.car(m.cdr(m.cdr(cell)))
		for p := params; p.tag() == tagPair; p = m.cdr(p) {
			if args.tag() != tagPair {
				panic("li: too few arguments")
			}
			env = m.cons(m.cons(m.car(p), m.car(args)), env)
			args = m.cdr(args)
		}
		return m.eval(body, env)
	default:
		panic("li: apply of non-function")
	}
}

func (m *liMachine) defBuiltin(name string, f func(m *liMachine, args lival) lival) {
	idx := uint32(len(m.builtins))
	m.builtins = append(m.builtins, f)
	m.globalSet(m.intern(name), mk(tagBuiltin, idx))
}

func (m *liMachine) arg1(args lival) lival { return m.car(args) }
func (m *liMachine) arg2(args lival) (lival, lival) {
	return m.car(args), m.car(m.cdr(args))
}

func (m *liMachine) installBuiltins() {
	m.defBuiltin("cons", func(m *liMachine, a lival) lival {
		x, y := m.arg2(a)
		return m.cons(x, y)
	})
	m.defBuiltin("car", func(m *liMachine, a lival) lival { return m.car(m.arg1(a)) })
	m.defBuiltin("cdr", func(m *liMachine, a lival) lival { return m.cdr(m.arg1(a)) })
	m.defBuiltin("+", func(m *liMachine, a lival) lival {
		x, y := m.arg2(a)
		return mkNum(x.num() + y.num())
	})
	m.defBuiltin("-", func(m *liMachine, a lival) lival {
		x, y := m.arg2(a)
		return mkNum(x.num() - y.num())
	})
	m.defBuiltin("*", func(m *liMachine, a lival) lival {
		x, y := m.arg2(a)
		return mkNum(x.num() * y.num())
	})
	m.defBuiltin("<", func(m *liMachine, a lival) lival {
		x, y := m.arg2(a)
		if x.num() < y.num() {
			return mkNum(1)
		}
		return lival(tagNil)
	})
	m.defBuiltin("=", func(m *liMachine, a lival) lival {
		x, y := m.arg2(a)
		if x.num() == y.num() {
			return mkNum(1)
		}
		return lival(tagNil)
	})
	m.defBuiltin("null?", func(m *liMachine, a lival) lival {
		if m.arg1(a) == lival(tagNil) {
			return mkNum(1)
		}
		return lival(tagNil)
	})
}

// liProgram is the benchmark program: recursive list construction,
// accumulator reversal, list summation and naive fibonacci — the classic
// xlisp-benchmark mix of deep recursion and long cdr chains.
const liProgram = `
(define iota  (lambda (n) (if (= n 0) '() (cons n (iota (- n 1))))))
(define rev   (lambda (l a) (if (null? l) a (rev (cdr l) (cons (car l) a)))))
(define sum   (lambda (l) (if (null? l) 0 (+ (car l) (sum (cdr l))))))
(define len   (lambda (l) (if (null? l) 0 (+ 1 (len (cdr l))))))
(define app   (lambda (x y) (if (null? x) y (cons (car x) (app (cdr x) y)))))
(define fib   (lambda (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))
(define take  (lambda (l n) (if (= n 0) '() (cons (car l) (take (cdr l) (- n 1))))))
`

const liDriver = `
(begin
  (define l (iota 120))
  (define r (rev l '()))
  (define a (app l r))
  (+ (+ (sum a) (len a)) (+ (fib 13) (sum (take a 60)))))
`

// Generate implements Workload.
func (Li) Generate(cfg Config) *trace.Trace {
	b := trace.NewBuilder("li", 1<<20)
	m := newLiMachine(b)
	m.installBuiltins()

	// Load the program (permanent structure below the highwater mark).
	r := &liReader{src: tokenize(liProgram)}
	for r.pos < len(r.src) {
		m.eval(m.read(r), lival(tagNil))
	}
	m.highwater = m.alloc

	iters := 12 * cfg.Scale
	if iters <= 0 {
		iters = 12
	}
	var check int
	for i := 0; i < iters; i++ {
		dr := &liReader{src: tokenize(liDriver)}
		expr := m.read(dr)
		v := m.eval(expr, lival(tagNil))
		check += v.num()
		// "Garbage collect": everything above the permanent structure is
		// dead between top-level iterations (xlisp would reclaim it).
		m.alloc = m.highwater
	}
	if check == 0 {
		panic("li: benchmark checksum is zero (interpreter broken)")
	}
	return b.Build()
}

// EvalString parses and evaluates src in a fresh interpreter and returns
// the numeric result of the last expression. Used by tests to verify the
// interpreter is a real evaluator and by the pattern_lab example.
func EvalString(src string) (int, error) {
	b := trace.NewBuilder("li-eval", 1024)
	m := newLiMachine(b)
	m.installBuiltins()
	var result lival
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("li: %v", r)
			}
		}()
		rd := &liReader{src: tokenize(src)}
		for rd.pos < len(rd.src) {
			result = m.eval(m.read(rd), lival(tagNil))
		}
	}()
	if err != nil {
		return 0, err
	}
	if result.tag() != tagNum {
		return 0, fmt.Errorf("li: result is not a number (tag %d)", result.tag())
	}
	return result.num(), nil
}
