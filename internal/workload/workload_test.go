package workload

import (
	"bytes"
	"testing"
)

func TestRegistry(t *testing.T) {
	names := Names()
	// The paper's three benchmarks plus the jpegenc extension.
	want := []string{"compress", "jpegenc", "li", "vocoder"}
	if len(names) != len(want) {
		t.Fatalf("registered workloads = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registered workloads = %v, want %v", names, want)
		}
	}
	for _, n := range want {
		w, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if w.Name() != n {
			t.Fatalf("ByName(%q).Name() = %q", n, w.Name())
		}
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatal("ByName accepted an unknown benchmark")
	}
}

func TestTracesValidateAndAreDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, _ := ByName(name)
			tr1 := w.Generate(cfg)
			if err := tr1.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			if tr1.NumAccesses() < 50_000 {
				t.Fatalf("trace too short to be interesting: %d accesses", tr1.NumAccesses())
			}
			tr2 := w.Generate(cfg)
			if tr1.NumAccesses() != tr2.NumAccesses() {
				t.Fatalf("nondeterministic length: %d vs %d", tr1.NumAccesses(), tr2.NumAccesses())
			}
			for i := range tr1.Accesses {
				if tr1.Accesses[i] != tr2.Accesses[i] {
					t.Fatalf("nondeterministic access at %d", i)
				}
			}
		})
	}
}

func TestScaleGrowsTrace(t *testing.T) {
	w, _ := ByName("vocoder")
	small := w.Generate(Config{Scale: 1, Seed: 1})
	big := w.Generate(Config{Scale: 2, Seed: 1})
	if big.NumAccesses() < small.NumAccesses()*3/2 {
		t.Fatalf("Scale=2 did not grow trace: %d vs %d", big.NumAccesses(), small.NumAccesses())
	}
}

func TestCompressDataStructures(t *testing.T) {
	tr := Compress{}.Generate(DefaultConfig())
	names := map[string]bool{}
	for _, d := range tr.DS {
		names[d.Name] = true
	}
	for _, want := range []string{"htab", "codetab", "in", "out"} {
		if !names[want] {
			t.Fatalf("compress trace missing data structure %q (have %v)", want, tr.DS)
		}
	}
	counts := tr.CountByDS()
	// htab probing should dominate the work per input byte.
	var htab, in int64
	for i, d := range tr.DS {
		switch d.Name {
		case "htab":
			htab = counts[i]
		case "in":
			in = counts[i]
		}
	}
	if htab < in {
		t.Fatalf("htab accesses (%d) should exceed input reads (%d)", htab, in)
	}
}

func TestLZWRoundTrip(t *testing.T) {
	inputs := [][]byte{
		[]byte("TOBEORNOTTOBEORTOBEORNOT"),
		[]byte(""),
		[]byte("a"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
		corpus(Config{Scale: 1, Seed: 7})[:20000],
	}
	for i, in := range inputs {
		codes := CompressBytes(in)
		got := DecompressCodes(codes)
		if !bytes.Equal(got, in) {
			t.Fatalf("case %d: round trip failed (in %d bytes, out %d bytes)", i, len(in), len(got))
		}
	}
}

func TestLZWCompresses(t *testing.T) {
	in := corpus(Config{Scale: 1, Seed: 42})
	codes := CompressBytes(in)
	// 2 bytes per code; a real corpus should compress below 80% of input.
	ratio := float64(len(codes)*2) / float64(len(in))
	if ratio > 0.8 {
		t.Fatalf("LZW achieved ratio %.2f, expected < 0.8 (not really compressing)", ratio)
	}
}

func TestLiEvaluator(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"(+ 1 2)", 3},
		{"(- 10 4)", 6},
		{"(* 6 7)", 42},
		{"(if (< 1 2) 10 20)", 10},
		{"(if (< 2 1) 10 20)", 20},
		{"((lambda (x) (* x x)) 9)", 81},
		{"(define sq (lambda (x) (* x x))) (sq 12)", 144},
		{"(define fib (lambda (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))) (fib 10)", 55},
		{"(car (cons 5 '()))", 5},
		{"(define sum (lambda (l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))) (sum '(1 2 3 4 5))", 15},
		{"(begin 1 2 3)", 3},
		{"-7", -7},
		{"(+ -3 5)", 2},
	}
	for _, c := range cases {
		got, err := EvalString(c.src)
		if err != nil {
			t.Fatalf("EvalString(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Fatalf("EvalString(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestLiEvaluatorErrors(t *testing.T) {
	for _, src := range []string{
		"(undefined-symbol)",
		"(car 5)",
		"(",
		")",
		"((lambda (x y) x) 1)",
	} {
		if _, err := EvalString(src); err == nil {
			t.Fatalf("EvalString(%q) succeeded, want error", src)
		}
	}
}

func TestLiTraceHasPointerChasing(t *testing.T) {
	tr := Li{}.Generate(DefaultConfig())
	counts := tr.CountByDS()
	byName := map[string]int64{}
	for i, d := range tr.DS {
		byName[d.Name] = counts[i]
	}
	if byName["heap"] == 0 || byName["symtab"] == 0 || byName["stack"] == 0 {
		t.Fatalf("li trace missing expected structures: %v", byName)
	}
	if byName["heap"] < byName["symtab"] {
		t.Fatalf("heap traffic (%d) should dominate symtab traffic (%d)", byName["heap"], byName["symtab"])
	}
}

func TestVocoderStreamDominated(t *testing.T) {
	tr := Vocoder{}.Generate(DefaultConfig())
	counts := tr.CountByDS()
	byName := map[string]int64{}
	for i, d := range tr.DS {
		byName[d.Name] = counts[i]
	}
	for _, want := range []string{"speech", "work", "codebook", "history", "outbits"} {
		if byName[want] == 0 {
			t.Fatalf("vocoder trace missing accesses to %q: %v", want, byName)
		}
	}
	if byName["work"] < byName["codebook"] {
		t.Fatal("work-buffer streaming should dominate codebook lookups")
	}
}

func TestSyntheticPatterns(t *testing.T) {
	for _, k := range []SyntheticKind{SynStream, SynStrided, SynSelfIndirect, SynIndexed, SynRandom} {
		tr := Synthetic(k, 10_000, 4096, 3)
		if err := tr.Validate(); err != nil {
			t.Fatalf("kind %d: invalid trace: %v", k, err)
		}
		if tr.NumAccesses() < 10_000 {
			t.Fatalf("kind %d: too few accesses %d", k, tr.NumAccesses())
		}
	}
}

func TestSyntheticStreamIsSequential(t *testing.T) {
	tr := Synthetic(SynStream, 1000, 1<<20, 1)
	for i := 1; i < 1000; i++ {
		if tr.Accesses[i].Addr != tr.Accesses[i-1].Addr+4 {
			t.Fatalf("stream trace not sequential at %d", i)
		}
	}
}

func TestSyntheticSelfIndirectCoversRegion(t *testing.T) {
	tr := Synthetic(SynSelfIndirect, 4096/4, 4096, 9)
	seen := map[uint32]bool{}
	for _, a := range tr.Accesses {
		seen[a.Addr] = true
	}
	// A permutation cycle visits every element exactly once per lap.
	if len(seen) != 4096/4 {
		t.Fatalf("self-indirect chain visited %d distinct elements, want %d", len(seen), 4096/4)
	}
}

func TestXorshiftDeterministic(t *testing.T) {
	a, b := newRNG(5), newRNG(5)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("xorshift not deterministic")
		}
	}
	z := newRNG(0)
	if z.next() == 0 {
		t.Fatal("zero seed must be remapped")
	}
	if newRNG(1).intn(0) != 0 || newRNG(1).intn(-3) != 0 {
		t.Fatal("intn of non-positive bound should be 0")
	}
}

func TestJPEGEncTrace(t *testing.T) {
	tr := JPEGEnc{}.Generate(DefaultConfig())
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	counts := tr.CountByDS()
	byName := map[string]int64{}
	for i, d := range tr.DS {
		byName[d.Name] = counts[i]
	}
	for _, want := range []string{"image", "block", "qtab", "zigzag", "outbits"} {
		if byName[want] == 0 {
			t.Fatalf("jpegenc trace missing accesses to %q: %v", want, byName)
		}
	}
	// The block working buffer dominates (DCT is compute-local).
	if byName["block"] < byName["image"] {
		t.Fatal("block-buffer traffic should dominate image reads")
	}
	// Deterministic.
	tr2 := JPEGEnc{}.Generate(DefaultConfig())
	if tr.NumAccesses() != tr2.NumAccesses() {
		t.Fatal("jpegenc nondeterministic")
	}
}
