package workload

import (
	"memorex/internal/trace"
)

// JPEGEnc is an extension workload beyond the paper's three benchmarks:
// a JPEG-style image encoder front end. Per 8x8 block it performs a
// separable integer DCT, quantization against a hot 64-entry table,
// zigzag reordering through an index table, and run-length/entropy
// coding into an output stream. The pattern mix differs usefully from
// the GSM vocoder: blocked 2-D strides on the image, an indexed
// permutation, and tiny hot tables.
type JPEGEnc struct{}

func init() { register(JPEGEnc{}) }

// Name implements Workload.
func (JPEGEnc) Name() string { return "jpegenc" }

const (
	jpegW = 256
	jpegH = 64
)

// zigzag is the standard JPEG coefficient order.
var zigzag = [64]uint8{
	0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
}

// Generate implements Workload.
func (JPEGEnc) Generate(cfg Config) *trace.Trace {
	frames := 4 * cfg.Scale
	if frames <= 0 {
		frames = 4
	}
	rng := newRNG(cfg.Seed)

	b := trace.NewBuilder("jpegenc", frames*jpegW*jpegH*8)
	imageID, _ := b.Region("image", jpegW*jpegH, 1)
	blockID, _ := b.Region("block", 64*4, 4)
	qtabID, _ := b.Region("qtab", 64*2, 2)
	zigID, _ := b.Region("zigzag", 64, 1)
	outID, _ := b.Region("outbits", uint32(frames*jpegW*jpegH/2+64), 1)

	// Synthetic image: smooth gradients plus noise, regenerated per
	// frame (a video-ish stream).
	img := make([]int32, jpegW*jpegH)
	qtab := [64]int32{}
	for i := range qtab {
		qtab[i] = int32(8 + (i/8+i%8)*3) // coarser for high frequencies
		b.Store(qtabID, uint32(i*2), 2)
	}
	for i, z := range zigzag {
		_ = z
		b.Store(zigID, uint32(i), 1)
	}

	block := [64]int32{}
	tmp := [64]int32{}
	var outPos uint32
	outSize := uint32(frames*jpegW*jpegH/2 + 64)
	emit := func() {
		if outPos < outSize {
			b.Store(outID, outPos, 1)
		}
		outPos++
	}

	var checksum int64
	for f := 0; f < frames; f++ {
		for i := range img {
			x, y := i%jpegW, i/jpegW
			img[i] = int32((x+y*2+f*5)%255) + int32(rng.intn(17)) - 8
		}
		for by := 0; by < jpegH; by += 8 {
			for bx := 0; bx < jpegW; bx += 8 {
				// Load the 8x8 block (2-D strided reads).
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						idx := (by+y)*jpegW + bx + x
						b.Load(imageID, uint32(idx), 1)
						block[y*8+x] = img[idx] - 128
						b.Store(blockID, uint32((y*8+x)*4), 4)
					}
				}
				// Separable integer "DCT": rows then columns of a
				// butterfly-ish transform (hot block buffer traffic).
				for y := 0; y < 8; y++ {
					for x := 0; x < 8; x++ {
						b.Load(blockID, uint32((y*8+x)*4), 4)
						tmp[y*8+x] = block[y*8+x] + block[y*8+(7-x)]*int32(1-2*(x&1))
					}
				}
				for x := 0; x < 8; x++ {
					for y := 0; y < 8; y++ {
						v := tmp[y*8+x] + tmp[(7-y)*8+x]*int32(1-2*(y&1))
						block[y*8+x] = v >> 1
						b.Store(blockID, uint32((y*8+x)*4), 4)
					}
				}
				// Quantize + zigzag + run-length emit.
				run := 0
				for i := 0; i < 64; i++ {
					b.Load(zigID, uint32(i), 1)
					zi := int(zigzag[i])
					b.Load(blockID, uint32(zi*4), 4)
					b.Load(qtabID, uint32(zi*2), 2)
					q := block[zi] / qtab[zi]
					if q == 0 {
						run++
						continue
					}
					for run > 15 {
						emit()
						run -= 16
					}
					emit()
					run = 0
					checksum += int64(q)
				}
				emit() // end-of-block
			}
		}
	}
	if checksum == 0 {
		panic("jpegenc: zero checksum (pipeline broken)")
	}
	return b.Build()
}
