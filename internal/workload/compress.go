package workload

import (
	"memorex/internal/trace"
)

// Compress is the SPEC95 "compress" stand-in: LZW compression with an
// open-addressed hash table, as in the original compress(1). The probe
// sequence of the hash table depends on the entry value that was just
// loaded, which is exactly the "self-indirect" access pattern the paper's
// linked-list/DMA-like memory modules target. The input and output byte
// buffers are classic stream patterns.
type Compress struct{}

func init() { register(Compress{}) }

// Name implements Workload.
func (Compress) Name() string { return "compress" }

// LZW parameters, following compress(1)'s 16-bit configuration scaled
// down: maxBits code width and an HSIZE-entry open hash table.
const (
	lzwMaxBits   = 14
	lzwMaxCode   = 1<<lzwMaxBits - 1
	lzwHsize     = 18013 // prime, ~1.1x max codes, like compress's 69001 for 16 bits
	lzwFirstCode = 257
	lzwClear     = 256
)

// Generate implements Workload. It compresses a synthetic Zipf-ish text
// corpus, recording every access to the hash table (htab), the code
// table (codetab), the input buffer (in) and the output buffer (out).
func (Compress) Generate(cfg Config) *trace.Trace {
	input := corpus(cfg)
	b := trace.NewBuilder("compress", len(input)*6)

	// Data-structure layout mirrors compress(1):
	//   htab:    HSIZE x int32 fcodes (hashed, self-indirect probing)
	//   codetab: HSIZE x uint16 codes (accessed with htab)
	//   in:      the input text (stream)
	//   out:     the emitted code stream (stream)
	htabID, _ := b.Region("htab", lzwHsize*4, 4)
	codetabID, _ := b.Region("codetab", lzwHsize*2, 2)
	inID, _ := b.Region("in", uint32(len(input)), 1)
	outSize := uint32(len(input))*2 + 16
	outID, _ := b.Region("out", outSize, 2)

	htab := make([]int32, lzwHsize)
	codetab := make([]uint16, lzwHsize)
	clear := func() {
		for i := range htab {
			htab[i] = -1
		}
	}
	clear()

	var outPos uint32
	emit := func(code uint16) {
		if outPos+2 <= outSize {
			b.Store(outID, outPos, 2)
		}
		outPos += 2
	}

	freeCode := uint16(lzwFirstCode)

	// ent is the current prefix code.
	b.Load(inID, 0, 1)
	ent := uint16(input[0])
	for i := 1; i < len(input); i++ {
		b.Load(inID, uint32(i), 1)
		c := uint16(input[i])
		fcode := int32(c)<<lzwMaxBits + int32(ent)
		h := (uint32(c)<<6 ^ uint32(ent)) % lzwHsize
		disp := uint32(1)
		if h != 0 {
			disp = lzwHsize - h
		}
		found := false
		for {
			b.Load(htabID, h*4, 4) // probe: load the fcode stored at h
			v := htab[h]
			if v == fcode {
				b.Load(codetabID, h*2, 2)
				ent = codetab[h]
				found = true
				break
			}
			if v < 0 {
				break
			}
			// Secondary probe: the next slot depends on the current
			// slot position (value-dependent walk, self-indirect).
			if h < disp {
				h += lzwHsize
			}
			h -= disp
		}
		if found {
			continue
		}
		emit(ent)
		if freeCode <= lzwMaxCode {
			b.Store(codetabID, h*2, 2)
			b.Store(htabID, h*4, 4)
			codetab[h] = freeCode
			htab[h] = fcode
			freeCode++
		} else {
			// Table full: emit a clear code and reset, as compress does
			// when the compression ratio drops.
			emit(lzwClear)
			clear()
			freeCode = lzwFirstCode
		}
		ent = c
	}
	emit(ent)

	return b.Build()
}

// CompressBytes runs plain (uninstrumented) LZW with the same parameters
// and returns the emitted code sequence. It exists so tests can check the
// algorithm against a reference decoder: the instrumented trace is only
// credible if the underlying algorithm really compresses.
func CompressBytes(input []byte) []uint16 {
	if len(input) == 0 {
		return nil
	}
	htab := make([]int32, lzwHsize)
	codetab := make([]uint16, lzwHsize)
	clear := func() {
		for i := range htab {
			htab[i] = -1
		}
	}
	clear()
	var out []uint16
	freeCode := uint16(lzwFirstCode)
	ent := uint16(input[0])
	for i := 1; i < len(input); i++ {
		c := uint16(input[i])
		fcode := int32(c)<<lzwMaxBits + int32(ent)
		h := (uint32(c)<<6 ^ uint32(ent)) % lzwHsize
		disp := uint32(1)
		if h != 0 {
			disp = lzwHsize - h
		}
		found := false
		for {
			v := htab[h]
			if v == fcode {
				ent = codetab[h]
				found = true
				break
			}
			if v < 0 {
				break
			}
			if h < disp {
				h += lzwHsize
			}
			h -= disp
		}
		if found {
			continue
		}
		out = append(out, ent)
		if freeCode <= lzwMaxCode {
			codetab[h] = freeCode
			htab[h] = fcode
			freeCode++
		} else {
			out = append(out, lzwClear)
			clear()
			freeCode = lzwFirstCode
		}
		ent = c
	}
	out = append(out, ent)
	return out
}

// DecompressCodes is the reference LZW decoder matching CompressBytes.
func DecompressCodes(codes []uint16) []byte {
	if len(codes) == 0 {
		return nil
	}
	type entry struct {
		prefix uint16
		suffix byte
		isByte bool
	}
	var dict []entry
	reset := func() {
		dict = make([]entry, 256, lzwMaxCode+1)
		for i := range dict {
			dict[i] = entry{suffix: byte(i), isByte: true}
		}
		dict = append(dict, entry{}) // 256: clear
	}
	reset()

	expand := func(code uint16) []byte {
		var rev []byte
		for {
			e := dict[code]
			rev = append(rev, e.suffix)
			if e.isByte {
				break
			}
			code = e.prefix
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}

	var out []byte
	prev := int32(-1)
	for _, code := range codes {
		if code == lzwClear {
			reset()
			prev = -1
			continue
		}
		var chunk []byte
		switch {
		case int(code) < len(dict):
			chunk = expand(code)
		case int(code) == len(dict) && prev >= 0:
			// KwKwK case: code not yet in dict.
			p := expand(uint16(prev))
			chunk = append(p, p[0])
		default:
			// Corrupt stream; bail with what we have.
			return out
		}
		if prev >= 0 && len(dict) <= lzwMaxCode {
			dict = append(dict, entry{prefix: uint16(prev), suffix: chunk[0]})
		}
		out = append(out, chunk...)
		prev = int32(code)
	}
	return out
}

// corpus generates the synthetic input text: words drawn from a Zipf-like
// distribution with punctuation and line structure, giving LZW a
// realistic ~2-3x compression ratio.
func corpus(cfg Config) []byte {
	rng := newRNG(cfg.Seed)
	words := make([][]byte, 512)
	letters := []byte("etaoinshrdlucmfwypvbgkjqxz")
	for i := range words {
		n := 2 + rng.intn(9)
		w := make([]byte, n)
		for j := range w {
			// Bias toward frequent letters.
			w[j] = letters[rng.intn(len(letters))/(1+rng.intn(3))]
		}
		words[i] = w
	}
	size := 60_000 * cfg.Scale
	if size <= 0 {
		size = 60_000
	}
	out := make([]byte, 0, size)
	col := 0
	for len(out) < size {
		// Zipf-ish: quadratic skew toward low word indices.
		idx := rng.intn(len(words)) * rng.intn(len(words)) / len(words)
		w := words[idx]
		out = append(out, w...)
		col += len(w) + 1
		if col > 70 {
			out = append(out, '\n')
			col = 0
		} else {
			out = append(out, ' ')
		}
	}
	return out[:size]
}
