package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestFigure3Quick(t *testing.T) {
	res, err := Figure3(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 6 {
		t.Fatalf("figure 3 evaluated only %d designs", len(res.Rows))
	}
	sel := res.SelectedRows()
	if len(sel) == 0 || len(sel) > 5 {
		t.Fatalf("selected %d designs, want 1..5", len(sel))
	}
	// The selected designs form a descending-miss-ratio staircase.
	for i := 1; i < len(sel); i++ {
		if sel[i].Gates <= sel[i-1].Gates || sel[i].MissRatio >= sel[i-1].MissRatio {
			t.Fatalf("selected points not a pareto staircase: %+v", sel)
		}
	}
	s := res.String()
	if !strings.Contains(s, "Figure 3") || !strings.Contains(s, "missratio") {
		t.Fatalf("rendering wrong:\n%s", s)
	}
	if res.Work == 0 {
		t.Fatal("work not recorded")
	}
}

func TestFigure4Quick(t *testing.T) {
	res, err := Figure4(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.CloudSize < 20 {
		t.Fatalf("cloud too small: %d", res.CloudSize)
	}
	if len(res.Front) < 2 {
		t.Fatalf("front too small: %d", len(res.Front))
	}
	// The paper's headline: significant latency improvement across the
	// front (36% for compress; we require a meaningful spread).
	if res.ImprovementPct < 15 {
		t.Fatalf("latency improvement %.1f%% too small for the paper's claim", res.ImprovementPct)
	}
	if res.BestLatency >= res.WorstLatency {
		t.Fatal("front endpoints inverted")
	}
	if res.EstimatedAccesses == 0 || res.SimulatedAccesses == 0 {
		t.Fatal("work split not recorded")
	}
	if !strings.Contains(res.String(), "improvement") {
		t.Fatal("rendering missing improvement line")
	}
}

func TestFigure6Quick(t *testing.T) {
	res, err := Figure6(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("too few annotated designs: %d", len(res.Rows))
	}
	// Labels are a, b, c, ...
	if res.Rows[0].Label != "a" || res.Rows[1].Label != "b" {
		t.Fatalf("labels wrong: %+v", res.Rows)
	}
	// Custom architectures must beat the best traditional one (the
	// paper's central claim for compress).
	if res.BestGainPct <= 0 {
		t.Fatalf("no gain over traditional architectures: %.2f%%", res.BestGainPct)
	}
	s := res.String()
	if !strings.Contains(s, "traditional") {
		t.Fatalf("rendering missing reference note:\n%s", s)
	}
}

func TestTable1Quick(t *testing.T) {
	res, err := Table1(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Table1Benchmarks {
		rows := res.RowsFor(name)
		if len(rows) < 2 {
			t.Fatalf("%s: only %d rows", name, len(rows))
		}
		// Rows are a cost/latency front: ascending cost, descending
		// latency.
		for i := 1; i < len(rows); i++ {
			if rows[i].Cost <= rows[i-1].Cost || rows[i].Latency >= rows[i-1].Latency {
				t.Fatalf("%s rows not a front: %+v", name, rows)
			}
		}
		// Energies and latencies must be plausible (nonzero, bounded).
		for _, r := range rows {
			if r.Energy <= 0 || r.Energy > 100 || r.Latency <= 0 || r.Latency > 200 {
				t.Fatalf("%s: implausible row %+v", name, r)
			}
		}
	}
	s := res.String()
	if !strings.Contains(s, "compress") || !strings.Contains(s, "vocoder") {
		t.Fatalf("rendering missing benchmarks:\n%s", s)
	}
	if !strings.Contains(res.Detailed(), "designs:") {
		t.Fatal("detailed rendering missing designs")
	}
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 runs the Full strategy")
	}
	res, err := Table2(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Comparisons) != 2 {
		t.Fatalf("want 2 comparisons, got %d", len(res.Comparisons))
	}
	for _, c := range res.Comparisons {
		if len(c.Metrics) != 3 {
			t.Fatalf("%s: want 3 strategies", c.Benchmark)
		}
		full, pruned, nbhd := c.Metrics[0], c.Metrics[1], c.Metrics[2]
		if full.Coverage != 1 {
			t.Fatalf("%s: full coverage %.2f != 1", c.Benchmark, full.Coverage)
		}
		if pruned.WorkAccesses >= full.WorkAccesses {
			t.Fatalf("%s: pruning did not reduce work (%d vs %d)",
				c.Benchmark, pruned.WorkAccesses, full.WorkAccesses)
		}
		if nbhd.Coverage < pruned.Coverage-1e-9 {
			t.Fatalf("%s: neighborhood coverage below pruned", c.Benchmark)
		}
	}
	// The projected Full work for li must dwarf what pruned runs cost
	// (the paper's infeasibility claim).
	if res.LiProjectedFullAccesses < 100_000_000 {
		t.Fatalf("li projected full work %d implausibly small", res.LiProjectedFullAccesses)
	}
	if !strings.Contains(res.String(), "li omitted") {
		t.Fatal("rendering missing li note")
	}
}

func TestFigureEnergyQuick(t *testing.T) {
	res, err := FigureEnergy(context.Background(), Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CostEnergy) == 0 || len(res.LatencyEnergy) == 0 {
		t.Fatal("energy fronts empty")
	}
	// Both fronts must be monotone staircases.
	for i := 1; i < len(res.LatencyEnergy); i++ {
		if res.LatencyEnergy[i].Latency <= res.LatencyEnergy[i-1].Latency ||
			res.LatencyEnergy[i].Energy >= res.LatencyEnergy[i-1].Energy {
			t.Fatal("latency/energy front malformed")
		}
	}
	// The 3-D set contains at least as many designs as any projection.
	if len(res.Front3D) < len(res.CostEnergy) || len(res.Front3D) < len(res.LatencyEnergy) {
		t.Fatal("3-D front smaller than a projection")
	}
	s := res.String()
	if !strings.Contains(s, "performance/power") || !strings.Contains(s, "3-D pareto") {
		t.Fatalf("rendering incomplete:\n%s", s)
	}
}
