package experiments

import (
	"context"
	"fmt"
	"strings"

	"memorex/internal/apex"
	"memorex/internal/plot"
)

// Figure3Row is one memory-modules design of Figure 3's scatter plot.
type Figure3Row struct {
	Arch      string
	Gates     float64
	MissRatio float64
	// Selected is 1..N for the pruned pareto designs (the paper's
	// points labelled 1-5), 0 otherwise.
	Selected int
}

// Figure3Result reproduces Figure 3: the APEX cost/miss-ratio design
// space of the compress benchmark with the selected pareto designs.
type Figure3Result struct {
	Benchmark string
	Rows      []Figure3Row
	// Work is the exploration cost in simulated accesses.
	Work int64
}

// Figure3 runs the memory-modules exploration of compress.
func Figure3(ctx context.Context, opt Options) (*Figure3Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t, err := benchTrace("compress", opt.TraceLimit)
	if err != nil {
		return nil, err
	}
	res, err := apex.Explore(t, nil, opt.APEX)
	if err != nil {
		return nil, err
	}
	out := &Figure3Result{Benchmark: "compress", Work: res.EvaluatedAccesses}
	selected := map[string]int{}
	for i, dp := range res.Selected {
		selected[dp.Arch.Name] = i + 1
	}
	for _, dp := range res.All {
		out.Rows = append(out.Rows, Figure3Row{
			Arch:      dp.Arch.Describe(t),
			Gates:     dp.Gates,
			MissRatio: dp.MissRatio,
			Selected:  selected[dp.Arch.Name],
		})
	}
	return out, nil
}

// SelectedRows returns the pruned pareto designs in label order.
func (f *Figure3Result) SelectedRows() []Figure3Row {
	var out []Figure3Row
	for want := 1; ; want++ {
		found := false
		for _, r := range f.Rows {
			if r.Selected == want {
				out = append(out, r)
				found = true
				break
			}
		}
		if !found {
			return out
		}
	}
}

// String renders the figure as a table: the full design-space cloud is
// summarized, the selected pareto points are listed like the paper's
// labels 1..5.
func (f *Figure3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: memory-modules exploration (%s), %d designs evaluated\n",
		f.Benchmark, len(f.Rows))
	fmt.Fprintf(&b, "%-4s %12s %10s  %s\n", "pt", "cost[gates]", "missratio", "architecture")
	for _, r := range f.SelectedRows() {
		fmt.Fprintf(&b, "%-4d %12.0f %10.4f  %s\n", r.Selected, r.Gates, r.MissRatio, r.Arch)
	}
	b.WriteString("\n")
	b.WriteString(f.Plot())
	return b.String()
}

// Plot renders the design-space scatter the way the paper's Figure 3
// draws it: the full cloud plus the selected pareto points.
func (f *Figure3Result) Plot() string {
	p := plot.New("miss ratio vs cost (selected points: #)", "cost [gates]", "miss ratio")
	p.LogX = true
	var cx, cy, sx, sy []float64
	for _, r := range f.Rows {
		if r.Selected > 0 {
			sx = append(sx, r.Gates)
			sy = append(sy, r.MissRatio)
		} else {
			cx = append(cx, r.Gates)
			cy = append(cy, r.MissRatio)
		}
	}
	if err := p.Add(plot.Series{Name: "evaluated", Marker: '.', X: cx, Y: cy}); err != nil {
		return err.Error()
	}
	if err := p.Add(plot.Series{Name: "selected", Marker: '#', X: sx, Y: sy}); err != nil {
		return err.Error()
	}
	return p.Render()
}
