package experiments

import (
	"context"
	"fmt"
	"strings"

	"memorex/internal/plot"
)

// Figure4Point is one memory+connectivity design of Figure 4's scatter.
type Figure4Point struct {
	Design  string
	Cost    float64
	Latency float64
	Energy  float64
	// OnFront marks the cost/latency pareto designs.
	OnFront bool
}

// Figure4Result reproduces Figure 4: the ConEx connectivity exploration
// cloud for compress in the cost / average-memory-latency space, and the
// headline latency improvement obtained by trading off cost.
type Figure4Result struct {
	Benchmark string
	// Cloud is the Phase I estimated design space (what the paper
	// plots as the unselected points).
	Cloud     []Figure4Point
	CloudSize int
	// Front is the fully simulated cost/latency pareto front.
	Front []Figure4Point
	// WorstLatency / BestLatency are the front endpoints: the paper
	// reports 10.6 -> 6.7 cycles (36%) for compress.
	WorstLatency, BestLatency float64
	// ImprovementPct is the relative latency reduction across the front.
	ImprovementPct float64
	// EstimatedAccesses / SimulatedAccesses measure the work split
	// between the sampled Phase I and the full Phase II.
	EstimatedAccesses, SimulatedAccesses int64
}

// Figure4 runs the coupled APEX+ConEx exploration of compress.
func Figure4(ctx context.Context, opt Options) (*Figure4Result, error) {
	t, _, conexRes, err := pipeline(ctx, "compress", opt.TraceLimit, opt.APEX, opt.ConEx)
	if err != nil {
		return nil, err
	}
	out := &Figure4Result{
		Benchmark:         "compress",
		EstimatedAccesses: conexRes.EstimatedAccesses,
		SimulatedAccesses: conexRes.SimulatedAccesses,
	}
	for _, perArch := range conexRes.PerArch {
		out.CloudSize += len(perArch)
		for _, dp := range perArch {
			out.Cloud = append(out.Cloud, Figure4Point{
				Cost: dp.Cost, Latency: dp.Latency, Energy: dp.Energy,
			})
		}
	}
	for _, dp := range conexRes.CostPerfFront {
		out.Front = append(out.Front, Figure4Point{
			Design:  dp.MemArch.Describe(t) + " | " + dp.Conn.Describe(dp.MemArch),
			Cost:    dp.Cost,
			Latency: dp.Latency,
			Energy:  dp.Energy,
			OnFront: true,
		})
	}
	if len(out.Front) > 0 {
		out.WorstLatency = out.Front[0].Latency
		out.BestLatency = out.Front[len(out.Front)-1].Latency
		if out.WorstLatency > 0 {
			out.ImprovementPct = 100 * (out.WorstLatency - out.BestLatency) / out.WorstLatency
		}
	}
	return out, nil
}

// String renders the figure in the paper's terms.
func (f *Figure4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: connectivity exploration (%s)\n", f.Benchmark)
	fmt.Fprintf(&b, "estimated design points (cloud): %d; fully simulated front: %d\n",
		f.CloudSize, len(f.Front))
	fmt.Fprintf(&b, "%12s %10s %10s  %s\n", "cost[gates]", "lat[cyc]", "nrg[nJ]", "design")
	for _, p := range f.Front {
		fmt.Fprintf(&b, "%12.0f %10.2f %10.2f  %s\n", p.Cost, p.Latency, p.Energy, p.Design)
	}
	fmt.Fprintf(&b, "avg memory latency %.2f -> %.2f cycles: %.0f%% improvement (paper: 10.6 -> 6.7, 36%%)\n",
		f.WorstLatency, f.BestLatency, f.ImprovementPct)
	fmt.Fprintf(&b, "work: %d sampled + %d fully simulated accesses\n",
		f.EstimatedAccesses, f.SimulatedAccesses)
	b.WriteString("\n")
	b.WriteString(f.Plot())
	return b.String()
}

// Plot renders the exploration cloud and front like the paper's
// Figure 4. Designs slower than 4x the front's worst point are cropped,
// matching the paper's footnote about omitting uninteresting designs.
func (f *Figure4Result) Plot() string {
	p := plot.New("avg memory latency vs cost (front: #)", "cost [gates]", "latency [cycles]")
	p.LogX = true
	crop := 1e18
	if len(f.Front) > 0 {
		crop = 4 * f.Front[0].Latency
	}
	var cx, cy, fx, fy []float64
	for _, pt := range f.Cloud {
		if pt.Latency > crop {
			continue
		}
		cx = append(cx, pt.Cost)
		cy = append(cy, pt.Latency)
	}
	for _, pt := range f.Front {
		fx = append(fx, pt.Cost)
		fy = append(fy, pt.Latency)
	}
	if err := p.Add(plot.Series{Name: "estimated", Marker: '.', X: cx, Y: cy}); err != nil {
		return err.Error()
	}
	if err := p.Add(plot.Series{Name: "front", Marker: '#', X: fx, Y: fy}); err != nil {
		return err.Error()
	}
	return p.Render()
}
