package experiments

import (
	"context"
	"fmt"
	"strings"
)

// Table1Row is one selected cost/performance design of Table 1.
type Table1Row struct {
	Benchmark string
	Cost      float64 // gates
	Latency   float64 // cycles/access
	Energy    float64 // nJ/access
	Design    string
}

// Table1Result reproduces Table 1: the selected cost/performance designs
// of the connectivity exploration for compress, li and vocoder, with
// cost in basic gates, average memory latency in cycles, and average
// energy per access in nJ.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Benchmarks lists the benchmarks in the paper's order.
var Table1Benchmarks = []string{"compress", "li", "vocoder"}

// Table1 runs the full pipeline on all three benchmarks.
func Table1(ctx context.Context, opt Options) (*Table1Result, error) {
	out := &Table1Result{}
	for _, name := range Table1Benchmarks {
		t, _, conexRes, err := pipeline(ctx, name, opt.TraceLimit, opt.APEX, opt.ConEx)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", name, err)
		}
		for _, dp := range conexRes.CostPerfFront {
			out.Rows = append(out.Rows, Table1Row{
				Benchmark: name,
				Cost:      dp.Cost,
				Latency:   dp.Latency,
				Energy:    dp.Energy,
				Design:    dp.MemArch.Describe(t) + " | " + dp.Conn.Describe(dp.MemArch),
			})
		}
	}
	return out, nil
}

// RowsFor returns the rows of one benchmark.
func (t *Table1Result) RowsFor(benchmark string) []Table1Row {
	var out []Table1Row
	for _, r := range t.Rows {
		if r.Benchmark == benchmark {
			out = append(out, r)
		}
	}
	return out
}

// String renders the table in the paper's layout.
func (t *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: selected cost/performance designs of the connectivity exploration\n")
	fmt.Fprintf(&b, "%-10s %12s %16s %12s\n", "Benchmark", "Cost[gates]", "AvgLat[cycles]", "AvgNrg[nJ]")
	last := ""
	for _, r := range t.Rows {
		name := ""
		if r.Benchmark != last {
			name = r.Benchmark
			last = r.Benchmark
		}
		fmt.Fprintf(&b, "%-10s %12.0f %16.2f %12.2f\n", name, r.Cost, r.Latency, r.Energy)
	}
	return b.String()
}

// Detailed renders the table with design descriptions appended.
func (t *Table1Result) Detailed() string {
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\ndesigns:\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-10s %12.0f  %s\n", r.Benchmark, r.Cost, r.Design)
	}
	return b.String()
}
