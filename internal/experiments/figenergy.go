package experiments

import (
	"context"
	"fmt"
	"strings"

	"memorex/internal/pareto"
	"memorex/internal/plot"
)

// FigureEnergyResult reproduces the energy-dimension view the paper
// describes in Section 4 ("for energy-aware designs, similar tradeoffs
// are obtained in the cost/power or the performance/power design
// spaces"): the cost/energy and latency/energy pareto fronts of the
// compress exploration, plus the 3-D front that only the combined view
// exposes.
type FigureEnergyResult struct {
	Benchmark string
	// CostEnergy and LatencyEnergy are the 2-D fronts.
	CostEnergy    []pareto.Point
	LatencyEnergy []pareto.Point
	// Front3D is the full (cost, latency, energy) pareto set; designs
	// on it but on neither 2-D front are the balanced designs a
	// projection-only exploration would discard.
	Front3D      []pareto.Point
	BalancedOnly int
	// Knee is the suggested best trade-off on the latency/energy front.
	Knee    pareto.Point
	HasKnee bool
}

// FigureEnergy runs the compress exploration and projects the energy
// dimension.
func FigureEnergy(ctx context.Context, opt Options) (*FigureEnergyResult, error) {
	_, _, conexRes, err := pipeline(ctx, "compress", opt.TraceLimit, opt.APEX, opt.ConEx)
	if err != nil {
		return nil, err
	}
	pts := conexRes.Points()
	out := &FigureEnergyResult{
		Benchmark:     "compress",
		CostEnergy:    pareto.Front(pts, pareto.Cost, pareto.Energy),
		LatencyEnergy: pareto.Front(pts, pareto.Latency, pareto.Energy),
		Front3D:       pareto.Front3D(pts),
	}
	in2D := map[string]bool{}
	for _, p := range append(append([]pareto.Point{}, out.CostEnergy...), out.LatencyEnergy...) {
		in2D[p.Label] = true
	}
	for _, p := range pareto.Front(pts, pareto.Cost, pareto.Latency) {
		in2D[p.Label] = true
	}
	for _, p := range out.Front3D {
		if !in2D[p.Label] {
			out.BalancedOnly++
		}
	}
	out.Knee, out.HasKnee = pareto.Knee(pts, pareto.Latency, pareto.Energy)
	return out, nil
}

// String renders the energy trade-off fronts.
func (f *FigureEnergyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Energy-aware views of the %s exploration (paper Section 4)\n", f.Benchmark)
	fmt.Fprintf(&b, "\nperformance/power pareto front (%d designs):\n", len(f.LatencyEnergy))
	fmt.Fprintf(&b, "%10s %10s %12s\n", "lat[cyc]", "nrg[nJ]", "cost[gates]")
	for _, p := range f.LatencyEnergy {
		fmt.Fprintf(&b, "%10.2f %10.2f %12.0f\n", p.Latency, p.Energy, p.Cost)
	}
	fmt.Fprintf(&b, "\ncost/power pareto front (%d designs):\n", len(f.CostEnergy))
	fmt.Fprintf(&b, "%12s %10s %10s\n", "cost[gates]", "nrg[nJ]", "lat[cyc]")
	for _, p := range f.CostEnergy {
		fmt.Fprintf(&b, "%12.0f %10.2f %10.2f\n", p.Cost, p.Energy, p.Latency)
	}
	fmt.Fprintf(&b, "\n3-D pareto set: %d designs (%d visible in no 2-D projection)\n",
		len(f.Front3D), f.BalancedOnly)
	if f.HasKnee {
		fmt.Fprintf(&b, "latency/energy knee: %.2f cyc, %.2f nJ, %.0f gates\n",
			f.Knee.Latency, f.Knee.Energy, f.Knee.Cost)
	}
	b.WriteString("\n")
	p := plot.New("energy vs latency (front: #)", "latency [cycles]", "energy [nJ]")
	var fx, fy []float64
	for _, pt := range f.LatencyEnergy {
		fx = append(fx, pt.Latency)
		fy = append(fy, pt.Energy)
	}
	if err := p.Add(plot.Series{Name: "front", Marker: '#', X: fx, Y: fy}); err == nil {
		b.WriteString(p.Render())
	}
	return b.String()
}
