package experiments

import (
	"context"
	"strings"

	"memorex/internal/apex"
	"memorex/internal/explore"
)

// SearchResult extends Table 2 with the heuristic drivers: the GA and
// SA strategies measured against the Full ground truth on compress.
type SearchResult struct {
	Comparison *explore.Comparison
}

// Search runs the Full, GA and SA strategies on compress and compares
// the heuristic fronts against the exhaustive truth. The enumeration
// cap is lifted (the heuristic drivers walk the full cross-product
// space, so the ground truth must too) and each heuristic gets an
// evaluation budget of 25% of Full's simulations — the economy the
// drivers are designed for. Each strategy runs on a private engine, so
// the work columns measure what each would cost on its own.
func Search(ctx context.Context, opt Options) (*SearchResult, error) {
	t, err := benchTrace("compress", opt.Table2TraceLimit)
	if err != nil {
		return nil, err
	}
	apexRes, err := apex.Explore(t, nil, opt.Table2APEX)
	if err != nil {
		return nil, err
	}
	space := explore.BuildSpace(apexRes)
	cfg := opt.Table2ConEx
	cfg.MaxAssignPerLevel = 0
	full, err := explore.Run(ctx, t, space, explore.Full, cfg)
	if err != nil {
		return nil, err
	}
	cfg.Search.Seed = 42
	cfg.Search.Budget = int(full.Stats.Simulations / 4)
	ga, err := explore.Run(ctx, t, space, explore.GA, cfg)
	if err != nil {
		return nil, err
	}
	sa, err := explore.Run(ctx, t, space, explore.SA, cfg)
	if err != nil {
		return nil, err
	}
	return &SearchResult{Comparison: explore.Compare("compress", full, ga, sa)}, nil
}

// String renders the heuristic-search comparison.
func (r *SearchResult) String() string {
	var b strings.Builder
	b.WriteString("Heuristic search: GA and SA against the Full truth (budget = 25% of Full)\n\n")
	b.WriteString(r.Comparison.String())
	return b.String()
}
