// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figures 3, 4, 6 and Tables 1, 2) from the MemorEx
// pipeline. Each experiment returns a typed result with a String method
// that renders rows in the layout of the paper, and cmd/paperbench and
// the repository's bench_test.go drive them.
//
// Two presets exist: the Paper preset runs the spaces used for
// EXPERIMENTS.md, and the Quick preset shrinks traces and enumeration
// caps so that benchmarks and CI stay fast. Both presets share one
// evaluation engine across the figure experiments, so a design point
// simulated for Figure 4 is served from the memo cache when Figure 6 or
// the energy views revisit it. Reproduction targets are shapes (who
// wins, rough factors, crossovers), not the paper's absolute 2002 gate
// counts.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"memorex/internal/apex"
	"memorex/internal/core"
	"memorex/internal/engine"
	"memorex/internal/mem"
	"memorex/internal/profile"
	"memorex/internal/sampling"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

// Options sizes an experiment run.
type Options struct {
	// TraceLimit truncates benchmark traces (0 = full trace).
	TraceLimit int
	// APEX bounds the memory-modules space.
	APEX apex.Config
	// ConEx parameterizes the connectivity exploration. Its Engine is
	// shared across the figure experiments (set by the presets).
	ConEx core.Config
	// Table2TraceLimit truncates the Table 2 traces (the Full baseline
	// simulates every design, so it gets its own, tighter limit).
	Table2TraceLimit int
	// Table2APEX / Table2ConEx bound the Table 2 space. Table2ConEx
	// deliberately carries no shared engine: each strategy run gets a
	// private one, so the Full-vs-Pruned work comparison stays honest.
	Table2APEX  apex.Config
	Table2ConEx core.Config
}

// Engine returns the evaluation engine shared by the figure
// experiments (nil when the preset did not set one).
func (o Options) Engine() *engine.Engine { return o.ConEx.Engine }

// Paper returns the preset used to produce EXPERIMENTS.md.
func Paper() Options {
	opt := Options{
		APEX:  apex.DefaultConfig(),
		ConEx: core.DefaultConfig(),
		Table2APEX: apex.Config{
			CacheSizes:  []int{2 << 10, 8 << 10, 32 << 10},
			CacheAssocs: []int{2},
			CacheLines:  []int{32},
			MaxCustom:   2,
			SRAMLimit:   80 << 10,
			MaxSelected: 4,
		},
		Table2ConEx:      core.DefaultConfig(),
		Table2TraceLimit: 120_000,
	}
	opt.ConEx.Engine = engine.New(0)
	opt.Table2ConEx.MaxAssignPerLevel = 24
	opt.Table2ConEx.KeepPerArch = 10
	return opt
}

// Quick returns the preset used by benchmarks and CI: same structure,
// smaller traces and enumeration caps.
func Quick() Options {
	opt := Options{
		TraceLimit: 60_000,
		APEX: apex.Config{
			CacheSizes:  []int{2 << 10, 8 << 10, 32 << 10},
			CacheAssocs: []int{1, 2},
			CacheLines:  []int{32},
			MaxCustom:   2,
			SRAMLimit:   80 << 10,
			MaxSelected: 5,
		},
		ConEx: core.DefaultConfig(),
		Table2APEX: apex.Config{
			CacheSizes:  []int{2 << 10, 32 << 10},
			CacheAssocs: []int{2},
			CacheLines:  []int{32},
			MaxCustom:   1,
			SRAMLimit:   80 << 10,
			MaxSelected: 2,
		},
		Table2ConEx:      core.DefaultConfig(),
		Table2TraceLimit: 40_000,
	}
	opt.ConEx.Engine = engine.New(0)
	opt.ConEx.MaxAssignPerLevel = 48
	opt.ConEx.KeepPerArch = 6
	opt.ConEx.Sampling = sampling.Config{OnWindow: 1000, OffRatio: 9}
	opt.Table2ConEx.MaxAssignPerLevel = 12
	opt.Table2ConEx.KeepPerArch = 4
	opt.Table2ConEx.Sampling = sampling.Config{OnWindow: 1000, OffRatio: 9}
	return opt
}

// traceCache shares generated benchmark traces (and their truncated
// slices) across experiments in one process. Trace generation is
// deterministic, and reusing the same slice object lets the engine skip
// re-fingerprinting the trace between experiments.
var (
	traceMu    sync.Mutex
	traceCache = map[string]*trace.Trace{}
	sliceCache = map[string]*trace.Trace{}
)

// benchTrace returns the (possibly truncated) trace of a benchmark.
func benchTrace(name string, limit int) (*trace.Trace, error) {
	traceMu.Lock()
	defer traceMu.Unlock()
	t, ok := traceCache[name]
	if !ok {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		t = w.Generate(workload.DefaultConfig())
		traceCache[name] = t
	}
	if limit > 0 && limit < t.NumAccesses() {
		key := fmt.Sprintf("%s#%d", name, limit)
		s, ok := sliceCache[key]
		if !ok {
			s = t.Slice(0, limit)
			sliceCache[key] = s
		}
		return s, nil
	}
	return t, nil
}

// pipeline runs profile + APEX + ConEx for a benchmark under the given
// bounds, sharing nothing mutable beyond the evaluation engine.
func pipeline(ctx context.Context, name string, limit int, apexCfg apex.Config, conexCfg core.Config) (*trace.Trace, *apex.Result, *core.Result, error) {
	t, err := benchTrace(name, limit)
	if err != nil {
		return nil, nil, nil, err
	}
	prof := profile.Analyze(t)
	apexRes, err := apex.Explore(t, prof, apexCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	archs := make([]*mem.Architecture, 0, len(apexRes.Selected))
	for _, dp := range apexRes.Selected {
		archs = append(archs, dp.Arch)
	}
	conexRes, err := core.Explore(ctx, t, archs, conexCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return t, apexRes, conexRes, nil
}
