package experiments

import (
	"context"
	"fmt"
	"strings"

	"memorex/internal/core"
	"memorex/internal/mem"
	"memorex/internal/pareto"
)

// Figure6Row is one annotated pareto design (the paper's points a..k).
type Figure6Row struct {
	Label       string // "a", "b", ...
	Cost        float64
	Latency     float64
	Energy      float64
	Traditional bool // cache-only memory architecture
	// PerfGainPct / CostIncreasePct are relative to the best
	// traditional (cache-only) design, the paper's reference b.
	PerfGainPct     float64
	CostIncreasePct float64
	Design          string
}

// Figure6Result reproduces Figure 6: the analyzed cost/performance
// pareto architectures of compress, annotated with their composition and
// their gains over the best traditional cache architecture (the paper:
// c = +10% for a small cost increase, g = +26% for ~30% cost, k = +30%).
type Figure6Result struct {
	Benchmark string
	Rows      []Figure6Row
	// BestTraditional is the label of the reference design.
	BestTraditional string
	// BestGainPct is the largest performance gain over the reference.
	BestGainPct float64
}

// Figure6 runs the compress exploration and annotates the pareto front.
// Like the paper — whose architectures a and b are "two instances of a
// traditional cache-only memory configuration" — it explicitly explores
// the best cache-only memory architecture of the APEX sweep so that the
// gains of the custom architectures are measured against the strongest
// conventional design, not against whatever cache-only point happened to
// survive pruning.
func Figure6(ctx context.Context, opt Options) (*Figure6Result, error) {
	t, apexRes, conexRes, err := pipeline(ctx, "compress", opt.TraceLimit, opt.APEX, opt.ConEx)
	if err != nil {
		return nil, err
	}
	out := &Figure6Result{Benchmark: "compress"}

	isTraditional := func(a *mem.Architecture) bool {
		if len(a.Modules) != 1 {
			return false
		}
		return a.Modules[0].Kind() == mem.KindCache
	}

	// Explore the best (lowest miss ratio) cache-only architecture of
	// the full APEX space as the reference, the paper's design b.
	var refArch *mem.Architecture
	bestMiss := 2.0
	for _, dp := range apexRes.All {
		if isTraditional(dp.Arch) && dp.MissRatio < bestMiss {
			bestMiss = dp.MissRatio
			refArch = dp.Arch
		}
	}
	points := append([]core.DesignPoint(nil), conexRes.Combined...)
	if refArch != nil {
		refRes, err := core.Explore(ctx, t, []*mem.Architecture{refArch}, opt.ConEx)
		if err != nil {
			return nil, err
		}
		points = append(points, refRes.Combined...)
	}

	// Reference metrics: the best fully simulated cache-only design.
	var refLatency, refCost float64
	found := false
	for _, dp := range points {
		if isTraditional(dp.MemArch) && (!found || dp.Latency < refLatency) {
			refLatency, refCost = dp.Latency, dp.Cost
			found = true
		}
	}
	if !found {
		// No cache-only design at all: fall back to the cheapest point
		// as reference (still reports the shape).
		refLatency = conexRes.CostPerfFront[0].Latency
		refCost = conexRes.CostPerfFront[0].Cost
	}

	// Recompute the cost/latency front over the combined pool.
	pps := make([]pareto.Point, len(points))
	for i := range points {
		pps[i] = points[i].Point()
		pps[i].Meta = i
	}
	var front []core.DesignPoint
	for _, p := range pareto.Front(pps, pareto.Cost, pareto.Latency) {
		front = append(front, points[p.Meta.(int)])
	}

	for i, dp := range front {
		label := string(rune('a' + i%26))
		row := Figure6Row{
			Label:       label,
			Cost:        dp.Cost,
			Latency:     dp.Latency,
			Energy:      dp.Energy,
			Traditional: isTraditional(dp.MemArch),
			Design:      dp.MemArch.Describe(t) + " | " + dp.Conn.Describe(dp.MemArch),
		}
		if refLatency > 0 {
			row.PerfGainPct = 100 * (refLatency - dp.Latency) / refLatency
		}
		if refCost > 0 {
			row.CostIncreasePct = 100 * (dp.Cost - refCost) / refCost
		}
		if row.Traditional && row.Latency == refLatency {
			out.BestTraditional = label
		}
		out.Rows = append(out.Rows, row)
		if row.PerfGainPct > out.BestGainPct {
			out.BestGainPct = row.PerfGainPct
		}
	}
	return out, nil
}

// String renders the annotated front.
func (f *Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: cost/perf pareto architectures (%s)\n", f.Benchmark)
	fmt.Fprintf(&b, "%-3s %12s %9s %8s %8s %8s  %s\n",
		"pt", "cost[gates]", "lat[cyc]", "nrg[nJ]", "dPerf%", "dCost%", "design")
	for _, r := range f.Rows {
		tag := r.Label
		if r.Traditional {
			tag += "*"
		}
		fmt.Fprintf(&b, "%-3s %12.0f %9.2f %8.2f %+8.1f %+8.1f  %s\n",
			tag, r.Cost, r.Latency, r.Energy, r.PerfGainPct, r.CostIncreasePct, r.Design)
	}
	fmt.Fprintf(&b, "(*) traditional cache-only designs; gains relative to the best of them\n")
	fmt.Fprintf(&b, "best custom-architecture gain: %.0f%% (paper: ~30%% for compress point k)\n", f.BestGainPct)
	return b.String()
}
