package experiments

import (
	"context"
	"fmt"
	"strings"

	"memorex/internal/apex"
	"memorex/internal/core"
	"memorex/internal/explore"
	"memorex/internal/trace"
)

// Table2Benchmarks lists the benchmarks compared in Table 2. The paper
// omits li because its Full exploration was infeasible; we do the same
// and report the projected Full work instead.
var Table2Benchmarks = []string{"compress", "vocoder"}

// Table2Result reproduces Table 2: pareto coverage and average
// cost/performance/energy distance of the Pruned and Neighborhood
// strategies against the fully simulated truth.
type Table2Result struct {
	Comparisons []*explore.Comparison
	// LiProjectedFullAccesses is the projected work of the Full
	// strategy on li, which we (like the paper) do not run.
	LiProjectedFullAccesses int64
}

// Table2 runs the three exploration strategies on compress and vocoder.
// Each strategy runs on a private engine (Table2ConEx carries none), so
// the work comparison between Full, Pruned and Neighborhood measures
// what each strategy would cost on its own.
func Table2(ctx context.Context, opt Options) (*Table2Result, error) {
	out := &Table2Result{}
	for _, name := range Table2Benchmarks {
		t, err := benchTrace(name, opt.Table2TraceLimit)
		if err != nil {
			return nil, err
		}
		apexRes, err := apex.Explore(t, nil, opt.Table2APEX)
		if err != nil {
			return nil, err
		}
		space := explore.BuildSpace(apexRes)
		full, err := explore.Run(ctx, t, space, explore.Full, opt.Table2ConEx)
		if err != nil {
			return nil, err
		}
		pruned, err := explore.Run(ctx, t, space, explore.Pruned, opt.Table2ConEx)
		if err != nil {
			return nil, err
		}
		nbhd, err := explore.Run(ctx, t, space, explore.Neighborhood, opt.Table2ConEx)
		if err != nil {
			return nil, err
		}
		out.Comparisons = append(out.Comparisons, explore.Compare(name, full, pruned, nbhd))
	}
	// Project the Full work for li without running it: candidate count
	// times trace length.
	liTrace, err := benchTrace("li", 0)
	if err != nil {
		return nil, err
	}
	liAPEX, err := apex.Explore(liTrace.Slice(0, opt.Table2TraceLimit), nil, opt.Table2APEX)
	if err != nil {
		return nil, err
	}
	out.LiProjectedFullAccesses, err = projectFullWork(liTrace, liAPEX, opt.Table2ConEx)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// projectFullWork counts the designs the Full strategy would simulate on
// the full-length trace and multiplies by the trace length.
func projectFullWork(t *trace.Trace, apexRes *apex.Result, cfg core.Config) (int64, error) {
	space := explore.BuildSpace(apexRes)
	var designs int64
	for _, arch := range space.AllMem {
		brg, err := core.BuildBRG(t.Slice(0, 10_000), arch)
		if err != nil {
			return 0, err
		}
		for _, level := range core.Levels(brg) {
			cands, _ := core.EnumerateAssignments(brg, level, cfg.Library, cfg.MaxAssignPerLevel)
			designs += int64(len(cands))
		}
	}
	return designs * int64(t.NumAccesses()), nil
}

// String renders the comparisons plus the li infeasibility note.
func (t *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: pareto coverage of the exploration strategies\n\n")
	for _, c := range t.Comparisons {
		b.WriteString(c.String())
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "li omitted (as in the paper): Full would simulate ~%d accesses\n",
		t.LiProjectedFullAccesses)
	return b.String()
}
