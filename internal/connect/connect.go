// Package connect models the connectivity IP library of the paper:
// AMBA-style system busses (AHB, ASB, APB), MUX-based connections,
// dedicated point-to-point links, and off-chip busses. Each component
// carries the attributes the paper's library records — resource usage
// (gates, including a wire-area contribution per the Chen and Deng/Maly
// models), latency, pipelining, parallelism, split-transaction support,
// and bitwidth — plus an energy-per-byte figure for the power dimension.
package connect

import (
	"fmt"

	"memorex/internal/mem"
	"memorex/internal/rtable"
)

// Class enumerates the connectivity component families.
type Class int

// Connectivity classes, ordered roughly by controller complexity.
const (
	// Dedicated is a point-to-point link: minimal latency, but every
	// channel needs its own long wires.
	Dedicated Class = iota
	// Mux is a multiplexer-based connection: near-dedicated latency
	// shared among a few ports.
	Mux
	// APB is the AMBA peripheral bus: cheap, slow, not pipelined.
	APB
	// ASB is the AMBA system bus: arbitrated, moderately fast.
	ASB
	// AHB is the AMBA high-performance bus: pipelined, split
	// transactions, expensive controller.
	AHB
	// OffChip is a chip-boundary bus through pads to external memory.
	OffChip
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Dedicated:
		return "dedicated"
	case Mux:
		return "mux"
	case APB:
		return "apb"
	case ASB:
		return "asb"
	case AHB:
		return "ahb"
	case OffChip:
		return "offchip"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Component is one entry of the connectivity IP library.
type Component struct {
	Name  string
	Class Class
	// WidthBytes is the data-path width: a transfer of n bytes takes
	// ceil(n/WidthBytes) beats.
	WidthBytes int
	// ArbCycles is the arbitration/selection latency paid per transfer.
	ArbCycles int
	// BeatCycles is the cycles per data beat.
	BeatCycles int
	// Pipelined components release the arbiter while data moves, so
	// back-to-back transfers overlap; non-pipelined components hold the
	// whole bus for the full transfer.
	Pipelined bool
	// Split components release the data path during slave dead time
	// (DRAM latency), letting other masters use the bus meanwhile.
	Split bool
	// MaxPorts bounds how many endpoints (CPU, modules, DRAM side) the
	// component can connect.
	MaxPorts int
	// OnChip is false for chip-boundary components. On-chip channels
	// must map to on-chip components and vice versa.
	OnChip bool
	// EnergyPerByte is the transfer energy in nJ/byte (wire + driver
	// capacitance; off-chip pads are an order of magnitude above
	// on-chip wires).
	EnergyPerByte float64
	// BaseGates is the controller/arbiter area.
	BaseGates float64
	// GatesPerPort is the per-port mux/driver area.
	GatesPerPort float64
	// WireGatesPerPort is the wire-area contribution per attached port
	// expressed in gate equivalents (the paper derives wire area from
	// the floorplan models of Chen et al. and Deng/Maly; point-to-point
	// styles pay much more wiring than shared busses).
	WireGatesPerPort float64
}

// resource indices of the reservation tables built for components.
const (
	resArbiter = 0
	resData    = 1
	numRes     = 2
)

// NumResources returns the resource count of component reservation
// tables (arbiter and data path).
func NumResources() int { return numRes }

// Beats returns the number of data beats needed to move n bytes.
func (c *Component) Beats(n int) int {
	if n <= 0 {
		return 0
	}
	b := (n + c.WidthBytes - 1) / c.WidthBytes
	return b
}

// TransferCycles returns the latency of moving n bytes once granted:
// arbitration plus data beats.
func (c *Component) TransferCycles(n int) int {
	return c.ArbCycles + c.Beats(n)*c.BeatCycles
}

// Table returns the reservation table of an n-byte transfer on this
// component: how long the arbiter and the data path are held. For
// non-pipelined components the arbiter is held for the whole transfer,
// serializing everything; pipelined components release it after
// arbitration so the next transfer can overlap.
func (c *Component) Table(n int) *rtable.Table {
	t := rtable.New(c.Name, numRes)
	dataCycles := c.Beats(n) * c.BeatCycles
	if dataCycles > 62-c.ArbCycles {
		dataCycles = 62 - c.ArbCycles // clamp to table window; sim splits long bursts
	}
	if c.ArbCycles > 0 {
		if c.Pipelined {
			t.Stage(resArbiter, 0, c.ArbCycles)
		} else {
			t.Stage(resArbiter, 0, c.ArbCycles+dataCycles)
		}
	} else if !c.Pipelined {
		t.Stage(resArbiter, 0, maxInt(1, dataCycles))
	}
	if dataCycles > 0 {
		t.Stage(resData, c.ArbCycles, dataCycles)
	}
	return t
}

// Stages returns the dynamic stage list for an n-byte transfer (the
// Table flattened), ready for a rtable.Scheduler.
func (c *Component) Stages(n int) []rtable.Stage {
	return c.Table(n).Stages()
}

// Gates returns the component's area in gate equivalents when connecting
// the given number of ports.
func (c *Component) Gates(ports int) float64 {
	if ports < 2 {
		ports = 2
	}
	return c.BaseGates + float64(ports)*(c.GatesPerPort+c.WireGatesPerPort)
}

// TransferEnergy returns the energy in nJ of moving n bytes, including a
// fixed arbitration overhead.
func (c *Component) TransferEnergy(n int) float64 {
	return 0.01 + float64(n)*c.EnergyPerByte
}

// Fits reports whether the component can implement a channel set with
// the given port count and chip placement.
func (c *Component) Fits(ports int, offChip bool) bool {
	if offChip == c.OnChip {
		return false
	}
	return ports <= c.MaxPorts
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Library returns the default connectivity IP library used by the
// experiments. The entries mirror the paper's examples: AMBA AHB
// (32- and 64-bit), ASB, APB, MUX-based connections, dedicated links,
// and two off-chip bus widths.
func Library() []Component {
	return []Component{
		{
			Name: "ded32", Class: Dedicated, WidthBytes: 4,
			ArbCycles: 0, BeatCycles: 1, Pipelined: true, MaxPorts: 2, OnChip: true,
			EnergyPerByte: 0.080, BaseGates: 220, GatesPerPort: 160, WireGatesPerPort: 1900,
		},
		{
			Name: "mux32", Class: Mux, WidthBytes: 4,
			ArbCycles: 0, BeatCycles: 1, Pipelined: true, MaxPorts: 4, OnChip: true,
			EnergyPerByte: 0.070, BaseGates: 450, GatesPerPort: 380, WireGatesPerPort: 1300,
		},
		{
			Name: "apb32", Class: APB, WidthBytes: 4,
			ArbCycles: 2, BeatCycles: 2, Pipelined: false, MaxPorts: 8, OnChip: true,
			EnergyPerByte: 0.030, BaseGates: 950, GatesPerPort: 130, WireGatesPerPort: 420,
		},
		{
			Name: "asb32", Class: ASB, WidthBytes: 4,
			ArbCycles: 2, BeatCycles: 1, Pipelined: false, MaxPorts: 8, OnChip: true,
			EnergyPerByte: 0.040, BaseGates: 1700, GatesPerPort: 210, WireGatesPerPort: 520,
		},
		{
			Name: "ahb32", Class: AHB, WidthBytes: 4,
			ArbCycles: 1, BeatCycles: 1, Pipelined: true, Split: true, MaxPorts: 16, OnChip: true,
			EnergyPerByte: 0.050, BaseGates: 3400, GatesPerPort: 270, WireGatesPerPort: 600,
		},
		{
			Name: "ahb64", Class: AHB, WidthBytes: 8,
			ArbCycles: 1, BeatCycles: 1, Pipelined: true, Split: true, MaxPorts: 16, OnChip: true,
			EnergyPerByte: 0.058, BaseGates: 6100, GatesPerPort: 430, WireGatesPerPort: 980,
		},
		{
			Name: "off16", Class: OffChip, WidthBytes: 2,
			ArbCycles: 2, BeatCycles: 2, Pipelined: false, MaxPorts: 6, OnChip: false,
			EnergyPerByte: 0.350, BaseGates: 2600, GatesPerPort: 140, WireGatesPerPort: 0,
		},
		{
			Name: "off32", Class: OffChip, WidthBytes: 4,
			ArbCycles: 2, BeatCycles: 1, Pipelined: false, MaxPorts: 6, OnChip: false,
			EnergyPerByte: 0.520, BaseGates: 4600, GatesPerPort: 220, WireGatesPerPort: 0,
		},
	}
}

// OnChipComponents filters the library to on-chip entries.
func OnChipComponents(lib []Component) []Component {
	var out []Component
	for _, c := range lib {
		if c.OnChip {
			out = append(out, c)
		}
	}
	return out
}

// OffChipComponents filters the library to chip-boundary entries.
func OffChipComponents(lib []Component) []Component {
	var out []Component
	for _, c := range lib {
		if !c.OnChip {
			out = append(out, c)
		}
	}
	return out
}

// ByName returns the library component with the given name.
func ByName(lib []Component, name string) (Component, error) {
	for _, c := range lib {
		if c.Name == name {
			return c, nil
		}
	}
	return Component{}, fmt.Errorf("connect: no component %q in library", name)
}

// Arch is a connectivity architecture for a specific memory-modules
// architecture: the channels are partitioned into clusters (the paper's
// "logical connections") and each cluster is implemented by one library
// component (the "physical connection").
type Arch struct {
	// Channels is the channel list of the memory architecture this
	// connectivity architecture implements (mem.Architecture.Channels).
	Channels []mem.Channel
	// Clusters partitions channel indices into logical connections.
	Clusters [][]int
	// Assign[i] is the component implementing Clusters[i].
	Assign []Component
}

// Ports returns the endpoint count of cluster i: each channel brings two
// endpoints, but the shared CPU/DRAM side is counted once.
func (a *Arch) Ports(i int) int {
	return len(a.Clusters[i]) + 1
}

// OffChipCluster reports whether cluster i contains chip-boundary
// channels.
func (a *Arch) OffChipCluster(i int) bool {
	for _, ch := range a.Clusters[i] {
		if a.Channels[ch].OffChip {
			return true
		}
	}
	return false
}

// Validate checks that the clustering is a partition of the channels and
// every assignment is feasible (port count, chip placement, no mixing of
// on- and off-chip channels in one cluster).
func (a *Arch) Validate() error {
	if len(a.Clusters) != len(a.Assign) {
		return fmt.Errorf("connect: %d clusters but %d assignments", len(a.Clusters), len(a.Assign))
	}
	seen := make([]bool, len(a.Channels))
	for i, cl := range a.Clusters {
		if len(cl) == 0 {
			return fmt.Errorf("connect: cluster %d is empty", i)
		}
		for _, ch := range cl {
			if ch < 0 || ch >= len(a.Channels) {
				return fmt.Errorf("connect: cluster %d references channel %d out of range", i, ch)
			}
		}
		off := a.Channels[cl[0]].OffChip
		for _, ch := range cl {
			if seen[ch] {
				return fmt.Errorf("connect: channel %d appears in multiple clusters", ch)
			}
			seen[ch] = true
			if a.Channels[ch].OffChip != off {
				return fmt.Errorf("connect: cluster %d mixes on-chip and off-chip channels", i)
			}
		}
		if !a.Assign[i].Fits(a.Ports(i), off) {
			return fmt.Errorf("connect: cluster %d (%d ports, offchip=%v) cannot map to %s",
				i, a.Ports(i), off, a.Assign[i].Name)
		}
	}
	for ch, ok := range seen {
		if !ok {
			return fmt.Errorf("connect: channel %d not covered by any cluster", ch)
		}
	}
	return nil
}

// Gates returns the connectivity area in gate equivalents.
func (a *Arch) Gates() float64 {
	var g float64
	for i := range a.Clusters {
		g += a.Assign[i].Gates(a.Ports(i))
	}
	return g
}

// ComponentOf returns the cluster index and component serving channel
// ch, or -1 if the channel is not covered.
func (a *Arch) ComponentOf(ch int) int {
	for i, cl := range a.Clusters {
		for _, c := range cl {
			if c == ch {
				return i
			}
		}
	}
	return -1
}

// Describe returns a compact summary like
// "ahb32[cpu<->cache8k,cpu<->sram4096b] + off32[cache8k<->dram]".
func (a *Arch) Describe(m *mem.Architecture) string {
	s := ""
	for i, cl := range a.Clusters {
		if i > 0 {
			s += " + "
		}
		s += a.Assign[i].Name + "["
		for j, ch := range cl {
			if j > 0 {
				s += ","
			}
			s += a.Channels[ch].Label(m)
		}
		s += "]"
	}
	return s
}
