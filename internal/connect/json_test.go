package connect

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestLibraryJSONRoundTrip(t *testing.T) {
	lib := Library()
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lib, got) {
		t.Fatal("library JSON round trip mismatch")
	}
}

func TestDefaultLibraryValidates(t *testing.T) {
	if err := ValidateLibrary(Library()); err != nil {
		t.Fatalf("default library invalid: %v", err)
	}
}

func TestReadLibraryRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"unknown class": `[{"name":"x","class":"warp","width_bytes":4,"beat_cycles":1,"max_ports":4,"on_chip":true,"energy_per_byte_nj":0.1,"base_gates":100}]`,
		"unknown field": `[{"name":"x","class":"mux","bogus":1}]`,
		"empty":         `[]`,
		"zero width":    `[{"name":"x","class":"mux","width_bytes":0,"beat_cycles":1,"max_ports":4,"on_chip":true,"energy_per_byte_nj":0.1,"base_gates":100}]`,
	}
	for name, src := range cases {
		if _, err := ReadLibrary(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestValidateLibraryRules(t *testing.T) {
	lib := Library()
	dup := append(append([]Component{}, lib...), lib[0])
	if err := ValidateLibrary(dup); err == nil {
		t.Fatal("duplicate names accepted")
	}
	onOnly := OnChipComponents(lib)
	if err := ValidateLibrary(onOnly); err == nil {
		t.Fatal("library without off-chip components accepted")
	}
	bad := append([]Component{}, lib...)
	bad[0].MaxPorts = 1
	if err := ValidateLibrary(bad); err == nil {
		t.Fatal("1-port component accepted")
	}
	bad = append([]Component{}, lib...)
	bad[0].EnergyPerByte = 0
	if err := ValidateLibrary(bad); err == nil {
		t.Fatal("zero-energy component accepted")
	}
	bad = append([]Component{}, lib...)
	bad[0].Name = ""
	if err := ValidateLibrary(bad); err == nil {
		t.Fatal("empty name accepted")
	}
	bad = append([]Component{}, lib...)
	bad[0].ArbCycles = -1
	if err := ValidateLibrary(bad); err == nil {
		t.Fatal("negative arbitration accepted")
	}
}

func TestWriteLibraryUnknownClass(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, []Component{{Name: "x", Class: Class(42)}}); err == nil {
		t.Fatal("unknown class serialized")
	}
}

func TestCustomLibraryUsable(t *testing.T) {
	src := `[
	  {"name":"narrowbus","class":"asb","width_bytes":2,"arb_cycles":1,
	   "beat_cycles":1,"max_ports":6,"on_chip":true,
	   "energy_per_byte_nj":0.03,"base_gates":800,"gates_per_port":100,
	   "wire_gates_per_port":300},
	  {"name":"extmem","class":"offchip","width_bytes":2,"arb_cycles":2,
	   "beat_cycles":2,"max_ports":4,"on_chip":false,
	   "energy_per_byte_nj":0.4,"base_gates":2000,"gates_per_port":150,
	   "wire_gates_per_port":0}
	]`
	lib, err := ReadLibrary(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) != 2 || lib[0].Name != "narrowbus" || lib[1].Class != OffChip {
		t.Fatalf("parsed library wrong: %+v", lib)
	}
	if lib[0].TransferCycles(4) != 1+2 {
		t.Fatalf("parsed component timing wrong: %d", lib[0].TransferCycles(4))
	}
}
