package connect

import (
	"strings"
	"testing"

	"memorex/internal/mem"
	"memorex/internal/rtable"
)

func TestLibraryShape(t *testing.T) {
	lib := Library()
	if len(lib) < 6 {
		t.Fatalf("library too small: %d entries", len(lib))
	}
	names := map[string]bool{}
	for _, c := range lib {
		if names[c.Name] {
			t.Fatalf("duplicate component name %q", c.Name)
		}
		names[c.Name] = true
		if c.WidthBytes <= 0 || c.BeatCycles <= 0 || c.MaxPorts < 2 {
			t.Fatalf("%s: nonsensical parameters %+v", c.Name, c)
		}
		if c.EnergyPerByte <= 0 || c.BaseGates <= 0 {
			t.Fatalf("%s: missing cost/energy model", c.Name)
		}
	}
	for _, want := range []string{"ahb32", "asb32", "apb32", "mux32", "ded32", "off32"} {
		if !names[want] {
			t.Fatalf("library missing paper component %q", want)
		}
	}
	if len(OnChipComponents(lib))+len(OffChipComponents(lib)) != len(lib) {
		t.Fatal("on/off chip filters do not partition the library")
	}
}

func TestLibraryQualitativeOrdering(t *testing.T) {
	lib := Library()
	get := func(n string) Component {
		c, err := ByName(lib, n)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ded, mux, apb, asb, ahb := get("ded32"), get("mux32"), get("apb32"), get("asb32"), get("ahb32")
	off := get("off32")

	// Latency ordering for a word transfer: dedicated/mux fastest,
	// then AHB, then ASB, then APB (paper Section 4).
	if !(ded.TransferCycles(4) <= mux.TransferCycles(4) &&
		mux.TransferCycles(4) < ahb.TransferCycles(4) &&
		ahb.TransferCycles(4) < asb.TransferCycles(4) &&
		asb.TransferCycles(4) < apb.TransferCycles(4)) {
		t.Fatal("latency ordering dedicated<=mux<ahb<asb<apb violated")
	}
	// Controller cost ordering: APB < ASB < AHB (paper Section 4).
	if !(apb.BaseGates < asb.BaseGates && asb.BaseGates < ahb.BaseGates) {
		t.Fatal("controller cost ordering apb<asb<ahb violated")
	}
	// Point-to-point wiring is more expensive per port than shared busses.
	if ded.WireGatesPerPort <= ahb.WireGatesPerPort {
		t.Fatal("dedicated links must pay more wire area than shared busses")
	}
	// Off-chip energy dominates on-chip energy.
	if off.EnergyPerByte < 4*ahb.EnergyPerByte {
		t.Fatal("off-chip transfers must be much more expensive than on-chip")
	}
	// Only AHB supports split transactions in the default library.
	if !ahb.Split || asb.Split || apb.Split {
		t.Fatal("split-transaction flags wrong")
	}
}

func TestBeatsAndTransferCycles(t *testing.T) {
	c := Component{WidthBytes: 4, ArbCycles: 1, BeatCycles: 2}
	if c.Beats(0) != 0 || c.Beats(1) != 1 || c.Beats(4) != 1 || c.Beats(5) != 2 || c.Beats(32) != 8 {
		t.Fatal("Beats wrong")
	}
	if c.TransferCycles(8) != 1+2*2 {
		t.Fatalf("TransferCycles(8) = %d, want 5", c.TransferCycles(8))
	}
}

func TestComponentTablePipelining(t *testing.T) {
	lib := Library()
	ahb, _ := ByName(lib, "ahb32")
	asb, _ := ByName(lib, "asb32")

	// Pipelined AHB: initiating a second 4-byte transfer can overlap;
	// MII should be well below the full transfer latency.
	ahbT := ahb.Table(16)
	asbT := asb.Table(16)
	if ahbT.MinInitiationInterval() >= asbT.MinInitiationInterval() {
		t.Fatalf("AHB MII (%d) should beat ASB MII (%d) for burst transfers",
			ahbT.MinInitiationInterval(), asbT.MinInitiationInterval())
	}
	// Non-pipelined component blocks for its whole latency.
	if asbT.MinInitiationInterval() < asb.TransferCycles(16) {
		t.Fatalf("non-pipelined ASB MII %d < full latency %d",
			asbT.MinInitiationInterval(), asb.TransferCycles(16))
	}
}

func TestComponentTableClampsLongBursts(t *testing.T) {
	lib := Library()
	off, _ := ByName(lib, "off16")
	// A huge burst must still produce a legal (<=64 cycle) table.
	tab := off.Table(4096)
	if tab.Length() > 64 {
		t.Fatalf("table length %d exceeds window", tab.Length())
	}
}

func TestComponentSchedulingWithScheduler(t *testing.T) {
	lib := Library()
	ded, _ := ByName(lib, "ded32")
	s := rtable.NewScheduler(NumResources())
	g1 := s.EarliestIssue(0, ded.Stages(4))
	g2 := s.EarliestIssue(0, ded.Stages(4))
	if g1 != 0 {
		t.Fatalf("idle dedicated link should grant immediately, got %d", g1)
	}
	if g2 <= g1 {
		t.Fatalf("second transfer must serialize on the data path, got %d", g2)
	}
}

func TestGatesModel(t *testing.T) {
	lib := Library()
	ahb, _ := ByName(lib, "ahb32")
	if ahb.Gates(2) >= ahb.Gates(6) {
		t.Fatal("more ports must cost more gates")
	}
	if ahb.Gates(1) != ahb.Gates(2) {
		t.Fatal("port count below 2 should clamp to 2")
	}
}

func TestFits(t *testing.T) {
	lib := Library()
	ahb, _ := ByName(lib, "ahb32")
	off, _ := ByName(lib, "off32")
	if !ahb.Fits(3, false) || ahb.Fits(3, true) {
		t.Fatal("on-chip component placement rules wrong")
	}
	if !off.Fits(3, true) || off.Fits(3, false) {
		t.Fatal("off-chip component placement rules wrong")
	}
	if ahb.Fits(17, false) {
		t.Fatal("port limit not enforced")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName(Library(), "warp-bus"); err == nil {
		t.Fatal("ByName accepted unknown component")
	}
}

func memArch() *mem.Architecture {
	return &mem.Architecture{
		Name:    "m",
		Modules: []mem.Module{mem.MustCache(8192, 32, 2), mem.MustSRAM(4096)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
}

func testArch(t *testing.T) *Arch {
	t.Helper()
	m := memArch()
	chans := m.Channels() // cpu-cache, cpu-sram, cache-dram
	lib := Library()
	ahb, _ := ByName(lib, "ahb32")
	off, _ := ByName(lib, "off32")
	a := &Arch{
		Channels: chans,
		Clusters: [][]int{{0, 1}, {2}},
		Assign:   []Component{ahb, off},
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("valid connectivity architecture rejected: %v", err)
	}
	return a
}

func TestArchValidate(t *testing.T) {
	a := testArch(t)

	// Channel covered twice.
	bad := *a
	bad.Clusters = [][]int{{0, 1}, {2, 0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate channel accepted")
	}
	// Channel missing.
	bad.Clusters = [][]int{{0}, {2}}
	if err := bad.Validate(); err == nil {
		t.Fatal("uncovered channel accepted")
	}
	// Mixing on-chip and off-chip in one cluster.
	bad.Clusters = [][]int{{0, 1, 2}}
	bad.Assign = a.Assign[:1]
	if err := bad.Validate(); err == nil {
		t.Fatal("mixed cluster accepted")
	}
	// Off-chip channel on on-chip bus.
	lib := Library()
	ahb, _ := ByName(lib, "ahb32")
	bad = *a
	bad.Assign = []Component{ahb, ahb}
	if err := bad.Validate(); err == nil {
		t.Fatal("off-chip channel on AHB accepted")
	}
	// Port overflow on dedicated link.
	ded, _ := ByName(lib, "ded32")
	bad = *a
	bad.Assign = []Component{ded, bad.Assign[1]}
	if err := bad.Validate(); err == nil {
		t.Fatal("3 ports on a 2-port dedicated link accepted")
	}
	// Empty cluster.
	bad = *a
	bad.Clusters = [][]int{{0, 1}, {2}, {}}
	bad.Assign = append(append([]Component{}, a.Assign...), ahb)
	if err := bad.Validate(); err == nil {
		t.Fatal("empty cluster accepted")
	}
	// Out-of-range channel index.
	bad = *a
	bad.Clusters = [][]int{{0, 1}, {7}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range channel accepted")
	}
	// Cluster/assignment count mismatch.
	bad = *a
	bad.Assign = a.Assign[:1]
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched assignment count accepted")
	}
}

func TestArchGatesAndDescribe(t *testing.T) {
	a := testArch(t)
	if a.Gates() <= 0 {
		t.Fatal("connectivity gates should be positive")
	}
	m := memArch()
	d := a.Describe(m)
	if !strings.Contains(d, "ahb32[") || !strings.Contains(d, "off32[") {
		t.Fatalf("Describe output unexpected: %q", d)
	}
	if a.ComponentOf(2) != 1 || a.ComponentOf(0) != 0 {
		t.Fatal("ComponentOf wrong")
	}
	if a.ComponentOf(9) != -1 {
		t.Fatal("ComponentOf should return -1 for unknown channels")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		Dedicated: "dedicated", Mux: "mux", APB: "apb",
		ASB: "asb", AHB: "ahb", OffChip: "offchip",
	} {
		if c.String() != want {
			t.Fatalf("Class(%d) = %q, want %q", c, c, want)
		}
	}
	if !strings.Contains(Class(42).String(), "42") {
		t.Fatal("unknown class should embed its value")
	}
}
