package connect

import (
	"encoding/json"
	"fmt"
	"io"
)

// componentJSON is the serialized form of a Component. Class is encoded
// by name so library files stay readable and stable.
type componentJSON struct {
	Name             string  `json:"name"`
	Class            string  `json:"class"`
	WidthBytes       int     `json:"width_bytes"`
	ArbCycles        int     `json:"arb_cycles"`
	BeatCycles       int     `json:"beat_cycles"`
	Pipelined        bool    `json:"pipelined"`
	Split            bool    `json:"split"`
	MaxPorts         int     `json:"max_ports"`
	OnChip           bool    `json:"on_chip"`
	EnergyPerByte    float64 `json:"energy_per_byte_nj"`
	BaseGates        float64 `json:"base_gates"`
	GatesPerPort     float64 `json:"gates_per_port"`
	WireGatesPerPort float64 `json:"wire_gates_per_port"`
}

var classNames = map[string]Class{
	"dedicated": Dedicated,
	"mux":       Mux,
	"apb":       APB,
	"asb":       ASB,
	"ahb":       AHB,
	"offchip":   OffChip,
}

// className reverses classNames.
func className(cl Class) (string, bool) {
	for n, c := range classNames {
		if c == cl {
			return n, true
		}
	}
	return "", false
}

// MarshalJSON serializes a component in the library wire format (class
// encoded by name), so component lists embedded in other JSON bodies —
// exploration requests, saved libraries — share one stable encoding.
func (c Component) MarshalJSON() ([]byte, error) {
	name, ok := className(c.Class)
	if !ok {
		return nil, fmt.Errorf("connect: component %q has unknown class %d", c.Name, c.Class)
	}
	return json.Marshal(componentJSON{
		Name: c.Name, Class: name, WidthBytes: c.WidthBytes,
		ArbCycles: c.ArbCycles, BeatCycles: c.BeatCycles,
		Pipelined: c.Pipelined, Split: c.Split, MaxPorts: c.MaxPorts,
		OnChip: c.OnChip, EnergyPerByte: c.EnergyPerByte,
		BaseGates: c.BaseGates, GatesPerPort: c.GatesPerPort,
		WireGatesPerPort: c.WireGatesPerPort,
	})
}

// UnmarshalJSON parses the library wire format. It validates only the
// class name; structural validation is the caller's job (ValidateLibrary).
func (c *Component) UnmarshalJSON(data []byte) error {
	var in componentJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	class, ok := classNames[in.Class]
	if !ok {
		return fmt.Errorf("connect: component %q: unknown class %q", in.Name, in.Class)
	}
	*c = Component{
		Name: in.Name, Class: class, WidthBytes: in.WidthBytes,
		ArbCycles: in.ArbCycles, BeatCycles: in.BeatCycles,
		Pipelined: in.Pipelined, Split: in.Split, MaxPorts: in.MaxPorts,
		OnChip: in.OnChip, EnergyPerByte: in.EnergyPerByte,
		BaseGates: in.BaseGates, GatesPerPort: in.GatesPerPort,
		WireGatesPerPort: in.WireGatesPerPort,
	}
	return nil
}

// ValidateComponent checks that a library entry is physically plausible.
func ValidateComponent(c *Component) error {
	switch {
	case c.Name == "":
		return fmt.Errorf("connect: component with empty name")
	case c.WidthBytes <= 0:
		return fmt.Errorf("connect: %s: width must be positive", c.Name)
	case c.BeatCycles <= 0:
		return fmt.Errorf("connect: %s: beat cycles must be positive", c.Name)
	case c.ArbCycles < 0:
		return fmt.Errorf("connect: %s: negative arbitration latency", c.Name)
	case c.MaxPorts < 2:
		return fmt.Errorf("connect: %s: needs at least 2 ports", c.Name)
	case c.EnergyPerByte <= 0:
		return fmt.Errorf("connect: %s: energy per byte must be positive", c.Name)
	case c.BaseGates <= 0:
		return fmt.Errorf("connect: %s: base gates must be positive", c.Name)
	case c.GatesPerPort < 0 || c.WireGatesPerPort < 0:
		return fmt.Errorf("connect: %s: negative per-port gates", c.Name)
	case c.Split && !c.OnChip && c.Class != OffChip:
		return fmt.Errorf("connect: %s: inconsistent chip placement", c.Name)
	}
	return nil
}

// ValidateLibrary checks every entry and name uniqueness.
func ValidateLibrary(lib []Component) error {
	if len(lib) == 0 {
		return fmt.Errorf("connect: empty library")
	}
	seen := map[string]bool{}
	hasOn, hasOff := false, false
	for i := range lib {
		if err := ValidateComponent(&lib[i]); err != nil {
			return err
		}
		if seen[lib[i].Name] {
			return fmt.Errorf("connect: duplicate component name %q", lib[i].Name)
		}
		seen[lib[i].Name] = true
		if lib[i].OnChip {
			hasOn = true
		} else {
			hasOff = true
		}
	}
	if !hasOn || !hasOff {
		return fmt.Errorf("connect: library needs both on-chip and off-chip components")
	}
	return nil
}

// WriteLibrary serializes a connectivity library as indented JSON.
func WriteLibrary(w io.Writer, lib []Component) error {
	out := make([]componentJSON, len(lib))
	for i, c := range lib {
		name := ""
		for n, cl := range classNames {
			if cl == c.Class {
				name = n
			}
		}
		if name == "" {
			return fmt.Errorf("connect: component %q has unknown class %d", c.Name, c.Class)
		}
		out[i] = componentJSON{
			Name: c.Name, Class: name, WidthBytes: c.WidthBytes,
			ArbCycles: c.ArbCycles, BeatCycles: c.BeatCycles,
			Pipelined: c.Pipelined, Split: c.Split, MaxPorts: c.MaxPorts,
			OnChip: c.OnChip, EnergyPerByte: c.EnergyPerByte,
			BaseGates: c.BaseGates, GatesPerPort: c.GatesPerPort,
			WireGatesPerPort: c.WireGatesPerPort,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadLibrary parses and validates a JSON connectivity library, allowing
// users to explore with their own IP catalogs.
func ReadLibrary(r io.Reader) ([]Component, error) {
	var in []componentJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("connect: parsing library: %w", err)
	}
	lib := make([]Component, len(in))
	for i, c := range in {
		class, ok := classNames[c.Class]
		if !ok {
			return nil, fmt.Errorf("connect: component %q: unknown class %q", c.Name, c.Class)
		}
		lib[i] = Component{
			Name: c.Name, Class: class, WidthBytes: c.WidthBytes,
			ArbCycles: c.ArbCycles, BeatCycles: c.BeatCycles,
			Pipelined: c.Pipelined, Split: c.Split, MaxPorts: c.MaxPorts,
			OnChip: c.OnChip, EnergyPerByte: c.EnergyPerByte,
			BaseGates: c.BaseGates, GatesPerPort: c.GatesPerPort,
			WireGatesPerPort: c.WireGatesPerPort,
		}
	}
	if err := ValidateLibrary(lib); err != nil {
		return nil, err
	}
	return lib, nil
}
