package core

import (
	"context"
	"fmt"

	"memorex/internal/connect"
	"memorex/internal/engine"
	"memorex/internal/mem"
	"memorex/internal/pareto"
	"memorex/internal/sampling"
	"memorex/internal/sim"
	"memorex/internal/trace"
)

// DesignPoint is one evaluated memory+connectivity design.
type DesignPoint struct {
	MemArch *mem.Architecture
	Conn    *connect.Arch
	// Cost is the total on-chip area: memory modules + connectivity.
	Cost float64
	// Latency is the average memory latency in cycles per access.
	Latency float64
	// Energy is the average energy in nJ per access.
	Energy float64
	// Estimated is true for Phase I (time-sampled) figures and false
	// after Phase II full simulation.
	Estimated bool

	// label memoizes Label(). The identifying fields above are never
	// mutated after construction, so the memo is safe; being unexported
	// it is invisible to JSON encoding and lost on copy, which only
	// costs a re-format.
	label string
}

// Point converts the design to a pareto point carrying the design as
// metadata.
func (d *DesignPoint) Point() pareto.Point {
	return pareto.Point{
		Label:   d.Label(),
		Cost:    d.Cost,
		Latency: d.Latency,
		Energy:  d.Energy,
		Meta:    d,
	}
}

// Label returns a compact design identifier, memoized on first use —
// the pruning loops call it for every point on every front they build.
func (d *DesignPoint) Label() string {
	if d.label != "" {
		return d.label
	}
	if d.MemArch == nil || d.Conn == nil {
		return "(unbound design)"
	}
	d.label = fmt.Sprintf("%s | %s", d.MemArch.Name, d.Conn.Describe(d.MemArch))
	return d.label
}

// Config parameterizes the ConEx exploration.
type Config struct {
	// Library is the connectivity IP library.
	Library []connect.Component
	// Sampling configures the Phase I estimator.
	Sampling sampling.Config
	// MaxAssignPerLevel caps the assignments enumerated per clustering
	// level (bounded-enumeration heuristic).
	MaxAssignPerLevel int
	// KeepPerArch is how many locally promising designs each memory
	// architecture contributes to Phase II.
	KeepPerArch int
	// Workers bounds evaluation parallelism (0 = engine.DefaultWorkers).
	// Ignored when Engine is set: the engine's own bound wins.
	Workers int
	// Engine, when non-nil, is the shared evaluation engine. Sharing
	// one engine across explorations lets the memoization cache elide
	// repeated simulations of equivalent designs. When nil, each
	// Explore call builds a private engine from Workers.
	Engine *engine.Engine
	// Exact forces the one-phase simulator that re-runs the memory
	// modules for every connectivity candidate, instead of the default
	// two-phase capture-and-replay path. Replay is exact for full
	// simulations of non-prefetching architectures and within the
	// fidelity tolerance everywhere else; Exact exists as the reference
	// fallback.
	Exact bool
	// Search parameterizes the heuristic exploration drivers (the GA
	// and SA strategies of internal/explore); the enumeration-based
	// strategies ignore it. The zero value means the defaults.
	Search SearchConfig
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Library:           connect.Library(),
		Sampling:          sampling.DefaultConfig(),
		MaxAssignPerLevel: 192,
		KeepPerArch:       8,
	}
}

// IsZero reports whether the algorithmic fields are all zero. Workers,
// Engine and Exact are execution knobs, not part of the design-space
// description, so they do not affect zeroness.
func (c Config) IsZero() bool {
	return c.Library == nil && c.Sampling.IsZero() &&
		c.MaxAssignPerLevel == 0 && c.KeepPerArch == 0 && c.Search.IsZero()
}

// Normalize resolves the config the exploration runs with: when every
// algorithmic field is zero they are filled from DefaultConfig (the
// execution knobs Workers/Engine/Exact are preserved). In a partially
// set config the unset sub-pieces fall back individually — a nil
// Library means the built-in IP library, a zero Sampling means the
// paper's 1:9 plan, KeepPerArch 0 means the default 8 — while
// explicitly invalid values surface as errors instead of being
// silently replaced.
func (c Config) Normalize() (Config, error) {
	if c.IsZero() {
		def := DefaultConfig()
		def.Workers, def.Engine, def.Exact = c.Workers, c.Engine, c.Exact
		return def, nil
	}
	def := DefaultConfig()
	if c.Library == nil {
		c.Library = def.Library
	}
	var err error
	if c.Sampling, err = c.Sampling.Normalize(); err != nil {
		return Config{}, err
	}
	if c.KeepPerArch == 0 {
		c.KeepPerArch = def.KeepPerArch
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Library) == 0 {
		return fmt.Errorf("core: empty connectivity library")
	}
	if err := c.Sampling.Validate(); err != nil {
		return err
	}
	if c.KeepPerArch <= 0 {
		return fmt.Errorf("core: KeepPerArch must be positive")
	}
	if c.MaxAssignPerLevel < 0 {
		return fmt.Errorf("core: MaxAssignPerLevel must be non-negative")
	}
	// Search is resolved lazily by the heuristic drivers (zero fields
	// mean the defaults); explicitly out-of-range knobs fail here.
	if err := c.Search.Validate(); err != nil {
		return err
	}
	return nil
}

// EngineOrNew returns the configured shared engine, or a fresh one
// bounded by Workers.
func (c Config) EngineOrNew() *engine.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return engine.New(c.Workers)
}

// Result is the outcome of the full ConEx exploration.
type Result struct {
	// PerArch holds the Phase I estimated points per memory
	// architecture, in evaluation order.
	PerArch [][]DesignPoint
	// Combined is the Phase II fully simulated set.
	Combined []DesignPoint
	// CostPerfFront is the global cost/latency pareto front of
	// Combined, ordered by ascending cost.
	CostPerfFront []DesignPoint
	// EstimatedAccesses and SimulatedAccesses measure the exploration
	// work (Phase I sampled accesses and Phase II full-sim accesses)
	// actually performed — designs served from the engine's memo cache
	// contribute nothing.
	EstimatedAccesses int64
	SimulatedAccesses int64
	// CacheHits counts the evaluations served from the engine's memo
	// cache during this exploration.
	CacheHits int64
	// DroppedAssignments counts assignments skipped by the enumeration
	// cap (0 = the level cross products were explored exhaustively).
	DroppedAssignments int64
	// Stats is a snapshot of the evaluation engine counters taken when
	// the exploration finished (cumulative when the engine is shared).
	Stats engine.Stats

	// pts memoizes Points(); Combined is final once the Result is built.
	pts []pareto.Point
}

// Points returns the combined designs as pareto points. The slice is
// built once and shared by subsequent calls (front extraction, report
// writing and plotting all ask for it); callers must not mutate it.
func (r *Result) Points() []pareto.Point {
	if r.pts == nil && len(r.Combined) > 0 {
		r.pts = make([]pareto.Point, len(r.Combined))
		for i := range r.Combined {
			r.pts[i] = r.Combined[i].Point()
		}
	}
	return r.pts
}

// Engine phase labels used by the ConEx loops.
const (
	phaseEstimate = "conex/estimate"
	phaseFullSim  = "conex/full-sim"
)

// ConnectivityExploration is the per-memory-architecture procedure of
// Figure 5: build the BRG, walk the clustering hierarchy, enumerate
// feasible assignments at each level, and estimate every candidate with
// time-sampled simulation. It returns all estimated design points plus
// the sampled-access work count and the number of assignments dropped
// by the enumeration cap.
func ConnectivityExploration(ctx context.Context, t *trace.Trace, arch *mem.Architecture, cfg Config) ([]DesignPoint, int64, int64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, 0, err
	}
	return connectivityExploration(ctx, cfg.EngineOrNew(), t, arch, cfg)
}

// connectivityExploration is ConnectivityExploration on an explicit
// engine, so Explore shares one engine across phases and architectures.
func connectivityExploration(ctx context.Context, eng *engine.Engine, t *trace.Trace, arch *mem.Architecture, cfg Config) ([]DesignPoint, int64, int64, error) {
	brg, err := BuildBRG(t, arch)
	if err != nil {
		return nil, 0, 0, err
	}
	var candidates []*connect.Arch
	var dropped int64
	for _, level := range Levels(brg) {
		archs, d := EnumerateAssignments(brg, level, cfg.Library, cfg.MaxAssignPerLevel)
		candidates = append(candidates, archs...)
		dropped += d
	}
	stop := eng.StartPhase(phaseEstimate)
	defer stop()
	// One homogeneous slice per memory architecture: every request below
	// shares the behavior-trace fingerprint, so the engine dispatches
	// the whole candidate set as batched replays of one captured trace.
	reqs := make([]engine.Request, len(candidates))
	for i, conn := range candidates {
		reqs[i] = engine.Request{
			Trace:    t,
			Mem:      arch,
			Conn:     conn,
			Mode:     engine.Sampled,
			Sampling: cfg.Sampling,
			Exact:    cfg.Exact,
			Phase:    phaseEstimate,
		}
	}
	vals, err := eng.Evaluate(ctx, reqs)
	if err != nil {
		return nil, 0, 0, err
	}
	points := make([]DesignPoint, len(candidates))
	var work int64
	for i, v := range vals {
		points[i] = DesignPoint{
			MemArch:   arch,
			Conn:      candidates[i],
			Cost:      v.Cost,
			Latency:   v.Latency,
			Energy:    v.Energy,
			Estimated: true,
		}
		work += v.Work
	}
	return points, work, dropped, nil
}

// SelectLocal picks the locally most promising designs of one memory
// architecture: the union of the pareto fronts in the three metric
// projections, thinned to keep points.
func SelectLocal(points []DesignPoint, keep int) []DesignPoint {
	if len(points) == 0 {
		return nil
	}
	pts := make([]pareto.Point, len(points))
	for i := range points {
		pts[i] = points[i].Point()
		pts[i].Meta = i
	}
	seen := map[int]bool{}
	var picked []DesignPoint
	addFront := func(x, y pareto.Dim) {
		for _, p := range pareto.Front(pts, x, y) {
			i := p.Meta.(int)
			if !seen[i] {
				seen[i] = true
				picked = append(picked, points[i])
			}
		}
	}
	addFront(pareto.Cost, pareto.Latency)
	addFront(pareto.Latency, pareto.Energy)
	addFront(pareto.Cost, pareto.Energy)
	if len(picked) <= keep {
		return picked
	}
	if keep == 1 {
		return picked[:1]
	}
	// Thin deterministically, preferring the cost/latency front order.
	out := make([]DesignPoint, 0, keep)
	for i := 0; i < keep; i++ {
		out = append(out, picked[i*(len(picked)-1)/(keep-1)])
	}
	return out
}

// Explore runs the full two-phase ConEx algorithm over the memory
// architectures selected by APEX. All design-point evaluations go
// through the configured engine (cfg.Engine, or a private one), which
// bounds parallelism, memoizes equivalent designs and honours ctx
// cancellation.
func Explore(ctx context.Context, t *trace.Trace, memArchs []*mem.Architecture, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(memArchs) == 0 {
		return nil, fmt.Errorf("core: no memory architectures to explore")
	}
	eng := cfg.EngineOrNew()
	o := eng.Observer()
	before := eng.Stats()
	res := &Result{}

	// Phase I: per-architecture estimation and local selection.
	var phase2 []DesignPoint
	for _, arch := range memArchs {
		points, work, dropped, err := connectivityExploration(ctx, eng, t, arch, cfg)
		if err != nil {
			return nil, err
		}
		res.EstimatedAccesses += work
		res.DroppedAssignments += dropped
		res.PerArch = append(res.PerArch, points)
		kept := SelectLocal(points, cfg.KeepPerArch)
		o.Prune("select-local", arch.Name, len(points), len(kept), dropped)
		phase2 = append(phase2, kept...)
	}

	// Phase II: full simulation of the combined promising set, submitted
	// as one slice so survivors of the same memory architecture batch
	// into shared full-trace replays.
	stop := eng.StartPhase(phaseFullSim)
	reqs := make([]engine.Request, len(phase2))
	for i := range phase2 {
		reqs[i] = engine.Request{
			Trace: t,
			Mem:   phase2[i].MemArch,
			Conn:  phase2[i].Conn,
			Mode:  engine.Full,
			Exact: cfg.Exact,
			Phase: phaseFullSim,
		}
	}
	vals, err := eng.Evaluate(ctx, reqs)
	stop()
	if err != nil {
		return nil, err
	}
	estErr := eng.Metrics().Histogram("sampling/est_err_pct")
	combined := make([]DesignPoint, len(phase2))
	for i, v := range vals {
		combined[i] = DesignPoint{
			MemArch: phase2[i].MemArch,
			Conn:    phase2[i].Conn,
			Cost:    v.Cost,
			Latency: v.Latency,
			Energy:  v.Energy,
		}
		res.SimulatedAccesses += v.Work
		// Phase II revisits every Phase I survivor, which is exactly the
		// fidelity experiment of the paper: compare the time-sampled
		// latency estimate against the full-simulation ground truth.
		if v.Latency > 0 {
			rel := 100 * (phase2[i].Latency - v.Latency) / v.Latency
			if rel < 0 {
				rel = -rel
			}
			estErr.Observe(rel)
			if o.Enabled() {
				o.EstimatorError(phase2[i].MemArch.Name, phase2[i].Conn.Describe(phase2[i].MemArch),
					phase2[i].Latency, v.Latency, rel)
			}
		}
	}
	res.Combined = combined

	for _, p := range pareto.Front(res.Points(), pareto.Cost, pareto.Latency) {
		res.CostPerfFront = append(res.CostPerfFront, *p.Meta.(*DesignPoint))
	}
	o.Prune("cost-perf-front", "", len(res.Combined), len(res.CostPerfFront), 0)
	res.Stats = eng.Stats()
	res.CacheHits = res.Stats.CacheHits - before.CacheHits
	return res, nil
}

// FullSimulate runs the full (non-sampled) simulation of one design and
// returns its exact design point plus the simulated access count. It is
// a convenience for one-off evaluations; batch callers should go
// through an engine.
func FullSimulate(t *trace.Trace, arch *mem.Architecture, conn *connect.Arch) (*DesignPoint, int64, error) {
	s, err := sim.New(arch, conn)
	if err != nil {
		return nil, 0, err
	}
	r, err := s.Run(t)
	if err != nil {
		return nil, 0, err
	}
	return &DesignPoint{
		MemArch: arch,
		Conn:    conn,
		Cost:    arch.Gates() + conn.Gates(),
		Latency: r.AvgLatency(),
		Energy:  r.AvgEnergy(),
	}, r.Accesses, nil
}
