package core

import (
	"fmt"
	"runtime"
	"sync"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/pareto"
	"memorex/internal/sampling"
	"memorex/internal/sim"
	"memorex/internal/trace"
)

// DesignPoint is one evaluated memory+connectivity design.
type DesignPoint struct {
	MemArch *mem.Architecture
	Conn    *connect.Arch
	// Cost is the total on-chip area: memory modules + connectivity.
	Cost float64
	// Latency is the average memory latency in cycles per access.
	Latency float64
	// Energy is the average energy in nJ per access.
	Energy float64
	// Estimated is true for Phase I (time-sampled) figures and false
	// after Phase II full simulation.
	Estimated bool
}

// Point converts the design to a pareto point carrying the design as
// metadata.
func (d *DesignPoint) Point() pareto.Point {
	return pareto.Point{
		Label:   d.Label(),
		Cost:    d.Cost,
		Latency: d.Latency,
		Energy:  d.Energy,
		Meta:    d,
	}
}

// Label returns a compact design identifier.
func (d *DesignPoint) Label() string {
	if d.MemArch == nil || d.Conn == nil {
		return "(unbound design)"
	}
	return fmt.Sprintf("%s | %s", d.MemArch.Name, d.Conn.Describe(d.MemArch))
}

// Config parameterizes the ConEx exploration.
type Config struct {
	// Library is the connectivity IP library.
	Library []connect.Component
	// Sampling configures the Phase I estimator.
	Sampling sampling.Config
	// MaxAssignPerLevel caps the assignments enumerated per clustering
	// level (bounded-enumeration heuristic).
	MaxAssignPerLevel int
	// KeepPerArch is how many locally promising designs each memory
	// architecture contributes to Phase II.
	KeepPerArch int
	// Workers bounds evaluation parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Library:           connect.Library(),
		Sampling:          sampling.DefaultConfig(),
		MaxAssignPerLevel: 192,
		KeepPerArch:       8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Library) == 0 {
		return fmt.Errorf("core: empty connectivity library")
	}
	if err := c.Sampling.Validate(); err != nil {
		return err
	}
	if c.KeepPerArch <= 0 {
		return fmt.Errorf("core: KeepPerArch must be positive")
	}
	if c.MaxAssignPerLevel < 0 {
		return fmt.Errorf("core: MaxAssignPerLevel must be non-negative")
	}
	return nil
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Result is the outcome of the full ConEx exploration.
type Result struct {
	// PerArch holds the Phase I estimated points per memory
	// architecture, in evaluation order.
	PerArch [][]DesignPoint
	// Combined is the Phase II fully simulated set.
	Combined []DesignPoint
	// CostPerfFront is the global cost/latency pareto front of
	// Combined, ordered by ascending cost.
	CostPerfFront []DesignPoint
	// EstimatedAccesses and SimulatedAccesses measure the exploration
	// work (Phase I sampled accesses and Phase II full-sim accesses).
	EstimatedAccesses int64
	SimulatedAccesses int64
	// DroppedAssignments counts assignments skipped by the enumeration
	// cap (0 = the level cross products were explored exhaustively).
	DroppedAssignments int64
}

// Points returns the combined designs as pareto points.
func (r *Result) Points() []pareto.Point {
	out := make([]pareto.Point, len(r.Combined))
	for i := range r.Combined {
		out[i] = r.Combined[i].Point()
	}
	return out
}

// ConnectivityExploration is the per-memory-architecture procedure of
// Figure 5: build the BRG, walk the clustering hierarchy, enumerate
// feasible assignments at each level, and estimate every candidate with
// time-sampled simulation. It returns all estimated design points plus
// the sampled-access work count and the number of assignments dropped
// by the enumeration cap.
func ConnectivityExploration(t *trace.Trace, arch *mem.Architecture, cfg Config) ([]DesignPoint, int64, int64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, 0, err
	}
	brg, err := BuildBRG(t, arch)
	if err != nil {
		return nil, 0, 0, err
	}
	var candidates []*connect.Arch
	var dropped int64
	for _, level := range Levels(brg) {
		archs, d := EnumerateAssignments(brg, level, cfg.Library, cfg.MaxAssignPerLevel)
		candidates = append(candidates, archs...)
		dropped += d
	}
	points := make([]DesignPoint, len(candidates))
	errs := make([]error, len(candidates))
	var work int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.workers())
	for i, conn := range candidates {
		wg.Add(1)
		go func(i int, conn *connect.Arch) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, simulated, err := sampling.Estimate(t, arch, conn, cfg.Sampling)
			if err != nil {
				errs[i] = err
				return
			}
			points[i] = DesignPoint{
				MemArch:   arch,
				Conn:      conn,
				Cost:      arch.Gates() + conn.Gates(),
				Latency:   r.AvgLatency(),
				Energy:    r.AvgEnergy(),
				Estimated: true,
			}
			mu.Lock()
			work += simulated
			mu.Unlock()
		}(i, conn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, 0, err
		}
	}
	return points, work, dropped, nil
}

// SelectLocal picks the locally most promising designs of one memory
// architecture: the union of the pareto fronts in the three metric
// projections, thinned to keep points.
func SelectLocal(points []DesignPoint, keep int) []DesignPoint {
	if len(points) == 0 {
		return nil
	}
	pts := make([]pareto.Point, len(points))
	for i := range points {
		pts[i] = points[i].Point()
		pts[i].Meta = i
	}
	seen := map[int]bool{}
	var picked []DesignPoint
	addFront := func(x, y pareto.Dim) {
		for _, p := range pareto.Front(pts, x, y) {
			i := p.Meta.(int)
			if !seen[i] {
				seen[i] = true
				picked = append(picked, points[i])
			}
		}
	}
	addFront(pareto.Cost, pareto.Latency)
	addFront(pareto.Latency, pareto.Energy)
	addFront(pareto.Cost, pareto.Energy)
	if len(picked) <= keep {
		return picked
	}
	if keep == 1 {
		return picked[:1]
	}
	// Thin deterministically, preferring the cost/latency front order.
	out := make([]DesignPoint, 0, keep)
	for i := 0; i < keep; i++ {
		out = append(out, picked[i*(len(picked)-1)/(keep-1)])
	}
	return out
}

// Explore runs the full two-phase ConEx algorithm over the memory
// architectures selected by APEX.
func Explore(t *trace.Trace, memArchs []*mem.Architecture, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(memArchs) == 0 {
		return nil, fmt.Errorf("core: no memory architectures to explore")
	}
	res := &Result{}

	// Phase I: per-architecture estimation and local selection.
	var phase2 []DesignPoint
	for _, arch := range memArchs {
		points, work, dropped, err := ConnectivityExploration(t, arch, cfg)
		if err != nil {
			return nil, err
		}
		res.EstimatedAccesses += work
		res.DroppedAssignments += dropped
		res.PerArch = append(res.PerArch, points)
		phase2 = append(phase2, SelectLocal(points, cfg.KeepPerArch)...)
	}

	// Phase II: full simulation of the combined promising set.
	combined := make([]DesignPoint, len(phase2))
	errs := make([]error, len(phase2))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.workers())
	for i := range phase2 {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dp, work, err := FullSimulate(t, phase2[i].MemArch, phase2[i].Conn)
			if err != nil {
				errs[i] = err
				return
			}
			combined[i] = *dp
			mu.Lock()
			res.SimulatedAccesses += work
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Combined = combined

	for _, p := range pareto.Front(res.Points(), pareto.Cost, pareto.Latency) {
		res.CostPerfFront = append(res.CostPerfFront, *p.Meta.(*DesignPoint))
	}
	return res, nil
}

// FullSimulate runs the full (non-sampled) simulation of one design and
// returns its exact design point plus the simulated access count.
func FullSimulate(t *trace.Trace, arch *mem.Architecture, conn *connect.Arch) (*DesignPoint, int64, error) {
	s, err := sim.New(arch, conn)
	if err != nil {
		return nil, 0, err
	}
	r, err := s.Run(t)
	if err != nil {
		return nil, 0, err
	}
	return &DesignPoint{
		MemArch: arch,
		Conn:    conn,
		Cost:    arch.Gates() + conn.Gates(),
		Latency: r.AvgLatency(),
		Energy:  r.AvgEnergy(),
	}, r.Accesses, nil
}
