package core

import "fmt"

// SearchConfig parameterizes the heuristic exploration drivers (the GA
// and simulated-annealing strategies of internal/explore). The zero
// config means "use the defaults" everywhere it is accepted; its JSON
// encoding is the "search" block of a memorex.ExploreRequest, so a
// daemon job and an in-process run spell the knobs identically.
type SearchConfig struct {
	// Seed is the root of every PRNG the driver uses. All randomness is
	// split deterministically from it (per generation, per individual /
	// per chain), so the same seed yields byte-identical fronts at any
	// engine worker count. 0 means the default seed.
	Seed int64 `json:"seed,omitempty"`
	// Budget caps the evaluation requests (sampled estimates plus full
	// promotions) the driver may submit to the engine. Locally
	// deduplicated revisits are free; the driver stops as soon as the
	// budget is exhausted. 0 means the default.
	Budget int `json:"budget,omitempty"`
	// Population is the GA population size, or the number of parallel
	// annealing chains for SA. 0 means the default.
	Population int `json:"population,omitempty"`
	// MutationRate is the per-cluster probability of mutating a
	// component gene when an offspring/move is produced. 0 means the
	// default; the valid range is (0, 1].
	MutationRate float64 `json:"mutation_rate,omitempty"`
	// CrossoverRate is the GA probability of recombining two parents
	// instead of cloning the tournament winner. 0 means the default;
	// the valid range is (0, 1].
	CrossoverRate float64 `json:"crossover_rate,omitempty"`
	// InitTemp is the SA starting temperature on the scalarized
	// relative-worsening scale (0.2 accepts a 20% combined worsening
	// with probability 1/e at step 0). 0 means the default.
	InitTemp float64 `json:"init_temp,omitempty"`
	// Cooling is the per-step geometric cooling factor of the SA
	// schedule, in (0, 1]. 0 means the default.
	Cooling float64 `json:"cooling,omitempty"`
}

// DefaultSearchConfig returns the heuristic-search defaults.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{
		Seed:          1,
		Budget:        4096,
		Population:    32,
		MutationRate:  0.25,
		CrossoverRate: 0.7,
		InitTemp:      0.2,
		Cooling:       0.95,
	}
}

// IsZero reports whether every field is unset.
func (c SearchConfig) IsZero() bool { return c == SearchConfig{} }

// Normalize fills unset fields from DefaultSearchConfig and validates
// the result; explicitly invalid values surface as errors instead of
// being silently replaced.
func (c SearchConfig) Normalize() (SearchConfig, error) {
	def := DefaultSearchConfig()
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
	if c.Budget == 0 {
		c.Budget = def.Budget
	}
	if c.Population == 0 {
		c.Population = def.Population
	}
	if c.MutationRate == 0 {
		c.MutationRate = def.MutationRate
	}
	if c.CrossoverRate == 0 {
		c.CrossoverRate = def.CrossoverRate
	}
	if c.InitTemp == 0 {
		c.InitTemp = def.InitTemp
	}
	if c.Cooling == 0 {
		c.Cooling = def.Cooling
	}
	if err := c.Validate(); err != nil {
		return SearchConfig{}, err
	}
	return c, nil
}

// Validate checks a fully resolved configuration (every field set).
func (c SearchConfig) Validate() error {
	if c.Budget < 0 {
		return fmt.Errorf("core: search Budget must be non-negative")
	}
	if c.Population < 0 {
		return fmt.Errorf("core: search Population must be non-negative")
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("core: search MutationRate must be in [0, 1], got %g", c.MutationRate)
	}
	if c.CrossoverRate < 0 || c.CrossoverRate > 1 {
		return fmt.Errorf("core: search CrossoverRate must be in [0, 1], got %g", c.CrossoverRate)
	}
	if c.InitTemp < 0 {
		return fmt.Errorf("core: search InitTemp must be non-negative, got %g", c.InitTemp)
	}
	if c.Cooling < 0 || c.Cooling > 1 {
		return fmt.Errorf("core: search Cooling must be in (0, 1], got %g", c.Cooling)
	}
	return nil
}
