package core

import (
	"sort"

	"memorex/internal/connect"
)

// Clustering partitions the channel indices of a BRG into logical
// connections. Channels crossing the chip boundary never share a cluster
// with on-chip channels (they are physically different wires).
type Clustering [][]int

// clone deep-copies the clustering.
func (c Clustering) clone() Clustering {
	out := make(Clustering, len(c))
	for i, cl := range c {
		out[i] = append([]int(nil), cl...)
	}
	return out
}

// InitialClustering returns the finest clustering: one logical connection
// per channel (the paper's starting point, equivalent to the naive
// one-component-per-channel architecture before sharing).
func InitialClustering(b *BRG) Clustering {
	out := make(Clustering, len(b.Channels))
	for i := range b.Channels {
		out[i] = []int{i}
	}
	return out
}

// MergeLowest implements the paper's inner-loop step: merge the two
// logical connections with the lowest bandwidth requirement into a
// larger cluster, respecting the chip boundary. It returns the new
// clustering and true, or the input and false when no merge is possible.
func MergeLowest(b *BRG, c Clustering) (Clustering, bool) {
	type entry struct {
		idx int
		bw  float64
		off bool
	}
	var entries []entry
	for i, cl := range c {
		entries = append(entries, entry{
			idx: i,
			bw:  b.ClusterBandwidth(cl),
			off: b.Channels[cl[0]].OffChip,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].bw != entries[j].bw {
			return entries[i].bw < entries[j].bw
		}
		return entries[i].idx < entries[j].idx
	})
	// Find the lowest-bandwidth same-side pair: scan entries in
	// bandwidth order and merge the first two that share a side.
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			if entries[i].off != entries[j].off {
				continue
			}
			a, bIdx := entries[i].idx, entries[j].idx
			merged := append(append([]int(nil), c[a]...), c[bIdx]...)
			sort.Ints(merged)
			var out Clustering
			for k, cl := range c {
				if k == a || k == bIdx {
					continue
				}
				out = append(out, append([]int(nil), cl...))
			}
			out = append(out, merged)
			return out, true
		}
	}
	return c, false
}

// Levels returns every clustering level of the hierarchical merge, from
// the finest (one channel per logical connection) down to the coarsest
// (one cluster per chip side).
func Levels(b *BRG) []Clustering {
	var levels []Clustering
	cur := InitialClustering(b)
	levels = append(levels, cur.clone())
	for {
		next, ok := MergeLowest(b, cur)
		if !ok {
			break
		}
		cur = next
		levels = append(levels, cur.clone())
	}
	return levels
}

// FeasibleComponents returns the library components that can implement a
// cluster with the given port count on the given chip side.
func FeasibleComponents(lib []connect.Component, ports int, offChip bool) []connect.Component {
	var out []connect.Component
	for _, c := range lib {
		if c.Fits(ports, offChip) {
			out = append(out, c)
		}
	}
	return out
}

// EnumerateAssignments builds the connectivity architectures of one
// clustering level: the cross product of each cluster's feasible
// components. If the product exceeds limit, the index space is sampled
// at a uniform stride so that diverse assignments are still covered
// (a bounded-enumeration heuristic; the dropped count is returned).
//
// Indices are decoded through a reflected mixed-radix Gray code, so
// consecutive architectures differ in exactly one cluster's component.
// The decoded set is identical to the plain cross product (the Gray map
// is a bijection on the index space); only the order changes. That
// ordering is what gives the engine's delta-replay planner its
// locality: adjacent candidates in an enumeration batch are at timing
// distance one cluster, so almost every non-leader evaluation can
// splice the unchanged channels from a near neighbor.
func EnumerateAssignments(b *BRG, c Clustering, lib []connect.Component, limit int) (archs []*connect.Arch, dropped int64) {
	cands := make([][]connect.Component, len(c))
	total := int64(1)
	for i, cl := range c {
		ports := len(cl) + 1
		off := b.Channels[cl[0]].OffChip
		cands[i] = FeasibleComponents(lib, ports, off)
		if len(cands[i]) == 0 {
			return nil, 0 // this level has an unimplementable cluster
		}
		total *= int64(len(cands[i]))
	}
	take := total
	stride := int64(1)
	if limit > 0 && total > int64(limit) {
		take = int64(limit)
		stride = total / take
		dropped = total - take
	}
	digits := make([]int64, len(cands))
	for k := int64(0); k < take; k++ {
		idx := k * stride
		arch := &connect.Arch{
			Channels: b.Channels,
			Clusters: c.clone(),
			Assign:   make([]connect.Component, len(c)),
		}
		// Reflected mixed-radix Gray decode: extract the plain digits
		// LSB-first, then walk MSB-down reflecting each digit when the
		// sum of the original more-significant digits is odd. Adjacent
		// indices then differ in exactly one digit by one step.
		rem := idx
		for i := range cands {
			digits[i] = rem % int64(len(cands[i]))
			rem /= int64(len(cands[i]))
		}
		parity := int64(0)
		for i := len(cands) - 1; i >= 0; i-- {
			d := digits[i]
			if parity%2 == 1 {
				d = int64(len(cands[i])) - 1 - d
			}
			parity += digits[i]
			arch.Assign[i] = cands[i][d]
		}
		archs = append(archs, arch)
	}
	return archs, dropped
}
