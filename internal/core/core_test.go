package core

import (
	"context"
	"strings"
	"testing"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/sampling"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

func testArch() *mem.Architecture {
	return &mem.Architecture{
		Name: "cache+stream",
		Modules: []mem.Module{
			mem.MustCache(4096, 32, 2),
			mem.MustStreamBuffer(32, 4),
		},
		DRAM:    mem.DefaultDRAM(),
		Route:   map[trace.DSID]int{1: 1},
		Default: 0,
	}
}

func smallTrace() *trace.Trace {
	return workload.Synthetic(workload.SynStream, 30_000, 1<<18, 7)
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Sampling = sampling.Config{OnWindow: 500, OffRatio: 9}
	cfg.MaxAssignPerLevel = 24
	cfg.KeepPerArch = 4
	return cfg
}

func TestBuildBRG(t *testing.T) {
	tr := smallTrace()
	arch := testArch()
	brg, err := BuildBRG(tr, arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(brg.Channels) != len(arch.Channels()) {
		t.Fatal("BRG channel count mismatch")
	}
	// The stream structure is routed to the stream buffer, so the
	// CPU<->stream channel must carry all the demand traffic.
	var cpuStream, cpuCache float64
	for i, ch := range brg.Channels {
		if ch.Kind == mem.ChanCPUModule {
			if arch.Modules[ch.Module].Kind() == mem.KindStream {
				cpuStream = brg.Bandwidth(i)
			} else {
				cpuCache = brg.Bandwidth(i)
			}
		}
	}
	if cpuStream <= cpuCache {
		t.Fatalf("stream channel bandwidth %.3f should dominate cache channel %.3f", cpuStream, cpuCache)
	}
	if !strings.Contains(brg.String(), "B/acc") {
		t.Fatal("BRG String missing bandwidth labels")
	}
}

func TestBRGZeroAccesses(t *testing.T) {
	b := &BRG{Accesses: 0, Bytes: []int64{10}}
	if b.Bandwidth(0) != 0 {
		t.Fatal("bandwidth of empty trace should be 0")
	}
}

func TestClusteringLevels(t *testing.T) {
	tr := smallTrace()
	brg, err := BuildBRG(tr, testArch())
	if err != nil {
		t.Fatal(err)
	}
	levels := Levels(brg)
	if len(levels) < 2 {
		t.Fatalf("expected multiple clustering levels, got %d", len(levels))
	}
	// First level: one cluster per channel.
	if len(levels[0]) != len(brg.Channels) {
		t.Fatal("initial clustering is not one-per-channel")
	}
	// Each level merges exactly one pair: cluster count decreases by 1.
	for i := 1; i < len(levels); i++ {
		if len(levels[i]) != len(levels[i-1])-1 {
			t.Fatalf("level %d has %d clusters, want %d", i, len(levels[i]), len(levels[i-1])-1)
		}
	}
	// Bandwidth is conserved across levels, every channel stays covered,
	// and clusters never mix chip sides.
	total := 0.0
	for i := range brg.Channels {
		total += brg.Bandwidth(i)
	}
	for li, level := range levels {
		var sum float64
		seen := map[int]bool{}
		for _, cl := range level {
			sum += brg.ClusterBandwidth(cl)
			off := brg.Channels[cl[0]].OffChip
			for _, ch := range cl {
				if seen[ch] {
					t.Fatalf("level %d: channel %d in two clusters", li, ch)
				}
				seen[ch] = true
				if brg.Channels[ch].OffChip != off {
					t.Fatalf("level %d: cluster mixes chip sides", li)
				}
			}
		}
		if len(seen) != len(brg.Channels) {
			t.Fatalf("level %d: only %d channels covered", li, len(seen))
		}
		if diff := sum - total; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("level %d: bandwidth not conserved (%.6f vs %.6f)", li, sum, total)
		}
	}
	// Final level: one on-chip and one off-chip cluster.
	last := levels[len(levels)-1]
	if len(last) != 2 {
		t.Fatalf("final level has %d clusters, want 2", len(last))
	}
}

func TestMergeLowestPicksSmallest(t *testing.T) {
	// Synthetic BRG: three on-chip channels with bandwidths 1, 5, 10.
	b := &BRG{
		Arch:     &mem.Architecture{},
		Channels: []mem.Channel{{Kind: mem.ChanCPUModule}, {Kind: mem.ChanCPUModule}, {Kind: mem.ChanCPUModule}},
		Bytes:    []int64{10, 1, 5},
		Accesses: 1,
	}
	c, ok := MergeLowest(b, InitialClustering(b))
	if !ok {
		t.Fatal("merge should succeed")
	}
	// The merged cluster must contain channels 1 and 2 (bw 1 and 5).
	var merged []int
	for _, cl := range c {
		if len(cl) == 2 {
			merged = cl
		}
	}
	if len(merged) != 2 || merged[0] != 1 || merged[1] != 2 {
		t.Fatalf("merged wrong pair: %v", c)
	}
}

func TestMergeLowestStopsAtSingletons(t *testing.T) {
	b := &BRG{
		Arch:     &mem.Architecture{},
		Channels: []mem.Channel{{Kind: mem.ChanCPUModule}, {Kind: mem.ChanCPUDRAM, OffChip: true}},
		Bytes:    []int64{4, 4},
		Accesses: 1,
	}
	_, ok := MergeLowest(b, InitialClustering(b))
	if ok {
		t.Fatal("cannot merge across the chip boundary")
	}
}

func TestEnumerateAssignmentsFeasibility(t *testing.T) {
	tr := smallTrace()
	brg, err := BuildBRG(tr, testArch())
	if err != nil {
		t.Fatal(err)
	}
	lib := connect.Library()
	archs, dropped := EnumerateAssignments(brg, InitialClustering(brg), lib, 0)
	if len(archs) == 0 {
		t.Fatal("no assignments enumerated")
	}
	if dropped != 0 {
		t.Fatalf("uncapped enumeration dropped %d", dropped)
	}
	for _, a := range archs {
		if err := a.Validate(); err != nil {
			t.Fatalf("enumerated invalid architecture: %v", err)
		}
	}
	// Capping keeps the count bounded and still valid.
	capped, droppedCapped := EnumerateAssignments(brg, InitialClustering(brg), lib, 10)
	if len(capped) > 10 {
		t.Fatalf("cap not respected: %d", len(capped))
	}
	if droppedCapped != int64(len(archs)-len(capped)) {
		t.Fatalf("dropped count wrong: %d", droppedCapped)
	}
}

func TestEnumerateAssignmentsInfeasibleCluster(t *testing.T) {
	// A cluster needing more ports than any component offers.
	b := &BRG{
		Arch:     &mem.Architecture{},
		Channels: make([]mem.Channel, 20),
		Bytes:    make([]int64, 20),
		Accesses: 1,
	}
	cl := make([]int, 20)
	for i := range cl {
		cl[i] = i
	}
	archs, _ := EnumerateAssignments(b, Clustering{cl}, connect.Library(), 0)
	if archs != nil {
		t.Fatal("infeasible cluster should produce no assignments")
	}
}

func TestConnectivityExploration(t *testing.T) {
	tr := smallTrace()
	points, work, _, err := ConnectivityExploration(context.Background(), tr, testArch(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("too few design points: %d", len(points))
	}
	if work == 0 {
		t.Fatal("no estimation work recorded")
	}
	for _, p := range points {
		if !p.Estimated {
			t.Fatal("phase I points must be marked estimated")
		}
		if p.Cost <= 0 || p.Latency <= 0 || p.Energy <= 0 {
			t.Fatalf("degenerate metrics: %+v", p)
		}
		if p.Cost <= p.MemArch.Gates() {
			t.Fatal("cost must include connectivity gates")
		}
	}
	// Different connectivity choices must actually spread the metrics.
	minLat, maxLat := points[0].Latency, points[0].Latency
	for _, p := range points {
		if p.Latency < minLat {
			minLat = p.Latency
		}
		if p.Latency > maxLat {
			maxLat = p.Latency
		}
	}
	if maxLat < minLat*1.2 {
		t.Fatalf("connectivity choice barely matters: %.3f..%.3f", minLat, maxLat)
	}
}

func TestSelectLocal(t *testing.T) {
	points := []DesignPoint{
		{Cost: 100, Latency: 10, Energy: 5},
		{Cost: 200, Latency: 5, Energy: 6},
		{Cost: 300, Latency: 4.9, Energy: 20},
		{Cost: 150, Latency: 20, Energy: 1},
		{Cost: 500, Latency: 30, Energy: 30}, // dominated everywhere
	}
	sel := SelectLocal(points, 10)
	for _, p := range sel {
		if p.Cost == 500 {
			t.Fatal("dominated point selected")
		}
	}
	if len(sel) < 3 {
		t.Fatalf("selection too aggressive: %d", len(sel))
	}
	// Thinning respects the cap.
	if got := SelectLocal(points, 2); len(got) > 2 {
		t.Fatalf("cap not respected: %d", len(got))
	}
	if SelectLocal(nil, 3) != nil {
		t.Fatal("empty selection should be nil")
	}
}

func TestExploreEndToEnd(t *testing.T) {
	tr := smallTrace()
	archs := []*mem.Architecture{
		testArch(),
		{
			Name:    "cache-only",
			Modules: []mem.Module{mem.MustCache(8192, 32, 2)},
			DRAM:    mem.DefaultDRAM(),
			Default: 0,
		},
	}
	res, err := Explore(context.Background(), tr, archs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerArch) != 2 {
		t.Fatal("per-arch results missing")
	}
	if len(res.Combined) == 0 || len(res.CostPerfFront) == 0 {
		t.Fatal("no combined/front results")
	}
	for _, p := range res.Combined {
		if p.Estimated {
			t.Fatal("phase II points must be fully simulated")
		}
	}
	// The front must be sorted by cost and strictly improving.
	for i := 1; i < len(res.CostPerfFront); i++ {
		if res.CostPerfFront[i].Cost <= res.CostPerfFront[i-1].Cost ||
			res.CostPerfFront[i].Latency >= res.CostPerfFront[i-1].Latency {
			t.Fatal("cost/perf front malformed")
		}
	}
	if res.EstimatedAccesses == 0 || res.SimulatedAccesses == 0 {
		t.Fatal("work counters not recorded")
	}
	// Sampling must have made phase I much cheaper per point than
	// phase II.
	perEst := float64(res.EstimatedAccesses) / float64(len(res.PerArch[0])+len(res.PerArch[1]))
	perSim := float64(res.SimulatedAccesses) / float64(len(res.Combined))
	if perEst >= perSim {
		t.Fatalf("estimation (%.0f acc/pt) should be cheaper than simulation (%.0f acc/pt)", perEst, perSim)
	}
}

// The engine returns batch results in submission order, so the whole
// exploration — including its pareto fronts — must be identical whether
// it runs on one worker or eight.
func TestParallelSerialEquivalence(t *testing.T) {
	tr := smallTrace()
	archs := func() []*mem.Architecture {
		return []*mem.Architecture{
			testArch(),
			{
				Name:    "cache-only",
				Modules: []mem.Module{mem.MustCache(8192, 32, 2)},
				DRAM:    mem.DefaultDRAM(),
				Default: 0,
			},
		}
	}
	run := func(workers int) *Result {
		cfg := fastConfig()
		cfg.Workers = workers
		res, err := Explore(context.Background(), tr, archs(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if len(serial.Combined) != len(parallel.Combined) {
		t.Fatalf("combined sizes differ: %d vs %d", len(serial.Combined), len(parallel.Combined))
	}
	for i := range serial.Combined {
		s, p := serial.Combined[i], parallel.Combined[i]
		if s.Cost != p.Cost || s.Latency != p.Latency || s.Energy != p.Energy {
			t.Fatalf("combined[%d] differs between 1 and 8 workers: %+v vs %+v", i, s, p)
		}
	}
	if len(serial.CostPerfFront) != len(parallel.CostPerfFront) {
		t.Fatalf("front sizes differ: %d vs %d", len(serial.CostPerfFront), len(parallel.CostPerfFront))
	}
	for i := range serial.CostPerfFront {
		s, p := serial.CostPerfFront[i], parallel.CostPerfFront[i]
		if s.Cost != p.Cost || s.Latency != p.Latency || s.Energy != p.Energy ||
			s.Label() != p.Label() {
			t.Fatalf("front[%d] differs between 1 and 8 workers:\n  %s\n  %s", i, s.Label(), p.Label())
		}
	}
}

func TestExploreValidation(t *testing.T) {
	tr := smallTrace()
	if _, err := Explore(context.Background(), tr, nil, fastConfig()); err == nil {
		t.Fatal("empty architecture list accepted")
	}
	bad := fastConfig()
	bad.Library = nil
	if _, err := Explore(context.Background(), tr, []*mem.Architecture{testArch()}, bad); err == nil {
		t.Fatal("empty library accepted")
	}
	bad = fastConfig()
	bad.KeepPerArch = 0
	if _, err := Explore(context.Background(), tr, []*mem.Architecture{testArch()}, bad); err == nil {
		t.Fatal("zero KeepPerArch accepted")
	}
}

func TestDesignPointLabel(t *testing.T) {
	tr := smallTrace()
	points, _, _, err := ConnectivityExploration(context.Background(), tr, testArch(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	l := points[0].Label()
	if !strings.Contains(l, "cache+stream") || !strings.Contains(l, "[") {
		t.Fatalf("label malformed: %q", l)
	}
}

func TestLevelsDeterministic(t *testing.T) {
	tr := smallTrace()
	brg, err := BuildBRG(tr, testArch())
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := Levels(brg), Levels(brg)
	if len(l1) != len(l2) {
		t.Fatal("level counts differ between runs")
	}
	for i := range l1 {
		if len(l1[i]) != len(l2[i]) {
			t.Fatalf("level %d cluster counts differ", i)
		}
		for j := range l1[i] {
			if len(l1[i][j]) != len(l2[i][j]) {
				t.Fatalf("level %d cluster %d sizes differ", i, j)
			}
			for k := range l1[i][j] {
				if l1[i][j][k] != l2[i][j][k] {
					t.Fatalf("level %d cluster %d differs", i, j)
				}
			}
		}
	}
}

func TestEnumerateAssignmentsStrideDiversity(t *testing.T) {
	// Capped enumeration must still produce distinct assignments and
	// use more than one component per cluster when the cap allows.
	tr := smallTrace()
	brg, err := BuildBRG(tr, testArch())
	if err != nil {
		t.Fatal(err)
	}
	archs, _ := EnumerateAssignments(brg, InitialClustering(brg), connect.Library(), 16)
	if len(archs) == 0 {
		t.Fatal("no assignments")
	}
	sigs := map[string]bool{}
	compNames := map[string]bool{}
	for _, a := range archs {
		sig := ""
		for _, c := range a.Assign {
			sig += c.Name + "|"
			compNames[c.Name] = true
		}
		if sigs[sig] {
			t.Fatalf("duplicate assignment %q under stride sampling", sig)
		}
		sigs[sig] = true
	}
	if len(compNames) < 3 {
		t.Fatalf("stride sampling lost diversity: only %v", compNames)
	}
}

func TestFullSimulateMatchesEstimateRanking(t *testing.T) {
	// For two designs whose estimated latencies differ widely, full
	// simulation must preserve the order.
	tr := smallTrace()
	arch := testArch()
	cfg := fastConfig()
	points, _, _, err := ConnectivityExploration(context.Background(), tr, arch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pick the fastest and slowest estimated designs.
	best, worst := &points[0], &points[0]
	for i := range points {
		if points[i].Latency < best.Latency {
			best = &points[i]
		}
		if points[i].Latency > worst.Latency {
			worst = &points[i]
		}
	}
	if worst.Latency < best.Latency*1.5 {
		t.Skip("designs too close to test ranking")
	}
	fb, _, err := FullSimulate(tr, arch, best.Conn)
	if err != nil {
		t.Fatal(err)
	}
	fw, _, err := FullSimulate(tr, arch, worst.Conn)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Latency >= fw.Latency {
		t.Fatalf("full simulation inverted the estimated ranking: %.2f vs %.2f",
			fb.Latency, fw.Latency)
	}
}

func TestSelectLocalKeepOne(t *testing.T) {
	points := []DesignPoint{
		{Cost: 100, Latency: 10, Energy: 5},
		{Cost: 200, Latency: 5, Energy: 6},
		{Cost: 300, Latency: 3, Energy: 9},
	}
	got := SelectLocal(points, 1)
	if len(got) != 1 {
		t.Fatalf("keep=1 returned %d designs", len(got))
	}
}

// TestExactReplayFrontEquivalence is the acceptance gate for the
// two-phase simulator at the exploration level: the pareto fronts
// selected with the default capture-and-replay evaluation must match
// the ones the exact one-phase simulator selects, with per-point
// metrics within the replay fidelity tolerance.
func TestExactReplayFrontEquivalence(t *testing.T) {
	tr := smallTrace()
	archs := func() []*mem.Architecture {
		return []*mem.Architecture{
			testArch(),
			{
				Name:    "cache-only",
				Modules: []mem.Module{mem.MustCache(8192, 32, 2)},
				DRAM:    mem.DefaultDRAM(),
				Default: 0,
			},
		}
	}
	run := func(exact bool) *Result {
		cfg := fastConfig()
		cfg.Exact = exact
		res, err := Explore(context.Background(), tr, archs(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	replay, exact := run(false), run(true)
	if len(replay.CostPerfFront) != len(exact.CostPerfFront) {
		t.Fatalf("front sizes differ: replay %d vs exact %d",
			len(replay.CostPerfFront), len(exact.CostPerfFront))
	}
	// Sampled Phase I estimates can rank near-tied candidates
	// differently across the two paths, so the fronts need not pick
	// identical designs — but each replay-selected point must be an
	// equally good design: its metrics within the fidelity tolerance of
	// the exact front's point at the same position.
	const tol = 0.02
	for i := range exact.CostPerfFront {
		r, e := replay.CostPerfFront[i], exact.CostPerfFront[i]
		if r.Label() != e.Label() {
			t.Logf("front[%d] selected different designs:\n  replay: %s\n  exact:  %s",
				i, r.Label(), e.Label())
		}
		if d := r.Cost - e.Cost; d > e.Cost*tol || d < -e.Cost*tol {
			t.Errorf("front[%d] cost %.1f vs exact %.1f", i, r.Cost, e.Cost)
		}
		if d := r.Latency - e.Latency; d > e.Latency*tol || d < -e.Latency*tol {
			t.Errorf("front[%d] latency %.4f vs exact %.4f", i, r.Latency, e.Latency)
		}
		if d := r.Energy - e.Energy; d > e.Energy*tol || d < -e.Energy*tol {
			t.Errorf("front[%d] energy %.4f vs exact %.4f", i, r.Energy, e.Energy)
		}
	}
}
