// Package core implements ConEx, the paper's contribution: connectivity
// design-space exploration coupled with the memory-modules exploration.
// Starting from the memory architectures APEX selected, ConEx profiles
// the communication channels into a Bandwidth Requirement Graph (BRG),
// hierarchically clusters channels into logical connections by bandwidth,
// enumerates feasible assignments of clusters to connectivity-library
// components, estimates cost/performance/power for each with time-sampled
// simulation (Phase I), and fully simulates only the locally most
// promising designs to select the global best trade-offs (Phase II).
package core

import (
	"fmt"

	"memorex/internal/mem"
	"memorex/internal/sim"
	"memorex/internal/trace"
)

// BRG is the Bandwidth Requirement Graph of one memory-modules
// architecture: its nodes are the CPU, the on-chip modules, and the
// off-chip DRAM; its arcs are the communication channels, labelled with
// the traffic the application puts on them.
type BRG struct {
	Arch     *mem.Architecture
	Channels []mem.Channel
	// Bytes[i] is the traffic on channel i over the whole trace.
	Bytes []int64
	// Accesses is the trace length, the normalization base.
	Accesses int64
}

// BuildBRG profiles the trace against the architecture under an ideal
// interconnect and labels every channel with its bandwidth requirement.
func BuildBRG(t *trace.Trace, arch *mem.Architecture) (*BRG, error) {
	r, err := sim.RunMemOnly(t, arch)
	if err != nil {
		return nil, err
	}
	return &BRG{
		Arch:     arch,
		Channels: arch.Channels(),
		Bytes:    r.ChannelBytes,
		Accesses: r.Accesses,
	}, nil
}

// Bandwidth returns channel i's traffic in bytes per access.
func (b *BRG) Bandwidth(i int) float64 {
	if b.Accesses == 0 {
		return 0
	}
	return float64(b.Bytes[i]) / float64(b.Accesses)
}

// ClusterBandwidth returns the cumulative bandwidth of a channel set.
func (b *BRG) ClusterBandwidth(cluster []int) float64 {
	var sum float64
	for _, ch := range cluster {
		sum += b.Bandwidth(ch)
	}
	return sum
}

// String renders the BRG arcs for logging.
func (b *BRG) String() string {
	s := fmt.Sprintf("BRG(%s):", b.Arch.Name)
	for i, ch := range b.Channels {
		s += fmt.Sprintf(" %s=%.3fB/acc", ch.Label(b.Arch), b.Bandwidth(i))
	}
	return s
}
