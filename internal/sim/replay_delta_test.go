package sim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/workload"
)

// TestChannelSignatures pins the per-channel signature contract: a
// signature changes exactly when the channel's timing (component
// parameters or cluster sharing) changes, and never with labels or
// area/port metadata.
func TestChannelSignatures(t *testing.T) {
	m := richArch(false)
	a := buildConnT(t, m, "ahb32", "off32")
	b := buildConnT(t, m, "ahb32", "off32")
	if !reflect.DeepEqual(ChannelSignatures(a), ChannelSignatures(b)) {
		t.Fatal("independently built identical archs have different signatures")
	}

	// Reordering clusters must not move any channel's signature: the
	// signature is indexed by channel, not by cluster position.
	r := buildConnT(t, m, "ahb32", "off32")
	for i, j := 0, len(r.Clusters)-1; i < j; i, j = i+1, j-1 {
		r.Clusters[i], r.Clusters[j] = r.Clusters[j], r.Clusters[i]
		r.Assign[i], r.Assign[j] = r.Assign[j], r.Assign[i]
	}
	if !reflect.DeepEqual(ChannelSignatures(a), ChannelSignatures(r)) {
		t.Fatal("cluster reordering changed per-channel signatures")
	}

	// Non-timing metadata is excluded.
	meta := buildConnT(t, m, "ahb32", "off32")
	meta.Assign[0].Name = "renamed"
	meta.Assign[0].MaxPorts += 3
	meta.Assign[0].BaseGates += 100
	meta.Assign[0].GatesPerPort += 10
	if !reflect.DeepEqual(ChannelSignatures(a), ChannelSignatures(meta)) {
		t.Fatal("non-timing component fields leaked into the signature")
	}

	// Every timing parameter must flip the owning cluster's channels —
	// and only those.
	mutations := []struct {
		name string
		mut  func(*connect.Component)
	}{
		{"width", func(c *connect.Component) { c.WidthBytes *= 2 }},
		{"arb", func(c *connect.Component) { c.ArbCycles++ }},
		{"beat", func(c *connect.Component) { c.BeatCycles++ }},
		{"pipelined", func(c *connect.Component) { c.Pipelined = !c.Pipelined }},
		{"split", func(c *connect.Component) { c.Split = !c.Split }},
		{"epb", func(c *connect.Component) { c.EnergyPerByte += 0.001 }},
	}
	base := ChannelSignatures(a)
	for _, mu := range mutations {
		mod := buildConnT(t, m, "ahb32", "off32")
		mu.mut(&mod.Assign[0])
		got := ChannelSignatures(mod)
		for ch := range got {
			inCluster := false
			for _, c := range mod.Clusters[0] {
				if c == ch {
					inCluster = true
				}
			}
			if inCluster && got[ch] == base[ch] {
				t.Errorf("%s: mutated cluster channel %d kept its signature", mu.name, ch)
			}
			if !inCluster && got[ch] != base[ch] {
				t.Errorf("%s: untouched channel %d changed signature", mu.name, ch)
			}
		}
	}

	// Cluster membership is part of the signature: merging two channels
	// onto one component changes their sharing, hence their timing.
	shared := &connect.Arch{Channels: m.Channels()}
	var on, off []int
	for i, ch := range shared.Channels {
		if ch.OffChip {
			off = append(off, i)
		} else {
			on = append(on, i)
		}
	}
	lib := connect.Library()
	ahb, err := connect.ByName(lib, "ahb32")
	if err != nil {
		t.Fatal(err)
	}
	off32, err := connect.ByName(lib, "off32")
	if err != nil {
		t.Fatal(err)
	}
	shared.Clusters = [][]int{on, off}
	shared.Assign = []connect.Component{ahb, off32}
	if err := shared.Validate(); err != nil {
		t.Fatal(err)
	}
	got := ChannelSignatures(shared)
	for _, ch := range on {
		if got[ch] == base[ch] {
			t.Errorf("channel %d: merging clusters did not change the signature", ch)
		}
	}
}

// assertDeltaExact replays every candidate as a delta against the base
// residue and asserts bit-exactness against the reference Replay. It
// returns the summed DeltaInfo for the run.
func assertDeltaExact(t *testing.T, name string, bt *BehaviorTrace, base *Residue, conns []*connect.Arch) DeltaInfo {
	t.Helper()
	var total DeltaInfo
	for i, c := range conns {
		got, _, info, err := ReplayDelta(bt, base, c, false)
		if err != nil {
			t.Fatalf("%s[%d]: ReplayDelta: %v", name, i, err)
		}
		want, err := Replay(bt, c)
		if err != nil {
			t.Fatalf("%s[%d]: Replay: %v", name, i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s[%d]: delta result diverged from Replay:\n got %+v\nwant %+v", name, i, got, want)
		}
		total.SplicedEvents += info.SplicedEvents
		total.RecomputedEvents += info.RecomputedEvents
		total.ChannelsReused += info.ChannelsReused
		total.ChannelsChanged += info.ChannelsChanged
		if info.Fallback {
			total.Fallback = true
		}
	}
	return total
}

// TestReplayDeltaMatchesReplay is the delta fidelity gate, mirroring
// TestReplayBatchMatchesReplay: for every library candidate, replaying
// it as a delta against an ahb32/off32 base must be bit-exact against
// Replay — across module kinds, with and without L2, on full and
// windowed captures — and delta chains (residue-of-a-delta) must stay
// exact too.
func TestReplayDeltaMatchesReplay(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 30_000)
	for _, withL2 := range []bool{false, true} {
		m := richArch(withL2)
		conns := batchConns(t, m)
		name := "full"
		if withL2 {
			name = "full/l2"
		}
		for _, windowed := range []bool{false, true} {
			var windows []Window
			if windowed {
				const on, period = 2000, 20000
				for lo := 0; lo < tr.NumAccesses(); lo += period {
					hi := lo + on
					if hi > tr.NumAccesses() {
						hi = tr.NumAccesses()
					}
					windows = append(windows, Window{Lo: lo, Hi: hi})
				}
				name += "/windowed"
			}
			bt, err := CaptureBehavior(tr, m, windows)
			if err != nil {
				t.Fatal(err)
			}
			base := buildConnT(t, m, "ahb32", "off32")
			baseRes, rsd, err := ReplayResidue(bt, base)
			if err != nil {
				t.Fatalf("%s: ReplayResidue: %v", name, err)
			}
			if rsd == nil {
				t.Fatalf("%s: ReplayResidue returned a nil residue", name)
			}
			want, err := Replay(bt, base)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(baseRes, want) {
				t.Errorf("%s: ReplayResidue result diverged from Replay", name)
			}
			total := assertDeltaExact(t, name, bt, rsd, conns)
			if total.SplicedEvents == 0 {
				t.Errorf("%s: no event was spliced across the whole library", name)
			}

			// Chain: residue of a delta replay feeds the next delta.
			mid := buildConnT(t, m, "ahb32", "off16")
			_, midRsd, _, err := ReplayDelta(bt, rsd, mid, true)
			if err != nil {
				t.Fatalf("%s: chained ReplayDelta: %v", name, err)
			}
			if midRsd == nil {
				t.Fatalf("%s: chained ReplayDelta returned a nil residue", name)
			}
			assertDeltaExact(t, name+"/chained", bt, midRsd, conns)
		}
	}
}

// TestReplayDeltaFallback forces the provable fallback: when every
// channel's timing differs from the base, no event is spliceable and
// ReplayDelta must run a full replay, flag it, and stay bit-exact.
func TestReplayDeltaFallback(t *testing.T) {
	m := richArch(true)
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 10_000)
	bt, err := CaptureBehavior(tr, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := buildConnT(t, m, "ahb32", "off32")
	_, rsd, err := ReplayResidue(bt, base)
	if err != nil {
		t.Fatal(err)
	}
	sib := buildConnT(t, m, "mux32", "off16")
	got, _, info, err := ReplayDelta(bt, rsd, sib, false)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fallback {
		t.Fatalf("all-channels-changed sibling did not fall back: %+v", info)
	}
	if info.SplicedEvents != 0 || info.RecomputedEvents != int64(bt.NumEvents()) {
		t.Fatalf("fallback info inconsistent: %+v", info)
	}
	want, err := Replay(bt, sib)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallback result diverged from Replay:\n got %+v\nwant %+v", got, want)
	}
}

// TestReplayDeltaBatchMixed covers the shared-walk batch API: a mixed
// batch of near siblings (spliced), a base-identical twin and an
// everything-changed sibling (per-member fallback) must be bit-exact
// against Replay in one walk, honor the want mask, and report
// per-member infos.
func TestReplayDeltaBatchMixed(t *testing.T) {
	m := richArch(true)
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 10_000)
	bt, err := CaptureBehavior(tr, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := buildConnT(t, m, "ahb32", "off32")
	_, rsd, err := ReplayResidue(bt, base)
	if err != nil {
		t.Fatal(err)
	}
	conns := []*connect.Arch{
		buildConnT(t, m, "ahb32", "off16"), // off-chip cluster changed
		buildConnT(t, m, "ahb32", "off32"), // timing-identical to the base
		buildConnT(t, m, "mux32", "off16"), // every channel changed: fallback
		buildConnT(t, m, "ahb64", "off32"), // on-chip cluster changed
	}
	want := []bool{true, false, true, false}
	oneBase := []*Residue{rsd, rsd, rsd, rsd}
	results, residues, infos, err := ReplayDeltaBatch(bt, oneBase, conns, want)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		ref, err := Replay(bt, c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], ref) {
			t.Errorf("member %d: batched delta diverged from Replay (info %+v)", i, infos[i])
		}
	}
	if infos[1].Fallback || infos[1].SplicedEvents == 0 {
		t.Errorf("base-identical member did not splice: %+v", infos[1])
	}
	if !infos[2].Fallback {
		t.Errorf("all-channels-changed member did not fall back: %+v", infos[2])
	}
	if infos[2].SplicedEvents != 0 || infos[2].RecomputedEvents != int64(bt.NumEvents()) {
		t.Errorf("fallback member info inconsistent: %+v", infos[2])
	}
	for i := range conns {
		if want[i] && residues[i] == nil {
			t.Errorf("member %d: wanted residue missing", i)
		}
		if !want[i] && residues[i] != nil {
			t.Errorf("member %d: unwanted residue captured", i)
		}
	}
	// A residue captured inside the batch — including the fallback
	// member's — chains into further deltas.
	assertDeltaExact(t, "chained/spliced", bt, residues[0], conns)
	assertDeltaExact(t, "chained/fallback", bt, residues[2], conns)

	// A wave with mixed bases — every member answering to a different
	// parent, one with no parent residue at all — must stay bit-exact
	// member by member.
	mixedBases := []*Residue{residues[0], nil, rsd, residues[2]}
	mres, _, minfos, err := ReplayDeltaBatch(bt, mixedBases, conns, make([]bool, len(conns)))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range conns {
		ref, err := Replay(bt, c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mres[i], ref) {
			t.Errorf("mixed-base member %d diverged from Replay (info %+v)", i, minfos[i])
		}
	}
	if minfos[0].Fallback || minfos[0].SplicedEvents == 0 {
		t.Errorf("member replayed against its own residue did not splice: %+v", minfos[0])
	}
	if !minfos[1].Fallback {
		t.Errorf("nil-base member not flagged as fallback: %+v", minfos[1])
	}

	// Degenerate inputs.
	if r0, s0, i0, err := ReplayDeltaBatch(bt, nil, nil, nil); err != nil || r0 != nil || s0 != nil || i0 != nil {
		t.Errorf("empty batch: got (%v, %v, %v, %v), want all nil", r0, s0, i0, err)
	}
	if _, _, _, err := ReplayDeltaBatch(bt, oneBase[:2], conns, want); err == nil {
		t.Error("mismatched bases accepted")
	}
	if _, _, _, err := ReplayDeltaBatch(bt, oneBase, conns, want[:2]); err == nil {
		t.Error("mismatched want mask accepted")
	}
	if _, _, _, err := ReplayDeltaBatch(bt, oneBase[:1], []*connect.Arch{nil}, []bool{false}); err == nil {
		t.Error("nil member accepted")
	}
	if _, _, _, err := ReplayDelta(bt, nil, conns[0], false); err == nil {
		t.Error("nil base accepted by ReplayDelta")
	}
}

// randConn builds a random connectivity architecture for m: a random
// partition of the on-chip and off-chip channel sets into clusters with
// random matching library components, retried until it validates.
func randConn(t *testing.T, rng *rand.Rand, m *mem.Architecture) *connect.Arch {
	t.Helper()
	lib := connect.Library()
	var onComps, offComps []connect.Component
	for _, c := range lib {
		if c.OnChip {
			onComps = append(onComps, c)
		} else {
			offComps = append(offComps, c)
		}
	}
	chans := m.Channels()
	for attempt := 0; attempt < 200; attempt++ {
		a := &connect.Arch{Channels: chans}
		build := func(idx []int, comps []connect.Component) {
			idx = append([]int(nil), idx...)
			rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
			for len(idx) > 0 {
				n := 1 + rng.Intn(len(idx))
				cl := append([]int(nil), idx[:n]...)
				idx = idx[n:]
				a.Clusters = append(a.Clusters, cl)
				a.Assign = append(a.Assign, comps[rng.Intn(len(comps))])
			}
		}
		var on, off []int
		for i, ch := range chans {
			if ch.OffChip {
				off = append(off, i)
			} else {
				on = append(on, i)
			}
		}
		build(on, onComps)
		build(off, offComps)
		if a.Validate() == nil {
			return a
		}
	}
	t.Fatal("randConn: no valid random architecture in 200 attempts")
	return nil
}

// TestReplayDeltaProperty is the randomized three-way gate: a random
// library of cluster assignments × component choices, replayed on full
// and windowed captures via Replay, ReplayBatch and ReplayDelta from a
// random base, must agree bit-for-bit — fallbacks included.
func TestReplayDeltaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 12_000)
	var spliced, fallbacks int64
	for _, withL2 := range []bool{false, true} {
		m := richArch(withL2)
		for _, windowed := range []bool{false, true} {
			var windows []Window
			if windowed {
				for lo := 0; lo < tr.NumAccesses(); lo += 6000 {
					hi := lo + 1500
					if hi > tr.NumAccesses() {
						hi = tr.NumAccesses()
					}
					windows = append(windows, Window{Lo: lo, Hi: hi})
				}
			}
			bt, err := CaptureBehavior(tr, m, windows)
			if err != nil {
				t.Fatal(err)
			}
			conns := make([]*connect.Arch, 8)
			for i := range conns {
				conns[i] = randConn(t, rng, m)
			}
			batch, err := ReplayBatch(bt, conns)
			if err != nil {
				t.Fatal(err)
			}
			_, rsd, err := ReplayResidue(bt, conns[rng.Intn(len(conns))])
			if err != nil {
				t.Fatal(err)
			}
			wants := make([]*Result, len(conns))
			for i, c := range conns {
				want, err := Replay(bt, c)
				if err != nil {
					t.Fatal(err)
				}
				wants[i] = want
				if !reflect.DeepEqual(batch[i], want) {
					t.Errorf("l2=%v windowed=%v arch %d: ReplayBatch diverged", withL2, windowed, i)
				}
				got, _, info, err := ReplayDelta(bt, rsd, c, false)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("l2=%v windowed=%v arch %d: ReplayDelta diverged (info %+v)", withL2, windowed, i, info)
				}
				spliced += info.SplicedEvents
				if info.Fallback {
					fallbacks++
				}
			}
			// The batched delta walk must agree with all of the above —
			// random mixtures of spliced and fallback members included,
			// with every other member riding a nil base (full
			// recompute inside the shared walk).
			bases := make([]*Residue, len(conns))
			for i := range bases {
				if i%2 == 0 {
					bases[i] = rsd
				}
			}
			dbatch, _, dinfos, err := ReplayDeltaBatch(bt, bases, conns, make([]bool, len(conns)))
			if err != nil {
				t.Fatal(err)
			}
			for i := range conns {
				if !reflect.DeepEqual(dbatch[i], wants[i]) {
					t.Errorf("l2=%v windowed=%v arch %d: ReplayDeltaBatch diverged (info %+v)", withL2, windowed, i, dinfos[i])
				}
				if bases[i] == nil && !dinfos[i].Fallback {
					t.Errorf("l2=%v windowed=%v arch %d: nil-base member not flagged as fallback", withL2, windowed, i)
				}
			}
		}
	}
	// The suite must exercise both regimes: real splicing and the
	// full-replay fallback.
	if spliced == 0 {
		t.Error("randomized suite never spliced an event")
	}
	if fallbacks == 0 {
		t.Error("randomized suite never hit the fallback path")
	}
}

// TestReplayDeltaErrors covers the defensive paths: nil base, arch
// mismatch against the trace, and a residue from a different trace.
func TestReplayDeltaErrors(t *testing.T) {
	m := richArch(false)
	tr := streamTrace(2000)
	bt, err := CaptureBehavior(tr, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn := buildConnT(t, m, "ahb32", "off32")
	if _, _, _, err := ReplayDelta(bt, nil, conn, false); err == nil {
		t.Fatal("nil base residue accepted")
	}
	_, rsd, err := ReplayResidue(bt, conn)
	if err != nil {
		t.Fatal(err)
	}
	other := cacheArch(4096)
	mismatched := buildConnT(t, other, "ahb32", "off32")
	if _, _, _, err := ReplayDelta(bt, rsd, mismatched, false); err == nil {
		t.Fatal("channel-mismatched sibling accepted")
	}
	obt, err := CaptureBehavior(streamTrace(500), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = ReplayDelta(obt, rsd, conn, false)
	if err == nil || !strings.Contains(err.Error(), "residue") {
		t.Fatalf("stale residue accepted: %v", err)
	}
	if _, _, err := ReplayBatchResidue(bt, []*connect.Arch{conn}, nil); err == nil {
		t.Fatal("mismatched want mask accepted")
	}
}
