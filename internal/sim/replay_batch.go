// Batched connectivity replay: one pass over the behavior event trace
// re-times K connectivity architectures simultaneously.
//
// Replay (replay.go) is the reference implementation: one architecture,
// one pass. When the exploration holds many candidates for the same
// captured behavior — the common case, since ConEx enumerates hundreds
// of connectivity mappings per memory architecture — walking the trace
// once per candidate re-decodes identical event streams K times.
// ReplayBatch decodes each event exactly once and applies it to every
// architecture in an inner loop over dense struct-of-arrays state:
// per-(arch,channel) component, cycle and energy tables live in flat
// arrays indexed a*numChannels+ch, per-(arch,module) prefetch state in
// flat arrays indexed a*numModules+m.
//
// Two structural facts make the batch pass much cheaper than K
// reference replays while staying bit-exact:
//
//   - Contention analysis. The replayed CPU is blocking (one
//     outstanding access; the clock advances past every demand leg
//     before the next event), so the only reservations that can overlap
//     a later, earlier-timed query are the background prefetch legs.
//     A cluster that never receives prefetch traffic therefore grants
//     every request at its asking cycle with zero conflicts: the
//     reservation-table scheduler is provably a no-op there, and the
//     batch replayer skips it (counting the issue) instead of searching
//     and marking bitmaps. Real schedulers are built only for clusters
//     that back a prefetching module (or the L2<->DRAM cluster of a
//     prefetching system, which prefetch misses forward to).
//
//   - Shared timing tables. Transfer-cycle, transfer-energy and
//     reservation-stage tables depend only on a component's timing
//     parameters, not on which architecture uses it, so architectures
//     assigning the same library component share one set of dense
//     tables for the whole batch instead of rebuilding ~(MaxBytes ×
//     MaxDRAMLat) stage lists per replay.
//
// Events that reduce to a pure on-chip hit (no stall, no backing
// traffic, non-prefetching module) are classified once per batch and
// handled by a short fast path on uncontended architectures.
//
// Energy is accumulated with exactly the same sequence of float64
// additions as Replay — shared tables hold the very values
// TransferEnergy returns — so results are bit-identical, not merely
// close.
package sim

import (
	"fmt"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/rtable"
)

// checkReplayArch validates a connectivity architecture against a
// behavior trace, exactly as Replay requires.
func checkReplayArch(bt *BehaviorTrace, connArch *connect.Arch) error {
	if err := connArch.Validate(); err != nil {
		return err
	}
	if len(connArch.Channels) != len(bt.Channels) {
		return fmt.Errorf("sim: connectivity architecture covers %d channels, behavior trace has %d",
			len(connArch.Channels), len(bt.Channels))
	}
	for i := range bt.Channels {
		if bt.Channels[i] != connArch.Channels[i] {
			return fmt.Errorf("sim: channel %d mismatch between behavior trace and connectivity architecture", i)
		}
	}
	return nil
}

// ReplayBatch re-times a captured behavior trace against K connectivity
// architectures in a single pass over the event arrays and returns one
// Result per architecture, in input order. Every Result is bit-exact
// equal to Replay(bt, archs[i]) — including energy, histogram and
// scheduler counters. The behavior trace is read-only; distinct batches
// may run concurrently.
func ReplayBatch(bt *BehaviorTrace, archs []*connect.Arch) ([]*Result, error) {
	for i, a := range archs {
		if a == nil {
			return nil, fmt.Errorf("sim: batch arch %d is nil", i)
		}
		if err := checkReplayArch(bt, a); err != nil {
			return nil, fmt.Errorf("sim: batch arch %d: %w", i, err)
		}
	}
	if len(archs) == 0 {
		return nil, nil
	}
	b := newBatchReplayer(bt, archs)
	b.run()
	out := make([]*Result, len(archs))
	for i := range b.res {
		out[i] = &b.res[i]
	}
	return out, nil
}

// compTables is the per-distinct-component set of dense timing tables,
// shared by every (arch, channel) slot of the batch that resolves to a
// component with identical timing parameters. plain and dead are filled
// lazily (and only touched for contended clusters).
type compTables struct {
	cyc   []int32   // n -> TransferCycles(n)
	en    []float64 // n -> TransferEnergy(n)
	plain [][]rtable.Stage
	dead  [][]rtable.Stage
}

// compSig identifies a component up to replay timing and energy: name,
// class, port bounds and area are deliberately excluded.
type compSig struct {
	width, arb, beat int
	pipelined        bool
	epb              float64
}

// batchReplayer holds the state of one ReplayBatch pass.
type batchReplayer struct {
	bt *BehaviorTrace
	k  int // architectures
	nc int // channels
	nm int // modules

	// Shared, behavior-trace-derived (identical for every arch).
	cpuChan    []int32 // module -> CPU channel
	backChan   []int32 // module -> backing channel (-1 if none)
	directChan int32
	l2DRAMChan int32
	pure       []bool // event -> pure on-chip hit (fast-path eligible)

	// Flat per-(arch,channel) tables, indexed a*nc+ch.
	comps  []*connect.Component
	cont   []bool // channel's cluster is contended on this arch
	scheds []*rtable.Scheduler
	tabs   []*compTables

	// Flat per-(arch,module) prefetch state, indexed a*nm+m.
	fetch   []int64
	streamQ [][]int64
	dmaLast []int64

	// Per-arch accumulators.
	archScheds [][]*rtable.Scheduler // real schedulers (contended clusters only)
	fastIssues []int64               // trivially granted issues (uncontended clusters)
	now        []int64
	res        []Result

	// Optional per-arch latency recording for residue capture
	// (ReplayBatchResidue / ReplayDelta). rec == nil disables recording
	// entirely; rec[a] == nil disables it for arch a. recOver[a] flags a
	// latency that did not fit int32 (the residue is then discarded).
	rec     [][]int32
	recOver []bool
}

// recordLat appends one event latency to arch a's recording.
func (b *batchReplayer) recordLat(a, lat int) {
	if lat < 0 || int64(lat) > int64(maxInt32) {
		b.recOver[a] = true
		lat = 0
	}
	b.rec[a] = append(b.rec[a], int32(lat))
}

func newBatchReplayer(bt *BehaviorTrace, archs []*connect.Arch) *batchReplayer {
	k, nc, nm := len(archs), len(bt.Channels), len(bt.Modules)
	b := &batchReplayer{
		bt: bt, k: k, nc: nc, nm: nm,
		cpuChan:    make([]int32, nm),
		backChan:   make([]int32, nm),
		directChan: -1,
		l2DRAMChan: -1,
		comps:      make([]*connect.Component, k*nc),
		cont:       make([]bool, k*nc),
		scheds:     make([]*rtable.Scheduler, k*nc),
		tabs:       make([]*compTables, k*nc),
		fetch:      make([]int64, k*nm),
		streamQ:    make([][]int64, k*nm),
		dmaLast:    make([]int64, k*nm),
		archScheds: make([][]*rtable.Scheduler, k),
		fastIssues: make([]int64, k),
		now:        make([]int64, k),
		res:        make([]Result, k),
	}
	for m := range b.backChan {
		b.backChan[m] = -1
	}
	clusterOf := make([]int32, nc) // per-arch scratch
	for ci, ch := range bt.Channels {
		switch ch.Kind {
		case mem.ChanCPUModule:
			b.cpuChan[ch.Module] = int32(ci)
		case mem.ChanModuleDRAM, mem.ChanModuleL2:
			b.backChan[ch.Module] = int32(ci)
		case mem.ChanCPUDRAM:
			b.directChan = int32(ci)
		case mem.ChanL2DRAM:
			b.l2DRAMChan = int32(ci)
		}
	}

	// Classify events once for the whole batch: which modules generate
	// background prefetch traffic (the only source of scheduler
	// contention, see the package comment) and which events are pure
	// on-chip hits.
	modHasPref := make([]bool, nm)
	anyPref := false
	b.pure = make([]bool, len(bt.Route))
	for i, route := range bt.Route {
		if route < 0 {
			continue
		}
		if bt.PrefBytes[i] > 0 {
			modHasPref[route] = true
			anyPref = true
		}
		if bt.Flags[i]&flagHit == 0 || bt.Stall[i] != 0 ||
			bt.DemandBytes[i] != 0 || bt.PrefBytes[i] != 0 {
			continue
		}
		if kind := bt.Modules[route].Kind; kind == mem.KindStream || kind == mem.KindDMA {
			continue
		}
		b.pure[i] = true
	}

	// Per-architecture wiring: dense component/table slots, contended
	// clusters, real schedulers only where contention is possible.
	intern := map[compSig]*compTables{}
	for a, arch := range archs {
		for ci := range bt.Channels {
			clusterOf[ci] = int32(arch.ComponentOf(ci))
		}
		contCl := make([]bool, len(arch.Clusters))
		if anyPref {
			for m := range modHasPref {
				if modHasPref[m] && b.backChan[m] != -1 {
					contCl[clusterOf[b.backChan[m]]] = true
				}
			}
			if bt.HasL2 && b.l2DRAMChan != -1 {
				contCl[clusterOf[b.l2DRAMChan]] = true
			}
		}
		clSched := make([]*rtable.Scheduler, len(arch.Clusters))
		for ci := range bt.Channels {
			x := a*nc + ci
			cl := clusterOf[ci]
			comp := &arch.Assign[cl]
			b.comps[x] = comp
			sig := compSig{comp.WidthBytes, comp.ArbCycles, comp.BeatCycles, comp.Pipelined, comp.EnergyPerByte}
			ct := intern[sig]
			if ct == nil {
				ct = &compTables{
					cyc: make([]int32, bt.MaxBytes+1),
					en:  make([]float64, bt.MaxBytes+1),
				}
				for n := 0; n <= bt.MaxBytes; n++ {
					ct.cyc[n] = int32(comp.TransferCycles(n))
					ct.en[n] = comp.TransferEnergy(n)
				}
				intern[sig] = ct
			}
			b.tabs[x] = ct
			if contCl[cl] {
				b.cont[x] = true
				if clSched[cl] == nil {
					clSched[cl] = rtable.NewScheduler(connect.NumResources())
					b.archScheds[a] = append(b.archScheds[a], clSched[cl])
				}
				b.scheds[x] = clSched[cl]
			}
		}
		// Actual fetch latencies, mirroring sim.New's readiness wiring.
		for m := 0; m < nm; m++ {
			if bc := b.backChan[m]; bc != -1 {
				f := b.comps[a*nc+int(bc)].TransferCycles(32)
				if bt.HasL2 {
					f += bt.L2Latency
				} else {
					f += bt.DRAMRowHit
				}
				b.fetch[a*nm+m] = int64(f)
			}
		}
		b.res[a].ChannelBytes = make([]int64, nc)
		b.res[a].ChannelWait = make([]int64, nc)
		b.res[a].ChannelTransfers = make([]int64, nc)
	}
	return b
}

// plainStages returns the memoized plain-transfer stages for slot x
// (shared per distinct component across the batch).
func (b *batchReplayer) plainStages(x, n int) []rtable.Stage {
	ct := b.tabs[x]
	if ct.plain == nil {
		ct.plain = make([][]rtable.Stage, b.bt.MaxBytes+1)
	}
	if st := ct.plain[n]; st != nil {
		return st
	}
	st := b.comps[x].Stages(n)
	ct.plain[n] = st
	return st
}

// deadStages returns the memoized stages of a non-split off-chip
// transaction holding the bus through dead DRAM cycles.
func (b *batchReplayer) deadStages(x, n, dead int) []rtable.Stage {
	ct := b.tabs[x]
	if ct.dead == nil {
		ct.dead = make([][]rtable.Stage, (b.bt.MaxBytes+1)*(b.bt.MaxDRAMLat+1))
	}
	idx := n*(b.bt.MaxDRAMLat+1) + dead
	if st := ct.dead[idx]; st != nil {
		return st
	}
	st := deadTimeStages(b.comps[x], n, dead)
	ct.dead[idx] = st
	return st
}

// run replays every window of the behavior trace for every arch.
func (b *batchReplayer) run() {
	bt := b.bt
	nmods := b.nm
	pos := 0
	for wi, wlen := range bt.WindowLen {
		if bt.GapCycles[wi] > 0 {
			rs := bt.Resync[wi*nmods*2 : (wi+1)*nmods*2]
			for a := 0; a < b.k; a++ {
				gapStart := b.now[a]
				b.now[a] += bt.GapCycles[wi]
				b.applyResync(a, rs, gapStart)
			}
		}
		for i := pos; i < pos+int(wlen); i++ {
			if b.pure[i] {
				route := bt.Route[i]
				size := int(bt.Size[i])
				ch := b.cpuChan[route]
				modLat := int64(bt.Modules[route].Latency)
				modEnergy := bt.Modules[route].Energy
				for a := 0; a < b.k; a++ {
					x := a*b.nc + int(ch)
					if b.cont[x] {
						b.slowEvent(a, i)
						continue
					}
					// Pure on-chip hit on an uncontended cluster: the
					// grant is the asking cycle, so the whole event
					// reduces to table lookups. The two energy adds
					// stay separate and ordered to match event().
					ct := b.tabs[x]
					lat := int64(ct.cyc[size]) + modLat
					if b.rec != nil && b.rec[a] != nil {
						b.recordLat(a, int(lat))
					}
					r := &b.res[a]
					r.EnergyNJ += ct.en[size]
					r.EnergyNJ += modEnergy
					r.ChannelBytes[ch] += int64(size)
					r.ChannelTransfers[ch]++
					r.Hits++
					b.fastIssues[a]++
					r.Accesses++
					r.TotalLatency += lat
					r.LatencyHist[latBucket(int(lat))]++
					r.Cycles += lat + 1
					b.now[a] += lat + 1
				}
			} else {
				for a := 0; a < b.k; a++ {
					b.slowEvent(a, i)
				}
			}
		}
		pos += int(wlen)
	}
	for a := 0; a < b.k; a++ {
		issues, conflicts := schedTotals(b.archScheds[a])
		b.res[a].SchedIssues = issues + b.fastIssues[a]
		b.res[a].SchedConflicts = conflicts
	}
}

// slowEvent is the full per-event path, with the same accounting as the
// reference replayer's run loop.
func (b *batchReplayer) slowEvent(a, i int) {
	lat := b.event(a, i)
	if b.rec != nil && b.rec[a] != nil {
		b.recordLat(a, lat)
	}
	r := &b.res[a]
	r.Accesses++
	r.TotalLatency += int64(lat)
	r.LatencyHist[latBucket(lat)]++
	r.Cycles += int64(lat) + 1
	b.now[a] += int64(lat) + 1
}

// applyResync mirrors (*replayer).applyResync for arch a.
func (b *batchReplayer) applyResync(a int, resync []int32, gapStart int64) {
	now := b.now[a]
	gap := now - gapStart
	for mi := range b.bt.Modules {
		switch b.bt.Modules[mi].Kind {
		case mem.KindStream:
			refills := int64(resync[2*mi])
			anchor := int64(resync[2*mi+1])
			q := b.streamQ[a*b.nm+mi]
			if len(q) == 0 && refills == 0 && anchor < 0 {
				continue // never touched: nothing to rebuild
			}
			f := b.fetch[a*b.nm+mi]
			start, span := gapStart, gap
			var chain int64
			if anchor >= 0 {
				start = gapStart + anchor
				span = gap - anchor
				chain = start
			} else {
				chain = gapStart
				if len(q) > 0 && q[len(q)-1] > chain {
					chain = q[len(q)-1]
				}
			}
			for i := int64(1); i <= refills; i++ {
				if t := start + i*span/(refills+1); t > chain {
					chain = t
				}
				chain += f
			}
			depth := b.bt.Modules[mi].Depth
			if cap(q) < depth {
				q = make([]int64, depth)
			} else {
				q = q[:depth]
			}
			for j := range q {
				rj := chain - int64(depth-1-j)*f
				if rj < now {
					rj = now
				}
				q[j] = rj
			}
			b.streamQ[a*b.nm+mi] = q
		case mem.KindDMA:
			b.dmaLast[a*b.nm+mi] = now - int64(resync[2*mi])
		}
	}
}

// event replays one access event for arch a, mirroring
// (*replayer).event step for step.
func (b *batchReplayer) event(a, i int) int {
	bt := b.bt
	route := bt.Route[i]
	size := int(bt.Size[i])
	now := b.now[a]
	r := &b.res[a]
	if route < 0 {
		done, energy := b.offChip(a, b.directChan, size, int(bt.DemandDRAM[i]), now)
		r.Misses++
		r.EnergyNJ += energy
		r.OffChipBytes += int64(size)
		r.ChannelBytes[b.directChan] += int64(size)
		return int(done - now)
	}

	// 1. CPU <-> module link.
	cpuCh := b.cpuChan[route]
	x := a*b.nc + int(cpuCh)
	grant := now
	if b.cont[x] {
		grant = b.scheds[x].EarliestIssue(now, b.plainStages(x, size))
	} else {
		b.fastIssues[a]++
	}
	ct := b.tabs[x]
	t := grant + int64(ct.cyc[size])
	r.EnergyNJ += ct.en[size]
	r.ChannelBytes[cpuCh] += int64(size)
	r.ChannelWait[cpuCh] += grant - now
	r.ChannelTransfers[cpuCh]++

	// 2. The module: behavior from the event, prefetch stalls recomputed
	// in this architecture's clock.
	meta := &bt.Modules[route]
	hit := bt.Flags[i]&flagHit != 0
	var stall int64
	switch meta.Kind {
	case mem.KindStream:
		stall = b.streamStall(a, route, i, t, hit)
	case mem.KindDMA:
		stall = b.dmaStall(a, route, t, hit)
	default:
		stall = int64(bt.Stall[i])
	}
	t += int64(meta.Latency) + stall
	r.EnergyNJ += meta.Energy
	if hit {
		r.Hits++
	} else {
		r.Misses++
	}

	// 3. Demand backing traffic.
	if bt.DemandBytes[i] > 0 {
		t = b.backing(a, b.backChan[route], int(bt.DemandBytes[i]), int(bt.DemandL2Off[i]), int(bt.DemandDRAM[i]), t)
	}

	// 4. Background prefetch traffic (does not hold up the CPU).
	if bt.PrefBytes[i] > 0 {
		if bc := b.backChan[route]; bc != -1 {
			b.backing(a, bc, int(bt.PrefBytes[i]), int(bt.PrefL2Off[i]), int(bt.PrefDRAM[i]), t)
		}
	}
	return int(t - now)
}

// streamStall mirrors (*replayer).streamStall for arch a.
func (b *batchReplayer) streamStall(a int, route int16, i int, t int64, hit bool) int64 {
	bt := b.bt
	meta := &bt.Modules[route]
	mi := a*b.nm + int(route)
	f := b.fetch[mi]
	q := b.streamQ[mi]
	if q == nil {
		q = make([]int64, 0, meta.Depth)
	}
	topup := 0
	if meta.LineBytes > 0 {
		topup = int(bt.PrefBytes[i]) / meta.LineBytes
	}
	if !hit {
		q = q[:0]
		last := t
		q = append(q, last)
		for j := 0; j < topup && len(q) < meta.Depth; j++ {
			last += f
			q = append(q, last)
		}
		b.streamQ[mi] = q
		return 0
	}
	k := topup
	if k >= len(q) {
		k = len(q) - 1
	}
	if k < 0 {
		k = 0
	}
	var stall int64
	if len(q) > 0 {
		if q[k] > t {
			stall = q[k] - t
		}
		q = q[:copy(q, q[k:])]
	}
	base := t + stall
	last := base
	if len(q) > 0 && q[len(q)-1] > last {
		last = q[len(q)-1]
	}
	for j := 0; j < topup && len(q) < meta.Depth; j++ {
		last += f
		q = append(q, last)
	}
	b.streamQ[mi] = q
	return stall
}

// dmaStall mirrors (*replayer).dmaStall for arch a.
func (b *batchReplayer) dmaStall(a int, route int16, t int64, hit bool) int64 {
	mi := a*b.nm + int(route)
	last := b.dmaLast[mi]
	b.dmaLast[mi] = t
	if !hit {
		return 0
	}
	if ready := last + b.fetch[mi]; ready > t {
		return ready - t
	}
	return 0
}

// backing mirrors (*replayer).backing for arch a.
func (b *batchReplayer) backing(a int, backCh int32, n, l2off, dramLat int, at int64) int64 {
	r := &b.res[a]
	if !b.bt.HasL2 {
		done, energy := b.offChip(a, backCh, n, dramLat, at)
		r.EnergyNJ += energy
		r.OffChipBytes += int64(n)
		r.ChannelBytes[backCh] += int64(n)
		return done
	}
	x := a*b.nc + int(backCh)
	grant := at
	if b.cont[x] {
		grant = b.scheds[x].EarliestIssue(at, b.plainStages(x, n))
	} else {
		b.fastIssues[a]++
	}
	ct := b.tabs[x]
	r.ChannelWait[backCh] += grant - at
	r.ChannelTransfers[backCh]++
	r.ChannelBytes[backCh] += int64(n)
	r.EnergyNJ += ct.en[n]
	t := grant + int64(ct.cyc[n])

	t += int64(b.bt.L2Latency)
	r.EnergyNJ += b.bt.L2Energy
	if l2off > 0 && b.l2DRAMChan != -1 {
		done, energy := b.offChip(a, b.l2DRAMChan, l2off, dramLat, t)
		r.EnergyNJ += energy
		r.OffChipBytes += int64(l2off)
		r.ChannelBytes[b.l2DRAMChan] += int64(l2off)
		t = done
	}
	return t
}

// offChip mirrors (*replayer).offChip for arch a. On uncontended
// clusters every grant is the asking cycle (for split components both
// the address and the data phase), so the scheduler and its stage
// tables are skipped entirely.
func (b *batchReplayer) offChip(a int, ch int32, n, dramLat int, at int64) (int64, float64) {
	x := a*b.nc + int(ch)
	comp := b.comps[x]
	ct := b.tabs[x]
	r := &b.res[a]
	energy := ct.en[n] + b.bt.DRAMEnergy

	r.ChannelTransfers[ch]++
	if comp.Split {
		if !b.cont[x] {
			b.fastIssues[a] += 2
			return at + int64(ct.cyc[4]) + int64(dramLat) + int64(ct.cyc[n]), energy
		}
		sched := b.scheds[x]
		addrGrant := sched.EarliestIssue(at, b.plainStages(x, 4))
		ready := addrGrant + int64(ct.cyc[4]) + int64(dramLat)
		dataGrant := sched.EarliestIssue(ready, b.plainStages(x, n))
		r.ChannelWait[ch] += (addrGrant - at) + (dataGrant - ready)
		return dataGrant + int64(ct.cyc[n]), energy
	}
	if !b.cont[x] {
		b.fastIssues[a]++
		return at + int64(ct.cyc[n]) + int64(dramLat), energy
	}
	stages := b.deadStages(x, n, dramLat)
	grant := b.scheds[x].EarliestIssue(at, stages)
	r.ChannelWait[ch] += grant - at
	return grant + int64(comp.ArbCycles+dramLat+comp.Beats(n)*comp.BeatCycles), energy
}
