package sim

import (
	"testing"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/workload"
)

// l2Arch builds a small L1 shielded by a large shared L2.
func l2Arch(l1, l2 int) *mem.Architecture {
	a := &mem.Architecture{
		Name:    "hier",
		Modules: []mem.Module{mem.MustCache(l1, 32, 2)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
	if l2 > 0 {
		a.L2 = mem.MustCache(l2, 32, 4)
	}
	return a
}

func TestL2Channels(t *testing.T) {
	a := l2Arch(1024, 32768)
	chans := a.Channels()
	// cpu<->l1, l1<->l2 (on-chip), l2<->dram (off-chip).
	if len(chans) != 3 {
		t.Fatalf("want 3 channels, got %v", chans)
	}
	kinds := map[mem.ChannelKind]bool{}
	for _, ch := range chans {
		kinds[ch.Kind] = true
		if ch.Kind == mem.ChanModuleL2 && ch.OffChip {
			t.Fatal("module<->l2 must be on-chip")
		}
		if ch.Kind == mem.ChanL2DRAM && !ch.OffChip {
			t.Fatal("l2<->dram must be off-chip")
		}
	}
	if !kinds[mem.ChanModuleL2] || !kinds[mem.ChanL2DRAM] {
		t.Fatalf("L2 channels missing: %v", chans)
	}
	if chans[1].Label(a) != "cache1k-2w-32b<->l2" || chans[2].Label(a) != "l2<->dram" {
		t.Fatalf("labels wrong: %q, %q", chans[1].Label(a), chans[2].Label(a))
	}
	// Gates include the L2; Describe mentions it.
	if a.Gates() <= l2Arch(1024, 0).Gates() {
		t.Fatal("L2 must add gates")
	}
	if s := a.Describe(nil); !contains(s, "l2:cache32k-4w-32b") {
		t.Fatalf("Describe missing L2: %q", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func buildL2Conn(t *testing.T, a *mem.Architecture) *connect.Arch {
	t.Helper()
	lib := connect.Library()
	ahb, _ := connect.ByName(lib, "ahb32")
	off, _ := connect.ByName(lib, "off32")
	c := &connect.Arch{Channels: a.Channels()}
	for i, ch := range c.Channels {
		c.Clusters = append(c.Clusters, []int{i})
		if ch.OffChip {
			c.Assign = append(c.Assign, off)
		} else {
			c.Assign = append(c.Assign, ahb)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestL2ShieldsDRAM(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.Config{Scale: 1, Seed: 42}).Slice(0, 100_000)

	flat := l2Arch(1024, 0)
	hier := l2Arch(1024, 65536)

	sFlat, err := New(flat, buildL2Conn(t, flat))
	if err != nil {
		t.Fatal(err)
	}
	rFlat, err := sFlat.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	sHier, err := New(hier, buildL2Conn(t, hier))
	if err != nil {
		t.Fatal(err)
	}
	rHier, err := sHier.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Same L1 behaviour, so the same L1 miss count...
	if rHier.Misses != rFlat.Misses {
		t.Fatalf("L1 misses diverged: %d vs %d", rHier.Misses, rFlat.Misses)
	}
	// ...but the L2 absorbs most of the off-chip traffic...
	if rHier.OffChipBytes >= rFlat.OffChipBytes/2 {
		t.Fatalf("L2 should cut off-chip bytes: %d vs %d", rHier.OffChipBytes, rFlat.OffChipBytes)
	}
	// ...which also lowers latency and energy.
	if rHier.AvgLatency() >= rFlat.AvgLatency() {
		t.Fatalf("L2 should lower latency: %.2f vs %.2f", rHier.AvgLatency(), rFlat.AvgLatency())
	}
	if rHier.AvgEnergy() >= rFlat.AvgEnergy() {
		t.Fatalf("L2 should lower energy: %.2f vs %.2f", rHier.AvgEnergy(), rFlat.AvgEnergy())
	}
}

func TestL2MemOnlyAgrees(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.Config{Scale: 1, Seed: 42}).Slice(0, 100_000)
	hier := l2Arch(1024, 65536)
	rm, err := RunMemOnly(tr, hier)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(hier, buildL2Conn(t, hier))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Misses != rf.Misses {
		t.Fatalf("L1 miss counts diverge: %d vs %d", rm.Misses, rf.Misses)
	}
	// Off-chip bytes agree (deterministic L2 behaviour on the same
	// access sequence).
	if rm.OffChipBytes != rf.OffChipBytes {
		t.Fatalf("off-chip bytes diverge: %d vs %d", rm.OffChipBytes, rf.OffChipBytes)
	}
}

func TestL2WorksWithConExExploration(t *testing.T) {
	// The generic channel machinery must let ConEx cluster and assign
	// the L2 channels like any others — exercised via the memory
	// architecture's channel list and a simulation of a shared-bus
	// mapping of all on-chip channels.
	a := &mem.Architecture{
		Name: "hier2",
		Modules: []mem.Module{
			mem.MustCache(2048, 32, 2),
			mem.MustStreamBuffer(32, 4),
		},
		DRAM:    mem.DefaultDRAM(),
		L2:      mem.MustCache(32768, 32, 4),
		Default: 0,
	}
	lib := connect.Library()
	ahb, _ := connect.ByName(lib, "ahb32")
	off, _ := connect.ByName(lib, "off16")
	chans := a.Channels()
	var on, offc []int
	for i, ch := range chans {
		if ch.OffChip {
			offc = append(offc, i)
		} else {
			on = append(on, i)
		}
	}
	conn := &connect.Arch{
		Channels: chans,
		Clusters: [][]int{on, offc},
		Assign:   []connect.Component{ahb, off},
	}
	if err := conn.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := New(a, conn)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Vocoder{}.Generate(workload.Config{Scale: 1, Seed: 1}).Slice(0, 50_000)
	r, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accesses != 50_000 || r.AvgLatency() <= 0 {
		t.Fatalf("hierarchical shared-bus system failed to simulate: %+v", r)
	}
}
