// Phase A of the two-phase simulator: behavior capture.
//
// The hit/miss behavior of every module in the memory IP library —
// which accesses hit, which lines are filled or written back, how much
// prefetch traffic is issued, which DRAM rows are opened — depends only
// on the access (address) sequence, never on interconnect timing.
// Timing influences only the *stall* cycles of the prefetching modules
// (stream buffers and the self-indirect DMA wait for in-flight
// fetches), and those stalls are pure functions of the replay clock and
// the architecture's fetch latency, so they can be recomputed exactly
// during connectivity replay.
//
// CaptureBehavior therefore runs the module model once per
// (trace, memory architecture, sampling plan) and records a compact
// struct-of-arrays event trace. Phase B (replay.go) re-times that event
// trace against any connectivity architecture without ever touching the
// module models again: per candidate it performs only bus arbitration,
// reservation-table scheduling, DRAM-latency bookkeeping and energy
// accounting. For architectures without prefetching modules the replay
// is exact; with them, the only approximation is the readiness state
// carried across sampling skip-windows (see gap resync below), which
// does not arise in full (non-sampled) runs.
package sim

import (
	"fmt"
	"sync"

	"memorex/internal/mem"
	"memorex/internal/trace"
)

// Window is one fully simulated span of trace accesses [Lo, Hi). The
// sampling estimator passes its on-windows; a full run is one window
// covering the whole trace.
type Window struct {
	Lo, Hi int
}

// ModuleMeta is the per-module information the replay needs: static
// timing/energy figures plus the stream-buffer geometry used to
// reconstruct prefetch readiness.
type ModuleMeta struct {
	Kind    mem.Kind
	Latency int
	Energy  float64
	// LineBytes and Depth describe a stream buffer's FIFO (zero for
	// other kinds).
	LineBytes int
	Depth     int
	// Backed is true when the module has a backing channel (its fetch
	// latency depends on the connectivity architecture).
	Backed bool
}

// event flag bits.
const (
	flagHit = 1 << iota
)

// noDRAM marks an event leg that generates no DRAM transaction.
const noDRAM = int16(-1)

// BehaviorTrace is the memoized Phase A artifact: one event per
// simulated access, stored as parallel flat arrays, plus the per-gap
// skip bookkeeping of the sampling plan and the architecture-level
// constants the replay needs. It is immutable once captured and safe
// for concurrent replay.
type BehaviorTrace struct {
	// Channels is the channel list of the captured memory architecture;
	// replayed connectivity architectures must cover exactly these.
	Channels []mem.Channel
	// Modules holds the replay-relevant metadata of each module.
	Modules []ModuleMeta

	// HasL2, L2Latency and L2Energy describe the shared L2 (if any).
	HasL2     bool
	L2Latency int
	L2Energy  float64
	// DRAMRowHit and DRAMEnergy mirror the DRAM constants the exact
	// simulator uses for fetch-latency and energy accounting.
	DRAMRowHit int
	DRAMEnergy float64

	// Per-event arrays (one entry per simulated access, in trace order).
	Route       []int16 // module index, or -1 for a direct DRAM access
	Size        []uint8 // CPU access width in bytes
	Flags       []uint8 // flagHit
	Stall       []int32 // module-internal stall (used for non-prefetching kinds)
	DemandBytes []int32 // demand traffic on the backing channel
	DemandL2Off []int32 // demand traffic the L2 forwards to DRAM (L2 systems)
	DemandDRAM  []int16 // DRAM latency of the demand leg (noDRAM if none)
	PrefBytes   []int32 // background prefetch traffic on the backing channel
	PrefL2Off   []int32 // prefetch traffic the L2 forwards to DRAM
	PrefDRAM    []int16 // DRAM latency of the prefetch leg (noDRAM if none)

	// WindowLen[i] is the number of events of window i. GapCycles[i] is
	// the clock advance of the skip region preceding window i (0 when
	// the window starts where the previous ended; the skip clock
	// advances by behavior-determined constants, so gap lengths are
	// timing-independent). Resync carries each module's prefetch
	// activity across that gap as two int32s per module, at
	// [(i*len(Modules)+m)*2]:
	//
	//	stream buffer: [0] line refills issued since the last stream
	//	restart in the gap (the whole gap if none), [1] the restart's
	//	offset from the gap start in cycles, or -1 for no restart.
	//	The replay re-chains its queue through those refills at the
	//	actual fetch latency, reproducing the estimator's readiness
	//	drift on slow fetch paths.
	//
	//	DMA: [0] idle cycles since the last touch, [1] unused.
	WindowLen []int32
	GapCycles []int64
	Resync    []int32

	// MaxBytes and MaxDRAMLat bound the transfer sizes and DRAM
	// latencies occurring in the events (the replay sizes its dense
	// stage tables from them).
	MaxBytes   int
	MaxDRAMLat int

	// evIdx is the lazily built event classification the delta replayer
	// uses (replay_delta.go), shared by every residue capture and delta
	// replay of this trace. Built at most once under evIdxOnce; never
	// serialized. The trace must not be mutated after the first replay.
	evIdxOnce sync.Once
	evIdx     *eventIndex
}

// NumEvents returns the number of recorded access events.
func (bt *BehaviorTrace) NumEvents() int { return len(bt.Route) }

// MemoryBytes estimates the footprint of the event arrays, for cache
// accounting and stats.
func (bt *BehaviorTrace) MemoryBytes() int64 {
	per := int64(2 + 1 + 1 + 4 + 4 + 4 + 2 + 4 + 4 + 2)
	return int64(len(bt.Route))*per + int64(len(bt.Resync))*4 + int64(len(bt.GapCycles))*8
}

// nominal interconnect used during capture: an AHB32-like on-chip path
// and an off32-like chip boundary. The nominal clock never influences
// recorded behavior (which is timing-independent); it only scales the
// gap-resync bookkeeping, so a mid-library shape keeps that
// approximation centred.
func nomTransfer(n int) int64 { return int64(1 + (n+3)/4) }

func nomOffChipDone(at int64, n, dramLat int) int64 {
	return at + int64(2+dramLat+(n+3)/4)
}

// buildRouteTable flattens an architecture's route map into a dense
// per-DSID table (index = DSID, value = module index or DirectDRAM).
// IDs beyond the table take the default route.
func buildRouteTable(a *mem.Architecture) ([]int16, int16) {
	maxDS := 0
	for ds := range a.Route {
		if int(ds) > maxDS {
			maxDS = int(ds)
		}
	}
	def := int16(a.Default)
	tab := make([]int16, maxDS+1)
	for i := range tab {
		tab[i] = def
	}
	for ds, r := range a.Route {
		tab[ds] = int16(r)
	}
	return tab, def
}

// capture drives Phase A: a cloned memory architecture, the dense route
// table, and the trace being recorded.
type capture struct {
	arch     *mem.Architecture
	routeTab []int16
	routeDef int16
	bt       *BehaviorTrace
	now      int64
	// Per-module stream bookkeeping of the current skip gap: line
	// fetches issued since the last restart, and the restart's clock
	// (-1 when the gap has none).
	refills   []int32
	gapStart  int64
	lastReset []int64
}

// CaptureBehavior runs the memory-module model over the given
// on-windows of the trace (nil = one window covering everything) and
// returns the recorded event trace. The architecture is cloned, so the
// caller's module state is untouched.
func CaptureBehavior(t *trace.Trace, memArch *mem.Architecture, windows []Window) (*BehaviorTrace, error) {
	if err := memArch.Validate(); err != nil {
		return nil, err
	}
	n := t.NumAccesses()
	if len(windows) == 0 {
		windows = []Window{{0, n}}
	}
	pos := 0
	total := 0
	for _, w := range windows {
		if w.Lo < pos || w.Hi > n || w.Lo > w.Hi {
			return nil, fmt.Errorf("sim: capture window [%d,%d) out of order (trace has %d accesses)", w.Lo, w.Hi, n)
		}
		pos = w.Hi
		total += w.Hi - w.Lo
	}

	arch := memArch.Clone()
	c := &capture{arch: arch, bt: &BehaviorTrace{Channels: memArch.Channels()}}
	c.routeTab, c.routeDef = buildRouteTable(arch)
	bt := c.bt
	bt.Modules = make([]ModuleMeta, len(arch.Modules))
	for i, m := range arch.Modules {
		meta := ModuleMeta{Kind: m.Kind(), Latency: m.Latency(), Energy: m.Energy()}
		if sb, ok := m.(*mem.StreamBuffer); ok {
			meta.LineBytes = sb.LineBytes
			meta.Depth = sb.Depth
		}
		switch m.Kind() {
		case mem.KindCache, mem.KindStream, mem.KindDMA:
			meta.Backed = true
		}
		bt.Modules[i] = meta
	}
	if arch.L2 != nil {
		bt.HasL2 = true
		bt.L2Latency = arch.L2.Latency()
		bt.L2Energy = arch.L2.Energy()
	}
	bt.DRAMRowHit = arch.DRAM.RowHitCycles
	bt.DRAMEnergy = arch.DRAM.Energy()
	bt.MaxBytes = 4 // split-transaction address phase

	// Nominal fetch latency, mirroring sim.New's readiness wiring.
	nomFetch := int(nomTransfer(32))
	if arch.L2 != nil {
		nomFetch += arch.L2.Latency()
	} else {
		nomFetch += arch.DRAM.RowHitCycles
	}
	for i, m := range arch.Modules {
		if bt.Modules[i].Backed {
			m.SetFetchLatency(nomFetch)
		}
	}

	bt.Route = make([]int16, 0, total)
	bt.Size = make([]uint8, 0, total)
	bt.Flags = make([]uint8, 0, total)
	bt.Stall = make([]int32, 0, total)
	bt.DemandBytes = make([]int32, 0, total)
	bt.DemandL2Off = make([]int32, 0, total)
	bt.DemandDRAM = make([]int16, 0, total)
	bt.PrefBytes = make([]int32, 0, total)
	bt.PrefL2Off = make([]int32, 0, total)
	bt.PrefDRAM = make([]int16, 0, total)
	bt.WindowLen = make([]int32, len(windows))
	bt.GapCycles = make([]int64, len(windows))
	bt.Resync = make([]int32, len(windows)*len(arch.Modules)*2)

	pos = 0
	nm := len(arch.Modules)
	for wi, w := range windows {
		if w.Lo > pos {
			start := c.now
			c.skip(t, pos, w.Lo)
			bt.GapCycles[wi] = c.now - start
			c.resync(bt.Resync[wi*nm*2 : (wi+1)*nm*2])
		}
		for i := w.Lo; i < w.Hi; i++ {
			c.record(t.Accesses[i])
		}
		bt.WindowLen[wi] = int32(w.Hi - w.Lo)
		pos = w.Hi
	}
	return bt, nil
}

// routeOf returns the module index serving ds (DirectDRAM for none).
func (c *capture) routeOf(ds trace.DSID) int16 {
	if int(ds) < len(c.routeTab) {
		return c.routeTab[ds]
	}
	return c.routeDef
}

// noteBytes keeps the transfer-size and DRAM-latency bounds current.
func (c *capture) noteBytes(n int) {
	if n > c.bt.MaxBytes {
		c.bt.MaxBytes = n
	}
}

func (c *capture) noteDRAM(lat int) int16 {
	if lat > c.bt.MaxDRAMLat {
		c.bt.MaxDRAMLat = lat
	}
	return int16(lat)
}

// record simulates one access at nominal timing and appends its event.
func (c *capture) record(a trace.Access) {
	bt := c.bt
	route := c.routeOf(a.DS)
	var (
		flags                              uint8
		stall                              int32
		demBytes, demL2, prefBytes, prefL2 int32
		demDRAM, prefDRAM                  = noDRAM, noDRAM
	)
	var lat int64
	if route < 0 {
		dramLat := c.arch.DRAM.AccessLatency(a.Addr)
		demDRAM = c.noteDRAM(dramLat)
		c.noteBytes(int(a.Size))
		lat = nomOffChipDone(c.now, int(a.Size), dramLat) - c.now
	} else {
		m := c.arch.Modules[route]
		t := c.now + nomTransfer(int(a.Size))
		c.noteBytes(int(a.Size))
		r := m.Access(a, t)
		t += int64(m.Latency() + r.Stall)
		stall = int32(r.Stall)
		if r.Hit {
			flags |= flagHit
		}
		if r.OffChipBytes > 0 {
			demBytes = int32(r.OffChipBytes)
			t, demL2, demDRAM = c.backing(r.OffChipBytes, a, t)
		}
		if r.PrefetchBytes > 0 {
			prefBytes = int32(r.PrefetchBytes)
			pf := a
			pf.Addr += 64
			_, prefL2, prefDRAM = c.backing(r.PrefetchBytes, pf, t)
		}
		lat = t - c.now
	}
	bt.Route = append(bt.Route, route)
	bt.Size = append(bt.Size, a.Size)
	bt.Flags = append(bt.Flags, flags)
	bt.Stall = append(bt.Stall, stall)
	bt.DemandBytes = append(bt.DemandBytes, demBytes)
	bt.DemandL2Off = append(bt.DemandL2Off, demL2)
	bt.DemandDRAM = append(bt.DemandDRAM, demDRAM)
	bt.PrefBytes = append(bt.PrefBytes, prefBytes)
	bt.PrefL2Off = append(bt.PrefL2Off, prefL2)
	bt.PrefDRAM = append(bt.PrefDRAM, prefDRAM)
	c.now += lat + 1
}

// backing mirrors Simulator.backingTransaction at nominal timing,
// returning the completion cycle plus the recorded L2 forwarding bytes
// and DRAM latency of the leg.
func (c *capture) backing(n int, a trace.Access, at int64) (int64, int32, int16) {
	c.noteBytes(n)
	if c.arch.L2 == nil {
		dramLat := c.arch.DRAM.AccessLatency(a.Addr)
		return nomOffChipDone(at, n, dramLat), 0, c.noteDRAM(dramLat)
	}
	t := at + nomTransfer(n)
	lr := c.arch.L2.Access(a, t)
	t += int64(c.arch.L2.Latency() + lr.Stall)
	if lr.OffChipBytes > 0 {
		c.noteBytes(lr.OffChipBytes)
		dramLat := c.arch.DRAM.AccessLatency(a.Addr)
		return nomOffChipDone(t, lr.OffChipBytes, dramLat), int32(lr.OffChipBytes), c.noteDRAM(dramLat)
	}
	return t, 0, noDRAM
}

// skip mirrors Simulator.SkipWindow: cheap hit/miss bookkeeping that
// keeps module and L2 state warm through an off-sampling region. Stream
// line refills and restarts are tallied per module for the gap resync.
func (c *capture) skip(t *trace.Trace, lo, hi int) {
	if c.refills == nil {
		c.refills = make([]int32, len(c.arch.Modules))
		c.lastReset = make([]int64, len(c.arch.Modules))
	}
	for i := range c.refills {
		c.refills[i] = 0
		c.lastReset[i] = -1
	}
	c.gapStart = c.now
	for i := lo; i < hi; i++ {
		a := t.Accesses[i]
		route := c.routeOf(a.DS)
		if route < 0 {
			c.now += 8
			continue
		}
		m := c.arch.Modules[route]
		r := m.Access(a, c.now)
		if c.bt.Modules[route].Kind == mem.KindStream {
			if !r.Hit {
				// Restart: the stream's readiness chain re-anchors here.
				c.refills[route] = 0
				c.lastReset[route] = c.now
			}
			if lb := c.bt.Modules[route].LineBytes; lb > 0 && r.PrefetchBytes > 0 {
				c.refills[route] += int32(r.PrefetchBytes / lb)
			}
		}
		if r.Hit {
			c.now += int64(m.Latency()) + 2
		} else {
			if c.arch.L2 != nil && r.OffChipBytes > 0 {
				c.arch.L2.Access(a, c.now)
			}
			c.now += 16
		}
	}
}

// resync records each prefetching module's gap activity: stream buffers
// report their refill count since the last restart plus the restart's
// position (their readiness chain is rebuilt by the replay, in its own
// clock and at the actual fetch latency), DMA modules how long ago they
// were last touched.
func (c *capture) resync(out []int32) {
	for i, m := range c.arch.Modules {
		switch mod := m.(type) {
		case *mem.StreamBuffer:
			out[2*i] = c.refills[i]
			if c.lastReset[i] >= 0 {
				off := c.lastReset[i] - c.gapStart
				if off > 1<<30 {
					off = 1 << 30
				}
				out[2*i+1] = int32(off)
			} else {
				out[2*i+1] = -1
			}
		case *mem.SelfIndirectDMA:
			idle := mod.SinceLastTouch(c.now)
			if idle > 1<<30 {
				idle = 1 << 30
			}
			out[2*i] = int32(idle)
		}
	}
}
