// Phase B of the two-phase simulator: connectivity replay.
//
// Replay consumes the event trace captured by CaptureBehavior and
// re-times it against one connectivity architecture. The hot loop
// performs only the connectivity-dependent work — bus arbitration
// through the reservation-table schedulers, transfer and DRAM-latency
// arithmetic, and energy accounting — with all module behavior read
// from the flat event arrays. There are no map lookups on the path:
// routes, per-channel components and reservation-stage lists are
// resolved through dense precomputed tables.
//
// Prefetch stalls (stream buffers, self-indirect DMA) are recomputed in
// the replay's own clock from the recorded prefetch structure and the
// replayed architecture's actual fetch latency, exactly as the modules
// themselves would, so a full-trace replay reproduces the exact
// simulator's timing; see behavior.go for the one sampling-mode
// approximation.
package sim

import (
	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/rtable"
)

// Replay re-times a captured behavior trace against the given
// connectivity architecture and returns the accumulated result, exactly
// shaped like Simulator.Run's. The behavior trace is read-only and may
// be replayed concurrently by multiple goroutines.
func Replay(bt *BehaviorTrace, connArch *connect.Arch) (*Result, error) {
	if err := checkReplayArch(bt, connArch); err != nil {
		return nil, err
	}
	r := newReplayer(bt, connArch)
	r.run()
	res := r.res
	return &res, nil
}

// replayer holds the per-run state of one connectivity replay.
type replayer struct {
	bt   *BehaviorTrace
	conn *connect.Arch

	scheds    []*rtable.Scheduler
	clusterOf []int32 // channel -> cluster index
	comps     []*connect.Component

	cpuChan    []int32 // module -> CPU channel
	backChan   []int32 // module -> backing channel (-1 if none)
	directChan int32
	l2DRAMChan int32

	// Dense reservation-stage tables: plain[cluster][bytes] and
	// dead[cluster][bytes*(maxDead+1)+dead], built lazily.
	plain [][][]rtable.Stage
	dead  [][][]rtable.Stage

	fetch   []int64   // module -> actual fetch latency on this architecture
	streamQ [][]int64 // stream module -> readyAt FIFO (len == Depth once touched)
	dmaLast []int64   // DMA module -> last touch cycle

	res Result
	now int64
}

func newReplayer(bt *BehaviorTrace, connArch *connect.Arch) *replayer {
	r := &replayer{
		bt:         bt,
		conn:       connArch,
		clusterOf:  make([]int32, len(bt.Channels)),
		comps:      make([]*connect.Component, len(bt.Channels)),
		cpuChan:    make([]int32, len(bt.Modules)),
		backChan:   make([]int32, len(bt.Modules)),
		directChan: -1,
		l2DRAMChan: -1,
		fetch:      make([]int64, len(bt.Modules)),
		streamQ:    make([][]int64, len(bt.Modules)),
		dmaLast:    make([]int64, len(bt.Modules)),
	}
	for i := range r.backChan {
		r.backChan[i] = -1
	}
	for ci, ch := range bt.Channels {
		cl := connArch.ComponentOf(ci)
		r.clusterOf[ci] = int32(cl)
		r.comps[ci] = &connArch.Assign[cl]
		switch ch.Kind {
		case mem.ChanCPUModule:
			r.cpuChan[ch.Module] = int32(ci)
		case mem.ChanModuleDRAM, mem.ChanModuleL2:
			r.backChan[ch.Module] = int32(ci)
		case mem.ChanCPUDRAM:
			r.directChan = int32(ci)
		case mem.ChanL2DRAM:
			r.l2DRAMChan = int32(ci)
		}
	}
	r.scheds = make([]*rtable.Scheduler, len(connArch.Clusters))
	for i := range r.scheds {
		r.scheds[i] = rtable.NewScheduler(connect.NumResources())
	}
	r.plain = make([][][]rtable.Stage, len(connArch.Clusters))
	r.dead = make([][][]rtable.Stage, len(connArch.Clusters))
	// Actual fetch latencies, mirroring sim.New's readiness wiring.
	for mi := range bt.Modules {
		if bc := r.backChan[mi]; bc != -1 {
			f := r.comps[bc].TransferCycles(32)
			if bt.HasL2 {
				f += bt.L2Latency
			} else {
				f += bt.DRAMRowHit
			}
			r.fetch[mi] = int64(f)
		}
	}
	r.res.ChannelBytes = make([]int64, len(bt.Channels))
	r.res.ChannelWait = make([]int64, len(bt.Channels))
	r.res.ChannelTransfers = make([]int64, len(bt.Channels))
	return r
}

// plainStages returns the memoized plain-transfer stages of n bytes on
// channel ch (dense per-cluster table, built on first use).
func (r *replayer) plainStages(ch int32, n int) []rtable.Stage {
	cl := r.clusterOf[ch]
	tab := r.plain[cl]
	if tab == nil {
		tab = make([][]rtable.Stage, r.bt.MaxBytes+1)
		r.plain[cl] = tab
	}
	if st := tab[n]; st != nil {
		return st
	}
	st := r.conn.Assign[cl].Stages(n)
	tab[n] = st
	return st
}

// deadStages returns the memoized stages of a non-split off-chip
// transaction of n bytes holding the bus through dead DRAM cycles.
func (r *replayer) deadStages(ch int32, n, dead int) []rtable.Stage {
	cl := r.clusterOf[ch]
	tab := r.dead[cl]
	if tab == nil {
		tab = make([][]rtable.Stage, (r.bt.MaxBytes+1)*(r.bt.MaxDRAMLat+1))
		r.dead[cl] = tab
	}
	idx := n*(r.bt.MaxDRAMLat+1) + dead
	if st := tab[idx]; st != nil {
		return st
	}
	st := deadTimeStages(&r.conn.Assign[cl], n, dead)
	tab[idx] = st
	return st
}

// run replays every window of the behavior trace.
func (r *replayer) run() {
	bt := r.bt
	nmods := len(bt.Modules)
	pos := 0
	for wi, wlen := range bt.WindowLen {
		if bt.GapCycles[wi] > 0 {
			gapStart := r.now
			r.now += bt.GapCycles[wi]
			r.applyResync(bt.Resync[wi*nmods*2:(wi+1)*nmods*2], gapStart)
		}
		for i := pos; i < pos+int(wlen); i++ {
			lat := r.event(i)
			r.res.Accesses++
			r.res.TotalLatency += int64(lat)
			r.res.LatencyHist[latBucket(lat)]++
			r.res.Cycles += int64(lat) + 1
			r.now += int64(lat) + 1
		}
		pos += int(wlen)
	}
	r.res.SchedIssues, r.res.SchedConflicts = schedTotals(r.scheds)
}

// applyResync rebuilds prefetch readiness after a sampling skip gap.
//
// For a stream buffer the capture records the gap's line refills since
// its last restart and the restart's position — both timing-independent,
// since skipped hit/miss behavior is address-only. The replay re-chains
// its queue through those refills in its own clock, spreading them
// uniformly over the relevant span and applying the stream model's
// chaining rule (readyAt = max(refillTime, last) + fetchLatency) with
// the replayed architecture's actual fetch latency. A restart resets
// the chain to its own clock, exactly as StreamBuffer.Access does. This
// reproduces both regimes of the exact estimator: a fast fetch path
// tracks the skip clock (queue ready at the window start), a slow one
// accumulates readiness drift — the large stalls the estimator reports
// for under-provisioned backing buses. Uniform refill spacing inside
// the span is the two-phase path's one approximation.
//
// DMA modules carry no chain; the recorded idle time since the last
// touch transfers directly.
func (r *replayer) applyResync(resync []int32, gapStart int64) {
	gap := r.now - gapStart
	for mi := range r.bt.Modules {
		switch r.bt.Modules[mi].Kind {
		case mem.KindStream:
			refills := int64(resync[2*mi])
			anchor := int64(resync[2*mi+1])
			q := r.streamQ[mi]
			if len(q) == 0 && refills == 0 && anchor < 0 {
				continue // never touched: nothing to rebuild
			}
			f := r.fetch[mi]
			start, span := gapStart, gap
			var chain int64
			if anchor >= 0 {
				// Restart inside the gap: the chain re-anchors there and
				// the prior queue is gone.
				start = gapStart + anchor
				span = gap - anchor
				chain = start
			} else {
				chain = gapStart
				if len(q) > 0 && q[len(q)-1] > chain {
					chain = q[len(q)-1]
				}
			}
			for i := int64(1); i <= refills; i++ {
				if t := start + i*span/(refills+1); t > chain {
					chain = t
				}
				chain += f
			}
			depth := r.bt.Modules[mi].Depth
			if cap(q) < depth {
				q = make([]int64, depth)
			} else {
				q = q[:depth]
			}
			for j := range q {
				rj := chain - int64(depth-1-j)*f
				if rj < r.now {
					rj = r.now
				}
				q[j] = rj
			}
			r.streamQ[mi] = q
		case mem.KindDMA:
			r.dmaLast[mi] = r.now - int64(resync[2*mi])
		}
	}
}

// event replays one access event and returns its latency in cycles,
// mirroring Simulator.access.
func (r *replayer) event(i int) int {
	bt := r.bt
	route := bt.Route[i]
	size := int(bt.Size[i])
	if route < 0 {
		done, energy := r.offChip(r.directChan, size, int(bt.DemandDRAM[i]), r.now)
		r.res.Misses++
		r.res.EnergyNJ += energy
		r.res.OffChipBytes += int64(size)
		r.res.ChannelBytes[r.directChan] += int64(size)
		return int(done - r.now)
	}

	// 1. CPU <-> module link.
	cpuCh := r.cpuChan[route]
	comp := r.comps[cpuCh]
	grant := r.scheds[r.clusterOf[cpuCh]].EarliestIssue(r.now, r.plainStages(cpuCh, size))
	t := grant + int64(comp.TransferCycles(size))
	r.res.EnergyNJ += comp.TransferEnergy(size)
	r.res.ChannelBytes[cpuCh] += int64(size)
	r.res.ChannelWait[cpuCh] += grant - r.now
	r.res.ChannelTransfers[cpuCh]++

	// 2. The module: behavior from the event, prefetch stalls recomputed
	// in this architecture's clock.
	meta := &bt.Modules[route]
	hit := bt.Flags[i]&flagHit != 0
	var stall int64
	switch meta.Kind {
	case mem.KindStream:
		stall = r.streamStall(route, i, t, hit)
	case mem.KindDMA:
		stall = r.dmaStall(route, t, hit)
	default:
		stall = int64(bt.Stall[i])
	}
	t += int64(meta.Latency) + stall
	r.res.EnergyNJ += meta.Energy
	if hit {
		r.res.Hits++
	} else {
		r.res.Misses++
	}

	// 3. Demand backing traffic.
	if bt.DemandBytes[i] > 0 {
		t = r.backing(r.backChan[route], int(bt.DemandBytes[i]), int(bt.DemandL2Off[i]), int(bt.DemandDRAM[i]), t)
	}

	// 4. Background prefetch traffic (does not hold up the CPU).
	if bt.PrefBytes[i] > 0 {
		if bc := r.backChan[route]; bc != -1 {
			r.backing(bc, int(bt.PrefBytes[i]), int(bt.PrefL2Off[i]), int(bt.PrefDRAM[i]), t)
		}
	}
	return int(t - r.now)
}

// streamStall reproduces StreamBuffer.Access's timing: pop the consumed
// lines, stall until the hit line's fetch lands, top the FIFO back up.
func (r *replayer) streamStall(route int16, i int, t int64, hit bool) int64 {
	bt := r.bt
	meta := &bt.Modules[route]
	f := r.fetch[route]
	q := r.streamQ[route]
	if q == nil {
		q = make([]int64, 0, meta.Depth)
	}
	topup := 0
	if meta.LineBytes > 0 {
		topup = int(bt.PrefBytes[i]) / meta.LineBytes
	}
	if !hit {
		// Restart: the demand line lands at t, the lookahead chains
		// behind it at the fetch latency.
		q = q[:0]
		last := t
		q = append(q, last)
		for j := 0; j < topup && len(q) < meta.Depth; j++ {
			last += f
			q = append(q, last)
		}
		r.streamQ[route] = q
		return 0
	}
	// Hit: the consumed-line count equals the recorded top-up.
	k := topup
	if k >= len(q) {
		k = len(q) - 1
	}
	if k < 0 {
		k = 0
	}
	var stall int64
	if len(q) > 0 {
		if q[k] > t {
			stall = q[k] - t
		}
		q = q[:copy(q, q[k:])]
	}
	base := t + stall
	last := base
	if len(q) > 0 && q[len(q)-1] > last {
		last = q[len(q)-1]
	}
	for j := 0; j < topup && len(q) < meta.Depth; j++ {
		last += f
		q = append(q, last)
	}
	r.streamQ[route] = q
	return stall
}

// dmaStall reproduces SelfIndirectDMA.Access's timing: a chain hit
// stalls until the fetch started at the previous touch lands.
func (r *replayer) dmaStall(route int16, t int64, hit bool) int64 {
	last := r.dmaLast[route]
	r.dmaLast[route] = t
	if !hit {
		return 0
	}
	if ready := last + r.fetch[route]; ready > t {
		return ready - t
	}
	return 0
}

// backing mirrors Simulator.backingTransaction with the recorded
// behavior: module<->L2 (or module<->DRAM) transfer, L2 latency, and
// the L2's forwarded DRAM transaction when the leg missed.
func (r *replayer) backing(backCh int32, n, l2off, dramLat int, at int64) int64 {
	if !r.bt.HasL2 {
		done, energy := r.offChip(backCh, n, dramLat, at)
		r.res.EnergyNJ += energy
		r.res.OffChipBytes += int64(n)
		r.res.ChannelBytes[backCh] += int64(n)
		return done
	}
	comp := r.comps[backCh]
	grant := r.scheds[r.clusterOf[backCh]].EarliestIssue(at, r.plainStages(backCh, n))
	r.res.ChannelWait[backCh] += grant - at
	r.res.ChannelTransfers[backCh]++
	r.res.ChannelBytes[backCh] += int64(n)
	r.res.EnergyNJ += comp.TransferEnergy(n)
	t := grant + int64(comp.TransferCycles(n))

	t += int64(r.bt.L2Latency)
	r.res.EnergyNJ += r.bt.L2Energy
	if l2off > 0 && r.l2DRAMChan != -1 {
		done, energy := r.offChip(r.l2DRAMChan, l2off, dramLat, t)
		r.res.EnergyNJ += energy
		r.res.OffChipBytes += int64(l2off)
		r.res.ChannelBytes[r.l2DRAMChan] += int64(l2off)
		t = done
	}
	return t
}

// offChip mirrors Simulator.offChipTransaction with the DRAM latency
// read from the event instead of the live DRAM model.
func (r *replayer) offChip(ch int32, n, dramLat int, at int64) (int64, float64) {
	comp := r.comps[ch]
	sched := r.scheds[r.clusterOf[ch]]
	energy := comp.TransferEnergy(n) + r.bt.DRAMEnergy

	r.res.ChannelTransfers[ch]++
	if comp.Split {
		addrGrant := sched.EarliestIssue(at, r.plainStages(ch, 4))
		ready := addrGrant + int64(comp.TransferCycles(4)) + int64(dramLat)
		dataGrant := sched.EarliestIssue(ready, r.plainStages(ch, n))
		r.res.ChannelWait[ch] += (addrGrant - at) + (dataGrant - ready)
		return dataGrant + int64(comp.TransferCycles(n)), energy
	}
	stages := r.deadStages(ch, n, dramLat)
	grant := sched.EarliestIssue(at, stages)
	r.res.ChannelWait[ch] += grant - at
	return grant + int64(comp.ArbCycles+dramLat+comp.Beats(n)*comp.BeatCycles), energy
}
