// Package sim is the MemorEx system simulator — the stand-in for the
// paper's SIMPRESS-based cycle-accurate memory model. It replays a
// memory-access trace against a memory-modules architecture and a
// connectivity architecture, modelling module hits and misses, bus
// arbitration and occupancy through reservation-table schedulers,
// split-transaction and pipelined bus behaviour, background prefetch
// traffic, and off-chip DRAM row timing. It reports the three metrics
// the exploration trades off: average memory latency (cycles/access),
// energy (nJ/access), and — through the architecture objects — area.
package sim

import (
	"fmt"
	"math/bits"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/rtable"
	"memorex/internal/trace"
)

// Result accumulates the metrics of one simulation run.
type Result struct {
	Accesses     int64
	TotalLatency int64   // sum over accesses of memory latency in cycles
	Cycles       int64   // total execution cycles (1 CPU cycle + latency per access)
	EnergyNJ     float64 // total energy: modules + connectivity + DRAM
	Hits         int64   // accesses serviced on-chip
	Misses       int64   // accesses needing off-chip traffic
	OffChipBytes int64   // demand + prefetch bytes crossing the chip boundary
	ChannelBytes []int64 // bytes per channel of the memory architecture
	// ChannelWait accumulates arbitration wait cycles per channel: how
	// long transfers sat waiting for their bus. Large values identify
	// the contended connectivity component of a design.
	ChannelWait []int64
	// ChannelTransfers counts transfers per channel.
	ChannelTransfers []int64
	// SchedIssues and SchedConflicts aggregate the reservation-table
	// scheduler activity of the run: transfers scheduled, and busy-run
	// collisions skipped while searching for issue slots. Their ratio
	// is the run's bus-contention measure, fed to the exploration's
	// metrics registry.
	SchedIssues    int64
	SchedConflicts int64
	// LatencyHist is a log2-bucketed histogram of per-access memory
	// latency: LatencyHist[k] counts accesses with latency in
	// [2^k, 2^(k+1)). Bucket 0 also holds zero-latency accesses.
	LatencyHist [24]int64
}

// LatencyPercentile returns the upper bound of the bucket containing the
// p-th percentile access latency (p in [0,100]); e.g. p=99 answers "99%
// of accesses completed within N cycles".
func (r *Result) LatencyPercentile(p float64) int64 {
	if r.Accesses == 0 {
		return 0
	}
	want := int64(p / 100 * float64(r.Accesses))
	if want >= r.Accesses {
		want = r.Accesses - 1
	}
	var cum int64
	for k, c := range r.LatencyHist {
		cum += c
		if cum > want {
			return int64(1) << uint(k+1)
		}
	}
	return int64(1) << uint(len(r.LatencyHist))
}

// AvgLatency returns the average memory latency in cycles per access.
func (r *Result) AvgLatency() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.TotalLatency) / float64(r.Accesses)
}

// AvgEnergy returns the average energy in nJ per access.
func (r *Result) AvgEnergy() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return r.EnergyNJ / float64(r.Accesses)
}

// MissRatio returns the fraction of accesses requiring off-chip service.
func (r *Result) MissRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// Add accumulates o into r (used by the time sampler to merge windows).
func (r *Result) Add(o *Result) {
	r.Accesses += o.Accesses
	r.TotalLatency += o.TotalLatency
	r.Cycles += o.Cycles
	r.EnergyNJ += o.EnergyNJ
	r.Hits += o.Hits
	r.Misses += o.Misses
	r.OffChipBytes += o.OffChipBytes
	r.ChannelBytes = addChannelCounts(r.ChannelBytes, o.ChannelBytes)
	r.ChannelWait = addChannelCounts(r.ChannelWait, o.ChannelWait)
	r.ChannelTransfers = addChannelCounts(r.ChannelTransfers, o.ChannelTransfers)
	r.SchedIssues += o.SchedIssues
	r.SchedConflicts += o.SchedConflicts
	for i := range o.LatencyHist {
		r.LatencyHist[i] += o.LatencyHist[i]
	}
}

// addChannelCounts accumulates o into dst element-wise, growing dst when
// the operand covers more channels than the receiver has seen so far.
func addChannelCounts(dst, o []int64) []int64 {
	if len(o) > len(dst) {
		grown := make([]int64, len(o))
		copy(grown, dst)
		dst = grown
	}
	for i := range o {
		dst[i] += o[i]
	}
	return dst
}

// Simulator drives one architecture against a trace. Create one per run;
// it clones the memory architecture so module state is private.
type Simulator struct {
	memArch  *mem.Architecture
	connArch *connect.Arch
	channels []mem.Channel

	// routeTab flattens memArch's route map into a dense per-DSID table
	// (routeDef for IDs beyond it), so the per-access hot path avoids a
	// map lookup.
	routeTab []int16
	routeDef int16

	// cpuChan[m] is the channel index of module m's CPU link;
	// backChan[m] of its backing link (to DRAM, or to the shared L2
	// when present; -1 if none). directChan is the cpu<->dram channel
	// and l2DRAMChan the l2<->dram channel (-1 if absent).
	cpuChan    []int
	backChan   []int
	directChan int
	l2DRAMChan int

	// One scheduler per connectivity cluster (physical component).
	scheds []*rtable.Scheduler

	// stageCache memoizes reservation-stage lists: building them
	// allocates, and the same few transfer shapes repeat millions of
	// times. Key: cluster index, transfer bytes, dead-time cycles
	// (-1 for plain transfers).
	stageCache map[stageKey][]rtable.Stage

	res Result
	now int64
}

type stageKey struct {
	cluster int
	bytes   int
	dead    int
}

// stagesFor returns the memoized plain-transfer stages of n bytes on the
// component serving channel ch.
func (s *Simulator) stagesFor(ch, n int) []rtable.Stage {
	ci := s.connArch.ComponentOf(ch)
	key := stageKey{cluster: ci, bytes: n, dead: -1}
	if st, ok := s.stageCache[key]; ok {
		return st
	}
	st := s.connArch.Assign[ci].Stages(n)
	s.stageCache[key] = st
	return st
}

// deadStagesFor returns the memoized stages of a non-split off-chip
// transaction holding the bus through dead cycles of DRAM latency.
func (s *Simulator) deadStagesFor(ch, n, dead int) []rtable.Stage {
	ci := s.connArch.ComponentOf(ch)
	key := stageKey{cluster: ci, bytes: n, dead: dead}
	if st, ok := s.stageCache[key]; ok {
		return st
	}
	st := deadTimeStages(&s.connArch.Assign[ci], n, dead)
	s.stageCache[key] = st
	return st
}

// New builds a simulator for the given trace-independent configuration.
// The memory architecture is cloned; the connectivity architecture must
// have been built for exactly memArch.Channels().
func New(memArch *mem.Architecture, connArch *connect.Arch) (*Simulator, error) {
	if err := memArch.Validate(); err != nil {
		return nil, err
	}
	if err := connArch.Validate(); err != nil {
		return nil, err
	}
	channels := memArch.Channels()
	if len(channels) != len(connArch.Channels) {
		return nil, fmt.Errorf("sim: connectivity architecture covers %d channels, memory architecture has %d",
			len(connArch.Channels), len(channels))
	}
	for i := range channels {
		if channels[i] != connArch.Channels[i] {
			return nil, fmt.Errorf("sim: channel %d mismatch between architectures", i)
		}
	}
	s := &Simulator{
		memArch:    memArch.Clone(),
		connArch:   connArch,
		channels:   channels,
		cpuChan:    make([]int, len(memArch.Modules)),
		backChan:   make([]int, len(memArch.Modules)),
		directChan: -1,
		l2DRAMChan: -1,
	}
	s.routeTab, s.routeDef = buildRouteTable(memArch)
	for i := range s.backChan {
		s.backChan[i] = -1
	}
	for ci, ch := range channels {
		switch ch.Kind {
		case mem.ChanCPUModule:
			s.cpuChan[ch.Module] = ci
		case mem.ChanModuleDRAM, mem.ChanModuleL2:
			s.backChan[ch.Module] = ci
		case mem.ChanCPUDRAM:
			s.directChan = ci
		case mem.ChanL2DRAM:
			s.l2DRAMChan = ci
		}
	}
	s.scheds = make([]*rtable.Scheduler, len(connArch.Clusters))
	for i := range s.scheds {
		s.scheds[i] = rtable.NewScheduler(connect.NumResources())
	}
	s.stageCache = make(map[stageKey][]rtable.Stage)
	s.res.ChannelBytes = make([]int64, len(channels))
	s.res.ChannelWait = make([]int64, len(channels))
	s.res.ChannelTransfers = make([]int64, len(channels))
	// Tell prefetching modules what their fetch path costs, so their
	// readiness model matches this architecture.
	for mi, m := range s.memArch.Modules {
		if dc := s.backChan[mi]; dc != -1 {
			comp := s.comp(dc)
			fetch := comp.TransferCycles(32)
			if s.memArch.L2 != nil {
				// Common case: the prefetch hits the shared L2.
				fetch += s.memArch.L2.Latency()
			} else {
				fetch += s.memArch.DRAM.RowHitCycles
			}
			m.SetFetchLatency(fetch)
		}
	}
	return s, nil
}

// comp returns the component serving channel ch.
func (s *Simulator) comp(ch int) *connect.Component {
	ci := s.connArch.ComponentOf(ch)
	return &s.connArch.Assign[ci]
}

func (s *Simulator) sched(ch int) *rtable.Scheduler {
	return s.scheds[s.connArch.ComponentOf(ch)]
}

// routeOf returns the module index serving ds (negative for direct
// DRAM), through the precomputed dense table.
func (s *Simulator) routeOf(ds trace.DSID) int {
	if int(ds) < len(s.routeTab) {
		return int(s.routeTab[ds])
	}
	return int(s.routeDef)
}

// Run replays the whole trace and returns the accumulated result.
func (s *Simulator) Run(t *trace.Trace) (*Result, error) {
	return s.RunWindow(t, 0, t.NumAccesses())
}

// RunWindow replays accesses [lo, hi) of the trace, continuing from the
// simulator's current clock. Used by the time-sampling estimator.
func (s *Simulator) RunWindow(t *trace.Trace, lo, hi int) (*Result, error) {
	if lo < 0 || hi > t.NumAccesses() || lo > hi {
		return nil, fmt.Errorf("sim: window [%d,%d) out of range (trace has %d accesses)",
			lo, hi, t.NumAccesses())
	}
	for i := lo; i < hi; i++ {
		lat := s.access(t.Accesses[i])
		s.res.Accesses++
		s.res.TotalLatency += int64(lat)
		s.res.LatencyHist[latBucket(lat)]++
		s.res.Cycles += int64(lat) + 1
		s.now += int64(lat) + 1
	}
	r := s.res
	r.SchedIssues, r.SchedConflicts = schedTotals(s.scheds)
	return &r, nil
}

// schedTotals sums the scheduler activity counters across clusters.
func schedTotals(scheds []*rtable.Scheduler) (issues, conflicts int64) {
	for _, sc := range scheds {
		st := sc.Stats()
		issues += st.Issues
		conflicts += st.Conflicts
	}
	return issues, conflicts
}

// SkipWindow advances the clock past accesses [lo, hi) without simulating
// them, updating module state cheaply (hit/miss bookkeeping only) so the
// next on-window starts warm. The estimator uses this for off-sampling.
func (s *Simulator) SkipWindow(t *trace.Trace, lo, hi int) {
	for i := lo; i < hi; i++ {
		a := t.Accesses[i]
		route := s.routeOf(a.DS)
		if route < 0 {
			s.now += 8
			continue
		}
		m := s.memArch.Modules[route]
		r := m.Access(a, s.now)
		if r.Hit {
			s.now += int64(m.Latency()) + 2
		} else {
			// Keep the L2 warm through the skip too.
			if s.memArch.L2 != nil && r.OffChipBytes > 0 {
				s.memArch.L2.Access(a, s.now)
			}
			s.now += 16
		}
	}
}

// access simulates one access and returns its latency in cycles.
func (s *Simulator) access(a trace.Access) int {
	route := s.routeOf(a.DS)
	if route < 0 {
		done, energy := s.offChipTransaction(s.directChan, int(a.Size), a.Addr, s.now)
		s.res.Misses++
		s.res.EnergyNJ += energy
		s.res.OffChipBytes += int64(a.Size)
		s.res.ChannelBytes[s.directChan] += int64(a.Size)
		return int(done - s.now)
	}

	m := s.memArch.Modules[route]
	// 1. CPU <-> module link.
	cpuCh := s.cpuChan[route]
	comp := s.comp(cpuCh)
	grant := s.sched(cpuCh).EarliestIssue(s.now, s.stagesFor(cpuCh, int(a.Size)))
	t := grant + int64(comp.TransferCycles(int(a.Size)))
	s.res.EnergyNJ += comp.TransferEnergy(int(a.Size))
	s.res.ChannelBytes[cpuCh] += int64(a.Size)
	s.res.ChannelWait[cpuCh] += grant - s.now
	s.res.ChannelTransfers[cpuCh]++

	// 2. The module itself.
	r := m.Access(a, t)
	t += int64(m.Latency() + r.Stall)
	s.res.EnergyNJ += m.Energy()
	if r.Hit {
		s.res.Hits++
	} else {
		s.res.Misses++
	}

	// 3. Demand backing traffic (line fill, write-back, node fetch):
	// straight off chip, or through the shared L2 when present.
	if r.OffChipBytes > 0 {
		backCh := s.backChan[route]
		if backCh == -1 {
			// Shouldn't happen for valid architectures: an SRAM never
			// misses. Treat as an internal inconsistency.
			panic(fmt.Sprintf("sim: module %s missed but has no backing channel", m.Name()))
		}
		t = s.backingTransaction(backCh, r.OffChipBytes, a, t)
	}

	// 4. Background prefetch traffic: occupies the backing channels and
	// consumes energy but does not hold up the CPU.
	if r.PrefetchBytes > 0 {
		backCh := s.backChan[route]
		if backCh != -1 {
			pf := a
			pf.Addr += 64
			s.backingTransaction(backCh, r.PrefetchBytes, pf, t)
		}
	}
	return int(t - s.now)
}

// backingTransaction moves n bytes from a module's backing store —
// directly from DRAM, or through the shared L2 — starting no earlier
// than at, accounting energy and channel traffic. It returns the
// completion cycle.
func (s *Simulator) backingTransaction(backCh, n int, a trace.Access, at int64) int64 {
	if s.memArch.L2 == nil {
		done, energy := s.offChipTransaction(backCh, n, a.Addr, at)
		s.res.EnergyNJ += energy
		s.res.OffChipBytes += int64(n)
		s.res.ChannelBytes[backCh] += int64(n)
		return done
	}
	// Module <-> L2 link (on-chip).
	comp := s.comp(backCh)
	grant := s.sched(backCh).EarliestIssue(at, s.stagesFor(backCh, n))
	s.res.ChannelWait[backCh] += grant - at
	s.res.ChannelTransfers[backCh]++
	s.res.ChannelBytes[backCh] += int64(n)
	s.res.EnergyNJ += comp.TransferEnergy(n)
	t := grant + int64(comp.TransferCycles(n))

	// The L2 itself.
	l2 := s.memArch.L2
	lr := l2.Access(a, t)
	t += int64(l2.Latency() + lr.Stall)
	s.res.EnergyNJ += l2.Energy()
	if lr.OffChipBytes > 0 && s.l2DRAMChan != -1 {
		done, energy := s.offChipTransaction(s.l2DRAMChan, lr.OffChipBytes, a.Addr, t)
		s.res.EnergyNJ += energy
		s.res.OffChipBytes += int64(lr.OffChipBytes)
		s.res.ChannelBytes[s.l2DRAMChan] += int64(lr.OffChipBytes)
		t = done
	}
	return t
}

// offChipTransaction moves n bytes between the chip and DRAM over the
// component serving channel ch, starting no earlier than at. It returns
// the completion cycle and the energy spent (bus + DRAM). Split busses
// release the data path during the DRAM dead time; others hold it.
func (s *Simulator) offChipTransaction(ch, n int, addr uint32, at int64) (int64, float64) {
	comp := s.comp(ch)
	sched := s.sched(ch)
	dramLat := s.memArch.DRAM.AccessLatency(addr)
	energy := comp.TransferEnergy(n) + s.memArch.DRAM.Energy()

	s.res.ChannelTransfers[ch]++
	if comp.Split {
		// Address phase, release, then data phase after the DRAM wait.
		addrGrant := sched.EarliestIssue(at, s.stagesFor(ch, 4))
		ready := addrGrant + int64(comp.TransferCycles(4)) + int64(dramLat)
		dataGrant := sched.EarliestIssue(ready, s.stagesFor(ch, n))
		s.res.ChannelWait[ch] += (addrGrant - at) + (dataGrant - ready)
		return dataGrant + int64(comp.TransferCycles(n)), energy
	}
	// Non-split: the bus is held for arbitration + DRAM wait + data.
	stages := s.deadStagesFor(ch, n, dramLat)
	grant := sched.EarliestIssue(at, stages)
	s.res.ChannelWait[ch] += grant - at
	return grant + int64(comp.ArbCycles+dramLat+comp.Beats(n)*comp.BeatCycles), energy
}

// latBucket maps a latency to its log2 histogram bucket.
func latBucket(lat int) int {
	if lat <= 1 {
		return 0
	}
	b := bits.Len32(uint32(lat)) - 1
	if b > 23 {
		b = 23
	}
	return b
}

// deadTimeStages builds the reservation stages of a non-split off-chip
// transaction: the arbiter and data path are held through the DRAM dead
// time. Long bursts are clamped to the reservation window; the clamp
// only shortens the modelled occupancy of pathological (>40-cycle)
// bursts, which do not occur with the library's line sizes.
func deadTimeStages(comp *connect.Component, n, dramLat int) []rtable.Stage {
	dataCycles := comp.Beats(n) * comp.BeatCycles
	total := comp.ArbCycles + dramLat + dataCycles
	if total > 62 {
		total = 62
	}
	return []rtable.Stage{
		{Res: 0, Start: 0, Len: total},
		{Res: 1, Start: 0, Len: total},
	}
}
