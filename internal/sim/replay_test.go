package sim

import (
	"math"
	"testing"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

// richArch exercises every replay-relevant module kind at once: a cache
// default route, a stream buffer, a self-indirect DMA, a direct-DRAM
// data structure, and optionally a shared L2.
func richArch(withL2 bool) *mem.Architecture {
	a := &mem.Architecture{
		Name: "rich",
		Modules: []mem.Module{
			mem.MustCache(4096, 32, 2),
			mem.MustStreamBuffer(32, 8),
			mem.MustSelfIndirectDMA(512, 16, 0.8),
		},
		DRAM: mem.DefaultDRAM(),
		Route: map[trace.DSID]int{
			1: 1,
			2: 2,
			3: mem.DirectDRAM,
		},
		Default: 0,
	}
	if withL2 {
		a.L2 = mem.MustCache(32768, 32, 4)
	}
	return a
}

// relErr returns |got-want| / |want| (0 when both are 0).
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// runExact is the one-phase reference result.
func runExact(t *testing.T, m *mem.Architecture, c *connect.Arch, tr *trace.Trace) *Result {
	t.Helper()
	s, err := New(m, c)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestReplayFidelityLibrary is the acceptance fidelity gate: for every
// component of the connectivity library, on all three paper workloads,
// a full-trace capture + replay must match the exact simulator within
// 2% on average latency and energy. (The replay recomputes prefetch
// stalls exactly, so the match is in fact much tighter; the assertions
// additionally pin the timing-independent counters to exact equality.)
func TestReplayFidelityLibrary(t *testing.T) {
	const tol = 0.02
	workloads := []workload.Workload{workload.Compress{}, workload.Li{}, workload.Vocoder{}}
	for _, withL2 := range []bool{false, true} {
		m := richArch(withL2)
		for _, w := range workloads {
			tr := w.Generate(workload.DefaultConfig()).Slice(0, 40_000)
			bt, err := CaptureBehavior(tr, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, comp := range connect.Library() {
				on, off := comp.Name, "off32"
				if !comp.OnChip {
					on, off = "ahb32", comp.Name
				}
				c := buildConnT(t, m, on, off)
				exact := runExact(t, m, c, tr)
				got, err := Replay(bt, c)
				if err != nil {
					t.Fatal(err)
				}
				name := tr.Name + "/" + comp.Name
				if withL2 {
					name += "/l2"
				}
				if e := relErr(got.AvgLatency(), exact.AvgLatency()); e > tol {
					t.Errorf("%s: avg latency %.4f vs exact %.4f (err %.2f%%)",
						name, got.AvgLatency(), exact.AvgLatency(), 100*e)
				}
				if e := relErr(got.AvgEnergy(), exact.AvgEnergy()); e > tol {
					t.Errorf("%s: avg energy %.4f vs exact %.4f (err %.2f%%)",
						name, got.AvgEnergy(), exact.AvgEnergy(), 100*e)
				}
				// Behavior counters are timing-independent: exact match.
				if got.Hits != exact.Hits || got.Misses != exact.Misses ||
					got.OffChipBytes != exact.OffChipBytes || got.Accesses != exact.Accesses {
					t.Errorf("%s: behavior counters diverged: %d/%d hits, %d/%d misses, %d/%d off-chip bytes",
						name, got.Hits, exact.Hits, got.Misses, exact.Misses,
						got.OffChipBytes, exact.OffChipBytes)
				}
			}
		}
	}
}

// buildConnT is buildConn for tests needing custom on/off components.
func buildConnT(t *testing.T, m *mem.Architecture, onChip, offChip string) *connect.Arch {
	t.Helper()
	lib := connect.Library()
	on, err := connect.ByName(lib, onChip)
	if err != nil {
		t.Fatal(err)
	}
	off, err := connect.ByName(lib, offChip)
	if err != nil {
		t.Fatal(err)
	}
	chans := m.Channels()
	a := &connect.Arch{Channels: chans}
	for i, ch := range chans {
		a.Clusters = append(a.Clusters, []int{i})
		if ch.OffChip {
			a.Assign = append(a.Assign, off)
		} else {
			a.Assign = append(a.Assign, on)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("buildConnT produced invalid arch: %v", err)
	}
	return a
}

// TestReplayExactOnFullTrace: a full-trace replay of a prefetch-free
// architecture is bit-exact — not just within tolerance.
func TestReplayExactOnFullTrace(t *testing.T) {
	m := cacheArch(4096)
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 30_000)
	bt, err := CaptureBehavior(tr, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, on := range []string{"ded32", "apb32", "ahb32"} {
		c := buildConnT(t, m, on, "off32")
		exact := runExact(t, m, c, tr)
		got, err := Replay(bt, c)
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalLatency != exact.TotalLatency || got.EnergyNJ != exact.EnergyNJ ||
			got.Cycles != exact.Cycles || got.LatencyHist != exact.LatencyHist {
			t.Fatalf("%s: full-trace replay not exact: latency %d vs %d, cycles %d vs %d",
				on, got.TotalLatency, exact.TotalLatency, got.Cycles, exact.Cycles)
		}
	}
}

// TestReplaySampledWindows: a windowed capture replayed must track the
// one-phase sampling estimator within the fidelity tolerance (the gap
// resync is the one approximation of the two-phase path).
func TestReplaySampledWindows(t *testing.T) {
	const tol = 0.02
	m := richArch(false)
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 50_000)
	var windows []Window
	const on, period = 2000, 20000
	for lo := 0; lo < tr.NumAccesses(); lo += period {
		hi := lo + on
		if hi > tr.NumAccesses() {
			hi = tr.NumAccesses()
		}
		windows = append(windows, Window{Lo: lo, Hi: hi})
	}
	bt, err := CaptureBehavior(tr, m, windows)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []string{"ded32", "ahb32", "apb32"} {
		c := buildConnT(t, m, comp, "off32")
		// One-phase sampled reference: same windows through RunWindow/SkipWindow.
		s, err := New(m, c)
		if err != nil {
			t.Fatal(err)
		}
		pos := 0
		var exact *Result
		for _, w := range windows {
			if w.Lo > pos {
				s.SkipWindow(tr, pos, w.Lo)
			}
			exact, err = s.RunWindow(tr, w.Lo, w.Hi)
			if err != nil {
				t.Fatal(err)
			}
			pos = w.Hi
		}
		got, err := Replay(bt, c)
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(got.AvgLatency(), exact.AvgLatency()); e > tol {
			t.Errorf("%s: sampled avg latency %.4f vs exact %.4f (err %.2f%%)",
				comp, got.AvgLatency(), exact.AvgLatency(), 100*e)
		}
		if e := relErr(got.AvgEnergy(), exact.AvgEnergy()); e > tol {
			t.Errorf("%s: sampled avg energy %.4f vs exact %.4f (err %.2f%%)",
				comp, got.AvgEnergy(), exact.AvgEnergy(), 100*e)
		}
	}
}

// TestReplayRejectsMismatchedChannels: replaying against a connectivity
// architecture built for different channels must fail loudly.
func TestReplayRejectsMismatchedChannels(t *testing.T) {
	m := richArch(false)
	tr := streamTrace(1000)
	bt, err := CaptureBehavior(tr, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := cacheArch(4096)
	c := buildConnT(t, other, "ahb32", "off32")
	if _, err := Replay(bt, c); err == nil {
		t.Fatal("channel mismatch accepted")
	}
}

// TestCaptureValidatesWindows: overlapping or out-of-range windows are
// rejected.
func TestCaptureValidatesWindows(t *testing.T) {
	m := cacheArch(1024)
	tr := streamTrace(100)
	for _, ws := range [][]Window{
		{{Lo: 50, Hi: 40}},
		{{Lo: 0, Hi: 150}},
		{{Lo: 20, Hi: 60}, {Lo: 40, Hi: 80}},
	} {
		if _, err := CaptureBehavior(tr, m, ws); err == nil {
			t.Fatalf("invalid windows %v accepted", ws)
		}
	}
}

// TestLatBucket pins the bits.Len32 implementation to the original
// shift-loop reference.
func TestLatBucket(t *testing.T) {
	ref := func(lat int) int {
		b := 0
		for lat > 1 && b < 23 {
			lat >>= 1
			b++
		}
		return b
	}
	for lat := 0; lat < 1<<12; lat++ {
		if got, want := latBucket(lat), ref(lat); got != want {
			t.Fatalf("latBucket(%d) = %d, want %d", lat, got, want)
		}
	}
	for _, lat := range []int{1 << 22, 1<<23 - 1, 1 << 23, 1 << 25} {
		if got, want := latBucket(lat), ref(lat); got != want {
			t.Fatalf("latBucket(%d) = %d, want %d", lat, got, want)
		}
	}
}

// TestResultAddGrowsChannels: accumulating a result with more channels
// than the receiver has seen must grow the slices, not drop the tail.
func TestResultAddGrowsChannels(t *testing.T) {
	a := &Result{ChannelBytes: []int64{1}, ChannelWait: []int64{2}, ChannelTransfers: []int64{3}}
	b := &Result{ChannelBytes: []int64{10, 20}, ChannelWait: []int64{30, 40}, ChannelTransfers: []int64{50, 60}}
	a.Add(b)
	if len(a.ChannelBytes) != 2 || a.ChannelBytes[0] != 11 || a.ChannelBytes[1] != 20 {
		t.Fatalf("ChannelBytes = %v", a.ChannelBytes)
	}
	if len(a.ChannelWait) != 2 || a.ChannelWait[0] != 32 || a.ChannelWait[1] != 40 {
		t.Fatalf("ChannelWait = %v", a.ChannelWait)
	}
	if len(a.ChannelTransfers) != 2 || a.ChannelTransfers[0] != 53 || a.ChannelTransfers[1] != 60 {
		t.Fatalf("ChannelTransfers = %v", a.ChannelTransfers)
	}
}
