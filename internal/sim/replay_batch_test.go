package sim

import (
	"reflect"
	"strings"
	"testing"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/workload"
)

// batchConns builds the connectivity candidates the batch fidelity gate
// replays: one one-cluster-per-channel arch per library component (the
// off-chip entries paired with ahb32 on chip, mirroring
// TestReplayFidelityLibrary) plus a shared-cluster arch that maps all
// on-chip channels onto one bus, so cluster sharing and the off-chip
// split/dead-time paths are all exercised in one batch.
func batchConns(t *testing.T, m *mem.Architecture) []*connect.Arch {
	t.Helper()
	var conns []*connect.Arch
	for _, comp := range connect.Library() {
		on, off := comp.Name, "off32"
		if !comp.OnChip {
			on, off = "ahb32", comp.Name
		}
		conns = append(conns, buildConnT(t, m, on, off))
	}
	lib := connect.Library()
	ahb, err := connect.ByName(lib, "ahb32")
	if err != nil {
		t.Fatal(err)
	}
	off, err := connect.ByName(lib, "off16")
	if err != nil {
		t.Fatal(err)
	}
	chans := m.Channels()
	shared := &connect.Arch{Channels: chans}
	var on, offc []int
	for i, ch := range chans {
		if ch.OffChip {
			offc = append(offc, i)
		} else {
			on = append(on, i)
		}
	}
	shared.Clusters = [][]int{on, offc}
	shared.Assign = []connect.Component{ahb, off}
	if err := shared.Validate(); err != nil {
		t.Fatalf("shared-cluster arch invalid: %v", err)
	}
	return append(conns, shared)
}

// assertBatchExact replays the batch and asserts every member is
// bit-exact against the per-arch reference Replay — every counter,
// the float energy accumulator, the latency histogram and the
// scheduler statistics included.
func assertBatchExact(t *testing.T, name string, bt *BehaviorTrace, conns []*connect.Arch) {
	t.Helper()
	batch, err := ReplayBatch(bt, conns)
	if err != nil {
		t.Fatalf("%s: ReplayBatch: %v", name, err)
	}
	if len(batch) != len(conns) {
		t.Fatalf("%s: ReplayBatch returned %d results for %d archs", name, len(batch), len(conns))
	}
	// Residue capture must not perturb the replay: the recording pass
	// returns bit-identical Results and one residue per requested arch.
	want := make([]bool, len(conns))
	for i := range want {
		want[i] = i%2 == 0
	}
	recorded, residues, err := ReplayBatchResidue(bt, conns, want)
	if err != nil {
		t.Fatalf("%s: ReplayBatchResidue: %v", name, err)
	}
	for i, c := range conns {
		ref, err := Replay(bt, c)
		if err != nil {
			t.Fatalf("%s[%d]: Replay: %v", name, i, err)
		}
		if !reflect.DeepEqual(batch[i], ref) {
			t.Errorf("%s[%d]: batch result diverged from Replay:\n got %+v\nwant %+v",
				name, i, batch[i], ref)
		}
		if !reflect.DeepEqual(recorded[i], ref) {
			t.Errorf("%s[%d]: residue-recording result diverged from Replay", name, i)
		}
		if want[i] && residues[i] == nil {
			t.Errorf("%s[%d]: requested residue is nil", name, i)
		}
		if !want[i] && residues[i] != nil {
			t.Errorf("%s[%d]: unrequested residue returned", name, i)
		}
	}
}

// TestReplayBatchMatchesReplay is the batch fidelity gate: for every
// connectivity architecture in the library — across module kinds
// (cache, stream buffer, DMA, direct DRAM), with and without a shared
// L2, on full and windowed captures — ReplayBatch must be bit-exact
// against per-arch Replay. The mismatched-channel and nil-arch error
// paths are covered below.
func TestReplayBatchMatchesReplay(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, 40_000)
	for _, withL2 := range []bool{false, true} {
		m := richArch(withL2)
		conns := batchConns(t, m)
		name := "full"
		if withL2 {
			name = "full/l2"
		}
		bt, err := CaptureBehavior(tr, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertBatchExact(t, name, bt, conns)

		// Windowed capture: gap resync state must also replay
		// identically through the batch path.
		var windows []Window
		const on, period = 2000, 20000
		for lo := 0; lo < tr.NumAccesses(); lo += period {
			hi := lo + on
			if hi > tr.NumAccesses() {
				hi = tr.NumAccesses()
			}
			windows = append(windows, Window{Lo: lo, Hi: hi})
		}
		wbt, err := CaptureBehavior(tr, m, windows)
		if err != nil {
			t.Fatal(err)
		}
		assertBatchExact(t, name+"/windowed", wbt, conns)
	}

	// A prefetch-free architecture takes the fully scheduler-free path.
	m := cacheArch(4096)
	bt, err := CaptureBehavior(tr.Slice(0, 20_000), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBatchExact(t, "cache", bt, batchConns(t, m))
}

// TestReplayBatchErrors: an empty batch is a no-op, a nil member and a
// channel-mismatched member fail loudly with the member's index.
func TestReplayBatchErrors(t *testing.T) {
	m := richArch(false)
	tr := streamTrace(1000)
	bt, err := CaptureBehavior(tr, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayBatch(bt, nil)
	if err != nil || res != nil {
		t.Fatalf("empty batch = (%v, %v); want (nil, nil)", res, err)
	}
	good := buildConnT(t, m, "ahb32", "off32")
	if _, err := ReplayBatch(bt, []*connect.Arch{good, nil}); err == nil {
		t.Fatal("nil batch member accepted")
	}
	other := cacheArch(4096)
	mismatched := buildConnT(t, other, "ahb32", "off32")
	_, err = ReplayBatch(bt, []*connect.Arch{good, mismatched})
	if err == nil {
		t.Fatal("channel mismatch accepted")
	}
	if !strings.Contains(err.Error(), "batch arch 1") {
		t.Fatalf("mismatch error does not identify the member: %v", err)
	}
}
