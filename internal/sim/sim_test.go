package sim

import (
	"strings"
	"testing"

	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

// buildConn assigns every on-chip channel to one named component and
// every off-chip channel to another, each in its own cluster.
func buildConn(t *testing.T, m *mem.Architecture, onChip, offChip string) *connect.Arch {
	t.Helper()
	lib := connect.Library()
	on, err := connect.ByName(lib, onChip)
	if err != nil {
		t.Fatal(err)
	}
	off, err := connect.ByName(lib, offChip)
	if err != nil {
		t.Fatal(err)
	}
	chans := m.Channels()
	a := &connect.Arch{Channels: chans}
	for i, ch := range chans {
		a.Clusters = append(a.Clusters, []int{i})
		if ch.OffChip {
			a.Assign = append(a.Assign, off)
		} else {
			a.Assign = append(a.Assign, on)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("buildConn produced invalid arch: %v", err)
	}
	return a
}

func cacheArch(size int) *mem.Architecture {
	return &mem.Architecture{
		Name:    "cache-only",
		Modules: []mem.Module{mem.MustCache(size, 32, 2)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
}

func streamTrace(n int) *trace.Trace {
	return workload.Synthetic(workload.SynStream, n, 1<<20, 1)
}

func TestSimulatorBasicRun(t *testing.T) {
	m := cacheArch(8192)
	c := buildConn(t, m, "ded32", "off32")
	s, err := New(m, c)
	if err != nil {
		t.Fatal(err)
	}
	tr := streamTrace(10_000)
	r, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accesses != 10_000 {
		t.Fatalf("accesses = %d", r.Accesses)
	}
	if r.Hits+r.Misses != r.Accesses {
		t.Fatalf("hits+misses = %d, want %d", r.Hits+r.Misses, r.Accesses)
	}
	// A sequential sweep through a 32-byte-line cache misses 1/8 of the
	// time (4-byte loads).
	mr := r.MissRatio()
	if mr < 0.10 || mr > 0.15 {
		t.Fatalf("stream miss ratio = %.3f, want ~0.125", mr)
	}
	if r.AvgLatency() <= 1 {
		t.Fatalf("average latency %.2f implausibly low", r.AvgLatency())
	}
	if r.AvgEnergy() <= 0 {
		t.Fatal("no energy accounted")
	}
	if r.OffChipBytes == 0 {
		t.Fatal("no off-chip traffic recorded")
	}
}

func TestSimulatorChannelMismatch(t *testing.T) {
	m := cacheArch(8192)
	c := buildConn(t, m, "ded32", "off32")
	other := &mem.Architecture{
		Name:    "two-mod",
		Modules: []mem.Module{mem.MustCache(8192, 32, 2), mem.MustSRAM(1024)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
	if _, err := New(other, c); err == nil {
		t.Fatal("channel count mismatch accepted")
	}
}

func TestSimulatorRejectsInvalidArchitectures(t *testing.T) {
	m := cacheArch(8192)
	c := buildConn(t, m, "ded32", "off32")
	bad := &mem.Architecture{Name: "bad", Default: 3, DRAM: mem.DefaultDRAM()}
	if _, err := New(bad, c); err == nil {
		t.Fatal("invalid memory architecture accepted")
	}
	badConn := *c
	badConn.Clusters = [][]int{{0}}
	badConn.Assign = c.Assign[:1]
	if _, err := New(m, &badConn); err == nil {
		t.Fatal("invalid connectivity architecture accepted")
	}
}

func TestBiggerCacheLowerLatency(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.Config{Scale: 1, Seed: 42})
	var lats []float64
	for _, size := range []int{512, 4096, 32768} {
		m := cacheArch(size)
		c := buildConn(t, m, "ded32", "off32")
		s, err := New(m, c)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, r.AvgLatency())
	}
	if !(lats[0] > lats[1] && lats[1] > lats[2]) {
		t.Fatalf("bigger caches should lower latency on compress: %v", lats)
	}
}

func TestConnectivityMattersSlowBusSlower(t *testing.T) {
	tr := streamTrace(20_000)
	m := cacheArch(4096)
	fast, err := New(m, buildConn(t, m, "ded32", "off32"))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(m, buildConn(t, m, "apb32", "off16"))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fast.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rs.AvgLatency() <= rf.AvgLatency() {
		t.Fatalf("APB+off16 (%.2f) should be slower than dedicated+off32 (%.2f)",
			rs.AvgLatency(), rf.AvgLatency())
	}
	// Miss behaviour is a property of the memory modules, not the bus.
	if rs.Misses != rf.Misses {
		t.Fatalf("miss counts diverged: %d vs %d", rs.Misses, rf.Misses)
	}
}

func TestSplitBusBeatsBlockingUnderMissTraffic(t *testing.T) {
	// Random accesses over a large footprint: high miss rate, so the
	// module<->DRAM bus is the bottleneck. AHB's split transactions and
	// the stream buffer's background prefetches should overlap better
	// than a blocking ASB... but with a single in-order CPU the gain is
	// modest; we only require it not to be slower.
	tr := workload.Synthetic(workload.SynStream, 30_000, 1<<22, 3)
	m := &mem.Architecture{
		Name:    "stream-arch",
		Modules: []mem.Module{mem.MustStreamBuffer(32, 8)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
	split, err := New(m, buildConn(t, m, "ahb32", "off32"))
	if err != nil {
		t.Fatal(err)
	}
	rSplit, err := split.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rSplit.AvgLatency() <= 0 {
		t.Fatal("no latency recorded")
	}
	// The stream buffer should convert almost all accesses into hits.
	if rSplit.MissRatio() > 0.01 {
		t.Fatalf("stream buffer miss ratio %.4f too high", rSplit.MissRatio())
	}
}

func TestDirectDRAMRouting(t *testing.T) {
	m := &mem.Architecture{
		Name:    "uncached",
		DRAM:    mem.DefaultDRAM(),
		Default: mem.DirectDRAM,
	}
	c := buildConn(t, m, "ded32", "off32")
	s, err := New(m, c)
	if err != nil {
		t.Fatal(err)
	}
	tr := streamTrace(5000)
	r, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hits != 0 || r.Misses != 5000 {
		t.Fatalf("uncached accesses must all miss: %d hits %d misses", r.Hits, r.Misses)
	}
	// Every access pays at least arbitration + DRAM row hit.
	if r.AvgLatency() < 8 {
		t.Fatalf("uncached latency %.2f implausibly low", r.AvgLatency())
	}
}

func TestRunWindowBounds(t *testing.T) {
	m := cacheArch(4096)
	c := buildConn(t, m, "ded32", "off32")
	s, _ := New(m, c)
	tr := streamTrace(100)
	if _, err := s.RunWindow(tr, -1, 50); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := s.RunWindow(tr, 0, 101); err == nil {
		t.Fatal("hi beyond trace accepted")
	}
	if _, err := s.RunWindow(tr, 60, 50); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestRunWindowAccumulates(t *testing.T) {
	m := cacheArch(4096)
	c := buildConn(t, m, "ded32", "off32")
	tr := streamTrace(10_000)

	whole, _ := New(m, c)
	rw, err := whole.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	parts, _ := New(m, c)
	if _, err := parts.RunWindow(tr, 0, 5000); err != nil {
		t.Fatal(err)
	}
	rp, err := parts.RunWindow(tr, 5000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Accesses != rw.Accesses || rp.Misses != rw.Misses {
		t.Fatalf("windowed run diverged: %+v vs %+v", rp, rw)
	}
	if rp.TotalLatency != rw.TotalLatency {
		t.Fatalf("windowed latency %d != whole-run latency %d", rp.TotalLatency, rw.TotalLatency)
	}
}

func TestSkipWindowKeepsModuleStateWarm(t *testing.T) {
	m := cacheArch(32768)
	c := buildConn(t, m, "ded32", "off32")
	tr := streamTrace(8192 / 4) // one pass over 8 KiB
	s, _ := New(m, c)
	s.SkipWindow(tr, 0, tr.NumAccesses())
	// Second pass over the same addresses should now hit.
	r, err := s.RunWindow(tr, 0, tr.NumAccesses())
	if err != nil {
		t.Fatal(err)
	}
	if r.Misses != 0 {
		t.Fatalf("warm cache should not miss, got %d misses", r.Misses)
	}
}

func TestResultAdd(t *testing.T) {
	a := &Result{Accesses: 10, TotalLatency: 50, EnergyNJ: 5, Hits: 8, Misses: 2,
		ChannelBytes: []int64{1, 2}}
	b := &Result{Accesses: 20, TotalLatency: 100, EnergyNJ: 10, Hits: 15, Misses: 5,
		ChannelBytes: []int64{3, 4}}
	a.Add(b)
	if a.Accesses != 30 || a.TotalLatency != 150 || a.Hits != 23 || a.Misses != 7 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.ChannelBytes[0] != 4 || a.ChannelBytes[1] != 6 {
		t.Fatalf("channel bytes wrong: %v", a.ChannelBytes)
	}
	var zero Result
	zero.Add(b)
	if zero.ChannelBytes[1] != 4 {
		t.Fatal("Add into zero Result lost channel bytes")
	}
	if (&Result{}).AvgLatency() != 0 || (&Result{}).AvgEnergy() != 0 || (&Result{}).MissRatio() != 0 {
		t.Fatal("zero-result averages should be 0")
	}
}

func TestMemOnlyMatchesModuleBehaviour(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.Config{Scale: 1, Seed: 42})
	m := cacheArch(8192)
	r, err := RunMemOnly(tr, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accesses != int64(tr.NumAccesses()) {
		t.Fatal("access count wrong")
	}
	if r.Hits+r.Misses != r.Accesses {
		t.Fatal("hit/miss accounting broken")
	}
	if r.MissRatio() <= 0 || r.MissRatio() >= 1 {
		t.Fatalf("miss ratio %.3f implausible", r.MissRatio())
	}
	// Full simulation with any connectivity must agree on miss counts
	// (module behaviour is timing-independent for caches).
	c := buildConn(t, m, "ahb32", "off32")
	s, _ := New(m, c)
	rf, _ := s.Run(tr)
	if rf.Misses != r.Misses {
		t.Fatalf("mem-only misses %d != full-sim misses %d", r.Misses, rf.Misses)
	}
}

func TestMemOnlySRAMMapping(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.Config{Scale: 1, Seed: 42})
	// Find the htab data structure and map it to an SRAM.
	var htab trace.DSID
	for i, d := range tr.DS {
		if d.Name == "htab" {
			htab = trace.DSID(i)
		}
	}
	base := cacheArch(8192)
	mapped := &mem.Architecture{
		Name: "with-sram",
		Modules: []mem.Module{
			mem.MustCache(8192, 32, 2),
			mem.MustSRAM(int(tr.Info(htab).Size)),
		},
		DRAM:    mem.DefaultDRAM(),
		Route:   map[trace.DSID]int{htab: 1},
		Default: 0,
	}
	r0, _ := RunMemOnly(tr, base)
	r1, _ := RunMemOnly(tr, mapped)
	if r1.Misses >= r0.Misses {
		t.Fatalf("mapping htab to SRAM should cut misses: %d -> %d", r0.Misses, r1.Misses)
	}
}

func TestMemOnlyValidates(t *testing.T) {
	tr := streamTrace(10)
	bad := &mem.Architecture{Name: "bad", Default: 5, DRAM: mem.DefaultDRAM()}
	if _, err := RunMemOnly(tr, bad); err == nil {
		t.Fatal("invalid architecture accepted")
	}
}

func TestSimulatorDoesNotMutateCallerModules(t *testing.T) {
	m := cacheArch(4096)
	c := buildConn(t, m, "ded32", "off32")
	s, _ := New(m, c)
	if _, err := s.Run(streamTrace(1000)); err != nil {
		t.Fatal(err)
	}
	if m.Modules[0].(*mem.Cache).Misses != 0 {
		t.Fatal("simulator mutated the caller's architecture")
	}
}

func TestDescribeRoundTrip(t *testing.T) {
	m := cacheArch(4096)
	c := buildConn(t, m, "ahb32", "off32")
	d := c.Describe(m)
	if !strings.Contains(d, "cpu<->cache4k-2w-32b") {
		t.Fatalf("describe missing channel label: %q", d)
	}
}

func TestContentionStats(t *testing.T) {
	// One shared bus for every CPU link: a multi-module architecture
	// must record arbitration waits on the shared cluster.
	m := &mem.Architecture{
		Name: "shared",
		Modules: []mem.Module{
			mem.MustCache(1024, 32, 1),
			mem.MustStreamBuffer(32, 8),
		},
		DRAM:    mem.DefaultDRAM(),
		Route:   map[trace.DSID]int{1: 1},
		Default: 0,
	}
	lib := connect.Library()
	apb, _ := connect.ByName(lib, "apb32")
	off, _ := connect.ByName(lib, "off16")
	chans := m.Channels()
	var on, offc []int
	for i, ch := range chans {
		if ch.OffChip {
			offc = append(offc, i)
		} else {
			on = append(on, i)
		}
	}
	c := &connect.Arch{Channels: chans, Clusters: [][]int{on, offc},
		Assign: []connect.Component{apb, off}}
	s, err := New(m, c)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(workload.Synthetic(workload.SynStream, 20_000, 1<<22, 5))
	if err != nil {
		t.Fatal(err)
	}
	var transfers, waits int64
	for i := range r.ChannelTransfers {
		transfers += r.ChannelTransfers[i]
		waits += r.ChannelWait[i]
	}
	if transfers < r.Accesses {
		t.Fatalf("every access needs at least one transfer: %d < %d", transfers, r.Accesses)
	}
	// Stream prefetches share the off-chip bus with demand misses, so
	// some arbitration wait must have been observed.
	if waits == 0 {
		t.Fatal("no contention recorded on a shared-bus architecture")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	m := cacheArch(8192)
	c := buildConn(t, m, "ded32", "off32")
	s, _ := New(m, c)
	r, err := s.Run(streamTrace(20_000))
	if err != nil {
		t.Fatal(err)
	}
	p50 := r.LatencyPercentile(50)
	p99 := r.LatencyPercentile(99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("percentiles inconsistent: p50=%d p99=%d", p50, p99)
	}
	// A stream through a cache: most accesses are cheap hits, the 99th
	// percentile includes miss latency.
	if p50 > 8 {
		t.Fatalf("p50=%d implausibly high for cache hits", p50)
	}
	if p99 < 8 {
		t.Fatalf("p99=%d should include miss latency", p99)
	}
	var total int64
	for _, c := range r.LatencyHist {
		total += c
	}
	if total != r.Accesses {
		t.Fatalf("histogram holds %d samples, want %d", total, r.Accesses)
	}
	if (&Result{}).LatencyPercentile(99) != 0 {
		t.Fatal("empty result percentile should be 0")
	}
}
