package sim

import (
	"memorex/internal/mem"
	"memorex/internal/trace"
)

// MemOnlyResult is the outcome of a connectivity-free simulation: the
// module hit/miss behaviour and per-channel traffic of a memory-modules
// architecture under an idealized (zero-latency, infinite-bandwidth)
// interconnect. APEX uses the miss ratio for its cost/performance
// exploration, and ConEx uses the per-channel bytes to build the
// Bandwidth Requirement Graph.
type MemOnlyResult struct {
	Accesses     int64
	Hits         int64
	Misses       int64
	OffChipBytes int64
	// ChannelBytes holds bytes per channel, indexed like
	// Architecture.Channels().
	ChannelBytes []int64
	// ModuleEnergyNJ is the energy spent in the modules and DRAM alone.
	ModuleEnergyNJ float64
}

// MissRatio returns the fraction of accesses needing off-chip service.
func (r *MemOnlyResult) MissRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// RunMemOnly replays the trace against the memory modules with an ideal
// interconnect. The architecture is cloned, so the caller's module state
// is untouched.
func RunMemOnly(t *trace.Trace, arch *mem.Architecture) (*MemOnlyResult, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	a := arch.Clone()
	channels := a.Channels()
	cpuChan := make([]int, len(a.Modules))
	backChan := make([]int, len(a.Modules))
	directChan := -1
	l2DRAMChan := -1
	for i := range backChan {
		backChan[i] = -1
	}
	for ci, ch := range channels {
		switch ch.Kind {
		case mem.ChanCPUModule:
			cpuChan[ch.Module] = ci
		case mem.ChanModuleDRAM, mem.ChanModuleL2:
			backChan[ch.Module] = ci
		case mem.ChanCPUDRAM:
			directChan = ci
		case mem.ChanL2DRAM:
			l2DRAMChan = ci
		}
	}
	// Idealized fetch path: DRAM row-hit latency only (L2 hit latency
	// when an L2 shields the modules).
	for mi, m := range a.Modules {
		if backChan[mi] != -1 {
			if a.L2 != nil {
				m.SetFetchLatency(a.L2.Latency())
			} else {
				m.SetFetchLatency(a.DRAM.RowHitCycles)
			}
		}
	}
	// Flatten the route map once: the per-access map lookup (hash +
	// probe) dominated this loop's profile for architectures with many
	// routed data structures.
	routeTab, routeDef := buildRouteTable(a)
	res := &MemOnlyResult{ChannelBytes: make([]int64, len(channels))}
	var now int64
	for _, acc := range t.Accesses {
		res.Accesses++
		route := int(routeDef)
		if int(acc.DS) < len(routeTab) {
			route = int(routeTab[acc.DS])
		}
		if route == mem.DirectDRAM {
			res.Misses++
			res.OffChipBytes += int64(acc.Size)
			res.ChannelBytes[directChan] += int64(acc.Size)
			res.ModuleEnergyNJ += a.DRAM.Energy()
			now += int64(a.DRAM.AccessLatency(acc.Addr)) + 1
			continue
		}
		m := a.Modules[route]
		res.ChannelBytes[cpuChan[route]] += int64(acc.Size)
		r := m.Access(acc, now)
		res.ModuleEnergyNJ += m.Energy()
		if r.Hit {
			res.Hits++
			now += int64(m.Latency()+r.Stall) + 1
		} else {
			res.Misses++
			now += int64(m.Latency()) + int64(a.DRAM.AccessLatency(acc.Addr)) + 1
		}
		traffic := r.OffChipBytes + r.PrefetchBytes
		if traffic > 0 && backChan[route] != -1 {
			res.ChannelBytes[backChan[route]] += int64(traffic)
			if a.L2 != nil {
				lr := a.L2.Access(acc, now)
				res.ModuleEnergyNJ += a.L2.Energy()
				if lr.OffChipBytes > 0 && l2DRAMChan != -1 {
					res.OffChipBytes += int64(lr.OffChipBytes)
					res.ChannelBytes[l2DRAMChan] += int64(lr.OffChipBytes)
					res.ModuleEnergyNJ += a.DRAM.Energy()
				}
			} else {
				res.OffChipBytes += int64(traffic)
				res.ModuleEnergyNJ += a.DRAM.Energy()
			}
		}
	}
	return res, nil
}
