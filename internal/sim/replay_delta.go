// Incremental delta-replay: re-time only the channels a candidate
// changes.
//
// Neighborhood-style exploration produces long runs of connectivity
// candidates that differ from an already-replayed sibling in a single
// cluster's component. Replay and ReplayBatch still pay O(full trace)
// for each of them. ReplayDelta re-times such a sibling against a
// *residue* kept from a base candidate's replay — the per-channel
// timing signatures, the per-channel contention flags and the
// per-event latencies of the base run — and walks the trace touching
// only what actually changed.
//
// # The splice rule, and why it is sound
//
// Every event's latency is a function of (a) the timing tables of the
// channels it touches, (b) the scheduler grants on those channels and
// (c) trace-recorded module behavior (hit/miss, stall, demand and
// prefetch byte counts). The replayed CPU is blocking, so — exactly as
// the batch replayer's contention analysis establishes — a cluster
// that never receives background prefetch traffic grants every request
// at its asking cycle: the grant chain inside such an event is a pure
// offset from the event's start, independent of the absolute clock.
// Therefore an event is *spliceable* when
//
//  1. its route is not clock-coupled: not a stream-buffer or DMA
//     module (their stalls depend on the replay's absolute clock
//     history) and carrying no prefetch leg, and
//  2. every channel it touches is uncontended on BOTH the base and
//     the sibling architecture, and
//  3. every channel it touches has the same per-channel timing
//     signature (component timing parameters + cluster co-members) on
//     both architectures.
//
// Under (1)-(3) the event's latency on the sibling equals its recorded
// base latency bit-for-bit, its scheduler is provably a no-op, and its
// channel-counter contributions are trace-determined. Everything else
// — events touching a changed or contended channel, and all
// stream/DMA events — is recomputed with the real machinery at the
// exact sibling clock, which the spliced events keep advancing
// identically to a full replay. Because per-channel signatures include
// the sorted cluster co-member list, signature equality implies
// identical scheduler sharing, and a signature-equal channel has the
// same contention status on both architectures (contention is decided
// by trace + cluster membership alone).
//
// Energy is the one contribution that cannot be aggregated: float64
// addition is not associative, so bit-exactness requires replaying the
// exact same sequence of additions. Spliced events therefore still
// perform their 1-4 energy adds — reading the very table values the
// full replay would — but skip all latency arithmetic, scheduler
// bookkeeping and event decoding (a spliced event reads one class id
// and one recorded latency instead of the full event record).
//
// When no event is spliceable the delta degenerates to a full replay;
// ReplayDelta detects that case exactly (spliceable-event count == 0)
// and reports it as a fallback — a provable rule, not a heuristic.
//
// ReplayDeltaBatch extends the same machinery to K siblings, each
// with its own base residue (delta trees are shallow and wide, so the
// members of one replay wave usually answer to different parents):
// the trace is walked once, each event's class is resolved once, and
// every sibling independently splices from its own base or recomputes
// at its own clock — so the delta path keeps the batch replayer's
// shared-decode amortization instead of paying a full walk per
// sibling. Siblings that fall back — including members whose base
// residue is nil — ride the same walk as plain batch members.
// ReplayDelta is the K=1, one-base special case.
package sim

import (
	"fmt"
	"math"
	"sort"

	"memorex/internal/connect"
	"memorex/internal/mem"
)

// FNV-1a parameters for the per-channel signature hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

const maxInt32 = 1<<31 - 1

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// ChannelSignatures returns one 64-bit timing signature per channel of
// the architecture: a digest of the owning cluster's component timing
// parameters (width, arbitration, beat, pipelining, split transactions,
// energy per byte) and the cluster's sorted channel-member list. Two
// channels with equal signatures on two architectures are served by
// timing-identical components with identical scheduler sharing, so
// their per-event timing and energy contributions are interchangeable.
// Names, classes, port bounds and gate counts are deliberately
// excluded.
func ChannelSignatures(arch *connect.Arch) []uint64 {
	sigs := make([]uint64, len(arch.Channels))
	var members []int
	for cl := range arch.Clusters {
		comp := &arch.Assign[cl]
		members = append(members[:0], arch.Clusters[cl]...)
		sort.Ints(members)
		h := uint64(fnvOffset64)
		h = fnvMix(h, uint64(comp.WidthBytes))
		h = fnvMix(h, uint64(comp.ArbCycles))
		h = fnvMix(h, uint64(comp.BeatCycles))
		h = fnvMix(h, boolBit(comp.Pipelined))
		h = fnvMix(h, boolBit(comp.Split))
		h = fnvMix(h, math.Float64bits(comp.EnergyPerByte))
		h = fnvMix(h, uint64(len(members)))
		for _, m := range members {
			h = fnvMix(h, uint64(m))
		}
		for _, ch := range arch.Clusters[cl] {
			sigs[ch] = h
		}
	}
	return sigs
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Residue is the reusable timing residue of one replay: everything a
// sibling architecture needs to splice the base's unchanged-channel
// contributions instead of recomputing them. Residues are produced by
// ReplayResidue, ReplayBatchResidue and (for chaining) ReplayDelta
// itself; they are immutable and safe for concurrent use.
type Residue struct {
	arch *connect.Arch
	sigs []uint64 // per-channel timing signature of the base
	cont []bool   // per-channel contended flag on the base
	lat  []int32  // per-event latency of the base replay
	idx  *eventIndex

	// Per-class latency aggregates of the base replay: latSum[c] is the
	// summed latency of class c's events, latHist[c*numLatBuckets+k] its
	// latency-histogram bucket counts. They let the delta walk account a
	// spliced class's integer latency contributions in one shot instead
	// of per event (integer addition is associative, so the aggregate is
	// exact — unlike energy, which stays per-event).
	latSum  []int64
	latHist []int64
}

// numLatBuckets is the size of Result.LatencyHist.
const numLatBuckets = len(Result{}.LatencyHist)

// Arch returns the base architecture the residue was captured from.
func (r *Residue) Arch() *connect.Arch { return r.arch }

// DeltaInfo reports what one ReplayDelta call reused and recomputed.
type DeltaInfo struct {
	// SplicedEvents / RecomputedEvents partition the trace events.
	SplicedEvents    int64
	RecomputedEvents int64
	// ChannelsReused counts channels whose timing signature matched the
	// base's and were uncontended on both architectures;
	// ChannelsChanged is the rest.
	ChannelsReused  int
	ChannelsChanged int
	// Fallback is true when no event was spliceable and the call
	// degenerated to a full replay (the provable fallback rule).
	Fallback bool
}

// evClass is one interned event shape: the touched channels and the
// trace-determined fields a spliced event needs. Latency never appears
// here — it is read from the residue.
type evClass struct {
	chans    [3]int32 // touched channels (cpu/direct, backing, l2-dram); -1 unused
	dem      int32    // demand backing bytes
	demL2    int32    // demand bytes forwarded past the L2
	route    int16
	size     uint8
	hit      bool
	spliceOK bool // structure permits splicing (not stream/DMA, no prefetch leg)
}

// eventIndex is the per-trace classification used by the delta walk:
// each event resolves to one interned class, so the spliced path never
// decodes the full event record. Built once per residue capture and
// shared by every residue of the same trace.
type eventIndex struct {
	cpuChan    []int32
	backChan   []int32
	directChan int32
	l2DRAMChan int32
	classOf    []int32
	classes    []evClass
	counts     []int64 // events per class
}

func buildEventIndex(bt *BehaviorTrace) *eventIndex {
	nm := len(bt.Modules)
	idx := &eventIndex{
		cpuChan:    make([]int32, nm),
		backChan:   make([]int32, nm),
		directChan: -1,
		l2DRAMChan: -1,
		classOf:    make([]int32, bt.NumEvents()),
	}
	for m := range idx.backChan {
		idx.backChan[m] = -1
	}
	for ci, ch := range bt.Channels {
		switch ch.Kind {
		case mem.ChanCPUModule:
			idx.cpuChan[ch.Module] = int32(ci)
		case mem.ChanModuleDRAM, mem.ChanModuleL2:
			idx.backChan[ch.Module] = int32(ci)
		case mem.ChanCPUDRAM:
			idx.directChan = int32(ci)
		case mem.ChanL2DRAM:
			idx.l2DRAMChan = int32(ci)
		}
	}
	type classKey struct {
		dem, demL2 int32
		route      int16
		size       uint8
		hit, pref  bool
	}
	seen := map[classKey]int32{}
	for i := range bt.Route {
		k := classKey{
			route: bt.Route[i],
			size:  bt.Size[i],
			hit:   bt.Flags[i]&flagHit != 0,
			pref:  bt.PrefBytes[i] > 0,
			dem:   bt.DemandBytes[i],
			demL2: bt.DemandL2Off[i],
		}
		ci, ok := seen[k]
		if !ok {
			c := evClass{
				chans: [3]int32{-1, -1, -1},
				route: k.route, size: k.size, hit: k.hit,
				dem: k.dem, demL2: k.demL2,
			}
			if k.route < 0 {
				c.chans[0] = idx.directChan
				c.spliceOK = true
			} else {
				c.chans[0] = idx.cpuChan[k.route]
				kind := bt.Modules[k.route].Kind
				c.spliceOK = kind != mem.KindStream && kind != mem.KindDMA && !k.pref
				if k.dem > 0 {
					c.chans[1] = idx.backChan[k.route]
					if c.chans[1] == -1 {
						c.spliceOK = false
					}
					if bt.HasL2 && k.demL2 > 0 && idx.l2DRAMChan != -1 {
						c.chans[2] = idx.l2DRAMChan
					}
				}
			}
			ci = int32(len(idx.classes))
			idx.classes = append(idx.classes, c)
			idx.counts = append(idx.counts, 0)
			seen[k] = ci
		}
		idx.classOf[i] = ci
		idx.counts[ci]++
	}
	return idx
}

// eventIdx returns the trace's delta-replay event index, building it on
// the first call and caching it on the trace. Safe for concurrent use;
// the trace is immutable once captured.
func (bt *BehaviorTrace) eventIdx() *eventIndex {
	bt.evIdxOnce.Do(func() { bt.evIdx = buildEventIndex(bt) })
	return bt.evIdx
}

// newResidue assembles a residue from a completed recording pass,
// precomputing the per-class latency aggregates the delta walk splices
// from.
func newResidue(arch *connect.Arch, cont []bool, lat []int32, idx *eventIndex) *Residue {
	ncls := len(idx.classes)
	latSum := make([]int64, ncls)
	latHist := make([]int64, ncls*numLatBuckets)
	for i, ci := range idx.classOf {
		l := int(lat[i])
		latSum[ci] += int64(l)
		latHist[int(ci)*numLatBuckets+latBucket(l)]++
	}
	return &Residue{
		arch:    arch,
		sigs:    ChannelSignatures(arch),
		cont:    append([]bool(nil), cont...),
		lat:     lat,
		idx:     idx,
		latSum:  latSum,
		latHist: latHist,
	}
}

// ReplayResidue replays one architecture like Replay and additionally
// returns its timing residue for later ReplayDelta calls. The Result is
// bit-exact equal to Replay's. The residue is nil (with a valid Result)
// in the pathological case of a per-event latency overflowing int32.
func ReplayResidue(bt *BehaviorTrace, arch *connect.Arch) (*Result, *Residue, error) {
	results, residues, err := ReplayBatchResidue(bt, []*connect.Arch{arch}, []bool{true})
	if err != nil {
		return nil, nil, err
	}
	return results[0], residues[0], nil
}

// ReplayBatchResidue is ReplayBatch with residue capture: archs[i]'s
// residue is returned when want[i] is true. Results are bit-exact equal
// to ReplayBatch's; all returned residues share one event index for the
// trace. A wanted residue is nil when a per-event latency overflowed
// int32 (its Result is still valid).
func ReplayBatchResidue(bt *BehaviorTrace, archs []*connect.Arch, want []bool) ([]*Result, []*Residue, error) {
	if len(want) != len(archs) {
		return nil, nil, fmt.Errorf("sim: residue want mask covers %d archs, batch has %d", len(want), len(archs))
	}
	for i, a := range archs {
		if a == nil {
			return nil, nil, fmt.Errorf("sim: batch arch %d is nil", i)
		}
		if err := checkReplayArch(bt, a); err != nil {
			return nil, nil, fmt.Errorf("sim: batch arch %d: %w", i, err)
		}
	}
	if len(archs) == 0 {
		return nil, nil, nil
	}
	b := newBatchReplayer(bt, archs)
	b.rec = make([][]int32, len(archs))
	b.recOver = make([]bool, len(archs))
	for a := range archs {
		if want[a] {
			b.rec[a] = make([]int32, 0, bt.NumEvents())
		}
	}
	b.run()
	idx := bt.eventIdx()
	results := make([]*Result, len(archs))
	residues := make([]*Residue, len(archs))
	for a := range archs {
		results[a] = &b.res[a]
		if want[a] && !b.recOver[a] {
			residues[a] = newResidue(archs[a], b.cont[a*b.nc:(a+1)*b.nc], b.rec[a], idx)
		}
	}
	return results, residues, nil
}

// ReplayDelta re-times a sibling architecture against a base residue,
// recomputing only events that touch changed or contended channels and
// splicing everything else from the base. The Result is bit-exact equal
// to Replay(bt, arch). When wantResidue is true a residue for the
// sibling itself is returned (nil on int32 latency overflow), so delta
// replays chain down a tree of candidates. The returned DeltaInfo
// reports the reuse achieved; Fallback is set when no event was
// spliceable and a full replay ran instead.
func ReplayDelta(bt *BehaviorTrace, base *Residue, arch *connect.Arch, wantResidue bool) (*Result, *Residue, *DeltaInfo, error) {
	if base == nil {
		return nil, nil, nil, fmt.Errorf("sim: delta replay needs a base residue")
	}
	results, residues, infos, err := ReplayDeltaBatch(bt, []*Residue{base}, []*connect.Arch{arch}, []bool{wantResidue})
	if err != nil {
		return nil, nil, nil, err
	}
	return results[0], residues[0], infos[0], nil
}

// ReplayDeltaBatch re-times K sibling architectures, each against its
// own base residue, in a single pass over the event trace: each
// event's class is resolved once and every sibling either splices its
// base's contribution or recomputes the event at its own clock, so
// siblings share the per-event decode exactly as ReplayBatch members
// do. bases[i] may be shared between members and may be nil, in which
// case member i is fully recomputed. results[i] is bit-exact equal to
// Replay(bt, archs[i]); residues[i] is captured when want[i] is true
// (nil on int32 latency overflow); infos[i] reports the per-sibling
// reuse. A sibling with no spliceable event at all — a nil base
// included — is flagged Fallback and fully recomputed inside the same
// shared walk.
func ReplayDeltaBatch(bt *BehaviorTrace, bases []*Residue, archs []*connect.Arch, want []bool) ([]*Result, []*Residue, []*DeltaInfo, error) {
	if len(bases) != len(archs) {
		return nil, nil, nil, fmt.Errorf("sim: delta bases cover %d archs, batch has %d", len(bases), len(archs))
	}
	if len(want) != len(archs) {
		return nil, nil, nil, fmt.Errorf("sim: residue want mask covers %d archs, batch has %d", len(want), len(archs))
	}
	for i, a := range archs {
		if a == nil {
			return nil, nil, nil, fmt.Errorf("sim: delta arch %d is nil", i)
		}
		if err := checkReplayArch(bt, a); err != nil {
			return nil, nil, nil, fmt.Errorf("sim: delta arch %d: %w", i, err)
		}
	}
	var idx *eventIndex
	for i, base := range bases {
		if base == nil {
			continue
		}
		if len(base.sigs) != len(bt.Channels) || len(base.lat) != bt.NumEvents() {
			return nil, nil, nil, fmt.Errorf("sim: residue %d does not match behavior trace (%d channels / %d events, residue has %d / %d)",
				i, len(bt.Channels), bt.NumEvents(), len(base.sigs), len(base.lat))
		}
		if idx == nil {
			idx = base.idx
		}
	}
	if len(archs) == 0 {
		return nil, nil, nil, nil
	}
	if idx == nil {
		idx = bt.eventIdx()
	}

	b := newBatchReplayer(bt, archs)
	anyRec := false
	for _, w := range want {
		if w {
			anyRec = true
			break
		}
	}
	if anyRec {
		b.rec = make([][]int32, len(archs))
		b.recOver = make([]bool, len(archs))
		for a, w := range want {
			if w {
				b.rec[a] = make([]int32, 0, bt.NumEvents())
			}
		}
	}

	// Per sibling: a channel is clean when its timing signature matches
	// the sibling's own base and it is uncontended on both architectures
	// (signature equality already implies equal contention status; the
	// base flag is checked for defense in depth). The per-event splice
	// decision lifts to the class level — touched channels are a class
	// property, so a class splices iff its structure permits it and all
	// its touched channels are clean.
	nc := len(bt.Channels)
	ncls := len(idx.classes)
	infos := make([]*DeltaInfo, len(archs))
	spliceCls := make([]bool, len(archs)*ncls)
	chanOK := make([]bool, nc) // per-sibling scratch
	anySplice := false
	for a, arch := range archs {
		info := &DeltaInfo{}
		infos[a] = info
		base := bases[a]
		if base == nil {
			// No residue to splice from: the sibling rides the shared
			// walk fully recomputed.
			info.ChannelsChanged = nc
			info.Fallback = true
			continue
		}
		sigs := ChannelSignatures(arch)
		for ch := 0; ch < nc; ch++ {
			chanOK[ch] = sigs[ch] == base.sigs[ch] && !b.cont[a*nc+ch] && !base.cont[ch]
			if chanOK[ch] {
				info.ChannelsReused++
			}
		}
		info.ChannelsChanged = nc - info.ChannelsReused
		var spliceable int64
		for c := range idx.classes {
			cl := &idx.classes[c]
			ok := cl.spliceOK
			if ok {
				for _, ch := range cl.chans {
					if ch >= 0 && !chanOK[ch] {
						ok = false
						break
					}
				}
			}
			spliceCls[a*ncls+c] = ok
			if ok {
				spliceable += idx.counts[c]
			}
		}
		if spliceable == 0 {
			// Provable per-sibling fallback: nothing to splice. The
			// sibling still rides the shared walk, fully recomputed.
			info.Fallback = true
		} else {
			anySplice = true
		}
	}

	if !anySplice {
		// Every sibling fell back: the walk is exactly a batched full
		// replay, fast paths included.
		for a := range infos {
			infos[a].RecomputedEvents = int64(bt.NumEvents())
		}
		b.run()
	} else {
		// Precompute each spliceable (sibling, class) pair's energy-add
		// sequence: the exact table values, in the exact order, that the
		// reference event path adds for one event of the class.
		leans := make([]spliceLean, len(archs)*ncls)
		for a := range archs {
			for c := range idx.classes {
				if spliceCls[a*ncls+c] {
					leans[a*ncls+c] = spliceEnergies(b, a, &idx.classes[c])
				}
			}
		}
		runDeltaBatch(b, idx, bases, spliceCls, leans, infos)
	}

	results := make([]*Result, len(archs))
	residues := make([]*Residue, len(archs))
	for a := range archs {
		results[a] = &b.res[a]
		if want[a] && !b.recOver[a] {
			residues[a] = newResidue(archs[a], b.cont[a*nc:(a+1)*nc], b.rec[a], idx)
		}
	}
	return results, residues, infos, nil
}

// spliceLean is the per-(sibling, class) energy-add sequence of one
// spliced event: up to 5 float64 values added to EnergyNJ in the exact
// order (and with the exact operands) of the reference event path.
// Everything else a spliced event contributes is integer-valued and
// therefore associative — it is accounted per class after the walk by
// spliceAggregate, leaving the walk's splice path with only the float
// adds and the clock advance.
type spliceLean struct {
	vals [5]float64
	n    int
}

// spliceEnergies derives sibling a's energy-add sequence for one event
// of class c. Sums that the reference path adds in a single operation
// (off-chip table energy + DRAM energy) stay a single operation here.
func spliceEnergies(b *batchReplayer, a int, c *evClass) spliceLean {
	bt := b.bt
	var le spliceLean
	if c.route < 0 {
		x := a*b.nc + int(c.chans[0])
		le.vals[0] = b.tabs[x].en[c.size] + bt.DRAMEnergy
		le.n = 1
		return le
	}
	le.vals[0] = b.tabs[a*b.nc+int(c.chans[0])].en[c.size]
	le.vals[1] = bt.Modules[c.route].Energy
	le.n = 2
	if c.dem > 0 {
		xb := a*b.nc + int(c.chans[1])
		n := int(c.dem)
		if !bt.HasL2 {
			le.vals[2] = b.tabs[xb].en[n] + bt.DRAMEnergy
			le.n = 3
		} else {
			le.vals[2] = b.tabs[xb].en[n]
			le.vals[3] = bt.L2Energy
			le.n = 4
			if lch := c.chans[2]; lch >= 0 {
				le.vals[4] = b.tabs[a*b.nc+int(lch)].en[int(c.demL2)] + bt.DRAMEnergy
				le.n = 5
			}
		}
	}
	return le
}

// spliceAggregate books the integer contributions of all n spliced
// events of one class for sibling a in one shot: channel counters,
// hit/miss and issue counts scale linearly with the event count, and
// the latency figures come from the base residue's per-class
// aggregates. The clock and energy were already advanced during the
// walk; scheduler totals are finalized by the caller afterwards.
func spliceAggregate(b *batchReplayer, a int, c *evClass, n, latSum int64, latHist []int64) {
	r := &b.res[a]
	size := int64(c.size)
	issue := func(x int) {
		if b.comps[x].Split {
			b.fastIssues[a] += 2 * n
		} else {
			b.fastIssues[a] += n
		}
	}
	if c.route < 0 {
		ch := c.chans[0]
		r.ChannelTransfers[ch] += n
		r.Misses += n
		r.OffChipBytes += n * size
		r.ChannelBytes[ch] += n * size
		issue(a*b.nc + int(ch))
	} else {
		ch := c.chans[0]
		b.fastIssues[a] += n
		r.ChannelBytes[ch] += n * size
		r.ChannelTransfers[ch] += n
		if c.hit {
			r.Hits += n
		} else {
			r.Misses += n
		}
		if c.dem > 0 {
			bc := c.chans[1]
			db := int64(c.dem)
			r.ChannelTransfers[bc] += n
			r.ChannelBytes[bc] += n * db
			if !b.bt.HasL2 {
				r.OffChipBytes += n * db
				issue(a*b.nc + int(bc))
			} else {
				b.fastIssues[a] += n
				if lch := c.chans[2]; lch >= 0 {
					dl := int64(c.demL2)
					r.ChannelTransfers[lch] += n
					r.OffChipBytes += n * dl
					r.ChannelBytes[lch] += n * dl
					issue(a*b.nc + int(lch))
				}
			}
		}
	}
	r.Accesses += n
	r.TotalLatency += latSum
	for k, h := range latHist {
		r.LatencyHist[k] += h
	}
	r.Cycles += latSum + n
}

// runDeltaBatch is the shared delta walk: the batch replayer's window
// loop with the per-event, per-sibling dispatch replaced by the
// class-level splice decision. A spliced event performs only its
// ordered energy adds, the residue-latency recording and the clock
// advance — its integer counters are aggregated per class afterwards.
// A recomputed pure on-chip hit keeps the batch replayer's
// table-lookup fast path; everything else runs the full event
// machinery at the sibling's own clock.
func runDeltaBatch(b *batchReplayer, idx *eventIndex, bases []*Residue, spliceCls []bool, leans []spliceLean, infos []*DeltaInfo) {
	bt := b.bt
	nmods := b.nm
	ncls := len(idx.classes)
	classOf := idx.classOf
	// Flat per-sibling base-latency views; a fallback sibling (nil base)
	// never reaches the splice path, so its entry stays nil.
	baseLat := make([][]int32, b.k)
	for a, base := range bases {
		if base != nil {
			baseLat[a] = base.lat
		}
	}
	pos := 0
	for wi, wlen := range bt.WindowLen {
		if bt.GapCycles[wi] > 0 {
			rs := bt.Resync[wi*nmods*2 : (wi+1)*nmods*2]
			for a := 0; a < b.k; a++ {
				gapStart := b.now[a]
				b.now[a] += bt.GapCycles[wi]
				b.applyResync(a, rs, gapStart)
			}
		}
		for i := pos; i < pos+int(wlen); i++ {
			ci := int(classOf[i])
			pure := b.pure[i]
			c := &idx.classes[ci]
			for a := 0; a < b.k; a++ {
				if spliceCls[a*ncls+ci] {
					le := &leans[a*ncls+ci]
					r := &b.res[a]
					for j := 0; j < le.n; j++ {
						r.EnergyNJ += le.vals[j]
					}
					lat := baseLat[a][i]
					if b.rec != nil && b.rec[a] != nil {
						// Base latencies fit int32 by construction, so
						// the recordLat overflow clamp cannot trigger.
						b.rec[a] = append(b.rec[a], lat)
					}
					b.now[a] += int64(lat) + 1
					continue
				}
				if pure {
					x := a*b.nc + int(c.chans[0])
					if !b.cont[x] {
						// Pure on-chip hit on an uncontended cluster,
						// exactly as in run(): table lookups only, the
						// two energy adds separate and ordered.
						ct := b.tabs[x]
						elat := int64(ct.cyc[c.size]) + int64(bt.Modules[c.route].Latency)
						if b.rec != nil && b.rec[a] != nil {
							b.recordLat(a, int(elat))
						}
						r := &b.res[a]
						r.EnergyNJ += ct.en[c.size]
						r.EnergyNJ += bt.Modules[c.route].Energy
						r.ChannelBytes[c.chans[0]] += int64(c.size)
						r.ChannelTransfers[c.chans[0]]++
						r.Hits++
						b.fastIssues[a]++
						r.Accesses++
						r.TotalLatency += elat
						r.LatencyHist[latBucket(int(elat))]++
						r.Cycles += elat + 1
						b.now[a] += elat + 1
						continue
					}
				}
				b.slowEvent(a, i)
			}
		}
		pos += int(wlen)
	}
	for a := 0; a < b.k; a++ {
		var spliced int64
		for c := range idx.classes {
			if spliceCls[a*ncls+c] {
				n := idx.counts[c]
				spliceAggregate(b, a, &idx.classes[c], n,
					bases[a].latSum[c], bases[a].latHist[c*numLatBuckets:(c+1)*numLatBuckets])
				spliced += n
			}
		}
		infos[a].SplicedEvents = spliced
		infos[a].RecomputedEvents = int64(bt.NumEvents()) - spliced
		issues, conflicts := schedTotals(b.archScheds[a])
		b.res[a].SchedIssues = issues + b.fastIssues[a]
		b.res[a].SchedConflicts = conflicts
	}
}
