package rtable

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableBasics(t *testing.T) {
	rt := New("bus", 2)
	rt.Stage(0, 0, 1) // arbiter cycle 0
	rt.Stage(1, 1, 2) // data cycles 1-2
	if rt.Length() != 3 {
		t.Fatalf("Length = %d, want 3", rt.Length())
	}
	s := rt.String()
	if !strings.Contains(s, "X..") || !strings.Contains(s, ".XX") {
		t.Fatalf("String rendering wrong:\n%s", s)
	}
}

func TestTableStagePanics(t *testing.T) {
	rt := New("x", 1)
	for _, f := range []func(){
		func() { rt.Stage(1, 0, 1) },
		func() { rt.Stage(-1, 0, 1) },
		func() { rt.Stage(0, 63, 2) },
		func() { rt.Stage(0, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Stage accepted invalid arguments")
				}
			}()
			f()
		}()
	}
}

func TestConflictFree(t *testing.T) {
	// Single resource busy for 3 cycles: spacings 1,2 conflict, 3+ free.
	rt := New("simple", 1).Stage(0, 0, 3)
	for k := 1; k <= 2; k++ {
		if rt.ConflictFree(k) {
			t.Fatalf("spacing %d should conflict", k)
		}
	}
	if !rt.ConflictFree(3) || !rt.ConflictFree(64) || !rt.ConflictFree(100) {
		t.Fatal("large spacings should be conflict free")
	}
	if rt.ConflictFree(-1) {
		t.Fatal("negative spacing cannot be conflict free")
	}
}

func TestForbiddenLatenciesClassic(t *testing.T) {
	// The classic non-contiguous example: resource used at cycles 0 and 3.
	rt := New("classic", 1)
	rt.Stage(0, 0, 1).Stage(0, 3, 1)
	fl := rt.ForbiddenLatencies()
	if len(fl) != 1 || fl[0] != 3 {
		t.Fatalf("forbidden latencies = %v, want [3]", fl)
	}
	// Spacing 1 repeated collides transitively (ops 0 and 3 share cycle
	// 3), so the smallest sustainable interval is 2.
	if rt.MinInitiationInterval() != 2 {
		t.Fatalf("MII = %d, want 2", rt.MinInitiationInterval())
	}
}

func TestMIIFullyBusy(t *testing.T) {
	rt := New("block", 1).Stage(0, 0, 4)
	if got := rt.MinInitiationInterval(); got != 4 {
		t.Fatalf("MII of a 4-cycle blocking op = %d, want 4", got)
	}
}

func TestMIIRespectsMultiples(t *testing.T) {
	// Occupied at cycles 0 and 4: k=2 is conflict-free for one pair but
	// its multiple 4 collides, so MII must skip 2.
	rt := New("mult", 1)
	rt.Stage(0, 0, 1).Stage(0, 4, 1)
	if rt.ConflictFree(4) {
		t.Fatal("spacing 4 should conflict")
	}
	mii := rt.MinInitiationInterval()
	if mii == 2 || mii == 4 {
		t.Fatalf("MII = %d, but multiples of it collide", mii)
	}
	if mii != 3 {
		t.Fatalf("MII = %d, want 3", mii)
	}
}

func TestEmptyTable(t *testing.T) {
	rt := New("empty", 1)
	if rt.Length() != 0 || rt.MinInitiationInterval() != 1 || len(rt.ForbiddenLatencies()) != 0 {
		t.Fatal("empty table invariants broken")
	}
	if len(rt.Stages()) != 0 {
		t.Fatal("empty table has stages")
	}
}

func TestStagesRoundTrip(t *testing.T) {
	rt := New("rt", 3)
	rt.Stage(0, 0, 2).Stage(1, 2, 3).Stage(2, 1, 1).Stage(0, 5, 1)
	stages := rt.Stages()
	rebuilt := New("rb", 3)
	for _, s := range stages {
		rebuilt.Stage(s.Res, s.Start, s.Len)
	}
	for r := range rt.Rows {
		if rt.Rows[r] != rebuilt.Rows[r] {
			t.Fatalf("resource %d: %b != %b", r, rt.Rows[r], rebuilt.Rows[r])
		}
	}
}

func TestSchedulerSerializesBlockingOps(t *testing.T) {
	s := NewScheduler(1)
	stages := []Stage{{Res: 0, Start: 0, Len: 4}}
	t0 := s.EarliestIssue(0, stages)
	t1 := s.EarliestIssue(0, stages)
	t2 := s.EarliestIssue(0, stages)
	if t0 != 0 || t1 != 4 || t2 != 8 {
		t.Fatalf("blocking ops should serialize at 0,4,8; got %d,%d,%d", t0, t1, t2)
	}
}

func TestSchedulerPipelinedOverlap(t *testing.T) {
	// Two resources: arbiter (1 cycle) then data (1 cycle): II = 1.
	s := NewScheduler(2)
	stages := []Stage{{Res: 0, Start: 0, Len: 1}, {Res: 1, Start: 1, Len: 1}}
	times := make([]int64, 4)
	for i := range times {
		times[i] = s.EarliestIssue(0, stages)
	}
	for i, want := range []int64{0, 1, 2, 3} {
		if times[i] != want {
			t.Fatalf("pipelined issue %d at %d, want %d", i, times[i], want)
		}
	}
}

func TestSchedulerRespectsRequestTime(t *testing.T) {
	s := NewScheduler(1)
	stages := []Stage{{Res: 0, Start: 0, Len: 2}}
	if got := s.EarliestIssue(100, stages); got != 100 {
		t.Fatalf("idle unit should grant at request time, got %d", got)
	}
	if got := s.EarliestIssue(101, stages); got != 102 {
		t.Fatalf("overlapping request should be pushed to 102, got %d", got)
	}
	if got := s.EarliestIssue(-5, stages); got < 0 {
		t.Fatalf("negative request time should clamp to 0, got %d", got)
	}
}

func TestSchedulerRelease(t *testing.T) {
	s := NewScheduler(1)
	stages := []Stage{{Res: 0, Start: 0, Len: 8}}
	t0 := s.EarliestIssue(0, stages)
	s.Release(t0, stages)
	if got := s.EarliestIssue(0, stages); got != 0 {
		t.Fatalf("released slot should be reusable at 0, got %d", got)
	}
}

func TestSchedulerWindowAdvance(t *testing.T) {
	s := NewScheduler(1)
	stages := []Stage{{Res: 0, Start: 0, Len: 2}}
	var last int64
	// Jump far beyond the window several times; scheduling must remain
	// monotone and conflict-free within each epoch.
	for _, at := range []int64{0, 10_000, 1_000_000, 50_000_000} {
		a := s.EarliestIssue(at, stages)
		b := s.EarliestIssue(at, stages)
		if a < at || b != a+2 {
			t.Fatalf("after jump to %d: got %d, %d", at, a, b)
		}
		if a < last {
			t.Fatal("time went backwards")
		}
		last = b
	}
}

func TestSchedulerPanicsOnBadResource(t *testing.T) {
	s := NewScheduler(1)
	defer func() {
		if recover() == nil {
			t.Fatal("EarliestIssue accepted out-of-range resource")
		}
	}()
	s.EarliestIssue(0, []Stage{{Res: 5, Start: 0, Len: 1}})
}

// Property: ConflictFree(k) is exactly "no resource has two ops k apart",
// verified against a brute-force bit check.
func TestQuickConflictFreeBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := New("q", 2)
		for i := 0; i < 6; i++ {
			rt.Stage(rng.Intn(2), rng.Intn(20), 1+rng.Intn(3))
		}
		for k := 0; k < 25; k++ {
			brute := true
			for _, row := range rt.Rows {
				for c := 0; c+k < 64; c++ {
					if row&(1<<uint(c)) != 0 && row&(1<<uint(c+k)) != 0 {
						brute = false
					}
				}
			}
			if rt.ConflictFree(k) != brute {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a scheduler never double-books a resource — replaying the
// grant times against a brute-force occupancy map finds no overlap.
func TestQuickSchedulerNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler(2)
		occupied := map[int64]bool{} // res*1e9 + cycle
		at := int64(0)
		for i := 0; i < 200; i++ {
			at += int64(rng.Intn(3))
			stages := []Stage{
				{Res: 0, Start: 0, Len: 1 + rng.Intn(2)},
				{Res: 1, Start: 1, Len: 1 + rng.Intn(3)},
			}
			g := s.EarliestIssue(at, stages)
			if g < at {
				return false
			}
			for _, st := range stages {
				for c := 0; c < st.Len; c++ {
					key := int64(st.Res)*1_000_000_000 + g + int64(st.Start+c)
					if occupied[key] {
						return false
					}
					occupied[key] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
