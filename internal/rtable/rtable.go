// Package rtable implements reservation tables, the mechanism the paper
// (following Grun et al.'s RTGEN and Hennessy/Patterson) uses to model
// latency, pipelining and resource conflicts in the connectivity and
// memory architecture. A reservation table records which resource a
// transfer occupies at which relative cycle; a Scheduler finds the
// earliest conflict-free issue slot for a new transfer given everything
// already reserved.
package rtable

import (
	"fmt"
	"math/bits"
	"strings"
)

// Table is a static reservation table: Rows[r] is a bitmask of the cycles
// (bit i = cycle i) during which resource r is occupied by one operation.
// Tables are limited to 64 cycles, ample for bus transfers.
type Table struct {
	Name string
	Rows []uint64
}

// New returns an empty table with the given number of resources.
func New(name string, resources int) *Table {
	return &Table{Name: name, Rows: make([]uint64, resources)}
}

// Stage marks resource res occupied during cycles [start, start+length).
func (t *Table) Stage(res, start, length int) *Table {
	if res < 0 || res >= len(t.Rows) {
		panic(fmt.Sprintf("rtable: resource %d out of range", res))
	}
	if start < 0 || length < 0 || start+length > 64 {
		panic(fmt.Sprintf("rtable: stage [%d,%d) out of the 64-cycle window", start, start+length))
	}
	for c := start; c < start+length; c++ {
		t.Rows[res] |= 1 << uint(c)
	}
	return t
}

// Length returns the number of cycles from issue to the last occupied
// cycle plus one (the table's makespan).
func (t *Table) Length() int {
	max := 0
	for _, row := range t.Rows {
		for c := 63; c >= max; c-- {
			if row&(1<<uint(c)) != 0 {
				max = c + 1
				break
			}
		}
	}
	return max
}

// ConflictFree reports whether a second identical operation can issue k
// cycles after the first without any resource collision.
func (t *Table) ConflictFree(k int) bool {
	if k < 0 {
		return false
	}
	if k >= 64 {
		return true
	}
	for _, row := range t.Rows {
		if row&(row>>uint(k)) != 0 {
			return false
		}
	}
	return true
}

// ForbiddenLatencies returns every k in [1, Length) at which a second
// identical operation collides with the first.
func (t *Table) ForbiddenLatencies() []int {
	var out []int
	for k := 1; k < t.Length(); k++ {
		if !t.ConflictFree(k) {
			out = append(out, k)
		}
	}
	return out
}

// MinInitiationInterval returns the smallest k >= 1 at which identical
// operations can issue back to back indefinitely. For a reservation
// table this equals the smallest conflict-free k, because conflicts
// between operation n and n+2 at spacing 2k are a subset of shifts
// already checked at k (row&row>>2k != 0 implies row&row>>k != 0 is not
// guaranteed in general, so we verify multiples explicitly).
func (t *Table) MinInitiationInterval() int {
	length := t.Length()
	if length == 0 {
		return 1
	}
	for k := 1; k <= length; k++ {
		ok := true
		for m := k; m < length && ok; m += k {
			if !t.ConflictFree(m) {
				ok = false
			}
		}
		if ok {
			return k
		}
	}
	return length
}

// String renders the table as an X/. grid for debugging.
func (t *Table) String() string {
	length := t.Length()
	if length == 0 {
		length = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", t.Name)
	for r, row := range t.Rows {
		fmt.Fprintf(&b, "  r%d ", r)
		for c := 0; c < length; c++ {
			if row&(1<<uint(c)) != 0 {
				b.WriteByte('X')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Stage describes one resource occupation of a dynamic request: resource
// Res is held for cycles [Start, Start+Len) relative to issue.
type Stage struct {
	Res   int
	Start int
	Len   int
}

// Stages converts a static table into the equivalent stage list.
func (t *Table) Stages() []Stage {
	var out []Stage
	for r, row := range t.Rows {
		c := 0
		for c < 64 {
			if row&(1<<uint(c)) == 0 {
				c++
				continue
			}
			start := c
			for c < 64 && row&(1<<uint(c)) != 0 {
				c++
			}
			out = append(out, Stage{Res: r, Start: start, Len: c - start})
		}
	}
	return out
}

// Scheduler tracks the reservations of one hardware unit (e.g. one bus)
// over absolute time and answers earliest-issue queries. It maintains a
// sliding bitmap window per resource; reservations may not be placed
// more than windowCycles in the past once time has advanced.
type Scheduler struct {
	res    int
	base   int64 // absolute cycle of bit 0
	words  int   // window size in 64-bit words per resource
	window [][]uint64
	stats  Stats
}

// Stats counts the scheduling activity of one Scheduler. The counters
// are plain fields bumped on the hot path (no atomics: a scheduler is
// owned by one simulation goroutine) and are read after the run, when
// the engine folds them into the exploration's metrics registry.
type Stats struct {
	// Issues counts EarliestIssue calls (one per transfer scheduled).
	Issues int64
	// Conflicts counts busy-run collisions skipped while searching for
	// an issue slot; Conflicts/Issues measures bus contention.
	Conflicts int64
}

const defaultWindowWords = 64 // 4096-cycle window

// NewScheduler returns a scheduler over the given number of resources.
func NewScheduler(resources int) *Scheduler {
	s := &Scheduler{res: resources, words: defaultWindowWords}
	s.window = make([][]uint64, resources)
	for i := range s.window {
		s.window[i] = make([]uint64, s.words)
	}
	return s
}

// advance slides the window so that absolute cycle t is representable.
func (s *Scheduler) advance(t int64) {
	if t < s.base+int64((s.words-1)*64) {
		return
	}
	// Slide so that t sits in the first quarter of the window.
	newBase := t - int64(s.words*16)
	if newBase < s.base {
		newBase = s.base
	}
	shiftWords := int((newBase - s.base + 63) / 64)
	if shiftWords <= 0 {
		return
	}
	if shiftWords >= s.words {
		// Jumped past the whole window: everything old is forgotten.
		for r := range s.window {
			for w := range s.window[r] {
				s.window[r][w] = 0
			}
		}
		s.base += int64(shiftWords * 64)
		return
	}
	for r := range s.window {
		copy(s.window[r], s.window[r][shiftWords:])
		for w := s.words - shiftWords; w < s.words; w++ {
			s.window[r][w] = 0
		}
	}
	s.base += int64(shiftWords * 64)
}

// maskFrom returns a word mask covering n bits starting at bit
// (bit+n <= 64).
func maskFrom(bit uint, n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1)<<uint(n) - 1) << bit
}

// firstBusy returns the absolute cycle of the first reserved cycle of
// res in [t, t+n), or -1 when the whole range is free. Cycles outside
// the window (forgotten history, far future) read as free.
func (s *Scheduler) firstBusy(res int, t int64, n int) int64 {
	if n <= 0 {
		return -1
	}
	if t < s.base {
		skip := s.base - t
		if skip >= int64(n) {
			return -1
		}
		t = s.base
		n -= int(skip)
	}
	off := t - s.base
	w := int(off >> 6)
	bit := uint(off & 63)
	row := s.window[res]
	for n > 0 && w < s.words {
		take := 64 - int(bit)
		if take > n {
			take = n
		}
		if hit := row[w] & maskFrom(bit, take); hit != 0 {
			return s.base + int64(w)<<6 + int64(bits.TrailingZeros64(hit))
		}
		n -= take
		w++
		bit = 0
	}
	return -1
}

// busyRunEnd returns the last cycle of the contiguous reserved run of
// res containing cycle c (which must be reserved and in the window).
func (s *Scheduler) busyRunEnd(res int, c int64) int64 {
	off := c - s.base
	w := int(off >> 6)
	bit := uint(off & 63)
	row := s.window[res]
	for w < s.words {
		if free := ^row[w] >> bit << bit; free != 0 {
			return s.base + int64(w)<<6 + int64(bits.TrailingZeros64(free)) - 1
		}
		w++
		bit = 0
	}
	return s.base + int64(s.words)<<6 - 1
}

// markRange reserves the cycles [t, t+n) of res, clamped to the window.
func (s *Scheduler) markRange(res int, t int64, n int) {
	if t < s.base {
		skip := s.base - t
		if skip >= int64(n) {
			return
		}
		t = s.base
		n -= int(skip)
	}
	off := t - s.base
	w := int(off >> 6)
	bit := uint(off & 63)
	row := s.window[res]
	for n > 0 && w < s.words {
		take := 64 - int(bit)
		if take > n {
			take = n
		}
		row[w] |= maskFrom(bit, take)
		n -= take
		w++
		bit = 0
	}
}

// EarliestIssue returns the first cycle >= at where stages can be
// reserved without conflicting with prior reservations, and reserves
// them. Stages must reference resources < the scheduler's count.
func (s *Scheduler) EarliestIssue(at int64, stages []Stage) int64 {
	if at < 0 {
		at = 0
	}
	maxEnd := 0
	for _, st := range stages {
		if st.Res < 0 || st.Res >= s.res {
			panic(fmt.Sprintf("rtable: stage resource %d out of range (have %d)", st.Res, s.res))
		}
		if end := st.Start + st.Len; end > maxEnd {
			maxEnd = end
		}
	}
	s.advance(at + int64(maxEnd))
	s.stats.Issues++
	t := at
search:
	for {
		for _, st := range stages {
			c := s.firstBusy(st.Res, t+int64(st.Start), st.Len)
			if c < 0 {
				continue
			}
			// The stage overlaps a reserved run; no issue slot clears it
			// before the run ends, so jump straight past.
			s.stats.Conflicts++
			next := s.busyRunEnd(st.Res, c) - int64(st.Start) + 1
			if next <= t {
				next = t + 1
			}
			t = next
			s.advance(t + int64(maxEnd))
			continue search
		}
		break
	}
	for _, st := range stages {
		s.markRange(st.Res, t+int64(st.Start), st.Len)
	}
	return t
}

// Stats returns the scheduler's activity counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Release frees the cycles of stages reserved at issue time t. It is
// used by split-transaction busses that give the bus back during the
// slave's dead time.
func (s *Scheduler) Release(t int64, stages []Stage) {
	for _, st := range stages {
		abs := t + int64(st.Start)
		n := st.Len
		if abs < s.base {
			skip := s.base - abs
			if skip >= int64(n) {
				continue
			}
			abs = s.base
			n -= int(skip)
		}
		off := abs - s.base
		w := int(off >> 6)
		bit := uint(off & 63)
		row := s.window[st.Res]
		for n > 0 && w < s.words {
			take := 64 - int(bit)
			if take > n {
				take = n
			}
			row[w] &^= maskFrom(bit, take)
			n -= take
			w++
			bit = 0
		}
	}
}
