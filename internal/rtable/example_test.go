package rtable_test

import (
	"fmt"

	"memorex/internal/rtable"
)

// A pipelined bus transfer: one arbitration cycle, two data beats. The
// reservation table shows the resource occupation, and the scheduler
// overlaps back-to-back transfers on the arbiter/data boundary.
func ExampleTable() {
	t := rtable.New("bus", 2)
	t.Stage(0, 0, 1) // arbiter, cycle 0
	t.Stage(1, 1, 2) // data path, cycles 1-2
	fmt.Print(t)
	fmt.Println("MII:", t.MinInitiationInterval())
	// Output:
	// bus:
	//   r0 X..
	//   r1 .XX
	// MII: 2
}

func ExampleScheduler_EarliestIssue() {
	s := rtable.NewScheduler(1)
	stages := []rtable.Stage{{Res: 0, Start: 0, Len: 3}}
	fmt.Println(s.EarliestIssue(0, stages)) // bus idle: granted at once
	fmt.Println(s.EarliestIssue(1, stages)) // busy until cycle 3
	// Output:
	// 0
	// 3
}
