// Package profile extracts per-data-structure access-pattern statistics
// from a memory trace — the APEX step's input. For every data structure
// it measures traffic, footprint, stride behaviour, store fraction, and
// successor consistency (how predictable the next address is given the
// current one — the property that makes a structure a candidate for the
// paper's "DMA-like" self-indirect memory modules), then classifies the
// structure into a pattern class.
package profile

import (
	"fmt"
	"sort"

	"memorex/internal/trace"
)

// Class is the detected access-pattern class of a data structure.
type Class int

// Pattern classes.
const (
	// ClassStream is a forward sequential sweep (unit or near-unit
	// element stride): the stream-buffer target.
	ClassStream Class = iota
	// ClassStrided is a constant non-unit stride.
	ClassStrided
	// ClassSelfIndirect is a value-dependent but consistent chain
	// (linked lists, self-indirect array walks): the LL-DMA target.
	ClassSelfIndirect
	// ClassIndexed is irregular with a small hot footprint: the
	// SRAM-mapping target.
	ClassIndexed
	// ClassRandom is irregular with a large footprint: best cached.
	ClassRandom
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassStream:
		return "stream"
	case ClassStrided:
		return "strided"
	case ClassSelfIndirect:
		return "self-indirect"
	case ClassIndexed:
		return "indexed"
	case ClassRandom:
		return "random"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Stats summarizes the accesses of one data structure.
type Stats struct {
	DS   trace.DSID
	Name string
	// Count is the number of accesses; Bytes the bytes moved.
	Count int64
	Bytes int64
	// StoreFrac is the fraction of accesses that are stores.
	StoreFrac float64
	// FootprintBytes is the number of distinct 32-byte blocks touched
	// times 32 — the working-set size relevant to SRAM mapping.
	FootprintBytes int64
	// RegionBytes is the declared size of the structure.
	RegionBytes int64
	// StreamFrac is the fraction of accesses at a small positive delta
	// from the previous access to the same structure.
	StreamFrac float64
	// DominantStride is the most common non-zero inter-access delta.
	DominantStride int32
	// DominantFrac is the fraction of accesses at that delta.
	DominantFrac float64
	// ChainRatio is the successor-consistency: the fraction of
	// transitions where the address seen after address X equals the
	// successor seen the previous time X was visited. Near 1 for
	// pointer chains, near 0 for random probing.
	ChainRatio float64
	// MedianReuseGap is the median number of this structure's accesses
	// between consecutive touches of the same 32-byte block (temporal
	// reuse distance). 0 means blocks are never revisited. Small gaps
	// mean even a tiny cache captures the locality; huge gaps mean only
	// capacity on the order of the footprint helps.
	MedianReuseGap int64
	// ReuseFraction is the fraction of accesses that revisit a block
	// touched before.
	ReuseFraction float64
	// Class is the resulting classification.
	Class Class
}

// Share returns this structure's fraction of total trace accesses.
func (s *Stats) Share(total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(s.Count) / float64(total)
}

// Profile holds the per-structure statistics of a trace, ordered by
// descending access count (most active first, as APEX wants).
type Profile struct {
	Trace *trace.Trace
	Total int64
	Stats []Stats
}

// ByDS returns the stats for a given data structure, or nil.
func (p *Profile) ByDS(id trace.DSID) *Stats {
	for i := range p.Stats {
		if p.Stats[i].DS == id {
			return &p.Stats[i]
		}
	}
	return nil
}

// ByName returns the stats for the named data structure, or nil.
func (p *Profile) ByName(name string) *Stats {
	for i := range p.Stats {
		if p.Stats[i].Name == name {
			return &p.Stats[i]
		}
	}
	return nil
}

// classification thresholds. The chain threshold is deliberately low:
// successor consistency measured on addresses underestimates how well a
// hardware pointer-walker predicts (probe chains restart at every new
// lookup), and even a 25-30% consistent structure profits from a
// self-indirect prefetcher — the paper's compress hash table is exactly
// such a case (its architecture c gains "roughly 10%").
const (
	streamThreshold = 0.70
	chainThreshold  = 0.25
	hotFootprint    = 16 * 1024
)

// Analyze profiles the trace.
func Analyze(t *trace.Trace) *Profile {
	n := len(t.DS)
	type state struct {
		count, bytes, stores int64
		blocks               map[uint32]int64 // block -> last access ordinal
		strides              map[int32]int64
		smallPos             int64
		transitions          int64
		consistent           int64
		lastAddr             uint32
		seen                 bool
		successor            map[uint32]uint32
		// gapHist[k] counts reuse gaps in [2^k, 2^(k+1)).
		gapHist [33]int64
		reuses  int64
	}
	states := make([]state, n)
	for i := range states {
		states[i].blocks = make(map[uint32]int64)
		states[i].strides = make(map[int32]int64)
		states[i].successor = make(map[uint32]uint32)
	}

	for _, a := range t.Accesses {
		if int(a.DS) >= n {
			continue
		}
		st := &states[a.DS]
		st.count++
		st.bytes += int64(a.Size)
		if a.Kind == trace.Store {
			st.stores++
		}
		block := a.Addr / 32
		if last, ok := st.blocks[block]; ok {
			gap := st.count - last
			st.gapHist[log2u64(uint64(gap))]++
			st.reuses++
		}
		st.blocks[block] = st.count
		if st.seen {
			delta := int32(a.Addr) - int32(st.lastAddr)
			if delta != 0 {
				st.strides[delta]++
			}
			if delta > 0 && delta <= 16 {
				st.smallPos++
			}
			st.transitions++
			if prev, ok := st.successor[st.lastAddr]; ok && prev == a.Addr {
				st.consistent++
			}
			st.successor[st.lastAddr] = a.Addr
		}
		st.lastAddr = a.Addr
		st.seen = true
	}

	p := &Profile{Trace: t, Total: int64(len(t.Accesses))}
	for i := 1; i < n; i++ { // skip the anonymous pseudo-structure
		st := &states[i]
		if st.count == 0 {
			continue
		}
		s := Stats{
			DS:             trace.DSID(i),
			Name:           t.DS[i].Name,
			Count:          st.count,
			Bytes:          st.bytes,
			FootprintBytes: int64(len(st.blocks)) * 32,
			RegionBytes:    int64(t.DS[i].Size),
		}
		if st.count > 0 {
			s.StoreFrac = float64(st.stores) / float64(st.count)
			s.ReuseFraction = float64(st.reuses) / float64(st.count)
		}
		if st.reuses > 0 {
			// Median of the log-bucketed gap histogram: the geometric
			// center of the bucket holding the middle sample.
			half := st.reuses / 2
			var cum int64
			for k, c := range st.gapHist {
				cum += c
				if cum > half {
					s.MedianReuseGap = int64(1) << uint(k)
					break
				}
			}
		}
		if st.transitions > 0 {
			s.StreamFrac = float64(st.smallPos) / float64(st.transitions)
			s.ChainRatio = float64(st.consistent) / float64(st.transitions)
			var bestStride int32
			var bestCount int64
			for d, c := range st.strides {
				if c > bestCount || (c == bestCount && d < bestStride) {
					bestStride, bestCount = d, c
				}
			}
			s.DominantStride = bestStride
			s.DominantFrac = float64(bestCount) / float64(st.transitions)
		}
		s.Class = classify(&s)
		p.Stats = append(p.Stats, s)
	}
	sort.Slice(p.Stats, func(i, j int) bool {
		if p.Stats[i].Count != p.Stats[j].Count {
			return p.Stats[i].Count > p.Stats[j].Count
		}
		return p.Stats[i].DS < p.Stats[j].DS
	})
	return p
}

// classify orders the checks by module preference: streams first, then
// hot small structures (an SRAM always beats a prefetcher when the whole
// structure fits on chip), then consistent chains, then random.
// log2u64 returns floor(log2(v)) for v >= 1, capped at 32.
func log2u64(v uint64) int {
	n := 0
	for v > 1 && n < 32 {
		v >>= 1
		n++
	}
	return n
}

func classify(s *Stats) Class {
	switch {
	case s.StreamFrac >= streamThreshold:
		return ClassStream
	case s.DominantFrac >= streamThreshold && s.DominantStride > 0:
		return ClassStrided
	case s.FootprintBytes <= hotFootprint:
		return ClassIndexed
	case s.ChainRatio >= chainThreshold:
		return ClassSelfIndirect
	default:
		return ClassRandom
	}
}
