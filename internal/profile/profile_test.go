package profile

import (
	"testing"

	"memorex/internal/trace"
	"memorex/internal/workload"
)

func TestClassifySynthetic(t *testing.T) {
	cases := []struct {
		kind workload.SyntheticKind
		want Class
	}{
		{workload.SynStream, ClassStream},
		{workload.SynSelfIndirect, ClassSelfIndirect},
	}
	for _, c := range cases {
		// The region must be revisited for successor consistency to be
		// observable (50k accesses over 16Ki elements = ~3 laps).
		tr := workload.Synthetic(c.kind, 50_000, 64*1024, 11)
		p := Analyze(tr)
		s := p.ByName("data")
		if s == nil {
			t.Fatalf("kind %d: data structure not profiled", c.kind)
		}
		if s.Class != c.want {
			t.Fatalf("kind %d classified as %v, want %v (stats %+v)", c.kind, s.Class, c.want, *s)
		}
	}
}

func TestClassifyRandomLargeFootprint(t *testing.T) {
	tr := workload.Synthetic(workload.SynRandom, 100_000, 1<<20, 5)
	p := Analyze(tr)
	s := p.ByName("data")
	if s.Class != ClassRandom {
		t.Fatalf("random over 1MiB classified as %v (stats %+v)", s.Class, *s)
	}
}

func TestClassifyIndexedSmallFootprint(t *testing.T) {
	// Random accesses within a small region: hot indexed table.
	tr := workload.Synthetic(workload.SynRandom, 50_000, 4096, 5)
	p := Analyze(tr)
	s := p.ByName("data")
	if s.Class != ClassIndexed {
		t.Fatalf("hot 4KiB random table classified as %v, want indexed", s.Class)
	}
}

func TestStatsBasics(t *testing.T) {
	b := trace.NewBuilder("t", 16)
	id, _ := b.Region("d", 1024, 4)
	for i := uint32(0); i < 10; i++ {
		b.Load(id, i*4, 4)
	}
	b.Store(id, 0, 4)
	tr := b.Build()
	p := Analyze(tr)
	s := p.ByDS(id)
	if s == nil {
		t.Fatal("structure missing")
	}
	if s.Count != 11 || s.Bytes != 44 {
		t.Fatalf("count/bytes wrong: %+v", s)
	}
	if s.StoreFrac <= 0.08 || s.StoreFrac >= 0.1 {
		t.Fatalf("store fraction = %v, want 1/11", s.StoreFrac)
	}
	if s.DominantStride != 4 {
		t.Fatalf("dominant stride = %d, want 4", s.DominantStride)
	}
	if s.Share(p.Total) != 1.0 {
		t.Fatalf("share = %v, want 1", s.Share(p.Total))
	}
}

func TestChainRatioPermutation(t *testing.T) {
	// A permutation cycle walked repeatedly: after the first lap, every
	// transition is consistent.
	tr := workload.Synthetic(workload.SynSelfIndirect, 4096, 4096, 13)
	p := Analyze(tr)
	s := p.ByName("data")
	if s.ChainRatio < 0.7 {
		t.Fatalf("chain ratio %.3f too low for a permutation walk", s.ChainRatio)
	}
}

func TestChainRatioRandomLow(t *testing.T) {
	tr := workload.Synthetic(workload.SynRandom, 50_000, 1<<20, 17)
	p := Analyze(tr)
	s := p.ByName("data")
	if s.ChainRatio > 0.05 {
		t.Fatalf("chain ratio %.3f too high for random accesses", s.ChainRatio)
	}
}

func TestProfileOrderedByCount(t *testing.T) {
	tr := workload.Compress{}.Generate(workload.DefaultConfig())
	p := Analyze(tr)
	for i := 1; i < len(p.Stats); i++ {
		if p.Stats[i].Count > p.Stats[i-1].Count {
			t.Fatal("stats not sorted by descending count")
		}
	}
	if p.Stats[0].Name != "htab" {
		t.Fatalf("compress should be dominated by htab, got %q", p.Stats[0].Name)
	}
}

func TestWorkloadClassesMatchPaperIntuition(t *testing.T) {
	// The vocoder is stream-dominated; its big buffers must classify as
	// streams and its codebook must not.
	tr := workload.Vocoder{}.Generate(workload.DefaultConfig())
	p := Analyze(tr)
	if s := p.ByName("speech"); s == nil || s.Class != ClassStream {
		t.Fatalf("speech classified as %v, want stream", p.ByName("speech").Class)
	}
	if s := p.ByName("history"); s == nil || s.Class == ClassRandom {
		t.Fatalf("history should not look random")
	}
	// The li heap must show strong successor consistency (cons-cell
	// chains) — the property the LL-DMA module exploits.
	trLi := workload.Li{}.Generate(workload.DefaultConfig())
	pLi := Analyze(trLi)
	heap := pLi.ByName("heap")
	if heap == nil {
		t.Fatal("li heap missing")
	}
	if heap.ChainRatio < 0.3 {
		t.Fatalf("li heap chain ratio %.3f too low", heap.ChainRatio)
	}
}

func TestByNameMissing(t *testing.T) {
	tr := workload.Synthetic(workload.SynStream, 100, 1024, 1)
	p := Analyze(tr)
	if p.ByName("nope") != nil || p.ByDS(99) != nil {
		t.Fatal("lookup of missing structure should return nil")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassStream: "stream", ClassStrided: "strided",
		ClassSelfIndirect: "self-indirect", ClassIndexed: "indexed",
		ClassRandom: "random",
	} {
		if c.String() != want {
			t.Fatalf("Class(%d) = %q, want %q", c, c, want)
		}
	}
}

func TestShareZeroTotal(t *testing.T) {
	s := Stats{Count: 5}
	if s.Share(0) != 0 {
		t.Fatal("Share(0) should be 0")
	}
}

func TestReuseGapStats(t *testing.T) {
	// A hot 64-block table touched round-robin: every access after the
	// first lap reuses a block touched exactly 64 accesses ago.
	b := trace.NewBuilder("reuse", 10_000)
	id, _ := b.Region("tab", 64*32, 4)
	for i := uint32(0); i < 10_000; i++ {
		b.Load(id, (i%64)*32, 4)
	}
	p := Analyze(b.Build())
	s := p.ByDS(id)
	if s.ReuseFraction < 0.98 {
		t.Fatalf("round-robin table should reuse nearly always: %.3f", s.ReuseFraction)
	}
	if s.MedianReuseGap != 64 {
		t.Fatalf("median reuse gap = %d, want 64", s.MedianReuseGap)
	}
	// A pure one-pass stream never revisits a block.
	tr := workload.Synthetic(workload.SynStream, 1000, 1<<20, 1)
	st := Analyze(tr).ByName("data")
	if st.ReuseFraction > 0.9 {
		t.Fatalf("single-pass stream should barely reuse, got %.3f", st.ReuseFraction)
	}
}
