// Package integration_test checks cross-module invariants of the whole
// MemorEx stack that no single package can verify alone.
package integration_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"memorex/internal/apex"
	"memorex/internal/connect"
	"memorex/internal/core"
	"memorex/internal/explore"
	"memorex/internal/mem"
	"memorex/internal/sampling"
	"memorex/internal/sim"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

func compressSlice(t testing.TB, n int) *trace.Trace {
	t.Helper()
	return workload.Compress{}.Generate(workload.DefaultConfig()).Slice(0, n)
}

func singleCacheArch(size int) *mem.Architecture {
	return &mem.Architecture{
		Name:    "c",
		Modules: []mem.Module{mem.MustCache(size, 32, 2)},
		DRAM:    mem.DefaultDRAM(),
		Default: 0,
	}
}

func connWith(t testing.TB, m *mem.Architecture, onChip, offChip string) *connect.Arch {
	t.Helper()
	lib := connect.Library()
	on, err := connect.ByName(lib, onChip)
	if err != nil {
		t.Fatal(err)
	}
	off, err := connect.ByName(lib, offChip)
	if err != nil {
		t.Fatal(err)
	}
	chans := m.Channels()
	a := &connect.Arch{Channels: chans}
	for i, ch := range chans {
		a.Clusters = append(a.Clusters, []int{i})
		if ch.OffChip {
			a.Assign = append(a.Assign, off)
		} else {
			a.Assign = append(a.Assign, on)
		}
	}
	return a
}

// Full simulation is deterministic: identical runs produce identical
// results, which is what makes coverage comparison against the Full
// baseline meaningful.
func TestSimulationDeterministic(t *testing.T) {
	tr := compressSlice(t, 50_000)
	m := singleCacheArch(4096)
	c := connWith(t, m, "ahb32", "off32")
	run := func() *sim.Result {
		s, err := sim.New(m, c)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("two identical simulations diverged")
	}
}

// The dedicated link is the fastest on-chip component of the library, so
// for a single-module architecture every other on-chip choice must be at
// least as slow.
func TestDedicatedIsFastestOnChip(t *testing.T) {
	tr := compressSlice(t, 40_000)
	m := singleCacheArch(4096)
	base := func(on string) float64 {
		s, err := sim.New(m, connWith(t, m, on, "off32"))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return r.AvgLatency()
	}
	ded := base("ded32")
	for _, name := range []string{"mux32", "ahb32", "asb32", "apb32"} {
		if lat := base(name); lat < ded-1e-9 {
			t.Fatalf("%s (%.3f) beat the dedicated link (%.3f)", name, lat, ded)
		}
	}
}

// The wide off-chip bus trades energy for latency against the narrow
// one: the designer-facing crossover the paper's exploration exists to
// expose.
func TestOffChipWidthTradeoff(t *testing.T) {
	tr := compressSlice(t, 40_000)
	m := singleCacheArch(2048)
	run := func(off string) *sim.Result {
		s, err := sim.New(m, connWith(t, m, "mux32", off))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	narrow, wide := run("off16"), run("off32")
	if wide.AvgLatency() >= narrow.AvgLatency() {
		t.Fatalf("wide off-chip bus should be faster: %.2f vs %.2f",
			wide.AvgLatency(), narrow.AvgLatency())
	}
	if wide.AvgEnergy() <= narrow.AvgEnergy() {
		t.Fatalf("wide off-chip bus should cost more energy: %.2f vs %.2f",
			wide.AvgEnergy(), narrow.AvgEnergy())
	}
}

// Every design the Pruned strategy reports must also exist in the Full
// space with identical metrics (Pruned explores a subset, never
// different physics).
func TestPrunedSubsetOfFull(t *testing.T) {
	tr := compressSlice(t, 30_000)
	apexRes, err := apex.Explore(tr, nil, apex.Config{
		CacheSizes:  []int{2 << 10, 16 << 10},
		CacheAssocs: []int{2},
		CacheLines:  []int{32},
		MaxCustom:   1,
		SRAMLimit:   80 << 10,
		MaxSelected: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	space := explore.BuildSpace(apexRes)
	cfg := core.DefaultConfig()
	cfg.Sampling = sampling.Config{OnWindow: 500, OffRatio: 9}
	cfg.MaxAssignPerLevel = 8
	cfg.KeepPerArch = 4
	full, err := explore.Run(context.Background(), tr, space, explore.Full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := explore.Run(context.Background(), tr, space, explore.Pruned, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pruned.Points {
		found := false
		for _, f := range full.Points {
			if f.Cost == p.Cost && f.Latency == p.Latency && f.Energy == p.Energy {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pruned design not present in the full space: %+v", p)
		}
	}
}

// The sampled estimate of a design and its full simulation must agree
// closely enough that Phase I ranking transfers to Phase II — the
// paper's fidelity claim, checked end to end on several designs.
func TestEstimateVsFullFidelityAcrossDesigns(t *testing.T) {
	tr := compressSlice(t, 60_000)
	m := singleCacheArch(8192)
	for _, names := range [][2]string{
		{"ded32", "off32"}, {"apb32", "off16"}, {"ahb32", "off32"},
	} {
		c := connWith(t, m, names[0], names[1])
		s, err := sim.New(m, c)
		if err != nil {
			t.Fatal(err)
		}
		fullRes, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		est, _, err := sampling.Estimate(tr, m, c, sampling.Config{OnWindow: 2000, OffRatio: 9})
		if err != nil {
			t.Fatal(err)
		}
		rel := est.AvgLatency()/fullRes.AvgLatency() - 1
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.25 {
			t.Fatalf("%v: sampled latency off by %.0f%%", names, rel*100)
		}
	}
}

// Cost composition: every ConEx design point's cost is exactly the sum
// of its memory and connectivity gates.
func TestCostComposition(t *testing.T) {
	tr := compressSlice(t, 20_000)
	arch := singleCacheArch(2048)
	cfg := core.DefaultConfig()
	cfg.Sampling = sampling.Config{OnWindow: 500, OffRatio: 9}
	cfg.MaxAssignPerLevel = 8
	points, _, _, err := core.ConnectivityExploration(context.Background(), tr, arch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		want := p.MemArch.Gates() + p.Conn.Gates()
		if p.Cost != want {
			t.Fatalf("cost %v != mem %v + conn %v", p.Cost, p.MemArch.Gates(), p.Conn.Gates())
		}
	}
}

// Saving a trace and reloading it must not change exploration results.
func TestTraceCodecPreservesExploration(t *testing.T) {
	tr := compressSlice(t, 20_000)
	var err error
	cfg := apex.Config{
		CacheSizes:  []int{4 << 10},
		CacheAssocs: []int{2},
		CacheLines:  []int{32},
		MaxCustom:   1,
		SRAMLimit:   80 << 10,
		MaxSelected: 3,
	}
	direct, err := apex.Explore(tr, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Round trip through the binary codec.
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := apex.Explore(tr2, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.All) != len(reloaded.All) {
		t.Fatal("design counts differ after codec round trip")
	}
	for i := range direct.All {
		if direct.All[i].MissRatio != reloaded.All[i].MissRatio {
			t.Fatal("miss ratios differ after codec round trip")
		}
	}
}
