package btcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"memorex/internal/obs"
	"memorex/internal/sim"
)

// quarantineDir is the subdirectory damaged entries are moved into,
// and quarantineKeep bounds how many of them are retained (oldest are
// dropped) so a recurring corruption source cannot fill the disk.
const (
	quarantineDir  = "quarantine"
	quarantineKeep = 16
)

// entrySuffix names cache entries: <fingerprint-hex>.btc.
const entrySuffix = ".btc"

// Cache is a persistent, size-bounded store of encoded behavior
// traces, one file per behavior fingerprint. It is safe for concurrent
// use within a process, and the temp-file + rename write protocol
// keeps concurrent processes sharing a directory safe too: a reader
// only ever sees a complete, checksummed entry or none at all.
//
// Every Get fully validates the entry (see Decode); a failed
// validation counts as a miss, moves the damaged file into the
// quarantine/ subdirectory for postmortem inspection, and lets the
// caller recapture. The cache therefore never changes results — only
// how often Phase A capture actually runs.
type Cache struct {
	dir   string
	limit int64 // byte budget, 0 = unbounded

	mu    sync.Mutex // guards eviction scans and the bytes gauge
	bytes int64      // last known live-entry total

	hits, misses, puts, putErrors, evictions, corrupt atomic.Int64

	// Registry instruments (nil-safe when detached).
	mHits, mMisses, mPuts, mPutErrors, mEvict, mCorrupt *obs.Counter
	mBytes                                              *obs.Gauge
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes; CorruptQuarantined is the
	// subset of misses caused by an entry failing validation.
	Hits, Misses int64
	// Puts counts entries written; PutErrors counts writes that failed
	// (the capture still succeeds — the entry is just not persisted).
	Puts, PutErrors int64
	// Evictions counts entries removed by the size bound.
	Evictions          int64
	CorruptQuarantined int64
	// BytesOnDisk is the live entry total after the last scan.
	BytesOnDisk int64
}

// Option configures a Cache.
type Option func(*Cache)

// WithLimit bounds the cache's on-disk size in bytes; the
// least-recently-used entries (by file mtime, refreshed on every hit)
// are evicted once the bound is exceeded. 0 means unbounded.
func WithLimit(bytes int64) Option {
	return func(c *Cache) { c.limit = bytes }
}

// WithMetrics attaches a metrics registry: the cache feeds
// btcache/hits, btcache/misses, btcache/puts, btcache/put_errors,
// btcache/evictions, btcache/corrupt_quarantined and the
// btcache/bytes_on_disk gauge. A nil registry is the explicit "off"
// value.
func WithMetrics(r *obs.Registry) Option {
	return func(c *Cache) {
		c.mHits = r.Counter("btcache/hits")
		c.mMisses = r.Counter("btcache/misses")
		c.mPuts = r.Counter("btcache/puts")
		c.mPutErrors = r.Counter("btcache/put_errors")
		c.mEvict = r.Counter("btcache/evictions")
		c.mCorrupt = r.Counter("btcache/corrupt_quarantined")
		c.mBytes = r.Gauge("btcache/bytes_on_disk")
	}
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string, opts ...Option) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("btcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("btcache: %w", err)
	}
	c := &Cache{dir: dir}
	for _, opt := range opts {
		opt(c)
	}
	c.mu.Lock()
	c.rescanLocked()
	c.evictLocked()
	c.mu.Unlock()
	return c, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	bytes := c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Puts:               c.puts.Load(),
		PutErrors:          c.putErrors.Load(),
		Evictions:          c.evictions.Load(),
		CorruptQuarantined: c.corrupt.Load(),
		BytesOnDisk:        bytes,
	}
}

// String renders the counters as a one-line summary for the CLIs.
func (c *Cache) String() string {
	s := c.Stats()
	return fmt.Sprintf("btcache %s: %d hits, %d misses (%d corrupt quarantined), %d puts, %d evictions, %d bytes on disk",
		c.dir, s.Hits, s.Misses, s.CorruptQuarantined, s.Puts, s.Evictions, s.BytesOnDisk)
}

// entryName returns the file name of a fingerprint's entry.
func entryName(fp uint64) string { return fmt.Sprintf("%016x%s", fp, entrySuffix) }

// Get loads and validates the entry for a fingerprint. A missing file,
// a read error or a failed validation is a miss; validation failures
// additionally quarantine the damaged file. The returned trace is
// freshly allocated and safe for concurrent replay.
func (c *Cache) Get(fp uint64) (*sim.BehaviorTrace, bool) {
	if c == nil {
		return nil, false
	}
	path := filepath.Join(c.dir, entryName(fp))
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		c.mMisses.Inc()
		return nil, false
	}
	bt, err := Decode(data, fp)
	if err != nil {
		c.quarantine(entryName(fp), int64(len(data)))
		c.misses.Add(1)
		c.mMisses.Inc()
		return nil, false
	}
	// Refresh the mtime so eviction is least-recently-*used*; a failure
	// (e.g. the entry was just evicted) degrades to FIFO, nothing more.
	now := time.Now()
	os.Chtimes(path, now, now)
	c.hits.Add(1)
	c.mHits.Inc()
	return bt, true
}

// Put atomically persists a behavior trace under its fingerprint: the
// entry is written to a temp file in the cache directory, synced, and
// renamed into place, so a crash or a concurrent reader can never
// observe a torn entry. Errors are returned for observability but are
// safe to ignore — a failed Put only costs a future recapture.
func (c *Cache) Put(fp uint64, bt *sim.BehaviorTrace) error {
	if c == nil {
		return nil
	}
	err := c.put(fp, bt)
	if err != nil {
		c.putErrors.Add(1)
		c.mPutErrors.Inc()
		return err
	}
	c.puts.Add(1)
	c.mPuts.Inc()
	return nil
}

func (c *Cache) put(fp uint64, bt *sim.BehaviorTrace) error {
	data := Encode(bt, fp)
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("btcache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("btcache: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("btcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("btcache: %w", err)
	}
	path := filepath.Join(c.dir, entryName(fp))

	c.mu.Lock()
	defer c.mu.Unlock()
	var old int64
	if fi, err := os.Stat(path); err == nil {
		old = fi.Size()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("btcache: %w", err)
	}
	c.setBytesLocked(c.bytes - old + int64(len(data)))
	c.evictLocked()
	return nil
}

// quarantine moves a damaged entry aside (into quarantine/, capped at
// quarantineKeep files) so it stays available for postmortem debugging
// without being retried or counted against the cache budget.
func (c *Cache) quarantine(name string, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	src := filepath.Join(c.dir, name)
	qdir := filepath.Join(c.dir, quarantineDir)
	moved := false
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(src, filepath.Join(qdir, name)); err == nil {
			moved = true
			c.pruneQuarantineLocked(qdir)
		}
	}
	if !moved {
		os.Remove(src)
	}
	c.setBytesLocked(c.bytes - size)
	c.corrupt.Add(1)
	c.mCorrupt.Inc()
}

// pruneQuarantineLocked drops the oldest quarantined files beyond the
// retention cap.
func (c *Cache) pruneQuarantineLocked(qdir string) {
	files := scanEntries(qdir)
	for i := 0; len(files)-i > quarantineKeep; i++ {
		os.Remove(filepath.Join(qdir, files[i].name))
	}
}

// fileInfo is one live entry seen by a directory scan.
type fileInfo struct {
	name  string
	size  int64
	mtime time.Time
}

// scanEntries lists a directory's cache entries oldest-first.
func scanEntries(dir string) []fileInfo {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var files []fileInfo
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != entrySuffix {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, fileInfo{name: e.Name(), size: fi.Size(), mtime: fi.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].name < files[j].name
	})
	return files
}

// rescanLocked refreshes the live-byte total from the directory.
func (c *Cache) rescanLocked() {
	var total int64
	for _, f := range scanEntries(c.dir) {
		total += f.size
	}
	c.setBytesLocked(total)
}

// evictLocked removes least-recently-used entries until the cache fits
// its byte budget. The scan rereads the directory, so entries written
// by other processes sharing the cache are accounted and evictable too.
func (c *Cache) evictLocked() {
	if c.limit <= 0 || c.bytes <= c.limit {
		return
	}
	files := scanEntries(c.dir)
	var total int64
	for _, f := range files {
		total += f.size
	}
	for _, f := range files {
		if total <= c.limit {
			break
		}
		if err := os.Remove(filepath.Join(c.dir, f.name)); err != nil {
			continue
		}
		total -= f.size
		c.evictions.Add(1)
		c.mEvict.Inc()
	}
	c.setBytesLocked(total)
}

// setBytesLocked updates the live-byte total and its gauge.
func (c *Cache) setBytesLocked(n int64) {
	if n < 0 {
		n = 0
	}
	c.bytes = n
	c.mBytes.Set(float64(n))
}
