package btcache

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"memorex/internal/mem"
	"memorex/internal/sampling"
	"memorex/internal/sim"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden fixtures")

// testBehaviorArch exercises every replay-relevant module kind: cache
// default route, stream buffer, self-indirect DMA, a direct-DRAM data
// structure, and optionally a shared L2 — mirroring the replay suite's
// richArch.
func testBehaviorArch(withL2 bool) *mem.Architecture {
	a := &mem.Architecture{
		Name: "rich",
		Modules: []mem.Module{
			mem.MustCache(4096, 32, 2),
			mem.MustStreamBuffer(32, 8),
			mem.MustSelfIndirectDMA(512, 16, 0.8),
		},
		DRAM: mem.DefaultDRAM(),
		Route: map[trace.DSID]int{
			1: 1,
			2: 2,
			3: mem.DirectDRAM,
		},
		Default: 0,
	}
	if withL2 {
		a.L2 = mem.MustCache(32768, 32, 4)
	}
	return a
}

// capture runs Phase A over a workload slice, full or sampled.
func captureWorkload(t *testing.T, w workload.Workload, sampledMode, withL2 bool) *sim.BehaviorTrace {
	t.Helper()
	tr := w.Generate(workload.DefaultConfig()).Slice(0, 20_000)
	var windows []sim.Window
	if sampledMode {
		windows = sampling.Plan(tr.NumAccesses(), sampling.Config{OnWindow: 500, OffRatio: 9})
	}
	bt, err := sim.CaptureBehavior(tr, testBehaviorArch(withL2), windows)
	if err != nil {
		t.Fatal(err)
	}
	return bt
}

// TestRoundTrip: serialize→deserialize is field-for-field identity for
// all three paper workloads, in full and sampled modes, with and
// without a shared L2.
func TestRoundTrip(t *testing.T) {
	workloads := map[string]workload.Workload{
		"compress": workload.Compress{},
		"li":       workload.Li{},
		"vocoder":  workload.Vocoder{},
	}
	for name, w := range workloads {
		for _, sampledMode := range []bool{false, true} {
			for _, withL2 := range []bool{false, true} {
				mode := map[bool]string{false: "full", true: "sampled"}[sampledMode]
				l2 := map[bool]string{false: "noL2", true: "L2"}[withL2]
				t.Run(name+"/"+mode+"/"+l2, func(t *testing.T) {
					bt := captureWorkload(t, w, sampledMode, withL2)
					const fp = 0xfeedface12345678
					data := Encode(bt, fp)
					got, err := Decode(data, fp)
					if err != nil {
						t.Fatalf("decode failed: %v", err)
					}
					if !reflect.DeepEqual(got, bt) {
						t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, bt)
					}
					// Re-encoding the decoded trace must be byte-identical:
					// the format has exactly one representation per trace.
					if !bytes.Equal(Encode(got, fp), data) {
						t.Fatal("re-encoding the decoded trace changed the bytes")
					}
				})
			}
		}
	}
}

// TestDecodeWrongFingerprint: an entry presented under a different key
// (a hash collision or a renamed file) is corruption, never a hit.
func TestDecodeWrongFingerprint(t *testing.T) {
	bt := captureWorkload(t, workload.Compress{}, false, false)
	data := Encode(bt, 111)
	if _, err := Decode(data, 222); !IsCorrupt(err) {
		t.Fatalf("decode under the wrong fingerprint returned %v, want a CorruptError", err)
	}
}

// goldenTrace is a small hand-built behavior trace covering every
// field of the format, including negative sentinels, empty prefetch
// legs and multi-window resync records. It must stay stable: the
// golden fixture pins its encoding.
func goldenTrace() *sim.BehaviorTrace {
	return &sim.BehaviorTrace{
		Channels: []mem.Channel{
			{Kind: mem.ChanCPUModule, Module: 0},
			{Kind: mem.ChanModuleDRAM, Module: 0, OffChip: true},
			{Kind: mem.ChanCPUDRAM, OffChip: true},
		},
		Modules: []sim.ModuleMeta{
			{Kind: mem.KindCache, Latency: 2, Energy: 0.125, Backed: true},
			{Kind: mem.KindStream, Latency: 1, Energy: 0.0625, LineBytes: 32, Depth: 4, Backed: true},
		},
		HasL2:       true,
		L2Latency:   6,
		L2Energy:    0.5,
		DRAMRowHit:  8,
		DRAMEnergy:  3.75,
		Route:       []int16{0, 1, -1, 0},
		Size:        []uint8{4, 2, 8, 1},
		Flags:       []uint8{1, 0, 0, 1},
		Stall:       []int32{0, 3, 0, 1},
		DemandBytes: []int32{0, 32, 8, 0},
		DemandL2Off: []int32{0, 32, 0, 0},
		DemandDRAM:  []int16{-1, 20, 8, -1},
		PrefBytes:   []int32{0, 64, 0, 0},
		PrefL2Off:   []int32{0, 0, 0, 0},
		PrefDRAM:    []int16{-1, 8, -1, -1},
		WindowLen:   []int32{3, 1},
		GapCycles:   []int64{0, 1 << 33},
		Resync:      []int32{0, -1, 5, 12, 7, -1, 0, 0},
		MaxBytes:    64,
		MaxDRAMLat:  20,
	}
}

// goldenFingerprint keys the golden fixture.
const goldenFingerprint = 0x0123456789abcdef

// TestGoldenFixture pins the binary format: the checked-in fixture
// must decode to the golden trace and the golden trace must encode to
// the fixture's exact bytes, so any accidental format drift — field
// order, widths, header layout — fails here instead of silently
// invalidating (or worse, misreading) every deployed cache.
func TestGoldenFixture(t *testing.T) {
	path := filepath.Join("testdata", "golden_v1.btc")
	data := Encode(goldenTrace(), goldenFingerprint)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fixture, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/btcache -update-golden` after an intentional format change)", err)
	}
	if !bytes.Equal(data, fixture) {
		t.Fatalf("encoding drifted from the golden fixture (%d vs %d bytes): bump FormatVersion and regenerate with -update-golden",
			len(data), len(fixture))
	}
	got, err := Decode(fixture, goldenFingerprint)
	if err != nil {
		t.Fatalf("golden fixture no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(got, goldenTrace()) {
		t.Fatalf("golden fixture decoded to a different trace:\n got %+v\nwant %+v", got, goldenTrace())
	}
}

// TestSectionBoundaries: the boundary list is monotonically increasing
// from the header to the entry length.
func TestSectionBoundaries(t *testing.T) {
	data := Encode(goldenTrace(), goldenFingerprint)
	bounds, err := SectionBoundaries(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != 2+sectionCount {
		t.Fatalf("got %d boundaries, want %d", len(bounds), 2+sectionCount)
	}
	if bounds[0] != headerSize {
		t.Fatalf("first boundary %d, want header end %d", bounds[0], headerSize)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("boundaries not increasing: %v", bounds)
		}
	}
	if last := bounds[len(bounds)-1]; last != len(data) {
		t.Fatalf("last boundary %d, want entry length %d", last, len(data))
	}
}
