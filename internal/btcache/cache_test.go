package btcache

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"memorex/internal/connect"
	"memorex/internal/obs"
	"memorex/internal/sim"
	"memorex/internal/workload"
)

// testConn builds a minimal feasible connectivity architecture over a
// behavior trace's channel list (one single-channel cluster each).
func testConn(t testing.TB, bt *sim.BehaviorTrace) *connect.Arch {
	t.Helper()
	lib := connect.Library()
	on, err := connect.ByName(lib, "ahb32")
	if err != nil {
		t.Fatal(err)
	}
	off, err := connect.ByName(lib, "off32")
	if err != nil {
		t.Fatal(err)
	}
	c := &connect.Arch{Channels: bt.Channels}
	for i, ch := range bt.Channels {
		c.Clusters = append(c.Clusters, []int{i})
		if ch.OffChip {
			c.Assign = append(c.Assign, off)
		} else {
			c.Assign = append(c.Assign, on)
		}
	}
	return c
}

// TestCachePutGet: a stored entry round-trips through disk, counts a
// hit, and a fresh fingerprint misses.
func TestCachePutGet(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := Open(t.TempDir(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	bt := captureWorkload(t, workload.Vocoder{}, true, false)
	const fp = 7

	if _, ok := c.Get(fp); ok {
		t.Fatal("empty cache served a hit")
	}
	if err := c.Put(fp, bt); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(fp)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !reflect.DeepEqual(got, bt) {
		t.Fatal("disk round trip changed the trace")
	}
	if _, ok := c.Get(8); ok {
		t.Fatal("unrelated fingerprint hit")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Puts != 1 || st.BytesOnDisk <= 0 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses, 1 put, positive bytes", st)
	}
	snap := reg.Snapshot()
	if snap.Counters["btcache/hits"] != 1 || snap.Counters["btcache/misses"] != 2 ||
		snap.Counters["btcache/puts"] != 1 {
		t.Fatalf("registry counters inconsistent: %+v", snap.Counters)
	}
	if snap.Gauges["btcache/bytes_on_disk"] != float64(st.BytesOnDisk) {
		t.Fatalf("bytes gauge %v != stats %d", snap.Gauges["btcache/bytes_on_disk"], st.BytesOnDisk)
	}
}

// TestCacheNil: a nil cache is the disabled cache.
func TestCacheNil(t *testing.T) {
	var c *Cache
	if _, ok := c.Get(1); ok {
		t.Fatal("nil cache hit")
	}
	if err := c.Put(1, &sim.BehaviorTrace{}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheEviction: with a byte budget, the least-recently-used
// entries go first — and a Get refreshes recency, so a hot old entry
// survives a colder, younger one.
func TestCacheEviction(t *testing.T) {
	dir := t.TempDir()
	bt := captureWorkload(t, workload.Compress{}, true, false)
	one := int64(len(Encode(bt, 0)))

	// Budget for roughly two entries.
	c, err := Open(dir, WithLimit(2*one+one/2), WithMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	for fp := uint64(1); fp <= 3; fp++ {
		if err := c.Put(fp, bt); err != nil {
			t.Fatal(err)
		}
		// Backdate each entry so the LRU order is unambiguous even on
		// filesystems with coarse timestamp granularity: lower
		// fingerprints end up strictly older.
		past := time.Now().Add(-time.Duration(4-fp) * time.Second)
		os.Chtimes(filepath.Join(dir, entryName(fp)), past, past)
	}

	// Entry 1 (oldest mtime) must have been evicted by the third Put.
	if _, err := os.Stat(filepath.Join(dir, entryName(1))); !os.IsNotExist(err) {
		t.Fatalf("oldest entry survived eviction (stat err %v)", err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions", st)
	}
	if st.BytesOnDisk > 2*one+one/2 {
		t.Fatalf("bytes on disk %d above the %d budget", st.BytesOnDisk, 2*one+one/2)
	}

	// Touch entry 2 far into the future, then overflow again: entry 3
	// (now least recently used) is the victim, not the freshly-hot 2.
	hot := time.Now().Add(time.Hour)
	os.Chtimes(filepath.Join(dir, entryName(2)), hot, hot)
	if err := c.Put(4, bt); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(2); !ok {
		t.Fatal("recently used entry evicted before a colder one")
	}
	if _, err := os.Stat(filepath.Join(dir, entryName(3))); !os.IsNotExist(err) {
		t.Fatalf("cold entry 3 survived while hot 2 was expected to (stat err %v)", err)
	}
}

// TestCacheOpenRescan: a reopened cache accounts pre-existing entries
// and enforces the budget immediately.
func TestCacheOpenRescan(t *testing.T) {
	dir := t.TempDir()
	bt := captureWorkload(t, workload.Compress{}, true, false)
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for fp := uint64(1); fp <= 4; fp++ {
		if err := c1.Put(fp, bt); err != nil {
			t.Fatal(err)
		}
	}
	total := c1.Stats().BytesOnDisk

	c2, err := Open(dir, WithLimit(total/2))
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.BytesOnDisk > total/2 {
		t.Fatalf("reopened cache holds %d bytes above its %d budget", st.BytesOnDisk, total/2)
	}
	if st.Evictions == 0 {
		t.Fatal("reopened cache did not evict down to its budget")
	}
}

// TestCacheConcurrentAccess races Puts and Gets on overlapping
// fingerprints (run under -race): every Get must return either a miss
// or a trace identical to what was stored.
func TestCacheConcurrentAccess(t *testing.T) {
	c, err := Open(t.TempDir(), WithMetrics(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	bt := captureWorkload(t, workload.Li{}, true, false)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				fp := uint64(i % 3)
				if w%2 == 0 {
					if err := c.Put(fp, bt); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
				if got, ok := c.Get(fp); ok {
					if !reflect.DeepEqual(got, bt) {
						t.Error("concurrent Get returned a different trace")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Stats().CorruptQuarantined; n != 0 {
		t.Fatalf("%d spurious corruption quarantines under concurrency", n)
	}
}

// TestOpenErrors: unopenable directories are reported, not deferred.
func TestOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "sub")); err == nil {
		t.Fatal("Open under a regular file succeeded")
	}
}
