// Fault injection: the corruption harness the cache's test suite
// drives. It lives in the package proper (not a _test file) so the
// engine- and explorer-level tests can mangle cache entries through
// the same canonical mutation set, and so future storage layers can
// reuse it.
package btcache

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Mutation is one way of damaging an encoded cache entry. Apply never
// modifies its input; it returns the damaged copy.
type Mutation struct {
	Name  string
	Apply func(data []byte) []byte
}

// FlipBit flips one bit of the entry (offsets beyond the end are
// ignored, returning an exact copy — callers bound offsets to len).
func FlipBit(off int, bit uint) Mutation {
	return Mutation{
		Name: fmt.Sprintf("flip-bit@%d.%d", off, bit%8),
		Apply: func(data []byte) []byte {
			out := append([]byte(nil), data...)
			if off >= 0 && off < len(out) {
				out[off] ^= 1 << (bit % 8)
			}
			return out
		},
	}
}

// Truncate cuts the entry to its first n bytes.
func Truncate(n int) Mutation {
	return Mutation{
		Name: fmt.Sprintf("truncate@%d", n),
		Apply: func(data []byte) []byte {
			if n < 0 {
				n = 0
			}
			if n > len(data) {
				n = len(data)
			}
			return append([]byte(nil), data[:n]...)
		},
	}
}

// ZeroChecksum zeroes the header's payload CRC.
func ZeroChecksum() Mutation {
	return Mutation{
		Name: "zero-checksum",
		Apply: func(data []byte) []byte {
			out := append([]byte(nil), data...)
			if len(out) >= headerSize {
				binary.LittleEndian.PutUint32(out[24:], 0)
			}
			return out
		},
	}
}

// BumpVersion rewrites the header's format version to FormatVersion+1,
// simulating an entry written by a future build.
func BumpVersion() Mutation {
	return Mutation{
		Name: "bump-version",
		Apply: func(data []byte) []byte {
			out := append([]byte(nil), data...)
			if len(out) >= headerSize {
				binary.LittleEndian.PutUint16(out[4:], FormatVersion+1)
			}
			return out
		},
	}
}

// AppendGarbage extends the entry with trailing bytes, simulating a
// partially overwritten larger predecessor.
func AppendGarbage(n int) Mutation {
	return Mutation{
		Name: fmt.Sprintf("append-garbage@%d", n),
		Apply: func(data []byte) []byte {
			out := append([]byte(nil), data...)
			for i := 0; i < n; i++ {
				out = append(out, byte(0xA5+i))
			}
			return out
		},
	}
}

// Mutations returns the canonical corruption suite for one encoded
// entry: a version bump, a zeroed checksum, truncation at every
// section boundary (plus one byte into each section and the empty
// file), trailing garbage, and bit flips covering the whole header and
// sampled across the payload. Every mutation must decode to a clean
// miss — the fault-injection tests assert exactly that.
func Mutations(data []byte) ([]Mutation, error) {
	bounds, err := SectionBoundaries(data)
	if err != nil {
		return nil, err
	}
	muts := []Mutation{
		BumpVersion(),
		ZeroChecksum(),
		Truncate(0),
		AppendGarbage(7),
	}
	for _, b := range bounds {
		// The final boundary is the entry length itself — truncating
		// there is the identity, not a fault.
		if b < len(data) {
			muts = append(muts, Truncate(b))
		}
		if b+1 < len(data) {
			muts = append(muts, Truncate(b+1))
		}
	}
	// Every header bit position matters; flip each header byte, then
	// sample the payload with a stride coprime to the record sizes so
	// the flips land in every column over a long entry.
	for off := 0; off < headerSize && off < len(data); off++ {
		muts = append(muts, FlipBit(off, uint(off)%8))
	}
	const stride = 131
	for off := headerSize; off < len(data); off += stride {
		muts = append(muts, FlipBit(off, uint(off)%8))
	}
	muts = append(muts, FlipBit(len(data)-1, 7))
	return muts, nil
}

// CorruptingWriter wraps an io.Writer and flips one bit of the stream
// as it passes through, simulating a torn or bit-rotted write path.
// FlipOffset addresses the byte within the total stream; a negative
// offset disables the fault.
type CorruptingWriter struct {
	W          io.Writer
	FlipOffset int64
	FlipBit    uint

	written int64
}

// Write implements io.Writer, damaging the configured byte in flight.
func (c *CorruptingWriter) Write(p []byte) (int, error) {
	start := c.written
	c.written += int64(len(p))
	if c.FlipOffset >= start && c.FlipOffset < c.written {
		q := append([]byte(nil), p...)
		q[c.FlipOffset-start] ^= 1 << (c.FlipBit % 8)
		p = q
	}
	return c.W.Write(p)
}
