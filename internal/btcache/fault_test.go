package btcache

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"memorex/internal/sim"
	"memorex/internal/workload"
)

// replayFigures runs a connectivity replay of a behavior trace and
// returns the figures the engine would report, so fault tests can
// assert end-to-end result integrity, not just struct equality.
func replayFigures(t *testing.T, bt *sim.BehaviorTrace) (lat, nrg float64) {
	t.Helper()
	conn := testConn(t, bt)
	res, err := sim.Replay(bt, conn)
	if err != nil {
		t.Fatal(err)
	}
	return res.AvgLatency(), res.AvgEnergy()
}

// TestFaultInjectionSuite is the cache's central correctness gate:
// every canonical corruption of an on-disk entry — version bump,
// zeroed checksum, truncation at every section boundary, trailing
// garbage, bit flips across header and payload — must yield a clean
// miss with the damaged file quarantined, after which a recapture
// stores a fresh entry whose replay matches the original bit-for-bit.
// Zero mutations may produce a trace that replays differently.
func TestFaultInjectionSuite(t *testing.T) {
	bt := captureWorkload(t, workload.Compress{}, true, true)
	const fp = 0xdeadbeefcafef00d
	data := Encode(bt, fp)
	wantLat, wantNrg := replayFigures(t, bt)

	muts, err := Mutations(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) < 30 {
		t.Fatalf("mutation suite suspiciously small: %d mutations", len(muts))
	}

	var wrongResults int
	for _, m := range muts {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put(fp, bt); err != nil {
				t.Fatal(err)
			}

			// Mangle the entry on disk.
			mangled := m.Apply(data)
			if bytes.Equal(mangled, data) {
				t.Fatalf("mutation %s is the identity", m.Name)
			}
			path := filepath.Join(dir, entryName(fp))
			if err := os.WriteFile(path, mangled, 0o644); err != nil {
				t.Fatal(err)
			}

			got, ok := c.Get(fp)
			if ok {
				// A hit on a mangled entry is only acceptable if it is
				// impossible to distinguish from the truth; any replay
				// divergence is the disaster class this suite exists to
				// rule out.
				lat, nrg := replayFigures(t, got)
				if lat != wantLat || nrg != wantNrg || !reflect.DeepEqual(got, bt) {
					wrongResults++
					t.Fatalf("mangled entry (%s) decoded to a DIFFERENT trace: lat %v vs %v, nrg %v vs %v",
						m.Name, lat, wantLat, nrg, wantNrg)
				}
				t.Fatalf("mangled entry (%s) served as a hit", m.Name)
			}

			// The damaged file must be gone from the live set and
			// quarantined, and the counters must say why.
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("damaged entry still live after the miss (stat err %v)", err)
			}
			if _, err := os.Stat(filepath.Join(dir, quarantineDir, entryName(fp))); err != nil {
				t.Fatalf("damaged entry not quarantined: %v", err)
			}
			st := c.Stats()
			if st.CorruptQuarantined != 1 || st.Misses != 1 {
				t.Fatalf("stats after corruption = %+v, want 1 corrupt quarantine and 1 miss", st)
			}

			// Recovery: recapture (here: re-Put) and the next Get serves
			// a trace replaying identically to the original.
			if err := c.Put(fp, bt); err != nil {
				t.Fatal(err)
			}
			fresh, ok := c.Get(fp)
			if !ok {
				t.Fatal("recaptured entry missed")
			}
			if lat, nrg := replayFigures(t, fresh); lat != wantLat || nrg != wantNrg {
				t.Fatalf("recaptured entry replays differently: lat %v vs %v, nrg %v vs %v",
					lat, wantLat, nrg, wantNrg)
			}
		})
	}
	if wrongResults != 0 {
		t.Fatalf("%d mutations produced a wrong BehaviorTrace", wrongResults)
	}
}

// TestCorruptingWriter: a bit flipped in flight by the torn-write
// simulator is caught by decode validation.
func TestCorruptingWriter(t *testing.T) {
	bt := captureWorkload(t, workload.Li{}, false, false)
	const fp = 42
	data := Encode(bt, fp)
	for _, off := range []int64{0, 5, headerSize + 3, int64(len(data) / 2), int64(len(data) - 1)} {
		var buf bytes.Buffer
		cw := &CorruptingWriter{W: &buf, FlipOffset: off, FlipBit: 2}
		// Write in awkward chunk sizes to cross the flip offset.
		for i := 0; i < len(data); i += 7 {
			hi := i + 7
			if hi > len(data) {
				hi = len(data)
			}
			if _, err := cw.Write(data[i:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("CorruptingWriter at %d did not damage the stream", off)
		}
		if _, err := Decode(buf.Bytes(), fp); !IsCorrupt(err) {
			t.Fatalf("flip at %d not caught: %v", off, err)
		}
	}
}
