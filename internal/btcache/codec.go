// Package btcache is the persistent on-disk store for captured
// behavior traces. Phase A of the two-phase simulator (see
// internal/sim/behavior.go) is connectivity-independent: a
// sim.BehaviorTrace depends only on the trace content, the memory
// architecture and the sampling plan, so it can be reused across
// process runs — every CLI invocation and every paperbench experiment
// re-times the same captures otherwise. The cache stores one entry per
// behavior fingerprint (the engine's stable content hash of that
// triple) in a compact, versioned binary format.
//
// Correctness over availability: the cache must never serve a wrong or
// torn capture. Every entry is written atomically (temp file + fsync +
// rename), carries a CRC-32C over its payload, and is validated in
// full on load — bad magic, version skew, fingerprint mismatch,
// truncation, checksum failure or any structural inconsistency is
// treated as a miss, the damaged file is quarantined, and the caller
// falls through to a fresh capture. fault.go ships the corruption
// harness the test suite drives through every one of those paths.
package btcache

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"memorex/internal/mem"
	"memorex/internal/sim"
)

// On-disk entry layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "MXBT"
//	4       2     format version (FormatVersion)
//	6       2     reserved, must be zero
//	8       8     behavior fingerprint (must match the entry's key)
//	16      8     payload length in bytes
//	24      4     CRC-32C (Castagnoli) of the payload
//	28      ...   payload
//
// The payload opens with a section table — u32 section count (always
// 3), then one u64 length per section — followed by the sections
// themselves, concatenated:
//
//	section 0  architecture: channels, module metadata, L2/DRAM
//	           constants, transfer-size and DRAM-latency bounds
//	section 1  events: the ten parallel per-access columns
//	section 2  windows: per-window lengths, gap cycles, resync records
//
// Every count is cross-checked against its section's exact byte length
// before anything is allocated, and each section must be consumed to
// its last byte, so a CRC-valid but structurally inconsistent entry is
// still rejected.
const (
	// Magic identifies a behavior-trace cache entry.
	Magic = "MXBT"
	// FormatVersion is bumped whenever the serialization layout *or*
	// the capture semantics change (a stale capture replayed under new
	// semantics would be silently wrong, so version skew is a miss).
	FormatVersion = 1
	// headerSize is the fixed entry header before the payload.
	headerSize = 28
	// sectionCount is the number of payload sections.
	sectionCount = 3
	// maxCount bounds the channel/module/window counts a decoder will
	// accept; real architectures have a handful of each.
	maxCount = 1 << 20
)

// castagnoli is the CRC-32C table used for payload checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a cache entry that failed validation. The cache
// treats every CorruptError as a miss and quarantines the entry.
type CorruptError struct {
	// Reason describes the first validation failure encountered.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string { return "btcache: corrupt entry: " + e.Reason }

// IsCorrupt reports whether err is a cache-entry validation failure.
func IsCorrupt(err error) bool {
	_, ok := err.(*CorruptError)
	return ok
}

func corruptf(format string, args ...interface{}) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// Per-element sizes of the serialized forms.
const (
	channelBytes = 4 + 4 + 1             // kind, module, offchip
	moduleBytes  = 4 + 4 + 8 + 4 + 4 + 1 // kind, latency, energy, line, depth, backed
	eventBytes   = 2 + 1 + 1 + 4 + 4 + 4 + 2 + 4 + 4 + 2
)

// Encode serializes a behavior trace into a cache entry carrying the
// given fingerprint.
func Encode(bt *sim.BehaviorTrace, fp uint64) []byte {
	archLen := 4 + len(bt.Channels)*channelBytes +
		4 + len(bt.Modules)*moduleBytes +
		1 + 4 + 8 + // HasL2, L2Latency, L2Energy
		4 + 8 + // DRAMRowHit, DRAMEnergy
		4 + 4 // MaxBytes, MaxDRAMLat
	n := bt.NumEvents()
	eventsLen := 4 + n*eventBytes
	windowsLen := 4 + len(bt.WindowLen)*4 + len(bt.GapCycles)*8 + 4 + len(bt.Resync)*4
	tableLen := 4 + sectionCount*8
	payloadLen := tableLen + archLen + eventsLen + windowsLen

	buf := make([]byte, headerSize+payloadLen)
	w := &writer{b: buf, off: headerSize}

	// Section table.
	w.u32(sectionCount)
	w.u64(uint64(archLen))
	w.u64(uint64(eventsLen))
	w.u64(uint64(windowsLen))

	// Section 0: architecture.
	w.u32(uint32(len(bt.Channels)))
	for _, ch := range bt.Channels {
		w.u32(uint32(ch.Kind))
		w.i32(int32(ch.Module))
		w.bool(ch.OffChip)
	}
	w.u32(uint32(len(bt.Modules)))
	for _, m := range bt.Modules {
		w.u32(uint32(m.Kind))
		w.i32(int32(m.Latency))
		w.f64(m.Energy)
		w.i32(int32(m.LineBytes))
		w.i32(int32(m.Depth))
		w.bool(m.Backed)
	}
	w.bool(bt.HasL2)
	w.i32(int32(bt.L2Latency))
	w.f64(bt.L2Energy)
	w.i32(int32(bt.DRAMRowHit))
	w.f64(bt.DRAMEnergy)
	w.i32(int32(bt.MaxBytes))
	w.i32(int32(bt.MaxDRAMLat))

	// Section 1: event columns.
	w.u32(uint32(n))
	w.i16s(bt.Route)
	w.u8s(bt.Size)
	w.u8s(bt.Flags)
	w.i32s(bt.Stall)
	w.i32s(bt.DemandBytes)
	w.i32s(bt.DemandL2Off)
	w.i16s(bt.DemandDRAM)
	w.i32s(bt.PrefBytes)
	w.i32s(bt.PrefL2Off)
	w.i16s(bt.PrefDRAM)

	// Section 2: window bookkeeping.
	w.u32(uint32(len(bt.WindowLen)))
	w.i32s(bt.WindowLen)
	w.i64s(bt.GapCycles)
	w.u32(uint32(len(bt.Resync)))
	w.i32s(bt.Resync)

	if w.off != len(buf) {
		panic(fmt.Sprintf("btcache: encoded %d bytes into a %d-byte entry", w.off, len(buf)))
	}

	// Header, last: the CRC covers the finished payload.
	copy(buf[0:4], Magic)
	binary.LittleEndian.PutUint16(buf[4:], FormatVersion)
	binary.LittleEndian.PutUint16(buf[6:], 0)
	binary.LittleEndian.PutUint64(buf[8:], fp)
	binary.LittleEndian.PutUint64(buf[16:], uint64(payloadLen))
	binary.LittleEndian.PutUint32(buf[24:], crc32.Checksum(buf[headerSize:], castagnoli))
	return buf
}

// Decode validates a cache entry against the expected fingerprint and
// reconstructs its behavior trace. Any validation failure — truncated
// or oversized data, bad magic, version skew, fingerprint mismatch,
// checksum failure, or a structurally inconsistent payload — returns a
// *CorruptError and no trace.
func Decode(data []byte, fp uint64) (*sim.BehaviorTrace, error) {
	payload, err := checkHeader(data, fp)
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(payload, castagnoli); got != binary.LittleEndian.Uint32(data[24:]) {
		return nil, corruptf("payload checksum mismatch (got %08x, header says %08x)",
			got, binary.LittleEndian.Uint32(data[24:]))
	}

	secs, err := splitSections(payload)
	if err != nil {
		return nil, err
	}
	bt := &sim.BehaviorTrace{}
	if err := decodeArch(secs[0], bt); err != nil {
		return nil, err
	}
	if err := decodeEvents(secs[1], bt); err != nil {
		return nil, err
	}
	if err := decodeWindows(secs[2], bt); err != nil {
		return nil, err
	}
	if want := len(bt.WindowLen) * len(bt.Modules) * 2; len(bt.Resync) != want {
		return nil, corruptf("resync length %d inconsistent with %d windows x %d modules",
			len(bt.Resync), len(bt.WindowLen), len(bt.Modules))
	}
	var events int64
	for _, wl := range bt.WindowLen {
		if wl < 0 {
			return nil, corruptf("negative window length %d", wl)
		}
		events += int64(wl)
	}
	if events != int64(bt.NumEvents()) {
		return nil, corruptf("window lengths sum to %d events, columns hold %d", events, bt.NumEvents())
	}
	return bt, nil
}

// checkHeader validates the fixed header and returns the payload view.
func checkHeader(data []byte, fp uint64) ([]byte, error) {
	if len(data) < headerSize {
		return nil, corruptf("truncated header (%d of %d bytes)", len(data), headerSize)
	}
	if string(data[0:4]) != Magic {
		return nil, corruptf("bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != FormatVersion {
		return nil, corruptf("format version %d (this build reads %d)", v, FormatVersion)
	}
	if r := binary.LittleEndian.Uint16(data[6:]); r != 0 {
		return nil, corruptf("reserved header bytes set (%#x)", r)
	}
	if got := binary.LittleEndian.Uint64(data[8:]); got != fp {
		return nil, corruptf("fingerprint mismatch (entry %016x, key %016x)", got, fp)
	}
	plen := binary.LittleEndian.Uint64(data[16:])
	if plen != uint64(len(data)-headerSize) {
		return nil, corruptf("payload length %d does not match the %d bytes present",
			plen, len(data)-headerSize)
	}
	return data[headerSize:], nil
}

// splitSections parses the section table and slices the payload into
// its sections, verifying the lengths consume the payload exactly.
func splitSections(payload []byte) ([sectionCount][]byte, error) {
	var secs [sectionCount][]byte
	tableLen := 4 + sectionCount*8
	if len(payload) < tableLen {
		return secs, corruptf("truncated section table (%d of %d bytes)", len(payload), tableLen)
	}
	if n := binary.LittleEndian.Uint32(payload); n != sectionCount {
		return secs, corruptf("section count %d, want %d", n, sectionCount)
	}
	off := uint64(tableLen)
	for i := 0; i < sectionCount; i++ {
		l := binary.LittleEndian.Uint64(payload[4+8*i:])
		if l > uint64(len(payload))-off {
			return secs, corruptf("section %d length %d overruns the payload", i, l)
		}
		secs[i] = payload[off : off+l]
		off += l
	}
	if off != uint64(len(payload)) {
		return secs, corruptf("%d trailing payload bytes after the last section", uint64(len(payload))-off)
	}
	return secs, nil
}

// SectionBoundaries returns the file offsets at which the header, the
// section table and each payload section end (the last boundary is the
// entry length). The fault-injection suite truncates an entry at every
// one of these points; all of them must decode to a clean miss.
func SectionBoundaries(data []byte) ([]int, error) {
	if len(data) < headerSize {
		return nil, corruptf("truncated header (%d of %d bytes)", len(data), headerSize)
	}
	payload := data[headerSize:]
	secs, err := splitSections(payload)
	if err != nil {
		return nil, err
	}
	bounds := []int{headerSize, headerSize + 4 + sectionCount*8}
	off := bounds[len(bounds)-1]
	for _, s := range secs {
		off += len(s)
		bounds = append(bounds, off)
	}
	return bounds, nil
}

// decodeArch parses section 0 into the architecture-level fields.
func decodeArch(sec []byte, bt *sim.BehaviorTrace) error {
	r := &reader{b: sec, section: "arch"}
	nCh := r.count("channels")
	if r.err != nil {
		return r.err
	}
	if len(sec) < 4+nCh*channelBytes {
		return corruptf("arch section too short for %d channels", nCh)
	}
	bt.Channels = make([]mem.Channel, nCh)
	for i := range bt.Channels {
		bt.Channels[i] = mem.Channel{
			Kind:    mem.ChannelKind(r.u32()),
			Module:  int(r.i32()),
			OffChip: r.bool(),
		}
	}
	nMod := r.count("modules")
	if r.err != nil {
		return r.err
	}
	if len(sec)-r.off < nMod*moduleBytes {
		return corruptf("arch section too short for %d modules", nMod)
	}
	bt.Modules = make([]sim.ModuleMeta, nMod)
	for i := range bt.Modules {
		bt.Modules[i] = sim.ModuleMeta{
			Kind:      mem.Kind(r.u32()),
			Latency:   int(r.i32()),
			Energy:    r.f64(),
			LineBytes: int(r.i32()),
			Depth:     int(r.i32()),
			Backed:    r.bool(),
		}
	}
	bt.HasL2 = r.bool()
	bt.L2Latency = int(r.i32())
	bt.L2Energy = r.f64()
	bt.DRAMRowHit = int(r.i32())
	bt.DRAMEnergy = r.f64()
	bt.MaxBytes = int(r.i32())
	bt.MaxDRAMLat = int(r.i32())
	return r.finish()
}

// decodeEvents parses section 1 into the per-event columns.
func decodeEvents(sec []byte, bt *sim.BehaviorTrace) error {
	r := &reader{b: sec, section: "events"}
	n := r.count("events")
	if r.err != nil {
		return r.err
	}
	if want := 4 + n*eventBytes; len(sec) != want {
		return corruptf("events section is %d bytes, %d events need %d", len(sec), n, want)
	}
	bt.Route = r.i16s(n)
	bt.Size = r.u8s(n)
	bt.Flags = r.u8s(n)
	bt.Stall = r.i32s(n)
	bt.DemandBytes = r.i32s(n)
	bt.DemandL2Off = r.i32s(n)
	bt.DemandDRAM = r.i16s(n)
	bt.PrefBytes = r.i32s(n)
	bt.PrefL2Off = r.i32s(n)
	bt.PrefDRAM = r.i16s(n)
	return r.finish()
}

// decodeWindows parses section 2 into the sampling-window bookkeeping.
func decodeWindows(sec []byte, bt *sim.BehaviorTrace) error {
	r := &reader{b: sec, section: "windows"}
	nw := r.count("windows")
	if r.err != nil {
		return r.err
	}
	if len(sec)-r.off < nw*(4+8) {
		return corruptf("windows section too short for %d windows", nw)
	}
	bt.WindowLen = r.i32s(nw)
	bt.GapCycles = r.i64s(nw)
	nr := r.count("resync records")
	if r.err != nil {
		return r.err
	}
	if want := 4 + nw*(4+8) + 4 + nr*4; len(sec) != want {
		return corruptf("windows section is %d bytes, %d windows + %d resyncs need %d",
			len(sec), nw, nr, want)
	}
	bt.Resync = r.i32s(nr)
	return r.finish()
}

// writer appends fixed-width little-endian values to a preallocated
// buffer. Encode sizes the buffer exactly, so overruns panic (they are
// programming errors, not data errors).
type writer struct {
	b   []byte
	off int
}

func (w *writer) u8(v uint8)   { w.b[w.off] = v; w.off++ }
func (w *writer) u32(v uint32) { binary.LittleEndian.PutUint32(w.b[w.off:], v); w.off += 4 }
func (w *writer) u64(v uint64) { binary.LittleEndian.PutUint64(w.b[w.off:], v); w.off += 8 }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) u8s(v []uint8) { copy(w.b[w.off:], v); w.off += len(v) }
func (w *writer) i16s(v []int16) {
	for _, x := range v {
		binary.LittleEndian.PutUint16(w.b[w.off:], uint16(x))
		w.off += 2
	}
}
func (w *writer) i32s(v []int32) {
	for _, x := range v {
		w.i32(x)
	}
}
func (w *writer) i64s(v []int64) {
	for _, x := range v {
		w.u64(uint64(x))
	}
}

// reader consumes fixed-width little-endian values from a section,
// accumulating the first bounds violation as a CorruptError. Callers
// pre-validate counts against the section length before bulk reads, so
// a corrupt count can never trigger an oversized allocation.
type reader struct {
	b       []byte
	off     int
	section string
	err     error
}

func (r *reader) fail(reason string) {
	if r.err == nil {
		r.err = corruptf("%s section: %s", r.section, reason)
	}
}

// take returns the next n bytes, or nil after recording an overrun.
func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail(fmt.Sprintf("read of %d bytes overruns the section (%d of %d consumed)",
			n, r.off, len(r.b)))
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// count reads a u32 element count and bounds it.
func (r *reader) count(what string) int {
	v := r.u32()
	if r.err == nil && v > maxCount {
		r.fail(fmt.Sprintf("implausible %s count %d", what, v))
	}
	return int(v)
}

func (r *reader) u8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *reader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *reader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *reader) i32() int32   { return int32(r.u32()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("boolean byte out of range")
		return false
	}
}

func (r *reader) u8s(n int) []uint8 {
	s := r.take(n)
	if s == nil {
		return nil
	}
	out := make([]uint8, n)
	copy(out, s)
	return out
}

func (r *reader) i16s(n int) []int16 {
	s := r.take(2 * n)
	if s == nil {
		return nil
	}
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(binary.LittleEndian.Uint16(s[2*i:]))
	}
	return out
}

func (r *reader) i32s(n int) []int32 {
	s := r.take(4 * n)
	if s == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(s[4*i:]))
	}
	return out
}

func (r *reader) i64s(n int) []int64 {
	s := r.take(8 * n)
	if s == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(s[8*i:]))
	}
	return out
}

// finish reports the accumulated error, or a CorruptError when the
// section was not consumed exactly.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return corruptf("%s section: %d trailing bytes", r.section, len(r.b)-r.off)
	}
	return nil
}
