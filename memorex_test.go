package memorex

import (
	"bytes"
	"context"
	"testing"

	"memorex/internal/apex"
	"memorex/internal/sampling"
)

// fastOptions shrinks the spaces so the facade test stays quick.
func fastOptions(bench string) Options {
	opt := DefaultOptions(bench)
	opt.APEX = apex.Config{
		CacheSizes:  []int{2 << 10, 16 << 10},
		CacheAssocs: []int{2},
		CacheLines:  []int{32},
		MaxCustom:   1,
		SRAMLimit:   80 << 10,
		MaxSelected: 3,
	}
	opt.ConEx.MaxAssignPerLevel = 16
	opt.ConEx.KeepPerArch = 4
	opt.ConEx.Sampling = sampling.Config{OnWindow: 500, OffRatio: 9}
	return opt
}

func TestExplorePipeline(t *testing.T) {
	opt := fastOptions("vocoder")
	rep, err := Explore(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.NumAccesses() == 0 {
		t.Fatal("no trace")
	}
	if len(rep.Profile.Stats) == 0 {
		t.Fatal("no profile")
	}
	if len(rep.APEX.Selected) == 0 {
		t.Fatal("APEX selected nothing")
	}
	if len(rep.ConEx.CostPerfFront) == 0 {
		t.Fatal("ConEx produced no front")
	}

	// Scenario selections respect their constraints.
	pts := rep.ConEx.Points()
	var maxE, maxC, maxL float64
	for _, p := range pts {
		if p.Energy > maxE {
			maxE = p.Energy
		}
		if p.Cost > maxC {
			maxC = p.Cost
		}
		if p.Latency > maxL {
			maxL = p.Latency
		}
	}
	for _, p := range rep.PowerConstrained(maxE / 2) {
		if p.Energy > maxE/2 {
			t.Fatal("power constraint violated")
		}
	}
	for _, p := range rep.CostConstrained(maxC / 2) {
		if p.Cost > maxC/2 {
			t.Fatal("cost constraint violated")
		}
	}
	for _, p := range rep.PerformanceConstrained(maxL) {
		if p.Latency > maxL {
			t.Fatal("latency constraint violated")
		}
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	if _, err := GenerateTrace("nope", WorkloadConfig{}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	tr, err := GenerateTrace("compress", WorkloadConfig{}) // zero config -> defaults
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumAccesses() == 0 {
		t.Fatal("default config produced empty trace")
	}
	// A non-zero but invalid config is an explicit error, not a silent
	// fallback to the defaults.
	if _, err := GenerateTrace("compress", WorkloadConfig{Scale: -2, Seed: 7}); err == nil {
		t.Fatal("negative scale accepted")
	}
	if _, err := GenerateTrace("compress", WorkloadConfig{Seed: 7}); err == nil {
		t.Fatal("partial config with zero scale accepted")
	}
}

func TestExploreTraceEmpty(t *testing.T) {
	if _, err := ExploreTrace(context.Background(), &Trace{DS: nil}, fastOptions("compress")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 4 { // the paper's three + the jpegenc extension
		t.Fatalf("want 4 benchmarks, got %v", names)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Explore(context.Background(), fastOptions("vocoder"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != "vocoder" || got.Accesses != rep.Trace.NumAccesses() {
		t.Fatalf("report header wrong: %+v", got)
	}
	if len(got.Designs) != len(rep.ConEx.Combined) {
		t.Fatalf("designs = %d, want %d", len(got.Designs), len(rep.ConEx.Combined))
	}
	front := 0
	for _, d := range got.Designs {
		if d.OnFront {
			front++
		}
		if d.CostGates <= 0 || d.LatencyCyc <= 0 || d.EnergyNJ <= 0 {
			t.Fatalf("degenerate design row: %+v", d)
		}
	}
	if front != len(rep.ConEx.CostPerfFront) {
		t.Fatalf("front flags = %d, want %d", front, len(rep.ConEx.CostPerfFront))
	}
	if _, err := ReadReportJSON(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
