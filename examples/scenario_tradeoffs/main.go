// Scenario trade-offs: the paper's three constrained-selection scenarios
// (Section 5, Phase II) on the vocoder benchmark — power-constrained,
// cost-constrained, and performance-constrained selection from the same
// explored design space.
//
//	go run ./examples/scenario_tradeoffs
package main

import (
	"context"
	"fmt"
	"log"

	"memorex"
)

func main() {
	opt := memorex.DefaultOptions("vocoder")
	opt.ConEx.MaxAssignPerLevel = 64
	opt.ConEx.KeepPerArch = 8

	report, err := memorex.Explore(context.Background(), opt)
	if err != nil {
		log.Fatal(err)
	}

	// Derive meaningful constraints from the explored space itself:
	// median energy, median cost, median latency.
	pts := report.ConEx.Points()
	if len(pts) == 0 {
		log.Fatal("exploration produced no designs")
	}
	var maxE, maxC, maxL float64
	for _, p := range pts {
		maxE += p.Energy
		maxC += p.Cost
		maxL += p.Latency
	}
	meanE := maxE / float64(len(pts))
	meanC := maxC / float64(len(pts))
	meanL := maxL / float64(len(pts))

	show := func(title string, sel []memorex.Point) {
		fmt.Printf("\n%s: %d designs\n", title, len(sel))
		fmt.Printf("  %12s %9s %8s\n", "cost[gates]", "lat[cyc]", "nrg[nJ]")
		for _, p := range sel {
			fmt.Printf("  %12.0f %9.2f %8.2f\n", p.Cost, p.Latency, p.Energy)
		}
	}

	fmt.Printf("explored %d fully simulated designs for vocoder\n", len(pts))

	// (a) Power-constrained: optimize cost and performance while the
	// energy stays under budget.
	show(fmt.Sprintf("(a) power-constrained (energy <= %.1f nJ): cost/perf pareto", meanE),
		report.PowerConstrained(meanE))

	// (b) Cost-constrained: optimize performance and power under a
	// silicon budget.
	show(fmt.Sprintf("(b) cost-constrained (cost <= %.0f gates): perf/power pareto", meanC),
		report.CostConstrained(meanC))

	// (c) Performance-constrained: optimize cost and power while
	// meeting a latency requirement.
	show(fmt.Sprintf("(c) performance-constrained (latency <= %.1f cycles): cost/power pareto", meanL),
		report.PerformanceConstrained(meanL))
}
