// Quickstart: run the complete MemorEx pipeline on the compress
// benchmark and print the cost/performance/energy trade-off designs.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"memorex"
)

func main() {
	// Configure the exploration. DefaultOptions uses the paper's
	// spaces; we shrink the connectivity enumeration a little so the
	// quickstart finishes in seconds.
	opt := memorex.DefaultOptions("compress")
	opt.ConEx.MaxAssignPerLevel = 64
	opt.ConEx.KeepPerArch = 6

	report, err := memorex.Explore(context.Background(), opt)
	if err != nil {
		log.Fatal(err)
	}

	// 1. What the profiler saw.
	fmt.Println("access patterns:")
	for _, s := range report.Profile.Stats {
		fmt.Printf("  %-8s %-13s %6.1f%% of accesses\n",
			s.Name, s.Class, 100*s.Share(report.Profile.Total))
	}

	// 2. What APEX selected.
	fmt.Printf("\nAPEX selected %d memory architectures (of %d evaluated)\n",
		len(report.APEX.Selected), len(report.APEX.All))

	// 3. What ConEx found: the designs a designer would choose from.
	fmt.Println("\nmemory+connectivity pareto front (cost vs average latency):")
	for _, dp := range report.ConEx.CostPerfFront {
		fmt.Printf("  %9.0f gates  %6.2f cycles/access  %5.2f nJ/access\n",
			dp.Cost, dp.Latency, dp.Energy)
	}

	// 4. A power-constrained selection, as in the paper's scenario (a).
	budget := report.ConEx.CostPerfFront[0].Energy // cap at the cheapest design's energy
	fmt.Printf("\ndesigns meeting an energy budget of %.1f nJ/access:\n", budget)
	for _, p := range report.PowerConstrained(budget) {
		fmt.Printf("  %9.0f gates  %6.2f cycles/access  %5.2f nJ/access\n",
			p.Cost, p.Latency, p.Energy)
	}
}
