// Custom library: define your own connectivity IP catalog as JSON, load
// it, and run the connectivity exploration against it — the paper's
// library-based methodology with a user-supplied library. The example
// catalog models a low-power design kit: narrow slow busses with low
// energy per byte, plus one premium wide bus.
//
//	go run ./examples/custom_library
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"memorex"
	"memorex/internal/connect"
)

const lowPowerKit = `[
  {"name":"lp-bus8",  "class":"asb", "width_bytes":1, "arb_cycles":1,
   "beat_cycles":1, "max_ports":8, "on_chip":true,
   "energy_per_byte_nj":0.012, "base_gates":600, "gates_per_port":90,
   "wire_gates_per_port":250},
  {"name":"lp-bus16", "class":"asb", "width_bytes":2, "arb_cycles":1,
   "beat_cycles":1, "max_ports":8, "on_chip":true,
   "energy_per_byte_nj":0.018, "base_gates":900, "gates_per_port":120,
   "wire_gates_per_port":330},
  {"name":"hp-ahb64", "class":"ahb", "width_bytes":8, "arb_cycles":1,
   "beat_cycles":1, "pipelined":true, "split":true, "max_ports":12,
   "on_chip":true, "energy_per_byte_nj":0.06, "base_gates":5200,
   "gates_per_port":400, "wire_gates_per_port":900},
  {"name":"lp-ext16", "class":"offchip", "width_bytes":2, "arb_cycles":2,
   "beat_cycles":2, "max_ports":5, "on_chip":false,
   "energy_per_byte_nj":0.22, "base_gates":2100, "gates_per_port":130,
   "wire_gates_per_port":0},
  {"name":"hp-ext32", "class":"offchip", "width_bytes":4, "arb_cycles":2,
   "beat_cycles":1, "max_ports":5, "on_chip":false,
   "energy_per_byte_nj":0.48, "base_gates":4100, "gates_per_port":200,
   "wire_gates_per_port":0}
]`

func main() {
	lib, err := connect.ReadLibrary(strings.NewReader(lowPowerKit))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded custom library with %d components:\n", len(lib))
	for _, c := range lib {
		side := "on-chip"
		if !c.OnChip {
			side = "off-chip"
		}
		fmt.Printf("  %-9s %-9s %dB wide, %d-cycle word, %.3f nJ/B, %s\n",
			c.Name, c.Class, c.WidthBytes, c.TransferCycles(4), c.EnergyPerByte, side)
	}

	opt := memorex.DefaultOptions("jpegenc")
	opt.ConEx.Library = lib
	opt.ConEx.MaxAssignPerLevel = 48
	opt.ConEx.KeepPerArch = 6

	report, err := memorex.Explore(context.Background(), opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncost/performance front with the low-power kit (jpegenc):")
	for _, dp := range report.ConEx.CostPerfFront {
		fmt.Printf("  %9.0f gates %7.2f cyc %6.2f nJ  %s\n",
			dp.Cost, dp.Latency, dp.Energy, dp.Conn.Describe(dp.MemArch))
	}

	// The point of a low-power kit: check the energy-constrained view.
	pts := report.ConEx.Points()
	var minE float64 = 1e18
	for _, p := range pts {
		if p.Energy < minE {
			minE = p.Energy
		}
	}
	sel := report.PowerConstrained(minE * 1.5)
	fmt.Printf("\ndesigns within 1.5x of the minimum energy (%.2f nJ): %d\n", minE, len(sel))
	for _, p := range sel {
		fmt.Printf("  %9.0f gates %7.2f cyc %6.2f nJ\n", p.Cost, p.Latency, p.Energy)
	}
}
