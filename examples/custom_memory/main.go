// Custom memory architecture: build a memory-modules architecture by
// hand, wire it with two different connectivity architectures, and
// simulate both against the vocoder benchmark — the workflow of a
// designer evaluating a specific platform rather than exploring.
//
//	go run ./examples/custom_memory
package main

import (
	"fmt"
	"log"

	"memorex"
	"memorex/internal/connect"
	"memorex/internal/mem"
	"memorex/internal/sim"
	"memorex/internal/trace"
)

func main() {
	tr, err := memorex.GenerateTrace("vocoder", memorex.WorkloadConfig{Scale: 1, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Find the data structures we want to place explicitly.
	var work, speech trace.DSID
	for i, d := range tr.DS {
		switch d.Name {
		case "work":
			work = trace.DSID(i)
		case "speech":
			speech = trace.DSID(i)
		}
	}

	// Hand-built memory architecture: a small cache for everything,
	// the hot work buffer in an SRAM scratchpad, and a stream buffer
	// in front of the speech samples.
	arch := &mem.Architecture{
		Name: "handbuilt",
		Modules: []mem.Module{
			mem.MustCache(4096, 32, 2),
			mem.MustSRAM(1024),
			mem.MustStreamBuffer(32, 4),
		},
		DRAM:    mem.DefaultDRAM(),
		Route:   map[trace.DSID]int{work: 1, speech: 2},
		Default: 0,
	}
	if err := arch.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("memory architecture:", arch.Describe(tr))
	fmt.Println("channels:")
	for _, ch := range arch.Channels() {
		fmt.Println("  -", ch.Label(arch))
	}

	lib := connect.Library()
	pick := func(name string) connect.Component {
		c, err := connect.ByName(lib, name)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// Connectivity option A: one shared AHB for the CPU links, one
	// shared off-chip bus.
	chans := arch.Channels()
	var onChip, offChip []int
	for i, ch := range chans {
		if ch.OffChip {
			offChip = append(offChip, i)
		} else {
			onChip = append(onChip, i)
		}
	}
	shared := &connect.Arch{
		Channels: chans,
		Clusters: [][]int{onChip, offChip},
		Assign:   []connect.Component{pick("ahb32"), pick("off32")},
	}

	// Connectivity option B: dedicated/MUX links per module, still one
	// off-chip bus.
	perModule := &connect.Arch{Channels: chans}
	for _, i := range onChip {
		perModule.Clusters = append(perModule.Clusters, []int{i})
		perModule.Assign = append(perModule.Assign, pick("mux32"))
	}
	perModule.Clusters = append(perModule.Clusters, offChip)
	perModule.Assign = append(perModule.Assign, pick("off32"))

	for _, c := range []struct {
		name string
		conn *connect.Arch
	}{{"shared AHB", shared}, {"per-module MUX", perModule}} {
		if err := c.conn.Validate(); err != nil {
			log.Fatal(err)
		}
		s, err := sim.New(arch, c.conn)
		if err != nil {
			log.Fatal(err)
		}
		r, err := s.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %s\n", c.name, c.conn.Describe(arch))
		fmt.Printf("  total cost      %9.0f gates (memory %0.f + connectivity %0.f)\n",
			arch.Gates()+c.conn.Gates(), arch.Gates(), c.conn.Gates())
		fmt.Printf("  avg latency     %9.2f cycles/access\n", r.AvgLatency())
		fmt.Printf("  avg energy      %9.2f nJ/access\n", r.AvgEnergy())
		fmt.Printf("  miss ratio      %9.4f\n", r.MissRatio())
		fmt.Printf("  off-chip bytes  %9d\n", r.OffChipBytes)
	}
}
