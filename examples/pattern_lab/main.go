// Pattern lab: instrument your own algorithm with the trace builder and
// see how the profiler classifies its data structures — the first step
// of bringing a new application into MemorEx. The example instruments a
// histogram + binary-search kernel and compares the classification with
// the synthetic ground-truth generators.
//
//	go run ./examples/pattern_lab
package main

import (
	"fmt"

	"memorex/internal/profile"
	"memorex/internal/trace"
	"memorex/internal/workload"
)

// buildCustomTrace instruments a small kernel by hand: it streams an
// input array, bins values into a histogram (hot indexed table), and
// binary-searches a sorted lookup table per element.
func buildCustomTrace() *trace.Trace {
	const n = 40_000
	b := trace.NewBuilder("pattern-lab", n*6)
	input, _ := b.Region("input", n*4, 4)
	hist, _ := b.Region("histogram", 256*4, 4)
	lut, _ := b.Region("lut", 1024*4, 4)

	seedState := uint64(99)
	next := func() uint64 {
		seedState ^= seedState << 13
		seedState ^= seedState >> 7
		seedState ^= seedState << 17
		return seedState
	}

	for i := uint32(0); i < n; i++ {
		// Stream read of the input.
		b.Load(input, i*4, 4)
		v := uint32(next())
		// Histogram update: read-modify-write of a hot 1 KiB table.
		bin := v % 256
		b.Load(hist, bin*4, 4)
		b.Store(hist, bin*4, 4)
		// Binary search over the sorted lookup table.
		lo, hi := uint32(0), uint32(1023)
		for lo < hi {
			mid := (lo + hi) / 2
			b.Load(lut, mid*4, 4)
			if (mid*mid+7)%4096 < v%4096 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	}
	return b.Build()
}

func main() {
	fmt.Println("== custom instrumented kernel ==")
	tr := buildCustomTrace()
	p := profile.Analyze(tr)
	for _, s := range p.Stats {
		fmt.Printf("  %-10s %8d accesses  %-13s footprint=%5dB  chain=%.2f stream=%.2f\n",
			s.Name, s.Count, s.Class, s.FootprintBytes, s.ChainRatio, s.StreamFrac)
	}

	fmt.Println("\n== synthetic ground truth ==")
	kinds := []struct {
		name string
		kind workload.SyntheticKind
	}{
		{"stream", workload.SynStream},
		{"strided", workload.SynStrided},
		{"self-indirect", workload.SynSelfIndirect},
		{"indexed", workload.SynIndexed},
		{"random", workload.SynRandom},
	}
	for _, k := range kinds {
		tr := workload.Synthetic(k.kind, 50_000, 64*1024, 7)
		p := workloadProfile(tr)
		fmt.Printf("  generated %-13s -> classified %v\n", k.name, p)
	}
}

// workloadProfile returns the classification of the synthetic trace's
// "data" structure.
func workloadProfile(tr *trace.Trace) profile.Class {
	p := profile.Analyze(tr)
	if s := p.ByName("data"); s != nil {
		return s.Class
	}
	return profile.ClassRandom
}
