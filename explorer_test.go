package memorex

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestExplorerWarmStart is the end-to-end contract of the persistent
// behavior-trace cache: a second Explorer sharing the cache directory
// runs the whole pipeline without a single Phase A capture, serves
// every behavior trace from disk, surfaces the cache counters in
// Report.Metrics, and produces byte-identical design points.
func TestExplorerWarmStart(t *testing.T) {
	dir := t.TempDir()
	run := func() (*Report, EngineStats, TraceCacheStats) {
		t.Helper()
		ex, err := NewExplorer(append(fastExplorerOpts(), WithTraceCache(dir))...)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ex.Explore(context.Background(), "vocoder")
		if err != nil {
			t.Fatal(err)
		}
		cs, ok := ex.TraceCacheStats()
		if !ok {
			t.Fatal("TraceCacheStats reports no cache despite WithTraceCache")
		}
		return rep, ex.Stats(), cs
	}

	rep1, st1, cs1 := run()
	if st1.BehaviorCaptures == 0 {
		t.Fatal("cold run captured no behavior traces")
	}
	if cs1.Puts == 0 || cs1.Hits != 0 {
		t.Fatalf("cold cache stats = %+v, want puts and no hits", cs1)
	}

	rep2, st2, cs2 := run()
	if st2.BehaviorCaptures != 0 {
		t.Fatalf("warm run ran %d behavior captures, want 0", st2.BehaviorCaptures)
	}
	if st2.BehaviorDiskHits == 0 || cs2.Hits == 0 {
		t.Fatalf("warm run served nothing from disk: engine %+v, cache %+v", st2, cs2)
	}
	if cs2.CorruptQuarantined != 0 {
		t.Fatalf("warm run quarantined %d entries", cs2.CorruptQuarantined)
	}

	// The cache counters must surface through Report.Metrics (and thus
	// the report's JSON form).
	if rep2.Metrics.Counters["btcache/hits"] == 0 {
		t.Fatalf("btcache counters missing from Report.Metrics: %+v", rep2.Metrics.Counters)
	}
	if rep2.Metrics.Counters["engine/behavior_disk_hits"] == 0 {
		t.Fatal("engine/behavior_disk_hits missing from Report.Metrics")
	}

	// Bit-identical results: the serialized design points of both runs
	// must match byte for byte (engine stats and metrics carry wall
	// times and cache counters that legitimately differ, so compare the
	// designs section).
	designs := func(r *Report) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var rj ReportJSON
		if err := json.Unmarshal(buf.Bytes(), &rj); err != nil {
			t.Fatal(err)
		}
		rj.Engine, rj.Metrics = nil, nil
		out, err := json.Marshal(rj)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if d1, d2 := designs(rep1), designs(rep2); !bytes.Equal(d1, d2) {
		t.Fatalf("warm-start designs diverged:\ncold %s\nwarm %s", d1, d2)
	}
}

// fastExplorerOpts shrinks the design spaces so Explorer tests stay
// quick, mirroring fastOptions for the legacy Options surface.
func fastExplorerOpts() []ExplorerOption {
	return []ExplorerOption{
		WithAPEXConfig(APEXConfig{
			CacheSizes:  []int{2 << 10, 16 << 10},
			CacheAssocs: []int{2},
			CacheLines:  []int{32},
			MaxCustom:   1,
			SRAMLimit:   80 << 10,
			MaxSelected: 2,
		}),
		WithAssignCap(12),
		WithKeepPerArch(3),
		WithSampling(SamplingConfig{OnWindow: 500, OffRatio: 9}),
	}
}

// TestExplorerEventStream is the completeness contract of the event
// stream: over a full run, every evaluated design appears exactly once
// per phase, every pruning decision is reported, the stream brackets
// cleanly with run-start/run-end, and the same stream round-trips
// through the JSONL sink.
func TestExplorerEventStream(t *testing.T) {
	ring := NewRingSink(1 << 14)
	var jsonl bytes.Buffer
	ex, err := NewExplorer(append(fastExplorerOpts(),
		WithEventSinks(ring, NewJSONLSink(&jsonl)))...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Explore(context.Background(), "vocoder")
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}

	events := ring.Events()
	if int(ring.Total()) != len(events) {
		t.Fatalf("ring dropped events: total %d, retained %d", ring.Total(), len(events))
	}
	if events[0].Kind != KindRunStart || events[0].Benchmark != "vocoder" {
		t.Fatalf("stream does not open with run-start: %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Kind != KindRunEnd || last.WallNS <= 0 || last.Err != "" {
		t.Fatalf("stream does not close with a clean run-end: %+v", last)
	}

	seen := map[string]int{}
	var evals, prunes, estErrs, traces, apexSel int
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want dense ordering", i, ev.Seq)
		}
		switch ev.Kind {
		case KindEval:
			evals++
			seen[ev.Phase+"|"+ev.Mem+"|"+ev.Conn]++
		case KindPrune:
			prunes++
			if ev.Selected > ev.Evaluated {
				t.Fatalf("prune kept more than it saw: %+v", ev)
			}
		case KindEstimatorError:
			estErrs++
			if ev.EstLatency <= 0 || ev.FullLatency <= 0 {
				t.Fatalf("estimator-error without latencies: %+v", ev)
			}
		case KindTrace:
			traces++
		case KindAPEX:
			apexSel++
		}
	}

	// Every evaluated design exactly once: the engine saw as many eval
	// events as requests, and no (phase, design) pair repeats.
	if got := ex.Stats().Requests; int64(evals) != got {
		t.Fatalf("%d eval events for %d engine requests", evals, got)
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("design %q evaluated %d times in one run", key, n)
		}
	}
	// One select-local prune per explored architecture plus the final
	// cost/perf front cut.
	if want := len(rep.ConEx.PerArch) + 1; prunes != want {
		t.Fatalf("%d prune events, want %d", prunes, want)
	}
	if estErrs != len(rep.ConEx.Combined) {
		t.Fatalf("%d estimator-error events for %d fully simulated designs",
			estErrs, len(rep.ConEx.Combined))
	}
	if traces != 1 || apexSel != 1 {
		t.Fatalf("trace/apex events = %d/%d, want 1/1", traces, apexSel)
	}

	// The JSONL stream decodes to the same events.
	decoded, err := DecodeEvents(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(events) {
		t.Fatalf("JSONL decoded %d events, ring saw %d", len(decoded), len(events))
	}
	for i := range decoded {
		if decoded[i].Seq != events[i].Seq || decoded[i].Kind != events[i].Kind {
			t.Fatalf("JSONL event %d diverged: %+v vs %+v", i, decoded[i], events[i])
		}
	}

	// The run's metrics snapshot landed in the report and agrees with
	// the engine counters.
	if rep.Metrics.Counters["engine/evaluations"] != ex.Stats().Requests {
		t.Fatalf("report metrics inconsistent: %+v vs %+v", rep.Metrics.Counters, ex.Stats())
	}
	if _, ok := rep.Metrics.Histograms["sampling/est_err_pct"]; !ok {
		t.Fatal("report metrics missing the estimator-error histogram")
	}
}

// TestExplorerReuse: two runs on one Explorer share the memoization
// cache, and the second is served (at least partly) from it.
func TestExplorerReuse(t *testing.T) {
	ex, err := NewExplorer(fastExplorerOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Explore(context.Background(), "vocoder"); err != nil {
		t.Fatal(err)
	}
	afterFirst := ex.Stats()
	if _, err := ex.Explore(context.Background(), "vocoder"); err != nil {
		t.Fatal(err)
	}
	afterSecond := ex.Stats()
	newHits := afterSecond.CacheHits - afterFirst.CacheHits
	newSims := afterSecond.Simulations - afterFirst.Simulations
	if newHits == 0 {
		t.Fatal("second run produced no cache hits")
	}
	if newSims != 0 {
		t.Fatalf("second run re-simulated %d designs", newSims)
	}
}

func TestNewExplorerErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []ExplorerOption
		want string
	}{
		{"negative scale", []ExplorerOption{WithWorkloadConfig(WorkloadConfig{Scale: -1})}, "Scale"},
		{"bad sampling", []ExplorerOption{WithSampling(SamplingConfig{OnWindow: -5})}, "on-window"},
		{"bad keep", []ExplorerOption{WithKeepPerArch(-1)}, "KeepPerArch"},
		{"bad apex", []ExplorerOption{WithAPEXConfig(APEXConfig{CacheSizes: []int{1024}})}, "apex"},
		{"engine+observer", []ExplorerOption{
			WithEngine(NewEngine(1)),
			WithObserver(NewObserver(NewRingSink(4))),
		}, "mutually exclusive"},
		{"observer+sinks", []ExplorerOption{
			WithObserver(NewObserver(NewRingSink(4))),
			WithEventSinks(NewRingSink(4)),
		}, "mutually exclusive"},
		{"engine+tracecache", []ExplorerOption{
			WithEngine(NewEngine(1)),
			WithTraceCache(t.TempDir()),
		}, "mutually exclusive"},
	}
	for _, c := range cases {
		_, err := NewExplorer(c.opts...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}

	// The zero-option Explorer is valid and runs with defaults.
	ex, err := NewExplorer()
	if err != nil {
		t.Fatal(err)
	}
	if ex.Options().ConEx.KeepPerArch != DefaultOptions("compress").ConEx.KeepPerArch {
		t.Fatal("zero-option Explorer did not adopt defaults")
	}
}

// TestExplorerSharedEngine: an Explorer built over an engine that
// carries its own observer reports through that observer.
func TestExplorerSharedEngine(t *testing.T) {
	ring := NewRingSink(1 << 12)
	eng := NewEngineWithObservability(1, NewObserver(ring))
	ex, err := NewExplorer(append(fastExplorerOpts(), WithEngine(eng))...)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Observer() == nil {
		t.Fatal("Explorer did not adopt the engine's observer")
	}
	if _, err := ex.Explore(context.Background(), "vocoder"); err != nil {
		t.Fatal(err)
	}
	if ring.Total() == 0 {
		t.Fatal("engine observer saw no events")
	}
}
