module memorex

go 1.22
