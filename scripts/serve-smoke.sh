#!/bin/sh
# serve-smoke boots memorexd on an ephemeral port, submits one tiny
# exploration job through memorexctl, asserts the daemon hands back a
# completed report with designs and the requested selection, then
# drains the daemon with SIGTERM and checks it exits 0.
set -eu

tmp=$(mktemp -d)
daemon_pid=
cleanup() {
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/memorexd" ./cmd/memorexd
go build -o "$tmp/memorexctl" ./cmd/memorexctl

"$tmp/memorexd" -addr localhost:0 -max-running 2 2>"$tmp/daemon.log" &
daemon_pid=$!

# The daemon logs the bound address; wait for it.
base=
i=0
while [ $i -lt 100 ]; do
	base=$(sed -n 's|.*serving the job API on \(http://[^/]*\).*|\1|p' "$tmp/daemon.log" | head -1)
	[ -n "$base" ] && break
	if ! kill -0 "$daemon_pid" 2>/dev/null; then
		echo "serve-smoke: daemon died at boot:" >&2
		cat "$tmp/daemon.log" >&2
		exit 1
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$base" ]; then
	echo "serve-smoke: daemon never reported its address" >&2
	cat "$tmp/daemon.log" >&2
	exit 1
fi

"$tmp/memorexctl" health -server "$base" >/dev/null

# A deliberately tiny job (the test-suite fast configuration) so the
# smoke run finishes in seconds.
cat >"$tmp/req.json" <<'EOF'
{
  "benchmark": "vocoder",
  "apex": {
    "cache_sizes": [2048, 16384],
    "cache_assocs": [2],
    "cache_lines": [32],
    "max_custom": 1,
    "sram_limit": 81920,
    "max_selected": 2
  },
  "sampling": {"on_window": 500, "off_ratio": 9},
  "keep_per_arch": 3,
  "max_assign_per_level": 12,
  "constraints": [{"scenario": "cost", "limit": 1000000000}]
}
EOF

"$tmp/memorexctl" submit -server "$base" -req "$tmp/req.json" \
	-wait -poll 100ms -out "$tmp/report.json"

grep -q '"designs"' "$tmp/report.json"
grep -q '"selections"' "$tmp/report.json"

# SIGTERM must drain gracefully and exit 0.
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
	echo "serve-smoke: daemon exited non-zero on SIGTERM" >&2
	cat "$tmp/daemon.log" >&2
	exit 1
fi
daemon_pid=

echo "serve-smoke: ok"
