package memorex

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"memorex/internal/connect"
)

// TestExploreRequestJSONRoundTrip is the wire-format contract: a fully
// populated request survives encode/decode byte-for-byte, and the
// decoder distinguishes absent config blocks (inherit) from present
// zero ones (override).
func TestExploreRequestJSONRoundTrip(t *testing.T) {
	cap := 0
	req := ExploreRequest{
		Benchmark: "vocoder",
		JobID:     "job-000007",
		Workload:  &WorkloadConfig{Scale: 2, Seed: 7},
		APEX: &APEXConfig{
			CacheSizes:  []int{2 << 10},
			CacheAssocs: []int{2},
			CacheLines:  []int{32},
			MaxCustom:   1,
			SRAMLimit:   80 << 10,
			MaxSelected: 2,
		},
		Sampling:          &SamplingConfig{OnWindow: 500, OffRatio: 9},
		Library:           connect.Library(),
		KeepPerArch:       3,
		MaxAssignPerLevel: &cap,
		Exact:             true,
		Strategy:          "ga",
		Search:            &SearchConfig{Seed: 7, Budget: 64, Population: 8},
		Constraints:       []Constraint{{Scenario: ScenarioPower, Limit: 1.5}},
	}

	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back ExploreRequest
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("round-trip decode: %v\n%s", err, blob)
	}
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Errorf("round trip not stable:\n%s\n%s", blob, blob2)
	}
	if back.MaxAssignPerLevel == nil || *back.MaxAssignPerLevel != 0 {
		t.Error("explicit MaxAssignPerLevel=0 (exhaustive) lost in round trip")
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped request invalid: %v", err)
	}

	// The minimal request: one benchmark, everything inherited.
	var min ExploreRequest
	if err := json.Unmarshal([]byte(`{"benchmark":"compress"}`), &min); err != nil {
		t.Fatal(err)
	}
	if min.Workload != nil || min.APEX != nil || min.Sampling != nil ||
		min.Library != nil || min.MaxAssignPerLevel != nil || min.Search != nil {
		t.Errorf("minimal request decoded with non-inherited blocks: %+v", min)
	}
	if err := min.Validate(); err != nil {
		t.Errorf("minimal request invalid: %v", err)
	}
}

// TestExploreRequestValidate enumerates the rejection surface.
func TestExploreRequestValidate(t *testing.T) {
	neg := -1
	cases := []struct {
		name string
		req  ExploreRequest
		want string
	}{
		{"empty", ExploreRequest{}, "needs a benchmark or a trace"},
		{"unknown benchmark", ExploreRequest{Benchmark: "quake3"}, "unknown benchmark"},
		{"bad workload", ExploreRequest{Benchmark: "vocoder", Workload: &WorkloadConfig{Scale: -1}}, "workload"},
		{"bad sampling", ExploreRequest{Benchmark: "vocoder", Sampling: &SamplingConfig{OnWindow: -5}}, "sampling"},
		{"bad library", ExploreRequest{Benchmark: "vocoder", Library: []ConnComponent{{}}}, "library"},
		{"negative keep", ExploreRequest{Benchmark: "vocoder", KeepPerArch: -1}, "KeepPerArch"},
		{"negative cap", ExploreRequest{Benchmark: "vocoder", MaxAssignPerLevel: &neg}, "MaxAssignPerLevel"},
		{"bad strategy", ExploreRequest{Benchmark: "vocoder", Strategy: "tabu"}, "strategy"},
		{"bad search", ExploreRequest{Benchmark: "vocoder", Search: &SearchConfig{MutationRate: 1.5}}, "search"},
		{"bad scenario", ExploreRequest{Benchmark: "vocoder", Constraints: []Constraint{{Scenario: "speed", Limit: 1}}}, "unknown scenario"},
		{"bad limit", ExploreRequest{Benchmark: "vocoder", Constraints: []Constraint{{Scenario: ScenarioCost, Limit: 0}}}, "limit must be positive"},
	}
	for _, tc := range cases {
		err := tc.req.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestExplorerDoRequest runs Do with per-request overrides and
// constraints: the request's config must win over the Explorer's, the
// constraints must land in Report.Selections in order, and the
// selections must appear in the report JSON.
func TestExplorerDoRequest(t *testing.T) {
	ex, err := NewExplorer(fastExplorerOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	rep, err := ex.Do(context.Background(), ExploreRequest{
		Benchmark:   "vocoder",
		KeepPerArch: 2, // override the option's 3
		Constraints: []Constraint{
			{Scenario: ScenarioCost, Limit: 1e9},  // generous: everything qualifies
			{Scenario: ScenarioPerf, Limit: 1e-9}, // impossible: empty selection
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Options.ConEx.KeepPerArch; got != 2 {
		t.Errorf("request KeepPerArch override lost: report ran with %d", got)
	}
	if len(rep.Selections) != 2 {
		t.Fatalf("got %d selections, want 2", len(rep.Selections))
	}
	if s := rep.Selections[0]; s.Scenario != ScenarioCost || len(s.Points) == 0 {
		t.Errorf("generous cost constraint selected %d designs, want some", len(s.Points))
	}
	if s := rep.Selections[1]; s.Scenario != ScenarioPerf || len(s.Points) != 0 {
		t.Errorf("impossible perf constraint selected %d designs, want none", len(s.Points))
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rj, err := ReadReportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rj.Selections) != 2 || rj.Selections[0].Scenario != ScenarioCost {
		t.Errorf("selections missing from report JSON: %+v", rj.Selections)
	}

	// An invalid request is rejected before any work happens.
	if _, err := ex.Do(context.Background(), ExploreRequest{}); err == nil {
		t.Error("Do accepted an empty request")
	}
}

// TestExplorerDoHeuristicStrategy runs the heuristic drivers through
// the job-oriented request path: the request's strategy and search
// config must reach the driver, the search provenance must land in the
// report and survive the JSON round trip, and an enumeration run must
// carry no provenance.
func TestExplorerDoHeuristicStrategy(t *testing.T) {
	ex, err := NewExplorer(fastExplorerOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	rep, err := ex.Do(context.Background(), ExploreRequest{
		Benchmark: "vocoder",
		Strategy:  "ga",
		Search:    &SearchConfig{Seed: 11, Budget: 60, Population: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Search == nil {
		t.Fatal("heuristic run produced no search provenance")
	}
	if rep.Search.Strategy != "ga" || rep.Search.Seed != 11 || rep.Search.Budget != 60 {
		t.Errorf("provenance = %+v, want ga/11/60", rep.Search)
	}
	if rep.Search.Evals <= 0 || rep.Search.Evals > 60 {
		t.Errorf("evals %d outside (0, 60]", rep.Search.Evals)
	}
	if len(rep.ConEx.Combined) == 0 || len(rep.ConEx.CostPerfFront) == 0 {
		t.Fatalf("heuristic run produced %d designs, front %d",
			len(rep.ConEx.Combined), len(rep.ConEx.CostPerfFront))
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rj, err := ReadReportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rj.Search == nil || rj.Search.Strategy != "ga" || rj.Search.Seed != 11 ||
		rj.Search.Evals != rep.Search.Evals {
		t.Errorf("report JSON search provenance = %+v, want %+v", rj.Search, rep.Search)
	}

	// The default (pruned) strategy reports no search provenance.
	plain, err := ex.Do(context.Background(), ExploreRequest{Benchmark: "vocoder"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Search != nil {
		t.Errorf("pruned run reported search provenance %+v", plain.Search)
	}
}

// TestExplorerCloseIdempotent hammers Close from many goroutines: one
// result, every call agreeing, and runs after Close still work (they
// just lose their events).
func TestExplorerCloseIdempotent(t *testing.T) {
	ex, err := NewExplorer(fastExplorerOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ex.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Errorf("Close call %d returned %v, others %v", i, err, errs[0])
		}
	}
	if _, err := ex.Explore(context.Background(), "vocoder"); err != nil {
		t.Errorf("Explore after Close failed: %v", err)
	}
}
